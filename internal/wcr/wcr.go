// Package wcr implements the Worst Case Ratio of §6 (eqs. 5/6, fig. 6): a
// normalized severity measure that ranks how close a measured parameter
// value comes to its specification limit. The worst case test is the one
// with the largest WCR; WCR ≤ 0.8 classifies as pass, 0.8 < WCR ≤ 1 as
// weakness, and WCR > 1 as fail.
package wcr

import (
	"fmt"
	"math"
	"sort"
)

// Class is the WCR classification band of fig. 6.
type Class uint8

const (
	// Pass: WCR in [0, 0.8] — comfortable margin to the specification.
	Pass Class = iota
	// Weakness: WCR in (0.8, 1] — the test provokes the parameter close to
	// its limit; a design weakness candidate.
	Weakness
	// Fail: WCR > 1 — the parameter violates the specification.
	Fail
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Pass:
		return "pass"
	case Weakness:
		return "weakness"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// PassLimit and WeaknessLimit are the fig. 6 band edges.
const (
	PassLimit     = 0.8
	WeaknessLimit = 1.0
)

// Classify maps a WCR value onto its fig. 6 band.
func Classify(wcr float64) Class {
	switch {
	case wcr > WeaknessLimit:
		return Fail
	case wcr > PassLimit:
		return Weakness
	default:
		return Pass
	}
}

// ForMax is eq. 5: WCR of a measured value va against a specified maximum
// vmax (the parameter must stay below vmax; larger measured values are
// worse). Returns +Inf when vmax is zero and va is not.
func ForMax(va, vmax float64) float64 {
	if vmax == 0 {
		if va == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(va / vmax)
}

// ForMin is eq. 6: WCR of a measured value va against a specified minimum
// vmin (the parameter must stay above vmin; smaller measured values are
// worse). Returns +Inf when va is zero and vmin is not.
func ForMin(va, vmin float64) float64 {
	if va == 0 {
		if vmin == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(vmin / va)
}

// For computes the WCR of va against the spec limit, choosing eq. 5 or
// eq. 6 from whether the spec is a minimum.
func For(va, spec float64, specIsMin bool) float64 {
	if specIsMin {
		return ForMin(va, spec)
	}
	return ForMax(va, spec)
}

// Entry pairs a test identifier with its measured value and WCR.
type Entry struct {
	Name  string
	Value float64
	WCR   float64
	Class Class
}

// Ranking is a WCR-sorted set of measurements, worst first.
type Ranking struct {
	Spec      float64
	SpecIsMin bool
	Entries   []Entry
}

// NewRanking builds an empty ranking against the given spec.
func NewRanking(spec float64, specIsMin bool) *Ranking {
	return &Ranking{Spec: spec, SpecIsMin: specIsMin}
}

// Add records one measurement and returns its computed entry.
func (r *Ranking) Add(name string, value float64) Entry {
	w := For(value, r.Spec, r.SpecIsMin)
	e := Entry{Name: name, Value: value, WCR: w, Class: Classify(w)}
	r.Entries = append(r.Entries, e)
	return e
}

// Sort orders entries worst (largest WCR) first, with the name as a
// deterministic tie-breaker.
func (r *Ranking) Sort() {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].WCR != r.Entries[j].WCR {
			return r.Entries[i].WCR > r.Entries[j].WCR
		}
		return r.Entries[i].Name < r.Entries[j].Name
	})
}

// Worst returns the entry with the largest WCR ("the worst case tests are
// given by the largest values of WCR", §6). ok is false when the ranking is
// empty.
func (r *Ranking) Worst() (Entry, bool) {
	if len(r.Entries) == 0 {
		return Entry{}, false
	}
	best := r.Entries[0]
	for _, e := range r.Entries[1:] {
		if e.WCR > best.WCR {
			best = e
		}
	}
	return best, true
}

// CountByClass tallies entries per classification band.
func (r *Ranking) CountByClass() map[Class]int {
	out := make(map[Class]int, 3)
	for _, e := range r.Entries {
		out[e.Class]++
	}
	return out
}
