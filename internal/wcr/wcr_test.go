package wcr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		w    float64
		want Class
	}{
		{0, Pass}, {0.5, Pass}, {0.8, Pass},
		{0.80001, Weakness}, {0.9, Weakness}, {1.0, Weakness},
		{1.00001, Fail}, {2, Fail},
	}
	for _, c := range cases {
		if got := Classify(c.w); got != c.want {
			t.Errorf("Classify(%g) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Pass.String() != "pass" || Weakness.String() != "weakness" || Fail.String() != "fail" {
		t.Error("class names")
	}
	if Class(7).String() != "Class(7)" {
		t.Error("unknown class name")
	}
}

func TestTable1Values(t *testing.T) {
	// The exact WCR arithmetic of Table 1 (eq. 6, vmin = 20 ns).
	cases := []struct {
		tdq, want float64
	}{
		{32.3, 0.619}, {28.5, 0.701}, {22.1, 0.904},
	}
	for _, c := range cases {
		if got := ForMin(c.tdq, 20); math.Abs(got-c.want) > 0.002 {
			t.Errorf("ForMin(%g, 20) = %.3f, want %.3f", c.tdq, got, c.want)
		}
	}
}

func TestForMaxAndMinEdgeCases(t *testing.T) {
	if got := ForMax(0, 0); got != 0 {
		t.Errorf("ForMax(0,0) = %g", got)
	}
	if got := ForMax(1, 0); !math.IsInf(got, 1) {
		t.Errorf("ForMax(1,0) = %g, want +Inf", got)
	}
	if got := ForMin(0, 0); got != 0 {
		t.Errorf("ForMin(0,0) = %g", got)
	}
	if got := ForMin(0, 1); !math.IsInf(got, 1) {
		t.Errorf("ForMin(0,1) = %g, want +Inf", got)
	}
	// Sign is ignored (the paper takes absolute values).
	if got := ForMax(-5, 10); got != 0.5 {
		t.Errorf("ForMax(-5,10) = %g", got)
	}
}

func TestForSelectsEquation(t *testing.T) {
	if For(25, 20, true) != ForMin(25, 20) {
		t.Error("For(min) mismatch")
	}
	if For(25, 20, false) != ForMax(25, 20) {
		t.Error("For(max) mismatch")
	}
}

func TestWCRCrossesOneAtSpecProperty(t *testing.T) {
	// WCR > 1 iff the value violates the spec, for both directions.
	f := func(raw float64) bool {
		v := 0.1 + math.Abs(math.Mod(raw, 100))
		const spec = 20.0
		minViolated := v < spec
		if (ForMin(v, spec) > 1) != minViolated {
			return false
		}
		maxViolated := v > spec
		return (ForMax(v, spec) > 1) == maxViolated
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankingWorstAndSort(t *testing.T) {
	r := NewRanking(20, true)
	r.Add("good", 33)
	r.Add("weak", 22)
	r.Add("bad", 19)
	worst, ok := r.Worst()
	if !ok || worst.Name != "bad" {
		t.Fatalf("Worst = %+v, %v", worst, ok)
	}
	r.Sort()
	if r.Entries[0].Name != "bad" || r.Entries[2].Name != "good" {
		t.Errorf("sort order: %v, %v, %v", r.Entries[0].Name, r.Entries[1].Name, r.Entries[2].Name)
	}
	if r.Entries[0].Class != Fail || r.Entries[1].Class != Weakness || r.Entries[2].Class != Pass {
		t.Error("entry classes wrong")
	}
}

func TestRankingSortTieBreak(t *testing.T) {
	r := NewRanking(20, true)
	r.Add("b", 25)
	r.Add("a", 25)
	r.Sort()
	if r.Entries[0].Name != "a" {
		t.Error("equal-WCR ties must order by name for determinism")
	}
}

func TestRankingEmpty(t *testing.T) {
	r := NewRanking(20, true)
	if _, ok := r.Worst(); ok {
		t.Error("empty ranking has a worst entry")
	}
}

func TestCountByClass(t *testing.T) {
	r := NewRanking(20, true)
	r.Add("a", 33)
	r.Add("b", 30)
	r.Add("c", 22)
	r.Add("d", 18)
	got := r.CountByClass()
	if got[Pass] != 2 || got[Weakness] != 1 || got[Fail] != 1 {
		t.Errorf("CountByClass = %v", got)
	}
}
