package wcr_test

import (
	"fmt"

	"repro/internal/wcr"
)

// ExampleForMin computes the paper's own Table 1 values: eq. 6 against the
// 20 ns T_DQ specification minimum.
func ExampleForMin() {
	for _, row := range []struct {
		name string
		tdq  float64
	}{
		{"March", 32.3},
		{"Random", 28.5},
		{"NNGA", 22.1},
	} {
		w := wcr.ForMin(row.tdq, 20)
		fmt.Printf("%-7s WCR %.3f → %s\n", row.name, w, wcr.Classify(w))
	}
	// Output:
	// March   WCR 0.619 → pass
	// Random  WCR 0.702 → pass
	// NNGA    WCR 0.905 → weakness
}

// ExampleRanking ranks measurements worst-first, the fig. 6 banding.
func ExampleRanking() {
	r := wcr.NewRanking(20, true)
	r.Add("calm", 33.0)
	r.Add("aggressive", 21.0)
	r.Add("violating", 19.0)
	r.Sort()
	for _, e := range r.Entries {
		fmt.Printf("%s: %.2f (%s)\n", e.Name, e.WCR, e.Class)
	}
	// Output:
	// violating: 1.05 (fail)
	// aggressive: 0.95 (weakness)
	// calm: 0.61 (pass)
}
