package trippoint

import "math"

// Drift analysis over a DSV set. Trip points collected in measurement
// order carry a time dimension: a systematic trend across the run is
// parameter drift (device heating, supply settling), which the paper's §1
// warns corrupts single-search readings and which motivates both the
// drift-sensing successive approximation and the RTP re-anchoring option
// of SUTP. DetectDrift separates that trend from the per-test variation
// the multiple-trip-point concept is after.

// DriftReport summarizes the systematic component of a DSV run.
type DriftReport struct {
	// Slope is the least-squares trend of trip point versus measurement
	// index (parameter units per test).
	Slope float64
	// Intercept is the trend value at index 0.
	Intercept float64
	// TotalDrift is Slope × (N−1): the systematic shift over the run.
	TotalDrift float64
	// Residual is the RMS of trip points around the trend — the genuine
	// test-to-test variation after removing drift.
	Residual float64
	// RawStdDev is the plain standard deviation (trend included), for
	// comparison: RawStdDev ≫ Residual indicates the spread was mostly
	// drift, not test dependence.
	RawStdDev float64
	// Significant reports whether the systematic shift exceeds the
	// residual noise (|TotalDrift| > 2×Residual with at least 8 samples).
	Significant bool
	// N is the number of converged trip points analysed.
	N int
}

// DetectDrift fits a linear trend to the converged trip points of the DSV
// in measurement order. With fewer than three converged points the report
// is zero-valued with Significant == false.
func (d *DSV) DetectDrift() DriftReport {
	var xs, ys []float64
	for i, m := range d.Values {
		if !m.Converged {
			continue
		}
		xs = append(xs, float64(i))
		ys = append(ys, m.TripPoint)
	}
	n := len(ys)
	rep := DriftReport{N: n}
	if n < 3 {
		return rep
	}

	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		sxx += dx * dx
		sxy += dx * (ys[i] - meanY)
	}
	if sxx == 0 {
		return rep
	}
	rep.Slope = sxy / sxx
	rep.Intercept = meanY - rep.Slope*meanX
	rep.TotalDrift = rep.Slope * (xs[len(xs)-1] - xs[0])

	var ssRes, ssTot float64
	for i := range xs {
		pred := rep.Intercept + rep.Slope*xs[i]
		r := ys[i] - pred
		ssRes += r * r
		dy := ys[i] - meanY
		ssTot += dy * dy
	}
	rep.Residual = math.Sqrt(ssRes / float64(n))
	rep.RawStdDev = math.Sqrt(ssTot / float64(n))
	rep.Significant = n >= 8 && math.Abs(rep.TotalDrift) > 2*rep.Residual
	return rep
}

// Detrended returns a copy of the DSV with the fitted drift removed from
// every converged trip point — the corrected per-test variation a drift-
// aware characterization reports.
func (d *DSV) Detrended() *DSV {
	rep := d.DetectDrift()
	out := &DSV{Parameter: d.Parameter, Values: make([]Measurement, len(d.Values))}
	copy(out.Values, d.Values)
	if rep.N < 3 {
		return out
	}
	// Remove the slope relative to the first measurement, so the corrected
	// values read as "what the trip point would have been cold".
	for i := range out.Values {
		if !out.Values[i].Converged {
			continue
		}
		out.Values[i].TripPoint = d.Values[i].TripPoint - rep.Slope*float64(i)
	}
	return out
}
