// Package trippoint implements the paper's multiple trip point
// characterization concept (§3): run many different tests, measure a trip
// point per test, and collect the resulting design-specification-value set
// DSV = TPV(T1..TN) (eq. 1) whose spread — not any single value — bounds
// the device's true operating limits.
package trippoint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ate"
	"repro/internal/search"
	"repro/internal/testgen"
)

// Measurement is one trip point of the DSV set: the test that produced it
// and the search cost that was paid for it.
type Measurement struct {
	TestName     string
	TripPoint    float64
	Measurements int
	Converged    bool
}

// DSV is the design-specification-value set of eq. 1, in measurement order.
type DSV struct {
	Parameter ate.Parameter
	Values    []Measurement
}

// Add appends a measurement.
func (d *DSV) Add(m Measurement) { d.Values = append(d.Values, m) }

// Len returns the number of trip points collected.
func (d *DSV) Len() int { return len(d.Values) }

// TotalMeasurements sums the per-trip-point search cost.
func (d *DSV) TotalMeasurements() int {
	n := 0
	for _, m := range d.Values {
		n += m.Measurements
	}
	return n
}

// Stats summarizes the spread of the DSV set.
type Stats struct {
	N                  int
	Min, Max           float64
	MinTest, MaxTest   string
	Mean, StdDev       float64
	Median             float64
	Range              float64 // Max − Min, the worst-case trip point variation of fig. 2
	ConvergedCount     int
	MeanSearchCost     float64
	FirstSearchCost    int     // cost of establishing the reference trip point
	FollowupSearchCost float64 // mean cost of the RTP-anchored searches
}

// Stats computes spread statistics over the converged trip points.
func (d *DSV) Stats() Stats {
	s := Stats{N: len(d.Values), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(d.Values) == 0 {
		return Stats{}
	}
	var sum, costSum float64
	var followCost float64
	vals := make([]float64, 0, len(d.Values))
	for i, m := range d.Values {
		costSum += float64(m.Measurements)
		if i == 0 {
			s.FirstSearchCost = m.Measurements
		} else {
			followCost += float64(m.Measurements)
		}
		if !m.Converged {
			continue
		}
		s.ConvergedCount++
		sum += m.TripPoint
		vals = append(vals, m.TripPoint)
		if m.TripPoint < s.Min {
			s.Min, s.MinTest = m.TripPoint, m.TestName
		}
		if m.TripPoint > s.Max {
			s.Max, s.MaxTest = m.TripPoint, m.TestName
		}
	}
	s.MeanSearchCost = costSum / float64(len(d.Values))
	if len(d.Values) > 1 {
		s.FollowupSearchCost = followCost / float64(len(d.Values)-1)
	}
	if s.ConvergedCount == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = sum / float64(s.ConvergedCount)
	var ss float64
	for _, v := range vals {
		dv := v - s.Mean
		ss += dv * dv
	}
	s.StdDev = math.Sqrt(ss / float64(s.ConvergedCount))
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		s.Median = vals[mid]
	} else {
		s.Median = (vals[mid-1] + vals[mid]) / 2
	}
	s.Range = s.Max - s.Min
	return s
}

// Runner drives a multiple-trip-point characterization: it owns the
// stateful SUTP searcher (so the first test establishes the reference trip
// point and later tests ride on it) and appends every measurement to the
// DSV set.
type Runner struct {
	ATE      *ate.ATE
	Param    ate.Parameter
	Searcher search.Searcher // defaults to a fresh SUTP when nil
	Options  search.Options  // zero value defaults to Param.SearchOptions()

	dsv DSV
}

// NewRunner builds a runner with the paper's defaults: unrefined SUTP
// search (trip points are reported at SF accuracy, exactly as §4
// formulates) with SF = 4× the parameter's resolution, over the parameter's
// generous range. Swap in &search.SUTP{Refine: true} for full-resolution
// trip points at a few extra measurements per test.
func NewRunner(a *ate.ATE, param ate.Parameter) *Runner {
	return &Runner{
		ATE:      a,
		Param:    param,
		Searcher: &search.SUTP{SF: 4 * param.Resolution()},
		Options:  param.SearchOptions(),
	}
}

// Measure searches the trip point of one test and records it in the DSV.
func (r *Runner) Measure(t testgen.Test) (Measurement, error) {
	if r.ATE == nil {
		return Measurement{}, fmt.Errorf("trippoint: runner has no ATE")
	}
	if r.Searcher == nil {
		r.Searcher = &search.SUTP{Refine: true}
	}
	opt := r.Options
	if opt == (search.Options{}) {
		opt = r.Param.SearchOptions()
	}
	res, err := r.Searcher.Search(r.ATE.Measurer(r.Param, t), opt)
	if err != nil {
		return Measurement{}, fmt.Errorf("trippoint: measuring %s: %w", t.Name, err)
	}
	m := Measurement{
		TestName:     t.Name,
		TripPoint:    res.TripPoint,
		Measurements: res.Measurements,
		Converged:    res.Converged,
	}
	r.dsv.Parameter = r.Param
	r.dsv.Add(m)
	return m, nil
}

// MeasureAll measures every test in order.
func (r *Runner) MeasureAll(tests []testgen.Test) (*DSV, error) {
	for _, t := range tests {
		if _, err := r.Measure(t); err != nil {
			return nil, err
		}
	}
	return r.DSV(), nil
}

// DSV returns the accumulated design-specification-value set.
func (r *Runner) DSV() *DSV { return &r.dsv }
