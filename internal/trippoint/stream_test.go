package trippoint

import (
	"math"
	"testing"

	"repro/internal/ate"
	"repro/internal/proptest"
)

// relClose compares within a relative-or-absolute tolerance: the streaming
// accumulator and the batch fit take different float paths to the same
// statistics.
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// The agreement property: a DriftAccumulator fed the converged points of a
// DSV in order reports the same fit DetectDrift computes in batch.
func TestDriftAccumulatorAgreesWithDetectDrift(t *testing.T) {
	proptest.Check(t, 80, func(pt *proptest.T) {
		n := pt.IntRange(0, 60)
		base := pt.Float64Range(-50, 50)
		slope := pt.Float64Range(-0.5, 0.5)
		noise := pt.Float64Range(0, 2)
		d := &DSV{Parameter: ate.TDQ}
		var acc DriftAccumulator
		converged := 0
		for i := 0; i < n; i++ {
			m := Measurement{
				TripPoint: base + slope*float64(i) + (pt.Float01()-0.5)*noise,
				Converged: pt.Intn(10) != 0, // ~10% non-converged holes
			}
			d.Values = append(d.Values, m)
			if m.Converged {
				acc.Add(float64(i), m.TripPoint)
				converged++
			}
		}
		pt.Logf("n=%d converged=%d base=%.3f slope=%.4f noise=%.3f", n, converged, base, slope, noise)

		want := d.DetectDrift()
		got := acc.Report()
		if got.N != want.N {
			pt.Fatalf("N = %d, want %d", got.N, want.N)
		}
		if want.N < 3 {
			if got.Slope != 0 || got.Significant {
				pt.Fatalf("degenerate fit not zero: %+v", got)
			}
			return
		}
		const tol = 1e-9
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"Slope", got.Slope, want.Slope},
			{"Intercept", got.Intercept, want.Intercept},
			{"TotalDrift", got.TotalDrift, want.TotalDrift},
			{"Residual", got.Residual, want.Residual},
			{"RawStdDev", got.RawStdDev, want.RawStdDev},
		} {
			if !relClose(c.got, c.want, tol) {
				pt.Errorf("%s = %v, want %v", c.name, c.got, c.want)
			}
		}
		if got.Significant != want.Significant {
			// The significance threshold can flip on a hair under disagreeing
			// float paths; only flag it when the margin was not razor-thin.
			margin := math.Abs(math.Abs(want.TotalDrift) - 2*want.Residual)
			if margin > 1e-6 {
				pt.Errorf("Significant = %v, want %v (margin %g)", got.Significant, want.Significant, margin)
			}
		}
	})
}

func TestDriftAccumulatorDegenerate(t *testing.T) {
	var acc DriftAccumulator
	if rep := acc.Report(); rep.N != 0 || rep.Significant {
		t.Errorf("empty accumulator: %+v", rep)
	}
	acc.Add(0, 1)
	acc.Add(1, 2)
	if rep := acc.Report(); rep.N != 2 || rep.Slope != 0 {
		t.Errorf("two points fitted: %+v", rep)
	}
	// All x identical: sxx == 0 must not divide by zero.
	var same DriftAccumulator
	for i := 0; i < 5; i++ {
		same.Add(7, float64(i))
	}
	if rep := same.Report(); rep.Slope != 0 || rep.Significant {
		t.Errorf("degenerate x fit: %+v", rep)
	}
}

func TestDriftAccumulatorDetectsKnownDrift(t *testing.T) {
	var acc DriftAccumulator
	for i := 0; i < 100; i++ {
		acc.Add(float64(i), 10+0.05*float64(i))
	}
	rep := acc.Report()
	if !relClose(rep.Slope, 0.05, 1e-9) || !relClose(rep.TotalDrift, 0.05*99, 1e-9) {
		t.Errorf("noiseless drift fit: %+v", rep)
	}
	if !rep.Significant {
		t.Error("clear drift not significant")
	}
}

func TestOutlierTrackerFindsPlantedOutliers(t *testing.T) {
	o := NewOutlierTracker(4)
	for i := 0; i < 1000; i++ {
		v := 10 + 0.01*math.Sin(float64(i)) // tight population around 10
		switch i {
		case 100:
			v = 25 // extreme high
		case 500:
			v = -5 // extreme low
		case 900:
			v = 14 // mild high
		}
		o.Add(i, v)
	}
	if o.N() != 1000 {
		t.Fatalf("N = %d", o.N())
	}
	got := o.Report(3)
	if len(got) < 2 {
		t.Fatalf("outliers = %+v, want the two planted extremes", got)
	}
	if got[0].Index != 100 && got[0].Index != 500 {
		t.Errorf("most extreme outlier = %+v", got[0])
	}
	found := map[int]bool{}
	for _, e := range got {
		found[e.Index] = true
		if math.Abs(e.Z) < 3 {
			t.Errorf("reported outlier below threshold: %+v", e)
		}
	}
	if !found[100] || !found[500] {
		t.Errorf("planted outliers missing from %+v", got)
	}
}

func TestOutlierTrackerBoundedAndDeterministic(t *testing.T) {
	// Memory stays O(K) and the tracked extreme sets are exact: the K
	// lowest and K highest values of the stream.
	o := NewOutlierTracker(3)
	for i := 0; i < 500; i++ {
		o.Add(i, float64((i*7919)%500)) // permutation of 0..499
	}
	if len(o.lows) != 3 || len(o.highs) != 3 {
		t.Fatalf("tracked sets: %d lows, %d highs", len(o.lows), len(o.highs))
	}
	for i, want := range []float64{0, 1, 2} {
		if o.lows[i].Value != want {
			t.Errorf("lows[%d] = %+v, want value %v", i, o.lows[i], want)
		}
	}
	for i, want := range []float64{499, 498, 497} {
		if o.highs[i].Value != want {
			t.Errorf("highs[%d] = %+v, want value %v", i, o.highs[i], want)
		}
	}
}

func TestOutlierTrackerDegenerate(t *testing.T) {
	o := NewOutlierTracker(0) // clamps to 1
	if got := o.Report(3); got != nil {
		t.Errorf("empty report = %+v", got)
	}
	for i := 0; i < 10; i++ {
		o.Add(i, 5) // zero spread
	}
	if got := o.Report(3); got != nil {
		t.Errorf("zero-spread report = %+v", got)
	}
	if o.StdDev() != 0 || o.Mean() != 5 {
		t.Errorf("moments: mean %v sd %v", o.Mean(), o.StdDev())
	}
}
