package trippoint

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

func syntheticDSV(slope float64, noise float64, n int, seed int64) *DSV {
	rng := rand.New(rand.NewSource(seed))
	d := &DSV{}
	for i := 0; i < n; i++ {
		d.Add(Measurement{
			TestName:  "t",
			TripPoint: 30 + slope*float64(i) + rng.NormFloat64()*noise,
			Converged: true,
		})
	}
	return d
}

func TestDetectDriftRecoversSlope(t *testing.T) {
	d := syntheticDSV(-0.05, 0.02, 50, 1)
	rep := d.DetectDrift()
	if math.Abs(rep.Slope-(-0.05)) > 0.005 {
		t.Errorf("slope %g, want ≈ -0.05", rep.Slope)
	}
	if !rep.Significant {
		t.Error("clear drift not flagged significant")
	}
	if math.Abs(rep.TotalDrift-(-0.05*49)) > 0.3 {
		t.Errorf("total drift %g, want ≈ %g", rep.TotalDrift, -0.05*49)
	}
	if rep.Residual > 0.05 {
		t.Errorf("residual %g too large after removing trend", rep.Residual)
	}
	if rep.RawStdDev < 3*rep.Residual {
		t.Errorf("raw stddev %g not dominated by drift over residual %g", rep.RawStdDev, rep.Residual)
	}
}

func TestDetectDriftNoTrend(t *testing.T) {
	d := syntheticDSV(0, 0.1, 50, 2)
	rep := d.DetectDrift()
	if rep.Significant {
		t.Errorf("pure noise flagged as drift (slope %g, total %g, residual %g)",
			rep.Slope, rep.TotalDrift, rep.Residual)
	}
}

func TestDetectDriftTooFewSamples(t *testing.T) {
	d := syntheticDSV(-1, 0, 2, 3)
	rep := d.DetectDrift()
	if rep.Significant || rep.Slope != 0 {
		t.Errorf("2-sample drift report: %+v", rep)
	}
}

func TestDetectDriftSkipsNonConverged(t *testing.T) {
	d := syntheticDSV(-0.05, 0.01, 30, 4)
	d.Add(Measurement{TripPoint: 9999, Converged: false})
	rep := d.DetectDrift()
	if rep.N != 30 {
		t.Errorf("N = %d, want 30 (non-converged excluded)", rep.N)
	}
	if math.Abs(rep.Slope-(-0.05)) > 0.01 {
		t.Errorf("slope corrupted by non-converged entry: %g", rep.Slope)
	}
}

func TestDetrendedRemovesTrend(t *testing.T) {
	d := syntheticDSV(-0.08, 0.02, 40, 5)
	flat := d.Detrended()
	rep := flat.DetectDrift()
	if math.Abs(rep.Slope) > 0.005 {
		t.Errorf("detrended slope %g, want ≈ 0", rep.Slope)
	}
	// Original untouched.
	if d.DetectDrift().Slope > -0.05 {
		t.Error("Detrended mutated the original DSV")
	}
	// Spread shrinks once drift is removed.
	if flat.Stats().Range >= d.Stats().Range {
		t.Errorf("detrended range %g not below raw range %g", flat.Stats().Range, d.Stats().Range)
	}
}

// TestDriftDetectionOnHeatingTester closes the loop: a characterization
// run on a self-heating tester must show significant negative drift, and
// the same run on a cold tester must not.
func TestDriftDetectionOnHeatingTester(t *testing.T) {
	run := func(heating *ate.Thermal) DriftReport {
		dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
		if err != nil {
			t.Fatal(err)
		}
		tester := ate.New(dev, 7)
		tester.Heating = heating
		cond := testgen.NominalConditions()
		gen := testgen.NewRandomGenerator(8, dev.Geometry().Words(), testgen.DefaultConditionLimits())
		gen.FixedConditions = &cond
		runner := NewRunner(tester, ate.TDQ)
		// Reuse the SAME test repeatedly: any spread is pure drift.
		tt := gen.Next()
		for i := 0; i < 40; i++ {
			c := tt
			if _, err := runner.Measure(c); err != nil {
				t.Fatal(err)
			}
		}
		return runner.DSV().DetectDrift()
	}

	hot := run(&ate.Thermal{RisePerVector: 0.01, TauSec: 1e12, MaxRiseC: 60})
	if hot.Slope >= 0 {
		t.Errorf("heating run drift slope %g, want negative", hot.Slope)
	}
	if !hot.Significant {
		t.Errorf("heating drift not significant: %+v", hot)
	}

	cold := run(nil)
	if cold.Significant && math.Abs(cold.TotalDrift) > math.Abs(hot.TotalDrift)/4 {
		t.Errorf("cold run shows large drift: %+v", cold)
	}
}
