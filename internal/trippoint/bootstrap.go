package trippoint

import (
	"fmt"
	"math/rand"
	"sort"
)

// Bootstrap estimation of the worst-case trip point. A DSV set is a finite
// sample of the test population; the observed minimum (or maximum)
// understates the uncertainty in "the worst case". WorstCaseInterval
// resamples the converged trip points and reports the percentile interval
// of the resampled extreme — the error bar a spec engineer should attach
// before cutting a guardband.
//
// Extremes are the classic failure case of the naive n-out-of-n bootstrap
// (the resampled minimum equals the sample minimum ≈63% of the time), so
// the implementation uses the m-out-of-n variant with m = ⌈n/2⌉, the
// standard remedy for non-smooth statistics.

// Interval is a two-sided bootstrap percentile interval for the extreme
// trip point.
type Interval struct {
	// Observed is the extreme of the actual sample.
	Observed float64
	// Lo and Hi bound the (1−alpha) percentile interval of the resampled
	// extreme.
	Lo, Hi float64
	// Resamples is the number of bootstrap draws used.
	Resamples int
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// WorstCaseInterval bootstraps the worst (minimum when min is true,
// maximum otherwise) converged trip point of the DSV. alpha is the total
// tail mass (0.05 → a 95% interval); resamples defaults to 1000 when ≤ 0.
func (d *DSV) WorstCaseInterval(min bool, alpha float64, resamples int, seed int64) (Interval, error) {
	var vals []float64
	for _, m := range d.Values {
		if m.Converged {
			vals = append(vals, m.TripPoint)
		}
	}
	if len(vals) < 3 {
		return Interval{}, fmt.Errorf("trippoint: need at least 3 converged trip points, have %d", len(vals))
	}
	if alpha <= 0 || alpha >= 1 {
		return Interval{}, fmt.Errorf("trippoint: alpha %g outside (0, 1)", alpha)
	}
	if resamples <= 0 {
		resamples = 1000
	}

	extreme := func(xs []float64) float64 {
		e := xs[0]
		for _, v := range xs[1:] {
			if (min && v < e) || (!min && v > e) {
				e = v
			}
		}
		return e
	}

	rng := rand.New(rand.NewSource(seed))
	draws := make([]float64, resamples)
	m := (len(vals) + 1) / 2 // m-out-of-n resample size
	sample := make([]float64, m)
	for r := range draws {
		for i := range sample {
			sample[i] = vals[rng.Intn(len(vals))]
		}
		draws[r] = extreme(sample)
	}
	sort.Float64s(draws)
	loIdx := int(alpha / 2 * float64(resamples))
	hiIdx := int((1 - alpha/2) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return Interval{
		Observed:  extreme(vals),
		Lo:        draws[loIdx],
		Hi:        draws[hiIdx],
		Resamples: resamples,
	}, nil
}
