package trippoint

import (
	"math/rand"
	"testing"
)

func gaussianDSV(seed int64, n int, mean, sigma float64) *DSV {
	rng := rand.New(rand.NewSource(seed))
	d := &DSV{}
	for i := 0; i < n; i++ {
		d.Add(Measurement{TripPoint: mean + rng.NormFloat64()*sigma, Converged: true})
	}
	return d
}

func TestWorstCaseIntervalContainsObserved(t *testing.T) {
	d := gaussianDSV(3, 80, 30, 1)
	iv, err := d.WorstCaseInterval(true, 0.05, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Observed || iv.Hi < iv.Observed-2 {
		t.Errorf("interval [%.2f, %.2f] implausible around observed %.2f", iv.Lo, iv.Hi, iv.Observed)
	}
	if iv.Width() <= 0 {
		t.Errorf("degenerate interval width %g", iv.Width())
	}
	if iv.Resamples != 1000 {
		t.Errorf("resamples %d", iv.Resamples)
	}
	// For a minimum, the observed extreme is the sample min, and the hi
	// edge must not exceed the distribution's bulk.
	if iv.Hi > 30 {
		t.Errorf("upper edge %.2f beyond the mean; extreme bootstrap broken", iv.Hi)
	}
}

func TestWorstCaseIntervalMaxDirection(t *testing.T) {
	d := gaussianDSV(5, 80, 1.5, 0.05)
	iv, err := d.WorstCaseInterval(false, 0.1, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Observed < 1.5 {
		t.Errorf("max-direction observed %.3f below the mean", iv.Observed)
	}
	if iv.Lo > iv.Observed {
		t.Error("lower edge above the observed maximum")
	}
}

func TestWorstCaseIntervalShrinksWithSamples(t *testing.T) {
	small := gaussianDSV(7, 10, 30, 1)
	large := gaussianDSV(7, 200, 30, 1)
	ivS, err := small.WorstCaseInterval(true, 0.05, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	ivL, err := large.WorstCaseInterval(true, 0.05, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ivL.Width() >= ivS.Width() {
		t.Errorf("interval did not tighten with more samples: %g vs %g", ivL.Width(), ivS.Width())
	}
}

func TestWorstCaseIntervalValidation(t *testing.T) {
	d := gaussianDSV(9, 2, 30, 1)
	if _, err := d.WorstCaseInterval(true, 0.05, 100, 9); err == nil {
		t.Error("2-sample DSV accepted")
	}
	d = gaussianDSV(9, 20, 30, 1)
	if _, err := d.WorstCaseInterval(true, 0, 100, 9); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := d.WorstCaseInterval(true, 1.5, 100, 9); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestWorstCaseIntervalSkipsNonConverged(t *testing.T) {
	d := gaussianDSV(11, 30, 30, 1)
	d.Add(Measurement{TripPoint: -999, Converged: false})
	iv, err := d.WorstCaseInterval(true, 0.05, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Observed < 20 {
		t.Errorf("non-converged value leaked into the extreme: %.2f", iv.Observed)
	}
}
