package trippoint

import (
	"math"
	"sort"
)

// Streaming population statistics for lot-scale screening. A 10k-die lot
// cannot buffer every trip point just to ask "did the population drift
// across the run?" and "which dies are outliers?" at the end — the
// streaming pipeline deliberately holds O(batch), not O(lot). The two
// accumulators here answer both questions in O(1) memory per sample:
// DriftAccumulator folds each observation into the sufficient statistics
// of the same least-squares fit DetectDrift performs, and OutlierTracker
// keeps Welford moments plus the bounded set of extreme dies.

// DriftAccumulator incrementally fits the linear trend DetectDrift fits in
// batch: feed it (x, y) observations in measurement order and Report
// produces a DriftReport that agrees with a DSV-based DetectDrift over the
// same points. Accumulation is origin-shifted (all sums are relative to
// the first sample) so large die indices do not cancel catastrophically.
// The zero value is ready to use.
type DriftAccumulator struct {
	n             int
	x0, y0        float64 // origin shift: the first observation
	sumX, sumY    float64 // shifted sums
	sumXX, sumXY  float64
	sumYY         float64
	firstX, lastX float64
	haveFirst     bool
}

// Add folds one observation into the fit. For trip-point drift, x is the
// measurement index and y the converged trip point (skip non-converged
// searches, exactly as DetectDrift does).
func (a *DriftAccumulator) Add(x, y float64) {
	if !a.haveFirst {
		a.x0, a.y0 = x, y
		a.firstX = x
		a.haveFirst = true
	}
	a.lastX = x
	dx, dy := x-a.x0, y-a.y0
	a.n++
	a.sumX += dx
	a.sumY += dy
	a.sumXX += dx * dx
	a.sumXY += dx * dy
	a.sumYY += dy * dy
}

// N returns the number of accumulated observations.
func (a *DriftAccumulator) N() int { return a.n }

// Report closes the fit. With fewer than three observations the report is
// zero-valued with Significant == false, mirroring DetectDrift.
func (a *DriftAccumulator) Report() DriftReport {
	rep := DriftReport{N: a.n}
	if a.n < 3 {
		return rep
	}
	n := float64(a.n)
	meanX, meanY := a.sumX/n, a.sumY/n
	sxx := a.sumXX - n*meanX*meanX
	sxy := a.sumXY - n*meanX*meanY
	syy := a.sumYY - n*meanY*meanY
	if sxx == 0 {
		return rep
	}
	rep.Slope = sxy / sxx
	// Un-shift the intercept back to absolute coordinates.
	rep.Intercept = (a.y0 + meanY) - rep.Slope*(a.x0+meanX)
	rep.TotalDrift = rep.Slope * (a.lastX - a.firstX)
	ssRes := syy - rep.Slope*sxy
	if ssRes < 0 { // float guard: ssRes is mathematically ≥ 0
		ssRes = 0
	}
	rep.Residual = math.Sqrt(ssRes / n)
	rep.RawStdDev = math.Sqrt(syy / n)
	rep.Significant = a.n >= 8 && math.Abs(rep.TotalDrift) > 2*rep.Residual
	return rep
}

// Outlier is one population outlier: a die whose metric sits far from the
// population mean.
type Outlier struct {
	// Index identifies the die (its position in the lot).
	Index int
	// Value is the die's metric (e.g. worst trip point).
	Value float64
	// Z is the die's standard score against the full population at report
	// time: (Value − mean) / stddev.
	Z float64
}

// OutlierTracker finds population outliers in one streaming pass with
// O(K) memory: Welford moments over every observation plus the K lowest
// and K highest values seen. Because an outlier by |z| must sit at one of
// the value extremes, the bounded extreme sets are guaranteed to contain
// every true top-K outlier — no second pass needed. The tracked sets (and
// the report) are deterministic functions of the observation sequence,
// with ties broken by index.
type OutlierTracker struct {
	k    int
	n    int
	mean float64
	m2   float64

	lows  []Outlier // ascending by (value, index); at most k
	highs []Outlier // descending by (value, index); at most k
}

// NewOutlierTracker tracks up to k outliers per tail. k < 1 selects 1.
func NewOutlierTracker(k int) *OutlierTracker {
	if k < 1 {
		k = 1
	}
	return &OutlierTracker{k: k}
}

// Add folds one die's metric into the population.
func (o *OutlierTracker) Add(index int, v float64) {
	o.n++
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)

	e := Outlier{Index: index, Value: v}
	o.lows = boundedInsert(o.lows, e, o.k, func(a, b Outlier) bool {
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Index < b.Index
	})
	o.highs = boundedInsert(o.highs, e, o.k, func(a, b Outlier) bool {
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		return a.Index < b.Index
	})
}

// boundedInsert keeps s sorted by less and capped at k elements.
func boundedInsert(s []Outlier, e Outlier, k int, less func(a, b Outlier) bool) []Outlier {
	pos := sort.Search(len(s), func(i int) bool { return less(e, s[i]) })
	if pos >= k {
		return s
	}
	s = append(s, Outlier{})
	copy(s[pos+1:], s[pos:])
	s[pos] = e
	if len(s) > k {
		s = s[:k]
	}
	return s
}

// N returns the population size.
func (o *OutlierTracker) N() int { return o.n }

// Mean returns the population mean.
func (o *OutlierTracker) Mean() float64 { return o.mean }

// StdDev returns the population standard deviation.
func (o *OutlierTracker) StdDev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n))
}

// Report returns the tracked dies whose |z| meets zThreshold, most extreme
// first (ties by index). With fewer than 4 observations or zero spread it
// returns nil — a z-score against a degenerate population is noise.
func (o *OutlierTracker) Report(zThreshold float64) []Outlier {
	sd := o.StdDev()
	if o.n < 4 || sd == 0 {
		return nil
	}
	var out []Outlier
	seen := map[int]bool{}
	for _, s := range [][]Outlier{o.lows, o.highs} {
		for _, e := range s {
			if seen[e.Index] {
				continue
			}
			z := (e.Value - o.mean) / sd
			if math.Abs(z) >= zThreshold {
				e.Z = z
				out = append(out, e)
				seen[e.Index] = true
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Z), math.Abs(out[j].Z)
		if ai != aj {
			return ai > aj
		}
		return out[i].Index < out[j].Index
	})
	return out
}
