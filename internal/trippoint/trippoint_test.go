package trippoint

import (
	"math"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
)

func newRig(t *testing.T) (*ate.ATE, *testgen.RandomGenerator) {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 3)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(41, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	return tester, gen
}

func TestRunnerCollectsDSV(t *testing.T) {
	tester, gen := newRig(t)
	r := NewRunner(tester, ate.TDQ)
	dsv, err := r.MeasureAll(gen.Batch(20))
	if err != nil {
		t.Fatal(err)
	}
	if dsv.Len() != 20 {
		t.Fatalf("DSV has %d entries, want 20", dsv.Len())
	}
	if dsv.Parameter != ate.TDQ {
		t.Error("DSV parameter not recorded")
	}
	for i, m := range dsv.Values {
		if !m.Converged {
			t.Errorf("measurement %d (%s) did not converge", i, m.TestName)
		}
		if m.TripPoint < 15 || m.TripPoint > 40 {
			t.Errorf("trip point %g implausible", m.TripPoint)
		}
	}
}

func TestDSVStats(t *testing.T) {
	d := &DSV{}
	for _, v := range []float64{30, 31, 29, 32, 28} {
		d.Add(Measurement{TestName: "t", TripPoint: v, Measurements: 10, Converged: true})
	}
	s := d.Stats()
	if s.N != 5 || s.ConvergedCount != 5 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Min != 28 || s.Max != 32 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	if math.Abs(s.Mean-30) > 1e-9 {
		t.Errorf("mean = %g", s.Mean)
	}
	if s.Median != 30 {
		t.Errorf("median = %g", s.Median)
	}
	if s.Range != 4 {
		t.Errorf("range = %g", s.Range)
	}
	wantStd := math.Sqrt(2) // population stddev of {28..32}
	if math.Abs(s.StdDev-wantStd) > 1e-9 {
		t.Errorf("stddev = %g, want %g", s.StdDev, wantStd)
	}
}

func TestDSVStatsEvenMedian(t *testing.T) {
	d := &DSV{}
	for _, v := range []float64{10, 20, 30, 40} {
		d.Add(Measurement{TripPoint: v, Converged: true})
	}
	if got := d.Stats().Median; got != 25 {
		t.Errorf("even median = %g, want 25", got)
	}
}

func TestDSVStatsSkipsNonConverged(t *testing.T) {
	d := &DSV{}
	d.Add(Measurement{TripPoint: 30, Converged: true, Measurements: 5})
	d.Add(Measurement{TripPoint: 999, Converged: false, Measurements: 7})
	s := d.Stats()
	if s.ConvergedCount != 1 {
		t.Fatalf("converged count %d", s.ConvergedCount)
	}
	if s.Max != 30 {
		t.Errorf("non-converged value leaked into stats: max %g", s.Max)
	}
	if s.MeanSearchCost != 6 {
		t.Errorf("mean cost %g, want 6 (cost counts all searches)", s.MeanSearchCost)
	}
}

func TestDSVStatsEmpty(t *testing.T) {
	if s := (&DSV{}).Stats(); s.N != 0 || s.Min != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestDSVTotalMeasurements(t *testing.T) {
	d := &DSV{}
	d.Add(Measurement{Measurements: 3})
	d.Add(Measurement{Measurements: 4})
	if d.TotalMeasurements() != 7 {
		t.Error("total measurements wrong")
	}
}

func TestSUTPCostAdvantageOverPerTestFullSearch(t *testing.T) {
	// Figure 3's claim, end to end on the simulated ATE: the SUTP runner
	// must spend significantly fewer measurements than a runner doing a
	// full-range search per test.
	tester, gen := newRig(t)
	tests := gen.Batch(30)

	sutp := NewRunner(tester, ate.TDQ)
	dsvS, err := sutp.MeasureAll(tests)
	if err != nil {
		t.Fatal(err)
	}

	full := NewRunner(tester, ate.TDQ)
	full.Searcher = search.SuccessiveApproximation{}
	dsvF, err := full.MeasureAll(tests)
	if err != nil {
		t.Fatal(err)
	}

	sCost, fCost := dsvS.TotalMeasurements(), dsvF.TotalMeasurements()
	if float64(sCost) > 0.6*float64(fCost) {
		t.Errorf("SUTP cost %d not clearly below full-search cost %d", sCost, fCost)
	}

	// Both must agree within the SUTP accuracy (SF·IT bracket at the
	// crossing, a few SF for the spreads seen here) plus noise.
	for i := range dsvS.Values {
		d := math.Abs(dsvS.Values[i].TripPoint - dsvF.Values[i].TripPoint)
		if d > 2.0 {
			t.Errorf("test %d: SUTP %g vs full %g disagree by %g",
				i, dsvS.Values[i].TripPoint, dsvF.Values[i].TripPoint, d)
		}
	}

	// The stats must expose the first-vs-followup asymmetry.
	st := dsvS.Stats()
	if st.FollowupSearchCost >= float64(st.FirstSearchCost) {
		t.Errorf("follow-up cost %g not below the first full search %d",
			st.FollowupSearchCost, st.FirstSearchCost)
	}
}

func TestRunnerErrorsWithoutATE(t *testing.T) {
	r := &Runner{Param: ate.TDQ}
	if _, err := r.Measure(testgen.Test{Name: "x"}); err == nil {
		t.Error("runner without ATE accepted a measurement")
	}
}

func TestMultipleTripPointVariation(t *testing.T) {
	// Fig. 2: different tests produce different trip points; the DSV
	// spread must be clearly nonzero.
	tester, gen := newRig(t)
	r := NewRunner(tester, ate.TDQ)
	dsv, err := r.MeasureAll(gen.Batch(40))
	if err != nil {
		t.Fatal(err)
	}
	s := dsv.Stats()
	if s.Range < 1 {
		t.Errorf("trip point variation %g ns too small; multiple-trip-point premise broken", s.Range)
	}
	if s.MinTest == "" || s.MaxTest == "" {
		t.Error("extreme tests not identified")
	}
}

// TestStyledGeneratorWidensDSVSpread is the generator-design ablation: the
// styled random generator must produce a clearly wider trip-point spread
// than a naive uniform generator — the spread is the signal both the
// multiple-trip-point analysis and the NN learn from.
func TestStyledGeneratorWidensDSVSpread(t *testing.T) {
	spread := func(uniformOnly bool) float64 {
		dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
		if err != nil {
			t.Fatal(err)
		}
		tester := ate.New(dev, 3)
		cond := testgen.NominalConditions()
		gen := testgen.NewRandomGenerator(41, dev.Geometry().Words(), testgen.DefaultConditionLimits())
		gen.FixedConditions = &cond
		gen.UniformOnly = uniformOnly
		r := NewRunner(tester, ate.TDQ)
		r.Searcher = &search.SUTP{Refine: true}
		dsv, err := r.MeasureAll(gen.Batch(60))
		if err != nil {
			t.Fatal(err)
		}
		return dsv.Stats().Range
	}
	styled := spread(false)
	uniform := spread(true)
	if styled < uniform*1.5 {
		t.Errorf("styled generator spread %.2f ns not clearly above uniform %.2f ns", styled, uniform)
	}
}
