package dut

import "fmt"

// Row-redundancy repair. Memory test chips carry spare rows per bank;
// when characterization localizes a functional failure (a weak cell
// provoked by a worst-case test), the row is remapped to a spare and the
// device retested — the standard laser/eFuse repair loop that consumes the
// failure addresses the paper's flow stores in the worst-case database.
//
// The spare rows are physically defect-free in this model (weak cells are
// keyed by logical address and a repaired row no longer resolves there).

// SpareRowsPerBank is the number of redundant rows each bank carries.
const SpareRowsPerBank = 2

// RepairRow remaps the logical row containing addr onto the next free
// spare row of its bank. Repairing an already-repaired row is an error, as
// is running out of spares.
func (m *Memory) RepairRow(addr uint32) error {
	addr %= m.geom.Words()
	bank, row, _ := m.geom.Decode(addr)
	key := bank*m.geom.Rows + row
	if _, done := m.rowRemap[key]; done {
		return fmt.Errorf("dut: bank %d row %d already repaired", bank, row)
	}
	if m.sparesUsed[bank] >= SpareRowsPerBank {
		return fmt.Errorf("dut: bank %d out of spare rows (%d used)", bank, SpareRowsPerBank)
	}
	spareIdx := m.sparesUsed[bank]
	m.sparesUsed[bank]++
	// Physical base of this spare row inside the spare region.
	base := m.geom.Words() + uint32((bank*SpareRowsPerBank+spareIdx)*m.geom.Cols)
	if m.rowRemap == nil {
		m.rowRemap = make(map[int]uint32)
	}
	m.rowRemap[key] = base
	return nil
}

// RepairedRows returns the number of rows currently remapped to spares.
func (m *Memory) RepairedRows() int { return len(m.rowRemap) }

// SparesRemaining returns the free spare rows of the bank containing addr.
func (m *Memory) SparesRemaining(addr uint32) int {
	bank, _, _ := m.geom.Decode(addr % m.geom.Words())
	return SpareRowsPerBank - m.sparesUsed[bank]
}

// physical maps a logical (bus) address to its physical storage index,
// following any row repair.
func (m *Memory) physical(addr uint32) uint32 {
	if len(m.rowRemap) == 0 {
		return addr
	}
	bank, row, col := m.geom.Decode(addr)
	if base, ok := m.rowRemap[bank*m.geom.Rows+row]; ok {
		return base + uint32(col)
	}
	return addr
}

// RepairRow on the Device repairs the row containing the logical address.
func (d *Device) RepairRow(addr uint32) error { return d.mem.RepairRow(addr) }

// RepairedRows returns the device's repaired-row count.
func (d *Device) RepairedRows() int { return d.mem.RepairedRows() }

// SparesRemaining returns free spares in the bank containing addr.
func (d *Device) SparesRemaining(addr uint32) int { return d.mem.SparesRemaining(addr) }
