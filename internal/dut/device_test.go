package dut

import (
	"math"
	"testing"

	"repro/internal/testgen"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultGeometry(), NewDie(0, CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func marchTest(t *testing.T, cond testgen.Conditions) testgen.Test {
	t.Helper()
	tt, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 64, 0x55555555, cond)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestProfileDeterministic(t *testing.T) {
	dev := testDevice(t)
	tt := marchTest(t, testgen.NominalConditions())
	p1, err := dev.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dev.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TDQWindowNS() != p2.TDQWindowNS() {
		t.Errorf("same test, different windows: %g vs %g", p1.TDQWindowNS(), p2.TDQWindowNS())
	}
	if p1.Act != p2.Act {
		t.Error("same test, different activity")
	}
}

func TestProfileRejectsInvalidSequence(t *testing.T) {
	dev := testDevice(t)
	bad := testgen.Test{
		Name: "bad",
		Seq:  testgen.Sequence{{Op: testgen.OpRead, Addr: dev.Geometry().Words()}},
		Cond: testgen.NominalConditions(),
	}
	if _, err := dev.Profile(bad); err == nil {
		t.Error("out-of-range sequence accepted")
	}
	if _, err := dev.Profile(testgen.Test{Name: "empty", Cond: testgen.NominalConditions()}); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestTDQWindowAtOverridesVdd(t *testing.T) {
	dev := testDevice(t)
	tt := marchTest(t, testgen.NominalConditions())
	p, err := dev.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	atOwn := p.TDQWindowNSAt(tt.Cond.VddV)
	if math.Abs(atOwn-p.TDQWindowNS()) > 1e-12 {
		t.Errorf("TDQWindowNSAt(own Vdd) = %g, TDQWindowNS = %g", atOwn, p.TDQWindowNS())
	}
	if p.TDQWindowNSAt(2.0) <= p.TDQWindowNSAt(1.6) {
		t.Error("window not increasing with the overridden supply")
	}
}

func TestTestDependenceOfTDQ(t *testing.T) {
	// The central premise: different tests provoke different windows.
	dev := testDevice(t)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(17, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	windows := make(map[float64]bool)
	for i := 0; i < 30; i++ {
		p, err := dev.Profile(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		windows[math.Round(p.TDQWindowNS()*100)/100] = true
	}
	if len(windows) < 10 {
		t.Errorf("only %d distinct windows over 30 tests; parameter not test-dependent", len(windows))
	}
}

func TestSpecComplianceAtNominal(t *testing.T) {
	// A properly designed device must meet the 20 ns spec for ordinary
	// tests at nominal conditions (the weakness only shows under the
	// coordinated worst case).
	dev := testDevice(t)
	cond := testgen.NominalConditions()
	suite, err := testgen.MarchSuite(testgen.MarchCMinus(), 0, 100, cond)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range suite {
		p, err := dev.Profile(tt)
		if err != nil {
			t.Fatal(err)
		}
		if w := p.TDQWindowNS(); w < SpecTDQNS {
			t.Errorf("%s: window %g ns violates the %g ns spec at nominal", tt.Name, w, SpecTDQNS)
		}
	}
}

func TestWorstCasePatternBeatsRandomTail(t *testing.T) {
	// The coordinated four-term pattern must provoke a strictly smaller
	// window than the worst of a sizable random sample — this is the
	// device-model property the whole Table 1 reproduction rests on.
	dev := testDevice(t)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(23, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	randomWorst := math.Inf(1)
	for i := 0; i < 500; i++ {
		p, err := dev.Profile(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if w := p.TDQWindowNS(); w < randomWorst {
			randomWorst = w
		}
	}

	words := dev.Geometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	p, err := dev.Profile(testgen.Test{Name: "worst", Seq: seq, Cond: cond})
	if err != nil {
		t.Fatal(err)
	}
	if p.TDQWindowNS() >= randomWorst-1 {
		t.Errorf("coordinated pattern window %g not clearly below random tail %g", p.TDQWindowNS(), randomWorst)
	}
	if p.Ridge() < 0.5 {
		t.Errorf("coordinated pattern ridge %g, want > 0.5", p.Ridge())
	}
	if p.TDQWindowNS() < SpecTDQNS {
		t.Errorf("worst pattern window %g below spec %g on typical die: model floor miscalibrated", p.TDQWindowNS(), SpecTDQNS)
	}
}

func TestProfileFunctionalWithWeakCell(t *testing.T) {
	die := NewDie(0, CornerTypical, WithWeakCell(3, 1.75))
	dev, err := NewDevice(DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	// A high-activity test drops effective Vdd below 1.75 and corrupts.
	seq := make(testgen.Sequence, 0, 400)
	for i := 0; i < 100; i++ {
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: 3, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: 4095 - 3, Data: 0xFFFFFFFF},
			testgen.Vector{Op: testgen.OpRead, Addr: 3},
			testgen.Vector{Op: testgen.OpRead, Addr: 4095 - 3},
		)
	}
	p, err := dev.Profile(testgen.Test{Name: "weak", Seq: seq, Cond: testgen.NominalConditions()})
	if err != nil {
		t.Fatal(err)
	}
	if p.EffectiveVdd() >= 1.75 {
		t.Skipf("activity did not pull effective Vdd below the threshold (%g)", p.EffectiveVdd())
	}
	if !p.Func.Failed() {
		t.Error("weak cell not corrupted by high-activity test")
	}
}

func TestDeviceAccessors(t *testing.T) {
	die := NewDie(5, CornerFast)
	dev, err := NewDeviceWithPhysics(DefaultGeometry(), die, DefaultPhysics())
	if err != nil {
		t.Fatal(err)
	}
	if dev.Die() != die {
		t.Error("Die accessor mismatch")
	}
	if dev.Geometry() != DefaultGeometry() {
		t.Error("Geometry accessor mismatch")
	}
	if dev.Physics().TDQBaseNS != DefaultPhysics().TDQBaseNS {
		t.Error("Physics accessor mismatch")
	}
}
