package dut

import (
	"testing"

	"repro/internal/testgen"
)

func weakDevice(t *testing.T, addr uint32, threshold float64) *Device {
	t.Helper()
	die := NewDie(0, CornerTypical, WithWeakCell(addr, threshold))
	dev, err := NewDevice(DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func weakReadTest(addr uint32) testgen.Test {
	return testgen.Test{
		Name: "weakread",
		Seq: testgen.Sequence{
			{Op: testgen.OpWrite, Addr: addr, Data: 0xDEADBEEF},
			{Op: testgen.OpRead, Addr: addr},
		},
		Cond: testgen.NominalConditions(),
	}
}

func TestRepairFixesWeakCell(t *testing.T) {
	const addr = 37
	dev := weakDevice(t, addr, 2.5) // corrupts at any realistic supply
	tt := weakReadTest(addr)

	p, err := dev.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Func.Failed() {
		t.Fatal("weak cell did not fail before repair")
	}

	if err := dev.RepairRow(addr); err != nil {
		t.Fatal(err)
	}
	p, err = dev.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Func.Failed() {
		t.Error("repaired row still fails")
	}
	if dev.RepairedRows() != 1 {
		t.Errorf("repaired rows = %d", dev.RepairedRows())
	}
}

func TestRepairPreservesData(t *testing.T) {
	dev := testDevice(t)
	mem := dev.mem
	const addr = 100
	if err := mem.RepairRow(addr); err != nil {
		t.Fatal(err)
	}
	mem.Poke(addr, 0xABCD)
	if got := mem.Peek(addr); got != 0xABCD {
		t.Errorf("read after write through repair = %08X", got)
	}
	// A write to the repaired row must not alias any other logical word.
	geom := mem.Geometry()
	for a := uint32(0); a < geom.Words(); a++ {
		if a == addr {
			continue
		}
		if got := mem.Peek(a); got != 0 {
			t.Fatalf("repair aliased logical address %d (= %08X)", a, got)
		}
	}
}

func TestRepairWholeRowMoves(t *testing.T) {
	dev := testDevice(t)
	geom := dev.Geometry()
	// Repairing any address of a row must remap every column of that row.
	const addr = 160 // row 10 of bank 0
	if err := dev.RepairRow(addr); err != nil {
		t.Fatal(err)
	}
	rowBase := addr - addr%uint32(geom.Cols)
	for c := uint32(0); c < uint32(geom.Cols); c++ {
		phys := dev.mem.physical(rowBase + c)
		if phys < geom.Words() {
			t.Fatalf("column %d of the repaired row still physical %d (logical region)", c, phys)
		}
	}
	// The neighbouring rows stay put.
	if phys := dev.mem.physical(rowBase - 1); phys != rowBase-1 {
		t.Error("repair moved the previous row")
	}
	if phys := dev.mem.physical(rowBase + uint32(geom.Cols)); phys != rowBase+uint32(geom.Cols) {
		t.Error("repair moved the next row")
	}
}

func TestRepairExhaustsSpares(t *testing.T) {
	dev := testDevice(t)
	geom := dev.Geometry()
	// Bank 0: repair SpareRowsPerBank distinct rows, then one more fails.
	for r := 0; r < SpareRowsPerBank; r++ {
		addr := uint32(r * geom.Cols)
		if err := dev.RepairRow(addr); err != nil {
			t.Fatalf("repair %d: %v", r, err)
		}
	}
	if got := dev.SparesRemaining(0); got != 0 {
		t.Errorf("spares remaining = %d", got)
	}
	if err := dev.RepairRow(uint32(SpareRowsPerBank * geom.Cols)); err == nil {
		t.Error("repair beyond spare budget accepted")
	}
	// Other banks are unaffected.
	bank1 := uint32(geom.Rows * geom.Cols)
	if got := dev.SparesRemaining(bank1); got != SpareRowsPerBank {
		t.Errorf("bank 1 spares = %d", got)
	}
	if err := dev.RepairRow(bank1); err != nil {
		t.Errorf("bank 1 repair failed: %v", err)
	}
}

func TestRepairSameRowTwice(t *testing.T) {
	dev := testDevice(t)
	if err := dev.RepairRow(5); err != nil {
		t.Fatal(err)
	}
	if err := dev.RepairRow(7); err == nil { // same row (cols 0..15)
		t.Error("double repair of one row accepted")
	}
}

func TestRepairSurvivesReset(t *testing.T) {
	const addr = 11
	dev := weakDevice(t, addr, 2.5)
	if err := dev.RepairRow(addr); err != nil {
		t.Fatal(err)
	}
	dev.mem.Reset()
	p, err := dev.Profile(weakReadTest(addr))
	if err != nil {
		t.Fatal(err)
	}
	if p.Func.Failed() {
		t.Error("repair lost across Reset; eFuse repair must persist")
	}
}
