package dut

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/testgen"
)

func TestTraceMatchesSequence(t *testing.T) {
	dev := testDevice(t)
	tt := marchTest(t, testgen.NominalConditions())
	records, p, err := dev.Trace(tt)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(tt.Seq) {
		t.Fatalf("trace has %d records for %d vectors", len(records), len(tt.Seq))
	}
	for i, r := range records {
		if r.Cycle != i {
			t.Fatalf("record %d has cycle %d", i, r.Cycle)
		}
		if r.Op != tt.Seq[i].Op {
			t.Fatalf("record %d op %v, vector op %v", i, r.Op, tt.Seq[i].Op)
		}
		if r.ATD < 0 || r.ATD > 1 || r.Toggle < 0 || r.Toggle > 1 {
			t.Fatalf("record %d densities out of range: %+v", i, r)
		}
		if r.SSN != r.ATD*r.Toggle {
			t.Fatalf("record %d SSN %g != ATD·Toggle %g", i, r.SSN, r.ATD*r.Toggle)
		}
	}
	// Mean of per-cycle ATD must equal the profile's aggregate.
	var sum float64
	for _, r := range records {
		sum += r.ATD
	}
	if got, want := sum/float64(len(records)), p.Act.ATDMean; absf(got-want) > 1e-9 {
		t.Errorf("trace ATD mean %g, profile %g", got, want)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestTraceMarksCorruptedCycles(t *testing.T) {
	die := NewDie(0, CornerTypical, WithWeakCell(5, 2.5)) // corrupts always
	dev, err := NewDevice(DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	tt := testgen.Test{
		Name: "weakread",
		Seq: testgen.Sequence{
			{Op: testgen.OpWrite, Addr: 5, Data: 1},
			{Op: testgen.OpRead, Addr: 5},
			{Op: testgen.OpRead, Addr: 6},
			{Op: testgen.OpRead, Addr: 5},
		},
		Cond: testgen.NominalConditions(),
	}
	records, _, err := dev.Trace(tt)
	if err != nil {
		t.Fatal(err)
	}
	if !records[1].Corrupted || !records[3].Corrupted {
		t.Error("corrupted reads not marked")
	}
	if records[0].Corrupted || records[2].Corrupted {
		t.Error("clean cycles marked corrupted")
	}
}

func TestWriteTraceCSV(t *testing.T) {
	dev := testDevice(t)
	tt := testgen.Test{
		Name: "csv",
		Seq: testgen.Sequence{
			{Op: testgen.OpWrite, Addr: 1, Data: 0xFF},
			{Op: testgen.OpRead, Addr: 1},
		},
		Cond: testgen.NominalConditions(),
	}
	records, _, err := dev.Trace(tt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "cycle,op,addr") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,W,1,") {
		t.Errorf("first record: %q", lines[1])
	}
	if !strings.Contains(lines[2], ",R,1,") {
		t.Errorf("second record: %q", lines[2])
	}
}

func TestHotWindowFindsStressRegion(t *testing.T) {
	dev := testDevice(t)
	words := dev.Geometry().Words()
	// Calm prefix, hot middle, calm suffix.
	seq := make(testgen.Sequence, 0, 300)
	for i := 0; i < 100; i++ {
		seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: 0})
	}
	for i := 0; i < 100; i++ {
		addr, data := uint32(0), uint32(0)
		if i%2 == 1 {
			addr, data = words-1, 0xFFFFFFFF
		}
		seq = append(seq, testgen.Vector{Op: testgen.OpWrite, Addr: addr, Data: data})
	}
	for i := 0; i < 100; i++ {
		seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: 0})
	}
	records, _, err := dev.Trace(testgen.Test{Name: "hotmid", Seq: seq, Cond: testgen.NominalConditions()})
	if err != nil {
		t.Fatal(err)
	}
	start, end, mean, ok := HotWindow(records, 32)
	if !ok {
		t.Fatal("no hot window found")
	}
	if start < 90 || end > 210 {
		t.Errorf("hot window [%d, %d) outside the stress region [100, 200)", start, end)
	}
	if mean <= 0.3 {
		t.Errorf("hot window mean SSN %g too low", mean)
	}
}

func TestHotWindowShortTrace(t *testing.T) {
	if _, _, _, ok := HotWindow(nil, 8); ok {
		t.Error("empty trace has a hot window")
	}
	if _, _, _, ok := HotWindow(make([]CycleRecord, 4), 8); ok {
		t.Error("short trace has a hot window")
	}
	if _, _, _, ok := HotWindow(make([]CycleRecord, 4), 0); ok {
		t.Error("zero window accepted")
	}
}
