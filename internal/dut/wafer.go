package dut

import (
	"fmt"
	"math"
)

// Wafer-scale process variation. The paper's §1 sample — "a statistically
// significant number of devices" — comes off wafers, and wafer-level
// variation is spatially structured, not i.i.d.: a radial component
// (center-to-edge processing gradients in etch, CMP and implant), a linear
// across-wafer gradient (beam tilt, chamber asymmetry), and local random
// mismatch on top. A WaferLot models exactly those three layers, giving
// lot screening realistic spatial clusters of fast/slow corners and rare
// edge-concentrated defects instead of a uniform shuffle.
//
// The generator is random access: Die(i) is a pure function of (seed,
// index) and never touches shared state, so a streaming pipeline can
// materialize dies in any order, in parallel, without holding O(lot)
// memory — the property `NewDieLot`'s sequential *rand.Rand walk cannot
// offer.

// DieSource is a random-access supply of dies for population screening.
// Implementations must be deterministic (Die(i) always describes the same
// silicon) and safe for concurrent Die calls, so a streaming pipeline can
// pull from any goroutine.
type DieSource interface {
	// Len returns the population size.
	Len() int
	// Die materializes die i (0 ≤ i < Len). Callers own the result.
	Die(i int) *Die
}

// LotSlice adapts an in-memory die lot (e.g. NewDieLot's output) to the
// DieSource interface.
type LotSlice []*Die

// Len returns the lot size.
func (s LotSlice) Len() int { return len(s) }

// Die returns the i-th die of the slice.
func (s LotSlice) Die(i int) *Die { return s[i] }

// waferEdge is the normalized radius beyond which a grid cell falls off
// the (circular) wafer and is skipped when laying out dies.
const waferEdge = 1.0

// WaferLot is a lot of wafers with spatially structured process variation.
// It implements DieSource; dies are numbered wafer-major (die i lives on
// wafer i/DiesPerWafer at within-wafer position i%DiesPerWafer).
type WaferLot struct {
	seed     int64
	wafers   int
	perWafer int
	side     int // die-grid side length per wafer
}

// NewWaferLot builds a lot of `wafers` wafers carrying `diesPerWafer` dies
// each. The seed selects the lot; the same (seed, wafers, diesPerWafer)
// triple always describes the same silicon.
func NewWaferLot(seed int64, wafers, diesPerWafer int) (*WaferLot, error) {
	if wafers < 1 {
		return nil, fmt.Errorf("dut: wafer lot needs at least 1 wafer, got %d", wafers)
	}
	if diesPerWafer < 1 {
		return nil, fmt.Errorf("dut: wafer lot needs at least 1 die per wafer, got %d", diesPerWafer)
	}
	// Grid side: enough cells inside the inscribed circle to place all
	// dies. π/4 of a square grid's cells are inside the circle; pad a bit
	// and grow until the usable count suffices.
	side := int(math.Ceil(math.Sqrt(float64(diesPerWafer) / (math.Pi / 4))))
	if side < 1 {
		side = 1
	}
	for usableCells(side) < diesPerWafer {
		side++
	}
	return &WaferLot{seed: seed, wafers: wafers, perWafer: diesPerWafer, side: side}, nil
}

// usableCells counts grid cells whose center is on the wafer.
func usableCells(side int) int {
	n := 0
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if cx, cy := cellCenter(side, x, y); cx*cx+cy*cy <= waferEdge*waferEdge {
				n++
			}
		}
	}
	return n
}

// cellCenter maps grid cell (x, y) to normalized wafer coordinates in
// [-1, 1].
func cellCenter(side, x, y int) (cx, cy float64) {
	s := float64(side)
	return (float64(x)+0.5)/s*2 - 1, (float64(y)+0.5)/s*2 - 1
}

// Len returns the total die count of the lot.
func (l *WaferLot) Len() int { return l.wafers * l.perWafer }

// Wafers returns the wafer count.
func (l *WaferLot) Wafers() int { return l.wafers }

// DiesPerWafer returns the dies per wafer.
func (l *WaferLot) DiesPerWafer() int { return l.perWafer }

// Position returns die i's wafer index and normalized on-wafer coordinates
// (each in [-1, 1], radius ≤ 1) — for spatial analysis tooling and tests.
func (l *WaferLot) Position(i int) (wafer int, x, y float64) {
	wafer = i / l.perWafer
	x, y = l.cellXY(i % l.perWafer)
	return wafer, x, y
}

// cellXY maps a within-wafer die index to its cell center, skipping
// off-wafer cells in row-major order.
func (l *WaferLot) cellXY(j int) (float64, float64) {
	seen := 0
	for y := 0; y < l.side; y++ {
		for x := 0; x < l.side; x++ {
			cx, cy := cellCenter(l.side, x, y)
			if cx*cx+cy*cy > waferEdge*waferEdge {
				continue
			}
			if seen == j {
				return cx, cy
			}
			seen++
		}
	}
	return 0, 0 // unreachable for valid indices (side is sized for perWafer)
}

// waferParams are one wafer's systematic-variation coefficients, drawn
// deterministically from the lot seed and wafer index.
type waferParams struct {
	gradAngle float64 // across-wafer gradient direction
	gradSpeed float64 // gradient strength on the speed axis
	radSpeed  float64 // radial (center-to-edge) strength on the speed axis
	radLeak   float64 // radial strength on the leakage axis
	offSpeed  float64 // wafer-to-wafer mean speed offset
	defect    float64 // wafer defectivity scale for weak cells
}

func (l *WaferLot) params(wafer int) waferParams {
	h := hashChain(uint64(l.seed), uint64(wafer))
	u := func(salt uint64) float64 { return unit(hashChain(h, salt)) }
	return waferParams{
		gradAngle: u(1) * 2 * math.Pi,
		gradSpeed: 0.4 + 0.4*u(2), // σ-units across the wafer diameter
		radSpeed:  0.5 + 0.5*u(3), // σ-units center→edge
		radLeak:   0.04 + 0.05*u(4),
		offSpeed:  (u(5) - 0.5) * 0.8,
		defect:    0.5 + u(6),
	}
}

// Die materializes die i: corner and within-corner spread follow the
// wafer's radial + gradient field plus local gaussian mismatch, and a
// small, edge-weighted fraction of dies carries a weak cell. Pure function
// of (seed, i); safe to call concurrently.
func (l *WaferLot) Die(i int) *Die {
	wafer := i / l.perWafer
	p := l.params(wafer)
	x, y := l.cellXY(i % l.perWafer)
	r2 := x*x + y*y

	h := hashChain(uint64(l.seed), uint64(i)+0x9e3779b97f4a7c15)
	n1, n2 := gauss2(hashChain(h, 11))
	n3, n4 := gauss2(hashChain(h, 12))

	// Speed score in σ-units: positive = fast silicon. The radial term
	// subtracts its mean over the wafer (≈ radSpeed/2) so the lot stays
	// centered; edges run slow, the gradient tilts one side fast.
	spatial := p.offSpeed - p.radSpeed*(r2-0.5) + p.gradSpeed*(x*math.Cos(p.gradAngle)+y*math.Sin(p.gradAngle))/2
	score := spatial + n1

	var corner Corner
	switch {
	case score > 0.84: // ≈ 20% upper tail of a standard normal
		corner = CornerFast
	case score < -0.84:
		corner = CornerSlow
	default:
		corner = CornerTypical
	}

	d := NewDie(i, corner)
	// Within-corner spread: the residual of the score beyond the corner
	// threshold plus independent mismatch, scaled like NewDieLot's spread
	// so downstream physics sees familiar magnitudes.
	d.tdqOffsetNS += 0.35 * (0.6*score + 0.8*n2)
	d.speedFactor *= 1 - 0.02*(0.6*score+0.8*n3)
	d.leakageFactor *= 1 + p.radLeak*r2 + 0.05*n4

	// Edge-weighted defectivity: a weak cell shows up on a fraction of a
	// percent of center dies, several× that at the extreme edge.
	defectP := 0.002 * p.defect * (1 + 3*r2)
	hd := hashChain(h, 13)
	if unit(hd) < defectP {
		addr := uint32(hashChain(hd, 1))
		threshold := 1.45 + 0.35*unit(hashChain(hd, 2))
		WithWeakCell(addr, threshold)(d)
	}
	return d
}

// hashChain mixes a value into a running 64-bit hash (splitmix64
// finalizer) — the random-access substitute for a sequential rng.
func hashChain(h, v uint64) uint64 {
	z := h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash word to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// gauss2 derives two independent standard-normal samples from one hash
// word via Box–Muller over two chained uniforms.
func gauss2(h uint64) (float64, float64) {
	u1 := unit(hashChain(h, 1))
	u2 := unit(hashChain(h, 2))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}
