package dut

import (
	"fmt"
	"math/bits"

	"repro/internal/testgen"
)

// Geometry describes the banked memory array.
type Geometry struct {
	Banks int // number of banks
	Rows  int // rows per bank
	Cols  int // words per row
}

// DefaultGeometry is the 4-bank, 4096-word array used throughout the
// experiments (4 banks × 64 rows × 16 words).
func DefaultGeometry() Geometry {
	return Geometry{Banks: 4, Rows: 64, Cols: 16}
}

// Words returns the total number of addressable words.
func (g Geometry) Words() uint32 {
	return uint32(g.Banks * g.Rows * g.Cols)
}

// AddrBits returns the number of significant address bits.
func (g Geometry) AddrBits() int {
	return bits.Len32(g.Words() - 1)
}

// Decode splits a flat word address into bank, row and column indices.
// Layout: column bits are lowest, then row, then bank, which makes
// sequential addresses walk along a row (realistic burst behaviour).
func (g Geometry) Decode(addr uint32) (bank, row, col int) {
	col = int(addr) % g.Cols
	row = (int(addr) / g.Cols) % g.Rows
	bank = (int(addr) / (g.Cols * g.Rows)) % g.Banks
	return bank, row, col
}

// Validate reports an error for degenerate geometries.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("dut: invalid geometry %+v", g)
	}
	return nil
}

// Activity aggregates the switching activity a test sequence provoked while
// executing on the array. All densities are normalized to [0, 1]. The
// parametric layer maps Activity onto timing parameters; higher activity
// means more supply noise and smaller margins.
type Activity struct {
	Cycles int

	ATDMean float64 // mean address-transition density (per address bit)
	ATDPeak float64 // peak windowed address-transition density

	ToggleMean float64 // mean data-bus toggle density
	TogglePeak float64 // peak windowed data-bus toggle density

	SSNPeak float64 // peak windowed simultaneous-switching activity
	SSNMean float64 // mean simultaneous-switching activity
	// SSNSustained is the peak mean simultaneous-switching activity over a
	// long (sustainWindow-cycle) window: the supply network rides out short
	// bursts on its decoupling capacitance, so only *sustained* coincident
	// address/data switching collapses the sense margin. This is the term
	// that gates the weakness ridge.
	SSNSustained float64

	BankConflictRate float64 // same-bank different-row back-to-back accesses
	CouplingScore    float64 // adjacent-column complementary-data writes
	ReadRatio        float64 // fraction of read cycles
	RowHammer        float64 // repeated activation concentration on one row
}

// FunctionalResult reports functional (value) failures observed during
// execution — corrupted reads from weak cells under low effective supply.
type FunctionalResult struct {
	ReadCount     int
	Mismatches    int      // number of corrupted reads
	FirstMismatch int      // cycle index of first corrupted read (-1 if none)
	FailingAddrs  []uint32 // unique failing addresses, in first-seen order
}

// Failed reports whether any read returned corrupted data.
func (r FunctionalResult) Failed() bool { return r.Mismatches > 0 }

// Memory is the functional banked SRAM array. It executes sequences and
// records activity. Memory is not safe for concurrent use; each goroutine
// should own its Device.
type Memory struct {
	geom  Geometry
	words []uint32 // logical array followed by the spare-row region
	die   *Die

	// lastRowInBank tracks the open row per bank for conflict detection.
	lastRowInBank []int

	// Row-redundancy state (repair.go). Repairs survive Reset — they model
	// permanent eFuse/laser repair, not volatile configuration.
	rowRemap   map[int]uint32
	sparesUsed []int

	// scratch, when enabled, replaces ExecuteObserved's per-call maps with
	// dense reusable arrays (see EnableExecScratch).
	scratch *execScratch
}

// execScratch is the reusable observation state of one execution: dense
// per-(bank,row) activation counts with a touched list for O(touched)
// clearing, and a per-address epoch stamp that dedupes failing addresses
// without a per-call map. Consumption is order-independent (the row counts
// feed a max reduction, the stamps a first-seen check), so results are
// bit-identical to the map-based path.
type execScratch struct {
	rowHits  []int32  // [banks*rows] activation counts of the current run
	rowsHit  []int32  // touched rowHits slots, cleared at the next run
	failSeen []uint32 // per-address stamp; == epoch means seen this run
	epoch    uint32
}

// EnableExecScratch arms the persistent execution scratch: every subsequent
// Execute reuses one dense workspace instead of allocating two maps per
// call. Results are bit-identical with or without it (pinned by the
// exec-scratch equivalence property test); the trade is a fixed ~20 KiB of
// per-device memory, which is why it is opt-in — long-lived worker
// insertions (fleet workers, lot screeners) enable it, transient per-batch
// forks keep the allocation-free construction.
func (m *Memory) EnableExecScratch() {
	if m.scratch != nil {
		return
	}
	m.scratch = &execScratch{
		rowHits:  make([]int32, m.geom.Banks*m.geom.Rows),
		failSeen: make([]uint32, m.geom.Words()),
	}
}

// begin readies the scratch for one execution: clear the previous run's
// touched row counts and advance the fail-stamp epoch (clearing stamps only
// on the rare wrap).
func (sc *execScratch) begin() {
	for _, slot := range sc.rowsHit {
		sc.rowHits[slot] = 0
	}
	sc.rowsHit = sc.rowsHit[:0]
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.failSeen)
		sc.epoch = 1
	}
}

// NewMemory allocates a zero-initialized array over the given geometry.
func NewMemory(geom Geometry, die *Die) (*Memory, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if die == nil {
		return nil, fmt.Errorf("dut: nil die")
	}
	m := &Memory{
		geom:          geom,
		words:         make([]uint32, int(geom.Words())+geom.Banks*SpareRowsPerBank*geom.Cols),
		die:           die,
		lastRowInBank: make([]int, geom.Banks),
		sparesUsed:    make([]int, geom.Banks),
	}
	for i := range m.lastRowInBank {
		m.lastRowInBank[i] = -1
	}
	return m, nil
}

// Geometry returns the array geometry.
func (m *Memory) Geometry() Geometry { return m.geom }

// Retarget points the array at a different die, clearing contents, open-row
// state and — because repairs are per-die eFuse state — any row remaps.
// Retargeting reuses the word array, so a worker screening a stream of dies
// pays the O(words) allocation once instead of per die.
func (m *Memory) Retarget(die *Die) error {
	if die == nil {
		return fmt.Errorf("dut: nil die")
	}
	m.die = die
	m.rowRemap = nil
	for i := range m.sparesUsed {
		m.sparesUsed[i] = 0
	}
	m.Reset()
	return nil
}

// Reset clears the array contents and the open-row state.
func (m *Memory) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
	for i := range m.lastRowInBank {
		m.lastRowInBank[i] = -1
	}
}

// Peek returns the stored word without executing a bus cycle (test bench
// accessor, not part of the device's pin interface).
func (m *Memory) Peek(addr uint32) uint32 {
	return m.words[m.physical(addr%m.geom.Words())]
}

// Poke stores a word without executing a bus cycle.
func (m *Memory) Poke(addr uint32, data uint32) {
	m.words[m.physical(addr%m.geom.Words())] = data
}

// activityWindow is the droop-integration window in cycles: peak statistics
// are computed over sliding windows of this length, mirroring the supply
// network's fast time constant.
const activityWindow = 8

// sustainWindow is the long integration window for SSNSustained: the
// decoupling network absorbs bursts shorter than this.
const sustainWindow = 64

// CycleRecord is one bus cycle of an execution trace — the raw material
// for circuit-level analysis of a worst-case test (per-cycle switching and
// the exact cycle a read corrupted).
type CycleRecord struct {
	Cycle     int
	Op        testgen.OpKind
	Addr      uint32
	Bank      int
	Row       int
	Col       int
	Bus       uint32  // value on the data bus this cycle
	ATD       float64 // address-transition density of this cycle
	Toggle    float64 // data-bus toggle density of this cycle
	SSN       float64 // coincident switching of this cycle
	Corrupted bool    // read returned corrupted data (weak cell)
}

// Execute runs the sequence at the given effective supply voltage and
// returns the provoked activity plus functional results. Weak-cell reads
// corrupt when vddEff is below the cell's threshold; all other behaviour is
// ideal SRAM semantics (reads return the last written value, initially 0).
func (m *Memory) Execute(seq testgen.Sequence, vddEff float64) (Activity, FunctionalResult) {
	return m.ExecuteObserved(seq, vddEff, nil)
}

// ExecuteObserved is Execute with a per-cycle observer; observe may be nil.
func (m *Memory) ExecuteObserved(seq testgen.Sequence, vddEff float64, observe func(CycleRecord)) (Activity, FunctionalResult) {
	var act Activity
	fr := FunctionalResult{FirstMismatch: -1}
	if len(seq) == 0 {
		return act, fr
	}

	addrBits := float64(m.geom.AddrBits())
	words := m.geom.Words()

	var (
		prevAddr      uint32
		prevBus       uint32 // last value seen on the data bus (read or write)
		prevWrote     uint32
		prevWroteAddr uint32
		havePrev      bool
		haveWrite     bool

		atdSum, togSum, ssnSum    float64
		atdPeak, togPeak, ssnPeak float64
		conflicts, reads          int
		coupling                  float64
		rowHits                   map[int]int
		winATD, winTog, winSSN    [activityWindow]float64
		sumATDw, sumTogw, sumSSNw float64
		wIdx                      int
		winSus                    [sustainWindow]float64
		sumSus                    float64
		susIdx                    int
		ssnSustained              float64
		failSeen                  map[uint32]bool
	)
	// With the persistent scratch enabled the two per-call maps are replaced
	// by its dense arrays; the aggregation below is identical either way.
	sc := m.scratch
	if sc != nil {
		sc.begin()
	} else {
		rowHits = make(map[int]int)
		failSeen = make(map[uint32]bool)
	}

	for i, v := range seq {
		addr := v.Addr % words
		bank, row, col := m.geom.Decode(addr)

		atd := 0.0
		if havePrev && v.Op != testgen.OpNop {
			atd = float64(bits.OnesCount32(prevAddr^addr)) / addrBits
		}

		var bus uint32
		tog := 0.0
		corrupted := false
		switch v.Op {
		case testgen.OpWrite:
			bus = v.Data
			m.words[m.physical(addr)] = v.Data
			if haveWrite {
				// Bitline coupling: adjacent-column write with near-complementary data.
				flips := bits.OnesCount32(prevWrote ^ v.Data)
				dAddr := int64(addr) - int64(prevWroteAddr)
				if dAddr < 0 {
					dAddr = -dAddr
				}
				if flips >= 24 && dAddr >= 1 && dAddr <= 2 {
					coupling++
				}
			}
			prevWrote = v.Data
			prevWroteAddr = addr
			haveWrite = true
		case testgen.OpRead:
			reads++
			fr.ReadCount++
			phys := m.physical(addr)
			data := m.words[phys]
			if th, ok := m.die.WeakCellThreshold(phys); ok && vddEff < th {
				data ^= 1 << (addr % 32) // single-bit corruption
				corrupted = true
				fr.Mismatches++
				if fr.FirstMismatch < 0 {
					fr.FirstMismatch = i
				}
				if sc != nil {
					if sc.failSeen[addr] != sc.epoch {
						sc.failSeen[addr] = sc.epoch
						fr.FailingAddrs = append(fr.FailingAddrs, addr)
					}
				} else if !failSeen[addr] {
					failSeen[addr] = true
					fr.FailingAddrs = append(fr.FailingAddrs, addr)
				}
			}
			bus = data
		default: // OpNop: bus holds
			bus = prevBus
		}
		if havePrev && v.Op != testgen.OpNop {
			tog = float64(bits.OnesCount32(prevBus^bus)) / 32.0
		}

		ssn := atd * tog

		atdSum += atd
		togSum += tog
		ssnSum += ssn

		// Sliding-window peaks.
		sumATDw += atd - winATD[wIdx]
		winATD[wIdx] = atd
		sumTogw += tog - winTog[wIdx]
		winTog[wIdx] = tog
		sumSSNw += ssn - winSSN[wIdx]
		winSSN[wIdx] = ssn
		wIdx = (wIdx + 1) % activityWindow
		wlen := float64(activityWindow)
		if i+1 < activityWindow {
			wlen = float64(i + 1)
		}
		if a := sumATDw / wlen; a > atdPeak {
			atdPeak = a
		}
		if t := sumTogw / wlen; t > togPeak {
			togPeak = t
		}
		if s := sumSSNw / wlen; s > ssnPeak {
			ssnPeak = s
		}
		sumSus += ssn - winSus[susIdx]
		winSus[susIdx] = ssn
		susIdx = (susIdx + 1) % sustainWindow
		slen := float64(sustainWindow)
		if i+1 < sustainWindow {
			slen = float64(i + 1)
		}
		if i+1 >= sustainWindow/2 { // ignore the warm-up transient
			if s := sumSus / slen; s > ssnSustained {
				ssnSustained = s
			}
		}

		if observe != nil {
			observe(CycleRecord{
				Cycle: i, Op: v.Op, Addr: addr,
				Bank: bank, Row: row, Col: col,
				Bus: bus, ATD: atd, Toggle: tog, SSN: ssn,
				Corrupted: corrupted,
			})
		}

		// Bank conflict: back-to-back access to the same bank, different row.
		if v.Op != testgen.OpNop {
			if last := m.lastRowInBank[bank]; last >= 0 && last != row {
				conflicts++
			}
			m.lastRowInBank[bank] = row
			if sc != nil {
				slot := int32(bank*m.geom.Rows + row)
				if sc.rowHits[slot] == 0 {
					sc.rowsHit = append(sc.rowsHit, slot)
				}
				sc.rowHits[slot]++
			} else {
				rowHits[bank*m.geom.Rows+row]++
			}
		}
		_ = col

		prevAddr = addr
		prevBus = bus
		havePrev = true
	}

	n := float64(len(seq))
	act.Cycles = len(seq)
	act.ATDMean = atdSum / n
	act.ATDPeak = clamp01(atdPeak)
	act.ToggleMean = togSum / n
	act.TogglePeak = clamp01(togPeak)
	act.SSNMean = ssnSum / n
	act.SSNPeak = clamp01(ssnPeak)
	act.SSNSustained = clamp01(ssnSustained)
	act.BankConflictRate = float64(conflicts) / n
	act.CouplingScore = clamp01(coupling / n * 4)
	act.ReadRatio = float64(reads) / n
	maxRow := 0
	if sc != nil {
		for _, slot := range sc.rowsHit {
			if c := int(sc.rowHits[slot]); c > maxRow {
				maxRow = c
			}
		}
	} else {
		for _, c := range rowHits {
			if c > maxRow {
				maxRow = c
			}
		}
	}
	act.RowHammer = clamp01(float64(maxRow) / n)
	return act, fr
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
