package dut

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/testgen"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	m, err := NewMemory(DefaultGeometry(), NewDie(0, CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometryWordsAndBits(t *testing.T) {
	g := DefaultGeometry()
	if g.Words() != 4096 {
		t.Errorf("default geometry words = %d, want 4096", g.Words())
	}
	if g.AddrBits() != 12 {
		t.Errorf("default geometry addr bits = %d, want 12", g.AddrBits())
	}
}

func TestGeometryDecode(t *testing.T) {
	g := Geometry{Banks: 4, Rows: 64, Cols: 16}
	bank, row, col := g.Decode(0)
	if bank != 0 || row != 0 || col != 0 {
		t.Errorf("Decode(0) = %d,%d,%d", bank, row, col)
	}
	// Address 16 is the start of row 1 (cols are lowest bits).
	bank, row, col = g.Decode(16)
	if bank != 0 || row != 1 || col != 0 {
		t.Errorf("Decode(16) = %d,%d,%d, want bank 0 row 1 col 0", bank, row, col)
	}
	// One full bank is 64*16 = 1024 words.
	bank, row, col = g.Decode(1024)
	if bank != 1 || row != 0 || col != 0 {
		t.Errorf("Decode(1024) = %d,%d,%d, want bank 1", bank, row, col)
	}
}

func TestGeometryDecodeProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(a uint32) bool {
		addr := a % g.Words()
		bank, row, col := g.Decode(addr)
		recon := uint32(bank*g.Rows*g.Cols + row*g.Cols + col)
		return recon == addr &&
			bank >= 0 && bank < g.Banks &&
			row >= 0 && row < g.Rows &&
			col >= 0 && col < g.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := (Geometry{Banks: 0, Rows: 1, Cols: 1}).Validate(); err == nil {
		t.Error("zero-bank geometry accepted")
	}
	if err := DefaultGeometry().Validate(); err != nil {
		t.Errorf("default geometry rejected: %v", err)
	}
}

func TestNewMemoryErrors(t *testing.T) {
	if _, err := NewMemory(Geometry{}, NewDie(0, CornerTypical)); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := NewMemory(DefaultGeometry(), nil); err == nil {
		t.Error("nil die accepted")
	}
}

func TestMemoryReadAfterWrite(t *testing.T) {
	m := testMemory(t)
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 7, Data: 0xCAFEBABE},
		{Op: testgen.OpRead, Addr: 7},
	}
	_, fr := m.Execute(seq, 1.8)
	if fr.Failed() {
		t.Error("clean read-after-write reported functional failure")
	}
	if got := m.Peek(7); got != 0xCAFEBABE {
		t.Errorf("stored word = %08X", got)
	}
}

func TestMemoryResetClears(t *testing.T) {
	m := testMemory(t)
	m.Poke(5, 123)
	m.Reset()
	if m.Peek(5) != 0 {
		t.Error("Reset did not clear contents")
	}
}

func TestActivityEmptySequence(t *testing.T) {
	m := testMemory(t)
	act, fr := m.Execute(nil, 1.8)
	if act.Cycles != 0 {
		t.Errorf("empty sequence cycles = %d", act.Cycles)
	}
	if fr.Failed() {
		t.Error("empty sequence failed")
	}
}

func TestActivityRangesProperty(t *testing.T) {
	m := testMemory(t)
	gen := testgen.NewRandomGenerator(31, m.Geometry().Words(), testgen.DefaultConditionLimits())
	for i := 0; i < 50; i++ {
		m.Reset()
		act, _ := m.Execute(gen.Next().Seq, 1.8)
		check := func(name string, v float64) {
			if v < 0 || v > 1 {
				t.Fatalf("test %d: %s = %g outside [0,1]", i, name, v)
			}
		}
		check("ATDMean", act.ATDMean)
		check("ATDPeak", act.ATDPeak)
		check("ToggleMean", act.ToggleMean)
		check("TogglePeak", act.TogglePeak)
		check("SSNMean", act.SSNMean)
		check("SSNPeak", act.SSNPeak)
		check("SSNSustained", act.SSNSustained)
		check("CouplingScore", act.CouplingScore)
		check("ReadRatio", act.ReadRatio)
		check("RowHammer", act.RowHammer)
		if act.ATDPeak < act.ATDMean-1e-9 {
			t.Fatalf("test %d: ATD peak %g below mean %g", i, act.ATDPeak, act.ATDMean)
		}
		if act.SSNPeak < act.SSNSustained-1e-9 {
			t.Fatalf("test %d: 8-cycle SSN peak %g below 64-cycle sustained %g", i, act.SSNPeak, act.SSNSustained)
		}
	}
}

func TestIdleSequenceHasNoActivity(t *testing.T) {
	m := testMemory(t)
	seq := make(testgen.Sequence, 100) // all NOPs
	act, _ := m.Execute(seq, 1.8)
	if act.ATDMean != 0 || act.ToggleMean != 0 || act.SSNPeak != 0 {
		t.Errorf("idle bus has activity: %+v", act)
	}
}

func TestPingPongMaximizesATD(t *testing.T) {
	m := testMemory(t)
	words := m.Geometry().Words()
	seq := make(testgen.Sequence, 200)
	for i := range seq {
		addr := uint32(0)
		if i%2 == 1 {
			addr = words - 1 // all address bits flip
		}
		seq[i] = testgen.Vector{Op: testgen.OpRead, Addr: addr}
	}
	act, _ := m.Execute(seq, 1.8)
	if act.ATDMean < 0.99 {
		t.Errorf("complementary ping-pong ATD mean = %g, want ≈1", act.ATDMean)
	}
}

func TestCouplingScoreDetectsAdjacentComplementaryWrites(t *testing.T) {
	m := testMemory(t)
	seq := make(testgen.Sequence, 200)
	for i := range seq {
		d := uint32(0)
		if i%2 == 1 {
			d = 0xFFFFFFFF
		}
		seq[i] = testgen.Vector{Op: testgen.OpWrite, Addr: uint32(i % 2), Data: d}
	}
	act, _ := m.Execute(seq, 1.8)
	if act.CouplingScore < 0.99 {
		t.Errorf("adjacent complementary writes coupling = %g, want ≈1", act.CouplingScore)
	}

	// The same data written to the same single address must not couple.
	for i := range seq {
		seq[i].Addr = 0
	}
	m.Reset()
	act, _ = m.Execute(seq, 1.8)
	if act.CouplingScore != 0 {
		t.Errorf("same-address writes coupling = %g, want 0", act.CouplingScore)
	}
}

func TestBankConflictDetection(t *testing.T) {
	m := testMemory(t)
	g := m.Geometry()
	// Alternate between row 0 and row 1 of bank 0: every access conflicts.
	seq := make(testgen.Sequence, 100)
	for i := range seq {
		addr := uint32(0)
		if i%2 == 1 {
			addr = uint32(g.Cols) // row 1, same bank
		}
		seq[i] = testgen.Vector{Op: testgen.OpRead, Addr: addr}
	}
	act, _ := m.Execute(seq, 1.8)
	if act.BankConflictRate < 0.9 {
		t.Errorf("same-bank row ping-pong conflict rate = %g, want ≈1", act.BankConflictRate)
	}

	// Alternate between two banks, same row: no conflicts.
	for i := range seq {
		addr := uint32(0)
		if i%2 == 1 {
			addr = uint32(g.Rows * g.Cols) // bank 1, row 0
		}
		seq[i].Addr = addr
	}
	m.Reset()
	act, _ = m.Execute(seq, 1.8)
	if act.BankConflictRate != 0 {
		t.Errorf("alternating-bank conflict rate = %g, want 0", act.BankConflictRate)
	}
}

func TestWeakCellCorruptsOnlyBelowThreshold(t *testing.T) {
	die := NewDie(0, CornerTypical, WithWeakCell(9, 1.6))
	m, err := NewMemory(DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 9, Data: 0x12345678},
		{Op: testgen.OpRead, Addr: 9},
	}
	_, fr := m.Execute(seq, 1.8)
	if fr.Failed() {
		t.Error("weak cell corrupted above its threshold")
	}
	m.Reset()
	_, fr = m.Execute(seq, 1.5)
	if !fr.Failed() {
		t.Fatal("weak cell did not corrupt below its threshold")
	}
	if fr.Mismatches != 1 || fr.FirstMismatch != 1 {
		t.Errorf("mismatch accounting: %+v", fr)
	}
	if len(fr.FailingAddrs) != 1 || fr.FailingAddrs[0] != 9 {
		t.Errorf("failing addrs = %v", fr.FailingAddrs)
	}
}

func TestAddressesWrapModuloWords(t *testing.T) {
	m := testMemory(t)
	words := m.Geometry().Words()
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: words + 3, Data: 0xAB},
		{Op: testgen.OpRead, Addr: 3},
	}
	_, fr := m.Execute(seq, 1.8)
	if fr.Failed() {
		t.Error("wrapped write failed")
	}
	if m.Peek(3) != 0xAB {
		t.Error("address did not wrap modulo array size")
	}
}

// randomSeq draws a random vector sequence biased toward reads of low
// addresses, so weak cells actually fire and dedup paths are exercised.
func randomSeq(rng *rand.Rand, words uint32, n int) testgen.Sequence {
	seq := make(testgen.Sequence, n)
	for i := range seq {
		var op testgen.OpKind
		switch rng.Intn(10) {
		case 0:
			op = testgen.OpNop
		case 1, 2, 3, 4:
			op = testgen.OpWrite
		default:
			op = testgen.OpRead
		}
		addr := uint32(rng.Intn(int(words) + 7)) // a few wrap past the array
		if rng.Intn(3) == 0 {
			addr = uint32(rng.Intn(16)) // hammer the weak-cell region
		}
		seq[i] = testgen.Vector{Op: op, Addr: addr, Data: rng.Uint32()}
	}
	return seq
}

// TestExecScratchEquivalenceProperty pins the contract EnableExecScratch
// documents: the dense-scratch execution path is bit-identical to the
// map-based one — same Activity, same functional result, same failing
// address order — across random sequences reusing one scratch run after run.
func TestExecScratchEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		die := NewDie(int(seed), CornerTypical,
			WithWeakCell(3, 1.75), WithWeakCell(9, 1.9), WithWeakCell(14, 1.6))
		plain, err := NewMemory(DefaultGeometry(), die)
		if err != nil {
			t.Fatal(err)
		}
		scratched, err := NewMemory(DefaultGeometry(), die)
		if err != nil {
			t.Fatal(err)
		}
		scratched.EnableExecScratch()
		words := plain.Geometry().Words()
		for run := 0; run < 8; run++ {
			seq := randomSeq(rng, words, 1+rng.Intn(300))
			vdd := 1.4 + rng.Float64()*0.6
			actP, frP := plain.Execute(seq, vdd)
			actS, frS := scratched.Execute(seq, vdd)
			if actP != actS {
				t.Fatalf("seed %d run %d: activity diverged\nplain   %+v\nscratch %+v", seed, run, actP, actS)
			}
			if frP.ReadCount != frS.ReadCount || frP.Mismatches != frS.Mismatches ||
				frP.FirstMismatch != frS.FirstMismatch ||
				!reflect.DeepEqual(frP.FailingAddrs, frS.FailingAddrs) {
				t.Fatalf("seed %d run %d: functional result diverged\nplain   %+v\nscratch %+v", seed, run, frP, frS)
			}
		}
	}
}

// TestExecScratchEpochWrap forces the 32-bit fail-stamp epoch to wrap and
// checks dedup still works: a stale stamp from epoch N must not suppress a
// failing address in the wrapped epoch.
func TestExecScratchEpochWrap(t *testing.T) {
	die := NewDie(0, CornerTypical, WithWeakCell(5, 1.9))
	m, err := NewMemory(DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableExecScratch()
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 5, Data: 1},
		{Op: testgen.OpRead, Addr: 5},
		{Op: testgen.OpRead, Addr: 5},
	}
	_, fr := m.Execute(seq, 1.5)
	if len(fr.FailingAddrs) != 1 {
		t.Fatalf("before wrap: failing addrs = %v", fr.FailingAddrs)
	}
	m.scratch.epoch = ^uint32(0) // next begin() wraps to 0 and must re-arm
	_, fr = m.Execute(seq, 1.5)
	if len(fr.FailingAddrs) != 1 || fr.FailingAddrs[0] != 5 {
		t.Fatalf("after wrap: failing addrs = %v", fr.FailingAddrs)
	}
	if m.scratch.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", m.scratch.epoch)
	}
}
