package dut

import "math"

// Physics holds the parametric model constants that map switching activity,
// test conditions and process corner onto measurable AC parameters. The
// defaults are tuned so that the *shape* of the paper's Table 1 reproduces:
// a March baseline leaves most of the margin intact, uniform random tests
// erode a few nanoseconds more, and only coordinated high address/data
// activity (the hidden weakness ridge) provokes the worst-case drift close
// to — but not beyond — the 20 ns specification.
type Physics struct {
	// T_DQ valid-window surface (ns). Larger window = more margin; the
	// minimum is the worst case (fig. 7).
	TDQBaseNS      float64 // nominal window at 1.8 V, 25 °C, 100 MHz, idle
	TDQVddSlopeNS  float64 // ns per volt of effective supply above nominal
	TDQLowVddKneeV float64 // below this effective supply the sense amp degrades
	TDQLowVddGain  float64 // quadratic low-voltage degradation gain
	TDQTempGainNS  float64 // ns lost per 100 °C above 25 °C
	TDQClockGainNS float64 // ns lost per 100 MHz above 100 MHz

	PenATD      float64 // linear penalty × ATDPeak
	PenToggle   float64 // linear penalty × TogglePeak
	PenSSN      float64 // linear penalty × SSNPeak
	PenConflict float64 // linear penalty × bank-conflict activity
	PenCoupling float64 // linear penalty × bitline-coupling score

	// Weakness ridge: the nonlinear interaction term that models the design
	// weakness only coordinated activity provokes. RidgeGainNS scales the
	// product of four smoothstep terms: address activity, data-bus toggle,
	// *sustained* simultaneous switching (the decoupling network absorbs
	// short bursts) and bitline coupling (adjacent-column complementary
	// writes hitting a shared sense-amp stripe). No single random-generator
	// pattern style produces all four at once — a sweeping pattern gets
	// coupling but low address activity, a ping-pong pattern the reverse —
	// which is exactly why the paper's random baseline misses the worst
	// case while GA recombination of partial solutions finds it.
	RidgeGainNS float64
	RidgeATDLo  float64
	RidgeATDHi  float64
	RidgeTogLo  float64
	RidgeTogHi  float64
	RidgeSSNLo  float64
	RidgeSSNHi  float64
	RidgeCplLo  float64
	RidgeCplHi  float64

	// Supply network.
	IRDropVPerAct float64 // volts of static IR drop per unit mean activity
	SSNDroopV     float64 // volts of dynamic droop per unit SSN peak
	LeakTempGain  float64 // leakage activity-equivalent per 100 °C

	// Fmax surface (MHz). Pass region below Fmax.
	FmaxBaseMHz  float64
	FmaxVddSlope float64 // MHz per volt
	FmaxPenATD   float64
	FmaxPenTog   float64
	FmaxPenSSN   float64
	FmaxRidgeMHz float64

	// Vddmin surface (V). Pass region above Vddmin.
	VddMinBaseV    float64
	VddMinSSNGain  float64
	VddMinATDGain  float64
	VddMinTogGain  float64
	VddMinRidgeV   float64
	VddMinTempGain float64 // volts per 100 °C
}

// DefaultPhysics returns the tuned model constants.
func DefaultPhysics() Physics {
	return Physics{
		TDQBaseNS:      35.0,
		TDQVddSlopeNS:  9.0,
		TDQLowVddKneeV: 1.55,
		TDQLowVddGain:  25.0,
		TDQTempGainNS:  1.8,
		TDQClockGainNS: 2.5,

		PenATD:      1.6,
		PenToggle:   2.0,
		PenSSN:      1.8,
		PenConflict: 0.8,
		PenCoupling: 0.6,

		RidgeGainNS: 8.0,
		RidgeATDLo:  0.30,
		RidgeATDHi:  0.60,
		RidgeTogLo:  0.35,
		RidgeTogHi:  0.85,
		RidgeSSNLo:  0.30,
		RidgeSSNHi:  0.55,
		RidgeCplLo:  0.25,
		RidgeCplHi:  0.75,

		IRDropVPerAct: 0.05,
		SSNDroopV:     0.06,
		LeakTempGain:  0.02,

		FmaxBaseMHz:  125,
		FmaxVddSlope: 45,
		FmaxPenATD:   8,
		FmaxPenTog:   7,
		FmaxPenSSN:   9,
		FmaxRidgeMHz: 18,

		VddMinBaseV:    1.42,
		VddMinSSNGain:  0.12,
		VddMinATDGain:  0.05,
		VddMinTogGain:  0.03,
		VddMinRidgeV:   0.15,
		VddMinTempGain: 0.03,
	}
}

// smoothstep is the classic cubic smoothstep on [lo, hi].
func smoothstep(x, lo, hi float64) float64 {
	if hi <= lo {
		if x >= hi {
			return 1
		}
		return 0
	}
	t := (x - lo) / (hi - lo)
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}

// Ridge evaluates the weakness-interaction term in [0, 1]: it is near zero
// unless address activity, data-bus toggling, their *sustained* coincidence
// and bitline coupling are all simultaneously high. March patterns saturate
// only the toggle term; each random pattern style maxes at most two terms;
// only a directed search (the paper's NN+GA) assembles all four.
func (p Physics) Ridge(act Activity) float64 {
	a := smoothstep(act.ATDPeak, p.RidgeATDLo, p.RidgeATDHi)
	t := smoothstep(act.TogglePeak, p.RidgeTogLo, p.RidgeTogHi)
	s := smoothstep(act.SSNSustained, p.RidgeSSNLo, p.RidgeSSNHi)
	c := smoothstep(act.CouplingScore, p.RidgeCplLo, p.RidgeCplHi)
	return a * t * s * c
}

// EffectiveVdd returns the on-die supply after static IR drop and dynamic
// SSN droop under the given activity and temperature.
func (p Physics) EffectiveVdd(vdd, tempC float64, act Activity, die *Die) float64 {
	leak := p.LeakTempGain * math.Max(0, tempC-25) / 100 * die.LeakageFactor()
	meanAct := (act.ATDMean+act.ToggleMean)/2 + leak
	drop := p.IRDropVPerAct*meanAct + p.SSNDroopV*act.SSNPeak
	return vdd - drop
}

// TDQWindowNS evaluates the data-output valid window T_DQ (fig. 7) in ns
// for the given operating point, activity and die. The specification
// minimum is SpecTDQNS; smaller windows are worse and the minimum over all
// tests is the worst case the paper hunts.
func (p Physics) TDQWindowNS(vdd, tempC, clockMHz float64, act Activity, die *Die) float64 {
	vddEff := p.EffectiveVdd(vdd, tempC, act, die)
	w := p.TDQBaseNS + die.TDQOffsetNS()
	w += p.TDQVddSlopeNS * (vddEff - 1.8)
	if vddEff < p.TDQLowVddKneeV {
		d := p.TDQLowVddKneeV - vddEff
		w -= p.TDQLowVddGain * d * d
	}
	w -= p.TDQTempGainNS * (tempC - 25) / 100 * die.SpeedFactor()
	w -= p.TDQClockGainNS * (clockMHz - 100) / 100
	w -= p.PenATD * act.ATDPeak
	w -= p.PenToggle * act.TogglePeak
	w -= p.PenSSN * act.SSNPeak
	w -= p.PenConflict * clamp01(act.BankConflictRate*2)
	w -= p.PenCoupling * act.CouplingScore
	w -= p.RidgeGainNS * p.Ridge(act)
	return w
}

// FmaxMHz evaluates the maximum passing clock frequency for the given
// operating point and activity. The device passes below Fmax and fails
// above it (eq. 3 orientation).
func (p Physics) FmaxMHz(vdd, tempC float64, act Activity, die *Die) float64 {
	vddEff := p.EffectiveVdd(vdd, tempC, act, die)
	f := p.FmaxBaseMHz / die.SpeedFactor()
	f += p.FmaxVddSlope * (vddEff - 1.8)
	f -= p.FmaxBaseMHz * 0.1 * (tempC - 25) / 100
	f -= p.FmaxPenATD * act.ATDPeak
	f -= p.FmaxPenTog * act.TogglePeak
	f -= p.FmaxPenSSN * act.SSNPeak
	f -= p.FmaxRidgeMHz * p.Ridge(act)
	return f
}

// VddMinV evaluates the minimum passing supply voltage. The device passes
// above Vddmin and fails below it (eq. 4 orientation).
func (p Physics) VddMinV(tempC float64, act Activity, die *Die) float64 {
	v := p.VddMinBaseV - die.TDQOffsetNS()*0.01
	v += p.VddMinSSNGain * act.SSNPeak
	v += p.VddMinATDGain * act.ATDPeak
	v += p.VddMinTogGain * act.TogglePeak
	v += p.VddMinRidgeV * p.Ridge(act)
	v += p.VddMinTempGain * math.Abs(tempC-25) / 100
	return v
}

// SpecTDQNS is the T_DQ design specification of §6: the data output valid
// window must be at least 20 ns.
const SpecTDQNS = 20.0
