package dut

import (
	"fmt"

	"repro/internal/testgen"
)

// Device is one simulated memory test chip: a die (process corner), a
// functional array and the parametric physics. A Device is what the ATE
// simulator contacts; it is not safe for concurrent use.
type Device struct {
	die  *Die
	mem  *Memory
	phys Physics
}

// NewDevice assembles a device from a geometry and a die, using the default
// physics.
func NewDevice(geom Geometry, die *Die) (*Device, error) {
	return NewDeviceWithPhysics(geom, die, DefaultPhysics())
}

// NewDeviceWithPhysics assembles a device with explicit physics constants
// (used by ablation benchmarks).
func NewDeviceWithPhysics(geom Geometry, die *Die, phys Physics) (*Device, error) {
	mem, err := NewMemory(geom, die)
	if err != nil {
		return nil, err
	}
	return &Device{die: die, mem: mem, phys: phys}, nil
}

// Clone returns an independent device around the same die: a fresh memory
// array with the same geometry and the same physics constants. The die is
// shared — it is read-only during measurement — so a clone measures the
// same silicon without sharing any mutable state, which is what a parallel
// worker needs.
func (d *Device) Clone() (*Device, error) {
	return NewDeviceWithPhysics(d.mem.Geometry(), d.die, d.phys)
}

// Retarget swaps a different die into the device, reusing the memory array
// (contents, open-row state and per-die repairs are cleared). After
// Retarget the device measures the new silicon exactly as a freshly
// constructed device would; it exists so a lot-screening worker can walk
// thousands of dies without a per-die array allocation.
func (d *Device) Retarget(die *Die) error {
	if err := d.mem.Retarget(die); err != nil {
		return err
	}
	d.die = die
	return nil
}

// EnableExecScratch arms the array's persistent execution scratch (see
// Memory.EnableExecScratch): worth it for long-lived worker devices that
// profile thousands of sequences; results are unchanged. Clones do not
// inherit it — a fresh array starts allocation-free.
func (d *Device) EnableExecScratch() { d.mem.EnableExecScratch() }

// Die returns the device's die.
func (d *Device) Die() *Die { return d.die }

// Geometry returns the array geometry.
func (d *Device) Geometry() Geometry { return d.mem.Geometry() }

// Physics returns the parametric model constants.
func (d *Device) Physics() Physics { return d.phys }

// Profile is the result of executing one test on a device: the provoked
// activity and the functional outcome. Parametric values at any operating
// point derive cheaply from a Profile, because switching activity depends
// on the vector sequence, not on the measurement point.
type Profile struct {
	Test testgen.Test
	Act  Activity
	Func FunctionalResult

	die  *Die
	phys Physics
}

// Profile executes the test sequence once on a freshly cleared array and
// returns the activity/functional profile. When the die hosts weak cells
// the execution is repeated with the droop-corrected effective supply so
// functional corruption reflects the activity the sequence itself provokes.
func (d *Device) Profile(t testgen.Test) (Profile, error) {
	if err := t.Seq.Validate(d.mem.Geometry().Words()); err != nil {
		return Profile{}, fmt.Errorf("dut: profiling %s: %w", t.Name, err)
	}
	d.mem.Reset()
	act, fn := d.mem.Execute(t.Seq, t.Cond.VddV)
	if d.die.WeakCellCount() > 0 {
		vddEff := d.phys.EffectiveVdd(t.Cond.VddV, t.Cond.TempC, act, d.die)
		d.mem.Reset()
		act, fn = d.mem.Execute(t.Seq, vddEff)
	}
	return Profile{Test: t, Act: act, Func: fn, die: d.die, phys: d.phys}, nil
}

// TDQWindowNS returns the data-output valid window at the profile's own
// test conditions.
func (p Profile) TDQWindowNS() float64 {
	return p.TDQWindowNSAt(p.Test.Cond.VddV)
}

// TDQWindowNSAt returns the valid window with the supply overridden to vdd
// (temperature and clock stay at the test's conditions). The shmoo engine
// sweeps this axis.
func (p Profile) TDQWindowNSAt(vdd float64) float64 {
	return p.phys.TDQWindowNS(vdd, p.Test.Cond.TempC, p.Test.Cond.ClockMHz, p.Act, p.die)
}

// TDQWindowNSAtCond returns the valid window at a fully overridden
// operating point. The ATE uses this to fold in junction self-heating on
// top of the programmed ambient.
func (p Profile) TDQWindowNSAtCond(vdd, tempC, clockMHz float64) float64 {
	return p.phys.TDQWindowNS(vdd, tempC, clockMHz, p.Act, p.die)
}

// FmaxMHzAtCond returns Fmax at an overridden operating point.
func (p Profile) FmaxMHzAtCond(vdd, tempC float64) float64 {
	return p.phys.FmaxMHz(vdd, tempC, p.Act, p.die)
}

// VddMinVAtCond returns Vddmin at an overridden temperature.
func (p Profile) VddMinVAtCond(tempC float64) float64 {
	return p.phys.VddMinV(tempC, p.Act, p.die)
}

// MeanActivity returns a scalar activity summary in [0, 1], the heat the
// test deposits per cycle (used by the tester's thermal model).
func (p Profile) MeanActivity() float64 {
	return (p.Act.ATDMean + p.Act.ToggleMean) / 2
}

// FmaxMHz returns the maximum passing clock frequency at the profile's
// conditions.
func (p Profile) FmaxMHz() float64 {
	return p.phys.FmaxMHz(p.Test.Cond.VddV, p.Test.Cond.TempC, p.Act, p.die)
}

// VddMinV returns the minimum passing supply voltage at the profile's
// conditions.
func (p Profile) VddMinV() float64 {
	return p.phys.VddMinV(p.Test.Cond.TempC, p.Act, p.die)
}

// EffectiveVdd returns the droop-corrected on-die supply at the profile's
// conditions.
func (p Profile) EffectiveVdd() float64 {
	return p.phys.EffectiveVdd(p.Test.Cond.VddV, p.Test.Cond.TempC, p.Act, p.die)
}

// Ridge exposes the weakness-interaction activation for analysis tooling.
func (p Profile) Ridge() float64 { return p.phys.Ridge(p.Act) }
