package dut

import (
	"fmt"
	"sync"

	"repro/internal/testgen"
)

// ProfileBank shares pattern executions across the dies of a lot.
//
// The load-bearing physical fact (visible in Memory.Execute): the switching
// activity a sequence provokes — and its functional result — depend on the
// vector sequence and the array geometry only, never on the die, *unless*
// the die hosts weak cells (whose corruption is supply-dependent). Die
// variation enters later, in the parametric physics that map Activity onto
// T_DQ/Fmax/Vddmin. So when a lot screens ten thousand dies with the same
// worst-case test set, the expensive part — executing each pattern cycle by
// cycle — is identical for every weak-cell-free die and can be computed
// once per sequence instead of once per (die × sequence).
//
// Profile serves exactly that: for a clean die it stitches the banked
// Activity/FunctionalResult to the device's own die and physics; for a die
// with weak cells it falls back to a full per-die execution, preserving
// bit-exact corruption behaviour.
//
// A ProfileBank is safe for concurrent use; concurrent misses of the same
// sequence may both execute it, idempotently. Sequences profiled through a
// bank must not be mutated in place afterwards: the bank memoizes each
// sequence's fingerprint by backing-array identity, so an in-place rewrite
// would alias a stale key. (Lot screening — the bank's only producer —
// holds its test set immutable for the whole lot, and generator/GA code
// always clones before mutating.)
type ProfileBank struct {
	geom Geometry
	phys Physics

	mu      sync.RWMutex
	entries map[uint64]bankEntry
	// fps memoizes Sequence.Fingerprint by slice identity. Screening a lot
	// calls Profile once per (die × test) with the same handful of test
	// slices; without the memo, re-hashing a multi-thousand-vector sequence
	// per call dominates the clean-die fast path.
	fps map[seqIdent]uint64

	hits     int64
	computed int64
	bypassed int64
}

// seqIdent identifies a sequence by its backing array: same first-element
// pointer and length ⇒ same (unmutated) vectors.
type seqIdent struct {
	first *testgen.Vector
	n     int
}

// bankEntry is one banked execution: everything Execute produces that is
// die-independent.
type bankEntry struct {
	act Activity
	fn  FunctionalResult
}

// NewProfileBank returns an empty bank for the given geometry and physics.
// Devices profiled through the bank must share both.
func NewProfileBank(geom Geometry, phys Physics) (*ProfileBank, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &ProfileBank{
		geom:    geom,
		phys:    phys,
		entries: make(map[uint64]bankEntry),
		fps:     make(map[seqIdent]uint64),
	}, nil
}

// seqKey returns the sequence's bank key, memoizing the fingerprint by
// backing-array identity. The memo carries no validity claim — Validate
// still runs before any execution.
func (b *ProfileBank) seqKey(s testgen.Sequence) uint64 {
	if len(s) == 0 {
		return s.Fingerprint()
	}
	id := seqIdent{first: &s[0], n: len(s)}
	b.mu.RLock()
	key, ok := b.fps[id]
	b.mu.RUnlock()
	if ok {
		return key
	}
	key = s.Fingerprint()
	b.mu.Lock()
	b.fps[id] = key
	b.mu.Unlock()
	return key
}

// refDie is the clean reference die bank executions run against. Its
// process factors are irrelevant — Execute never reads them — but it must
// carry no weak cells.
var refDie = NewDie(-1, CornerTypical)

// Profile returns the test's profile for the device, sharing the pattern
// execution across dies when the die is weak-cell-free. The result is
// bit-identical to dev.Profile(t).
func (b *ProfileBank) Profile(dev *Device, t testgen.Test) (Profile, error) {
	if dev.Die().WeakCellCount() > 0 || dev.Geometry() != b.geom {
		// Weak cells make execution supply- and die-dependent; a foreign
		// geometry makes the banked activity wrong. Full per-die path.
		b.mu.Lock()
		b.bypassed++
		b.mu.Unlock()
		return dev.Profile(t)
	}
	key := b.seqKey(t.Seq)
	b.mu.RLock()
	e, ok := b.entries[key]
	b.mu.RUnlock()
	if ok {
		// A banked entry under this key means the identical sequence already
		// validated and executed; skip both.
		b.mu.Lock()
		b.hits++
		b.mu.Unlock()
	} else {
		if err := t.Seq.Validate(b.geom.Words()); err != nil {
			return Profile{}, fmt.Errorf("dut: profiling %s: %w", t.Name, err)
		}
		mem, err := NewMemory(b.geom, refDie)
		if err != nil {
			return Profile{}, err
		}
		// Supply is irrelevant without weak cells; pass the test's own so a
		// future observer hook sees faithful conditions.
		act, fn := mem.Execute(t.Seq, t.Cond.VddV)
		e = bankEntry{act: act, fn: fn}
		b.mu.Lock()
		b.entries[key] = e
		b.computed++
		b.mu.Unlock()
	}
	return Profile{Test: t, Act: e.act, Func: e.fn, die: dev.Die(), phys: dev.Physics()}, nil
}

// Len returns the number of banked sequences.
func (b *ProfileBank) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// Hits returns how many Profile calls reused a banked execution.
func (b *ProfileBank) Hits() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.hits
}

// Computed returns how many sequences were executed into the bank.
func (b *ProfileBank) Computed() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.computed
}

// Bypassed returns how many Profile calls fell back to the per-die path
// (weak cells or geometry mismatch).
func (b *ProfileBank) Bypassed() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bypassed
}
