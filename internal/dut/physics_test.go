package dut

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmoothstep(t *testing.T) {
	if got := smoothstep(0.0, 0.2, 0.8); got != 0 {
		t.Errorf("below lo: %g", got)
	}
	if got := smoothstep(1.0, 0.2, 0.8); got != 1 {
		t.Errorf("above hi: %g", got)
	}
	if got := smoothstep(0.5, 0.2, 0.8); got <= 0 || got >= 1 {
		t.Errorf("midpoint out of (0,1): %g", got)
	}
	// Degenerate edges behave as a step.
	if smoothstep(1, 0.5, 0.5) != 1 || smoothstep(0, 0.5, 0.5) != 0 {
		t.Error("degenerate smoothstep not a step function")
	}
}

func TestSmoothstepMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if x > y {
			x, y = y, x
		}
		return smoothstep(x, 0.2, 0.8) <= smoothstep(y, 0.2, 0.8)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRidgeRequiresAllFourTerms(t *testing.T) {
	p := DefaultPhysics()
	full := Activity{ATDPeak: 1, TogglePeak: 1, SSNSustained: 1, CouplingScore: 1}
	if got := p.Ridge(full); got != 1 {
		t.Errorf("fully coordinated activity ridge = %g, want 1", got)
	}
	// Zeroing any one term must kill the ridge.
	for name, act := range map[string]Activity{
		"no-atd":      {TogglePeak: 1, SSNSustained: 1, CouplingScore: 1},
		"no-toggle":   {ATDPeak: 1, SSNSustained: 1, CouplingScore: 1},
		"no-ssn":      {ATDPeak: 1, TogglePeak: 1, CouplingScore: 1},
		"no-coupling": {ATDPeak: 1, TogglePeak: 1, SSNSustained: 1},
	} {
		if got := p.Ridge(act); got != 0 {
			t.Errorf("%s ridge = %g, want 0", name, got)
		}
	}
}

func TestEffectiveVddDropsWithActivity(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	idle := p.EffectiveVdd(1.8, 25, Activity{}, die)
	busy := p.EffectiveVdd(1.8, 25, Activity{ATDMean: 0.8, ToggleMean: 0.8, SSNPeak: 0.8}, die)
	if idle != 1.8 {
		t.Errorf("idle effective Vdd = %g, want 1.8", idle)
	}
	if busy >= idle {
		t.Errorf("busy effective Vdd %g not below idle %g", busy, idle)
	}
}

func TestEffectiveVddLeakageGrowsWithTemp(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	cold := p.EffectiveVdd(1.8, 25, Activity{}, die)
	hot := p.EffectiveVdd(1.8, 125, Activity{}, die)
	if hot >= cold {
		t.Errorf("hot effective Vdd %g not below cold %g", hot, cold)
	}
}

func TestTDQWindowMonotoneInVdd(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	act := Activity{ATDPeak: 0.3, TogglePeak: 0.5, SSNPeak: 0.2}
	prev := math.Inf(-1)
	for vdd := 1.4; vdd <= 2.2; vdd += 0.05 {
		w := p.TDQWindowNS(vdd, 25, 100, act, die)
		if w < prev {
			t.Fatalf("T_DQ window not monotone in Vdd at %g V: %g < %g", vdd, w, prev)
		}
		prev = w
	}
}

func TestTDQWindowActivityPenalty(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	idle := p.TDQWindowNS(1.8, 25, 100, Activity{}, die)
	busy := p.TDQWindowNS(1.8, 25, 100, Activity{ATDPeak: 0.8, TogglePeak: 0.9, SSNPeak: 0.6}, die)
	if busy >= idle {
		t.Errorf("busy window %g not below idle %g", busy, idle)
	}
	if idle < 30 || idle > 40 {
		t.Errorf("idle window %g ns implausible for the 35 ns nominal", idle)
	}
}

func TestTDQWindowTempAndClock(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	base := p.TDQWindowNS(1.8, 25, 100, Activity{}, die)
	hot := p.TDQWindowNS(1.8, 125, 100, Activity{}, die)
	fast := p.TDQWindowNS(1.8, 25, 133, Activity{}, die)
	if hot >= base {
		t.Errorf("hot window %g not below 25°C window %g", hot, base)
	}
	if fast >= base {
		t.Errorf("133 MHz window %g not below 100 MHz window %g", fast, base)
	}
}

func TestTDQWindowCornerOrdering(t *testing.T) {
	p := DefaultPhysics()
	act := Activity{TogglePeak: 0.5}
	wFF := p.TDQWindowNS(1.8, 25, 100, act, NewDie(0, CornerFast))
	wTT := p.TDQWindowNS(1.8, 25, 100, act, NewDie(1, CornerTypical))
	wSS := p.TDQWindowNS(1.8, 25, 100, act, NewDie(2, CornerSlow))
	if !(wFF > wTT && wTT > wSS) {
		t.Errorf("corner windows not ordered FF > TT > SS: %g, %g, %g", wFF, wTT, wSS)
	}
}

func TestLowVddKneeDegrades(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	// The slope below the knee must exceed the linear slope above it.
	above := p.TDQWindowNS(1.70, 25, 100, Activity{}, die) - p.TDQWindowNS(1.65, 25, 100, Activity{}, die)
	below := p.TDQWindowNS(1.50, 25, 100, Activity{}, die) - p.TDQWindowNS(1.45, 25, 100, Activity{}, die)
	if below <= above {
		t.Errorf("no sense-amp knee: slope below %g ≤ slope above %g", below, above)
	}
}

func TestFmaxMonotoneInVdd(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	lo := p.FmaxMHz(1.5, 25, Activity{}, die)
	hi := p.FmaxMHz(2.0, 25, Activity{}, die)
	if hi <= lo {
		t.Errorf("Fmax not increasing with Vdd: %g at 1.5V, %g at 2.0V", lo, hi)
	}
}

func TestFmaxActivityPenalty(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	idle := p.FmaxMHz(1.8, 25, Activity{}, die)
	busy := p.FmaxMHz(1.8, 25, Activity{ATDPeak: 1, TogglePeak: 1, SSNPeak: 1}, die)
	if busy >= idle {
		t.Errorf("busy Fmax %g not below idle %g", busy, idle)
	}
	if idle < 100 || idle > 150 {
		t.Errorf("idle Fmax %g MHz implausible", idle)
	}
}

func TestVddMinRisesWithActivity(t *testing.T) {
	p := DefaultPhysics()
	die := NewDie(0, CornerTypical)
	idle := p.VddMinV(25, Activity{}, die)
	busy := p.VddMinV(25, Activity{ATDPeak: 1, TogglePeak: 1, SSNPeak: 1, SSNSustained: 1, CouplingScore: 1}, die)
	if busy <= idle {
		t.Errorf("busy Vddmin %g not above idle %g", busy, idle)
	}
	if idle < 1.2 || idle > 1.6 {
		t.Errorf("idle Vddmin %g V implausible", idle)
	}
}

func TestRidgeInUnitRangeProperty(t *testing.T) {
	p := DefaultPhysics()
	f := func(a, b, c, d float64) bool {
		act := Activity{
			ATDPeak:       math.Abs(math.Mod(a, 1)),
			TogglePeak:    math.Abs(math.Mod(b, 1)),
			SSNSustained:  math.Abs(math.Mod(c, 1)),
			CouplingScore: math.Abs(math.Mod(d, 1)),
		}
		r := p.Ridge(act)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
