// Package dut implements the device under test: a behavioural model of the
// 140 nm memory test chip the paper characterizes. The model has two layers:
//
//   - a functional layer (memory.go): a banked SRAM array that executes test
//     sequences cycle by cycle and records the switching activity the
//     sequence provokes on the address and data buses;
//   - a parametric layer (physics.go, device.go): supply-noise and timing
//     physics that map the recorded activity, the test conditions and the
//     die's process corner onto measurable AC parameters — the data output
//     valid time T_DQ of fig. 7, the maximum clock frequency, and the
//     minimum operating voltage.
//
// The essential property reproduced from the paper is that the parameters
// are *test dependent*: different vector sequences provoke different trip
// points, and a narrow class of high-activity sequences provokes a much
// larger drift (the hidden "design weakness") that deterministic March
// baselines and uniform random tests are unlikely to excite.
package dut

import (
	"math"
	"math/rand"
	"sort"
)

// Corner identifies a process corner of a fabricated die.
type Corner uint8

const (
	// CornerTypical is the nominal process point.
	CornerTypical Corner = iota
	// CornerFast has faster transistors (larger timing margins).
	CornerFast
	// CornerSlow has slower transistors (smaller timing margins).
	CornerSlow
)

// String returns the conventional corner name.
func (c Corner) String() string {
	switch c {
	case CornerTypical:
		return "TT"
	case CornerFast:
		return "FF"
	case CornerSlow:
		return "SS"
	default:
		return "corner?"
	}
}

// Die captures the per-device process variation of one fabricated sample.
// Characterization selects "a statistically significant sample of devices"
// (§1); NewDieLot draws such a sample.
type Die struct {
	ID     int
	Corner Corner

	// tdqOffsetNS shifts the die's nominal T_DQ window (process spread).
	tdqOffsetNS float64
	// speedFactor scales access-time sensitivity (1.0 = nominal).
	speedFactor float64
	// leakageFactor scales temperature-dependent leakage (1.0 = nominal).
	leakageFactor float64
	// weakCells maps word addresses to the effective-Vdd threshold below
	// which reads of that cell corrupt (functional failure injection).
	weakCells map[uint32]float64
}

// DieOption customizes dies produced by NewDie.
type DieOption func(*Die)

// WithExtraTDQOffsetNS shifts the die's nominal T_DQ window by an
// additional amount on top of the corner's — used to construct explicit
// process outliers (e.g. marginal dies that violate the spec only under
// the worst-case test) in screening scenarios and tests.
func WithExtraTDQOffsetNS(deltaNS float64) DieOption {
	return func(d *Die) { d.tdqOffsetNS += deltaNS }
}

// WithWeakCell injects a marginal cell: reads of addr corrupt whenever the
// effective supply (after droop) is below thresholdV. The paper stores
// functional failure patterns separately from parametric drift; weak cells
// are what provokes them in this model.
func WithWeakCell(addr uint32, thresholdV float64) DieOption {
	return func(d *Die) {
		if d.weakCells == nil {
			d.weakCells = make(map[uint32]float64)
		}
		d.weakCells[addr] = thresholdV
	}
}

// NewDie constructs a die at the given corner with deterministic
// corner-dependent parameters.
func NewDie(id int, corner Corner, opts ...DieOption) *Die {
	d := &Die{ID: id, Corner: corner, speedFactor: 1, leakageFactor: 1}
	switch corner {
	case CornerFast:
		d.tdqOffsetNS = +1.2
		d.speedFactor = 0.92
		d.leakageFactor = 1.35
	case CornerSlow:
		d.tdqOffsetNS = -1.1
		d.speedFactor = 1.09
		d.leakageFactor = 0.8
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// NewDieLot draws n dies with random within-corner spread from the seeded
// source, emulating a characterization sample lot. Roughly 60% of dies are
// typical, 20% fast and 20% slow.
func NewDieLot(seed int64, n int) []*Die {
	rng := rand.New(rand.NewSource(seed))
	lot := make([]*Die, n)
	for i := range lot {
		var corner Corner
		switch r := rng.Float64(); {
		case r < 0.6:
			corner = CornerTypical
		case r < 0.8:
			corner = CornerFast
		default:
			corner = CornerSlow
		}
		d := NewDie(i, corner)
		// Within-corner gaussian spread.
		d.tdqOffsetNS += rng.NormFloat64() * 0.35
		d.speedFactor *= 1 + rng.NormFloat64()*0.02
		d.leakageFactor *= 1 + rng.NormFloat64()*0.05
		lot[i] = d
	}
	return lot
}

// TDQOffsetNS returns the die's process shift of the nominal T_DQ window.
func (d *Die) TDQOffsetNS() float64 { return d.tdqOffsetNS }

// SpeedFactor returns the die's access-time scale factor.
func (d *Die) SpeedFactor() float64 { return d.speedFactor }

// LeakageFactor returns the die's leakage scale factor.
func (d *Die) LeakageFactor() float64 { return d.leakageFactor }

// WeakCellThreshold returns the corruption threshold for addr and whether
// the address hosts a weak cell.
func (d *Die) WeakCellThreshold(addr uint32) (float64, bool) {
	t, ok := d.weakCells[addr]
	return t, ok
}

// WeakCellCount returns the number of injected weak cells.
func (d *Die) WeakCellCount() int { return len(d.weakCells) }

// Fingerprint returns a 64-bit FNV-1a content hash of the die: ID, corner,
// the three process factors (exact float bits) and the weak-cell map in
// address order. Two dies fingerprint equal exactly when they describe the
// same silicon, which is what lets disk-cached screening results key on
// "this die" rather than "this process run".
func (d *Die) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(d.ID))
	mix(uint64(d.Corner))
	mix(math.Float64bits(d.tdqOffsetNS))
	mix(math.Float64bits(d.speedFactor))
	mix(math.Float64bits(d.leakageFactor))
	if len(d.weakCells) > 0 {
		addrs := make([]uint32, 0, len(d.weakCells))
		for a := range d.weakCells {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			mix(uint64(a))
			mix(math.Float64bits(d.weakCells[a]))
		}
	}
	return h
}
