package dut

import "testing"

func TestCornerString(t *testing.T) {
	cases := map[Corner]string{
		CornerTypical: "TT",
		CornerFast:    "FF",
		CornerSlow:    "SS",
		Corner(9):     "corner?",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Corner(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestCornerOrdering(t *testing.T) {
	fast := NewDie(0, CornerFast)
	typ := NewDie(1, CornerTypical)
	slow := NewDie(2, CornerSlow)
	if !(fast.TDQOffsetNS() > typ.TDQOffsetNS() && typ.TDQOffsetNS() > slow.TDQOffsetNS()) {
		t.Errorf("T_DQ offsets not ordered FF > TT > SS: %g, %g, %g",
			fast.TDQOffsetNS(), typ.TDQOffsetNS(), slow.TDQOffsetNS())
	}
	if !(fast.SpeedFactor() < typ.SpeedFactor() && typ.SpeedFactor() < slow.SpeedFactor()) {
		t.Errorf("speed factors not ordered FF < TT < SS")
	}
	if fast.LeakageFactor() <= typ.LeakageFactor() {
		t.Error("fast corner should leak more than typical")
	}
}

func TestWeakCellInjection(t *testing.T) {
	d := NewDie(0, CornerTypical, WithWeakCell(42, 1.6), WithWeakCell(100, 1.5))
	if d.WeakCellCount() != 2 {
		t.Fatalf("weak cell count %d, want 2", d.WeakCellCount())
	}
	th, ok := d.WeakCellThreshold(42)
	if !ok || th != 1.6 {
		t.Errorf("weak cell 42 threshold = %g, %v", th, ok)
	}
	if _, ok := d.WeakCellThreshold(43); ok {
		t.Error("address 43 reported as weak")
	}
}

func TestDieLotDeterministicAndSpread(t *testing.T) {
	lotA := NewDieLot(5, 50)
	lotB := NewDieLot(5, 50)
	if len(lotA) != 50 {
		t.Fatalf("lot size %d", len(lotA))
	}
	for i := range lotA {
		if lotA[i].Corner != lotB[i].Corner || lotA[i].TDQOffsetNS() != lotB[i].TDQOffsetNS() {
			t.Fatalf("same-seed lots diverge at die %d", i)
		}
	}
	corners := make(map[Corner]int)
	offsets := make(map[float64]bool)
	for _, d := range lotA {
		corners[d.Corner]++
		offsets[d.TDQOffsetNS()] = true
	}
	if corners[CornerTypical] == 0 || corners[CornerFast] == 0 || corners[CornerSlow] == 0 {
		t.Errorf("lot missing a corner: %v", corners)
	}
	if len(offsets) < 40 {
		t.Errorf("within-corner spread too quantized: only %d distinct offsets", len(offsets))
	}
}

func TestDieLotIDs(t *testing.T) {
	lot := NewDieLot(1, 10)
	for i, d := range lot {
		if d.ID != i {
			t.Errorf("die %d has ID %d", i, d.ID)
		}
	}
}
