package dut

import (
	"math"
	"sync"
	"testing"

	"repro/internal/testgen"
)

func TestNewWaferLotValidation(t *testing.T) {
	if _, err := NewWaferLot(1, 0, 10); err == nil {
		t.Error("0 wafers accepted")
	}
	if _, err := NewWaferLot(1, 2, 0); err == nil {
		t.Error("0 dies per wafer accepted")
	}
}

func TestWaferLotShapeAndIDs(t *testing.T) {
	l, err := NewWaferLot(7, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 150 || l.Wafers() != 3 || l.DiesPerWafer() != 50 {
		t.Fatalf("shape: len=%d wafers=%d per=%d", l.Len(), l.Wafers(), l.DiesPerWafer())
	}
	for _, i := range []int{0, 49, 50, 149} {
		d := l.Die(i)
		if d.ID != i {
			t.Errorf("Die(%d).ID = %d", i, d.ID)
		}
		wafer, x, y := l.Position(i)
		if wafer != i/50 {
			t.Errorf("Position(%d) wafer = %d, want %d", i, wafer, i/50)
		}
		if r := math.Hypot(x, y); r > 1 {
			t.Errorf("Position(%d) radius %v off wafer", i, r)
		}
	}
}

// Random access must be deterministic and order-independent: the same index
// always yields identical silicon, also under concurrent materialization.
func TestWaferLotDeterministicRandomAccess(t *testing.T) {
	l, _ := NewWaferLot(42, 2, 80)
	want := make([]uint64, l.Len())
	for i := range want {
		want[i] = l.Die(i).Fingerprint()
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := l.Len() - 1; i >= 0; i-- {
				if got := l.Die(i).Fingerprint(); got != want[i] {
					t.Errorf("goroutine %d: Die(%d) fingerprint %#x, want %#x", g, i, got, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
	// A different seed describes different silicon.
	l2, _ := NewWaferLot(43, 2, 80)
	same := 0
	for i := range want {
		if l2.Die(i).Fingerprint() == want[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d of %d dies identical across seeds", same, len(want))
	}
}

func TestWaferLotCornerMixAndSpatialStructure(t *testing.T) {
	l, _ := NewWaferLot(7, 4, 400)
	counts := map[Corner]int{}
	var innerSpeed, outerSpeed float64
	var inner, outer int
	for i := 0; i < l.Len(); i++ {
		d := l.Die(i)
		counts[d.Corner]++
		_, x, y := l.Position(i)
		if x*x+y*y < 0.3 {
			innerSpeed += d.SpeedFactor()
			inner++
		} else if x*x+y*y > 0.7 {
			outerSpeed += d.SpeedFactor()
			outer++
		}
		if d.SpeedFactor() <= 0 || d.LeakageFactor() <= 0 {
			t.Fatalf("die %d: non-positive factors %+v", i, d)
		}
	}
	n := l.Len()
	for c, want := range map[Corner]float64{CornerTypical: 0.6, CornerFast: 0.2, CornerSlow: 0.2} {
		got := float64(counts[c]) / float64(n)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("corner %v fraction %.3f, want ≈ %.2f", c, got, want)
		}
	}
	// Radial structure: edge dies run slower (higher speedFactor) on
	// average than center dies.
	if inner == 0 || outer == 0 {
		t.Fatal("degenerate spatial sample")
	}
	if outerSpeed/float64(outer) <= innerSpeed/float64(inner) {
		t.Errorf("no radial slowdown: center mean %.5f, edge mean %.5f",
			innerSpeed/float64(inner), outerSpeed/float64(outer))
	}
}

func TestWaferLotDefectivity(t *testing.T) {
	l, _ := NewWaferLot(7, 5, 2000)
	weak := 0
	for i := 0; i < l.Len(); i++ {
		weak += min(l.Die(i).WeakCellCount(), 1)
	}
	// Expected rate ~0.2–0.8%; require the mechanism fires but stays rare.
	if weak == 0 {
		t.Error("no weak dies in a 10k-die lot")
	}
	if frac := float64(weak) / float64(l.Len()); frac > 0.05 {
		t.Errorf("weak-die fraction %.4f implausibly high", frac)
	}
}

func TestLotSliceAdapter(t *testing.T) {
	lot := NewDieLot(1, 5)
	var src DieSource = LotSlice(lot)
	if src.Len() != 5 {
		t.Fatalf("Len = %d", src.Len())
	}
	for i := range lot {
		if src.Die(i) != lot[i] {
			t.Errorf("Die(%d) is not the slice element", i)
		}
	}
}

func TestDieFingerprint(t *testing.T) {
	a := NewDie(3, CornerFast)
	b := NewDie(3, CornerFast)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical dies fingerprint differently")
	}
	for name, other := range map[string]*Die{
		"id":     NewDie(4, CornerFast),
		"corner": NewDie(3, CornerSlow),
		"tdq":    NewDie(3, CornerFast, WithExtraTDQOffsetNS(0.001)),
		"weak":   NewDie(3, CornerFast, WithWeakCell(7, 1.5)),
	} {
		if other.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s variation not reflected in fingerprint", name)
		}
	}
	// Weak-cell iteration order must not matter.
	w1 := NewDie(0, CornerTypical, WithWeakCell(1, 1.5), WithWeakCell(2, 1.6), WithWeakCell(3, 1.7))
	w2 := NewDie(0, CornerTypical, WithWeakCell(3, 1.7), WithWeakCell(1, 1.5), WithWeakCell(2, 1.6))
	if w1.Fingerprint() != w2.Fingerprint() {
		t.Error("weak-cell insertion order changes fingerprint")
	}
}

func TestDeviceRetarget(t *testing.T) {
	geom := DefaultGeometry()
	d1 := NewDie(0, CornerSlow)
	d2 := NewDie(1, CornerFast)
	reused, err := NewDevice(geom, d1)
	if err != nil {
		t.Fatal(err)
	}
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 3, Data: 0xFFFFFFFF},
		{Op: testgen.OpRead, Addr: 3},
		{Op: testgen.OpWrite, Addr: 100, Data: 0x12345678},
		{Op: testgen.OpRead, Addr: 100},
	}
	tst := testgen.Test{Name: "retarget", Seq: seq, Cond: testgen.Conditions{VddV: 1.8, TempC: 25, ClockMHz: 100}}

	// Dirty the array and repair a row on die 1, then retarget to die 2.
	if _, err := reused.Profile(tst); err != nil {
		t.Fatal(err)
	}
	if err := reused.RepairRow(3); err != nil {
		t.Fatal(err)
	}
	if err := reused.Retarget(d2); err != nil {
		t.Fatal(err)
	}
	if reused.Die() != d2 {
		t.Fatal("Die() still the old die")
	}
	if reused.RepairedRows() != 0 {
		t.Errorf("repairs survived retarget: %d", reused.RepairedRows())
	}

	fresh, err := NewDevice(geom, d2)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := reused.Profile(tst)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := fresh.Profile(tst)
	if err != nil {
		t.Fatal(err)
	}
	if pa.TDQWindowNS() != pb.TDQWindowNS() || pa.FmaxMHz() != pb.FmaxMHz() || pa.VddMinV() != pb.VddMinV() {
		t.Errorf("retargeted device differs from fresh device: %v/%v/%v vs %v/%v/%v",
			pa.TDQWindowNS(), pa.FmaxMHz(), pa.VddMinV(),
			pb.TDQWindowNS(), pb.FmaxMHz(), pb.VddMinV())
	}
	if err := reused.Retarget(nil); err == nil {
		t.Error("Retarget(nil) accepted")
	}
}

func TestProfileBankMatchesDirectProfile(t *testing.T) {
	geom := DefaultGeometry()
	bank, err := NewProfileBank(geom, DefaultPhysics())
	if err != nil {
		t.Fatal(err)
	}
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 1, Data: 0xAAAAAAAA},
		{Op: testgen.OpWrite, Addr: 2, Data: 0x55555555},
		{Op: testgen.OpRead, Addr: 1},
		{Op: testgen.OpRead, Addr: 2},
	}
	tst := testgen.Test{Name: "bank", Seq: seq, Cond: testgen.Conditions{VddV: 1.62, TempC: 85, ClockMHz: 120}}

	dies := []*Die{
		NewDie(0, CornerTypical),
		NewDie(1, CornerFast),
		NewDie(2, CornerSlow, WithExtraTDQOffsetNS(-2)),
		NewDie(3, CornerTypical, WithWeakCell(1, 2.5)), // corrupts: forces bypass
	}
	for _, die := range dies {
		dev, err := NewDevice(geom, die)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := dev.Profile(tst)
		if err != nil {
			t.Fatal(err)
		}
		banked, err := bank.Profile(dev, tst)
		if err != nil {
			t.Fatal(err)
		}
		if banked.Act != direct.Act {
			t.Errorf("die %d: banked activity differs: %+v vs %+v", die.ID, banked.Act, direct.Act)
		}
		if banked.Func.Mismatches != direct.Func.Mismatches || banked.Func.ReadCount != direct.Func.ReadCount {
			t.Errorf("die %d: banked functional result differs", die.ID)
		}
		if banked.TDQWindowNS() != direct.TDQWindowNS() ||
			banked.FmaxMHz() != direct.FmaxMHz() ||
			banked.VddMinV() != direct.VddMinV() {
			t.Errorf("die %d: banked parametrics differ", die.ID)
		}
	}
	// Three clean dies share one execution; the weak die bypasses.
	if bank.Computed() != 1 {
		t.Errorf("Computed = %d, want 1", bank.Computed())
	}
	if bank.Hits() != 2 {
		t.Errorf("Hits = %d, want 2", bank.Hits())
	}
	if bank.Bypassed() != 1 {
		t.Errorf("Bypassed = %d, want 1", bank.Bypassed())
	}
	if bank.Len() != 1 {
		t.Errorf("Len = %d, want 1", bank.Len())
	}
}

func TestProfileBankThroughATEProfiler(t *testing.T) {
	// The bank slots into the ATE's Profiler hook without changing
	// measurement outcomes for clean dies.
	geom := DefaultGeometry()
	bank, err := NewProfileBank(geom, DefaultPhysics())
	if err != nil {
		t.Fatal(err)
	}
	die := NewDie(0, CornerSlow)
	seq := testgen.Sequence{
		{Op: testgen.OpWrite, Addr: 1, Data: 0xFFFF0000},
		{Op: testgen.OpRead, Addr: 1},
	}
	tst := testgen.Test{Name: "hook", Seq: seq, Cond: testgen.Conditions{VddV: 1.8, TempC: 25, ClockMHz: 100}}

	run := func(profiler func(*Device, testgen.Test) (Profile, error)) Profile {
		dev, err := NewDevice(geom, die)
		if err != nil {
			t.Fatal(err)
		}
		if profiler != nil {
			p, err := profiler(dev, tst)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		p, err := dev.Profile(tst)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	direct := run(nil)
	banked := run(bank.Profile)
	if direct.Act != banked.Act || direct.TDQWindowNS() != banked.TDQWindowNS() {
		t.Error("profiler hook path diverges from direct profiling")
	}
}
