package dut

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/testgen"
)

// Trace executes the test once and returns the full per-cycle record —
// the artifact handed to transistor-level simulation when a worst-case
// test goes to detailed analysis (§6: "we further analyze the potential
// design weaknesses ... using a transistor-level simulator and/or ATE").
// The trace is taken at the droop-corrected effective supply, matching
// Profile's functional semantics.
func (d *Device) Trace(t testgen.Test) ([]CycleRecord, Profile, error) {
	p, err := d.Profile(t)
	if err != nil {
		return nil, Profile{}, err
	}
	vddEff := p.EffectiveVdd()
	d.mem.Reset()
	records := make([]CycleRecord, 0, len(t.Seq))
	d.mem.ExecuteObserved(t.Seq, vddEff, func(r CycleRecord) {
		records = append(records, r)
	})
	return records, p, nil
}

// WriteTraceCSV renders a trace as CSV with a header row, one line per
// cycle — directly loadable by waveform and spreadsheet tools.
func WriteTraceCSV(w io.Writer, records []CycleRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycle,op,addr,bank,row,col,bus,atd,toggle,ssn,corrupted"); err != nil {
		return err
	}
	for _, r := range records {
		corrupted := 0
		if r.Corrupted {
			corrupted = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%d\n",
			r.Cycle, r.Op, r.Addr, r.Bank, r.Row, r.Col, r.Bus,
			r.ATD, r.Toggle, r.SSN, corrupted); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// HotWindow returns the [start, end) cycle range with the highest mean SSN
// over windows of the given length — where the supply stress concentrates,
// the first place a failure analyst looks. ok is false when the trace is
// shorter than the window.
func HotWindow(records []CycleRecord, window int) (start, end int, meanSSN float64, ok bool) {
	if window <= 0 || len(records) < window {
		return 0, 0, 0, false
	}
	var sum float64
	for i := 0; i < window; i++ {
		sum += records[i].SSN
	}
	best, bestAt := sum, 0
	for i := window; i < len(records); i++ {
		sum += records[i].SSN - records[i-window].SSN
		if sum > best {
			best, bestAt = sum, i-window+1
		}
	}
	return bestAt, bestAt + window, best / float64(window), true
}
