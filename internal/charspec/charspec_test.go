package charspec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

func rig(t *testing.T) (*ate.ATE, []testgen.Test) {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 3)
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(4, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	tests := gen.Batch(5)
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0x55555555, cond)
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, march)
	return tester, tests
}

func smallConfig() Config {
	return Config{
		Grid:      EnvGrid{VddV: []float64{1.65, 1.8, 1.95}, TempC: []float64{25, 125}},
		Guardband: 0.05,
	}
}

func TestGridValidate(t *testing.T) {
	if err := (EnvGrid{}).Validate(); err == nil {
		t.Error("empty grid accepted")
	}
	if DefaultGrid().Validate() != nil {
		t.Error("default grid rejected")
	}
	if got := DefaultGrid().Corners(); got != 20 {
		t.Errorf("default grid corners = %d, want 20", got)
	}
}

func TestExtractValidation(t *testing.T) {
	tester, tests := rig(t)
	if _, err := Extract(tester, ate.TDQ, nil, smallConfig()); err == nil {
		t.Error("empty test set accepted")
	}
	bad := smallConfig()
	bad.Guardband = 1.5
	if _, err := Extract(tester, ate.TDQ, tests, bad); err == nil {
		t.Error("guardband ≥ 1 accepted")
	}
	bad = smallConfig()
	bad.Grid = EnvGrid{}
	if _, err := Extract(tester, ate.TDQ, tests, bad); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestExtractTDQSpecReport(t *testing.T) {
	tester, tests := rig(t)
	cfg := smallConfig()
	rep, err := Extract(tester, ate.TDQ, tests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerCorner) != cfg.Grid.Corners() {
		t.Fatalf("%d corner results for %d corners", len(rep.PerCorner), cfg.Grid.Corners())
	}

	// Physics: the worst T_DQ corner must be the low-voltage / hot one.
	if rep.WorstCorner.VddV != 1.65 || rep.WorstCorner.TempC != 125 {
		t.Errorf("worst corner %s, want 1.65V/125°C", rep.WorstCorner)
	}
	// Every corner's worst must be ≥ the global worst (min-spec direction).
	for _, c := range rep.PerCorner {
		if c.Worst < rep.WorstValue-1e-9 {
			t.Errorf("corner %s worst %.3f below reported global worst %.3f",
				c.Corner, c.Worst, rep.WorstValue)
		}
		if c.Spread < 0 {
			t.Error("negative spread")
		}
	}
	// Guardband direction: the recommendation must be stricter (smaller)
	// than the worst measurement for a minimum spec.
	if rep.RecommendedLimit >= rep.WorstValue {
		t.Errorf("recommended limit %.3f not below worst measurement %.3f",
			rep.RecommendedLimit, rep.WorstValue)
	}
	if rep.Measurements <= 0 {
		t.Error("no measurement accounting")
	}
	if rep.WorstTest == "" {
		t.Error("worst test not identified")
	}
}

func TestExtractVddMinDirection(t *testing.T) {
	// Vddmin is a maximum spec: the worst corner is the one with the
	// *largest* measured Vddmin, and the guardband raises the limit.
	tester, tests := rig(t)
	cfg := smallConfig()
	rep, err := Extract(tester, ate.VddMin, tests[:3], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.PerCorner {
		if c.Worst > rep.WorstValue+1e-9 {
			t.Errorf("corner %s Vddmin %.3f above global worst %.3f", c.Corner, c.Worst, rep.WorstValue)
		}
	}
	if rep.RecommendedLimit <= rep.WorstValue {
		t.Errorf("max-spec guardband must raise the limit: %.3f vs %.3f",
			rep.RecommendedLimit, rep.WorstValue)
	}
}

func TestExtractSpecCompliance(t *testing.T) {
	// Ordinary random/March tests on the typical die must yield a spec
	// recommendation that meets the 20 ns design spec — the device only
	// violates margins under the coordinated worst case.
	tester, tests := rig(t)
	rep, err := Extract(tester, ate.TDQ, tests, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MeetsSpec {
		t.Errorf("benign tests failed spec extraction: recommended %.3f vs spec %.3f",
			rep.RecommendedLimit, rep.Spec)
	}
}

func TestReportFormat(t *testing.T) {
	tester, tests := rig(t)
	rep, err := Extract(tester, ate.TDQ, tests[:2], smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Format()
	for _, want := range []string{"Specification extraction", "worst corner", "guardband", "1.65V/125°C", "meets spec"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCornerString(t *testing.T) {
	c := Corner{VddV: 1.8, TempC: 25}
	if c.String() != "1.80V/25°C" {
		t.Errorf("corner string %q", c.String())
	}
}

func TestReportExportCSV(t *testing.T) {
	tester, tests := rig(t)
	rep, err := Extract(tester, ate.TDQ, tests[:2], smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+smallConfig().Grid.Corners() {
		t.Fatalf("CSV has %d lines, want header + %d corners", len(lines), smallConfig().Grid.Corners())
	}
	if lines[0] != "vdd_v,temp_c,worst,mean,spread,wcr,worst_test" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.65,25,") {
		t.Errorf("first row %q", lines[1])
	}
}
