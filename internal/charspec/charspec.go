// Package charspec implements the end goal of §1's characterization
// methodology: "repeat the test for every combination of two or more
// environmental variables … this set of information helps to define the
// final device specification at the end of the characterization phase."
//
// Given a set of tests (typically the worst-case database produced by the
// CI flow plus the deterministic baselines), the extractor measures the
// trip point of every test at every supply/temperature combination, finds
// the worst corner, and derives the recommended specification limit with a
// guardband.
package charspec

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/ate"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// EnvGrid is the set of environmental combinations to characterize over.
type EnvGrid struct {
	VddV  []float64
	TempC []float64
}

// DefaultGrid covers the characterization window: five supplies across
// 1.6–2.0 V and four temperatures from cold to hot.
func DefaultGrid() EnvGrid {
	return EnvGrid{
		VddV:  []float64{1.62, 1.71, 1.80, 1.89, 1.98},
		TempC: []float64{-40, 25, 85, 125},
	}
}

// Validate reports degenerate grids.
func (g EnvGrid) Validate() error {
	if len(g.VddV) == 0 || len(g.TempC) == 0 {
		return fmt.Errorf("charspec: empty environmental grid")
	}
	return nil
}

// Corners returns the number of combinations.
func (g EnvGrid) Corners() int { return len(g.VddV) * len(g.TempC) }

// Corner is one environmental combination.
type Corner struct {
	VddV  float64
	TempC float64
}

// String renders "1.80V/25°C".
func (c Corner) String() string {
	return fmt.Sprintf("%.2fV/%g°C", c.VddV, c.TempC)
}

// CornerResult is the multiple-trip-point outcome at one corner.
type CornerResult struct {
	Corner    Corner
	Worst     float64 // worst trip point at this corner
	WorstTest string
	Mean      float64
	Spread    float64
	WCR       float64 // WCR of the worst trip point
}

// Report is the extracted specification.
type Report struct {
	Parameter ate.Parameter
	Spec      float64
	SpecIsMin bool

	PerCorner []CornerResult
	// WorstCorner is the environmental combination with the worst trip
	// point; WorstValue/WorstTest identify the measurement.
	WorstCorner Corner
	WorstValue  float64
	WorstTest   string

	// GuardbandFrac is the applied margin; RecommendedLimit is the final
	// device specification this characterization supports: the worst
	// measured value degraded by the guardband.
	GuardbandFrac    float64
	RecommendedLimit float64
	// MeetsSpec reports whether the recommendation still satisfies the
	// design specification.
	MeetsSpec bool

	Measurements int64
}

// Config tunes the extraction.
type Config struct {
	Grid EnvGrid
	// Guardband is the fractional margin applied to the worst measurement
	// (default 0.05 = 5%).
	Guardband float64
	// Searcher constructs the per-corner searcher; nil defaults to
	// refined SUTP (each corner gets a fresh reference trip point).
	Searcher func() search.Searcher
}

// DefaultConfig returns the standard extraction setup.
func DefaultConfig() Config {
	return Config{Grid: DefaultGrid(), Guardband: 0.05}
}

// Extract characterizes the tests over every environmental combination and
// derives the specification report. Test conditions are overridden per
// corner (clock is kept from each test).
func Extract(tester *ate.ATE, param ate.Parameter, tests []testgen.Test, cfg Config) (*Report, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("charspec: no tests to characterize")
	}
	if cfg.Guardband < 0 || cfg.Guardband >= 1 {
		return nil, fmt.Errorf("charspec: guardband %g outside [0, 1)", cfg.Guardband)
	}

	spec, isMin := param.SpecValue()
	rep := &Report{
		Parameter:     param,
		Spec:          spec,
		SpecIsMin:     isMin,
		GuardbandFrac: cfg.Guardband,
	}
	before := tester.Stats().Measurements

	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b // smaller is worse for a minimum spec
		}
		return a > b
	}
	rep.WorstValue = math.Inf(1)
	if !isMin {
		rep.WorstValue = math.Inf(-1)
	}

	for _, vdd := range cfg.Grid.VddV {
		for _, temp := range cfg.Grid.TempC {
			corner := Corner{VddV: vdd, TempC: temp}
			runner := trippoint.NewRunner(tester, param)
			if cfg.Searcher != nil {
				runner.Searcher = cfg.Searcher()
			} else {
				runner.Searcher = &search.SUTP{Refine: true}
			}
			cr := CornerResult{Corner: corner}
			worst := math.Inf(1)
			if !isMin {
				worst = math.Inf(-1)
			}
			for _, t := range tests {
				ct := t.Clone()
				ct.Name = fmt.Sprintf("%s@%s", t.Name, corner)
				ct.Cond.VddV = vdd
				ct.Cond.TempC = temp
				m, err := runner.Measure(ct)
				if err != nil {
					return nil, fmt.Errorf("charspec: corner %s: %w", corner, err)
				}
				if !m.Converged {
					continue
				}
				if worseThan(m.TripPoint, worst) {
					worst = m.TripPoint
					cr.WorstTest = t.Name
				}
			}
			if math.IsInf(worst, 0) {
				return nil, fmt.Errorf("charspec: no test converged at corner %s", corner)
			}
			stats := runner.DSV().Stats()
			cr.Worst = worst
			cr.Mean = stats.Mean
			cr.Spread = stats.Range
			cr.WCR = wcr.For(worst, spec, isMin)
			rep.PerCorner = append(rep.PerCorner, cr)

			if worseThan(worst, rep.WorstValue) {
				rep.WorstValue = worst
				rep.WorstCorner = corner
				rep.WorstTest = cr.WorstTest
			}
		}
	}

	if isMin {
		rep.RecommendedLimit = rep.WorstValue * (1 - cfg.Guardband)
		rep.MeetsSpec = rep.RecommendedLimit >= spec
	} else {
		rep.RecommendedLimit = rep.WorstValue * (1 + cfg.Guardband)
		rep.MeetsSpec = rep.RecommendedLimit <= spec
	}
	rep.Measurements = tester.Stats().Measurements - before
	return rep, nil
}

// Format renders the report as a characterization summary table.
func (r *Report) Format() string {
	var b strings.Builder
	dir := "min"
	if !r.SpecIsMin {
		dir = "max"
	}
	fmt.Fprintf(&b, "Specification extraction: %s (design spec: %s %.3g %s)\n",
		r.Parameter, dir, r.Spec, r.Parameter.Unit())
	fmt.Fprintf(&b, "%-16s %10s %10s %9s %8s %-12s\n", "corner", "worst", "mean", "spread", "WCR", "worst test")
	for _, c := range r.PerCorner {
		fmt.Fprintf(&b, "%-16s %10.3f %10.3f %9.3f %8.3f %-12s\n",
			c.Corner.String(), c.Worst, c.Mean, c.Spread, c.WCR, c.WorstTest)
	}
	fmt.Fprintf(&b, "worst corner: %s (%s = %.3f %s by %s)\n",
		r.WorstCorner, r.Parameter, r.WorstValue, r.Parameter.Unit(), r.WorstTest)
	fmt.Fprintf(&b, "recommended limit with %.0f%% guardband: %.3f %s — meets spec: %v\n",
		r.GuardbandFrac*100, r.RecommendedLimit, r.Parameter.Unit(), r.MeetsSpec)
	fmt.Fprintf(&b, "cost: %d measurements over %d corners\n", r.Measurements, len(r.PerCorner))
	return b.String()
}

// ExportCSV writes the per-corner results as CSV for plotting tools.
func (r *Report) ExportCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "vdd_v,temp_c,worst,mean,spread,wcr,worst_test"); err != nil {
		return err
	}
	for _, c := range r.PerCorner {
		if _, err := fmt.Fprintf(bw, "%g,%g,%.4f,%.4f,%.4f,%.4f,%s\n",
			c.Corner.VddV, c.Corner.TempC, c.Worst, c.Mean, c.Spread, c.WCR, c.WorstTest); err != nil {
			return err
		}
	}
	return bw.Flush()
}
