package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Machine-readable forms of TraceDiff and BenchDiff: one JSON schema shared
// by `tracestat diff -json` / `tracestat benchdiff -json` and the admin
// server's /runs/diff endpoint, so CI scripts and the observatory speak the
// same format. NaN percentages (absent or zero baselines) encode as null —
// the output is always strict JSON.

// TraceDiffJSON is the encodable form of a TraceDiff.
type TraceDiffJSON struct {
	FailOverPct     float64          `json:"fail_over_pct"`
	MinMeasurements int64            `json:"min_measurements"`
	FailOnNew       bool             `json:"fail_on_new"`
	Regressions     int              `json:"regressions"`
	Labels          []LabelDeltaJSON `json:"labels"`
}

// LabelDeltaJSON is one joined rollup row. Old/New are null when the label
// exists on only one side; the pct fields are null when not computable.
type LabelDeltaJSON struct {
	Label           string      `json:"label"`
	Old             *RollupJSON `json:"old"`
	New             *RollupJSON `json:"new"`
	MeasurementsPct *float64    `json:"measurements_pct"`
	SimTimePct      *float64    `json:"sim_time_pct"`
	Regressed       bool        `json:"regressed"`
	Reason          string      `json:"reason,omitempty"`
}

// RollupJSON is one side's per-label cost rollup.
type RollupJSON struct {
	Count        int64   `json:"count"`
	Measurements int64   `json:"measurements"`
	Vectors      int64   `json:"vectors"`
	SimTimeSec   float64 `json:"sim_time_sec"`
}

// JSON converts the diff into its encodable form.
func (d *TraceDiff) JSON() TraceDiffJSON {
	out := TraceDiffJSON{
		FailOverPct:     d.Opts.FailOverPct,
		MinMeasurements: d.Opts.MinMeasurements,
		FailOnNew:       d.Opts.FailOnNew,
		Regressions:     len(d.Regressions()),
		Labels:          make([]LabelDeltaJSON, 0, len(d.Deltas)),
	}
	for _, row := range d.Deltas {
		out.Labels = append(out.Labels, LabelDeltaJSON{
			Label:           row.Label,
			Old:             rollupJSON(row.Old),
			New:             rollupJSON(row.New),
			MeasurementsPct: finitePtr(row.MeasurementsPct),
			SimTimePct:      finitePtr(row.SimTimePct),
			Regressed:       row.Regressed,
			Reason:          row.Reason,
		})
	}
	return out
}

// WriteJSON writes the diff as indented JSON.
func (d *TraceDiff) WriteJSON(w io.Writer) error {
	return writeIndented(w, d.JSON(), "trace diff")
}

// BenchDiffJSON is the encodable form of a BenchDiff.
type BenchDiffJSON struct {
	FailOverPct       float64          `json:"fail_over_pct"`
	IncludeTimeBased  bool             `json:"include_time_based"`
	Failed            bool             `json:"failed"`
	Regressions       int              `json:"regressions"`
	MissingBenchmarks []string         `json:"missing_benchmarks,omitempty"`
	Deltas            []BenchDeltaJSON `json:"deltas"`
}

// BenchDeltaJSON is one (benchmark, metric) comparison row. New is null
// when the metric stopped being reported; Pct is null when not computable.
type BenchDeltaJSON struct {
	Benchmark string   `json:"benchmark"`
	Metric    string   `json:"metric"`
	Old       float64  `json:"old"`
	New       *float64 `json:"new"`
	Pct       *float64 `json:"worse_pct"`
	Regressed bool     `json:"regressed"`
	Skipped   string   `json:"skipped,omitempty"`
}

// JSON converts the diff into its encodable form.
func (d *BenchDiff) JSON() BenchDiffJSON {
	out := BenchDiffJSON{
		FailOverPct:       d.Opts.FailOverPct,
		IncludeTimeBased:  d.Opts.IncludeTimeBased,
		Failed:            d.Failed(),
		Regressions:       len(d.Regressions()),
		MissingBenchmarks: d.MissingBenchmarks,
		Deltas:            make([]BenchDeltaJSON, 0, len(d.Deltas)),
	}
	for _, row := range d.Deltas {
		out.Deltas = append(out.Deltas, BenchDeltaJSON{
			Benchmark: row.Benchmark,
			Metric:    row.Metric,
			Old:       row.Old,
			New:       finitePtr(row.New),
			Pct:       finitePtr(row.Pct),
			Regressed: row.Regressed,
			Skipped:   row.Skipped,
		})
	}
	return out
}

// WriteJSON writes the diff as indented JSON.
func (d *BenchDiff) WriteJSON(w io.Writer) error {
	return writeIndented(w, d.JSON(), "bench diff")
}

func rollupJSON(r *Rollup) *RollupJSON {
	if r == nil {
		return nil
	}
	return &RollupJSON{
		Count:        int64(r.Count),
		Measurements: r.Measurements,
		Vectors:      r.Vectors,
		SimTimeSec:   r.SimTimeSec,
	}
}

// finitePtr maps NaN (and infinities, equally unencodable) to nil.
func finitePtr(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

func writeIndented(w io.Writer, v any, what string) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding %s: %w", what, err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}
