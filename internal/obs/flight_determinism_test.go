package obs

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
)

// runFlowWithFlight executes the learn → optimize flow with a flight
// recorder (and its runtime sampler) attached the way the CLI wires it:
// observer callbacks plus nd_flight_* gauges into the live registry.
func runFlowWithFlight(t *testing.T, seed int64, parallelism int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("flow", telemetry.NewTracer(&buf))
	rec := flight.New(flight.DefaultCapacity)
	rec.ExportTo(tel.Registry())
	tel.SetRunObserver(rec)
	stop := rec.StartSampler(time.Millisecond)
	defer stop()

	cfg := quickFlowConfig(seed)
	cfg.Parallelism = parallelism
	cfg.Telemetry = tel
	char, err := core.NewCharacterizer(cfg, newFlowTester(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	if _, err := char.Optimize(); err != nil {
		t.Fatal(err)
	}
	stop()
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.TotalEvents() == 0 {
		t.Fatal("flight recorder saw no events during the flow")
	}
	return buf.Bytes()
}

// The acceptance pin: deterministic trace bytes stay bit-identical with the
// flight recorder (including its aggressively ticking runtime sampler)
// enabled vs disabled, at -parallel 1, 2 and 8. The recorder only consumes
// observer callbacks and writes to nd_-prefixed gauges, so nothing it does
// can reach the trace stream.
func TestTraceBytesIdenticalWithFlightRecorder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		plain, _ := runFlow(t, 83, workers, false)
		recorded := runFlowWithFlight(t, 83, workers)
		if !bytes.Equal(plain, recorded) {
			t.Errorf("parallelism=%d: flight recorder changed the trace bytes (plain %d B, recorded %d B)",
				workers, len(plain), len(recorded))
		}
	}
}

// The nd_ quarantine: every metric the recorder exports must carry the
// NonDeterministicPrefix, so deterministic metrics snapshots stay
// comparable across runs with and without the recorder.
func TestFlightGaugesAllQuarantined(t *testing.T) {
	tel := telemetry.New("q", nil)
	rec := flight.New(32)
	rec.ExportTo(tel.Registry())
	stop := rec.StartSampler(time.Hour) // one synchronous sample
	stop()
	snap := tel.Registry().Snapshot()
	for name := range snap.Gauges {
		if len(name) >= 7 && name[:7] == "flight_" {
			t.Errorf("flight gauge %q missing the %q prefix", name, telemetry.NonDeterministicPrefix)
		}
	}
	found := false
	for name := range snap.Gauges {
		if name == telemetry.NonDeterministicPrefix+"flight_heap_bytes" {
			found = true
		}
	}
	if !found {
		t.Error("no nd_flight_heap_bytes gauge after a sample")
	}
}
