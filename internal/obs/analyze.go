package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Offline analysis of the JSONL traces internal/telemetry emits: span-tree
// reconstruction, per-phase/per-span cost rollups, a critical-path summary,
// and Chrome trace-event export (load the file at chrome://tracing or
// https://ui.perfetto.dev).
//
// Traces deliberately carry no wall-clock timestamps (the determinism
// contract), so time here is logical: the sequence number orders events,
// and the deterministic sim_time_sec payload carries the simulated tester
// cost. The Chrome export uses sequence numbers as microsecond ticks, which
// preserves structure and relative span extent exactly.

// TraceEvent is one decoded JSONL line.
type TraceEvent struct {
	Seq    int64
	Kind   string // "start", "event" or "end"
	Span   int64
	Parent int64
	Name   string
	Fields map[string]any // payload fields, JSON-decoded
}

// TraceSpan is one reconstructed node of the run → phase → task hierarchy.
type TraceSpan struct {
	ID       int64
	Parent   int64
	Name     string
	StartSeq int64
	EndSeq   int64 // max observed seq when the span never closed
	Start    map[string]any
	End      map[string]any // payload of the end line (cost counters)
	Events   []TraceEvent
	Children []*TraceSpan
}

// Label renders the span's display name: phase spans ("phase" with a
// "phase" payload field) read as "phase:learn", everything else as the raw
// span name.
func (s *TraceSpan) Label() string {
	for _, payload := range []map[string]any{s.Start, s.End} {
		if v, ok := payload[s.Name].(string); ok {
			return s.Name + ":" + v
		}
	}
	return s.Name
}

// SimTime returns the span's deterministic simulated-tester seconds (0 when
// the payload has none).
func (s *TraceSpan) SimTime() float64 { return fieldFloat(s.End, "sim_time_sec") }

// Measurements returns the span's ATE measurement count payload.
func (s *TraceSpan) Measurements() int64 { return fieldInt(s.End, "measurements") }

// Width is the span's extent in logical sequence ticks.
func (s *TraceSpan) Width() int64 { return s.EndSeq - s.StartSeq }

// Trace is a fully parsed JSONL trace.
type Trace struct {
	Roots  []*TraceSpan
	Spans  map[int64]*TraceSpan
	Events int   // total JSONL lines
	MaxSeq int64 // highest sequence number observed
}

// ParseTrace decodes a JSONL trace stream and reconstructs the span tree.
// Unknown or out-of-order lines fail loudly: the tracer writes strictly
// increasing sequence numbers, so corruption is detectable. Errors name both
// the 1-based line and the byte offset of that line's first byte, so a
// corrupt multi-gigabyte trace can be inspected with dd/tail instead of a
// line-counting pass.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{Spans: make(map[int64]*TraceSpan)}
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	offset := int64(0) // byte offset of the current line's first byte
	lastSeq := int64(0)
	for {
		text, readErr := br.ReadString('\n')
		if text == "" && readErr != nil {
			if readErr == io.EOF {
				break
			}
			return nil, fmt.Errorf("obs: reading trace: %w", readErr)
		}
		line++
		lineStart := offset
		offset += int64(len(text))
		raw := strings.TrimSpace(text)
		if raw == "" {
			if readErr == io.EOF {
				break
			}
			continue
		}
		ev, err := decodeTraceLine(raw)
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d (byte offset %d): %w", line, lineStart, err)
		}
		if ev.Seq <= lastSeq {
			return nil, fmt.Errorf("obs: trace line %d (byte offset %d): sequence %d not increasing (prev %d)", line, lineStart, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		tr.Events++
		tr.MaxSeq = ev.Seq
		switch ev.Kind {
		case "start":
			span := &TraceSpan{
				ID:       ev.Span,
				Parent:   ev.Parent,
				Name:     ev.Name,
				StartSeq: ev.Seq,
				Start:    ev.Fields,
			}
			tr.Spans[span.ID] = span
			if parent, ok := tr.Spans[ev.Parent]; ok {
				parent.Children = append(parent.Children, span)
			} else {
				tr.Roots = append(tr.Roots, span)
			}
		case "end":
			span, ok := tr.Spans[ev.Span]
			if !ok {
				return nil, fmt.Errorf("obs: trace line %d (byte offset %d): end of unknown span %d", line, lineStart, ev.Span)
			}
			span.EndSeq = ev.Seq
			span.End = ev.Fields
		case "event":
			if span, ok := tr.Spans[ev.Span]; ok {
				span.Events = append(span.Events, ev)
			}
		default:
			return nil, fmt.Errorf("obs: trace line %d (byte offset %d): unknown event kind %q", line, lineStart, ev.Kind)
		}
		if readErr == io.EOF {
			break
		}
	}
	// Close any span the run abandoned at the stream's end.
	for _, span := range tr.Spans {
		if span.EndSeq == 0 {
			span.EndSeq = tr.MaxSeq
		}
	}
	return tr, nil
}

// decodeTraceLine splits one JSONL line into the envelope keys and the
// payload fields.
func decodeTraceLine(raw string) (TraceEvent, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(raw), &m); err != nil {
		return TraceEvent{}, err
	}
	ev := TraceEvent{Fields: make(map[string]any)}
	for k, v := range m {
		switch k {
		case "seq":
			if err := json.Unmarshal(v, &ev.Seq); err != nil {
				return TraceEvent{}, fmt.Errorf("bad seq: %w", err)
			}
		case "ev":
			if err := json.Unmarshal(v, &ev.Kind); err != nil {
				return TraceEvent{}, fmt.Errorf("bad ev: %w", err)
			}
		case "span":
			if err := json.Unmarshal(v, &ev.Span); err != nil {
				return TraceEvent{}, fmt.Errorf("bad span: %w", err)
			}
		case "parent":
			if err := json.Unmarshal(v, &ev.Parent); err != nil {
				return TraceEvent{}, fmt.Errorf("bad parent: %w", err)
			}
		case "name":
			if err := json.Unmarshal(v, &ev.Name); err != nil {
				return TraceEvent{}, fmt.Errorf("bad name: %w", err)
			}
		default:
			var val any
			if err := json.Unmarshal(v, &val); err != nil {
				return TraceEvent{}, fmt.Errorf("bad field %q: %w", k, err)
			}
			ev.Fields[k] = val
		}
	}
	if ev.Seq == 0 || ev.Kind == "" {
		return TraceEvent{}, fmt.Errorf("line missing seq/ev envelope")
	}
	return ev, nil
}

// Rollup aggregates all spans sharing one label.
type Rollup struct {
	Label        string
	Count        int
	Measurements int64
	Vectors      int64
	SimTimeSec   float64
	SeqTicks     int64 // summed logical extent
	Events       int   // point events inside these spans
}

// Rollups aggregates every span by label, sorted by simulated time
// descending (ties: label). This is the per-phase latency/cost table —
// phase spans dominate it by construction.
func (t *Trace) Rollups() []Rollup {
	byLabel := make(map[string]*Rollup)
	for _, span := range t.Spans {
		label := span.Label()
		r, ok := byLabel[label]
		if !ok {
			r = &Rollup{Label: label}
			byLabel[label] = r
		}
		r.Count++
		r.Measurements += span.Measurements()
		r.Vectors += fieldInt(span.End, "vectors")
		r.SimTimeSec += span.SimTime()
		r.SeqTicks += span.Width()
		r.Events += len(span.Events)
	}
	out := make([]Rollup, 0, len(byLabel))
	for _, r := range byLabel {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SimTimeSec != out[j].SimTimeSec {
			return out[i].SimTimeSec > out[j].SimTimeSec
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// CriticalPath walks from the root down the child with the largest
// simulated-time weight (falling back to logical extent when no child
// carries cost payloads), returning the chain root-first. This is the
// spine a latency optimization should attack first.
func (t *Trace) CriticalPath() []*TraceSpan {
	if len(t.Roots) == 0 {
		return nil
	}
	// Heaviest root first (there is normally exactly one: the run span).
	root := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if spanWeight(r) > spanWeight(root) {
			root = r
		}
	}
	var path []*TraceSpan
	for node := root; node != nil; {
		path = append(path, node)
		var next *TraceSpan
		for _, c := range node.Children {
			if next == nil || spanWeight(c) > spanWeight(next) {
				next = c
			}
		}
		node = next
	}
	return path
}

// spanWeight orders spans for the critical path: simulated seconds when
// present, else logical width scaled down so it only breaks ties among
// cost-free spans.
func spanWeight(s *TraceSpan) float64 {
	if st := s.SimTime(); st > 0 {
		return st
	}
	return float64(s.Width()) * 1e-12
}

// Summary renders the human-readable analysis: stream totals, the rollup
// table, and the critical path.
func (t *Trace) Summary(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d spans, %d roots, max seq %d\n",
		t.Events, len(t.Spans), len(t.Roots), t.MaxSeq)

	rollups := t.Rollups()
	shown := rollups
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	fmt.Fprintf(&b, "\n%-28s %6s %13s %13s %12s %10s %8s\n",
		"span", "count", "measurements", "vectors", "sim time (s)", "seq ticks", "events")
	for _, r := range shown {
		fmt.Fprintf(&b, "%-28s %6d %13d %13d %12.3f %10d %8d\n",
			r.Label, r.Count, r.Measurements, r.Vectors, r.SimTimeSec, r.SeqTicks, r.Events)
	}
	if len(shown) < len(rollups) {
		fmt.Fprintf(&b, "… %d more span labels (raise -top)\n", len(rollups)-len(shown))
	}

	path := t.CriticalPath()
	if len(path) > 0 {
		// Percentages are relative to the heaviest span on the path (the
		// run root often carries no cost payload of its own).
		total := 0.0
		for _, span := range path {
			total = math.Max(total, spanWeight(span))
		}
		fmt.Fprintf(&b, "\ncritical path (by simulated tester time):\n")
		for depth, span := range path {
			pct := 0.0
			if total > 0 {
				pct = 100 * spanWeight(span) / total
			}
			width := 30 - 2*depth
			if width < 1 {
				width = 1
			}
			fmt.Fprintf(&b, "  %s%-*s %9.3f s  %5.1f%%  [seq %d–%d]\n",
				strings.Repeat("  ", depth), width, span.Label(),
				span.SimTime(), pct, span.StartSeq, span.EndSeq)
		}
	}
	return b.String()
}

// chromeEvent is one Chrome trace-event ("X" complete spans, "i" instants).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the trace in the Chrome trace-event JSON format.
// Sequence numbers become microsecond ticks: spans turn into complete ("X")
// events whose nesting Perfetto reconstructs from the tick containment, and
// span-interior point events become thread-scoped instants. Output ordering
// is by tick, so equal traces export byte-identically.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	events := make([]chromeEvent, 0, t.Events)
	for _, span := range t.Spans {
		args := mergePayloads(span.Start, span.End)
		dur := span.Width()
		if dur < 1 {
			dur = 1 // zero-width X events vanish in viewers
		}
		events = append(events, chromeEvent{
			Name: span.Label(), Cat: "span", Phase: "X",
			TS: span.StartSeq, Dur: dur, PID: 1, TID: 1, Args: args,
		})
		for _, ev := range span.Events {
			events = append(events, chromeEvent{
				Name: ev.Name, Cat: "event", Phase: "i",
				TS: ev.Seq, PID: 1, TID: 1, Scope: "t", Args: ev.Fields,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		// A span opens before its interior instants at the same tick.
		return events[i].Phase == "X" && events[j].Phase != "X"
	})
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"source": "repro tracestat",
			"note":   "ts/dur are logical trace sequence ticks, not wall time",
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	return nil
}

// mergePayloads overlays the end payload on the start payload (end wins on
// key collisions — it carries the final counters).
func mergePayloads(start, end map[string]any) map[string]any {
	if len(start) == 0 && len(end) == 0 {
		return nil
	}
	out := make(map[string]any, len(start)+len(end))
	for k, v := range start {
		out[k] = v
	}
	for k, v := range end {
		out[k] = v
	}
	return out
}

func fieldFloat(m map[string]any, key string) float64 {
	if v, ok := m[key].(float64); ok && !math.IsNaN(v) {
		return v
	}
	return 0
}

func fieldInt(m map[string]any, key string) int64 {
	if v, ok := m[key].(float64); ok { // encoding/json decodes numbers as float64
		return int64(v)
	}
	return 0
}
