package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
)

// Options configures an admin server.
type Options struct {
	// Run names the run in /healthz and the "run" metric label.
	Run string
	// Metrics supplies the registry snapshot behind /metrics (typically
	// tel.Registry().Snapshot). Nil serves an empty exposition.
	Metrics func() telemetry.Snapshot
	// Progress feeds /progress and /readyz. Nil disables both with 404 /
	// not-ready responses.
	Progress *Progress
	// Flight feeds /debug/flight with the recorder's event tail and latest
	// runtime sample. Nil serves a 404 JSON error there.
	Flight *flight.Recorder
	// Ledger serves the cross-run observatory — /runs, /runs/<id> and
	// /runs/diff — from this run store. Nil serves 404 JSON errors there.
	Ledger *runstore.Store
	// RunInfo supplies the label set of the repro_run_info info-pattern
	// gauge appended to /metrics (flow, seed, scheduler, run_fingerprint).
	// Called per scrape so live values (the fingerprint) stay current. Nil
	// omits the gauge.
	RunInfo func() map[string]string
	// Jobs mounts a job-service handler (internal/jobs) under /jobs and
	// /jobs/ on the admin mux, so the service API, the run observatory and
	// the metrics exposition share one listener. Nil leaves /jobs unmounted
	// (404). obs deliberately takes an opaque handler — the jobs package
	// imports obs for Progress, not the other way around.
	Jobs http.Handler
	// Heartbeat is the interval between SSE comment frames on idle
	// /progress streams, keeping proxies from reaping quiet connections and
	// letting the server notice dead clients. Zero takes DefaultHeartbeat;
	// negative disables heartbeats.
	Heartbeat time.Duration
}

// DefaultHeartbeat is the idle-stream SSE comment interval.
const DefaultHeartbeat = 15 * time.Second

// Server is the embeddable observability endpoint of one run: /metrics in
// Prometheus text format, /healthz + run-phase-aware /readyz, net/http/pprof
// under /debug/pprof/, and /progress as a JSON snapshot or an SSE stream.
// All handlers are read-only against atomically published state, so serving
// never perturbs the run (trace bytes stay bit-identical with the server on
// or off).
type Server struct {
	opts    Options
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// Start listens on addr (host:port; port 0 picks a free port — read the
// resolved address back with Addr) and serves the admin endpoints until
// Close.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln, started: time.Now()}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the resolved listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight scrapes and
// unblocking any SSE subscribers. Nil-safe.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Handler returns the admin mux (exported so tests and embedders can mount
// it without a listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/runs/", s.handleRunsSub)
	if s.opts.Jobs != nil {
		mux.Handle("/jobs", s.opts.Jobs)
		mux.Handle("/jobs/", s.opts.Jobs)
	}
	mux.HandleFunc("/debug/flight", s.handleFlight)
	// net/http/pprof registers on DefaultServeMux as an import side effect;
	// mounting the handlers explicitly keeps this mux self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>repro obs: %s</title></head><body>
<h1>repro observability — run %q</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/healthz">/healthz</a> — liveness</li>
<li><a href="/readyz">/readyz</a> — run-phase-aware readiness</li>
<li><a href="/progress">/progress</a> — live run snapshot (add <code>Accept: text/event-stream</code> or <code>?sse=1</code> to stream)</li>
<li><a href="/runs">/runs</a> — run-ledger listing (<code>?flow=&amp;seed=&amp;limit=&amp;offset=</code>); <code>/runs/&lt;id&gt;</code> inspects, <code>/runs/diff?a=&amp;b=</code> compares</li>
<li><a href="/jobs">/jobs</a> — job service (when mounted): <code>POST /jobs</code> submits, <code>/jobs/&lt;id&gt;</code> inspects, <code>/jobs/&lt;id&gt;/progress</code> streams</li>
<li><a href="/debug/flight">/debug/flight</a> — flight-recorder tail + latest runtime sample</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>
`, s.opts.Run, s.opts.Run)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if s.opts.Metrics != nil {
		snap = s.opts.Metrics()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	labels := map[string]string{}
	if s.opts.Run != "" {
		labels["run"] = s.opts.Run
	}
	if err := WritePrometheus(w, snap, labels); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
	if s.opts.RunInfo != nil {
		if err := WriteRunInfo(w, s.opts.RunInfo()); err != nil {
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"run":            s.opts.Run,
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p := s.opts.Progress
	state := StateStarting
	if p != nil {
		state = p.Current().State
	}
	code := http.StatusServiceUnavailable
	if p.Ready() {
		code = http.StatusOK
	}
	writeJSON(w, code, map[string]any{"ready": p.Ready(), "state": state, "run": s.opts.Run})
}

// progressPayload is the /progress response body: the deterministic run
// snapshot plus a clearly partitioned non-deterministic section.
type progressPayload struct {
	*Snapshot
	NonDeterministic progressND `json:"non_deterministic"`
}

type progressND struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	PoolRuns      int64   `json:"pool_runs"`
	PoolTasks     int64   `json:"pool_tasks"`
	PoolMaxW      int64   `json:"pool_max_workers"`
	// Fleet scheduler stream stats: drained streams, tasks streamed, the
	// out-of-order run-ahead high-water mark (queue depth) and the latest
	// stream's worker-utilization / pipeline-overlap ratios.
	FleetStreams int64   `json:"fleet_streams,omitempty"`
	FleetTasks   int64   `json:"fleet_tasks,omitempty"`
	FleetDepth   int64   `json:"fleet_queue_depth,omitempty"`
	FleetUtil    float64 `json:"fleet_utilization,omitempty"`
	FleetOverlap float64 `json:"fleet_overlap_ratio,omitempty"`
	// DiesPerSecond is the lot-screening throughput so far (the "die"
	// item counter over uptime) — wall-clock derived, hence ND.
	DiesPerSecond float64 `json:"dies_per_second,omitempty"`
}

func (s *Server) payload() progressPayload {
	return s.payloadFor(s.opts.Progress.Current())
}

// payloadFor wraps one consistent snapshot with the server's ND context, so
// the JSON and SSE variants (which obtain the snapshot differently) share
// the assembly.
func (s *Server) payloadFor(snap *Snapshot) progressPayload {
	runs, tasks, maxw := s.opts.Progress.PoolStats()
	streams, ftasks, depth, util, overlap := s.opts.Progress.FleetStats()
	uptime := time.Since(s.started).Seconds()
	var dps float64
	if die, ok := snap.Items["die"]; ok && die.Done > 0 && uptime > 0 {
		dps = float64(die.Done) / uptime
	}
	return progressPayload{
		Snapshot: snap,
		NonDeterministic: progressND{
			UptimeSeconds: uptime,
			PoolRuns:      runs,
			PoolTasks:     tasks,
			PoolMaxW:      maxw,
			FleetStreams:  streams,
			FleetTasks:    ftasks,
			FleetDepth:    depth,
			FleetUtil:     util,
			FleetOverlap:  overlap,
			DiesPerSecond: dps,
		},
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	p := s.opts.Progress
	if p == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no progress publisher attached"})
		return
	}
	if wantsSSE(r) {
		s.serveProgressSSE(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.payload())
}

// handleFlight serves the flight recorder's ring tail and latest runtime
// sample. Everything the recorder holds — wall-clock event times, heap and
// scheduler readings — varies run to run, so the whole snapshot lives under
// the same non_deterministic quarantine key /progress uses for its ND
// block; nothing here ever feeds determinism comparisons.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	rec := s.opts.Flight
	if rec == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no flight recorder attached"})
		return
	}
	max := 0
	if q := r.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":               s.opts.Run,
		"non_deterministic": rec.Snapshot(max),
	})
}

// wantsSSE keeps the historical unexported spelling for the mux handlers.
func wantsSSE(r *http.Request) bool { return WantsSSE(r) }

// serveProgressSSE streams every published snapshot as one SSE "progress"
// event via the shared ServeProgressSSE loop, wrapping each snapshot with
// this server's ND context.
func (s *Server) serveProgressSSE(w http.ResponseWriter, r *http.Request) {
	ServeProgressSSE(w, r, s.opts.Progress, s.opts.Heartbeat, func(snap *Snapshot) any {
		return s.payloadFor(snap)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report
}
