// Package obs is the live observability layer of the characterization
// system: an embeddable HTTP admin server (server.go) exposing Prometheus
// metrics bridged from the telemetry registry (prom.go), health/readiness
// probes, pprof, and a live run-progress feed (progress.go) published by a
// telemetry.RunObserver, plus the offline JSONL trace analyzer behind
// cmd/tracestat (analyze.go).
//
// Everything here is read-only with respect to the run: handlers consume
// registry snapshots and atomically published progress snapshots, and the
// observer callbacks write neither trace events nor metrics — so serving
// cannot perturb the determinism contract (trace bytes stay bit-identical
// with the server on or off; pinned by tests).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// MetricPrefix namespaces every exposed metric, per Prometheus naming
// conventions (a single-word application prefix).
const MetricPrefix = "repro_"

// WritePrometheus renders a telemetry registry snapshot in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket/_sum/_count series. Metric
// names are prefixed with MetricPrefix and sanitized to the Prometheus
// charset; constLabels (sorted by key, values escaped) are attached to
// every sample, with a histogram's "le" label last. Output depends only on
// the snapshot and labels, so equal snapshots render byte-identically.
func WritePrometheus(w io.Writer, s telemetry.Snapshot, constLabels map[string]string) error {
	labels := renderLabelPairs(constLabels)
	var b strings.Builder

	for _, name := range sortedKeys(s.Counters) {
		mn := MetricPrefix + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", mn)
		fmt.Fprintf(&b, "%s%s %d\n", mn, labelBlock(labels, ""), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		mn := MetricPrefix + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", mn)
		fmt.Fprintf(&b, "%s%s %s\n", mn, labelBlock(labels, ""), formatPromFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		mn := MetricPrefix + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", mn)
		for _, bucket := range hs.Buckets {
			le := `le="` + formatPromFloat(bucket.LE) + `"`
			fmt.Fprintf(&b, "%s_bucket%s %d\n", mn, labelBlock(labels, le), bucket.Count)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", mn, labelBlock(labels, ""), formatPromFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", mn, labelBlock(labels, ""), hs.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteRunInfo renders the Prometheus "info"-pattern gauge: a constant-1
// sample whose labels carry the run's identity (flow, seed, scheduler,
// run_fingerprint). Joining it onto other series in PromQL ties every
// scraped metric to the exact reproducible run that produced it:
//
//	repro_run_info{flow="characterize",seed="1",scheduler="fleet",run_fingerprint="fnv1a:…"} 1
func WriteRunInfo(w io.Writer, labels map[string]string) error {
	mn := MetricPrefix + "run_info"
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s gauge\n", mn)
	fmt.Fprintf(&b, "%s%s 1\n", mn, labelBlock(renderLabelPairs(labels), ""))
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns the map's keys in sorted order, the stable iteration
// the byte-identical rendering relies on.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:]; anything else (phase names carry '-') becomes '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderLabelPairs renders constant labels as sorted key="value" pairs with
// exposition-format escaping.
func renderLabelPairs(labels map[string]string) []string {
	pairs := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		pairs = append(pairs, sanitizeMetricName(k)+`="`+escapeLabelValue(labels[k])+`"`)
	}
	return pairs
}

// labelBlock joins constant label pairs plus an optional trailing extra
// pair ("le" for histogram buckets) into a `{...}` block, or "" when empty.
func labelBlock(pairs []string, extra string) string {
	all := pairs
	if extra != "" {
		all = append(append([]string{}, pairs...), extra)
	}
	if len(all) == 0 {
		return ""
	}
	return "{" + strings.Join(all, ",") + "}"
}

// escapeLabelValue applies the exposition-format label escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatPromFloat renders a float the way the exposition format expects:
// shortest round-trip decimal, with the spellings +Inf/-Inf/NaN.
func formatPromFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
