package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// syntheticTrace runs a real telemetry pipeline into a buffer and returns
// the trace bytes: one "learn" phase costing the given measurements.
func syntheticTrace(t *testing.T, measurements int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("characterize", telemetry.NewTracer(&buf))
	tel.StartPhase("learn").End(telemetry.Cost{Measurements: measurements, SimTimeSec: float64(measurements) / 10})
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// seedLedger stores a record for each measurement count and returns the ids
// in insertion order (attempt times force List's chronology to match).
func seedLedger(t *testing.T, dir string, measurements ...int64) (*runstore.Store, []string) {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, m := range measurements {
		rec := &runstore.Record{
			Manifest: runstore.Manifest{
				Version: runstore.FormatVersion,
				Flow:    "characterize",
				Seed:    int64(i + 1),
				Flags:   map[string]string{"learn-tests": fmt.Sprint(m)},
			},
			Report: []byte(fmt.Sprintf(`{"total":{"measurements":%d,"sim_time_sec":%g}}`, m, float64(m)/10)),
			Trace:  syntheticTrace(t, m),
		}
		id, _, err := st.Put(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AppendAttempt(id, runstore.Attempt{
			TimeUnixNano: int64(i+1) * 1000, Parallelism: 1 + i, Scheduler: "fleet", WallSeconds: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return st, ids
}

func startLedgerServer(t *testing.T, st *runstore.Store) *Server {
	t.Helper()
	srv, err := Start("127.0.0.1:0", Options{
		Run:    "characterize",
		Ledger: st,
		RunInfo: func() map[string]string {
			return map[string]string{
				"flow": "characterize", "seed": "1", "scheduler": "fleet",
				"run_fingerprint": "fnv1a:00000000deadbeef",
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRunsEndpointListsAndPages(t *testing.T) {
	st, ids := seedLedger(t, t.TempDir(), 100, 130, 200)
	srv := startLedgerServer(t, st)
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/runs")
	if code != 200 {
		t.Fatalf("/runs = %d %s", code, body)
	}
	var listing struct {
		Total  int `json:"total"`
		Count  int `json:"count"`
		Offset int `json:"offset"`
		Runs   []struct {
			ID           string `json:"id"`
			Flow         string `json:"flow"`
			Measurements int64  `json:"measurements"`
			Attempts     int    `json:"attempts"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("bad /runs JSON: %v\n%s", err, body)
	}
	if listing.Total != 3 || listing.Count != 3 {
		t.Errorf("listing total/count = %d/%d, want 3/3", listing.Total, listing.Count)
	}
	if listing.Runs[0].ID != ids[0] || listing.Runs[0].Measurements != 100 || listing.Runs[0].Attempts != 1 {
		t.Errorf("first row = %+v, want id %s", listing.Runs[0], ids[0])
	}

	// Paging: offset 2 leaves one row; limit 1 caps the page.
	code, body = get(t, base+"/runs?offset=2&limit=1")
	if code != 200 || !strings.Contains(body, ids[2]) || strings.Contains(body, ids[0]) {
		t.Errorf("paged /runs = %d %s", code, body)
	}
	// Filters: an unmatched flow leaves nothing.
	code, body = get(t, base+"/runs?flow=nope")
	if code != 200 || !strings.Contains(body, `"total": 0`) {
		t.Errorf("filtered /runs = %d %s", code, body)
	}
	code, body = get(t, base+"/runs?seed=2")
	if code != 200 || !strings.Contains(body, ids[1]) || strings.Contains(body, ids[0]) {
		t.Errorf("seed-filtered /runs = %d %s", code, body)
	}
}

func TestRunByIDEndpoint(t *testing.T) {
	st, ids := seedLedger(t, t.TempDir(), 100)
	srv := startLedgerServer(t, st)
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/runs/"+ids[0])
	if code != 200 {
		t.Fatalf("/runs/<id> = %d %s", code, body)
	}
	var rec struct {
		ID         string          `json:"id"`
		Manifest   json.RawMessage `json:"manifest"`
		Report     json.RawMessage `json:"report"`
		TraceBytes int             `json:"trace_bytes"`
		Attempts   []any           `json:"attempts"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("bad record JSON: %v\n%s", err, body)
	}
	if rec.ID != ids[0] || rec.TraceBytes == 0 || len(rec.Attempts) != 1 {
		t.Errorf("record = %+v", rec)
	}

	if code, _ := get(t, base+"/runs/not-a-valid-id"); code != 400 {
		t.Errorf("invalid id = %d, want 400", code)
	}
	if code, _ := get(t, base+"/runs/"+strings.Repeat("a", 32)); code != 404 {
		t.Errorf("missing id = %d, want 404", code)
	}
}

func TestRunsDiffEndpoint(t *testing.T) {
	// 100 -> 130 measurements in "learn": a +30% regression.
	st, ids := seedLedger(t, t.TempDir(), 100, 130)
	srv := startLedgerServer(t, st)
	base := "http://" + srv.Addr()

	url := fmt.Sprintf("%s/runs/diff?a=%s&b=%s&fail_over=20&min_measurements=10", base, ids[0], ids[1])
	code, body := get(t, url)
	if code != 200 {
		t.Fatalf("/runs/diff = %d %s", code, body)
	}
	var diff struct {
		A    string        `json:"a"`
		B    string        `json:"b"`
		Diff TraceDiffJSON `json:"diff"`
	}
	if err := json.Unmarshal([]byte(body), &diff); err != nil {
		t.Fatalf("bad diff JSON: %v\n%s", err, body)
	}
	if diff.A != ids[0] || diff.B != ids[1] {
		t.Errorf("diff ids = %s/%s", diff.A, diff.B)
	}
	if diff.Diff.Regressions == 0 {
		t.Errorf("+30%% growth not flagged: %+v", diff.Diff)
	}
	found := false
	for _, row := range diff.Diff.Labels {
		if row.Label == "phase:learn" || strings.Contains(row.Label, "learn") {
			found = true
			if !row.Regressed {
				t.Errorf("learn row not regressed: %+v", row)
			}
		}
	}
	if !found {
		t.Errorf("no learn row in diff: %+v", diff.Diff.Labels)
	}

	// Self-diff is clean.
	code, body = get(t, fmt.Sprintf("%s/runs/diff?a=%s&b=%s&fail_over=20", base, ids[0], ids[0]))
	if code != 200 || !strings.Contains(body, `"regressions": 0`) {
		t.Errorf("self-diff = %d %s", code, body)
	}
	// Missing side is a 400.
	if code, _ := get(t, base+"/runs/diff?a="+ids[0]); code != 400 {
		t.Errorf("one-sided diff = %d, want 400", code)
	}
}

func TestRunsEndpointsWithoutLedger(t *testing.T) {
	srv, _, _ := startTestServer(t)
	base := "http://" + srv.Addr()
	for _, path := range []string{"/runs", "/runs/" + strings.Repeat("a", 32), "/runs/diff"} {
		code, body := get(t, base+path)
		if code != 404 || !strings.Contains(body, "no run ledger attached") {
			t.Errorf("%s without ledger = %d %s", path, code, body)
		}
	}
}

func TestMetricsCarriesRunInfo(t *testing.T) {
	st, _ := seedLedger(t, t.TempDir(), 100)
	srv := startLedgerServer(t, st)
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	want := `repro_run_info{flow="characterize",run_fingerprint="fnv1a:00000000deadbeef",scheduler="fleet",seed="1"} 1`
	if !strings.Contains(body, want) {
		t.Errorf("/metrics missing run info gauge %q:\n%s", want, body)
	}
}
