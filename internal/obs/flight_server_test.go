package obs

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
)

func TestFlightEndpoint(t *testing.T) {
	rec := flight.New(64)
	rec.PhaseStarted("learn")
	rec.SearchRecorded(7, 41, true)
	srv, err := Start("127.0.0.1:0", Options{Run: "flight-run", Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/debug/flight")
	if code != 200 {
		t.Fatalf("/debug/flight = %d: %s", code, body)
	}
	var payload struct {
		Run              string          `json:"run"`
		NonDeterministic flight.Snapshot `json:"non_deterministic"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/debug/flight not JSON: %v\n%s", err, body)
	}
	if payload.Run != "flight-run" {
		t.Errorf("run = %q", payload.Run)
	}
	nd := payload.NonDeterministic
	if nd.TotalEvents != 2 || len(nd.Events) != 2 {
		t.Errorf("flight payload = %d total / %d events, want 2/2", nd.TotalEvents, len(nd.Events))
	}
	if nd.Events[0].Kind != "phase-start" || nd.Events[1].Kind != "search" {
		t.Errorf("flight event kinds = %q/%q", nd.Events[0].Kind, nd.Events[1].Kind)
	}

	// ?max trims to the newest events.
	_, body = get(t, "http://"+srv.Addr()+"/debug/flight?max=1")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.NonDeterministic.Events) != 1 || payload.NonDeterministic.Events[0].Kind != "search" {
		t.Errorf("?max=1 events = %+v", payload.NonDeterministic.Events)
	}

	// The index page links the endpoint.
	if _, body := get(t, "http://"+srv.Addr()+"/"); !strings.Contains(body, "/debug/flight") {
		t.Error("index page does not link /debug/flight")
	}
}

func TestFlightEndpointWithoutRecorder(t *testing.T) {
	srv, _, _ := startTestServer(t)
	code, body := get(t, "http://"+srv.Addr()+"/debug/flight")
	if code != http.StatusNotFound || !strings.Contains(body, "no flight recorder attached") {
		t.Errorf("/debug/flight without recorder = %d %q, want 404", code, body)
	}
}

// openSSE opens a /progress SSE stream against a server with the given
// heartbeat interval and returns the server and live response.
func openSSE(t *testing.T, hb time.Duration) (*Server, *Progress, *http.Response) {
	t.Helper()
	p := NewProgress("hb-run")
	srv, err := Start("127.0.0.1:0", Options{Run: "hb-run", Progress: p, Heartbeat: hb})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/progress?sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return srv, p, resp
}

func TestServerSSEHeartbeat(t *testing.T) {
	_, _, resp := openSSE(t, 20*time.Millisecond)
	defer resp.Body.Close()

	// An idle stream (no publishes after the first frame) must still carry
	// heartbeat comment frames.
	sawHeartbeat := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": heartbeat") {
				close(sawHeartbeat)
				return
			}
		}
	}()
	select {
	case <-sawHeartbeat:
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat comment within 5s on an idle SSE stream")
	}
}

// TestServerSSEDisconnectCleanup pins that a client that goes away does not
// leak its handler goroutine: the heartbeat (or context cancellation) must
// reap the stream.
func TestServerSSEDisconnectCleanup(t *testing.T) {
	p := NewProgress("leak-run")
	srv, err := Start("127.0.0.1:0", Options{Run: "leak-run", Progress: p, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Baseline after the server is up: only client streams vary from here.
	before := runtime.NumGoroutine()

	const clients = 4
	var resps []*http.Response
	for i := 0; i < clients; i++ {
		req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/progress?sse=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		// A dedicated transport per stream forces one TCP conn each and lets
		// the close below tear the conn down instead of pooling it.
		tr := &http.Transport{DisableKeepAlives: true}
		resp, err := (&http.Client{Transport: tr}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, resp)
		// Wait for the first frame so the handler goroutine is parked in its
		// streaming loop before we cut the connection.
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
			if strings.HasPrefix(line, "data: ") {
				break
			}
		}
	}
	// Each live stream holds at least its server-side handler goroutine.
	if runtime.NumGoroutine() <= before {
		t.Fatalf("expected goroutine growth with %d open streams", clients)
	}
	for _, r := range resps {
		r.Body.Close()
	}

	// The handlers notice the dead sockets (context cancellation or a failed
	// heartbeat write) and exit; poll until the count settles back.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Allow a small slack: the http.Server keeps transient goroutines.
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after SSE disconnect: before=%d now=%d\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func TestServerPortInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = Start(ln.Addr().String(), Options{Run: "dup"})
	if err == nil {
		t.Fatal("Start on an occupied port succeeded")
	}
	if !strings.Contains(err.Error(), "obs: listening on") {
		t.Errorf("port-in-use error = %q", err)
	}
}

func TestServerCloseWithoutStart(t *testing.T) {
	// Nil and never-started servers close cleanly — the CLI shutdown path
	// runs unconditionally.
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close = %v", err)
	}
	if nilSrv.Addr() != "" {
		t.Errorf("nil server Addr = %q", nilSrv.Addr())
	}
	if err := (&Server{}).Close(); err != nil {
		t.Errorf("zero server Close = %v", err)
	}
	// Double Close is idempotent on a started server.
	srv, err := Start("127.0.0.1:0", Options{Run: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("first Close = %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestProgressAfterRunCompletion(t *testing.T) {
	srv, tel, p := startTestServer(t)
	base := "http://" + srv.Addr()

	ph := tel.StartPhase("learn")
	ph.End(telemetry.Cost{Measurements: 3})
	p.Done()

	// Plain snapshot still serves after completion, frozen in the done state.
	code, body := get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress after done = %d", code)
	}
	var payload struct{ Snapshot }
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.State != StateDone {
		t.Errorf("state after done = %q", payload.State)
	}

	// An SSE subscriber arriving after completion gets exactly the final
	// frame and a closed stream — no hang, no goroutine left behind.
	req, _ := http.NewRequest("GET", base+"/progress?sse=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan string, 1)
	go func() {
		var last string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				last = strings.TrimPrefix(sc.Text(), "data: ")
			}
		}
		done <- last
	}()
	select {
	case last := <-done:
		if !strings.Contains(last, `"state":"done"`) {
			t.Errorf("late SSE subscriber final frame = %s", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after run completion")
	}

	// Readiness stays true in the done state (the run started and finished).
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after done = %d, want 200", code)
	}
}
