package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/runstore"
)

// Cross-run observatory: read-only HTTP views over a run-ledger store
// (internal/runstore). /runs is a paged, filterable listing; /runs/<id>
// returns one record's manifest, report and attempt history; /runs/diff
// compares two records' stored traces with the same DiffTraces semantics
// (and the same JSON shape) as `tracestat diff -json`.

const (
	runsDefaultLimit = 50
	runsMaxLimit     = 500
)

// runListEntry is one row of the /runs listing.
type runListEntry struct {
	ID           string  `json:"id"`
	Flow         string  `json:"flow"`
	Seed         int64   `json:"seed"`
	CacheWarmth  string  `json:"cache_warmth,omitempty"`
	TraceDigest  string  `json:"trace_digest,omitempty"`
	Measurements int64   `json:"measurements"`
	SimTimeSec   float64 `json:"sim_time_sec"`
	Attempts     int     `json:"attempts"`
	FirstNano    int64   `json:"first_recorded_unix_nano,omitempty"`
	LastNano     int64   `json:"last_recorded_unix_nano,omitempty"`
}

// handleRuns serves the paged ledger listing. Query parameters: flow and
// seed filter, limit (default 50, max 500) and offset page. Records come
// back in the store's chronological order (first attempt time, then ID).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	st := s.opts.Ledger
	if st == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no run ledger attached (start with -run-dir)"})
		return
	}
	sums, err := st.List()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	q := r.URL.Query()
	if flow := q.Get("flow"); flow != "" {
		sums = filterSummaries(sums, func(sum runstore.Summary) bool { return sum.Manifest.Flow == flow })
	}
	if seedStr := q.Get("seed"); seedStr != "" {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad seed filter: " + seedStr})
			return
		}
		sums = filterSummaries(sums, func(sum runstore.Summary) bool { return sum.Manifest.Seed == seed })
	}

	limit := runsDefaultLimit
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = min(n, runsMaxLimit)
		}
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			offset = n
		}
	}
	total := len(sums)
	page := sums[min(offset, total):min(offset+limit, total)]

	entries := make([]runListEntry, 0, len(page))
	for _, sum := range page {
		entries = append(entries, runListEntry{
			ID:           sum.ID,
			Flow:         sum.Manifest.Flow,
			Seed:         sum.Manifest.Seed,
			CacheWarmth:  sum.Manifest.CacheWarmth,
			TraceDigest:  sum.Manifest.TraceDigest,
			Measurements: sum.Totals.Measurements,
			SimTimeSec:   sum.Totals.SimTimeSec,
			Attempts:     len(sum.Attempts),
			FirstNano:    sum.FirstAttemptNano(),
			LastNano:     sum.LastAttemptNano(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  total,
		"offset": offset,
		"count":  len(entries),
		"runs":   entries,
	})
}

// handleRunsSub dispatches /runs/diff and /runs/<id>.
func (s *Server) handleRunsSub(w http.ResponseWriter, r *http.Request) {
	if s.opts.Ledger == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no run ledger attached (start with -run-dir)"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/runs/")
	if rest == "diff" {
		s.handleRunsDiff(w, r)
		return
	}
	s.handleRunByID(w, r, rest)
}

// handleRunByID serves one record: manifest, report and metrics artifacts
// (verbatim JSON), trace presence, and the ND attempt history.
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request, id string) {
	if !runstore.ValidID(id) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "invalid run id: " + id})
		return
	}
	rec, err := s.opts.Ledger.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	attempts, err := s.opts.Ledger.Attempts(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          id,
		"manifest":    rec.Manifest,
		"report":      rawOrNull(rec.Report),
		"metrics":     rawOrNull(rec.Metrics),
		"bench":       rawOrNull(rec.Bench),
		"trace_bytes": len(rec.Trace),
		"attempts":    attempts,
	})
}

// handleRunsDiff compares two records' stored traces:
// /runs/diff?a=<id>&b=<id>[&fail_over=PCT][&min_measurements=N][&fail_on_new=1].
// The "diff" payload is the exact TraceDiffJSON `tracestat diff -json`
// prints, so a CI consumer can reuse one decoder for both.
func (s *Server) handleRunsDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := DiffOptions{MinMeasurements: 50}
	if v := q.Get("fail_over"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad fail_over: " + v})
			return
		}
		opts.FailOverPct = f
	}
	if v := q.Get("min_measurements"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad min_measurements: " + v})
			return
		}
		opts.MinMeasurements = n
	}
	opts.FailOnNew = q.Get("fail_on_new") == "1"

	trA, idA, ok := s.ledgerTrace(w, q.Get("a"), "a")
	if !ok {
		return
	}
	trB, idB, ok := s.ledgerTrace(w, q.Get("b"), "b")
	if !ok {
		return
	}
	d := DiffTraces(trA, trB, opts)
	writeJSON(w, http.StatusOK, map[string]any{
		"a":    idA,
		"b":    idB,
		"diff": d.JSON(),
	})
}

// ledgerTrace loads and parses one diff side's stored trace, writing the
// error response itself when anything is missing.
func (s *Server) ledgerTrace(w http.ResponseWriter, id, side string) (*Trace, string, bool) {
	if !runstore.ValidID(id) {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing or invalid run id for ?" + side + "="})
		return nil, "", false
	}
	rec, err := s.opts.Ledger.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return nil, "", false
	}
	if len(rec.Trace) == 0 {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": "record " + id + " has no stored trace"})
		return nil, "", false
	}
	tr, err := ParseTrace(bytes.NewReader(rec.Trace))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return nil, "", false
	}
	return tr, id, true
}

func filterSummaries(sums []runstore.Summary, keep func(runstore.Summary) bool) []runstore.Summary {
	out := sums[:0:0]
	for _, sum := range sums {
		if keep(sum) {
			out = append(out, sum)
		}
	}
	return out
}

// rawOrNull passes a stored JSON artifact through verbatim; empty
// artifacts become JSON null.
func rawOrNull(b []byte) json.RawMessage {
	if len(b) == 0 {
		return json.RawMessage("null")
	}
	return json.RawMessage(b)
}
