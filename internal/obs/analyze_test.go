package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// buildTrace records a small but representative run trace: a run root, two
// phases with cost payloads, and span-interior point events.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("analyze-test", telemetry.NewTracer(&buf))

	ph := tel.StartPhase("learn")
	ph.Span().Event("trip",
		telemetry.I("i", 0),
		telemetry.F("trip", 1.5),
		telemetry.I("measurements", 7),
	)
	ph.Span().Event("trip",
		telemetry.I("i", 1),
		telemetry.F("trip", 1.25),
		telemetry.I("measurements", 5),
	)
	ph.End(telemetry.Cost{Measurements: 12, Vectors: 480, SimTimeSec: 2.5})

	ph = tel.StartPhase("optimize")
	ph.Span().Event("generation", telemetry.I("gen", 1), telemetry.F("best_wcr", 1.1))
	ph.End(telemetry.Cost{Measurements: 30, Vectors: 900, SimTimeSec: 7.25})

	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseTraceAndRollups(t *testing.T) {
	raw := buildTrace(t)
	tr, err := ParseTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	if len(tr.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Roots))
	}
	root := tr.Roots[0]
	if got := root.Label(); got != "run:analyze-test" {
		t.Errorf("root label = %q", got)
	}
	if len(root.Children) != 2 {
		t.Fatalf("run children = %d, want 2", len(root.Children))
	}
	if len(tr.Spans) != 3 {
		t.Errorf("spans = %d, want 3", len(tr.Spans))
	}

	rollups := tr.Rollups()
	byLabel := make(map[string]Rollup, len(rollups))
	for _, r := range rollups {
		byLabel[r.Label] = r
	}
	learn, ok := byLabel["phase:learn"]
	if !ok {
		t.Fatalf("no phase:learn rollup in %+v", rollups)
	}
	if learn.Count != 1 || learn.Measurements != 12 || learn.Vectors != 480 ||
		learn.SimTimeSec != 2.5 || learn.Events != 2 {
		t.Errorf("phase:learn rollup = %+v", learn)
	}
	opt := byLabel["phase:optimize"]
	if opt.Measurements != 30 || opt.SimTimeSec != 7.25 || opt.Events != 1 {
		t.Errorf("phase:optimize rollup = %+v", opt)
	}
	// Sorted by simulated time descending: optimize before learn.
	if rollups[0].Label != "phase:optimize" {
		t.Errorf("rollup order = %v", rollups)
	}
}

func TestCriticalPath(t *testing.T) {
	tr, err := ParseTrace(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	path := tr.CriticalPath()
	if len(path) != 2 {
		t.Fatalf("critical path depth = %d, want 2", len(path))
	}
	if path[0].Name != "run" || path[1].Label() != "phase:optimize" {
		t.Errorf("critical path = [%s %s]", path[0].Label(), path[1].Label())
	}

	out := tr.Summary(10)
	for _, want := range []string{
		"phase:optimize", "phase:learn", "critical path", "run:analyze-test",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryTopTruncation(t *testing.T) {
	tr, err := ParseTrace(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Summary(1)
	if !strings.Contains(out, "more span labels") {
		t.Errorf("summary with -top 1 should note truncation:\n%s", out)
	}
}

func TestParseTraceUnclosedSpan(t *testing.T) {
	// A crashed run leaves spans open; they adopt the final sequence number.
	raw := strings.Join([]string{
		`{"seq":1,"ev":"start","span":1,"name":"run","run":"x"}`,
		`{"seq":2,"ev":"start","span":2,"parent":1,"name":"phase","phase":"learn"}`,
		`{"seq":3,"ev":"event","span":2,"name":"trip","i":0}`,
	}, "\n")
	tr, err := ParseTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range tr.Spans {
		if span.EndSeq != 3 {
			t.Errorf("span %d EndSeq = %d, want 3", span.ID, span.EndSeq)
		}
	}
}

func TestParseTraceRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"not json":          "hello world",
		"regressing seq":    `{"seq":5,"ev":"start","span":5,"name":"a"}` + "\n" + `{"seq":4,"ev":"start","span":4,"name":"b"}`,
		"unknown kind":      `{"seq":1,"ev":"warp","span":1,"name":"a"}`,
		"missing envelope":  `{"name":"a"}`,
		"end of ghost span": `{"seq":1,"ev":"end","span":99,"name":"a"}`,
	}
	for name, raw := range cases {
		if _, err := ParseTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: ParseTrace accepted corrupt input", name)
		}
	}
}

func TestParseTraceErrorNamesLineAndByteOffset(t *testing.T) {
	// tracestat surfaces these messages verbatim; pin the format so a corrupt
	// multi-gigabyte trace can be excised with dd without a line-counting
	// pass.
	good := `{"seq":1,"ev":"start","span":1,"name":"run"}`
	cases := map[string]struct {
		raw  string
		want string
	}{
		"bad json on line 2": {
			raw:  good + "\n" + `not json`,
			want: fmt.Sprintf("obs: trace line 2 (byte offset %d): ", len(good)+1),
		},
		"seq regression on line 3": {
			raw: good + "\n\n" + `{"seq":1,"ev":"start","span":2,"name":"b"}`,
			want: fmt.Sprintf("obs: trace line 3 (byte offset %d): sequence 1 not increasing (prev 1)",
				len(good)+2),
		},
		"ghost end on line 1": {
			raw:  `{"seq":1,"ev":"end","span":9,"name":"g"}`,
			want: "obs: trace line 1 (byte offset 0): end of unknown span 9",
		},
		"unknown kind": {
			raw:  good + "\n" + `{"seq":2,"ev":"warp","span":1,"name":"a"}`,
			want: fmt.Sprintf(`obs: trace line 2 (byte offset %d): unknown event kind "warp"`, len(good)+1),
		},
	}
	for name, tc := range cases {
		_, err := ParseTrace(strings.NewReader(tc.raw))
		if err == nil {
			t.Errorf("%s: corrupt input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr, err := ParseTrace(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, tr); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	// 3 spans + 3 instants.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("chrome events = %d, want 6", len(doc.TraceEvents))
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
			if ev.Dur < 1 {
				t.Errorf("span %q has dur %d", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected event phase %q", ev.Phase)
		}
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d", ev.Name, ev.PID)
		}
	}
	if spans != 3 || instants != 3 {
		t.Errorf("spans/instants = %d/%d, want 3/3", spans, instants)
	}
	// Ordered by tick, span-open first: the run span leads.
	if doc.TraceEvents[0].Name != "run:analyze-test" || doc.TraceEvents[0].TS != 1 {
		t.Errorf("first chrome event = %+v", doc.TraceEvents[0])
	}
	// Span args carry the merged cost payload.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "phase:learn" {
			if got := ev.Args["measurements"]; got != float64(12) {
				t.Errorf("phase:learn args measurements = %v", got)
			}
		}
	}

	// Equal traces export byte-identically.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("chrome export is not deterministic")
	}
}
