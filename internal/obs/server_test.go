package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// startTestServer brings up a real server on a free port with a live
// registry and progress publisher.
func startTestServer(t *testing.T) (*Server, *telemetry.Telemetry, *Progress) {
	t.Helper()
	tel := telemetry.New("test-run", nil)
	p := NewProgress("test-run")
	tel.SetRunObserver(p)
	srv, err := Start("127.0.0.1:0", Options{
		Run:      "test-run",
		Metrics:  tel.Registry().Snapshot,
		Progress: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, tel, p
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, tel, _ := startTestServer(t)
	base := "http://" + srv.Addr()

	// Liveness is immediate; readiness waits for the first phase.
	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before run start = %d, want 503", code)
	}

	// Drive some run activity through the telemetry hooks.
	ph := tel.StartPhase("learn")
	tel.RecordSearch(4, 64, true)
	tel.RecordCacheLookups(2, 1, 64)
	tel.RecordItem("learn-test", 1, 10)
	ph.End(telemetry.Cost{Measurements: 4})
	tel.RecordGeneration(1, 1.2)

	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Errorf("/readyz during run = %d, want 200", code)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`repro_search_total{run="test-run"} 1`,
		`repro_cache_hits_total{run="test-run"} 2`,
		`repro_ga_generations_total{run="test-run"} 1`,
		`repro_search_measurements_per_search_bucket{run="test-run",le="4"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var payload struct {
		Snapshot
		NonDeterministic map[string]any `json:"non_deterministic"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if payload.State != StateRunning || payload.Searches != 1 || payload.CacheHits != 2 {
		t.Errorf("/progress payload = %+v", payload.Snapshot)
	}
	if payload.Generation != 1 || payload.BestWCR != 1.2 {
		t.Errorf("/progress GA fields = %d/%v", payload.Generation, payload.BestWCR)
	}
	if _, ok := payload.NonDeterministic["uptime_seconds"]; !ok {
		t.Error("/progress missing non_deterministic.uptime_seconds")
	}

	// pprof index answers.
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	// Index page links the endpoints; unknown paths 404.
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestServerProgressSSE(t *testing.T) {
	srv, tel, p := startTestServer(t)

	req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}

	frames := make(chan sseFrame, 16)
	errc := make(chan error, 1)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f sseFrame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				errc <- fmt.Errorf("bad SSE frame %q: %w", line, err)
				return
			}
			frames <- f
		}
	}()

	// First frame arrives immediately with the starting state.
	first := waitFrame(t, frames, errc)
	if first.State != StateStarting {
		t.Errorf("first SSE frame state = %q", first.State)
	}

	ph := tel.StartPhase("optimize")
	running := waitFrame(t, frames, errc)
	for running.Phase != "optimize" && running.State != StateDone {
		running = waitFrame(t, frames, errc)
	}
	if running.State != StateRunning {
		t.Errorf("running frame = %+v", running.Snapshot)
	}

	ph.End(telemetry.Cost{})
	p.Done()
	// The stream replays up to the done state and then terminates.
	var last sseFrame
	for f := range frames {
		last = f
		if last.State == StateDone {
			break
		}
	}
	if last.State != StateDone {
		t.Errorf("stream ended before done state: %+v", last.Snapshot)
	}
}

// sseFrame is one decoded /progress SSE event.
type sseFrame struct {
	Snapshot
}

func waitFrame(t *testing.T, frames chan sseFrame, errc chan error) sseFrame {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return f
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE frame")
	}
	panic("unreachable")
}
