package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Prometheus exposition golden file")

// promFixture builds a registry exercising every sample kind plus the
// sanitization and escaping edge cases.
func promFixture() telemetry.Snapshot {
	r := telemetry.NewRegistry()
	r.Counter("search_total").Add(42)
	r.Counter("phase_table1-march_measurements").Add(7) // '-' needs sanitizing
	r.Counter("nd_pool_runs_total").Add(3)
	r.Gauge("ga_best_wcr").Set(1.25)
	r.Gauge("weird_gauge").Set(math.Inf(1))
	h := r.Histogram("search_measurements_per_search", 1, 2, 4)
	for _, v := range []float64{1, 2, 3, 9} {
		h.Observe(v)
	}
	r.Histogram("empty_hist", 1, 2) // zero observations must render defined
	return r.Snapshot()
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	labels := map[string]string{
		"run":   "table1",
		"weird": "quote\" slash\\ newline\n done", // exercises escaping
	}
	if err := WritePrometheus(&buf, promFixture(), labels); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden %s:\n--- got ---\n%s--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	snap := promFixture()
	labels := map[string]string{"b": "2", "a": "1", "c": "3"}
	var first bytes.Buffer
	if err := WritePrometheus(&first, snap, labels); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := WritePrometheus(&again, snap, labels); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs from first render", i)
		}
	}
	out := first.String()
	if !strings.Contains(out, `{a="1",b="2",c="3"}`) {
		t.Errorf("labels not sorted by key:\n%s", out)
	}
}

func TestWritePrometheusFormatDetails(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture(), map[string]string{"run": "x"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE repro_search_total counter\n",
		`repro_search_total{run="x"} 42`,
		"repro_phase_table1_march_measurements", // sanitized '-'
		"# TYPE repro_ga_best_wcr gauge\n",
		`repro_weird_gauge{run="x"} +Inf`,
		"# TYPE repro_search_measurements_per_search histogram\n",
		`repro_search_measurements_per_search_bucket{run="x",le="1"} 1`,
		`repro_search_measurements_per_search_bucket{run="x",le="+Inf"} 4`,
		`repro_search_measurements_per_search_sum{run="x"} 15`,
		`repro_search_measurements_per_search_count{run="x"} 4`,
		`repro_empty_hist_count{run="x"} 0`,
		`repro_empty_hist_sum{run="x"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "le=\"+Inf\"} 4\nrepro_search_measurements_per_search_bucket") {
		t.Error("unexpected bucket after +Inf")
	}
	// Empty snapshot and nil labels are fine.
	var empty bytes.Buffer
	if err := WritePrometheus(&empty, telemetry.Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty snapshot rendered %q, want nothing", empty.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"search_total":     "search_total",
		"table1-march":     "table1_march",
		"9lives":           "_9lives",
		"a.b c":            "a_b_c",
		"ok:colon_Allowed": "ok:colon_Allowed",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
