package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// FuzzTraceParse hammers the JSONL trace parser with arbitrary bytes. The
// contract: ParseTrace never panics; when it accepts a stream, every
// reconstructed span is internally consistent and all downstream analyses
// (rollups, critical path, summary, Chrome export) are total.
func FuzzTraceParse(f *testing.F) {
	// A genuine trace as the structured seed.
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	run := tr.StartSpan("run", telemetry.S("mode", "fuzz"))
	ph := run.Child("phase", telemetry.S("phase", "learn"))
	ph.Event("tick", telemetry.F("sim_time_sec", 0.5))
	ph.End(telemetry.I("measurements", 42), telemetry.F("sim_time_sec", 1.25))
	run.End()
	tr.Close()
	f.Add(buf.Bytes())

	f.Add([]byte(`{"seq":1,"ev":"start","span":1,"name":"run"}`))
	f.Add([]byte(`{"seq":1,"ev":"start","span":1,"name":"a"}` + "\n" + `{"seq":1,"ev":"end","span":1,"name":"a"}`))
	f.Add([]byte(`{"seq":2,"ev":"end","span":7,"name":"ghost"}`))
	f.Add([]byte(`{"seq":1,"ev":"wat","name":"x"}`))
	f.Add([]byte(`{"seq":"one","ev":"start"}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`not json`))
	f.Add([]byte{0x00, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := obs.ParseTrace(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "obs: ") {
				t.Fatalf("parse error without obs: prefix: %v", err)
			}
			return
		}
		if tr.Events < 0 || len(tr.Spans) > tr.Events {
			t.Fatalf("inconsistent totals: %d events, %d spans", tr.Events, len(tr.Spans))
		}
		for id, span := range tr.Spans {
			if span.ID != id {
				t.Fatalf("span map key %d holds span %d", id, span.ID)
			}
			if span.StartSeq > span.EndSeq {
				t.Fatalf("span %d has negative extent [%d, %d]", id, span.StartSeq, span.EndSeq)
			}
			if span.EndSeq > tr.MaxSeq {
				t.Fatalf("span %d ends at %d beyond max seq %d", id, span.EndSeq, tr.MaxSeq)
			}
		}
		_ = tr.Rollups()
		_ = tr.CriticalPath()
		_ = tr.Summary(5)
		if err := obs.WriteChromeTrace(&bytes.Buffer{}, tr); err != nil {
			t.Fatalf("chrome export failed on accepted trace: %v", err)
		}
	})
}

// FuzzPromEncode hammers the Prometheus exposition encoder with arbitrary
// metric names, values and label pairs. The contract: never panic, always
// render, byte-deterministic for equal input, and no emitted metric name
// escapes the Prometheus charset.
func FuzzPromEncode(f *testing.F) {
	f.Add("cache_hits", int64(12), "sim_time", 1.5, "run", "table1")
	f.Add("weird-name.µ", int64(-3), "9starts_with_digit", -0.0, "key", "va\"l\\ue\n")
	f.Add("", int64(0), "", 0.0, "", "")
	f.Add("dup", int64(1), "dup", 2.0, "dup", "dup")

	f.Fuzz(func(t *testing.T, counterName string, counterVal int64, gaugeName string, gaugeVal float64, labelKey, labelVal string) {
		s := telemetry.Snapshot{
			Counters: map[string]int64{counterName: counterVal},
			Gauges:   map[string]float64{gaugeName: gaugeVal},
			Histograms: map[string]telemetry.HistogramSnapshot{
				counterName + "_h": {
					Buckets: []telemetry.HistogramBucket{{LE: gaugeVal, Count: counterVal}},
					Count:   counterVal,
					Sum:     gaugeVal,
				},
			},
		}
		labels := map[string]string{labelKey: labelVal}

		var out1, out2 bytes.Buffer
		if err := obs.WritePrometheus(&out1, s, labels); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := obs.WritePrometheus(&out2, s, labels); err != nil {
			t.Fatalf("second WritePrometheus: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatal("rendering differs for identical input")
		}
		for _, line := range strings.Split(out1.String(), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !strings.HasPrefix(name, obs.MetricPrefix) {
				t.Fatalf("metric %q lacks the %q prefix", name, obs.MetricPrefix)
			}
			for _, r := range name {
				ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
					r >= '0' && r <= '9' || r == '_' || r == ':'
				if !ok {
					t.Fatalf("metric name %q contains %q outside the Prometheus charset", name, r)
				}
			}
		}
	})
}
