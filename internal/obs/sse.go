package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Reusable SSE progress streaming. The admin server's /progress endpoint
// and the job service's per-job /jobs/<id>/progress streams share this one
// loop, so both inherit the same guarantees: the watch channel is taken
// before the snapshot is read (no publish is missed, bursts coalesce to the
// latest state), idle streams carry heartbeat comments so dead clients are
// reclaimed promptly, and the stream closes itself after the StateDone
// frame is delivered.

// WantsSSE selects the streaming variant of a progress endpoint: an
// explicit ?sse=1 or an Accept header asking for text/event-stream.
func WantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("sse") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// ServeProgressSSE streams every published snapshot of p as one SSE
// "progress" event until the run reaches StateDone, the client disconnects,
// or a write fails. payload builds the event body from one consistent
// snapshot (return the snapshot itself, or wrap it with host context); nil
// payload sends the bare snapshot. A zero heartbeat takes DefaultHeartbeat;
// negative disables heartbeats.
func ServeProgressSSE(w http.ResponseWriter, r *http.Request, p *Progress, heartbeat time.Duration, payload func(snap *Snapshot) any) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if payload == nil {
		payload = func(snap *Snapshot) any { return snap }
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Heartbeat comments keep idle streams alive through proxies and turn a
	// silently-departed client into a prompt write error, so the handler
	// goroutine is reclaimed instead of parking on the watch channel forever.
	if heartbeat == 0 {
		heartbeat = DefaultHeartbeat
	}
	var heartbeatC <-chan time.Time
	if heartbeat > 0 {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		heartbeatC = ticker.C
	}

	var lastSeq uint64
	first := true
	for {
		watch := p.Watch()
		snap := p.Current()
		if first || snap.Seq != lastSeq {
			data, err := json.Marshal(payload(snap))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
			lastSeq = snap.Seq
			first = false
		}
		if snap.State == StateDone {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		case <-heartbeatC:
			// SSE comment frame: ignored by clients, fatal on a dead socket.
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
