package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

func TestProgressPublishAndWatch(t *testing.T) {
	p := NewProgress("r")
	s := p.Current()
	if s.Run != "r" || s.State != StateStarting || s.Seq != 0 {
		t.Fatalf("initial snapshot = %+v", s)
	}
	if p.Ready() {
		t.Error("ready before any phase started")
	}

	watch := p.Watch()
	p.PhaseStarted("learn")
	select {
	case <-watch:
	default:
		t.Fatal("watch channel not closed on publish")
	}
	s = p.Current()
	if s.Phase != "learn" || s.State != StateRunning || s.Seq != 1 {
		t.Fatalf("after PhaseStarted: %+v", s)
	}
	if !p.Ready() {
		t.Error("not ready while running")
	}

	p.SearchRecorded(4, 64, true)
	p.CacheLookups(3, 1, 64)
	p.DiskCache(telemetry.DiskCacheStats{LoadedEntries: 4, Hits: 3, Misses: 9, FlushedEntries: 9, BytesOnDisk: 720})
	p.Item("learn-test", 5, 120)
	p.Generation(2, 1.5)
	p.PhaseEnded("learn", telemetry.Cost{Measurements: 4, SimTimeSec: 0.5})
	p.Done()

	s = p.Current()
	if s.Phase != "" || s.State != StateDone {
		t.Errorf("final phase/state = %q/%q", s.Phase, s.State)
	}
	if s.Searches != 1 || s.SearchMeasurements != 4 {
		t.Errorf("searches = %d/%d", s.Searches, s.SearchMeasurements)
	}
	// baseline = 64 (search) + 3 hits × 64.
	if s.BaselineMeasurements != 64+3*64 || s.MeasurementsSaved != 64+3*64-4 {
		t.Errorf("baseline/saved = %d/%d", s.BaselineMeasurements, s.MeasurementsSaved)
	}
	if s.DiskLoaded != 4 || s.DiskHits != 3 || s.DiskMisses != 9 || s.DiskFlushed != 9 || s.DiskBytes != 720 || s.DiskHitRate != 0.25 {
		t.Errorf("disk cache section = %+v", s)
	}
	if s.CacheHits != 3 || s.CacheMisses != 1 || s.CacheHitRate != 0.75 {
		t.Errorf("cache = %d/%d rate %v", s.CacheHits, s.CacheMisses, s.CacheHitRate)
	}
	if got := s.Items["learn-test"]; got != (ItemProgress{Done: 5, Total: 120}) {
		t.Errorf("item progress = %+v", got)
	}
	if s.Generation != 2 || s.BestWCR != 1.5 {
		t.Errorf("generation = %d best %v", s.Generation, s.BestWCR)
	}
	if len(s.PhasesDone) != 1 || s.PhasesDone[0] != (PhaseCost{Name: "learn", Measurements: 4, SimTimeSec: 0.5}) {
		t.Errorf("phases done = %+v", s.PhasesDone)
	}
	if !p.Ready() {
		t.Error("finished run must stay ready for late scrapes")
	}

	// Earlier snapshots are immutable: the one taken at Seq 1 kept its state.
	if s2 := p.Current(); s2.Seq == 0 {
		t.Error("Seq not advancing")
	}

	p.PoolRun(4, 100)
	p.PoolRun(2, 50)
	if runs, tasks, maxw := p.PoolStats(); runs != 2 || tasks != 150 || maxw != 4 {
		t.Errorf("pool stats = %d/%d/%d", runs, tasks, maxw)
	}

	// Nil publisher is inert.
	var nilP *Progress
	nilP.Done()
	nilP.PoolRun(1, 1)
	if nilP.Ready() {
		t.Error("nil progress reports ready")
	}
}

func TestProgressConcurrentReaders(t *testing.T) {
	p := NewProgress("c")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = p.Current()
					_ = p.Watch()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		p.Item("spin", i, 500)
	}
	close(stop)
	wg.Wait()
	if got := p.Current().Items["spin"]; got.Done != 499 {
		t.Errorf("last item = %+v", got)
	}
}

// quickConfig mirrors internal/core's test configuration: a flow small
// enough to run in well under a second but exercising every phase.
func quickFlowConfig(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.LearnTests = 60
	cfg.EnsembleSize = 2
	cfg.HiddenLayers = []int{10}
	cfg.CandidatePool = 150
	cfg.SeedCount = 8
	cfg.GA.PopSize = 8
	cfg.GA.Islands = 2
	cfg.GA.MaxGenerations = 6
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	return cfg
}

func newFlowTester(t *testing.T, seed int64) *ate.ATE {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	return ate.New(dev, seed)
}

// runFlow executes the learn → propose-seeds → optimize flow with the given
// parallelism, returning the trace bytes and (when attach is true) the
// final progress snapshot.
func runFlow(t *testing.T, seed int64, parallelism int, attach bool) ([]byte, *Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("flow", telemetry.NewTracer(&buf))
	var p *Progress
	if attach {
		p = NewProgress("flow")
		tel.SetRunObserver(p)
	}
	cfg := quickFlowConfig(seed)
	cfg.Parallelism = parallelism
	cfg.Telemetry = tel
	char, err := core.NewCharacterizer(cfg, newFlowTester(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	if _, err := char.Optimize(); err != nil {
		t.Fatal(err)
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	if p != nil {
		p.Done()
		return buf.Bytes(), p.Current()
	}
	return buf.Bytes(), nil
}

// The /progress snapshot is fed exclusively from deterministic program
// points, so the final snapshot of a run is identical for any -parallel
// worker count.
func TestProgressSnapshotDeterministicAcrossParallelism(t *testing.T) {
	_, serial := runFlow(t, 91, 1, true)
	if serial.State != StateDone || serial.Searches == 0 || len(serial.PhasesDone) == 0 {
		t.Fatalf("serial snapshot looks empty: %+v", serial)
	}
	for _, workers := range []int{2, 8} {
		_, par := runFlow(t, 91, workers, true)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("parallelism=%d final progress snapshot differs:\nserial: %+v\npar:    %+v",
				workers, serial, par)
		}
	}
}

// Attaching the live observer (and an admin server scraping it) must not
// change a single trace byte.
func TestTraceIdenticalWithAndWithoutObserver(t *testing.T) {
	plain, _ := runFlow(t, 57, 2, false)
	if len(plain) == 0 {
		t.Fatal("flow produced an empty trace")
	}
	observed, snap := runFlow(t, 57, 2, true)
	if !bytes.Equal(plain, observed) {
		t.Errorf("trace differs with progress observer attached (%d vs %d bytes)",
			len(plain), len(observed))
	}
	if snap.Searches == 0 || snap.CacheHits == 0 {
		t.Errorf("observer snapshot missing activity: %+v", snap)
	}
	wantPhases := map[string]bool{"learn": false, "propose-seeds": false, "optimize": false}
	for _, ph := range snap.PhasesDone {
		if _, ok := wantPhases[ph.Name]; ok {
			wantPhases[ph.Name] = true
		}
	}
	for name, seen := range wantPhases {
		if !seen {
			t.Errorf("progress snapshot missing completed phase %q", name)
		}
	}
	if snap.Generation == 0 {
		t.Error("progress snapshot saw no GA generations")
	}
	if got := snap.Items["learn-test"]; got.Done == 0 || got.Total != 60 {
		t.Errorf("learn-test item progress = %+v, want done>0 total=60", got)
	}
}
