package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Trace-over-trace regression comparison: join two traces' per-label cost
// rollups, compute the relative deltas, and flag every label where the new
// trace got more expensive than a threshold allows. Traces carry only
// logical counters, so two runs of the same workload diff to exactly zero —
// any nonzero delta is a real workload change, not scheduling noise.

// LabelDelta is one joined rollup row of a trace comparison.
type LabelDelta struct {
	Label string

	// Old/New are nil when the label exists on only one side.
	Old *Rollup
	New *Rollup

	// MeasurementsPct / SimTimePct are the relative growth of the new side
	// over the old in percent (+25 = 25% more expensive). NaN when the old
	// side is absent or zero on that axis.
	MeasurementsPct float64
	SimTimePct      float64

	// Regressed marks rows that exceeded the comparison threshold.
	Regressed bool
	// Reason says which axis tripped ("measurements +31.2%", "appeared", …).
	Reason string
}

// DiffOptions tunes a trace comparison.
type DiffOptions struct {
	// FailOverPct is the regression threshold in percent: a label whose
	// measurement count or simulated-tester time grew by at least this much
	// regresses. <= 0 disables thresholding (report-only diff).
	FailOverPct float64
	// MinMeasurements is the noise floor: labels whose measurement count
	// stays below it on both sides never regress (a 3→4 measurement helper
	// span is a 33% "regression" nobody should page on). Zero keeps every
	// label.
	MinMeasurements int64
	// FailOnNew additionally flags labels present only in the new trace and
	// carrying at least MinMeasurements measurements — a phase that did not
	// exist before is a workload change a gate should surface.
	FailOnNew bool
}

// TraceDiff is the result of comparing two parsed traces.
type TraceDiff struct {
	Deltas []LabelDelta
	Opts   DiffOptions
}

// DiffTraces joins the two traces' rollups by label. Rows sort regressed
// first, then by absolute simulated-time delta descending, then label.
func DiffTraces(old, new *Trace, opts DiffOptions) *TraceDiff {
	oldBy := make(map[string]Rollup)
	for _, r := range old.Rollups() {
		oldBy[r.Label] = r
	}
	newBy := make(map[string]Rollup)
	for _, r := range new.Rollups() {
		newBy[r.Label] = r
	}

	labels := make([]string, 0, len(oldBy)+len(newBy))
	for l := range oldBy {
		labels = append(labels, l)
	}
	for l := range newBy {
		if _, ok := oldBy[l]; !ok {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)

	d := &TraceDiff{Opts: opts}
	for _, label := range labels {
		var row LabelDelta
		row.Label = label
		if r, ok := oldBy[label]; ok {
			rr := r
			row.Old = &rr
		}
		if r, ok := newBy[label]; ok {
			rr := r
			row.New = &rr
		}
		row.MeasurementsPct = growthPct(rollupMeas(row.Old), rollupMeas(row.New))
		row.SimTimePct = growthPctF(rollupSim(row.Old), rollupSim(row.New))
		classify(&row, opts)
		d.Deltas = append(d.Deltas, row)
	}
	sort.SliceStable(d.Deltas, func(i, j int) bool {
		a, b := d.Deltas[i], d.Deltas[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		da, db := math.Abs(simDelta(a)), math.Abs(simDelta(b))
		if da != db {
			return da > db
		}
		return a.Label < b.Label
	})
	return d
}

// classify decides whether one row regresses under the options.
func classify(row *LabelDelta, opts DiffOptions) {
	if opts.FailOverPct <= 0 {
		return
	}
	// Noise floor: tiny labels never regress.
	if rollupMeas(row.Old) < opts.MinMeasurements && rollupMeas(row.New) < opts.MinMeasurements {
		return
	}
	switch {
	case row.Old == nil:
		if opts.FailOnNew {
			row.Regressed = true
			row.Reason = "appeared"
		}
	case row.New == nil:
		// A vanished label is an improvement (or a renamed phase the
		// corresponding "appeared" row surfaces); never a regression.
	default:
		if !math.IsNaN(row.MeasurementsPct) && row.MeasurementsPct >= opts.FailOverPct {
			row.Regressed = true
			row.Reason = fmt.Sprintf("measurements +%.1f%%", row.MeasurementsPct)
			return
		}
		if !math.IsNaN(row.SimTimePct) && row.SimTimePct >= opts.FailOverPct {
			row.Regressed = true
			row.Reason = fmt.Sprintf("sim time +%.1f%%", row.SimTimePct)
		}
	}
}

// Regressions returns the rows that tripped the threshold.
func (d *TraceDiff) Regressions() []LabelDelta {
	var out []LabelDelta
	for _, row := range d.Deltas {
		if row.Regressed {
			out = append(out, row)
		}
	}
	return out
}

// Render writes the human-readable comparison table.
func (d *TraceDiff) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %13s %13s %9s %12s %12s %9s  %s\n",
		"span", "meas old", "meas new", "Δmeas%", "sim old (s)", "sim new (s)", "Δsim%", "verdict")
	for _, row := range d.Deltas {
		verdict := "ok"
		if row.Regressed {
			verdict = "REGRESSED " + row.Reason
		} else if row.Old == nil {
			verdict = "new"
		} else if row.New == nil {
			verdict = "gone"
		}
		fmt.Fprintf(&b, "%-28s %13s %13s %9s %12s %12s %9s  %s\n",
			row.Label,
			intCell(row.Old), intCell(row.New),
			pctCell(row.MeasurementsPct),
			floatCell(row.Old), floatCell(row.New),
			pctCell(row.SimTimePct), verdict)
	}
	if n := len(d.Regressions()); n > 0 {
		fmt.Fprintf(&b, "\n%d label(s) regressed beyond %.1f%%\n", n, d.Opts.FailOverPct)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func simDelta(row LabelDelta) float64 {
	return rollupSim(row.New) - rollupSim(row.Old)
}

func rollupMeas(r *Rollup) int64 {
	if r == nil {
		return 0
	}
	return r.Measurements
}

func rollupSim(r *Rollup) float64 {
	if r == nil {
		return 0
	}
	return r.SimTimeSec
}

// growthPct returns the percent growth of new over old, NaN when old is 0.
func growthPct(old, new int64) float64 {
	return growthPctF(float64(old), float64(new))
}

func growthPctF(old, new float64) float64 {
	if old == 0 {
		return math.NaN()
	}
	return 100 * (new - old) / old
}

func intCell(r *Rollup) string {
	if r == nil {
		return "—"
	}
	return fmt.Sprintf("%d", r.Measurements)
}

func floatCell(r *Rollup) string {
	if r == nil {
		return "—"
	}
	return fmt.Sprintf("%.3f", r.SimTimeSec)
}

func pctCell(pct float64) string {
	if math.IsNaN(pct) {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
