package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Run states published on /progress and consulted by /readyz.
const (
	StateStarting = "starting" // server up, no pipeline phase has begun
	StateRunning  = "running"  // at least one phase started
	StateDone     = "done"     // run finished; final snapshot is frozen
)

// PhaseCost is one completed phase with its deterministic ATE cost. It
// deliberately omits the report's wall-clock seconds so the snapshot stays
// comparable across runs and worker counts.
type PhaseCost struct {
	Name         string  `json:"name"`
	Measurements int64   `json:"measurements"`
	Vectors      int64   `json:"vectors"`
	Profiles     int64   `json:"profiles"`
	SimTimeSec   float64 `json:"sim_time_sec"`
}

// ItemProgress is the done/total position of one fine-grained loop (Table 1
// rows, lot dies, learning tests, shmoo tests, GA items …). Total 0 means
// the loop bound was unknown.
type ItemProgress struct {
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
}

// Snapshot is the live run state published to /progress subscribers. Every
// field derives from logical counters fed at deterministic program points,
// so for a given workload the final snapshot is identical for any -parallel
// worker count (pinned by TestProgressSnapshotDeterministicAcrossParallelism).
// Scheduling-dependent data (pool utilization, uptime) is kept out and
// served separately under the endpoint's non_deterministic section.
type Snapshot struct {
	Run   string `json:"run"`
	State string `json:"state"`
	// Seq counts publishes; subscribers use it to drop stale frames.
	Seq uint64 `json:"seq"`

	// Phase is the in-flight pipeline phase ("" between phases).
	Phase string `json:"phase,omitempty"`
	// PhasesDone lists completed phases in completion order.
	PhasesDone []PhaseCost `json:"phases_done,omitempty"`
	// Items tracks fine-grained loop progress by kind.
	Items map[string]ItemProgress `json:"items,omitempty"`

	// GA progress (optimization scheme, fig. 5).
	Generation int     `json:"ga_generation"`
	BestWCR    float64 `json:"ga_best_wcr"`

	// Search economics: performed trip-point searches vs the no-SUTP
	// full-range baseline, and memo-cache effectiveness.
	Searches             int64   `json:"searches"`
	SearchMeasurements   int64   `json:"search_measurements"`
	BaselineMeasurements int64   `json:"baseline_measurements"`
	MeasurementsSaved    int64   `json:"measurements_saved"`
	CacheHits            int64   `json:"cache_hits"`
	CacheMisses          int64   `json:"cache_misses"`
	CacheHitRate         float64 `json:"cache_hit_rate"`

	// Persistent measurement-store effectiveness (the -cache-dir disk
	// cache); zero when no store is attached. The hit rate updates with
	// every store report, so an SSE subscriber sees its trajectory.
	DiskLoaded  int64   `json:"disk_cache_loaded,omitempty"`
	DiskHits    int64   `json:"disk_cache_hits,omitempty"`
	DiskMisses  int64   `json:"disk_cache_misses,omitempty"`
	DiskFlushed int64   `json:"disk_cache_flushed,omitempty"`
	DiskBytes   int64   `json:"disk_cache_bytes,omitempty"`
	DiskHitRate float64 `json:"disk_cache_hit_rate,omitempty"`

	// Fingerprint is the run's deterministic trace-byte digest
	// (telemetry.Report.Fingerprint), published once at finish — so a
	// subscriber watching two runs of the same workload can see them agree
	// without downloading either trace.
	Fingerprint string `json:"run_fingerprint,omitempty"`
}

// Progress publishes live run snapshots. Writers (the telemetry observer
// callbacks, all at deterministic serial program points) copy-on-write a
// new snapshot under a short mutex; readers are lock-free — Current is one
// atomic load — so HTTP scrapes never contend with the run's hot path.
// Progress implements telemetry.RunObserver.
type Progress struct {
	cur    atomic.Pointer[Snapshot]
	notify atomic.Pointer[chan struct{}]

	mu sync.Mutex // serializes writers

	// Scheduling-dependent pool stats, outside the deterministic snapshot.
	ndPoolRuns   atomic.Int64
	ndPoolTasks  atomic.Int64
	ndMaxWorkers atomic.Int64

	// Scheduling-dependent fleet stream stats (persistent-pool scheduler):
	// run-ahead depth is a high-water mark, utilization and overlap are the
	// latest stream's ratios (stored as float bits).
	ndFleetStreams  atomic.Int64
	ndFleetTasks    atomic.Int64
	ndFleetMaxAhead atomic.Int64
	ndFleetUtil     atomic.Uint64
	ndFleetOverlap  atomic.Uint64
}

var _ telemetry.RunObserver = (*Progress)(nil)

// NewProgress returns a publisher whose initial snapshot is the named run
// in the "starting" state.
func NewProgress(run string) *Progress {
	p := &Progress{}
	p.cur.Store(&Snapshot{Run: run, State: StateStarting})
	ch := make(chan struct{})
	p.notify.Store(&ch)
	return p
}

// Current returns the latest snapshot (never nil). The returned value is
// shared and must not be mutated. Nil-safe.
func (p *Progress) Current() *Snapshot {
	if p == nil {
		return &Snapshot{}
	}
	return p.cur.Load()
}

// Watch returns a channel that closes on the next publish. Subscribe by
// taking the channel first and the snapshot second: a publish racing in
// between closes the already-held channel, so no update is ever missed.
func (p *Progress) Watch() <-chan struct{} {
	return *p.notify.Load()
}

// publish applies mutate to a copy of the current snapshot and swaps it in,
// waking every watcher.
func (p *Progress) publish(mutate func(*Snapshot)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	next := *p.cur.Load()
	next.PhasesDone = append([]PhaseCost(nil), next.PhasesDone...)
	items := make(map[string]ItemProgress, len(next.Items)+1)
	for k, v := range next.Items {
		items[k] = v
	}
	next.Items = items
	mutate(&next)
	next.Seq++
	if len(next.Items) == 0 {
		next.Items = nil
	}
	p.cur.Store(&next)
	old := p.notify.Load()
	ch := make(chan struct{})
	p.notify.Store(&ch)
	p.mu.Unlock()
	close(*old)
}

// PhaseStarted implements telemetry.RunObserver.
func (p *Progress) PhaseStarted(name string) {
	p.publish(func(s *Snapshot) {
		s.Phase = name
		s.State = StateRunning
	})
}

// PhaseEnded implements telemetry.RunObserver.
func (p *Progress) PhaseEnded(name string, cost telemetry.Cost) {
	p.publish(func(s *Snapshot) {
		if s.Phase == name {
			s.Phase = ""
		}
		s.PhasesDone = append(s.PhasesDone, PhaseCost{
			Name:         name,
			Measurements: cost.Measurements,
			Vectors:      cost.Vectors,
			Profiles:     cost.Profiles,
			SimTimeSec:   cost.SimTimeSec,
		})
	})
}

// SearchRecorded implements telemetry.RunObserver.
func (p *Progress) SearchRecorded(measurements, fullRangeBudget int, converged bool) {
	p.publish(func(s *Snapshot) {
		s.Searches++
		s.SearchMeasurements += int64(measurements)
		s.BaselineMeasurements += int64(fullRangeBudget)
		s.recomputeDerived()
	})
}

// CacheLookups implements telemetry.RunObserver. Hits grow the baseline by
// the full-range budget each, mirroring telemetry.RecordCacheLookups.
func (p *Progress) CacheLookups(hits, misses int64, fullRangeBudget int) {
	p.publish(func(s *Snapshot) {
		s.CacheHits += hits
		s.CacheMisses += misses
		s.BaselineMeasurements += hits * int64(fullRangeBudget)
		s.recomputeDerived()
	})
}

// DiskCache implements telemetry.RunObserver: the payload carries the
// run-accumulated store totals, so the snapshot stores them absolutely.
func (p *Progress) DiskCache(d telemetry.DiskCacheStats) {
	p.publish(func(s *Snapshot) {
		s.DiskLoaded = d.LoadedEntries
		s.DiskHits = d.Hits
		s.DiskMisses = d.Misses
		s.DiskFlushed = d.FlushedEntries
		s.DiskBytes = d.BytesOnDisk
		s.DiskHitRate = telemetry.HitRate(d.Hits, d.Misses)
	})
}

// Generation implements telemetry.RunObserver.
func (p *Progress) Generation(gen int, bestWCR float64) {
	p.publish(func(s *Snapshot) {
		s.Generation = gen
		s.BestWCR = bestWCR
	})
}

// Item implements telemetry.RunObserver.
func (p *Progress) Item(kind string, done, total int) {
	p.publish(func(s *Snapshot) {
		s.Items[kind] = ItemProgress{Done: done, Total: total}
	})
}

// PoolRun records one worker-pool execution. Per-run worker counts are
// scheduling- and flag-dependent, so these land in atomic side counters
// served under non_deterministic, never in the snapshot.
func (p *Progress) PoolRun(workers int, tasks int) {
	if p == nil {
		return
	}
	p.ndPoolRuns.Add(1)
	p.ndPoolTasks.Add(int64(tasks))
	for {
		cur := p.ndMaxWorkers.Load()
		if int64(workers) <= cur || p.ndMaxWorkers.CompareAndSwap(cur, int64(workers)) {
			break
		}
	}
}

// FleetStream records one fleet stream drain (the persistent-pool
// scheduler's unit of fan-out). Queue depth, worker occupancy and pipeline
// overlap are scheduling artifacts, so like PoolRun these land in atomic
// side counters served under non_deterministic, never in the snapshot.
func (p *Progress) FleetStream(workers, tasks, maxRunAhead int, utilization, overlapRatio float64) {
	if p == nil {
		return
	}
	p.ndFleetStreams.Add(1)
	p.ndFleetTasks.Add(int64(tasks))
	for {
		cur := p.ndFleetMaxAhead.Load()
		if int64(maxRunAhead) <= cur || p.ndFleetMaxAhead.CompareAndSwap(cur, int64(maxRunAhead)) {
			break
		}
	}
	p.ndFleetUtil.Store(math.Float64bits(utilization))
	p.ndFleetOverlap.Store(math.Float64bits(overlapRatio))
}

// FleetStats returns the scheduling-dependent fleet counters: stream count,
// total streamed tasks, the run-ahead high-water mark and the most recent
// stream's worker-utilization and pipeline-overlap ratios.
func (p *Progress) FleetStats() (streams, tasks, maxRunAhead int64, utilization, overlapRatio float64) {
	if p == nil {
		return 0, 0, 0, 0, 0
	}
	return p.ndFleetStreams.Load(), p.ndFleetTasks.Load(), p.ndFleetMaxAhead.Load(),
		math.Float64frombits(p.ndFleetUtil.Load()), math.Float64frombits(p.ndFleetOverlap.Load())
}

// SetFingerprint publishes the run's deterministic trace digest (call
// before Done so the final snapshot carries it). Empty digests (tracing
// off) are a no-op. Nil-safe.
func (p *Progress) SetFingerprint(fp string) {
	if p == nil || fp == "" {
		return
	}
	p.publish(func(s *Snapshot) { s.Fingerprint = fp })
}

// Done freezes the run in its final state. Nil-safe.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.publish(func(s *Snapshot) {
		s.Phase = ""
		s.State = StateDone
	})
}

// Ready reports run-phase-aware readiness: the service is ready once the
// pipeline has started doing work (and stays ready through completion, so
// late scrapes of a finished run succeed). Nil-safe (not ready).
func (p *Progress) Ready() bool {
	if p == nil {
		return false
	}
	return p.Current().State != StateStarting
}

// PoolStats returns the scheduling-dependent pool counters.
func (p *Progress) PoolStats() (runs, tasks, maxWorkers int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.ndPoolRuns.Load(), p.ndPoolTasks.Load(), p.ndMaxWorkers.Load()
}

// recomputeDerived refreshes the fields computed from the raw counters.
func (s *Snapshot) recomputeDerived() {
	saved := s.BaselineMeasurements - s.SearchMeasurements
	if saved < 0 {
		saved = 0
	}
	s.MeasurementsSaved = saved
	s.CacheHitRate = telemetry.HitRate(s.CacheHits, s.CacheMisses)
}
