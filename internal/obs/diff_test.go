package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// makeTrace builds a parsed trace with the given per-phase measurement
// costs, through the real tracer + parser so the diff sees exactly what
// tracestat sees.
func makeTrace(t *testing.T, phases map[string]int64) *Trace {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("diff-test", telemetry.NewTracer(&buf))
	// Deterministic phase order: sorted names (map order must not leak into
	// the trace).
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		ph := tel.StartPhase(name)
		ph.End(telemetry.Cost{
			Measurements: phases[name],
			Vectors:      phases[name] * 10,
			SimTimeSec:   float64(phases[name]) / 100,
		})
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDiffTracesIdenticalIsClean(t *testing.T) {
	phases := map[string]int64{"learn": 1000, "optimize": 4000}
	d := DiffTraces(makeTrace(t, phases), makeTrace(t, phases),
		DiffOptions{FailOverPct: 20})
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("identical traces regressed: %+v", regs)
	}
	for _, row := range d.Deltas {
		if !math.IsNaN(row.MeasurementsPct) && row.MeasurementsPct != 0 {
			t.Errorf("identical traces: %s Δmeas = %v", row.Label, row.MeasurementsPct)
		}
	}
}

func TestDiffTracesFlagsRegression(t *testing.T) {
	old := makeTrace(t, map[string]int64{"learn": 1000, "optimize": 4000})
	// learn grew 30% — over a 20% gate; optimize shrank (never a regression).
	cur := makeTrace(t, map[string]int64{"learn": 1300, "optimize": 3500})
	d := DiffTraces(old, cur, DiffOptions{FailOverPct: 20})
	regs := d.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly phase:learn", regs)
	}
	if regs[0].Label != "phase:learn" || !strings.Contains(regs[0].Reason, "measurements +30.0%") {
		t.Errorf("regression row = %+v", regs[0])
	}
	// Under a 40% gate the same pair passes.
	if regs := DiffTraces(old, cur, DiffOptions{FailOverPct: 40}).Regressions(); len(regs) != 0 {
		t.Errorf("40%% gate regressed: %+v", regs)
	}
	// Regressed rows sort first in the rendered table.
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSED measurements +30.0%") {
		t.Errorf("render missing regression verdict:\n%s", out)
	}
	if !strings.Contains(out, "1 label(s) regressed beyond 20.0%") {
		t.Errorf("render missing summary line:\n%s", out)
	}
}

func TestDiffTracesNoiseFloorAndNewLabels(t *testing.T) {
	old := makeTrace(t, map[string]int64{"learn": 3, "optimize": 4000})
	cur := makeTrace(t, map[string]int64{"learn": 4, "optimize": 4000, "extra": 500})

	// A 3→4 jump is +33% but under the noise floor; "extra" appeared.
	d := DiffTraces(old, cur, DiffOptions{FailOverPct: 20, MinMeasurements: 10, FailOnNew: true})
	regs := d.Regressions()
	if len(regs) != 1 || regs[0].Label != "phase:extra" || regs[0].Reason != "appeared" {
		t.Fatalf("regressions = %+v, want only phase:extra appeared", regs)
	}
	// Without FailOnNew the appearance is reported but not fatal.
	if regs := DiffTraces(old, cur, DiffOptions{FailOverPct: 20, MinMeasurements: 10}).Regressions(); len(regs) != 0 {
		t.Errorf("FailOnNew=false still regressed: %+v", regs)
	}
	// A vanished label is never a regression.
	if regs := DiffTraces(cur, old, DiffOptions{FailOverPct: 20, MinMeasurements: 10}).Regressions(); len(regs) != 0 {
		t.Errorf("vanished label regressed: %+v", regs)
	}
}

func TestParseBenchJSON(t *testing.T) {
	// Mirrors the real BENCH_lot.json shape: nulls, and trailing gate text
	// after the closing bracket.
	src := `[
  {"benchmark": "BenchmarkA", "ns_per_op": 100, "allocs_per_op": 30, "hit_rate": null},
  {"benchmark": "BenchmarkB", "ns_per_op": 200, "hit_rate": 0.5}
]
lot gate: streamed 40284 dies/sec = 2.67x per-die loop
`
	entries, err := ParseBenchJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Name != "BenchmarkA" || entries[0].Metrics["allocs_per_op"] != 30 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if _, ok := entries[0].Metrics["hit_rate"]; ok {
		t.Error("null metric survived parsing")
	}
	if _, err := ParseBenchJSON(strings.NewReader(`[{"ns_per_op": 1}]`)); err == nil {
		t.Error("entry without benchmark name parsed")
	}
	if _, err := ParseBenchJSON(strings.NewReader(`{`)); err == nil {
		t.Error("corrupt json parsed")
	}
}

func TestDiffBenchDirectionsAndGates(t *testing.T) {
	baseline := []BenchEntry{
		{Name: "BenchmarkA", Metrics: map[string]float64{
			"ns_per_op": 100, "allocs_per_op": 30, "cache_hit_rate": 0.8}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"hit_rate": 0}},
	}

	// allocs +50% regresses; ns_per_op +100% is skipped as time-based; a
	// hit-rate drop of 50% regresses (higher is better).
	current := []BenchEntry{
		{Name: "BenchmarkA", Metrics: map[string]float64{
			"ns_per_op": 200, "allocs_per_op": 45, "cache_hit_rate": 0.4}},
		{Name: "BenchmarkZero", Metrics: map[string]float64{"hit_rate": 1}},
	}
	d := DiffBench(baseline, current, BenchDiffOptions{FailOverPct: 20})
	regs := d.Regressions()
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want allocs + hit rate", regs)
	}
	gotMetrics := map[string]bool{}
	for _, r := range regs {
		gotMetrics[r.Metric] = true
	}
	if !gotMetrics["allocs_per_op"] || !gotMetrics["cache_hit_rate"] {
		t.Errorf("regressed metrics = %v", gotMetrics)
	}
	if !d.Failed() {
		t.Error("Failed() = false with regressions present")
	}
	// Time-based metrics gate only on request.
	d = DiffBench(baseline, current, BenchDiffOptions{FailOverPct: 20, IncludeTimeBased: true})
	found := false
	for _, r := range d.Regressions() {
		if r.Metric == "ns_per_op" {
			found = true
		}
	}
	if !found {
		t.Error("IncludeTimeBased did not gate ns_per_op")
	}

	// Identical files pass clean.
	d = DiffBench(baseline, baseline, BenchDiffOptions{FailOverPct: 20})
	if d.Failed() {
		t.Errorf("identical bench files failed: %+v", d.Regressions())
	}

	// A benchmark missing from the current file fails the gate.
	d = DiffBench(baseline, current[:1], BenchDiffOptions{FailOverPct: 20})
	if len(d.MissingBenchmarks) != 1 || d.MissingBenchmarks[0] != "BenchmarkZero" {
		t.Errorf("missing benchmarks = %v", d.MissingBenchmarks)
	}
	if !d.Failed() {
		t.Error("missing benchmark did not fail the gate")
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MISSING from current file") {
		t.Errorf("render missing MISSING row:\n%s", buf.String())
	}
}

func TestDiffBenchAgainstRealBaselines(t *testing.T) {
	// The committed BENCH files must diff clean against themselves — this is
	// the exact self-check ci.sh runs.
	for _, name := range []string{"BENCH_kernels.json", "BENCH_lot.json", "BENCH_obs.json", "BENCH_parallel.json"} {
		raw, err := readRepoFile(name)
		if err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		entries, err := ParseBenchJSON(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s parsed empty", name)
		}
		d := DiffBench(entries, entries, BenchDiffOptions{FailOverPct: 20})
		if d.Failed() {
			t.Errorf("%s does not diff clean against itself: %+v", name, d.Regressions())
		}
	}
}

// readRepoFile loads a file from the repo root (two levels up from this
// package).
func readRepoFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join("..", "..", name))
}
