package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Benchmark-over-baseline regression comparison for the repo's
// BENCH_*.json files (the arrays ci.sh distills from `go test -bench`
// output: one object per benchmark, a "benchmark" name key and numeric
// metrics, null for metrics a variant does not report).
//
// Metrics gate by direction class: counters where smaller is better
// (allocations, bytes, ATE measurements) fail when they grow past the
// threshold; rates where bigger is better (cache hit rate, throughput) fail
// when they shrink past it. Wall-clock-derived metrics (ns/op, dies/sec)
// are skipped by default — they are machine-dependent, and a CI gate on
// them flakes — but can be opted in for like-for-like hardware.

// BenchEntry is one benchmark's metric set.
type BenchEntry struct {
	Name    string
	Metrics map[string]float64 // null metrics are absent
}

// ParseBenchJSON decodes a BENCH_*.json array. Content after the closing
// bracket (ci.sh appends human-readable gate lines to some files) is
// ignored.
func ParseBenchJSON(r io.Reader) ([]BenchEntry, error) {
	var rows []map[string]any
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rows); err != nil {
		return nil, fmt.Errorf("obs: parsing bench json: %w", err)
	}
	entries := make([]BenchEntry, 0, len(rows))
	for i, row := range rows {
		name, ok := row["benchmark"].(string)
		if !ok || name == "" {
			return nil, fmt.Errorf("obs: bench json entry %d: missing \"benchmark\" name", i)
		}
		e := BenchEntry{Name: name, Metrics: make(map[string]float64)}
		for k, v := range row {
			if k == "benchmark" {
				continue
			}
			if f, ok := v.(float64); ok && !math.IsNaN(f) {
				e.Metrics[k] = f
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Metric direction classes. Anything not listed gates as lower-is-better —
// new counter-style metrics get a conservative default.
var (
	higherBetterMetrics = map[string]bool{
		"cache_hit_rate":     true,
		"hit_rate":           true,
		"measurements_saved": true,
		"dies_per_sec":       true,
	}
	timeBasedMetrics = map[string]bool{
		"ns_per_op":    true,
		"dies_per_sec": true,
	}
)

// BenchDelta is one (benchmark, metric) comparison row.
type BenchDelta struct {
	Benchmark string
	Metric    string
	Old, New  float64
	// Pct is the relative change in the direction that matters: positive
	// means worse (more allocs, lower hit rate). NaN when the baseline is 0.
	Pct       float64
	Regressed bool
	Skipped   string // non-empty reason when the metric was not gated
}

// BenchDiffOptions tunes a benchmark comparison.
type BenchDiffOptions struct {
	// FailOverPct is the worsening threshold in percent. <= 0 disables
	// gating (report-only).
	FailOverPct float64
	// IncludeTimeBased also gates wall-clock-derived metrics (ns_per_op,
	// dies_per_sec); off by default because they track the machine, not the
	// code.
	IncludeTimeBased bool
}

// BenchDiff is the result of comparing a current bench file to a baseline.
type BenchDiff struct {
	Deltas []BenchDelta
	// MissingBenchmarks are baseline benchmarks absent from the current
	// file — a silently dropped benchmark must fail the gate, otherwise
	// deleting the benchmark "fixes" any regression.
	MissingBenchmarks []string
	Opts              BenchDiffOptions
}

// DiffBench joins baseline and current entries by benchmark name and
// compares every metric present in both.
func DiffBench(baseline, current []BenchEntry, opts BenchDiffOptions) *BenchDiff {
	curBy := make(map[string]BenchEntry, len(current))
	for _, e := range current {
		curBy[e.Name] = e
	}
	d := &BenchDiff{Opts: opts}
	for _, base := range baseline {
		cur, ok := curBy[base.Name]
		if !ok {
			d.MissingBenchmarks = append(d.MissingBenchmarks, base.Name)
			continue
		}
		metrics := make([]string, 0, len(base.Metrics))
		for m := range base.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			oldV := base.Metrics[m]
			newV, ok := cur.Metrics[m]
			if !ok {
				// The metric stopped being reported (a null in the new
				// file): not comparable, surface as skipped.
				d.Deltas = append(d.Deltas, BenchDelta{
					Benchmark: base.Name, Metric: m, Old: oldV, New: math.NaN(),
					Pct: math.NaN(), Skipped: "absent in current",
				})
				continue
			}
			row := BenchDelta{Benchmark: base.Name, Metric: m, Old: oldV, New: newV}
			switch {
			case timeBasedMetrics[m] && !opts.IncludeTimeBased:
				row.Skipped = "time-based"
				row.Pct = worsePct(m, oldV, newV)
			case oldV == 0:
				// Zero baselines cannot express a relative threshold (a
				// cold-cache 0% hit rate, a zero-alloc benchmark).
				row.Skipped = "zero baseline"
				row.Pct = math.NaN()
			default:
				row.Pct = worsePct(m, oldV, newV)
				if opts.FailOverPct > 0 && row.Pct >= opts.FailOverPct {
					row.Regressed = true
				}
			}
			d.Deltas = append(d.Deltas, row)
		}
	}
	sort.SliceStable(d.Deltas, func(i, j int) bool {
		a, b := d.Deltas[i], d.Deltas[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Metric < b.Metric
	})
	return d
}

// worsePct converts a metric change into "percent worse": growth for
// lower-is-better metrics, shrinkage for higher-is-better ones.
func worsePct(metric string, old, new float64) float64 {
	if old == 0 {
		return math.NaN()
	}
	pct := 100 * (new - old) / old
	if higherBetterMetrics[metric] {
		return -pct
	}
	return pct
}

// Regressions returns the rows that tripped the threshold.
func (d *BenchDiff) Regressions() []BenchDelta {
	var out []BenchDelta
	for _, row := range d.Deltas {
		if row.Regressed {
			out = append(out, row)
		}
	}
	return out
}

// Failed reports whether the gate should fail: any regressed metric or any
// baseline benchmark missing from the current file.
func (d *BenchDiff) Failed() bool {
	return len(d.MissingBenchmarks) > 0 || len(d.Regressions()) > 0
}

// Render writes the human-readable comparison table.
func (d *BenchDiff) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-48s %-20s %14s %14s %9s  %s\n",
		"benchmark", "metric", "baseline", "current", "Δworse%", "verdict")
	for _, row := range d.Deltas {
		verdict := "ok"
		switch {
		case row.Regressed:
			verdict = "REGRESSED"
		case row.Skipped != "":
			verdict = "skipped (" + row.Skipped + ")"
		}
		fmt.Fprintf(&b, "%-48s %-20s %14s %14s %9s  %s\n",
			row.Benchmark, row.Metric, numCell(row.Old), numCell(row.New),
			pctCell(row.Pct), verdict)
	}
	for _, name := range d.MissingBenchmarks {
		fmt.Fprintf(&b, "%-48s %-20s %14s %14s %9s  MISSING from current file\n",
			name, "—", "—", "—", "—")
	}
	if d.Failed() {
		fmt.Fprintf(&b, "\n%d metric(s) regressed beyond %.1f%%, %d benchmark(s) missing\n",
			len(d.Regressions()), d.Opts.FailOverPct, len(d.MissingBenchmarks))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func numCell(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
