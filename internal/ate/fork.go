package ate

// Clone returns a cooled-down copy of the thermal configuration: same
// package constants, junction back at ambient.
func (th *Thermal) Clone() *Thermal {
	if th == nil {
		return nil
	}
	return &Thermal{
		RisePerVector: th.RisePerVector,
		TauSec:        th.TauSec,
		MaxRiseC:      th.MaxRiseC,
	}
}

// Fork creates an independent tester insertion for a parallel worker: a
// clone of the device in the socket (same die, fresh array), a private
// noise RNG seeded with seed, the same noise/repeat/thermal configuration,
// and zeroed cost counters. The fork shares no mutable state with the
// parent; merge its counters back with AddStats when the worker drains.
func (a *ATE) Fork(seed int64) (*ATE, error) {
	dev, err := a.dev.Clone()
	if err != nil {
		return nil, err
	}
	f := New(dev, seed)
	f.NoiseFraction = a.NoiseFraction
	f.Repeats = a.Repeats
	f.Heating = a.Heating.Clone()
	f.Profiler = a.Profiler
	return f, nil
}

// Reseed rewinds the insertion to a hermetic per-task state: the noise RNG
// restarts from seed, the junction cools to ambient, the pattern memory is
// invalidated, and the cost counters restart from zero (the thermal model
// clocks off TestTimeSec, so a leftover baseline would leak float-rounding
// differences into the junction temperature). After Reseed, a task's
// measurements depend only on the seed and the tests it applies — not on
// which worker ran before it — which is the property the deterministic
// parallel engine relies on. Bank Stats() before reseeding.
func (a *ATE) Reseed(seed int64) {
	// Seed in place: rand.Rand.Seed re-runs the source seeding, so the
	// stream equals a fresh rand.New(rand.NewSource(seed)) without paying a
	// ~5 KiB source allocation per task (Reseed runs once per fitness task).
	a.rng.Seed(seed)
	a.Heating.Reset()
	a.Reload()
	a.ResetStats()
}

// AddStats merges a forked insertion's cost counters into this tester, so
// work fanned across workers still shows up in the session's totals.
func (a *ATE) AddStats(s Stats) { a.stats.Add(s) }
