package ate

import (
	"fmt"

	"repro/internal/dut"
	"repro/internal/search"
)

// Parameter identifies a characterizable AC/DC parameter. The paper
// recommends generating neural networks "individually for each parameter or
// each characterization analysis task" (§5); the same holds here — one
// Parameter per characterization run.
type Parameter uint8

const (
	// TDQ is the data output valid time of fig. 7 (ns). Spec minimum
	// 20 ns; the minimum over tests is the worst case (eq. 6).
	TDQ Parameter = iota
	// Fmax is the maximum passing clock frequency (MHz).
	Fmax
	// VddMin is the minimum passing supply voltage (V).
	VddMin

	// NumParameters sizes per-parameter accounting arrays (Stats.PerParam).
	// Measurements charged with a Parameter ≥ NumParameters (the functional
	// replays, which sweep nothing) land in Stats.Functional instead.
	NumParameters = int(VddMin) + 1
)

// String names the parameter.
func (p Parameter) String() string {
	switch p {
	case TDQ:
		return "T_DQ"
	case Fmax:
		return "Fmax"
	case VddMin:
		return "Vddmin"
	default:
		return fmt.Sprintf("Parameter(%d)", uint8(p))
	}
}

// Unit returns the parameter's engineering unit.
func (p Parameter) Unit() string {
	switch p {
	case TDQ:
		return "ns"
	case Fmax:
		return "MHz"
	case VddMin:
		return "V"
	default:
		return "?"
	}
}

// SearchOptions returns the generous characterization range, resolution and
// orientation for a full-range trip point search of the parameter (§4:
// "very generous starting ranges should be selected").
func (p Parameter) SearchOptions() search.Options {
	switch p {
	case TDQ:
		// Strobe sweep: pass at short strobes, fail once the strobe
		// exceeds the device's valid window (eq. 3 orientation).
		return search.Options{Lo: 10, Hi: 45, Resolution: 0.1, Orientation: search.PassLow}
	case Fmax:
		return search.Options{Lo: 40, Hi: 150, Resolution: 0.5, Orientation: search.PassLow}
	case VddMin:
		// Pass above Vddmin, fail below (eq. 4 orientation).
		return search.Options{Lo: 1.0, Hi: 2.2, Resolution: 0.01, Orientation: search.PassHigh}
	default:
		return search.Options{}
	}
}

// Resolution is a convenience accessor for the parameter's default search
// resolution (also the base of the measurement-noise sigma).
func (p Parameter) Resolution() float64 { return p.SearchOptions().Resolution }

// SpecValue returns the specification limit for the parameter and whether
// the spec is a minimum (true) or a maximum (false). WCR computation (eqs.
// 5/6) selects its form from this.
func (p Parameter) SpecValue() (value float64, isMinimum bool) {
	switch p {
	case TDQ:
		return dut.SpecTDQNS, true // window must be at least 20 ns
	case Fmax:
		return 100, true // device must reach the 100 MHz specified clock
	case VddMin:
		return 1.62, false // device must start at or below Vdd−10%
	default:
		return 0, true
	}
}

// TrueValue returns the noise-free parameter value of a profile — the
// oracle the simulator can expose but real ATE cannot. Tests use it to
// verify that searches converge to the truth; the characterization flow
// itself never calls it.
func (p Parameter) TrueValue(profile dut.Profile) float64 {
	switch p {
	case TDQ:
		return profile.TDQWindowNS()
	case Fmax:
		return profile.FmaxMHz()
	case VddMin:
		return profile.VddMinV()
	default:
		return 0
	}
}
