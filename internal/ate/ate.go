// Package ate simulates the industrial automatic test equipment the paper
// drives: it applies characterization tests to a device under test,
// performs single pass/fail measurements at programmable operating points,
// adds realistic measurement noise, and accounts for every measurement and
// every applied vector so the test-time savings of the Search Until Trip
// Point method can be quantified the way the paper quantifies them.
package ate

import (
	"fmt"
	"math/rand"

	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
)

// Stats accumulates the cost of everything the ATE executed.
type Stats struct {
	Measurements   int64   // pass/fail strobe measurements
	VectorsApplied int64   // total vector cycles driven into the DUT
	TestTimeSec    float64 // simulated tester wall time
	Profiles       int64   // distinct pattern loads (profile computations)

	// PerParam splits Measurements by the swept parameter (indexed by
	// Parameter); Functional counts full-pattern functional replays, which
	// sweep nothing. PerParam[...]+Functional == Measurements.
	PerParam   [NumParameters]int64
	Functional int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Measurements += other.Measurements
	s.VectorsApplied += other.VectorsApplied
	s.TestTimeSec += other.TestTimeSec
	s.Profiles += other.Profiles
	for i := range s.PerParam {
		s.PerParam[i] += other.PerParam[i]
	}
	s.Functional += other.Functional
}

// ForParam returns the pass/fail measurement count charged to the
// parameter.
func (s Stats) ForParam(p Parameter) int64 {
	if int(p) >= len(s.PerParam) {
		return 0
	}
	return s.PerParam[p]
}

// setupTimeSec is the fixed per-measurement tester overhead (pattern
// restart, level settle, strobe reprogram).
const setupTimeSec = 1e-3

// ATE is one tester insertion: a device in the socket plus the measurement
// electronics. Not safe for concurrent use; clone one ATE per goroutine.
type ATE struct {
	dev *dut.Device
	rng *rand.Rand

	// NoiseFraction scales gaussian measurement noise: the sigma applied
	// to a measured parameter is NoiseFraction × the search resolution for
	// that parameter. Zero disables noise.
	NoiseFraction float64

	// Heating, when non-nil, models device self-heating across the
	// session: every applied measurement warms the junction and the
	// measured parameters shift accordingly (the drift of §1/§4). Nil
	// keeps the junction at the programmed ambient.
	Heating *Thermal

	// Repeats is the settling-repeat count: each Measurer pass/fail
	// decision is the majority of this many physical measurements, the
	// standard ATE defence against noise at the trip-point edge. Values
	// below 1 and even values round up to the next odd count. Default 1
	// (single measurement).
	Repeats int

	// Profiler, when non-nil, replaces dev.Profile as the pattern-execution
	// path — lot screening installs a dut.ProfileBank here so identical
	// patterns execute once per lot instead of once per die. The override
	// must return results bit-identical to dev.Profile; cost accounting
	// (Profiles, pattern-load time) is unchanged, because the tester still
	// charges a pattern load even when the simulation shortcuts it.
	Profiler func(dev *dut.Device, t testgen.Test) (dut.Profile, error)

	stats Stats

	// profile cache for the test currently loaded in pattern memory;
	// reloading patterns is what costs tester time, so consecutive
	// measurements of the same test reuse the profile.
	cached     dut.Profile
	cachedName string
	haveCached bool
}

// New creates a tester with the device in the socket. The seed drives
// measurement noise.
func New(dev *dut.Device, seed int64) *ATE {
	return &ATE{
		dev:           dev,
		rng:           rand.New(rand.NewSource(seed)),
		NoiseFraction: 0.25,
	}
}

// Device returns the device in the socket.
func (a *ATE) Device() *dut.Device { return a.dev }

// Stats returns a copy of the accumulated cost counters.
func (a *ATE) Stats() Stats { return a.stats }

// ResetStats clears the cost counters and invalidates the pattern-memory
// profile cache. The two must reset together: a phase that starts with a
// warm profile cache under-reports its Profiles cost, so per-phase
// breakdowns (Table 1 rows, run-report phases) would not sum to a
// fresh-tester run. The profile recomputation is deterministic, so the
// extra reload never changes measurement outcomes.
func (a *ATE) ResetStats() {
	a.stats = Stats{}
	a.Reload()
}

// Reload invalidates the pattern-memory profile cache. Call after anything
// that changes the device's behaviour for an already-loaded test — row
// repair, physics swap — so the next measurement re-executes the pattern.
func (a *ATE) Reload() { a.haveCached = false; a.cachedName = "" }

// load makes the test's profile current, computing it if the pattern memory
// holds a different test. Tests are distinguished by name; generators give
// every test a unique name.
func (a *ATE) load(t testgen.Test) (dut.Profile, error) {
	if a.haveCached && a.cachedName == t.Name {
		return a.cached, nil
	}
	var p dut.Profile
	var err error
	if a.Profiler != nil {
		p, err = a.Profiler(a.dev, t)
	} else {
		p, err = a.dev.Profile(t)
	}
	if err != nil {
		return dut.Profile{}, err
	}
	a.cached = p
	a.cachedName = t.Name
	a.haveCached = true
	a.stats.Profiles++
	return p, nil
}

// chargeMeasurement accounts one pass/fail measurement of the test against
// the swept parameter (or the functional bucket when param is
// NumParameters) and advances the thermal model.
func (a *ATE) chargeMeasurement(t testgen.Test, activity float64, param Parameter) {
	if int(param) < len(a.stats.PerParam) {
		a.stats.PerParam[param]++
	} else {
		a.stats.Functional++
	}
	a.stats.Measurements++
	a.stats.VectorsApplied += int64(len(t.Seq))
	clockHz := t.Cond.ClockMHz * 1e6
	if clockHz <= 0 {
		clockHz = 100e6
	}
	a.stats.TestTimeSec += setupTimeSec + float64(len(t.Seq))/clockHz
	a.Heating.advance(a.stats.TestTimeSec, len(t.Seq), activity)
}

// JunctionTempC returns the effective junction temperature for a test:
// programmed ambient plus the self-heating rise.
func (a *ATE) JunctionTempC(t testgen.Test) float64 {
	return t.Cond.TempC + a.Heating.RiseC()
}

// noise returns one gaussian noise sample with the given sigma.
func (a *ATE) noise(sigma float64) float64 {
	if sigma <= 0 || a.NoiseFraction <= 0 {
		return 0
	}
	return a.rng.NormFloat64() * sigma
}

// Profile exposes the cached profile path for analysis tools (shmoo, WCR
// reports) that need parameter values rather than pass/fail bits.
func (a *ATE) Profile(t testgen.Test) (dut.Profile, error) { return a.load(t) }

// MeasureTDQPass performs one strobe measurement of the data-output valid
// window: the device passes when its window at the test's conditions covers
// the strobe.
func (a *ATE) MeasureTDQPass(t testgen.Test, strobeNS float64) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), TDQ)
	temp := t.Cond.TempC + a.Heating.RiseC()
	w := p.TDQWindowNSAtCond(t.Cond.VddV, temp, t.Cond.ClockMHz) + a.noise(a.NoiseFraction*TDQ.Resolution())
	return w >= strobeNS, nil
}

// MeasureShmooPoint performs one shmoo-point measurement: pass/fail of the
// T_DQ strobe with the supply overridden to vdd (fig. 8's two axes).
func (a *ATE) MeasureShmooPoint(t testgen.Test, vdd, strobeNS float64) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), TDQ)
	temp := t.Cond.TempC + a.Heating.RiseC()
	w := p.TDQWindowNSAtCond(vdd, temp, t.Cond.ClockMHz) + a.noise(a.NoiseFraction*TDQ.Resolution())
	return w >= strobeNS, nil
}

// MeasureFmaxPass reports whether the device runs functionally at the given
// clock frequency under the test.
func (a *ATE) MeasureFmaxPass(t testgen.Test, clockMHz float64) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), Fmax)
	temp := t.Cond.TempC + a.Heating.RiseC()
	f := p.FmaxMHzAtCond(t.Cond.VddV, temp) + a.noise(a.NoiseFraction*Fmax.Resolution())
	return clockMHz <= f, nil
}

// MeasureVddMinPass reports whether the device passes with the supply set
// to vdd.
func (a *ATE) MeasureVddMinPass(t testgen.Test, vdd float64) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), VddMin)
	temp := t.Cond.TempC + a.Heating.RiseC()
	vmin := p.VddMinVAtCond(temp) + a.noise(a.NoiseFraction*VddMin.Resolution())
	return vdd >= vmin, nil
}

// FunctionalPass applies the test once at its own conditions and reports
// whether every read returned correct data. Functional failure patterns are
// stored separately from parametric drift in the paper's flow.
func (a *ATE) FunctionalPass(t testgen.Test) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), Parameter(NumParameters))
	return !p.Func.Failed(), nil
}

// MeasureFmaxShmooPoint performs one Fmax shmoo-point measurement with the
// supply overridden to vdd — the classic clock-vs-supply shmoo.
func (a *ATE) MeasureFmaxShmooPoint(t testgen.Test, vdd, clockMHz float64) (bool, error) {
	p, err := a.load(t)
	if err != nil {
		return false, err
	}
	a.chargeMeasurement(t, p.MeanActivity(), Fmax)
	temp := t.Cond.TempC + a.Heating.RiseC()
	f := p.FmaxMHzAtCond(vdd, temp) + a.noise(a.NoiseFraction*Fmax.Resolution())
	return clockMHz <= f, nil
}

// majority wraps a single-measurement function with the settling-repeat
// majority vote.
func (a *ATE) majority(one func() (bool, error)) (bool, error) {
	k := a.Repeats
	if k < 1 {
		k = 1
	}
	if k%2 == 0 {
		k++
	}
	passes := 0
	for i := 0; i < k; i++ {
		ok, err := one()
		if err != nil {
			return false, err
		}
		if ok {
			passes++
		}
		// Early exit once the vote is decided.
		if passes > k/2 || (i+1-passes) > k/2 {
			break
		}
	}
	return passes > k/2, nil
}

// Measurer returns a search.Measurer that sweeps the given parameter for
// the test. Every Passes call is Repeats accounted ATE measurements
// (majority voted); with the default Repeats of 1, exactly one.
func (a *ATE) Measurer(param Parameter, t testgen.Test) search.Measurer {
	switch param {
	case TDQ:
		return search.MeasurerFunc(func(v float64) (bool, error) {
			return a.majority(func() (bool, error) { return a.MeasureTDQPass(t, v) })
		})
	case Fmax:
		return search.MeasurerFunc(func(v float64) (bool, error) {
			return a.majority(func() (bool, error) { return a.MeasureFmaxPass(t, v) })
		})
	case VddMin:
		return search.MeasurerFunc(func(v float64) (bool, error) {
			return a.majority(func() (bool, error) { return a.MeasureVddMinPass(t, v) })
		})
	default:
		return search.MeasurerFunc(func(float64) (bool, error) {
			return false, fmt.Errorf("ate: unknown parameter %v", param)
		})
	}
}
