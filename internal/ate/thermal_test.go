package ate

import (
	"testing"

	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
)

func TestThermalAccumulatesAndCaps(t *testing.T) {
	th := &Thermal{RisePerVector: 0.01, TauSec: 10, MaxRiseC: 5}
	th.advance(0.001, 100, 1.0)
	if th.RiseC() != 1.0 {
		t.Errorf("first advance rise = %g, want 1.0", th.RiseC())
	}
	for i := 0; i < 50; i++ {
		th.advance(0.001*float64(i+2), 100, 1.0)
	}
	if th.RiseC() != 5 {
		t.Errorf("rise not capped: %g", th.RiseC())
	}
}

func TestThermalDecays(t *testing.T) {
	th := &Thermal{RisePerVector: 0.01, TauSec: 1, MaxRiseC: 50}
	th.advance(0, 1000, 1.0) // 10 °C
	r0 := th.RiseC()
	th.advance(3, 0, 0) // three time constants later, no new heat
	if th.RiseC() > r0*0.06 {
		t.Errorf("rise after 3τ = %g, want < 6%% of %g", th.RiseC(), r0)
	}
}

func TestThermalNilSafe(t *testing.T) {
	var th *Thermal
	th.advance(1, 100, 1) // must not panic
	if th.RiseC() != 0 {
		t.Error("nil thermal has rise")
	}
	th.Reset()
}

func TestThermalReset(t *testing.T) {
	th := DefaultThermal()
	th.advance(0.001, 1000, 1)
	if th.RiseC() == 0 {
		t.Fatal("no rise accumulated")
	}
	th.Reset()
	if th.RiseC() != 0 {
		t.Error("reset did not cool")
	}
}

func TestHeatingShiftsMeasuredTripPoint(t *testing.T) {
	// A long characterization session on a heating-enabled tester must
	// measure a smaller T_DQ window at the end than at the start: the
	// drift the paper's §1 warns about.
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	a := New(dev, 5)
	a.NoiseFraction = 0

	tt, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0x55555555, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}

	searchOnce := func() float64 {
		res, err := (search.Binary{}).Search(a.Measurer(TDQ, tt), TDQ.SearchOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("search did not converge")
		}
		return res.TripPoint
	}
	cold := searchOnce() // Heating is nil: junction at ambient.

	// Attach a heating model and burn measurements until the junction is
	// hot (no decay: τ → ∞ keeps the rise across the verification search).
	a.Heating = &Thermal{RisePerVector: 0.02, TauSec: 1e12, MaxRiseC: 40}
	for i := 0; i < 50; i++ {
		if _, err := a.MeasureTDQPass(tt, 25); err != nil {
			t.Fatal(err)
		}
	}
	if a.Heating.RiseC() < 5 {
		t.Fatalf("junction rise only %.1f °C; heating model miscalibrated for this test", a.Heating.RiseC())
	}
	hot := searchOnce()
	if hot >= cold {
		t.Errorf("hot trip point %.3f not below cold %.3f despite %.1f °C rise",
			hot, cold, a.Heating.RiseC())
	}
}

func TestJunctionTempWithoutHeating(t *testing.T) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	a := New(dev, 5)
	tt := testgen.Test{Name: "x", Cond: testgen.NominalConditions()}
	if got := a.JunctionTempC(tt); got != 25 {
		t.Errorf("junction temp %g, want ambient 25", got)
	}
}
