package ate

import (
	"math"
	"testing"

	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
)

func testATE(t *testing.T) *ATE {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, 99)
}

func sampleTest(t *testing.T) testgen.Test {
	t.Helper()
	tt, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0x55555555, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestMeasureTDQPassFailSides(t *testing.T) {
	a := testATE(t)
	a.NoiseFraction = 0 // deterministic for side checks
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	w := p.TDQWindowNS()
	pass, err := a.MeasureTDQPass(tt, w-1)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("strobe 1 ns inside the window failed")
	}
	pass, err = a.MeasureTDQPass(tt, w+1)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Error("strobe 1 ns beyond the window passed")
	}
}

func TestStatsAccounting(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	if a.Stats() != (Stats{}) {
		t.Fatal("fresh ATE has non-zero stats")
	}
	for i := 0; i < 3; i++ {
		if _, err := a.MeasureTDQPass(tt, 25); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Stats()
	if s.Measurements != 3 {
		t.Errorf("measurements = %d, want 3", s.Measurements)
	}
	if s.VectorsApplied != int64(3*len(tt.Seq)) {
		t.Errorf("vectors = %d, want %d", s.VectorsApplied, 3*len(tt.Seq))
	}
	if s.TestTimeSec <= 0 {
		t.Error("no test time accumulated")
	}
	if s.Profiles != 1 {
		t.Errorf("profiles = %d, want 1 (pattern cache)", s.Profiles)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestProfileCacheByName(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Profiles; got != 1 {
		t.Errorf("profiles = %d, want 1 for repeated same-name loads", got)
	}
	other := tt
	other.Name = "other"
	if _, err := a.Profile(other); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Profiles; got != 2 {
		t.Errorf("profiles = %d, want 2 after loading a different test", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Measurements: 1, VectorsApplied: 2, TestTimeSec: 3, Profiles: 4}
	a.Add(Stats{Measurements: 10, VectorsApplied: 20, TestTimeSec: 30, Profiles: 40})
	if a.Measurements != 11 || a.VectorsApplied != 22 || a.TestTimeSec != 33 || a.Profiles != 44 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
}

func TestMeasurementNoiseBracketsTruth(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	w := p.TDQWindowNS()
	// Right at the window edge, noise should produce both outcomes over
	// many repeats.
	passes := 0
	for i := 0; i < 200; i++ {
		ok, err := a.MeasureTDQPass(tt, w)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			passes++
		}
	}
	if passes == 0 || passes == 200 {
		t.Errorf("edge measurement deterministic (%d/200 passes); noise not applied", passes)
	}
	// Far from the edge, noise must never flip the outcome.
	for i := 0; i < 100; i++ {
		ok, err := a.MeasureTDQPass(tt, w-5)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("noise flipped a measurement 5 ns inside the window")
		}
	}
}

func TestShmooPointMatchesOverriddenVdd(t *testing.T) {
	a := testATE(t)
	a.NoiseFraction = 0
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, vdd := range []float64{1.5, 1.8, 2.1} {
		w := p.TDQWindowNSAt(vdd)
		ok, err := a.MeasureShmooPoint(tt, vdd, w-0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("shmoo point below window failed at %g V", vdd)
		}
		ok, err = a.MeasureShmooPoint(tt, vdd, w+0.5)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("shmoo point above window passed at %g V", vdd)
		}
	}
}

func TestFmaxAndVddMinMeasurers(t *testing.T) {
	a := testATE(t)
	a.NoiseFraction = 0
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	fmax := p.FmaxMHz()
	ok, err := a.MeasureFmaxPass(tt, fmax-2)
	if err != nil || !ok {
		t.Errorf("clock below Fmax failed: %v", err)
	}
	ok, err = a.MeasureFmaxPass(tt, fmax+2)
	if err != nil || ok {
		t.Errorf("clock above Fmax passed: %v", err)
	}
	vmin := p.VddMinV()
	ok, err = a.MeasureVddMinPass(tt, vmin+0.05)
	if err != nil || !ok {
		t.Errorf("supply above Vddmin failed: %v", err)
	}
	ok, err = a.MeasureVddMinPass(tt, vmin-0.05)
	if err != nil || ok {
		t.Errorf("supply below Vddmin passed: %v", err)
	}
}

func TestFunctionalPass(t *testing.T) {
	a := testATE(t)
	if ok, err := a.FunctionalPass(sampleTest(t)); err != nil || !ok {
		t.Errorf("clean device failed functionally: %v", err)
	}
}

func TestMeasurerSearchIntegration(t *testing.T) {
	// End to end: a binary search over the ATE measurer must find the true
	// window within the resolution plus noise margin.
	a := testATE(t)
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	truth := TDQ.TrueValue(p)
	res, err := (search.Binary{}).Search(a.Measurer(TDQ, tt), TDQ.SearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("search over ATE did not converge")
	}
	if math.Abs(res.TripPoint-truth) > 0.3 {
		t.Errorf("searched trip %g, true window %g", res.TripPoint, truth)
	}
}

func TestMeasurerUnknownParameter(t *testing.T) {
	a := testATE(t)
	m := a.Measurer(Parameter(99), sampleTest(t))
	if _, err := m.Passes(1); err == nil {
		t.Error("unknown parameter measurer did not error")
	}
}

func TestDeviceAccessorAndReload(t *testing.T) {
	a := testATE(t)
	if a.Device() == nil {
		t.Fatal("nil device")
	}
	tt := sampleTest(t)
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	before := a.Stats().Profiles
	a.Reload()
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Profiles != before+1 {
		t.Error("Reload did not invalidate the pattern cache")
	}
}

func TestTrueValueMatchesProfile(t *testing.T) {
	a := testATE(t)
	p, err := a.Profile(sampleTest(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := Fmax.TrueValue(p); got != p.FmaxMHz() {
		t.Errorf("Fmax true value %g", got)
	}
	if got := VddMin.TrueValue(p); got != p.VddMinV() {
		t.Errorf("Vddmin true value %g", got)
	}
	if got := Parameter(9).TrueValue(p); got != 0 {
		t.Errorf("unknown parameter true value %g", got)
	}
}

func TestMeasurerAllParameters(t *testing.T) {
	a := testATE(t)
	a.NoiseFraction = 0
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, param := range []Parameter{TDQ, Fmax, VddMin} {
		truth := param.TrueValue(p)
		opt := param.SearchOptions()
		m := a.Measurer(param, tt)
		// Probe well inside the pass region and well inside the fail region.
		passProbe, failProbe := truth-5*opt.Resolution, truth+5*opt.Resolution
		if opt.Orientation == search.PassHigh {
			passProbe, failProbe = failProbe, passProbe
		}
		ok, err := m.Passes(passProbe)
		if err != nil || !ok {
			t.Errorf("%v: pass-side probe failed (%v)", param, err)
		}
		ok, err = m.Passes(failProbe)
		if err != nil || ok {
			t.Errorf("%v: fail-side probe passed (%v)", param, err)
		}
	}
}

func TestPerParamAttribution(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	for i := 0; i < 3; i++ {
		if _, err := a.MeasureTDQPass(tt, 25); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.MeasureShmooPoint(tt, 1.8, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MeasureFmaxPass(tt, 90); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MeasureFmaxShmooPoint(tt, 1.8, 90); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MeasureVddMinPass(tt, 1.8); err != nil {
		t.Fatal(err)
	}
	if _, err := a.FunctionalPass(tt); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if got := s.ForParam(TDQ); got != 4 {
		t.Errorf("TDQ measurements = %d, want 4", got)
	}
	if got := s.ForParam(Fmax); got != 2 {
		t.Errorf("Fmax measurements = %d, want 2", got)
	}
	if got := s.ForParam(VddMin); got != 1 {
		t.Errorf("Vddmin measurements = %d, want 1", got)
	}
	if s.Functional != 1 {
		t.Errorf("functional measurements = %d, want 1", s.Functional)
	}
	var sum int64
	for _, p := range []Parameter{TDQ, Fmax, VddMin} {
		sum += s.ForParam(p)
	}
	if sum+s.Functional != s.Measurements {
		t.Errorf("per-param sum %d + functional %d != total %d", sum, s.Functional, s.Measurements)
	}
	if got := s.ForParam(Parameter(99)); got != 0 {
		t.Errorf("out-of-range ForParam = %d, want 0", got)
	}
}

func TestStatsAddPerParam(t *testing.T) {
	a := Stats{Functional: 1}
	a.PerParam[TDQ] = 2
	b := Stats{Functional: 10}
	b.PerParam[TDQ] = 20
	b.PerParam[Fmax] = 5
	a.Add(b)
	if a.PerParam[TDQ] != 22 || a.PerParam[Fmax] != 5 || a.Functional != 11 {
		t.Errorf("per-param Add wrong: %+v", a)
	}
}

func TestResetStatsInvalidatesProfileCache(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	// A phase started after the reset must pay its own pattern load, so
	// per-phase Profiles breakdowns sum to a fresh-tester run.
	if _, err := a.Profile(tt); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Profiles; got != 1 {
		t.Errorf("profiles after reset = %d, want 1 (cache must reset with stats)", got)
	}
}
