package ate

import (
	"testing"

	"repro/internal/search"
)

func TestParameterStringsAndUnits(t *testing.T) {
	cases := []struct {
		p    Parameter
		name string
		unit string
	}{
		{TDQ, "T_DQ", "ns"},
		{Fmax, "Fmax", "MHz"},
		{VddMin, "Vddmin", "V"},
	}
	for _, c := range cases {
		if c.p.String() != c.name {
			t.Errorf("%v name = %q, want %q", c.p, c.p.String(), c.name)
		}
		if c.p.Unit() != c.unit {
			t.Errorf("%v unit = %q, want %q", c.p, c.p.Unit(), c.unit)
		}
	}
	if Parameter(9).Unit() != "?" {
		t.Error("unknown parameter unit")
	}
}

func TestSearchOptionsValid(t *testing.T) {
	for _, p := range []Parameter{TDQ, Fmax, VddMin} {
		opt := p.SearchOptions()
		if err := opt.Validate(); err != nil {
			t.Errorf("%v search options invalid: %v", p, err)
		}
	}
}

func TestSearchOrientations(t *testing.T) {
	// T_DQ strobe and Fmax pass on the low side (eq. 3); Vddmin passes on
	// the high side (eq. 4).
	if TDQ.SearchOptions().Orientation != search.PassLow {
		t.Error("T_DQ orientation")
	}
	if Fmax.SearchOptions().Orientation != search.PassLow {
		t.Error("Fmax orientation")
	}
	if VddMin.SearchOptions().Orientation != search.PassHigh {
		t.Error("Vddmin orientation")
	}
}

func TestSpecValues(t *testing.T) {
	v, isMin := TDQ.SpecValue()
	if v != 20 || !isMin {
		t.Errorf("T_DQ spec = %g, isMin=%v; want 20 ns minimum", v, isMin)
	}
	v, isMin = Fmax.SpecValue()
	if v != 100 || !isMin {
		t.Errorf("Fmax spec = %g, isMin=%v; want 100 MHz minimum", v, isMin)
	}
	v, isMin = VddMin.SpecValue()
	if v != 1.62 || isMin {
		t.Errorf("Vddmin spec = %g, isMin=%v; want 1.62 V maximum", v, isMin)
	}
}

func TestSpecInsideSearchRange(t *testing.T) {
	// The spec limit must lie inside the generous search range, otherwise
	// a spec-violating trip point could never be observed.
	for _, p := range []Parameter{TDQ, Fmax, VddMin} {
		opt := p.SearchOptions()
		spec, _ := p.SpecValue()
		if spec <= opt.Lo || spec >= opt.Hi {
			t.Errorf("%v spec %g outside search range [%g, %g]", p, spec, opt.Lo, opt.Hi)
		}
	}
}
