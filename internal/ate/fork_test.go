package ate

import (
	"testing"

	"repro/internal/testgen"
)

// measureTwice runs a small fixed measurement task and returns the observed
// pass pattern — noise-sensitive on purpose, so RNG state differences show.
func measureTwice(t *testing.T, a *ATE, tt testgen.Test) [8]bool {
	t.Helper()
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	w := p.TDQWindowNS()
	var out [8]bool
	for i := range out {
		// Strobe right at the window edge: pass/fail decided by noise.
		pass, err := a.MeasureTDQPass(tt, w)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pass
	}
	return out
}

func TestForkIsIndependent(t *testing.T) {
	a := testATE(t)
	a.Heating = DefaultThermal()
	a.Repeats = 3
	tt := sampleTest(t)

	f, err := a.Fork(1234)
	if err != nil {
		t.Fatal(err)
	}
	if f.NoiseFraction != a.NoiseFraction || f.Repeats != a.Repeats {
		t.Error("fork lost noise/repeat configuration")
	}
	if f.Heating == a.Heating {
		t.Error("fork shares the parent's thermal state")
	}
	if f.Heating == nil || f.Heating.RisePerVector != a.Heating.RisePerVector {
		t.Error("fork lost the thermal configuration")
	}
	if f.Device() == a.Device() {
		t.Error("fork shares the parent's device")
	}
	if f.Device().Die() != a.Device().Die() {
		t.Error("fork must measure the same die")
	}
	if f.Stats() != (Stats{}) {
		t.Error("fork starts with non-zero counters")
	}

	// Measuring on the fork must not move the parent's counters.
	before := a.Stats()
	if _, err := f.MeasureTDQPass(tt, 25); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != before {
		t.Error("fork measurement charged the parent")
	}
}

func TestForkNilHeating(t *testing.T) {
	a := testATE(t)
	f, err := a.Fork(5)
	if err != nil {
		t.Fatal(err)
	}
	if f.Heating != nil {
		t.Error("fork invented a thermal model")
	}
}

func TestReseedIsHermetic(t *testing.T) {
	// The deterministic-parallel contract: after Reseed(seed), a task's
	// results depend only on the seed — not on how much work the insertion
	// did before. Run the same task on a fresh fork and on a fork that
	// already burned through unrelated measurements; results must match.
	a := testATE(t)
	a.Heating = DefaultThermal()
	tt := sampleTest(t)

	fresh, err := a.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Reseed(4242)
	want := measureTwice(t, fresh, tt)

	used, err := a.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// Burn RNG draws, thermal rise, pattern cache and test time.
	other, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0xAAAAAAAA, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	other.Name = "burn-in"
	for i := 0; i < 40; i++ {
		if _, err := used.MeasureTDQPass(other, 20); err != nil {
			t.Fatal(err)
		}
	}
	used.Reseed(4242)
	if got := measureTwice(t, used, tt); got != want {
		t.Errorf("reseeded task diverged: got %v, want %v", got, want)
	}
}

func TestAddStatsMerges(t *testing.T) {
	a := testATE(t)
	tt := sampleTest(t)
	if _, err := a.MeasureTDQPass(tt, 25); err != nil {
		t.Fatal(err)
	}
	f, err := a.Fork(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.MeasureTDQPass(tt, 25); err != nil {
			t.Fatal(err)
		}
	}
	a.AddStats(f.Stats())
	s := a.Stats()
	if s.Measurements != 4 {
		t.Errorf("merged measurements = %d, want 4", s.Measurements)
	}
	if s.Profiles != 2 {
		t.Errorf("merged profiles = %d, want 2", s.Profiles)
	}
	if s.VectorsApplied != int64(4*len(tt.Seq)) {
		t.Errorf("merged vectors = %d, want %d", s.VectorsApplied, 4*len(tt.Seq))
	}
}

func TestDeviceCloneSameSilicon(t *testing.T) {
	a := testATE(t)
	a.NoiseFraction = 0
	tt := sampleTest(t)
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}

	clone, err := a.Device().Clone()
	if err != nil {
		t.Fatal(err)
	}
	b := New(clone, 1)
	b.NoiseFraction = 0
	q, err := b.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	if p.TDQWindowNS() != q.TDQWindowNS() {
		t.Errorf("clone window %.6f != original %.6f", q.TDQWindowNS(), p.TDQWindowNS())
	}
	if p.FmaxMHz() != q.FmaxMHz() {
		t.Errorf("clone fmax %.6f != original %.6f", q.FmaxMHz(), p.FmaxMHz())
	}
}
