package ate

import (
	"math"
	"testing"

	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/testgen"
)

func TestMajorityVoteReducesEdgeFlips(t *testing.T) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	tt, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0x55555555, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}

	// Repeated trip-point searches with heavy noise: the spread of results
	// must shrink when settling repeats are enabled.
	spread := func(repeats int) float64 {
		a := New(dev, 31)
		a.NoiseFraction = 2.0 // deliberately noisy
		a.Repeats = repeats
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < 25; i++ {
			res, err := (search.Binary{}).Search(a.Measurer(TDQ, tt), TDQ.SearchOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("noisy search did not converge")
			}
			min = math.Min(min, res.TripPoint)
			max = math.Max(max, res.TripPoint)
		}
		return max - min
	}

	noisy := spread(1)
	voted := spread(7)
	if voted >= noisy {
		t.Errorf("7-repeat spread %.3f not below single-shot spread %.3f", voted, noisy)
	}
}

func TestMajorityChargesRepeats(t *testing.T) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	a := New(dev, 7)
	a.NoiseFraction = 0 // unanimous votes exit after ceil(k/2) measurements
	a.Repeats = 5
	tt, err := testgen.MarchTest(testgen.MATSPlus(), 0, 20, 0, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	m := a.Measurer(TDQ, tt)
	if _, err := m.Passes(25); err != nil {
		t.Fatal(err)
	}
	// Noise-free: 3 of 5 identical outcomes decide the vote early.
	if got := a.Stats().Measurements; got != 3 {
		t.Errorf("unanimous 5-repeat vote charged %d measurements, want 3 (early exit)", got)
	}
}

func TestMajorityEvenRepeatsRoundUp(t *testing.T) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	a := New(dev, 7)
	a.NoiseFraction = 0
	a.Repeats = 4 // rounds to 5 → early exit after 3
	tt, err := testgen.MarchTest(testgen.MATSPlus(), 0, 20, 0, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Measurer(TDQ, tt).Passes(25); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Measurements; got != 3 {
		t.Errorf("even repeats charged %d, want 3", got)
	}
}

func TestFmaxShmooPoint(t *testing.T) {
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	a := New(dev, 9)
	a.NoiseFraction = 0
	tt, err := testgen.MarchTest(testgen.MATSPlus(), 0, 20, 0, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.Profile(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, vdd := range []float64{1.5, 1.8, 2.1} {
		f := p.FmaxMHzAtCond(vdd, tt.Cond.TempC)
		ok, err := a.MeasureFmaxShmooPoint(tt, vdd, f-2)
		if err != nil || !ok {
			t.Errorf("clock below Fmax failed at %g V: %v", vdd, err)
		}
		ok, err = a.MeasureFmaxShmooPoint(tt, vdd, f+2)
		if err != nil || ok {
			t.Errorf("clock above Fmax passed at %g V: %v", vdd, err)
		}
	}
}
