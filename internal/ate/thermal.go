package ate

import "math"

// Thermal models device self-heating during a characterization session —
// the effect behind the paper's warning that "if the specification
// parameter changes over time due to device heating or other factors, an
// inaccurate reading could result" (§1) and the reason successive
// approximation carries drift sensing.
//
// The junction temperature rise above ambient follows a first-order
// thermal network: each applied vector deposits energy proportional to the
// switching activity, and the rise decays toward zero with the thermal
// time constant while the tester idles between measurements.
type Thermal struct {
	// RisePerVector is the asymptotic temperature contribution of one
	// fully-active vector cycle (°C). Zero disables heating.
	RisePerVector float64
	// TauSec is the thermal time constant of the package.
	TauSec float64
	// MaxRiseC caps the junction rise (the thermal network's resistance).
	MaxRiseC float64

	riseC    float64
	lastTime float64
}

// DefaultThermal returns a model producing a few °C of rise over a long
// characterization run — enough to shift T_DQ by a measurable fraction of
// a nanosecond, matching the drift magnitudes ATE drift-sensing exists for.
func DefaultThermal() *Thermal {
	return &Thermal{
		RisePerVector: 0.004,
		TauSec:        2.0,
		MaxRiseC:      30,
	}
}

// advance updates the junction rise for a measurement that applies vectors
// cycles of the given mean activity at simulated time nowSec.
func (th *Thermal) advance(nowSec float64, vectors int, activity float64) {
	if th == nil || th.RisePerVector == 0 {
		return
	}
	if th.TauSec > 0 {
		dt := nowSec - th.lastTime
		if dt > 0 {
			th.riseC *= math.Exp(-dt / th.TauSec)
		}
	}
	th.lastTime = nowSec
	th.riseC += th.RisePerVector * float64(vectors) * activity
	if th.riseC > th.MaxRiseC {
		th.riseC = th.MaxRiseC
	}
}

// RiseC returns the current junction temperature rise above ambient.
func (th *Thermal) RiseC() float64 {
	if th == nil {
		return 0
	}
	return th.riseC
}

// Reset cools the device back to ambient (a new insertion).
func (th *Thermal) Reset() {
	if th != nil {
		th.riseC = 0
		th.lastTime = 0
	}
}
