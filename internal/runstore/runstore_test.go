package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(seed int64, trace string) *Record {
	return &Record{
		Manifest: Manifest{
			Version:     FormatVersion,
			Flow:        "characterize",
			Seed:        seed,
			Flags:       map[string]string{"learn-tests": "20", "seed": "1"},
			CacheWarmth: "none",
			TraceDigest: "fnv1a:0123456789abcdef",
		},
		Report:  []byte(`{"total":{"measurements":120,"vectors":2400,"sim_time_sec":3.5}}`),
		Metrics: []byte(`{"counters":{"search_total":4}}`),
		Trace:   []byte(trace),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(1, "line1\nline2\n")
	id, created, err := st.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Put reported created=false")
	}
	if !ValidID(id) {
		t.Errorf("Put minted invalid id %q", id)
	}

	got, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Flow != rec.Manifest.Flow || got.Manifest.Seed != rec.Manifest.Seed ||
		got.Manifest.Flags["learn-tests"] != "20" {
		t.Errorf("manifest round-trip: got %+v want %+v", got.Manifest, rec.Manifest)
	}
	if string(got.Trace) != string(rec.Trace) || string(got.Report) != string(rec.Report) {
		t.Error("artifact bytes did not round-trip")
	}
	totals, ok := got.Totals()
	if !ok || totals.Measurements != 120 || totals.SimTimeSec != 3.5 {
		t.Errorf("Totals = %+v ok=%v", totals, ok)
	}
}

func TestPutIdenticalCollides(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id1, created1, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	id2, created2, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("identical records got different ids %s / %s", id1, id2)
	}
	if !created1 || created2 {
		t.Errorf("created flags = %v, %v; want true, false", created1, created2)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d files in ledger after double Put, want 1", len(entries))
	}
}

func TestPutDifferentSeedDifferentID(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := st.Put(testRecord(2, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("different seeds collided into one id")
	}
}

func TestAttemptsSidecar(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	// No sidecar yet: zero attempts, no error.
	got, err := st.Attempts(id)
	if err != nil || got != nil {
		t.Fatalf("Attempts before any append = %v, %v", got, err)
	}
	for i, a := range []Attempt{
		{TimeUnixNano: 100, WallSeconds: 1.5, Parallelism: 1, Scheduler: "fleet"},
		{TimeUnixNano: 200, WallSeconds: 0.9, Parallelism: 8, Scheduler: "batch"},
	} {
		if err := st.AppendAttempt(id, a); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err = st.Attempts(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].TimeUnixNano != 100 || got[1].Parallelism != 8 {
		t.Errorf("Attempts = %+v", got)
	}

	sums, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].FirstAttemptNano() != 100 || sums[0].LastAttemptNano() != 200 {
		t.Errorf("List = %+v", sums)
	}
}

func TestListSortsChronologically(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idOld, _, err := st.Put(testRecord(1, "old\n"))
	if err != nil {
		t.Fatal(err)
	}
	idNew, _, err := st.Put(testRecord(2, "new\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAttempt(idNew, Attempt{TimeUnixNano: 50}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAttempt(idOld, Attempt{TimeUnixNano: 500}); err != nil {
		t.Fatal(err)
	}
	sums, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].ID != idNew || sums[1].ID != idOld {
		t.Errorf("List order wrong: %+v", sums)
	}
}

func TestListErrorsOnCorruptRecord(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), id+".run")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.List(); err == nil {
		t.Error("List silently accepted a corrupt record")
	}
	// Foreign files are skipped, not errors.
	if err := os.WriteFile(filepath.Join(st.Dir(), "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGetRejectsInvalidAndMissingIDs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("g", 32), strings.Repeat("A", 32)} {
		if _, err := st.Get(id); err == nil {
			t.Errorf("Get(%q) accepted an invalid id", id)
		}
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true", id)
		}
	}
	missing := strings.Repeat("a", 32)
	if _, err := st.Get(missing); err == nil || !strings.Contains(err.Error(), "no record") {
		t.Errorf("Get(missing) = %v", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	rec := testRecord(1, "trace\n")
	enc, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc[len(recordMagic)-1] = '2' // RPRORUN1 -> RPRORUN2
	_, err = Decode(enc, "future.run")
	if err == nil || !strings.Contains(err.Error(), "unsupported record format version") {
		t.Errorf("Decode of future version = %v", err)
	}
}

func TestOpenRejectsUnwritableParent(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.MkdirAll(blocked, 0o500); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(blocked, 0o755) })
	if _, err := Open(filepath.Join(blocked, "sub")); err == nil {
		t.Skip("running as root: directory permissions not enforced")
	}
}

func TestPutDetectsSameIDByteMismatch(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(1, "trace\n")
	id, _, err := st.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the stored file with different (still well-formed) bytes: a
	// second Put of the true record must refuse to treat it as identical.
	other := testRecord(1, "trace\n")
	other.Report = []byte(`{"total":{"measurements":999}}`)
	enc, err := other.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), id+".run"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put(rec); err == nil || !strings.Contains(err.Error(), "differs from a same-ID encode") {
		t.Errorf("Put over mismatched bytes = %v", err)
	}
}

func TestAppendAttemptRejectsInvalidID(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAttempt("../escape", Attempt{}); err == nil {
		t.Error("AppendAttempt accepted an invalid id")
	}
	if _, err := st.Attempts("../escape"); err == nil {
		t.Error("Attempts accepted an invalid id")
	}
}

func TestAttemptsRejectsMalformedSidecarLine(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := st.Put(testRecord(1, "trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAttempt(id, Attempt{TimeUnixNano: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(st.Dir(), id+".attempts.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := st.Attempts(id); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("Attempts over a malformed line = %v", err)
	}
}

func TestTotalsMissingOrBadReport(t *testing.T) {
	rec := &Record{Manifest: Manifest{Version: FormatVersion}}
	if _, ok := rec.Totals(); ok {
		t.Error("Totals ok=true with no report")
	}
	rec.Report = []byte("not json")
	if _, ok := rec.Totals(); ok {
		t.Error("Totals ok=true with an unparseable report")
	}
}
