package runstore

import (
	"bytes"
	"testing"

	"repro/internal/proptest"
)

// genRecord draws a random but well-formed record: arbitrary manifest
// strings, flag maps and artifact bytes (any of which may be empty).
func genRecord(pt *proptest.T) *Record {
	const ident = "abcdefghijklmnopqrstuvwxyz-_0123456789"
	flags := map[string]string(nil)
	if n := pt.Intn(4); n > 0 {
		flags = make(map[string]string, n)
		for i := 0; i < n; i++ {
			flags[pt.String(ident, 12)] = pt.String(ident, 12)
		}
	}
	rec := &Record{
		Manifest: Manifest{
			Version:     FormatVersion,
			Flow:        pt.String(ident, 16),
			Seed:        pt.Int64Range(-1<<40, 1<<40),
			Flags:       flags,
			CacheWarmth: []string{"", "none", "cold", "warm"}[pt.Intn(4)],
			TraceDigest: pt.String("0123456789abcdef:fnv", 24),
		},
		Report:  pt.Bytes(200),
		Metrics: pt.Bytes(200),
		Bench:   pt.Bytes(100),
		Trace:   pt.Bytes(400),
	}
	pt.Logf("record: flow=%q seed=%d flags=%v report=%d metrics=%d bench=%d trace=%d bytes",
		rec.Manifest.Flow, rec.Manifest.Seed, rec.Manifest.Flags,
		len(rec.Report), len(rec.Metrics), len(rec.Bench), len(rec.Trace))
	return rec
}

// TestRecordRoundTripClosure: Decode(Encode(r)) reproduces the record, and
// re-encoding the decoded record reproduces the exact bytes (encode∘decode
// is the identity on the wire format).
func TestRecordRoundTripClosure(t *testing.T) {
	proptest.Check(t, 200, func(pt *proptest.T) {
		rec := genRecord(pt)
		enc, err := rec.Encode()
		if err != nil {
			pt.Fatalf("Encode: %v", err)
		}
		dec, err := Decode(enc, "prop.run")
		if err != nil {
			pt.Fatalf("Decode: %v", err)
		}
		if dec.Manifest.Flow != rec.Manifest.Flow || dec.Manifest.Seed != rec.Manifest.Seed ||
			dec.Manifest.CacheWarmth != rec.Manifest.CacheWarmth ||
			dec.Manifest.TraceDigest != rec.Manifest.TraceDigest {
			pt.Fatalf("manifest changed in round trip: %+v vs %+v", dec.Manifest, rec.Manifest)
		}
		if len(dec.Manifest.Flags) != len(rec.Manifest.Flags) {
			pt.Fatalf("flag map changed: %v vs %v", dec.Manifest.Flags, rec.Manifest.Flags)
		}
		for k, v := range rec.Manifest.Flags {
			if dec.Manifest.Flags[k] != v {
				pt.Fatalf("flag %q changed: %q vs %q", k, dec.Manifest.Flags[k], v)
			}
		}
		for _, pair := range [][2][]byte{
			{dec.Report, rec.Report}, {dec.Metrics, rec.Metrics},
			{dec.Bench, rec.Bench}, {dec.Trace, rec.Trace},
		} {
			if !bytes.Equal(pair[0], pair[1]) {
				pt.Fatalf("artifact bytes changed in round trip")
			}
		}
		re, err := dec.Encode()
		if err != nil {
			pt.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(re, enc) {
			pt.Fatalf("encode∘decode not the identity on the bytes")
		}
	})
}

// TestRecordTruncationAlwaysErrors: every strict prefix of a valid encoding
// fails to decode — no truncation is silently accepted.
func TestRecordTruncationAlwaysErrors(t *testing.T) {
	proptest.Check(t, 120, func(pt *proptest.T) {
		rec := genRecord(pt)
		enc, err := rec.Encode()
		if err != nil {
			pt.Fatalf("Encode: %v", err)
		}
		cut := pt.Intn(len(enc)) // strict prefix: 0 .. len-1
		pt.Logf("truncate %d -> %d bytes", len(enc), cut)
		if _, err := Decode(enc[:cut], "trunc.run"); err == nil {
			pt.Fatalf("Decode accepted a %d-byte truncation of a %d-byte record", cut, len(enc))
		}
	})
}

// TestRecordCorruptionAlwaysErrors: flipping any single byte of a valid
// encoding fails the decode — the CRC (or the magic/length checks) catches
// every one-byte corruption.
func TestRecordCorruptionAlwaysErrors(t *testing.T) {
	proptest.Check(t, 120, func(pt *proptest.T) {
		rec := genRecord(pt)
		enc, err := rec.Encode()
		if err != nil {
			pt.Fatalf("Encode: %v", err)
		}
		pos := pt.Intn(len(enc))
		flip := byte(pt.IntRange(1, 255))
		pt.Logf("flip byte %d of %d with 0x%02x", pos, len(enc), flip)
		mut := bytes.Clone(enc)
		mut[pos] ^= flip
		if _, err := Decode(mut, "corrupt.run"); err == nil {
			pt.Fatalf("Decode accepted a single-byte corruption at offset %d", pos)
		}
	})
}

// TestRunIDDeterministicAndSensitive: the content address is a pure function
// of (manifest, trace) — identical inputs always produce identical IDs, and
// changing the seed, a flag value or one trace byte always changes the ID.
func TestRunIDDeterministicAndSensitive(t *testing.T) {
	proptest.Check(t, 150, func(pt *proptest.T) {
		rec := genRecord(pt)
		id1, err := rec.ID()
		if err != nil {
			pt.Fatalf("ID: %v", err)
		}
		if !ValidID(id1) {
			pt.Fatalf("minted invalid id %q", id1)
		}
		clone := &Record{Manifest: rec.Manifest, Trace: bytes.Clone(rec.Trace)}
		id2, err := clone.ID()
		if err != nil {
			pt.Fatalf("clone ID: %v", err)
		}
		if id1 != id2 {
			pt.Fatalf("identical inputs minted different ids %s / %s", id1, id2)
		}

		seedBumped := rec.Manifest
		seedBumped.Seed++
		idSeed, err := RunID(seedBumped, rec.Trace)
		if err != nil {
			pt.Fatalf("seed-bumped ID: %v", err)
		}
		if idSeed == id1 {
			pt.Fatalf("seed change did not change the id")
		}

		if len(rec.Trace) > 0 {
			mut := bytes.Clone(rec.Trace)
			mut[pt.Intn(len(mut))] ^= byte(pt.IntRange(1, 255))
			idTrace, err := RunID(rec.Manifest, mut)
			if err != nil {
				pt.Fatalf("trace-mutated ID: %v", err)
			}
			if idTrace == id1 {
				pt.Fatalf("trace byte change did not change the id")
			}
		}
	})
}
