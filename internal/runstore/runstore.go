package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is a run ledger rooted at one directory. Each record lives in
// "<id>.run" (CRC-checked, published by atomic rename, immutable once
// written) with its non-deterministic attempt history appended to
// "<id>.attempts.jsonl" — one JSON line per time the run was executed.
// A Store is safe for concurrent use by independent processes the same way
// cachestore is: records are content-addressed and write-once, so the worst
// concurrent Put of the same run is a harmless double write of identical
// bytes.
type Store struct {
	dir string
}

// Open opens (creating if needed) the ledger directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: opening ledger dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the ledger directory.
func (s *Store) Dir() string { return s.dir }

// Attempt is one execution of a recorded run: everything about the run
// that may differ between identical executions — wall time, worker count,
// scheduler choice, pool/fleet occupancy, throughput, the flight-recorder
// tail — quarantined here so the record itself stays deterministic.
type Attempt struct {
	TimeUnixNano int64   `json:"time_unix_nano"`
	WallSeconds  float64 `json:"wall_seconds"`
	Parallelism  int     `json:"parallelism"`
	Scheduler    string  `json:"scheduler,omitempty"`
	// Flags is the full resolved flag map of this execution, including the
	// scheduling and output flags the manifest's identity set excludes.
	Flags map[string]string `json:"flags,omitempty"`

	PoolRuns         int64   `json:"pool_runs,omitempty"`
	PoolTasks        int64   `json:"pool_tasks,omitempty"`
	MaxWorkers       int     `json:"max_workers,omitempty"`
	FleetUtilization float64 `json:"fleet_utilization,omitempty"`
	DiesPerSecond    float64 `json:"dies_per_second,omitempty"`

	// Flight is the flight-recorder tail at finalize time, verbatim.
	Flight json.RawMessage `json:"flight,omitempty"`
}

// Put stores the record under its content address. If an identical record
// already exists the existing one is kept (created=false); a same-ID file
// with different bytes — a corrupt store or a hash collision — is an error.
func (s *Store) Put(rec *Record) (id string, created bool, err error) {
	id, err = rec.ID()
	if err != nil {
		return "", false, err
	}
	enc, err := rec.Encode()
	if err != nil {
		return "", false, err
	}
	path := s.recordPath(id)
	existing, rerr := os.ReadFile(path)
	switch {
	case rerr == nil:
		if bytes.Equal(existing, enc) {
			return id, false, nil
		}
		return id, false, fmt.Errorf("runstore: %s: existing record differs from a same-ID encode (corrupt store?)", path)
	case !errors.Is(rerr, fs.ErrNotExist):
		return "", false, fmt.Errorf("runstore: reading %s: %w", path, rerr)
	}
	tmp, err := os.CreateTemp(s.dir, ".run-*")
	if err != nil {
		return "", false, fmt.Errorf("runstore: creating record temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", false, fmt.Errorf("runstore: writing record: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", false, fmt.Errorf("runstore: syncing record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", false, fmt.Errorf("runstore: closing record: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return "", false, fmt.Errorf("runstore: publishing record: %w", err)
	}
	return id, true, nil
}

// Get loads one record by ID.
func (s *Store) Get(id string) (*Record, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("runstore: invalid run id %q", id)
	}
	path := s.recordPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("runstore: no record %s in %s", id, s.dir)
		}
		return nil, fmt.Errorf("runstore: reading %s: %w", path, err)
	}
	rec, err := Decode(data, path)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// AppendAttempt appends one execution's ND sidecar line for the record.
func (s *Store) AppendAttempt(id string, a Attempt) error {
	if !ValidID(id) {
		return fmt.Errorf("runstore: invalid run id %q", id)
	}
	line, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("runstore: encoding attempt: %w", err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(s.attemptsPath(id), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: opening attempts sidecar: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("runstore: appending attempt: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: closing attempts sidecar: %w", err)
	}
	return nil
}

// Attempts returns the record's execution history, oldest first. A record
// with no sidecar has zero attempts (not an error).
func (s *Store) Attempts(id string) ([]Attempt, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("runstore: invalid run id %q", id)
	}
	path := s.attemptsPath(id)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("runstore: opening attempts sidecar: %w", err)
	}
	defer f.Close()
	var out []Attempt
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxSectionLen)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var a Attempt
		if err := json.Unmarshal(line, &a); err != nil {
			return nil, fmt.Errorf("runstore: %s line %d: %w", path, lineNo, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runstore: reading %s: %w", path, err)
	}
	return out, nil
}

// Summary is one record's listing row: identity plus the attempt history
// and the deterministic report totals.
type Summary struct {
	ID       string
	Manifest Manifest
	Totals   ReportTotals
	Attempts []Attempt
}

// FirstAttemptNano returns the oldest execution time, 0 with no attempts.
func (sum Summary) FirstAttemptNano() int64 {
	if len(sum.Attempts) == 0 {
		return 0
	}
	first := sum.Attempts[0].TimeUnixNano
	for _, a := range sum.Attempts[1:] {
		if a.TimeUnixNano < first {
			first = a.TimeUnixNano
		}
	}
	return first
}

// LastAttemptNano returns the newest execution time, 0 with no attempts.
func (sum Summary) LastAttemptNano() int64 {
	var last int64
	for _, a := range sum.Attempts {
		if a.TimeUnixNano > last {
			last = a.TimeUnixNano
		}
	}
	return last
}

// List decodes every record in the ledger, sorted chronologically by first
// attempt time (records without attempts sort first), ties broken by ID.
// Files that are not run records (temp files, sidecars, foreign data) are
// skipped; a record that fails its checksum is an error, not a skip — a
// regression gate must not silently ignore corrupt history.
func (s *Store) List() ([]Summary, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("runstore: listing ledger dir: %w", err)
	}
	var out []Summary
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".run") {
			continue
		}
		id := strings.TrimSuffix(name, ".run")
		if !ValidID(id) {
			continue
		}
		rec, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		totals, _ := rec.Totals()
		attempts, err := s.Attempts(id)
		if err != nil {
			return nil, err
		}
		out = append(out, Summary{ID: id, Manifest: rec.Manifest, Totals: totals, Attempts: attempts})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].FirstAttemptNano(), out[j].FirstAttemptNano()
		if a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// ValidID reports whether id is a well-formed run ID (lowercase hex, the
// 32-char truncated-SHA-256 the store mints). Gate every path built from an
// externally supplied ID through this — it is what keeps "../../etc" out of
// the ledger directory.
func ValidID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) recordPath(id string) string {
	return filepath.Join(s.dir, id+".run")
}

func (s *Store) attemptsPath(id string) string {
	return filepath.Join(s.dir, id+".attempts.jsonl")
}
