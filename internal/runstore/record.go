// Package runstore is the persistent run ledger: every instrumented run
// finalizes into a content-addressed record — a deterministic manifest
// (flow, seed, identity-bearing flags, cache warmth, trace digest) plus the
// run's deterministic artifacts (report JSON, metrics snapshot, BENCH
// counters, full JSONL trace) — stored as a CRC-checked file published by
// atomic rename, cachestore-style. The run ID is the hash of the manifest
// and trace bytes, so two identical runs (same seed and workload flags, at
// any -parallel worker count) collide into one record, and anything
// non-deterministic (wall time, scheduler, pool occupancy, flight tail)
// is quarantined in a per-attempt sidecar next to the record.
//
// The package depends only on the standard library so every layer above it
// (telemetry, cli, obs, cmd/tracestat) can import it freely.
package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// FormatVersion is the manifest schema version recorded (and hashed) in
// every record. The on-disk framing carries its own version byte in the
// magic string.
const FormatVersion = 1

// recordMagic opens every record file; the trailing digit is the framing
// version, so a future format bump is rejected by name, not by a CRC
// mismatch deep inside the file.
const recordMagic = "RPRORUN1"

// maxSectionLen bounds one section's payload (manifest, report, metrics,
// bench, trace). Real traces are a few hundred KB; the 1 GiB guard turns a
// corrupt length prefix into a clean error instead of an absurd allocation.
const maxSectionLen = 1 << 30

// sectionCount is the fixed number of length-prefixed sections in a record:
// manifest, report, metrics, bench, trace — in that order.
const sectionCount = 5

// Manifest is the deterministic identity of one run. Every field is
// derived from the run's inputs or its deterministic outputs — nothing
// here may depend on wall clock, scheduling or worker count — because the
// manifest bytes are half of the content address.
type Manifest struct {
	Version int    `json:"version"`
	Flow    string `json:"flow"`
	Seed    int64  `json:"seed"`
	// Flags is the resolved identity-bearing flag set: per-binary workload
	// flags (parameter, corner, test counts, …) plus the shared flags that
	// change what is computed. Output paths and scheduling knobs
	// (-parallel, -scheduler, -trace, …) are excluded by the recorder — they
	// change how or where, never what.
	Flags map[string]string `json:"flags,omitempty"`
	// CacheWarmth is the tier of persistent-cache reuse the run saw:
	// "none" (no -cache-dir), "cold" (store attached, nothing loaded) or
	// "warm" (prior entries recovered). Warm and cold runs of the same
	// workload produce different disk-cache artifacts, so warmth is part of
	// the identity.
	CacheWarmth string `json:"cache_warmth,omitempty"`
	// TraceDigest is the streaming FNV-1a 64 fingerprint of the trace bytes
	// ("fnv1a:%016x"), the cheap cross-check against the stored trace.
	TraceDigest string `json:"trace_digest,omitempty"`
}

// canonical returns the manifest's canonical bytes: encoding/json with its
// sorted map keys, which is deterministic for a given manifest value.
func (m Manifest) canonical() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("runstore: encoding manifest: %w", err)
	}
	return b, nil
}

// Record is one run's full stored state. Report, Metrics, Bench and Trace
// hold the artifact bytes verbatim (JSON documents / the JSONL trace);
// empty slices mean the artifact was not produced.
type Record struct {
	Manifest Manifest
	Report   []byte // run report JSON (nd sections zeroed by the recorder)
	Metrics  []byte // metrics snapshot JSON (nd_ metrics stripped)
	Bench    []byte // BENCH-style counters JSON, when a harness attaches them
	Trace    []byte // the full JSONL trace
}

// RunID is the content address of a (manifest, trace) pair: the first 16
// bytes of SHA-256 over the canonical manifest bytes, a NUL separator and
// the trace bytes, hex-encoded. Identical runs — same flow, seed, identity
// flags, warmth and trace — get identical IDs at any worker count.
func RunID(m Manifest, trace []byte) (string, error) {
	cb, err := m.canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(cb)
	h.Write([]byte{0})
	h.Write(trace)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// ID returns the record's content address.
func (r *Record) ID() (string, error) {
	return RunID(r.Manifest, r.Trace)
}

// ReportTotals is the deterministic whole-run cost parsed back out of the
// stored report artifact, for listings that should not re-decode the full
// report schema.
type ReportTotals struct {
	Measurements int64   `json:"measurements"`
	Vectors      int64   `json:"vectors"`
	SimTimeSec   float64 `json:"sim_time_sec"`
}

// Totals parses the report artifact's "total" cost. ok is false when the
// record carries no report or the report does not parse.
func (r *Record) Totals() (t ReportTotals, ok bool) {
	if len(r.Report) == 0 {
		return ReportTotals{}, false
	}
	var rep struct {
		Total ReportTotals `json:"total"`
	}
	if err := json.Unmarshal(r.Report, &rep); err != nil {
		return ReportTotals{}, false
	}
	return rep.Total, true
}

// Encode renders the record in the versioned on-disk framing: the magic
// string, then the five sections (manifest, report, metrics, bench, trace)
// each as a big-endian u32 length, the payload, and a CRC-32 (IEEE) over
// the length prefix and payload together — so a flipped length byte fails
// the checksum just like a flipped payload byte.
func (r *Record) Encode() ([]byte, error) {
	man, err := r.Manifest.canonical()
	if err != nil {
		return nil, err
	}
	sections := [sectionCount][]byte{man, r.Report, r.Metrics, r.Bench, r.Trace}
	size := len(recordMagic)
	for _, sec := range sections {
		size += 8 + len(sec)
	}
	b := make([]byte, 0, size)
	b = append(b, recordMagic...)
	for _, sec := range sections {
		if len(sec) > maxSectionLen {
			return nil, fmt.Errorf("runstore: section of %d bytes exceeds the %d-byte limit", len(sec), maxSectionLen)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(sec)))
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(sec)
		b = append(b, hdr[:]...)
		b = append(b, sec...)
		b = binary.BigEndian.AppendUint32(b, crc.Sum32())
	}
	return b, nil
}

// Decode parses record bytes back into a Record. name labels errors (the
// file path at the store layer); every corruption error carries the byte
// offset it was detected at, cachestore-style. Trailing bytes after the
// last section are corruption, not slack.
func Decode(data []byte, name string) (*Record, error) {
	if len(data) < len(recordMagic) {
		return nil, fmt.Errorf("runstore: %s: truncated record (%d bytes, no magic)", name, len(data))
	}
	got := string(data[:len(recordMagic)])
	if got != recordMagic {
		if got[:len(recordMagic)-1] == recordMagic[:len(recordMagic)-1] {
			return nil, fmt.Errorf("runstore: %s: unsupported record format version %q (want %q)", name, got, recordMagic)
		}
		return nil, fmt.Errorf("runstore: %s: not a run record (magic %q)", name, got)
	}
	off := len(recordMagic)
	var sections [sectionCount][]byte
	for i := range sections {
		if len(data)-off < 4 {
			return nil, fmt.Errorf("runstore: %s: truncated section %d header at byte %d", name, i, off)
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > maxSectionLen {
			return nil, fmt.Errorf("runstore: %s: corrupt section %d length %d at byte %d", name, i, n, off)
		}
		if len(data)-off < 8+n {
			return nil, fmt.Errorf("runstore: %s: truncated section %d (%d payload bytes wanted at byte %d, %d left)",
				name, i, n, off+4, len(data)-off-4)
		}
		crc := crc32.NewIEEE()
		crc.Write(data[off : off+4+n])
		stored := binary.BigEndian.Uint32(data[off+4+n : off+8+n])
		if crc.Sum32() != stored {
			return nil, fmt.Errorf("runstore: %s: checksum mismatch in section %d at byte %d", name, i, off)
		}
		sections[i] = data[off+4 : off+4+n]
		off += 8 + n
	}
	if off != len(data) {
		return nil, fmt.Errorf("runstore: %s: %d trailing bytes after the last section at byte %d", name, len(data)-off, off)
	}
	rec := &Record{}
	if err := json.Unmarshal(sections[0], &rec.Manifest); err != nil {
		return nil, fmt.Errorf("runstore: %s: parsing manifest: %w", name, err)
	}
	rec.Report = cloneNonEmpty(sections[1])
	rec.Metrics = cloneNonEmpty(sections[2])
	rec.Bench = cloneNonEmpty(sections[3])
	rec.Trace = cloneNonEmpty(sections[4])
	return rec, nil
}

// cloneNonEmpty detaches a section from the backing file buffer; empty
// sections stay nil so Encode∘Decode is the identity on the encoded bytes.
func cloneNonEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return bytes.Clone(b)
}
