package fuzzy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/wcr"
)

func tdqCoder(t *testing.T, mode Coding) *TripPointCoder {
	t.Helper()
	// T_DQ: spec 20 ns minimum, eq. 6 coding.
	c, err := NewTripPointCoder(20, true, mode)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoderWidths(t *testing.T) {
	if w := tdqCoder(t, CodingFuzzy).Width(); w != len(SeverityLabels()) {
		t.Errorf("fuzzy width = %d", w)
	}
	if w := tdqCoder(t, CodingNumeric).Width(); w != 1 {
		t.Errorf("numeric width = %d", w)
	}
}

func TestCoderZeroSpecRejected(t *testing.T) {
	if _, err := NewTripPointCoder(0, true, CodingFuzzy); err == nil {
		t.Error("zero spec accepted")
	}
}

func TestWCRMapping(t *testing.T) {
	c := tdqCoder(t, CodingFuzzy)
	if got := c.WCR(32.3); math.Abs(got-0.619) > 0.001 {
		t.Errorf("WCR(32.3) = %g, want ≈0.619 (Table 1 March row)", got)
	}
	if got := c.WCR(22.1); math.Abs(got-0.905) > 0.001 {
		t.Errorf("WCR(22.1) = %g, want ≈0.905 (Table 1 NNGA row)", got)
	}
}

func TestEncodeSeverityRoundTripFuzzy(t *testing.T) {
	c := tdqCoder(t, CodingFuzzy)
	// Severity must round-trip through the encoding within the universe.
	for _, trip := range []float64{33, 28, 24, 21, 19} {
		enc := c.Encode(trip)
		sev := c.Severity(enc)
		if math.Abs(sev-clampWCR(c.WCR(trip))) > 1e-9 {
			t.Errorf("trip %g: severity %g, want %g", trip, sev, clampWCR(c.WCR(trip)))
		}
	}
}

func TestEncodeSeverityRoundTripNumeric(t *testing.T) {
	c := tdqCoder(t, CodingNumeric)
	for _, trip := range []float64{33, 28, 24, 21, 19} {
		enc := c.Encode(trip)
		if len(enc) != 1 {
			t.Fatalf("numeric encoding length %d", len(enc))
		}
		sev := c.Severity(enc)
		if math.Abs(sev-clampWCR(c.WCR(trip))) > 1e-9 {
			t.Errorf("trip %g: severity %g", trip, sev)
		}
	}
}

func TestSeverityMonotoneInTripPoint(t *testing.T) {
	// For a minimum-spec parameter, smaller trip points must never yield
	// smaller severity.
	c := tdqCoder(t, CodingFuzzy)
	f := func(a, b float64) bool {
		x := 18 + math.Abs(math.Mod(a, 20)) // trips in [18, 38]
		y := 18 + math.Abs(math.Mod(b, 20))
		if x > y {
			x, y = y, x
		}
		// x ≤ y → severity(x) ≥ severity(y)
		return c.Severity(c.Encode(x)) >= c.Severity(c.Encode(y))-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingGradesInRange(t *testing.T) {
	c := tdqCoder(t, CodingFuzzy)
	f := func(trip float64) bool {
		for _, g := range c.Encode(math.Abs(trip)) {
			if g < 0 || g > 1 || math.IsNaN(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassification(t *testing.T) {
	c := tdqCoder(t, CodingFuzzy)
	// Table 1: March (32.3 ns) passes, NNGA (22.1 ns) is a weakness; a
	// 19 ns trip violates the spec.
	if got := c.ClassifyTripPoint(32.3); got != wcr.Pass {
		t.Errorf("32.3 ns classified %v", got)
	}
	if got := c.ClassifyTripPoint(22.1); got != wcr.Weakness {
		t.Errorf("22.1 ns classified %v", got)
	}
	if got := c.ClassifyTripPoint(19); got != wcr.Fail {
		t.Errorf("19 ns classified %v", got)
	}
}

func TestClassifyEncodedConsistent(t *testing.T) {
	c := tdqCoder(t, CodingFuzzy)
	for _, trip := range []float64{30, 22.1, 19} {
		direct := c.ClassifyTripPoint(trip)
		viaEnc := c.Classify(c.Encode(trip))
		if direct != viaEnc {
			t.Errorf("trip %g: direct class %v, encoded class %v", trip, direct, viaEnc)
		}
	}
}

func TestMaxSpecCoder(t *testing.T) {
	// A maximum-spec parameter (eq. 5): larger measured values are worse.
	c, err := NewTripPointCoder(1.62, false, CodingFuzzy)
	if err != nil {
		t.Fatal(err)
	}
	low := c.Severity(c.Encode(1.40))
	high := c.Severity(c.Encode(1.70))
	if low >= high {
		t.Errorf("max-spec severity not increasing: %g vs %g", low, high)
	}
	if c.ClassifyTripPoint(1.70) != wcr.Fail {
		t.Error("value above a maximum spec not classified fail")
	}
}

func TestCodingString(t *testing.T) {
	if CodingFuzzy.String() != "fuzzy" || CodingNumeric.String() != "numeric" {
		t.Error("coding names")
	}
}

func TestSeverityEmptyNumeric(t *testing.T) {
	c := tdqCoder(t, CodingNumeric)
	if got := c.Severity(nil); got != severityMin {
		t.Errorf("empty numeric severity = %g", got)
	}
}
