package fuzzy

import (
	"math"
	"testing"
)

func tempVariable(t *testing.T) *Variable {
	t.Helper()
	v, err := AutoPartition("temp", 0, 100, []string{"cold", "mild", "hot"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAutoPartitionStructure(t *testing.T) {
	v := tempVariable(t)
	if len(v.Terms) != 3 {
		t.Fatalf("terms = %d", len(v.Terms))
	}
	// Centers evenly spaced, shoulders at the ends.
	if v.Terms[0].Center != 0 || v.Terms[1].Center != 50 || v.Terms[2].Center != 100 {
		t.Errorf("centers: %g, %g, %g", v.Terms[0].Center, v.Terms[1].Center, v.Terms[2].Center)
	}
	if _, ok := v.Terms[0].MF.(ShoulderLeft); !ok {
		t.Error("first term is not a left shoulder")
	}
	if _, ok := v.Terms[2].MF.(ShoulderRight); !ok {
		t.Error("last term is not a right shoulder")
	}
	if _, ok := v.Terms[1].MF.(Triangular); !ok {
		t.Error("middle term is not triangular")
	}
}

func TestAutoPartitionErrors(t *testing.T) {
	if _, err := AutoPartition("x", 0, 1, []string{"only"}); err == nil {
		t.Error("single label accepted")
	}
	if _, err := AutoPartition("x", 5, 5, []string{"a", "b"}); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestAutoPartitionIsPartitionOfUnity(t *testing.T) {
	// Evenly spaced triangles with end shoulders sum to 1 everywhere — the
	// standard property guaranteeing every value is fully represented.
	v := tempVariable(t)
	for x := 0.0; x <= 100; x += 0.7 {
		sum := 0.0
		for _, g := range v.Fuzzify(x) {
			sum += g
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("membership sum at %g = %g, want 1", x, sum)
		}
	}
}

func TestFuzzifyAndBestTerm(t *testing.T) {
	v := tempVariable(t)
	g := v.Fuzzify(25)
	if math.Abs(g[0]-0.5) > 1e-12 || math.Abs(g[1]-0.5) > 1e-12 || g[2] != 0 {
		t.Errorf("Fuzzify(25) = %v", g)
	}
	term, grade := v.BestTerm(90)
	if term.Name != "hot" || grade <= 0.5 {
		t.Errorf("BestTerm(90) = %s/%g", term.Name, grade)
	}
}

func TestDefuzzifyRoundTrip(t *testing.T) {
	// Weighted-centroid defuzzification of a fuzzified crisp value must
	// recover it closely inside the universe interior.
	v := tempVariable(t)
	for x := 10.0; x <= 90; x += 10 {
		got := v.Defuzzify(v.Fuzzify(x))
		if math.Abs(got-x) > 1e-9 {
			t.Errorf("round trip %g → %g", x, got)
		}
	}
}

func TestDefuzzifyZeroGrades(t *testing.T) {
	v := tempVariable(t)
	if got := v.Defuzzify([]float64{0, 0, 0}); got != 50 {
		t.Errorf("zero-grade defuzzify = %g, want universe midpoint", got)
	}
}

func TestCentroidDefuzzify(t *testing.T) {
	v := tempVariable(t)
	// Full activation of "hot" only: centroid must sit clearly above 50.
	got := v.CentroidDefuzzify([]float64{0, 0, 1}, 0)
	if got < 70 {
		t.Errorf("hot-only centroid = %g, want > 70", got)
	}
	// Symmetric activation of the two shoulders: centroid at the middle.
	got = v.CentroidDefuzzify([]float64{0.5, 0, 0.5}, 400)
	if math.Abs(got-50) > 1 {
		t.Errorf("symmetric centroid = %g, want ≈50", got)
	}
	if got := v.CentroidDefuzzify([]float64{0, 0, 0}, 0); got != 50 {
		t.Errorf("zero centroid = %g", got)
	}
}

func TestTermIndex(t *testing.T) {
	v := tempVariable(t)
	if v.TermIndex("mild") != 1 {
		t.Error("TermIndex(mild)")
	}
	if v.TermIndex("missing") != -1 {
		t.Error("TermIndex(missing)")
	}
}

func TestVariableValidate(t *testing.T) {
	bad := &Variable{Name: "x", Min: 0, Max: 1}
	if err := bad.Validate(); err == nil {
		t.Error("termless variable accepted")
	}
	dup := &Variable{Name: "x", Min: 0, Max: 1, Terms: []Term{
		{Name: "a", MF: ShoulderLeft{A: 0, B: 1}},
		{Name: "a", MF: ShoulderRight{A: 0, B: 1}},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate term names accepted")
	}
	nilMF := &Variable{Name: "x", Min: 0, Max: 1, Terms: []Term{{Name: "a"}}}
	if err := nilMF.Validate(); err == nil {
		t.Error("nil membership accepted")
	}
}

func TestSortGrades(t *testing.T) {
	v := tempVariable(t)
	order := v.SortGrades([]float64{0.1, 0.9, 0.5})
	if order[0] != "mild" || order[1] != "hot" || order[2] != "cold" {
		t.Errorf("SortGrades order = %v", order)
	}
}
