package fuzzy

import (
	"fmt"

	"repro/internal/wcr"
)

// Coding selects how a trip point is encoded for the neural network: the
// paper offers "either fuzzy set data [8] or simple numerical coding" (§5,
// learning step 3) and recommends the fuzzy form.
type Coding uint8

const (
	// CodingFuzzy encodes the trip point as the grade vector of a severity
	// linguistic variable over the worst-case-ratio domain.
	CodingFuzzy Coding = iota
	// CodingNumeric encodes the trip point as a single normalized scalar.
	CodingNumeric
)

// String names the coding.
func (c Coding) String() string {
	if c == CodingNumeric {
		return "numeric"
	}
	return "fuzzy"
}

// SeverityLabels are the linguistic terms of the trip-point severity
// variable, ordered from harmless to violating. The middle terms straddle
// the fig. 6 weakness band ("D is quite close to the limit of the target
// device-spec").
func SeverityLabels() []string {
	return []string{"very-safe", "safe", "close-to-limit", "at-limit", "beyond-limit"}
}

// severity-universe bounds in WCR units: 0.5 is deep margin, 1.2 is a clear
// specification violation.
const (
	severityMin = 0.5
	severityMax = 1.2
)

// TripPointCoder converts measured trip points to the representation the
// neural networks are trained on, and back. The conversion pivots through
// the worst case ratio so the encoding is spec-relative: the same coder
// works for any parameter once spec and direction are set.
type TripPointCoder struct {
	Spec      float64
	SpecIsMin bool
	Mode      Coding

	severity *Variable
}

// NewTripPointCoder builds a coder for a parameter specification.
func NewTripPointCoder(spec float64, specIsMin bool, mode Coding) (*TripPointCoder, error) {
	if spec == 0 {
		return nil, fmt.Errorf("fuzzy: zero specification value")
	}
	sev, err := AutoPartition("severity", severityMin, severityMax, SeverityLabels())
	if err != nil {
		return nil, err
	}
	return &TripPointCoder{Spec: spec, SpecIsMin: specIsMin, Mode: mode, severity: sev}, nil
}

// Width returns the encoded vector length (the NN output layer width).
func (c *TripPointCoder) Width() int {
	if c.Mode == CodingNumeric {
		return 1
	}
	return len(c.severity.Terms)
}

// SeverityVariable exposes the underlying linguistic variable (reports,
// plotting).
func (c *TripPointCoder) SeverityVariable() *Variable { return c.severity }

// WCR maps a trip point to its worst case ratio (eqs. 5/6).
func (c *TripPointCoder) WCR(tripPoint float64) float64 {
	return wcr.For(tripPoint, c.Spec, c.SpecIsMin)
}

// clampWCR clips into the severity universe so encodings stay in range.
func clampWCR(w float64) float64 {
	if w < severityMin {
		return severityMin
	}
	if w > severityMax {
		return severityMax
	}
	return w
}

// Encode converts a measured trip point to the NN target vector.
func (c *TripPointCoder) Encode(tripPoint float64) []float64 {
	w := clampWCR(c.WCR(tripPoint))
	if c.Mode == CodingNumeric {
		return []float64{(w - severityMin) / (severityMax - severityMin)}
	}
	return c.severity.Fuzzify(w)
}

// Severity decodes an encoded vector back to a crisp WCR estimate. This is
// what the NN test generator ranks candidate tests by: the highest severity
// is the most promising worst-case candidate.
func (c *TripPointCoder) Severity(encoded []float64) float64 {
	if c.Mode == CodingNumeric {
		if len(encoded) == 0 {
			return severityMin
		}
		v := encoded[0]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return severityMin + v*(severityMax-severityMin)
	}
	return clampWCR(c.severity.Defuzzify(encoded))
}

// Classify maps an encoded vector onto the fig. 6 WCR band.
func (c *TripPointCoder) Classify(encoded []float64) wcr.Class {
	return wcr.Classify(c.Severity(encoded))
}

// ClassifyTripPoint maps a raw trip point onto the fig. 6 WCR band.
func (c *TripPointCoder) ClassifyTripPoint(tripPoint float64) wcr.Class {
	return wcr.Classify(c.WCR(tripPoint))
}
