package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangular(t *testing.T) {
	tri := Triangular{A: 0, B: 5, C: 10}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {2.5, 0.5}, {5, 1}, {7.5, 0.5}, {10, 0}, {11, 0},
	}
	for _, c := range cases {
		if got := tri.Grade(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Triangular.Grade(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if err := tri.Validate(); err != nil {
		t.Errorf("valid triangle rejected: %v", err)
	}
	if err := (Triangular{A: 5, B: 4, C: 6}).Validate(); err == nil {
		t.Error("unordered triangle accepted")
	}
	if err := (Triangular{A: 2, B: 2, C: 2}).Validate(); err == nil {
		t.Error("degenerate triangle accepted")
	}
}

func TestTrapezoidal(t *testing.T) {
	tr := Trapezoidal{A: 0, B: 2, C: 8, D: 10}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.5}, {2, 1}, {5, 1}, {8, 1}, {9, 0.5}, {10, 0},
	}
	for _, c := range cases {
		if got := tr.Grade(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Trapezoidal.Grade(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if err := (Trapezoidal{A: 0, B: 3, C: 2, D: 5}).Validate(); err == nil {
		t.Error("unordered trapezoid accepted")
	}
}

func TestGaussian(t *testing.T) {
	g := Gaussian{Mean: 5, Sigma: 1}
	if got := g.Grade(5); got != 1 {
		t.Errorf("Gaussian at mean = %g", got)
	}
	if got := g.Grade(6); math.Abs(got-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("Gaussian at +1σ = %g", got)
	}
	if g.Grade(4) != g.Grade(6) {
		t.Error("Gaussian not symmetric")
	}
	// Degenerate sigma behaves as a point mass.
	p := Gaussian{Mean: 2, Sigma: 0}
	if p.Grade(2) != 1 || p.Grade(2.1) != 0 {
		t.Error("zero-sigma Gaussian not a point mass")
	}
}

func TestShoulders(t *testing.T) {
	l := ShoulderLeft{A: 2, B: 4}
	if l.Grade(1) != 1 || l.Grade(2) != 1 || l.Grade(3) != 0.5 || l.Grade(5) != 0 {
		t.Error("left shoulder wrong")
	}
	r := ShoulderRight{A: 2, B: 4}
	if r.Grade(1) != 0 || r.Grade(3) != 0.5 || r.Grade(4) != 1 || r.Grade(5) != 1 {
		t.Error("right shoulder wrong")
	}
}

func TestMembershipUnitRangeProperty(t *testing.T) {
	mfs := []Membership{
		Triangular{A: 0, B: 1, C: 2},
		Trapezoidal{A: 0, B: 1, C: 2, D: 3},
		Gaussian{Mean: 1, Sigma: 0.5},
		ShoulderLeft{A: 0, B: 1},
		ShoulderRight{A: 0, B: 1},
	}
	f := func(x float64) bool {
		for _, mf := range mfs {
			g := mf.Grade(x)
			if g < 0 || g > 1 || math.IsNaN(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
