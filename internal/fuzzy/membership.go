// Package fuzzy implements the fuzzy set theory the paper uses to encode
// characterization trip points (§5, citing Bezdek [8]): membership
// functions, linguistic variables, a Mamdani-style inference engine, and
// the trip-point coder that turns a measured value into the graded
// "how close to the limit of the target device-spec" representation the
// neural networks learn.
package fuzzy

import (
	"fmt"
	"math"
)

// Membership grades how strongly a crisp value belongs to a fuzzy set;
// results are in [0, 1].
type Membership interface {
	Grade(x float64) float64
}

// Triangular is the classic triangle (a, b, c): zero outside [a, c], one at
// the apex b.
type Triangular struct {
	A, B, C float64
}

// Grade implements Membership.
func (t Triangular) Grade(x float64) float64 {
	switch {
	case x <= t.A || x >= t.C:
		return 0
	case x == t.B:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.C - x) / (t.C - t.B)
	}
}

// Validate reports shape errors.
func (t Triangular) Validate() error {
	if !(t.A <= t.B && t.B <= t.C) || t.A == t.C {
		return fmt.Errorf("fuzzy: invalid triangle (%g, %g, %g)", t.A, t.B, t.C)
	}
	return nil
}

// Trapezoidal is the trapezoid (a, b, c, d): one on [b, c], sloping to zero
// at a and d.
type Trapezoidal struct {
	A, B, C, D float64
}

// Grade implements Membership.
func (t Trapezoidal) Grade(x float64) float64 {
	switch {
	case x <= t.A || x >= t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.D - x) / (t.D - t.C)
	}
}

// Validate reports shape errors.
func (t Trapezoidal) Validate() error {
	if !(t.A <= t.B && t.B <= t.C && t.C <= t.D) || t.A == t.D {
		return fmt.Errorf("fuzzy: invalid trapezoid (%g, %g, %g, %g)", t.A, t.B, t.C, t.D)
	}
	return nil
}

// Gaussian is the bell exp(−(x−mean)²/2σ²).
type Gaussian struct {
	Mean, Sigma float64
}

// Grade implements Membership.
func (g Gaussian) Grade(x float64) float64 {
	if g.Sigma == 0 {
		if x == g.Mean {
			return 1
		}
		return 0
	}
	d := (x - g.Mean) / g.Sigma
	return math.Exp(-0.5 * d * d)
}

// ShoulderLeft saturates at one for x ≤ a and falls to zero at b — "small"
// style terms.
type ShoulderLeft struct {
	A, B float64
}

// Grade implements Membership.
func (s ShoulderLeft) Grade(x float64) float64 {
	switch {
	case x <= s.A:
		return 1
	case x >= s.B:
		return 0
	default:
		return (s.B - x) / (s.B - s.A)
	}
}

// ShoulderRight is zero for x ≤ a and saturates at one for x ≥ b — "large"
// style terms.
type ShoulderRight struct {
	A, B float64
}

// Grade implements Membership.
func (s ShoulderRight) Grade(x float64) float64 {
	switch {
	case x <= s.A:
		return 0
	case x >= s.B:
		return 1
	default:
		return (x - s.A) / (s.B - s.A)
	}
}
