package fuzzy

import (
	"math"
	"testing"
)

// buildSeverityEngine wires the paper's example rule shape: "if A and B and
// C, then D is quite close to the limit of the target device-spec".
func buildSeverityEngine(t *testing.T) *Engine {
	t.Helper()
	activity, err := AutoPartition("activity", 0, 1, []string{"low", "high"})
	if err != nil {
		t.Fatal(err)
	}
	noise, err := AutoPartition("noise", 0, 1, []string{"low", "high"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := AutoPartition("margin", 0, 1, []string{"safe", "close", "beyond"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddInput(activity); err != nil {
		t.Fatal(err)
	}
	if err := e.AddInput(noise); err != nil {
		t.Fatal(err)
	}
	rules := []Rule{
		{If: []Clause{{"activity", "high"}, {"noise", "high"}}, Then: Clause{"margin", "beyond"}},
		{If: []Clause{{"activity", "high"}, {"noise", "low"}}, Then: Clause{"margin", "close"}},
		{If: []Clause{{"activity", "low"}}, Then: Clause{"margin", "safe"}},
	}
	for _, r := range rules {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestEngineInference(t *testing.T) {
	e := buildSeverityEngine(t)
	if e.Rules() != 3 {
		t.Fatalf("rules = %d", e.Rules())
	}

	// Quiet test: margin safe.
	safe, err := e.InferCrisp(map[string]float64{"activity": 0.05, "noise": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Aggressive test: margin beyond.
	beyond, err := e.InferCrisp(map[string]float64{"activity": 0.95, "noise": 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed: in between.
	mid, err := e.InferCrisp(map[string]float64{"activity": 0.95, "noise": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !(safe < mid && mid < beyond) {
		t.Errorf("severity ordering broken: safe %g, mid %g, beyond %g", safe, mid, beyond)
	}
}

func TestEngineMinAND(t *testing.T) {
	e := buildSeverityEngine(t)
	grades, err := e.Infer(map[string]float64{"activity": 1.0, "noise": 0.75})
	if err != nil {
		t.Fatal(err)
	}
	// Rule 1 strength = min(high(1.0)=1, high(0.75)=0.75) = 0.75 on "beyond".
	beyondIdx := 2
	if math.Abs(grades[beyondIdx]-0.75) > 1e-9 {
		t.Errorf("min-AND strength = %g, want 0.75", grades[beyondIdx])
	}
}

func TestEngineMissingInput(t *testing.T) {
	e := buildSeverityEngine(t)
	if _, err := e.Infer(map[string]float64{"activity": 0.5}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestEngineRuleValidation(t *testing.T) {
	e := buildSeverityEngine(t)
	if err := e.AddRule(Rule{
		If:   []Clause{{"unknown", "high"}},
		Then: Clause{"margin", "safe"},
	}); err == nil {
		t.Error("rule with unknown variable accepted")
	}
	if err := e.AddRule(Rule{
		If:   []Clause{{"activity", "lukewarm"}},
		Then: Clause{"margin", "safe"},
	}); err == nil {
		t.Error("rule with unknown term accepted")
	}
	if err := e.AddRule(Rule{
		If:   []Clause{{"activity", "high"}},
		Then: Clause{"other", "safe"},
	}); err == nil {
		t.Error("rule with wrong output variable accepted")
	}
	if err := e.AddRule(Rule{Then: Clause{"margin", "safe"}}); err == nil {
		t.Error("rule with empty antecedent accepted")
	}
}

func TestEngineDuplicateInput(t *testing.T) {
	out, _ := AutoPartition("o", 0, 1, []string{"a", "b"})
	e, err := NewEngine(out)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := AutoPartition("i", 0, 1, []string{"a", "b"})
	if err := e.AddInput(in); err != nil {
		t.Fatal(err)
	}
	if err := e.AddInput(in); err == nil {
		t.Error("duplicate input accepted")
	}
}

func TestEngineRuleWeight(t *testing.T) {
	out, _ := AutoPartition("o", 0, 1, []string{"lo", "hi"})
	in, _ := AutoPartition("i", 0, 1, []string{"lo", "hi"})
	e, _ := NewEngine(out)
	if err := e.AddInput(in); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{
		If: []Clause{{"i", "hi"}}, Then: Clause{"o", "hi"}, Weight: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	grades, err := e.Infer(map[string]float64{"i": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grades[1]-0.5) > 1e-9 {
		t.Errorf("weighted rule strength = %g, want 0.5", grades[1])
	}
}
