package fuzzy

import (
	"fmt"
	"sort"
)

// Term is one named fuzzy set of a linguistic variable.
type Term struct {
	Name string
	MF   Membership
	// Center is the term's representative crisp value, used for fast
	// weighted-centroid defuzzification of grade vectors.
	Center float64
}

// Variable is a linguistic variable: a named universe of discourse covered
// by an ordered list of terms.
type Variable struct {
	Name     string
	Min, Max float64 // universe of discourse
	Terms    []Term
}

// Validate reports structural errors.
func (v *Variable) Validate() error {
	if v.Min >= v.Max {
		return fmt.Errorf("fuzzy: variable %q: empty universe [%g, %g]", v.Name, v.Min, v.Max)
	}
	if len(v.Terms) == 0 {
		return fmt.Errorf("fuzzy: variable %q has no terms", v.Name)
	}
	seen := make(map[string]bool, len(v.Terms))
	for _, t := range v.Terms {
		if t.Name == "" {
			return fmt.Errorf("fuzzy: variable %q has an unnamed term", v.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("fuzzy: variable %q: duplicate term %q", v.Name, t.Name)
		}
		seen[t.Name] = true
		if t.MF == nil {
			return fmt.Errorf("fuzzy: variable %q: term %q has no membership function", v.Name, t.Name)
		}
	}
	return nil
}

// TermIndex returns the position of the named term, or −1.
func (v *Variable) TermIndex(name string) int {
	for i, t := range v.Terms {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Fuzzify grades x against every term, returning the grade vector in term
// order.
func (v *Variable) Fuzzify(x float64) []float64 {
	out := make([]float64, len(v.Terms))
	for i, t := range v.Terms {
		out[i] = t.MF.Grade(x)
	}
	return out
}

// BestTerm returns the term with the highest grade for x and that grade.
// Ties resolve to the earliest term.
func (v *Variable) BestTerm(x float64) (Term, float64) {
	best, bg := 0, -1.0
	for i, t := range v.Terms {
		if g := t.MF.Grade(x); g > bg {
			best, bg = i, g
		}
	}
	return v.Terms[best], bg
}

// Defuzzify converts a grade vector back to a crisp value with the weighted
// centroid of the term centers. A zero grade vector returns the universe
// midpoint.
func (v *Variable) Defuzzify(grades []float64) float64 {
	var num, den float64
	for i, t := range v.Terms {
		if i >= len(grades) {
			break
		}
		num += grades[i] * t.Center
		den += grades[i]
	}
	if den == 0 {
		return (v.Min + v.Max) / 2
	}
	return num / den
}

// CentroidDefuzzify integrates the aggregated membership surface implied by
// clipping each term at its grade (Mamdani max aggregation, centroid
// method) over a discretized universe. Slower but shape-aware; samples
// controls the discretization (≤ 0 defaults to 200).
func (v *Variable) CentroidDefuzzify(grades []float64, samples int) float64 {
	if samples <= 0 {
		samples = 200
	}
	var num, den float64
	step := (v.Max - v.Min) / float64(samples)
	for i := 0; i <= samples; i++ {
		x := v.Min + float64(i)*step
		mu := 0.0
		for j, t := range v.Terms {
			if j >= len(grades) {
				break
			}
			g := t.MF.Grade(x)
			if g > grades[j] {
				g = grades[j] // clip at rule strength
			}
			if g > mu {
				mu = g // max aggregation
			}
		}
		num += x * mu
		den += mu
	}
	if den == 0 {
		return (v.Min + v.Max) / 2
	}
	return num / den
}

// AutoPartition builds a variable whose universe [min, max] is covered by n
// evenly spaced triangular terms with shoulders at the ends, named by the
// given labels (len(labels) must equal n, n ≥ 2). This is the conventional
// "uniform partition" construction for encoder variables.
func AutoPartition(name string, min, max float64, labels []string) (*Variable, error) {
	n := len(labels)
	if n < 2 {
		return nil, fmt.Errorf("fuzzy: AutoPartition needs at least 2 labels, got %d", n)
	}
	if min >= max {
		return nil, fmt.Errorf("fuzzy: AutoPartition: empty universe [%g, %g]", min, max)
	}
	step := (max - min) / float64(n-1)
	v := &Variable{Name: name, Min: min, Max: max}
	for i, label := range labels {
		c := min + float64(i)*step
		var mf Membership
		switch i {
		case 0:
			mf = ShoulderLeft{A: c, B: c + step}
		case n - 1:
			mf = ShoulderRight{A: c - step, B: c}
		default:
			mf = Triangular{A: c - step, B: c, C: c + step}
		}
		v.Terms = append(v.Terms, Term{Name: label, MF: mf, Center: c})
	}
	return v, v.Validate()
}

// SortGrades returns term names ordered by descending grade — a debugging
// helper for inspecting encodings.
func (v *Variable) SortGrades(grades []float64) []string {
	type tg struct {
		name  string
		grade float64
	}
	list := make([]tg, 0, len(v.Terms))
	for i, t := range v.Terms {
		g := 0.0
		if i < len(grades) {
			g = grades[i]
		}
		list = append(list, tg{t.Name, g})
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].grade > list[j].grade })
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}
