package fuzzy_test

import (
	"fmt"

	"repro/internal/fuzzy"
)

// ExampleTripPointCoder encodes a measured trip point into the severity
// grades the neural networks learn and decodes the severity back.
func ExampleTripPointCoder() {
	// T_DQ: specification minimum 20 ns (eq. 6 direction).
	coder, err := fuzzy.NewTripPointCoder(20, true, fuzzy.CodingFuzzy)
	if err != nil {
		panic(err)
	}
	for _, trip := range []float64{32.3, 22.1} {
		enc := coder.Encode(trip)
		fmt.Printf("%.1f ns → severity %.3f (%s)\n",
			trip, coder.Severity(enc), coder.Classify(enc))
	}
	// Output:
	// 32.3 ns → severity 0.619 (pass)
	// 22.1 ns → severity 0.905 (weakness)
}

// ExampleEngine builds the paper's "if A and B and C, then D is quite
// close to the limit" rule shape with the Mamdani engine.
func ExampleEngine() {
	activity, _ := fuzzy.AutoPartition("activity", 0, 1, []string{"low", "high"})
	noise, _ := fuzzy.AutoPartition("noise", 0, 1, []string{"low", "high"})
	margin, _ := fuzzy.AutoPartition("margin", 0, 1, []string{"safe", "close", "beyond"})

	e, _ := fuzzy.NewEngine(margin)
	_ = e.AddInput(activity)
	_ = e.AddInput(noise)
	_ = e.AddRule(fuzzy.Rule{
		If:   []fuzzy.Clause{{Variable: "activity", Term: "high"}, {Variable: "noise", Term: "high"}},
		Then: fuzzy.Clause{Variable: "margin", Term: "beyond"},
	})
	_ = e.AddRule(fuzzy.Rule{
		If:   []fuzzy.Clause{{Variable: "activity", Term: "low"}},
		Then: fuzzy.Clause{Variable: "margin", Term: "safe"},
	})

	calm, _ := e.InferCrisp(map[string]float64{"activity": 0.1, "noise": 0.1})
	hot, _ := e.InferCrisp(map[string]float64{"activity": 0.95, "noise": 0.9})
	fmt.Printf("calm margin %.2f < hot margin %.2f: %v\n", calm, hot, calm < hot)
	// Output: calm margin 0.26 < hot margin 0.78: true
}
