package fuzzy

import "fmt"

// Clause is one "<variable> is <term>" proposition.
type Clause struct {
	Variable string
	Term     string
}

// Rule is a Mamdani rule: IF every antecedent clause holds (min AND) THEN
// the consequent term of the output variable fires at the rule strength.
// The paper's example reads "if A and B and C, then D is quite close to the
// limit of the target device-spec" (§5).
type Rule struct {
	If   []Clause
	Then Clause
	// Weight scales the rule strength; zero means 1.
	Weight float64
}

// Engine is a small Mamdani inference engine over named variables.
type Engine struct {
	inputs map[string]*Variable
	output *Variable
	rules  []Rule
}

// NewEngine creates an engine producing values of the output variable.
func NewEngine(output *Variable) (*Engine, error) {
	if output == nil {
		return nil, fmt.Errorf("fuzzy: engine needs an output variable")
	}
	if err := output.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		inputs: make(map[string]*Variable),
		output: output,
	}, nil
}

// AddInput registers an input variable.
func (e *Engine) AddInput(v *Variable) error {
	if v == nil {
		return fmt.Errorf("fuzzy: nil input variable")
	}
	if err := v.Validate(); err != nil {
		return err
	}
	if _, dup := e.inputs[v.Name]; dup {
		return fmt.Errorf("fuzzy: duplicate input variable %q", v.Name)
	}
	e.inputs[v.Name] = v
	return nil
}

// AddRule registers a rule after validating every clause against the
// registered variables.
func (e *Engine) AddRule(r Rule) error {
	if len(r.If) == 0 {
		return fmt.Errorf("fuzzy: rule with empty antecedent")
	}
	for _, c := range r.If {
		v, ok := e.inputs[c.Variable]
		if !ok {
			return fmt.Errorf("fuzzy: rule references unknown input %q", c.Variable)
		}
		if v.TermIndex(c.Term) < 0 {
			return fmt.Errorf("fuzzy: input %q has no term %q", c.Variable, c.Term)
		}
	}
	if r.Then.Variable != e.output.Name {
		return fmt.Errorf("fuzzy: rule consequent variable %q is not the output %q", r.Then.Variable, e.output.Name)
	}
	if e.output.TermIndex(r.Then.Term) < 0 {
		return fmt.Errorf("fuzzy: output has no term %q", r.Then.Term)
	}
	e.rules = append(e.rules, r)
	return nil
}

// Rules returns the number of registered rules.
func (e *Engine) Rules() int { return len(e.rules) }

// Infer runs Mamdani inference for the crisp inputs and returns the output
// term grade vector (max-aggregated rule strengths per output term).
func (e *Engine) Infer(inputs map[string]float64) ([]float64, error) {
	grades := make([]float64, len(e.output.Terms))
	for _, r := range e.rules {
		strength := 1.0
		for _, c := range r.If {
			v := e.inputs[c.Variable]
			x, ok := inputs[c.Variable]
			if !ok {
				return nil, fmt.Errorf("fuzzy: missing input %q", c.Variable)
			}
			g := v.Terms[v.TermIndex(c.Term)].MF.Grade(x)
			if g < strength {
				strength = g // min AND
			}
		}
		if r.Weight > 0 {
			strength *= r.Weight
		}
		idx := e.output.TermIndex(r.Then.Term)
		if strength > grades[idx] {
			grades[idx] = strength // max aggregation
		}
	}
	return grades, nil
}

// InferCrisp runs inference and defuzzifies with the centroid method.
func (e *Engine) InferCrisp(inputs map[string]float64) (float64, error) {
	grades, err := e.Infer(inputs)
	if err != nil {
		return 0, err
	}
	return e.output.CentroidDefuzzify(grades, 0), nil
}
