// Package search implements the closed-loop trip-point search algorithms of
// the paper: the classic ATE methods — linear search, binary search and
// successive approximation (§1) — and the paper's contribution, the Search
// Until Trip Point algorithm (§4, eqs. 2–4) that reuses a reference trip
// point to avoid re-searching the full characterization range for every
// test of a multiple-trip-point run.
//
// A search talks to the device through the Measurer interface: one Passes
// call is one ATE measurement (a full apply-pattern/strobe/compare cycle),
// so Result.Measurements is the cost metric the paper's speed-up claims are
// about.
package search

import (
	"fmt"
	"math"
)

// Orientation tells the search on which side of the trip point the device
// passes.
type Orientation uint8

const (
	// PassLow: the pass region lies below the fail region (the paper's
	// eq. 3 case, "P < F": e.g. the device passes at 100 MHz and fails
	// above 110 MHz, or passes at a short strobe and fails at a long one).
	PassLow Orientation = iota
	// PassHigh: the pass region lies above the fail region (eq. 4 case,
	// "P > F": e.g. the device passes above Vddmin and fails below).
	PassHigh
)

// String names the orientation.
func (o Orientation) String() string {
	if o == PassHigh {
		return "pass-high"
	}
	return "pass-low"
}

// Measurer performs one characterization measurement: apply the test with
// the swept parameter set to value and report pass/fail.
type Measurer interface {
	Passes(value float64) (bool, error)
}

// MeasurerFunc adapts a function to the Measurer interface.
type MeasurerFunc func(value float64) (bool, error)

// Passes implements Measurer.
func (f MeasurerFunc) Passes(value float64) (bool, error) { return f(value) }

// Options configure one search over the characterization range [Lo, Hi]
// ("very generous starting ranges should be selected", §4).
type Options struct {
	Lo, Hi      float64
	Resolution  float64
	Orientation Orientation
}

// Validate reports configuration errors. Non-finite bounds and resolutions
// are rejected: an infinite range can never be halved below a finite
// resolution, so accepting one would hang every bisecting searcher.
func (o Options) Validate() error {
	if math.IsNaN(o.Lo) || math.IsInf(o.Lo, 0) || math.IsNaN(o.Hi) || math.IsInf(o.Hi, 0) {
		return fmt.Errorf("search: range [%g, %g] is not finite", o.Lo, o.Hi)
	}
	if !(o.Lo < o.Hi) {
		return fmt.Errorf("search: range [%g, %g] is empty", o.Lo, o.Hi)
	}
	if !(o.Resolution > 0) || math.IsInf(o.Resolution, 0) {
		return fmt.Errorf("search: resolution %g must be positive and finite", o.Resolution)
	}
	return nil
}

// Range returns the characterization range CR = Hi − Lo.
func (o Options) Range() float64 { return o.Hi - o.Lo }

// FullRangeBudget estimates the measurement cost of one conventional
// full-range search over the options (binary search / successive
// approximation, fig. 1): one pass-side boundary verification plus one
// probe per halving of the range down to the resolution. This is the
// per-search price of the no-SUTP baseline the paper's cost savings (§4)
// are measured against; the telemetry report multiplies it by the number
// of searches a run performed (or absorbed from the memo-cache).
func (o Options) FullRangeBudget() int {
	if o.Validate() != nil {
		return 0
	}
	n := 1
	for r := o.Range(); r > o.Resolution; r /= 2 {
		n++
	}
	return n
}

// Result is the outcome of one trip-point search.
type Result struct {
	// TripPoint is the last passing parameter value (the paper's TPV).
	TripPoint float64
	// Measurements is the number of Passes calls consumed.
	Measurements int
	// Converged reports whether a pass/fail boundary was bracketed inside
	// the range. When false, TripPoint holds the nearest range endpoint on
	// the passing side (or the passing endpoint if the whole range passes).
	Converged bool
	// LastPass and FirstFail bracket the boundary when Converged.
	LastPass, FirstFail float64
}

// Searcher is a trip-point search algorithm.
type Searcher interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Search locates the trip point of m inside opt's range.
	Search(m Measurer, opt Options) (Result, error)
}

// counting wraps a Measurer and counts measurements.
type counting struct {
	m Measurer
	n int
}

func (c *counting) Passes(v float64) (bool, error) {
	c.n++
	return c.m.Passes(v)
}

// bisect refines a bracketed boundary down to resolution and returns the
// refined bracket. pass and fail are parameter values with known outcomes.
func bisect(c *counting, pass, fail float64, resolution float64) (float64, float64, error) {
	for abs(fail-pass) > resolution {
		mid := pass + (fail-pass)/2
		if mid == pass || mid == fail {
			break // floating-point exhaustion
		}
		ok, err := c.Passes(mid)
		if err != nil {
			return pass, fail, err
		}
		if ok {
			pass = mid
		} else {
			fail = mid
		}
	}
	return pass, fail, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// passSide returns the endpoint of the range on the passing side for the
// orientation: Lo for PassLow, Hi for PassHigh.
func passSide(opt Options) float64 {
	if opt.Orientation == PassHigh {
		return opt.Hi
	}
	return opt.Lo
}

// failSide returns the endpoint on the failing side.
func failSide(opt Options) float64 {
	if opt.Orientation == PassHigh {
		return opt.Lo
	}
	return opt.Hi
}

// noBoundary builds the non-converged result when the whole range has a
// single outcome. allPass tells which outcome was observed.
func noBoundary(opt Options, n int, allPass bool) Result {
	r := Result{Measurements: n, Converged: false}
	if allPass {
		r.TripPoint = failSide(opt) // passing all the way to the fail-side end
		r.LastPass = failSide(opt)
	} else {
		r.TripPoint = passSide(opt) // never passed; report the pass-side end
		r.FirstFail = passSide(opt)
	}
	return r
}
