package search

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// surface is a synthetic device: passes on one side of trip, fails on the
// other, with optional per-measurement drift and call counting.
type surface struct {
	trip        float64
	orientation Orientation
	driftPer    float64 // added to trip after every measurement
	driftFloor  float64 // drift saturates here (device heating levels off)
	calls       int
	failAfter   int // return an error after this many calls (0 = never)
}

func (s *surface) Passes(v float64) (bool, error) {
	s.calls++
	if s.failAfter > 0 && s.calls > s.failAfter {
		return false, errors.New("tester fault")
	}
	trip := s.trip
	s.trip += s.driftPer
	if s.driftPer < 0 && s.trip < s.driftFloor {
		s.trip = s.driftFloor
	}
	if s.orientation == PassLow {
		return v <= trip, nil
	}
	return v >= trip, nil
}

func opts(o Orientation) Options {
	return Options{Lo: 0, Hi: 100, Resolution: 0.1, Orientation: o}
}

func searchers() map[string]func() Searcher {
	return map[string]func() Searcher{
		"linear":     func() Searcher { return Linear{Step: 0.5} },
		"binary":     func() Searcher { return Binary{} },
		"successive": func() Searcher { return SuccessiveApproximation{} },
		"sutp":       func() Searcher { return &SUTP{Refine: true} },
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Lo: 1, Hi: 1, Resolution: 0.1}).Validate(); err == nil {
		t.Error("empty range accepted")
	}
	if err := (Options{Lo: 0, Hi: 1, Resolution: 0}).Validate(); err == nil {
		t.Error("zero resolution accepted")
	}
	if err := (Options{Lo: 0, Hi: 1, Resolution: 0.1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestOrientationString(t *testing.T) {
	if PassLow.String() != "pass-low" || PassHigh.String() != "pass-high" {
		t.Error("orientation names wrong")
	}
}

func TestAllSearchersConvergePassLow(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: 37.3, orientation: PassLow}
		res, err := mk().Search(s, opts(PassLow))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge", name)
		}
		tol := 0.5 + 1e-9 // linear uses its own step
		if math.Abs(res.TripPoint-37.3) > tol {
			t.Errorf("%s trip point %g, want 37.3 ± %g", name, res.TripPoint, tol)
		}
		if res.Measurements != s.calls {
			t.Errorf("%s reported %d measurements, surface saw %d", name, res.Measurements, s.calls)
		}
		if res.LastPass > res.FirstFail {
			t.Errorf("%s bracket inverted for pass-low: pass %g > fail %g", name, res.LastPass, res.FirstFail)
		}
	}
}

func TestAllSearchersConvergePassHigh(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: 42.0, orientation: PassHigh}
		res, err := mk().Search(s, opts(PassHigh))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge", name)
		}
		if math.Abs(res.TripPoint-42.0) > 0.5+1e-9 {
			t.Errorf("%s trip point %g, want 42 ± 0.5", name, res.TripPoint)
		}
		if res.LastPass < res.FirstFail {
			t.Errorf("%s bracket inverted for pass-high: pass %g < fail %g", name, res.LastPass, res.FirstFail)
		}
	}
}

func TestAllSearchersHandleAllPass(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: 1000, orientation: PassLow} // trip beyond range
		res, err := mk().Search(s, opts(PassLow))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Converged {
			t.Errorf("%s claimed convergence on an all-pass range", name)
		}
		if res.TripPoint != 100 {
			t.Errorf("%s all-pass trip point %g, want the fail-side endpoint 100", name, res.TripPoint)
		}
	}
}

func TestAllSearchersHandleAllFail(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: -5, orientation: PassLow} // even Lo fails
		res, err := mk().Search(s, opts(PassLow))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Converged {
			t.Errorf("%s claimed convergence on an all-fail range", name)
		}
		if res.TripPoint != 0 {
			t.Errorf("%s all-fail trip point %g, want the pass-side endpoint 0", name, res.TripPoint)
		}
	}
}

func TestAllSearchersPropagateErrors(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: 50, orientation: PassLow, failAfter: 2}
		if _, err := mk().Search(s, opts(PassLow)); err == nil {
			t.Errorf("%s swallowed the measurement error", name)
		}
	}
}

func TestAllSearchersRejectInvalidOptions(t *testing.T) {
	for name, mk := range searchers() {
		s := &surface{trip: 50, orientation: PassLow}
		if _, err := mk().Search(s, Options{Lo: 5, Hi: 1, Resolution: 0.1}); err == nil {
			t.Errorf("%s accepted an inverted range", name)
		}
	}
}

func TestSearcherAccuracyProperty(t *testing.T) {
	// Binary, successive approximation and refined SUTP must locate any
	// trip point inside the range to within the resolution.
	f := func(raw float64) bool {
		trip := 1 + math.Abs(math.Mod(raw, 98))
		for _, mk := range []func() Searcher{
			func() Searcher { return Binary{} },
			func() Searcher { return SuccessiveApproximation{} },
			func() Searcher { return &SUTP{Refine: true} },
		} {
			s := &surface{trip: trip, orientation: PassLow}
			res, err := mk().Search(s, opts(PassLow))
			if err != nil || !res.Converged {
				return false
			}
			if math.Abs(res.TripPoint-trip) > 0.1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeasurerFunc(t *testing.T) {
	m := MeasurerFunc(func(v float64) (bool, error) { return v < 5, nil })
	ok, err := m.Passes(3)
	if err != nil || !ok {
		t.Error("MeasurerFunc adapter broken")
	}
}

func TestFullRangeBudget(t *testing.T) {
	// Invalid options cost nothing.
	if got := (Options{Lo: 1, Hi: 1, Resolution: 0.1}).FullRangeBudget(); got != 0 {
		t.Errorf("invalid options budget = %d, want 0", got)
	}
	// Range 35 at resolution 0.1: 1 boundary check + ceil(log2(350)) ≈ 9
	// halvings = 10, matching the observed ~11-measurement binary search.
	if got := (Options{Lo: 10, Hi: 45, Resolution: 0.1}).FullRangeBudget(); got != 10 {
		t.Errorf("T_DQ budget = %d, want 10", got)
	}
	// Already at resolution: just the single boundary verification.
	if got := (Options{Lo: 0, Hi: 1, Resolution: 1}).FullRangeBudget(); got != 1 {
		t.Errorf("at-resolution budget = %d, want 1", got)
	}
}
