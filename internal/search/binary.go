package search

// Binary is the divide-by-two search of §1 (fig. 1): the delta between the
// last known pass and last known fail is halved until the trip point is
// bracketed to within the resolution. It first verifies both endpoints so a
// range with no boundary is detected instead of converging falsely.
type Binary struct{}

// Name implements Searcher.
func (Binary) Name() string { return "binary" }

// Search implements Searcher.
func (Binary) Search(m Measurer, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	c := &counting{m: m}

	pass := passSide(opt)
	fail := failSide(opt)

	okPass, err := c.Passes(pass)
	if err != nil {
		return Result{Measurements: c.n}, err
	}
	if !okPass {
		return noBoundary(opt, c.n, false), nil
	}
	okFail, err := c.Passes(fail)
	if err != nil {
		return Result{Measurements: c.n}, err
	}
	if okFail {
		return noBoundary(opt, c.n, true), nil
	}

	lp, ff, err := bisect(c, pass, fail, opt.Resolution)
	if err != nil {
		return Result{Measurements: c.n}, err
	}
	return Result{
		TripPoint:    lp,
		Measurements: c.n,
		Converged:    true,
		LastPass:     lp,
		FirstFail:    ff,
	}, nil
}
