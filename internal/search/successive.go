package search

// SuccessiveApproximation is the ATE method the paper recommends for device
// performance characterization (§1): it searches between two values using
// one boundary and the half-way point. If both produce the same result the
// search continues toward the other boundary; once the two probes disagree
// the search bisects between the passing and the failing point. Unlike the
// plain binary search it can sense a drifting parameter: RecheckEvery
// re-verifies the current passing point during refinement and widens the
// bracket again when the outcome has drifted.
type SuccessiveApproximation struct {
	// RecheckEvery re-measures the passing bracket edge after this many
	// refinement steps (0 disables drift checking).
	RecheckEvery int
}

// Name implements Searcher.
func (SuccessiveApproximation) Name() string { return "successive-approximation" }

// Search implements Searcher.
func (s SuccessiveApproximation) Search(m Measurer, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	c := &counting{m: m}

	a := passSide(opt) // expected pass
	b := failSide(opt) // expected fail

	okA, err := c.Passes(a)
	if err != nil {
		return Result{Measurements: c.n}, err
	}
	if !okA {
		return noBoundary(opt, c.n, false), nil
	}

	// Walk half-intervals from the passing boundary toward the failing one
	// until the probe outcome flips.
	lo, hi := a, b
	var pass, fail float64
	found := false
	for i := 0; i < 64; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		ok, err := c.Passes(mid)
		if err != nil {
			return Result{Measurements: c.n}, err
		}
		if ok {
			// Same result as the passing side: continue toward the other end.
			lo = mid
			if abs(hi-lo) <= opt.Resolution {
				// Reached the failing boundary region; verify it.
				okEnd, err := c.Passes(hi)
				if err != nil {
					return Result{Measurements: c.n}, err
				}
				if okEnd {
					return noBoundary(opt, c.n, true), nil
				}
				pass, fail, found = lo, hi, true
				break
			}
			continue
		}
		pass, fail, found = lo, mid, true
		break
	}
	if !found {
		return noBoundary(opt, c.n, true), nil
	}

	// Refine with drift re-checking.
	steps := 0
	for abs(fail-pass) > opt.Resolution {
		if s.RecheckEvery > 0 && steps > 0 && steps%s.RecheckEvery == 0 {
			ok, err := c.Passes(pass)
			if err != nil {
				return Result{Measurements: c.n}, err
			}
			if !ok {
				// The parameter drifted: the former pass point now fails.
				// Walk back toward the passing boundary in geometrically
				// growing steps until a passing value is found again.
				fail = pass
				towardA := 1.0
				if a < pass {
					towardA = -1.0
				}
				step := opt.Resolution
				for {
					cand := pass + towardA*step
					if (towardA < 0 && cand <= a) || (towardA > 0 && cand >= a) {
						cand = a
					}
					okCand, err := c.Passes(cand)
					if err != nil {
						return Result{Measurements: c.n}, err
					}
					if okCand {
						pass = cand
						break
					}
					fail = cand
					if cand == a {
						// Even the boundary fails now: report the best
						// bracket we have.
						return Result{
							TripPoint:    a,
							Measurements: c.n,
							Converged:    false,
							FirstFail:    cand,
						}, nil
					}
					step *= 2
				}
			}
		}
		mid := pass + (fail-pass)/2
		if mid == pass || mid == fail {
			break
		}
		ok, err := c.Passes(mid)
		if err != nil {
			return Result{Measurements: c.n}, err
		}
		if ok {
			pass = mid
		} else {
			fail = mid
		}
		steps++
	}
	return Result{
		TripPoint:    pass,
		Measurements: c.n,
		Converged:    true,
		LastPass:     pass,
		FirstFail:    fail,
	}, nil
}
