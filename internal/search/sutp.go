package search

import (
	"fmt"
	"math"
)

// SUTP is the paper's Search Until Trip Point algorithm (§4). The first
// search of a multiple-trip-point run covers the full characterization
// range CR with a conventional method (successive approximation by default,
// eq. 2) and establishes the reference trip point RTP. Every later search
// starts directly at RTP and walks outward in growing steps
// SF(IT) = SF·IT — upward while the device keeps passing, downward while it
// keeps failing (eqs. 3/4) — because trip points of a well-designed device
// cluster in a narrow band around RTP. The expected cost per test drops
// from O(log2(CR/resolution)) full-range measurements to a handful of
// SF-sized steps, while unexpected large drifts are still found because the
// accelerating steps eventually cover the whole range.
//
// SUTP is stateful across Search calls: construct one SUTP per
// characterization run. It is not safe for concurrent use.
type SUTP struct {
	// SF is the search factor resolution, the programmable base step of
	// eqs. 3/4 ("such as 1MHz or 2MHz per step"). Zero defaults to 8× the
	// options' resolution.
	SF float64
	// Initial runs the first, full-range search. Nil defaults to
	// SuccessiveApproximation.
	Initial Searcher
	// Refine bisects the final SF-sized bracket down to the options'
	// resolution, recovering full accuracy at a cost of a few extra
	// measurements. When false the trip point is reported at SF accuracy,
	// exactly as formulated in the paper.
	Refine bool
	// UpdateRTP re-anchors the reference trip point to every new trip
	// point, tracking slow drift. When false the first trip point stays
	// the reference for the whole run (the paper's formulation).
	UpdateRTP bool

	rtp     float64
	haveRTP bool
}

// Name implements Searcher.
func (*SUTP) Name() string { return "search-until-trip-point" }

// HasReference reports whether the reference trip point is established.
func (s *SUTP) HasReference() bool { return s.haveRTP }

// Reference returns the current reference trip point; valid only when
// HasReference is true.
func (s *SUTP) Reference() float64 { return s.rtp }

// Reset forgets the reference trip point, forcing the next Search to run
// the full-range initial method again (the GA optimization scheme resets
// between populations).
func (s *SUTP) Reset() { s.haveRTP = false; s.rtp = 0 }

// SetReference installs an externally known reference trip point (eq. 2
// already performed elsewhere).
func (s *SUTP) SetReference(rtp float64) { s.rtp = rtp; s.haveRTP = true }

// Search implements Searcher.
func (s *SUTP) Search(m Measurer, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if !s.haveRTP {
		initial := s.Initial
		if initial == nil {
			initial = SuccessiveApproximation{}
		}
		res, err := initial.Search(m, opt)
		if err != nil {
			return res, err
		}
		if res.Converged {
			s.rtp = res.TripPoint
			s.haveRTP = true
		}
		return res, nil
	}

	if math.IsNaN(s.rtp) {
		return Result{}, fmt.Errorf("search: SUTP reference trip point is NaN")
	}
	sf := s.SF
	if sf == 0 {
		sf = 8 * opt.Resolution
	}
	if !(sf > 0) || math.IsInf(sf, 0) {
		return Result{}, fmt.Errorf("search: SUTP search factor %g must be positive and finite", sf)
	}
	// The accelerating scan needs ~√(2·CR/SF) probes to cover the whole
	// range. A search factor that is pathologically small relative to the
	// range (corrupt configuration, denormal SF) would make that count
	// astronomical; refuse it instead of looping for hours.
	if steps := math.Sqrt(2 * opt.Range() / sf); !(steps < 1e6) {
		return Result{}, fmt.Errorf("search: SUTP search factor %g too small for range %g", sf, opt.Range())
	}

	c := &counting{m: m}

	// Direction of "toward fail region" in parameter space.
	towardFail := 1.0
	if opt.Orientation == PassHigh {
		towardFail = -1.0
	}
	clampInto := func(v float64) float64 {
		if v < opt.Lo {
			return opt.Lo
		}
		if v > opt.Hi {
			return opt.Hi
		}
		return v
	}
	atFailEnd := func(v float64) bool {
		if opt.Orientation == PassHigh {
			return v <= opt.Lo
		}
		return v >= opt.Hi
	}
	atPassEnd := func(v float64) bool {
		if opt.Orientation == PassHigh {
			return v >= opt.Hi
		}
		return v <= opt.Lo
	}

	start := clampInto(s.rtp)
	ok, err := c.Passes(start)
	if err != nil {
		return Result{Measurements: c.n}, err
	}

	var pass, fail float64
	havePass, haveFail := false, false
	if ok {
		pass, havePass = start, true
	} else {
		fail, haveFail = start, true
	}

	// Accelerating scan (eqs. 3/4): the step SF(IT) = SF·IT grows with the
	// iteration count, so the probe positions run SF, 3SF, 6SF, 10SF, …
	// away from RTP — small drifts cost a couple of probes, large drifts
	// are still covered in O(√(drift/SF)) probes. If the probe at RTP
	// passed, walk toward the fail region until the first failure; if it
	// failed, walk back toward the pass region until the first pass.
	dir := towardFail
	if !ok {
		dir = -towardFail
	}
	v := start
	offset := 0.0
	for it := 1; ; it++ {
		prev := v
		offset += sf * float64(it)
		v = clampInto(start + dir*offset)
		if v == prev && v != opt.Lo && v != opt.Hi {
			// The step underflowed the floating-point grid around the
			// reference (SF orders of magnitude below one ULP of RTP): the
			// probe position will never move, so fail fast instead of
			// spinning.
			return Result{Measurements: c.n}, fmt.Errorf(
				"search: SUTP search factor %g underflows at reference %g", sf, start)
		}
		probe, err := c.Passes(v)
		if err != nil {
			return Result{Measurements: c.n}, err
		}
		if probe {
			pass, havePass = v, true
		} else {
			fail, haveFail = v, true
		}
		if havePass && haveFail {
			break
		}
		if ok && atFailEnd(v) {
			// Passed all the way to the fail-side end of the range.
			return noBoundary(opt, c.n, true), nil
		}
		if !ok && atPassEnd(v) {
			// Failed all the way to the pass-side end.
			return noBoundary(opt, c.n, false), nil
		}
	}

	if s.Refine {
		pass, fail, err = bisect(c, pass, fail, opt.Resolution)
		if err != nil {
			return Result{Measurements: c.n}, err
		}
	}
	if s.UpdateRTP {
		s.rtp = pass
	}
	return Result{
		TripPoint:    pass,
		Measurements: c.n,
		Converged:    true,
		LastPass:     pass,
		FirstFail:    fail,
	}, nil
}
