package search

import (
	"math"
	"testing"
)

func TestSUTPFirstSearchEstablishesRTP(t *testing.T) {
	s := &SUTP{Refine: true}
	if s.HasReference() {
		t.Fatal("fresh SUTP already has a reference")
	}
	surf := &surface{trip: 30, orientation: PassLow}
	res, err := s.Search(surf, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("first search did not converge")
	}
	if !s.HasReference() {
		t.Fatal("reference trip point not established")
	}
	if math.Abs(s.Reference()-30) > 0.2 {
		t.Errorf("RTP = %g, want ≈30", s.Reference())
	}
}

func TestSUTPFollowupCheaperThanFullRange(t *testing.T) {
	// The paper's central claim (§4): once the RTP exists, trip points in
	// its neighbourhood cost far fewer measurements than a full-range
	// search, because CR ≫ SF.
	s := &SUTP{Refine: true}
	first := &surface{trip: 30, orientation: PassLow}
	if _, err := s.Search(first, opts(PassLow)); err != nil {
		t.Fatal(err)
	}

	fullCost := 0
	sutpCost := 0
	for _, trip := range []float64{29.1, 30.6, 31.2, 28.4, 30.0} {
		fr, err := (Binary{}).Search(&surface{trip: trip, orientation: PassLow}, opts(PassLow))
		if err != nil {
			t.Fatal(err)
		}
		fullCost += fr.Measurements

		sr, err := s.Search(&surface{trip: trip, orientation: PassLow}, opts(PassLow))
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Converged {
			t.Fatalf("SUTP did not converge for trip %g", trip)
		}
		if math.Abs(sr.TripPoint-trip) > 0.1+1e-9 {
			t.Errorf("SUTP trip %g, want %g", sr.TripPoint, trip)
		}
		sutpCost += sr.Measurements
	}
	if sutpCost >= fullCost {
		t.Errorf("SUTP follow-up cost %d not below full-range cost %d", sutpCost, fullCost)
	}
}

func TestSUTPDetectsLargeDrift(t *testing.T) {
	// "In case of unexpected drift of design performance ... our proposal
	// is flexible enough to detect the drift" — the accelerating steps
	// must still find a trip point far from the RTP.
	s := &SUTP{Refine: true}
	if _, err := s.Search(&surface{trip: 30, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(&surface{trip: 85, orientation: PassLow}, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.TripPoint-85) > 0.1+1e-9 {
		t.Errorf("large upward drift missed: %+v", res)
	}
	res, err = s.Search(&surface{trip: 5, orientation: PassLow}, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.TripPoint-5) > 0.1+1e-9 {
		t.Errorf("large downward drift missed: %+v", res)
	}
}

func TestSUTPAcceleratingSteps(t *testing.T) {
	// Cost to reach a drift D from RTP grows sub-linearly in D/SF thanks
	// to SF(IT) = SF·IT: reaching 16 SF away must cost far fewer than 16
	// probes.
	s := &SUTP{SF: 1, Refine: false}
	s.SetReference(50)
	surf := &surface{trip: 66, orientation: PassLow} // 16 SF above RTP
	res, err := s.Search(surf, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Triangular steps: 1+2+3+4+5+6 = 21 ≥ 16, so ~7 probes (1 at RTP + 6).
	if res.Measurements > 9 {
		t.Errorf("accelerating scan took %d measurements for a 16-step drift, want ≤ 9", res.Measurements)
	}
}

func TestSUTPPassHighOrientation(t *testing.T) {
	s := &SUTP{Refine: true}
	o := opts(PassHigh)
	if _, err := s.Search(&surface{trip: 60, orientation: PassHigh}, o); err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(&surface{trip: 63, orientation: PassHigh}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.TripPoint-63) > 0.1+1e-9 {
		t.Errorf("pass-high follow-up trip %g, want 63", res.TripPoint)
	}
}

func TestSUTPUnrefinedAccuracyIsSF(t *testing.T) {
	s := &SUTP{SF: 2, Refine: false}
	s.SetReference(50)
	res, err := s.Search(&surface{trip: 55.7, orientation: PassLow}, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Probes land at 50, 52, 56 (triangular SF·IT steps), so the bracket
	// is [52, 56] and must contain the true trip point.
	if res.LastPass > 55.7 || res.FirstFail < 55.7 {
		t.Errorf("bracket [%g, %g] does not contain the true trip 55.7", res.LastPass, res.FirstFail)
	}
	if res.FirstFail-res.LastPass > 4+1e-9 {
		t.Errorf("bracket wider than SF·IT at the crossing: [%g, %g]", res.LastPass, res.FirstFail)
	}
}

func TestSUTPReset(t *testing.T) {
	s := &SUTP{Refine: true}
	if _, err := s.Search(&surface{trip: 30, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.HasReference() {
		t.Error("Reset kept the reference")
	}
}

func TestSUTPUpdateRTP(t *testing.T) {
	s := &SUTP{Refine: true, UpdateRTP: true}
	if _, err := s.Search(&surface{trip: 30, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(&surface{trip: 40, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Reference()-40) > 0.2 {
		t.Errorf("UpdateRTP did not re-anchor: reference %g, want ≈40", s.Reference())
	}
}

func TestSUTPKeepsRTPByDefault(t *testing.T) {
	s := &SUTP{Refine: true}
	if _, err := s.Search(&surface{trip: 30, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	ref := s.Reference()
	if _, err := s.Search(&surface{trip: 45, orientation: PassLow}, opts(PassLow)); err != nil {
		t.Fatal(err)
	}
	if s.Reference() != ref {
		t.Errorf("default SUTP re-anchored the reference: %g → %g", ref, s.Reference())
	}
}

func TestSUTPInvalidSF(t *testing.T) {
	s := &SUTP{SF: -1}
	s.SetReference(50)
	if _, err := s.Search(&surface{trip: 60, orientation: PassLow}, opts(PassLow)); err == nil {
		t.Error("negative SF accepted")
	}
}

func TestSUTPNonConvergedFirstSearchKeepsNoReference(t *testing.T) {
	s := &SUTP{Refine: true}
	res, err := s.Search(&surface{trip: 1000, orientation: PassLow}, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || s.HasReference() {
		t.Error("all-pass first search must not establish a reference")
	}
}

func TestSUTPAllFailFollowup(t *testing.T) {
	s := &SUTP{Refine: true}
	s.SetReference(50)
	res, err := s.Search(&surface{trip: -10, orientation: PassLow}, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("all-fail follow-up claimed convergence")
	}
	if res.TripPoint != 0 {
		t.Errorf("all-fail follow-up trip %g, want pass-side endpoint 0", res.TripPoint)
	}
}

func TestSUTPName(t *testing.T) {
	if (&SUTP{}).Name() != "search-until-trip-point" {
		t.Error("unexpected name")
	}
}
