package search_test

import (
	"math"
	"testing"

	"repro/internal/search"
)

// FuzzSUTPBounds hammers the reference-anchored searcher with arbitrary
// range/resolution/SF/reference configurations — NaNs, infinities,
// denormals, reversed ranges. The contract under fuzz: Search must
// terminate and either return a configuration error or a result whose
// reported values lie inside the range; it must never panic, hang, or
// fabricate an out-of-range trip point.
func FuzzSUTPBounds(f *testing.F) {
	f.Add(10.0, 45.0, 0.1, 0.0, 20.0, 22.0, false)  // TDQ-style PassLow
	f.Add(1.0, 2.2, 0.01, 0.0, 1.48, 1.5, true)     // VddMin-style PassHigh
	f.Add(40.0, 150.0, 0.5, 2.0, 96.0, 95.0, false) // Fmax with explicit SF
	f.Add(0.0, 1.0, 1e-9, 5e-324, 0.5, 0.5, false)  // denormal SF
	f.Add(5.0, 5.0, 0.1, 0.0, 5.0, 5.0, false)      // empty range
	f.Add(math.Inf(-1), math.Inf(1), 1.0, 0.0, 0.0, 0.0, false)
	f.Add(0.0, 100.0, 0.1, math.NaN(), math.NaN(), 50.0, true)
	f.Add(-1e300, 1e300, 1e-300, 1.0, 0.0, 0.0, false)   // astronomic CR/SF ratio
	f.Add(1e9, 1e9+1, 1e-12, 1e-15, 1e9, 1e9+0.5, false) // SF below one ULP

	f.Fuzz(func(t *testing.T, lo, hi, res, sf, rtp, trip float64, passHigh bool) {
		opt := search.Options{Lo: lo, Hi: hi, Resolution: res}
		if passHigh {
			opt.Orientation = search.PassHigh
		}
		m := search.MeasurerFunc(func(v float64) (bool, error) {
			if opt.Orientation == search.PassHigh {
				return v >= trip, nil
			}
			return v <= trip, nil
		})

		s := &search.SUTP{SF: sf, Refine: true}
		s.SetReference(rtp)
		r, err := s.Search(m, opt)
		if err != nil {
			return // rejected configurations are fine; panics/hangs are not
		}
		if opt.Validate() != nil {
			t.Fatalf("invalid options %+v accepted: %+v", opt, r)
		}
		if math.IsNaN(r.TripPoint) || r.TripPoint < opt.Lo || r.TripPoint > opt.Hi {
			t.Fatalf("trip point %g outside range [%g, %g]", r.TripPoint, opt.Lo, opt.Hi)
		}
		if r.Measurements <= 0 {
			t.Fatalf("result without measurements: %+v", r)
		}
		if r.Converged {
			if r.LastPass < opt.Lo || r.LastPass > opt.Hi ||
				r.FirstFail < opt.Lo || r.FirstFail > opt.Hi {
				t.Fatalf("bracket [%g, %g] outside range [%g, %g]",
					r.LastPass, r.FirstFail, opt.Lo, opt.Hi)
			}
		}
	})
}
