package search_test

import (
	"fmt"

	"repro/internal/search"
)

// A synthetic device that passes below 31.4 and fails above.
func deviceAt(trip float64) search.Measurer {
	return search.MeasurerFunc(func(v float64) (bool, error) {
		return v <= trip, nil
	})
}

// ExampleBinary locates one trip point with the classic divide-by-two
// search of fig. 1.
func ExampleBinary() {
	opt := search.Options{Lo: 10, Hi: 45, Resolution: 0.1, Orientation: search.PassLow}
	res, err := (search.Binary{}).Search(deviceAt(31.4), opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trip ≈ %.1f in %d measurements\n", res.TripPoint, res.Measurements)
	// Output: trip ≈ 31.4 in 11 measurements
}

// ExampleSUTP shows the paper's Search Until Trip Point method: the first
// search pays for the full range, every later one rides on the reference
// trip point (eqs. 2–4).
func ExampleSUTP() {
	opt := search.Options{Lo: 10, Hi: 45, Resolution: 0.1, Orientation: search.PassLow}
	s := &search.SUTP{SF: 0.4, Refine: true}

	first, _ := s.Search(deviceAt(31.4), opt)  // eq. 2: establishes RTP
	second, _ := s.Search(deviceAt(30.9), opt) // eq. 3: a few SF-steps away

	fmt.Printf("first: %d measurements, follow-up: %d measurements\n",
		first.Measurements, second.Measurements)
	fmt.Printf("both converged: %v %v\n", first.Converged, second.Converged)
	// Output:
	// first: 10 measurements, follow-up: 7 measurements
	// both converged: true true
}
