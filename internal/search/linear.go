package search

import "fmt"

// Linear is the classic linear search: start at one boundary and step
// through a specified resolution until the state changes or the end
// boundary is reached (§1). It is the slowest baseline — cost grows with
// the distance from the starting boundary to the trip point divided by the
// step — and, as the paper notes, small resolutions make it very expensive.
type Linear struct {
	// Step is the sweep increment. When zero, the search steps by the
	// options' Resolution.
	Step float64
}

// Name implements Searcher.
func (Linear) Name() string { return "linear" }

// Search implements Searcher. The sweep starts at the passing-side endpoint
// and walks toward the failing side; the trip point is the last passing
// value before the first failure.
func (l Linear) Search(m Measurer, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	step := l.Step
	if step == 0 {
		step = opt.Resolution
	}
	if step <= 0 {
		return Result{}, fmt.Errorf("search: linear step %g must be positive", step)
	}

	c := &counting{m: m}
	start := passSide(opt)
	dir := 1.0
	if opt.Orientation == PassHigh {
		dir = -1.0
	}

	prev := start
	seenPass := false
	for v := start; ; v += dir * step {
		// Clamp the final probe to the range end.
		if opt.Orientation == PassLow && v > opt.Hi {
			v = opt.Hi
		}
		if opt.Orientation == PassHigh && v < opt.Lo {
			v = opt.Lo
		}
		ok, err := c.Passes(v)
		if err != nil {
			return Result{Measurements: c.n}, err
		}
		if !ok {
			if !seenPass {
				// Even the pass-side endpoint fails: no boundary here.
				return noBoundary(opt, c.n, false), nil
			}
			return Result{
				TripPoint:    prev,
				Measurements: c.n,
				Converged:    true,
				LastPass:     prev,
				FirstFail:    v,
			}, nil
		}
		seenPass = true
		prev = v
		if (opt.Orientation == PassLow && v >= opt.Hi) ||
			(opt.Orientation == PassHigh && v <= opt.Lo) {
			// Swept the whole range without a failure.
			return noBoundary(opt, c.n, true), nil
		}
	}
}
