package search

import (
	"math"
	"testing"
)

func TestLinearStepDefaultsToResolution(t *testing.T) {
	s := &surface{trip: 3.0, orientation: PassLow}
	res, err := Linear{}.Search(s, Options{Lo: 0, Hi: 10, Resolution: 0.25, Orientation: PassLow})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.TripPoint-3.0) > 0.25+1e-9 {
		t.Errorf("linear default-step result %+v", res)
	}
}

func TestLinearRejectsNegativeStep(t *testing.T) {
	if _, err := (Linear{Step: -1}).Search(&surface{trip: 5, orientation: PassLow}, opts(PassLow)); err == nil {
		t.Error("negative step accepted")
	}
}

func TestLinearCostScalesWithDistance(t *testing.T) {
	near := &surface{trip: 5, orientation: PassLow}
	rNear, err := Linear{Step: 0.5}.Search(near, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	far := &surface{trip: 95, orientation: PassLow}
	rFar, err := Linear{Step: 0.5}.Search(far, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if rFar.Measurements <= rNear.Measurements*5 {
		t.Errorf("linear cost near=%d far=%d: expected ≈linear growth with distance",
			rNear.Measurements, rFar.Measurements)
	}
}

func TestLinearPassHigh(t *testing.T) {
	s := &surface{trip: 60, orientation: PassHigh}
	res, err := Linear{Step: 0.5}.Search(s, opts(PassHigh))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.TripPoint-60) > 0.5+1e-9 {
		t.Errorf("linear pass-high result %+v", res)
	}
}

func TestBinaryLogarithmicCost(t *testing.T) {
	s := &surface{trip: 61.7, orientation: PassLow}
	res, err := Binary{}.Search(s, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	// Range 100, resolution 0.1 → ~ceil(log2(1000)) + 2 endpoint checks.
	if res.Measurements > 14 {
		t.Errorf("binary search took %d measurements, want ≤ 14", res.Measurements)
	}
}

func TestBinaryBracketWithinResolution(t *testing.T) {
	s := &surface{trip: 33.33, orientation: PassLow}
	res, err := Binary{}.Search(s, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFail-res.LastPass > 0.1+1e-9 {
		t.Errorf("bracket [%g, %g] wider than resolution", res.LastPass, res.FirstFail)
	}
}

func TestSuccessiveApproximationDriftRecovery(t *testing.T) {
	// A drifting parameter (device heating) moves the trip point downward
	// during the search; with drift re-checking enabled the search must
	// still land on a currently-passing value.
	s := &surface{trip: 70, orientation: PassLow, driftPer: -0.4, driftFloor: 60}
	sa := SuccessiveApproximation{RecheckEvery: 2}
	res, err := sa.Search(s, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("drifting search did not converge")
	}
	// The reported trip point must have tracked the drift downward: close
	// to the surface's final position, not the stale starting one.
	if res.TripPoint > s.trip+1.0 {
		t.Errorf("reported trip %g stale: surface drifted to %g", res.TripPoint, s.trip)
	}

	// Without drift checking the plain search reports a stale value.
	s2 := &surface{trip: 70, orientation: PassLow, driftPer: -0.4, driftFloor: 60}
	res2, err := SuccessiveApproximation{}.Search(s2, opts(PassLow))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Converged && res2.TripPoint <= s2.trip+1.0 {
		t.Skip("plain search happened to track drift; drift-check advantage not observable at this rate")
	}
}

func TestSuccessiveApproximationStaticMatchesBinary(t *testing.T) {
	for _, trip := range []float64{10, 42.5, 87.3} {
		sb := &surface{trip: trip, orientation: PassLow}
		rb, err := Binary{}.Search(sb, opts(PassLow))
		if err != nil {
			t.Fatal(err)
		}
		ss := &surface{trip: trip, orientation: PassLow}
		rs, err := SuccessiveApproximation{}.Search(ss, opts(PassLow))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rb.TripPoint-rs.TripPoint) > 0.2 {
			t.Errorf("trip %g: binary %g vs successive %g disagree", trip, rb.TripPoint, rs.TripPoint)
		}
	}
}

func TestNames(t *testing.T) {
	if (Linear{}).Name() != "linear" {
		t.Error("linear name")
	}
	if (Binary{}).Name() != "binary" {
		t.Error("binary name")
	}
	if (SuccessiveApproximation{}).Name() != "successive-approximation" {
		t.Error("successive name")
	}
}
