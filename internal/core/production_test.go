package core

import (
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

// worstCasePattern is the coordinated pattern the CI flow discovers.
func worstCasePattern() testgen.Test {
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	return testgen.Test{Name: "WORST", Seq: seq, Cond: testgen.NominalConditions()}
}

func marchPattern(t *testing.T) testgen.Test {
	t.Helper()
	m, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, testgen.NominalConditions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// slowLot builds a lot with marginal process outliers: every third die is
// a slow-corner sample with an extra −3 ns window shift, making it truly
// defective under the worst case (window below 20 ns) while its March
// windows stay comfortably above any production limit.
func slowLot(n int) []*dut.Die {
	lot := make([]*dut.Die, n)
	for i := range lot {
		if i%3 == 0 {
			lot[i] = dut.NewDie(i, dut.CornerSlow, dut.WithExtraTDQOffsetNS(-3))
		} else {
			lot[i] = dut.NewDie(i, dut.CornerTypical)
		}
	}
	return lot
}

func TestBuildProductionProgramValidation(t *testing.T) {
	if _, err := BuildProductionProgram(ate.TDQ, nil, 0.02); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := BuildProductionProgram(ate.TDQ, []testgen.Test{worstCasePattern()}, 1.5); err == nil {
		t.Error("absurd guardband accepted")
	}
}

func TestProductionLimitDirections(t *testing.T) {
	p, err := BuildProductionProgram(ate.TDQ, []testgen.Test{worstCasePattern()}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if p.Screens[0].LimitValue <= 20 {
		t.Errorf("min-spec production limit %.2f not above the 20 ns spec", p.Screens[0].LimitValue)
	}
	pmax, err := BuildProductionProgram(ate.VddMin, []testgen.Test{worstCasePattern()}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ate.VddMin.SpecValue()
	if pmax.Screens[0].LimitValue >= spec {
		t.Errorf("max-spec production limit %.3f not below the spec %.3f", pmax.Screens[0].LimitValue, spec)
	}
}

// TestCIProgramCatchesEscapesMarchShips is the production punchline of the
// whole paper: on a lot with slow dies, the March-only program ships
// defective devices (escapes) because March never provokes the worst case,
// while adding the CI-found worst-case screen eliminates those escapes.
func TestCIProgramCatchesEscapesMarchShips(t *testing.T) {
	lot := slowLot(16)
	geom := dut.DefaultGeometry()
	oracle := worstCasePattern()

	marchOnly, err := BuildProductionProgram(ate.TDQ, []testgen.Test{marchPattern(t)}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	marchRes, err := RunProduction(marchOnly, oracle, lot, geom, 5)
	if err != nil {
		t.Fatal(err)
	}

	ci, err := BuildProductionProgram(ate.TDQ, []testgen.Test{marchPattern(t), oracle}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ciRes, err := RunProduction(ci, oracle, lot, geom, 5)
	if err != nil {
		t.Fatal(err)
	}

	if marchRes.Defective == 0 {
		t.Fatal("lot has no truly defective dies; scenario miscalibrated")
	}
	if marchRes.Escapes == 0 {
		t.Errorf("March-only program shipped no escapes; the characterization gap is not visible")
	}
	if ciRes.Escapes != 0 {
		t.Errorf("CI program shipped %d escapes", ciRes.Escapes)
	}
	// The CI program's yield is lower — it rejects the real defects.
	if ciRes.Yield > marchRes.Yield {
		t.Errorf("CI yield %.2f above March-only yield %.2f", ciRes.Yield, marchRes.Yield)
	}
	// Ground truth is program-independent.
	if marchRes.Defective != ciRes.Defective {
		t.Errorf("oracle defect counts differ: %d vs %d", marchRes.Defective, ciRes.Defective)
	}
}

func TestProductionStopsOnFirstFail(t *testing.T) {
	// A die failing the first screen must not be measured further.
	lot := []*dut.Die{dut.NewDie(0, dut.CornerSlow, dut.WithExtraTDQOffsetNS(-3))}
	oracle := worstCasePattern()
	prog, err := BuildProductionProgram(ate.TDQ, []testgen.Test{oracle, marchPattern(t)}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProduction(prog, oracle, lot, dut.DefaultGeometry(), 7)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Dies[0]
	if v.Passed {
		t.Skip("slow die unexpectedly passed the worst-case screen at this seed")
	}
	if v.FailedScreen != "WORST" {
		t.Errorf("failed screen %q, want the first (WORST)", v.FailedScreen)
	}
	if v.Measurements != 1 {
		t.Errorf("die measured %d times after first fail", v.Measurements)
	}
}

func TestRunProductionValidation(t *testing.T) {
	lot := slowLot(2)
	if _, err := RunProduction(nil, worstCasePattern(), lot, dut.DefaultGeometry(), 1); err == nil {
		t.Error("nil program accepted")
	}
	prog, _ := BuildProductionProgram(ate.TDQ, []testgen.Test{worstCasePattern()}, 0.02)
	if _, err := RunProduction(prog, worstCasePattern(), nil, dut.DefaultGeometry(), 1); err == nil {
		t.Error("empty lot accepted")
	}
}

func TestProductionResultFormat(t *testing.T) {
	lot := slowLot(4)
	prog, _ := BuildProductionProgram(ate.TDQ, []testgen.Test{worstCasePattern()}, 0.02)
	res, err := RunProduction(prog, worstCasePattern(), lot, dut.DefaultGeometry(), 9)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Format()
	for _, want := range []string{"Production run", "yield", "escapes", "overkill"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q: %s", want, s)
		}
	}
}

func TestProductionOtherParameters(t *testing.T) {
	// The production measurement path supports all three parameters.
	lot := []*dut.Die{dut.NewDie(0, dut.CornerTypical)}
	oracle := worstCasePattern()
	for _, param := range []ate.Parameter{ate.Fmax, ate.VddMin} {
		prog, err := BuildProductionProgram(param, []testgen.Test{marchPattern(t)}, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunProduction(prog, oracle, lot, dut.DefaultGeometry(), 3)
		if err != nil {
			t.Fatalf("%v: %v", param, err)
		}
		if len(res.Dies) != 1 {
			t.Fatalf("%v: %d dies", param, len(res.Dies))
		}
		// A healthy typical die clears both specs under a March screen.
		if !res.Dies[0].Passed {
			t.Errorf("%v: healthy die rejected by %s", param, res.Dies[0].FailedScreen)
		}
	}
	bad, _ := BuildProductionProgram(ate.Parameter(9), []testgen.Test{marchPattern(t)}, 0.02)
	if _, err := RunProduction(bad, oracle, lot, dut.DefaultGeometry(), 3); err == nil {
		t.Error("unsupported parameter accepted")
	}
}
