package core

import (
	"fmt"
	"sort"

	"repro/internal/cachestore"
)

// Persistence for the optimization memo-cache: the GA's fitness values
// (test-fingerprint → WCR) survive the process, so a re-run of the same
// flow serves its measurements from disk. Values are only valid for the
// exact flow that produced them — parameter, geometry, die and seed all
// shift the measured trip points — so they persist under a scope derived
// from that content: a store opened for a different flow skips the
// segments entirely instead of mixing incompatible values.

// memoScopeTag versions the float64 memo-record family; bump alongside any
// change to what the values mean.
const memoScopeTag uint64 = 0x54505631 // "TPV1"

// fnvOffset is the FNV-1a 64-bit offset basis shared by the content keys.
const fnvOffset uint64 = 14695981039346656037

// fnvMix folds one 64-bit value into a running FNV-1a hash, byte-wise
// little-endian.
func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// MemoCacheScope returns the cachestore scope binding persisted memo
// entries to this flow's content: parameter, device geometry, die identity
// and seed.
func (c *Characterizer) MemoCacheScope() uint64 {
	geom := c.ate.Device().Geometry()
	h := fnvMix(fnvOffset, memoScopeTag)
	h = fnvMix(h, uint64(c.cfg.Parameter))
	h = fnvMix(h, uint64(geom.Banks))
	h = fnvMix(h, uint64(geom.Rows))
	h = fnvMix(h, uint64(geom.Cols))
	h = fnvMix(h, c.ate.Device().Die().Fingerprint())
	h = fnvMix(h, uint64(c.cfg.Seed))
	return h
}

// PrimeMemoCache preloads every persisted fitness value from the store
// into the next Optimize run's memo-cache and returns how many entries it
// took. Because the store scope binds the flow content, a fully primed run
// reproduces the cold run's results bit for bit while measuring only what
// the cold run never saw. No-op (0) with a nil store or the cache
// disabled.
func (c *Characterizer) PrimeMemoCache(store *cachestore.Store) int {
	if store == nil || c.cfg.DisableMeasurementCache {
		return 0
	}
	if c.primed == nil {
		c.primed = map[uint64]float64{}
	}
	n := 0
	store.RangeFloat64(func(key uint64, value float64) bool {
		c.primed[key] = value
		n++
		return true
	})
	return n
}

// PersistMemoCache writes the most recent optimization's memo-cache into
// the store (8-byte float records via the cachestore float64 helpers, keys
// sorted so segment bytes are deterministic) and flushes. Returns the
// number of live cache entries. No-op with a nil store or before any
// optimization ran.
func (c *Characterizer) PersistMemoCache(store *cachestore.Store) (int, error) {
	if store == nil || c.lastEval == nil || c.lastEval.cache == nil {
		return 0, nil
	}
	type kv struct {
		k uint64
		v float64
	}
	var entries []kv
	c.lastEval.cache.Range(func(key uint64, value float64) bool {
		entries = append(entries, kv{key, value})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	for _, e := range entries {
		store.PutFloat64(e.k, e.v)
	}
	if _, err := store.Flush(); err != nil {
		return 0, fmt.Errorf("core: persisting memo cache: %w", err)
	}
	return len(entries), nil
}
