package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wcr"
)

func TestRunSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full session")
	}
	dir := t.TempDir()
	cfg := SessionConfig{
		Flow:             quickConfig(101),
		Minimize:         true,
		FunctionalScreen: true,
		WeightFilePath:   filepath.Join(dir, "w.json"),
		DatabasePath:     filepath.Join(dir, "db.json"),
	}
	tester := newTester(t, 101)
	res, err := RunSession(cfg, tester)
	if err != nil {
		t.Fatal(err)
	}
	if res.Learning == nil || res.Optimization == nil {
		t.Fatal("phases missing")
	}
	if res.Worst.Test.Name == "" {
		t.Error("no worst case")
	}
	if res.Minimized == nil {
		t.Error("minimization skipped")
	}
	if res.Stats.Measurements == 0 {
		t.Error("no cost accounting")
	}
	if res.Classify() != res.Worst.Class {
		t.Error("Classify accessor inconsistent")
	}
	for _, f := range []string{cfg.WeightFilePath, cfg.DatabasePath} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("artifact %s not written: %v", f, err)
		}
	}
	s := res.Format()
	for _, want := range []string{"Characterization session", "worst case", "diagnosis:", "minimized:", "cost:"} {
		if !strings.Contains(s, want) {
			t.Errorf("session report missing %q", want)
		}
	}
	// Persisted database round-trips.
	db, err := LoadDatabaseFile(cfg.DatabasePath)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Error("persisted database empty")
	}
}

func TestRunSessionWorstAtLeastWeakness(t *testing.T) {
	if testing.Short() {
		t.Skip("full session")
	}
	// At the default (full) scale the session must find at least a
	// weakness-class worst case on the typical die.
	cfg := SessionConfig{Flow: DefaultConfig(103)}
	nominal := quickConfig(103).FixedConditions
	cfg.Flow.FixedConditions = nominal
	tester := newTester(t, 103)
	res, err := RunSession(cfg, tester)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classify() == wcr.Pass {
		t.Errorf("session worst case classified pass (WCR %.3f)", res.Worst.WCR)
	}
}

func TestRunSessionInvalidConfig(t *testing.T) {
	bad := SessionConfig{Flow: quickConfig(1)}
	bad.Flow.SeedCount = 0
	if _, err := RunSession(bad, newTester(t, 1)); err == nil {
		t.Error("invalid flow config accepted")
	}
}
