package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ate"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// Entry is one record of the worst-case test database: the test, its
// measured parameter value and WCR classification. Functional failure
// patterns are kept in a separate list, following the paper ("functional
// failure patterns (if any) are stored separately").
type Entry struct {
	Test  testgen.Test
	Value float64
	WCR   float64
	Class wcr.Class
}

// Database is the worst-case test database of fig. 5: the final output of
// the optimization scheme, handed to detailed ATE / circuit-level analysis.
type Database struct {
	Parameter ate.Parameter
	Entries   []Entry
	// Functional holds tests that provoked functional (value) failures.
	Functional []testgen.Test

	index map[string]int // test name → entry position
}

// NewDatabase creates an empty database for the parameter.
func NewDatabase(param ate.Parameter) *Database {
	return &Database{Parameter: param, index: make(map[string]int)}
}

// Add inserts or updates an entry (keyed by test name, keeping the worse
// WCR on collision).
func (d *Database) Add(e Entry) {
	if d.index == nil {
		d.index = make(map[string]int)
	}
	if i, ok := d.index[e.Test.Name]; ok {
		if e.WCR > d.Entries[i].WCR {
			d.Entries[i] = e
		}
		return
	}
	d.index[e.Test.Name] = len(d.Entries)
	d.Entries = append(d.Entries, e)
}

// AddFunctionalFailure records a test that provoked a functional failure.
func (d *Database) AddFunctionalFailure(t testgen.Test) {
	d.Functional = append(d.Functional, t)
}

// Sort orders entries worst (largest WCR) first and rebuilds the index.
func (d *Database) Sort() {
	sort.SliceStable(d.Entries, func(i, j int) bool {
		if d.Entries[i].WCR != d.Entries[j].WCR {
			return d.Entries[i].WCR > d.Entries[j].WCR
		}
		return d.Entries[i].Test.Name < d.Entries[j].Test.Name
	})
	d.index = make(map[string]int, len(d.Entries))
	for i, e := range d.Entries {
		d.index[e.Test.Name] = i
	}
}

// Worst returns the worst entry; ok is false when empty.
func (d *Database) Worst() (Entry, bool) {
	if len(d.Entries) == 0 {
		return Entry{}, false
	}
	best := d.Entries[0]
	for _, e := range d.Entries[1:] {
		if e.WCR > best.WCR {
			best = e
		}
	}
	return best, true
}

// Len returns the number of entries.
func (d *Database) Len() int { return len(d.Entries) }

// databaseJSON is the serialized form. Sequences serialize as compact
// vector triples.
type databaseJSON struct {
	Parameter  string      `json:"parameter"`
	Entries    []entryJSON `json:"entries"`
	Functional []testJSON  `json:"functional,omitempty"`
}

type entryJSON struct {
	Test  testJSON `json:"test"`
	Value float64  `json:"value"`
	WCR   float64  `json:"wcr"`
	Class string   `json:"class"`
}

type testJSON struct {
	Name string      `json:"name"`
	Cond condJSON    `json:"cond"`
	Seq  [][3]uint32 `json:"seq"` // [op, addr, data]
}

type condJSON struct {
	VddV     float64 `json:"vdd_v"`
	TempC    float64 `json:"temp_c"`
	ClockMHz float64 `json:"clock_mhz"`
}

func testToJSON(t testgen.Test) testJSON {
	tj := testJSON{
		Name: t.Name,
		Cond: condJSON{VddV: t.Cond.VddV, TempC: t.Cond.TempC, ClockMHz: t.Cond.ClockMHz},
		Seq:  make([][3]uint32, len(t.Seq)),
	}
	for i, v := range t.Seq {
		tj.Seq[i] = [3]uint32{uint32(v.Op), v.Addr, v.Data}
	}
	return tj
}

func testFromJSON(tj testJSON) (testgen.Test, error) {
	t := testgen.Test{
		Name: tj.Name,
		Cond: testgen.Conditions{VddV: tj.Cond.VddV, TempC: tj.Cond.TempC, ClockMHz: tj.Cond.ClockMHz},
		Seq:  make(testgen.Sequence, len(tj.Seq)),
	}
	for i, v := range tj.Seq {
		if v[0] > uint32(testgen.OpRead) {
			return t, fmt.Errorf("core: test %s vector %d: invalid op %d", tj.Name, i, v[0])
		}
		t.Seq[i] = testgen.Vector{Op: testgen.OpKind(v[0]), Addr: v[1], Data: v[2]}
	}
	return t, nil
}

// Save writes the database as JSON.
func (d *Database) Save(w io.Writer) error {
	dj := databaseJSON{Parameter: d.Parameter.String()}
	for _, e := range d.Entries {
		dj.Entries = append(dj.Entries, entryJSON{
			Test:  testToJSON(e.Test),
			Value: e.Value,
			WCR:   e.WCR,
			Class: e.Class.String(),
		})
	}
	for _, t := range d.Functional {
		dj.Functional = append(dj.Functional, testToJSON(t))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dj)
}

// SaveFile writes the database to the named file.
func (d *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadDatabase reads a database from JSON.
func LoadDatabase(r io.Reader) (*Database, error) {
	var dj databaseJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, fmt.Errorf("core: decoding database: %w", err)
	}
	var param ate.Parameter
	switch dj.Parameter {
	case ate.TDQ.String():
		param = ate.TDQ
	case ate.Fmax.String():
		param = ate.Fmax
	case ate.VddMin.String():
		param = ate.VddMin
	default:
		return nil, fmt.Errorf("core: unknown parameter %q in database", dj.Parameter)
	}
	d := NewDatabase(param)
	for _, ej := range dj.Entries {
		t, err := testFromJSON(ej.Test)
		if err != nil {
			return nil, err
		}
		d.Add(Entry{Test: t, Value: ej.Value, WCR: ej.WCR, Class: wcr.Classify(ej.WCR)})
	}
	for _, tj := range dj.Functional {
		t, err := testFromJSON(tj)
		if err != nil {
			return nil, err
		}
		d.Functional = append(d.Functional, t)
	}
	return d, nil
}

// LoadDatabaseFile reads a database from the named file.
func LoadDatabaseFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDatabase(f)
}
