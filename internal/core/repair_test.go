package core

import (
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

// hotTestTouching builds a high-activity test that also reads the given
// addresses, so weak cells there are provoked and observed.
func hotTestTouching(addrs ...uint32) testgen.Test {
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 700)
	for i := 0; i < 150; i++ {
		base := uint32(4) // keep clear of the probed addresses' rows
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	for _, a := range addrs {
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: a, Data: 0x12345678},
			testgen.Vector{Op: testgen.OpRead, Addr: a},
		)
	}
	return testgen.Test{Name: "HOT", Seq: seq, Cond: testgen.NominalConditions()}
}

func TestRepairAndRetestFixesDevice(t *testing.T) {
	// Weak cells in two different rows of bank 0.
	die := dut.NewDie(0, dut.CornerTypical,
		dut.WithWeakCell(33, 1.85), // row 2
		dut.WithWeakCell(65, 1.85), // row 4
	)
	dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 5)

	rep, err := RepairAndRetest(tester, []testgen.Test{hotTestTouching(33, 65)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPass {
		t.Fatalf("device not repaired: %s", rep.Format())
	}
	if rep.TotalRepairs != 2 {
		t.Errorf("repaired %d rows, want 2", rep.TotalRepairs)
	}
	out := rep.Outcomes[0]
	if !out.FailedBefore || !out.PassesAfter {
		t.Errorf("outcome: %+v", out)
	}

	// The repair is visible on subsequent direct measurements too.
	ok, err := tester.FunctionalPass(hotTestTouching(33, 65))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("device still fails after the repair session")
	}
}

func TestRepairAndRetestCleanDevice(t *testing.T) {
	tester := newTester(t, 7)
	rep, err := RepairAndRetest(tester, []testgen.Test{hotTestTouching(10)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPass || rep.TotalRepairs != 0 {
		t.Errorf("clean device triggered repairs: %s", rep.Format())
	}
	if rep.Outcomes[0].FailedBefore {
		t.Error("clean device reported as failing")
	}
}

func TestRepairAndRetestExhaustsSpares(t *testing.T) {
	// More failing rows in one bank than spares: the session must report
	// exhaustion rather than loop forever.
	geomCols := dut.DefaultGeometry().Cols
	opts := []dut.DieOption{}
	addrs := []uint32{}
	for r := 0; r < dut.SpareRowsPerBank+2; r++ {
		a := uint32(r * geomCols)
		opts = append(opts, dut.WithWeakCell(a, 1.85))
		addrs = append(addrs, a)
	}
	die := dut.NewDie(0, dut.CornerTypical, opts...)
	dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 9)

	rep, err := RepairAndRetest(tester, []testgen.Test{hotTestTouching(addrs...)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllPass {
		t.Fatal("session claims success with more defects than spares")
	}
	out := rep.Outcomes[0]
	if !out.Exhausted {
		t.Errorf("exhaustion not reported: %+v", out)
	}
	if out.RowsRepaired != dut.SpareRowsPerBank {
		t.Errorf("repaired %d rows, want the full spare budget %d", out.RowsRepaired, dut.SpareRowsPerBank)
	}
	s := rep.Format()
	if !strings.Contains(s, "spares exhausted") {
		t.Errorf("report missing exhaustion: %s", s)
	}
}

func TestRepairAndRetestValidation(t *testing.T) {
	tester := newTester(t, 1)
	if _, err := RepairAndRetest(tester, nil); err == nil {
		t.Error("empty test list accepted")
	}
}
