package core

import (
	"strings"
	"testing"

	"repro/internal/testgen"
	"repro/internal/wcr"
)

func calmTestSeq() testgen.Test {
	seq := make(testgen.Sequence, 200)
	for i := range seq {
		seq[i] = testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 32)}
	}
	return testgen.Test{Name: "calm", Seq: seq, Cond: testgen.NominalConditions()}
}

func aggressiveTestSeq() testgen.Test {
	words := dutWords()
	seq := make(testgen.Sequence, 0, 800)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	return testgen.Test{Name: "aggressive", Seq: seq, Cond: testgen.NominalConditions()}
}

func dutWords() uint32 { return 4096 }

func TestDiagnosisOrdering(t *testing.T) {
	d, err := NewDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	limits := testgen.DefaultConditionLimits()
	calm, err := d.ExplainTest(calmTestSeq(), limits)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := d.ExplainTest(aggressiveTestSeq(), limits)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Severity <= calm.Severity {
		t.Errorf("aggressive severity %.3f not above calm %.3f", hot.Severity, calm.Severity)
	}
	if calm.Class != wcr.Pass {
		t.Errorf("calm test classified %v", calm.Class)
	}
	if hot.Class == wcr.Pass {
		t.Errorf("aggressive test classified %v (severity %.3f)", hot.Class, hot.Severity)
	}
}

func TestDiagnosisDriversNameTheCombination(t *testing.T) {
	d, err := NewDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	limits := testgen.DefaultConditionLimits()
	hot, err := d.ExplainTest(aggressiveTestSeq(), limits)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(hot.Drivers, ",")
	for _, want := range []string{"data-toggle", "coupling"} {
		if !strings.Contains(joined, want) {
			t.Errorf("drivers %v missing %q", hot.Drivers, want)
		}
	}
	s := hot.String()
	if !strings.Contains(s, "if ") || !strings.Contains(s, "target device-spec") {
		t.Errorf("explanation not in the paper's linguistic form: %q", s)
	}
}

func TestDiagnosisCalmHasNoDrivers(t *testing.T) {
	d, err := NewDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	calm, err := d.ExplainTest(calmTestSeq(), testgen.DefaultConditionLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(calm.Drivers) != 0 {
		t.Errorf("calm test has drivers %v", calm.Drivers)
	}
	if !strings.Contains(calm.String(), "no aggressive activity") {
		t.Errorf("calm explanation: %q", calm.String())
	}
}

func TestDiagnosisFeatureWidthCheck(t *testing.T) {
	d, err := NewDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Explain([]float64{1, 2}); err == nil {
		t.Error("short feature vector accepted")
	}
}

func TestDiagnosisAgreesWithMeasurement(t *testing.T) {
	// On the real device model, the rule base's ordering must agree with
	// the measured windows for clearly separated tests.
	tester := newTester(t, 5)
	d, err := NewDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	limits := testgen.DefaultConditionLimits()

	calm, hot := calmTestSeq(), aggressiveTestSeq()
	pc, err := tester.Profile(calm)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := tester.Profile(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !(ph.TDQWindowNS() < pc.TDQWindowNS()) {
		t.Fatal("measurement precondition broken")
	}
	ec, err := d.ExplainTest(calm, limits)
	if err != nil {
		t.Fatal(err)
	}
	eh, err := d.ExplainTest(hot, limits)
	if err != nil {
		t.Fatal(err)
	}
	if !(eh.Severity > ec.Severity) {
		t.Error("diagnosis ordering disagrees with measured windows")
	}
}
