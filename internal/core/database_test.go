package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

func sampleEntry(name string, w float64) Entry {
	return Entry{
		Test: testgen.Test{
			Name: name,
			Seq: testgen.Sequence{
				{Op: testgen.OpWrite, Addr: 1, Data: 0xFF},
				{Op: testgen.OpRead, Addr: 1},
			},
			Cond: testgen.NominalConditions(),
		},
		Value: 20 / w,
		WCR:   w,
		Class: wcr.Classify(w),
	}
}

func TestDatabaseAddAndWorst(t *testing.T) {
	db := NewDatabase(ate.TDQ)
	db.Add(sampleEntry("a", 0.7))
	db.Add(sampleEntry("b", 0.95))
	db.Add(sampleEntry("c", 0.6))
	if db.Len() != 3 {
		t.Fatalf("len = %d", db.Len())
	}
	worst, ok := db.Worst()
	if !ok || worst.Test.Name != "b" {
		t.Errorf("worst = %+v, %v", worst.Test.Name, ok)
	}
}

func TestDatabaseDedupKeepsWorse(t *testing.T) {
	db := NewDatabase(ate.TDQ)
	db.Add(sampleEntry("a", 0.7))
	db.Add(sampleEntry("a", 0.9))
	db.Add(sampleEntry("a", 0.8))
	if db.Len() != 1 {
		t.Fatalf("len = %d after duplicate adds", db.Len())
	}
	if db.Entries[0].WCR != 0.9 {
		t.Errorf("kept WCR %g, want the worse 0.9", db.Entries[0].WCR)
	}
}

func TestDatabaseSort(t *testing.T) {
	db := NewDatabase(ate.TDQ)
	db.Add(sampleEntry("a", 0.7))
	db.Add(sampleEntry("b", 0.95))
	db.Add(sampleEntry("c", 0.6))
	db.Sort()
	if db.Entries[0].Test.Name != "b" || db.Entries[2].Test.Name != "c" {
		t.Error("sort order wrong")
	}
	// Index still valid after sort: dedup continues to work.
	db.Add(sampleEntry("c", 0.99))
	if db.Len() != 3 {
		t.Error("index broken after sort")
	}
	if e := db.Entries[db.Len()-1]; e.Test.Name == "c" && e.WCR != 0.99 {
		t.Error("update after sort failed")
	}
}

func TestDatabaseEmptyWorst(t *testing.T) {
	db := NewDatabase(ate.TDQ)
	if _, ok := db.Worst(); ok {
		t.Error("empty database has a worst entry")
	}
}

func TestDatabaseJSONRoundTrip(t *testing.T) {
	db := NewDatabase(ate.TDQ)
	db.Add(sampleEntry("GA-1", 0.93))
	db.Add(sampleEntry("GA-2", 0.81))
	db.AddFunctionalFailure(testgen.Test{
		Name: "FF-1",
		Seq:  testgen.Sequence{{Op: testgen.OpRead, Addr: 2}},
		Cond: testgen.NominalConditions(),
	})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T_DQ") {
		t.Error("parameter name missing from JSON")
	}

	loaded, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Parameter != ate.TDQ {
		t.Error("parameter lost")
	}
	if loaded.Len() != 2 || len(loaded.Functional) != 1 {
		t.Fatalf("loaded %d entries, %d functional", loaded.Len(), len(loaded.Functional))
	}
	e := loaded.Entries[0]
	if e.Test.Name != "GA-1" || e.WCR != 0.93 || e.Class != wcr.Weakness {
		t.Errorf("entry mangled: %+v", e)
	}
	if len(e.Test.Seq) != 2 || e.Test.Seq[0].Op != testgen.OpWrite || e.Test.Seq[0].Data != 0xFF {
		t.Errorf("sequence mangled: %v", e.Test.Seq)
	}
	if e.Test.Cond != testgen.NominalConditions() {
		t.Errorf("conditions mangled: %+v", e.Test.Cond)
	}
}

func TestDatabaseFileRoundTrip(t *testing.T) {
	db := NewDatabase(ate.Fmax)
	db.Add(sampleEntry("x", 0.88))
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabaseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Parameter != ate.Fmax || loaded.Len() != 1 {
		t.Error("file round trip mangled database")
	}
}

func TestLoadDatabaseRejectsBadInput(t *testing.T) {
	if _, err := LoadDatabase(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadDatabase(bytes.NewBufferString(`{"parameter":"bogus"}`)); err == nil {
		t.Error("unknown parameter accepted")
	}
	bad := `{"parameter":"T_DQ","entries":[{"test":{"name":"x","cond":{},"seq":[[9,0,0]]},"wcr":1}]}`
	if _, err := LoadDatabase(bytes.NewBufferString(bad)); err == nil {
		t.Error("invalid op code accepted")
	}
}
