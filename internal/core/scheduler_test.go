package core

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// Scheduler equivalence: the persistent fleet (the default) and the frozen
// batch pool must produce bit-identical results AND byte-identical traces
// at every parallelism level — the fleet is a pure scheduling change.

// traceOptimizeSched is traceOptimize with an explicit scheduler.
func traceOptimizeSched(t *testing.T, seed int64, parallelism int, sched string) ([]byte, *OptimizationResult) {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("fig5", telemetry.NewTracer(&buf))
	cfg := quickConfig(seed)
	cfg.Parallelism = parallelism
	cfg.Scheduler = sched
	cfg.Telemetry = tel
	char, err := NewCharacterizer(cfg, newTester(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	defer char.Close()
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	res, err := char.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestSchedulerEquivalenceOptimize(t *testing.T) {
	for _, parallelism := range []int{1, 2, 8} {
		batchTrace, batchRes := traceOptimizeSched(t, 91, parallelism, SchedulerBatch)
		fleetTrace, fleetRes := traceOptimizeSched(t, 91, parallelism, SchedulerFleet)
		if len(batchTrace) == 0 {
			t.Fatal("batch run produced an empty trace")
		}
		if !bytes.Equal(batchTrace, fleetTrace) {
			t.Errorf("parallelism=%d: fleet trace differs from batch (%d vs %d bytes)",
				parallelism, len(fleetTrace), len(batchTrace))
		}
		if fleetRes.GA.Best.Fitness != batchRes.GA.Best.Fitness {
			t.Errorf("parallelism=%d: best fitness fleet %g, batch %g",
				parallelism, fleetRes.GA.Best.Fitness, batchRes.GA.Best.Fitness)
		}
		if fleetRes.GA.Evaluations != batchRes.GA.Evaluations ||
			fleetRes.Measurements != batchRes.Measurements {
			t.Errorf("parallelism=%d: evaluations/measurements fleet %d/%d, batch %d/%d",
				parallelism, fleetRes.GA.Evaluations, fleetRes.Measurements,
				batchRes.GA.Evaluations, batchRes.Measurements)
		}
		if fleetRes.CacheHits != batchRes.CacheHits || fleetRes.CacheMisses != batchRes.CacheMisses {
			t.Errorf("parallelism=%d: cache fleet %d/%d, batch %d/%d",
				parallelism, fleetRes.CacheHits, fleetRes.CacheMisses,
				batchRes.CacheHits, batchRes.CacheMisses)
		}
		fb, bb := fleetRes.Database.Entries, batchRes.Database.Entries
		if len(fb) != len(bb) {
			t.Fatalf("parallelism=%d: database sizes fleet %d, batch %d", parallelism, len(fb), len(bb))
		}
		for i := range bb {
			if fb[i].WCR != bb[i].WCR || fb[i].Test.Name != bb[i].Test.Name {
				t.Fatalf("parallelism=%d: database[%d] fleet %s/%g, batch %s/%g",
					parallelism, i, fb[i].Test.Name, fb[i].WCR, bb[i].Test.Name, bb[i].WCR)
			}
		}
	}
}

func TestSchedulerEquivalenceTable1(t *testing.T) {
	run := func(sched string) (*Table1, []byte) {
		var buf bytes.Buffer
		tel := telemetry.New("table1", telemetry.NewTracer(&buf))
		cfg := Table1Config{Flow: quickConfig(59), RandomTests: 30, MarchWindowWords: 40}
		cfg.Flow.Parallelism = 4
		cfg.Flow.Scheduler = sched
		cfg.Flow.Telemetry = tel
		tab, err := RunTable1(cfg, newTester(t, 59))
		if err != nil {
			t.Fatal(err)
		}
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return tab, buf.Bytes()
	}
	batch, batchTrace := run(SchedulerBatch)
	fleet, fleetTrace := run(SchedulerFleet)
	if !bytes.Equal(batchTrace, fleetTrace) {
		t.Errorf("Table 1 trace differs between schedulers (%d vs %d bytes)",
			len(fleetTrace), len(batchTrace))
	}
	if len(batch.Rows) != len(fleet.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(batch.Rows), len(fleet.Rows))
	}
	for i := range batch.Rows {
		if batch.Rows[i] != fleet.Rows[i] {
			t.Errorf("row %d differs:\nbatch %+v\nfleet %+v", i, batch.Rows[i], fleet.Rows[i])
		}
	}
	if batch.CacheHits != fleet.CacheHits || batch.CacheMisses != fleet.CacheMisses {
		t.Errorf("cache stats differ: batch %d/%d, fleet %d/%d",
			batch.CacheHits, batch.CacheMisses, fleet.CacheHits, fleet.CacheMisses)
	}
}

func TestSchedulerEquivalenceReplicated(t *testing.T) {
	run := func(sched string) *ReplicationReport {
		cfg := smallTable1Config(41)
		cfg.Flow.Scheduler = sched
		rep, err := RunTable1ReplicatedParallel(cfg, 41, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	batch := run(SchedulerBatch)
	fleet := run(SchedulerFleet)
	if batch.OrderingHeld != fleet.OrderingHeld || batch.NNGAInWeakness != fleet.NNGAInWeakness {
		t.Errorf("qualitative counts differ: batch %d/%d, fleet %d/%d",
			batch.OrderingHeld, batch.NNGAInWeakness, fleet.OrderingHeld, fleet.NNGAInWeakness)
	}
	if len(batch.Rows) != len(fleet.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(batch.Rows), len(fleet.Rows))
	}
	for i := range batch.Rows {
		if batch.Rows[i] != fleet.Rows[i] {
			t.Errorf("row %d differs:\nbatch %+v\nfleet %+v", i, batch.Rows[i], fleet.Rows[i])
		}
	}
}

func TestConfigRejectsUnknownScheduler(t *testing.T) {
	cfg := quickConfig(1)
	cfg.Scheduler = "warp"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown scheduler accepted")
	}
	for _, ok := range []string{"", SchedulerFleet, SchedulerBatch} {
		cfg.Scheduler = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("scheduler %q rejected: %v", ok, err)
		}
	}
}

func TestCharacterizerCloseIdempotent(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(7), newTester(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if f := char.Fleet(); f == nil {
		t.Fatal("default scheduler returned a nil fleet")
	}
	char.Close()
	char.Close()
	// Batch scheduler never creates a fleet.
	cfg := quickConfig(7)
	cfg.Scheduler = SchedulerBatch
	bchar, err := NewCharacterizer(cfg, newTester(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if bchar.Fleet() != nil {
		t.Error("batch scheduler returned a fleet")
	}
	bchar.Close()
}
