package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/parallel"
)

// Replication of the Table 1 experiment across seeds. A single run could
// reproduce the paper's ordering by luck; RunTable1Replicated repeats the
// whole comparison with independent randomness and reports per-row WCR
// statistics plus how often the paper's ordering held — the reproduction
// evidence EXPERIMENTS.md cites.

// RowStats summarizes one technique across replicas.
type RowStats struct {
	TestName        string
	MeanWCR, MinWCR float64
	MaxWCR          float64
	StdWCR          float64
	MeanValue       float64
}

// ReplicationReport aggregates the replicated comparison.
type ReplicationReport struct {
	Replicas int
	Rows     []RowStats
	// OrderingHeld counts replicas where WCR(March) < WCR(Random) <
	// WCR(NNGA) — the paper's qualitative claim.
	OrderingHeld int
	// NNGAInWeakness counts replicas whose NN+GA row landed in the
	// weakness band (0.8, 1.0], like the paper's 0.904.
	NNGAInWeakness int
}

// Format renders the replication summary.
func (r *ReplicationReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 replicated %d× (independent seeds)\n", r.Replicas)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %10s\n", "row", "meanWCR", "min", "max", "σ", "mean value")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f %10.2f\n",
			row.TestName, row.MeanWCR, row.MinWCR, row.MaxWCR, row.StdWCR, row.MeanValue)
	}
	fmt.Fprintf(&b, "ordering March < Random < NNGA held in %d/%d replicas\n", r.OrderingHeld, r.Replicas)
	fmt.Fprintf(&b, "NNGA row in the weakness band in %d/%d replicas\n", r.NNGAInWeakness, r.Replicas)
	return b.String()
}

// RunTable1Replicated runs the full Table 1 comparison n times with seeds
// baseSeed, baseSeed+1, … on fresh typical-corner devices and aggregates.
// Replicas run concurrently per the flow configuration's Parallelism knob.
func RunTable1Replicated(baseCfg Table1Config, baseSeed int64, n int) (*ReplicationReport, error) {
	return RunTable1ReplicatedParallel(baseCfg, baseSeed, n, baseCfg.Flow.Parallelism)
}

// RunTable1ReplicatedParallel is RunTable1Replicated with an explicit
// worker count (below 1 selects one per CPU). Every replica owns a fresh
// device and tester seeded only by its index, so the aggregated report is
// identical for any worker count. Under the (default) fleet scheduler the
// replicas dispatch onto one transient fleet; SchedulerBatch keeps the
// legacy per-call pool.
func RunTable1ReplicatedParallel(baseCfg Table1Config, baseSeed int64, n, workers int) (*ReplicationReport, error) {
	if baseCfg.Flow.useFleet() {
		f := parallel.NewFleet(parallel.Bound(workers, n))
		defer f.Close()
		return RunTable1ReplicatedOn(f, baseCfg, baseSeed, n)
	}
	return runTable1Replicated(baseCfg, baseSeed, n, func(count int, body func(i int) error) error {
		return parallel.ForEach(count, workers, body)
	})
}

// RunTable1ReplicatedOn runs the replicas on an existing persistent fleet
// (each replica still owns its fresh device/tester/flow, so the report is
// identical to every other scheduling form).
func RunTable1ReplicatedOn(f *parallel.Fleet, baseCfg Table1Config, baseSeed int64, n int) (*ReplicationReport, error) {
	return runTable1Replicated(baseCfg, baseSeed, n, func(count int, body func(i int) error) error {
		return parallel.ForEachOn(f, count, body)
	})
}

func runTable1Replicated(baseCfg Table1Config, baseSeed int64, n int, forEach func(n int, body func(i int) error) error) (*ReplicationReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one replica")
	}
	tables := make([]*Table1, n)
	err := forEach(n, func(i int) error {
		seed := baseSeed + int64(i)*7919
		cfg := baseCfg
		cfg.Flow.Seed = seed
		dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(i, dut.CornerTypical))
		if err != nil {
			return err
		}
		tester := ate.New(dev, seed)
		tab, err := RunTable1(cfg, tester)
		if err != nil {
			return fmt.Errorf("core: replica %d: %w", i, err)
		}
		tables[i] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &ReplicationReport{Replicas: n}
	var perRow [][]Table1Row
	for i, tab := range tables {
		if perRow == nil {
			perRow = make([][]Table1Row, len(tab.Rows))
		}
		if len(tab.Rows) != len(perRow) {
			return nil, fmt.Errorf("core: replica %d produced %d rows", i, len(tab.Rows))
		}
		for ri, row := range tab.Rows {
			perRow[ri] = append(perRow[ri], row)
		}
		if len(tab.Rows) == 3 {
			march, random, nnga := tab.Rows[0].WCR, tab.Rows[1].WCR, tab.Rows[2].WCR
			if march < random && random < nnga {
				rep.OrderingHeld++
			}
			if nnga > 0.8 && nnga <= 1.0 {
				rep.NNGAInWeakness++
			}
		}
	}

	for _, rows := range perRow {
		rs := RowStats{TestName: rows[0].TestName, MinWCR: math.Inf(1), MaxWCR: math.Inf(-1)}
		var sum, sumVal float64
		for _, row := range rows {
			sum += row.WCR
			sumVal += row.Value
			rs.MinWCR = math.Min(rs.MinWCR, row.WCR)
			rs.MaxWCR = math.Max(rs.MaxWCR, row.WCR)
		}
		rs.MeanWCR = sum / float64(len(rows))
		rs.MeanValue = sumVal / float64(len(rows))
		var ss float64
		for _, row := range rows {
			d := row.WCR - rs.MeanWCR
			ss += d * d
		}
		rs.StdWCR = math.Sqrt(ss / float64(len(rows)))
		rep.Rows = append(rep.Rows, rs)
	}
	return rep, nil
}
