package core

import (
	"path/filepath"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/fuzzy"
	"repro/internal/neural"
	"repro/internal/testgen"
)

// quickConfig returns a configuration small enough for unit tests but large
// enough to learn signal.
func quickConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.LearnTests = 120
	cfg.EnsembleSize = 2
	cfg.HiddenLayers = []int{12}
	cfg.CandidatePool = 300
	cfg.SeedCount = 10
	cfg.GA.PopSize = 10
	cfg.GA.Islands = 2
	cfg.GA.MaxGenerations = 10
	nominal := testgen.NominalConditions()
	cfg.FixedConditions = &nominal
	return cfg
}

func newTester(t *testing.T, seed int64) *ate.ATE {
	t.Helper()
	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		t.Fatal(err)
	}
	return ate.New(dev, seed)
}

func learnedCharacterizer(t *testing.T, seed int64) (*Characterizer, *LearningResult) {
	t.Helper()
	char, err := NewCharacterizer(quickConfig(seed), newTester(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := char.Learn()
	if err != nil {
		t.Fatal(err)
	}
	return char, res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig(1)
	bad.LearnTests = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny learning set accepted")
	}
	bad = DefaultConfig(1)
	bad.EnsembleSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("empty ensemble accepted")
	}
	bad = DefaultConfig(1)
	bad.CandidatePool = 5
	bad.SeedCount = 10
	if err := bad.Validate(); err == nil {
		t.Error("pool smaller than seed count accepted")
	}
}

func TestNewCharacterizerValidation(t *testing.T) {
	if _, err := NewCharacterizer(quickConfig(1), nil); err == nil {
		t.Error("nil ATE accepted")
	}
	bad := quickConfig(1)
	bad.SeedCount = 0
	if _, err := NewCharacterizer(bad, newTester(t, 1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLearnProducesEnsembleAndDSV(t *testing.T) {
	char, res := learnedCharacterizer(t, 41)
	if res.Ensemble == nil || res.Ensemble.Size() != 2 {
		t.Fatal("ensemble missing or wrong size")
	}
	if res.DSV.Len() != 120 {
		t.Errorf("DSV has %d measurements, want 120", res.DSV.Len())
	}
	if len(res.Dataset) < 100 {
		t.Errorf("dataset kept only %d samples", len(res.Dataset))
	}
	if len(res.Tests) != len(res.Dataset) {
		t.Error("tests and dataset misaligned")
	}
	if len(res.Reports) != 2 {
		t.Errorf("reports = %d", len(res.Reports))
	}
	if res.EnsembleValErr <= 0 || res.EnsembleValErr > 0.05 {
		t.Errorf("ensemble error %g implausible", res.EnsembleValErr)
	}
	if char.Learned() != res {
		t.Error("Learned() accessor mismatch")
	}
}

func TestLearnedNNPredictsSeverityOrdering(t *testing.T) {
	// The trained ensemble must rank a known-benign test clearly below a
	// known-aggressive test — the property the seed generator depends on.
	char, _ := learnedCharacterizer(t, 43)

	calm := make(testgen.Sequence, 200)
	for i := range calm {
		calm[i] = testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 64)}
	}
	calmSev, _, err := char.PredictSeverity(testgen.Test{Name: "calm", Seq: calm, Cond: testgen.NominalConditions()})
	if err != nil {
		t.Fatal(err)
	}

	hot := make(testgen.Sequence, 400)
	for i := 0; i < 200; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = 4094
		}
		hot[2*i] = testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0}
		hot[2*i+1] = testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF}
	}
	hotSev, _, err := char.PredictSeverity(testgen.Test{Name: "hot", Seq: hot, Cond: testgen.NominalConditions()})
	if err != nil {
		t.Fatal(err)
	}
	if hotSev <= calmSev {
		t.Errorf("NN severity ordering broken: aggressive %g ≤ benign %g", hotSev, calmSev)
	}
}

func TestPredictSeverityRequiresLearning(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(1), newTester(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := char.PredictSeverity(testgen.Test{}); err == nil {
		t.Error("prediction before learning accepted")
	}
	if _, err := char.ProposeSeeds(); err == nil {
		t.Error("seed proposal before learning accepted")
	}
}

func TestWeightFilePersistence(t *testing.T) {
	char, _ := learnedCharacterizer(t, 47)
	path := filepath.Join(t.TempDir(), "nn.json")
	if err := char.SaveWeights(path); err != nil {
		t.Fatal(err)
	}

	// A fresh characterizer (no learning) loads the weight file and can
	// propose seeds purely in software.
	char2, err := NewCharacterizer(quickConfig(47), newTester(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	if err := char2.LoadWeights(path); err != nil {
		t.Fatal(err)
	}
	seeds, err := char2.ProposeSeeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != quickConfig(47).SeedCount {
		t.Errorf("proposed %d seeds", len(seeds))
	}
}

func TestLoadWeightsRejectsWrongParameter(t *testing.T) {
	char, _ := learnedCharacterizer(t, 49)
	path := filepath.Join(t.TempDir(), "nn.json")
	if err := char.SaveWeights(path); err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(49)
	cfg.Parameter = ate.Fmax
	other, err := NewCharacterizer(cfg, newTester(t, 49))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadWeights(path); err == nil {
		t.Error("T_DQ weight file accepted by an Fmax flow")
	}
}

func TestSaveWeightsBeforeLearning(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(1), newTester(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := char.SaveWeights(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("saving before learning accepted")
	}
}

func TestNumericCodingAlsoLearns(t *testing.T) {
	cfg := quickConfig(53)
	cfg.Coding = fuzzy.CodingNumeric
	char, err := NewCharacterizer(cfg, newTester(t, 53))
	if err != nil {
		t.Fatal(err)
	}
	res, err := char.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ensemble.Outputs() != 1 {
		t.Errorf("numeric coding output width %d, want 1", res.Ensemble.Outputs())
	}
}

// TestLearnedImportanceNamesActivityFeatures cross-checks the black-box NN
// against the physics: permutation importance of the trained ensemble must
// rank switching-activity features above the sequence-length bookkeeping
// feature.
func TestLearnedImportanceNamesActivityFeatures(t *testing.T) {
	if testing.Short() {
		t.Skip("full learning")
	}
	_, res := learnedCharacterizer(t, 55)
	imps, err := neural.PermutationImportance(res.Ensemble, res.Dataset, 55, 3)
	if err != nil {
		t.Fatal(err)
	}
	rank := make(map[int]int, len(imps))
	for i, im := range imps {
		rank[im.Feature] = i
	}
	activity := []int{testgen.FeatTogglePeak, testgen.FeatToggleMean}
	for _, f := range activity {
		if rank[f] > rank[testgen.FeatSeqLen] {
			t.Errorf("feature %s ranks below seq_len — NN not using activity signal",
				testgen.FeatureNames()[f])
		}
	}
}

func TestCoderAccessor(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(1), newTester(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	coder := char.Coder()
	if coder == nil {
		t.Fatal("nil coder")
	}
	spec, _ := quickConfig(1).Parameter.SpecValue()
	if coder.Spec != spec {
		t.Errorf("coder spec %g", coder.Spec)
	}
}
