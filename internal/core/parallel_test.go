package core

import "testing"

// The tentpole guarantee of internal/parallel: any Parallelism value
// produces bit-identical results for the same seed. These tests pin that
// for the GA optimization path, the Table 1 comparison, and the replicated
// experiment, and pin the memo-cache's measurement savings.

func optimizeWith(t *testing.T, seed int64, parallelism int, disableCache bool) *OptimizationResult {
	t.Helper()
	cfg := quickConfig(seed)
	cfg.Parallelism = parallelism
	cfg.DisableMeasurementCache = disableCache
	char, err := NewCharacterizer(cfg, newTester(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	res, err := char.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizeDeterministicAcrossParallelism(t *testing.T) {
	serial := optimizeWith(t, 73, 1, false)
	for _, workers := range []int{2, 8} {
		par := optimizeWith(t, 73, workers, false)
		if par.GA.Best.Fitness != serial.GA.Best.Fitness {
			t.Errorf("parallelism=%d best fitness %g, serial %g", workers, par.GA.Best.Fitness, serial.GA.Best.Fitness)
		}
		if len(par.GA.BestHistory) != len(serial.GA.BestHistory) {
			t.Fatalf("parallelism=%d history length %d, serial %d", workers, len(par.GA.BestHistory), len(serial.GA.BestHistory))
		}
		for i := range serial.GA.BestHistory {
			if par.GA.BestHistory[i] != serial.GA.BestHistory[i] {
				t.Fatalf("parallelism=%d BestHistory[%d] = %g, serial %g", workers, i, par.GA.BestHistory[i], serial.GA.BestHistory[i])
			}
		}
		if par.GA.Evaluations != serial.GA.Evaluations {
			t.Errorf("parallelism=%d evaluations %d, serial %d", workers, par.GA.Evaluations, serial.GA.Evaluations)
		}
		if par.Measurements != serial.Measurements {
			t.Errorf("parallelism=%d measurements %d, serial %d", workers, par.Measurements, serial.Measurements)
		}
		if par.CacheHits != serial.CacheHits || par.CacheMisses != serial.CacheMisses {
			t.Errorf("parallelism=%d cache %d/%d, serial %d/%d",
				workers, par.CacheHits, par.CacheMisses, serial.CacheHits, serial.CacheMisses)
		}
		se, pe := serial.Database.Entries, par.Database.Entries
		if len(se) != len(pe) {
			t.Fatalf("parallelism=%d database size %d, serial %d", workers, len(pe), len(se))
		}
		for i := range se {
			if se[i].WCR != pe[i].WCR || se[i].Test.Name != pe[i].Test.Name {
				t.Fatalf("parallelism=%d database[%d] = %s/%g, serial %s/%g",
					workers, i, pe[i].Test.Name, pe[i].WCR, se[i].Test.Name, se[i].WCR)
			}
		}
	}
}

func TestProposeSeedsDeterministicAcrossParallelism(t *testing.T) {
	// The surrogate scoring pass fans ensemble voting across workers with
	// one scratch arena each; the ranked candidate list must stay
	// bit-identical for any worker count.
	proposeWith := func(parallelism int) []Candidate {
		cfg := quickConfig(41)
		cfg.Parallelism = parallelism
		char, err := NewCharacterizer(cfg, newTester(t, 41))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := char.Learn(); err != nil {
			t.Fatal(err)
		}
		cands, err := char.ProposeSeeds()
		if err != nil {
			t.Fatal(err)
		}
		return cands
	}
	serial := proposeWith(1)
	if len(serial) == 0 {
		t.Fatal("no candidates proposed")
	}
	for _, workers := range []int{2, 8} {
		par := proposeWith(workers)
		if len(par) != len(serial) {
			t.Fatalf("parallelism=%d proposed %d candidates, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Test.Name != serial[i].Test.Name ||
				par[i].Severity != serial[i].Severity ||
				par[i].Confidence != serial[i].Confidence {
				t.Fatalf("parallelism=%d candidate %d = %s/%g/%g, serial %s/%g/%g",
					workers, i, par[i].Test.Name, par[i].Severity, par[i].Confidence,
					serial[i].Test.Name, serial[i].Severity, serial[i].Confidence)
			}
		}
	}
}

func smallTable1Config(seed int64) Table1Config {
	return Table1Config{
		Flow:             quickConfig(seed),
		RandomTests:      80,
		MarchWindowWords: 30,
	}
}

func TestTable1DeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *Table1 {
		cfg := smallTable1Config(71)
		cfg.Flow.Parallelism = parallelism
		tab, err := RunTable1(cfg, newTester(t, 71))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial := run(1)
	par := run(8)
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], par.Rows[i]
		if s != p {
			t.Errorf("row %d differs:\nserial   %+v\nparallel %+v", i, s, p)
		}
	}
}

func TestReplicatedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *ReplicationReport {
		rep, err := RunTable1ReplicatedParallel(smallTable1Config(41), 41, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	par := run(4)
	if serial.OrderingHeld != par.OrderingHeld || serial.NNGAInWeakness != par.NNGAInWeakness {
		t.Errorf("qualitative counts differ: serial %d/%d, parallel %d/%d",
			serial.OrderingHeld, serial.NNGAInWeakness, par.OrderingHeld, par.NNGAInWeakness)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != par.Rows[i] {
			t.Errorf("row %d stats differ:\nserial   %+v\nparallel %+v", i, serial.Rows[i], par.Rows[i])
		}
	}
}

func TestMeasurementCacheMemoizes(t *testing.T) {
	cfg := quickConfig(11)
	cfg.Parallelism = 3
	char, err := NewCharacterizer(cfg, newTester(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	eval := newParallelEvaluator(char)
	tests := char.Generator().Batch(5)
	// Duplicate content under a different name must share one measurement.
	dup := tests[2].Clone()
	dup.Name = "duplicate-of-2"
	tests = append(tests, dup)

	first, err := eval.FitnessBatch(tests)
	if err != nil {
		t.Fatal(err)
	}
	if first[5] != first[2] {
		t.Errorf("structural duplicate measured differently: %g vs %g", first[5], first[2])
	}
	if eval.evaluations != 5 {
		t.Errorf("first batch performed %d searches, want 5 (dedupe)", eval.evaluations)
	}

	before := char.ATE().Stats().Measurements
	second, err := eval.FitnessBatch(tests)
	if err != nil {
		t.Fatal(err)
	}
	if spent := char.ATE().Stats().Measurements - before; spent != 0 {
		t.Errorf("re-evaluating memoized tests spent %d ATE measurements", spent)
	}
	for i := range first {
		if second[i] != first[i] {
			t.Errorf("memoized fitness %d changed: %g vs %g", i, second[i], first[i])
		}
	}
	if eval.cacheHits() < int64(len(tests)) {
		t.Errorf("cache hits = %d, want at least %d", eval.cacheHits(), len(tests))
	}
}

func TestMeasurementCacheReducesGAWork(t *testing.T) {
	cached := optimizeWith(t, 73, 4, false)
	uncached := optimizeWith(t, 73, 4, true)
	if cached.CacheHits == 0 {
		t.Error("GA run produced no cache hits; duplicate individuals were expected")
	}
	if cached.Measurements >= uncached.Measurements {
		t.Errorf("cache did not reduce ATE measurements: cached %d, uncached %d",
			cached.Measurements, uncached.Measurements)
	}
	if uncached.CacheHits != 0 {
		t.Errorf("disabled cache reported %d hits", uncached.CacheHits)
	}
}

// TestParallelEvaluatorFixedConditions guards the GA contract that fixed
// conditions flow into every measured test (Table 1 pins Vdd 1.8 V).
func TestParallelEvaluatorFixedConditions(t *testing.T) {
	cfg := quickConfig(13)
	if cfg.FixedConditions == nil {
		t.Fatal("quickConfig should pin conditions")
	}
	char, err := NewCharacterizer(cfg, newTester(t, 13))
	if err != nil {
		t.Fatal(err)
	}
	eval := newParallelEvaluator(char)
	tt := char.Generator().Next()
	if tt.Cond != *cfg.FixedConditions {
		t.Fatalf("generator ignored fixed conditions: %+v", tt.Cond)
	}
	if _, err := eval.Fitness(tt); err != nil {
		t.Fatal(err)
	}
	if eval.evaluations != 1 {
		t.Errorf("single Fitness performed %d searches", eval.evaluations)
	}
}
