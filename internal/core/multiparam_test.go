package core

import (
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

func TestMultiCharacterizeAllParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("three full flows")
	}
	tester := newTester(t, 31)
	rep, err := MultiCharacterize(quickConfig(31), tester, []ate.Parameter{ate.TDQ, ate.Fmax, ate.VddMin})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("%d outcomes", len(rep.Outcomes))
	}
	seen := map[ate.Parameter]bool{}
	for _, o := range rep.Outcomes {
		seen[o.Parameter] = true
		if o.Worst.Test.Name == "" {
			t.Errorf("%s: no worst test", o.Parameter)
		}
		if o.Worst.WCR <= 0 {
			t.Errorf("%s: WCR %g", o.Parameter, o.Worst.WCR)
		}
		if o.Measurements <= 0 {
			t.Errorf("%s: no measurements accounted", o.Parameter)
		}
		if o.Database.Parameter != o.Parameter {
			t.Errorf("%s: database parameter mismatch", o.Parameter)
		}
	}
	if len(seen) != 3 {
		t.Error("parameters not all distinct")
	}
	if _, ok := rep.WorstOverall(); !ok {
		t.Error("no overall worst")
	}
	s := rep.Format()
	for _, want := range []string{"Multi-parameter", "T_DQ", "Fmax", "Vddmin", "diagnosis:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMultiCharacterizeEmptyParams(t *testing.T) {
	tester := newTester(t, 1)
	if _, err := MultiCharacterize(quickConfig(1), tester, nil); err == nil {
		t.Error("empty parameter list accepted")
	}
}

func TestWorstOverallEmpty(t *testing.T) {
	m := &MultiReport{}
	if _, ok := m.WorstOverall(); ok {
		t.Error("empty report has a worst outcome")
	}
}

func TestFunctionalScreenSeparatesFailures(t *testing.T) {
	// A die with a weak cell at a hot address: high-activity tests that
	// read it corrupt and must move to the functional list.
	die := dut.NewDie(0, dut.CornerTypical, dut.WithWeakCell(1, 1.82))
	dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
	if err != nil {
		t.Fatal(err)
	}
	tester := ate.New(dev, 3)

	words := dev.Geometry().Words()
	hotSeq := make(testgen.Sequence, 0, 604)
	for i := 0; i < 150; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		hotSeq = append(hotSeq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	hotSeq = append(hotSeq, testgen.Vector{Op: testgen.OpRead, Addr: 1})
	// The calm test stays away from the weak address entirely.
	calmSeq := make(testgen.Sequence, 200)
	for i := range calmSeq {
		calmSeq[i] = testgen.Vector{Op: testgen.OpRead, Addr: uint32(i%16 + 64)}
	}

	db := NewDatabase(ate.TDQ)
	db.Add(Entry{Test: testgen.Test{Name: "hot", Seq: hotSeq, Cond: testgen.NominalConditions()}, WCR: 0.95, Value: 21, Class: wcr.Weakness})
	db.Add(Entry{Test: testgen.Test{Name: "calm", Seq: calmSeq, Cond: testgen.NominalConditions()}, WCR: 0.6, Value: 33, Class: wcr.Pass})

	fails, err := FunctionalScreen(tester, db)
	if err != nil {
		t.Fatal(err)
	}
	if fails != 1 {
		t.Fatalf("functional fails = %d, want 1", fails)
	}
	if db.Len() != 1 || db.Entries[0].Test.Name != "calm" {
		t.Errorf("parametric entries after screen: %d", db.Len())
	}
	if len(db.Functional) != 1 || db.Functional[0].Name != "hot" {
		t.Errorf("functional list: %v", db.Functional)
	}
}

func TestFunctionalScreenNilDatabase(t *testing.T) {
	tester := newTester(t, 1)
	if _, err := FunctionalScreen(tester, nil); err == nil {
		t.Error("nil database accepted")
	}
}
