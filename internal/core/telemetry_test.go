package core

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// The telemetry determinism contract: instrumented pipelines emit events
// only from deterministic program points with logical-counter payloads, so
// the JSONL trace is byte-identical for any Parallelism. These tests pin
// that for the fig. 5 optimization flow and the Table 1 comparison, and
// pin the run-report invariants (phase partition, cache effectiveness).

// traceOptimize runs the learn+optimize flow with tracing and returns the
// raw JSONL bytes plus the end-of-run report.
func traceOptimize(t *testing.T, seed int64, parallelism int) ([]byte, *telemetry.Report) {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New("fig5", telemetry.NewTracer(&buf))
	cfg := quickConfig(seed)
	cfg.Parallelism = parallelism
	cfg.Telemetry = tel
	tester := newTester(t, seed)
	char, err := NewCharacterizer(cfg, tester)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	if _, err := char.Optimize(); err != nil {
		t.Fatal(err)
	}
	rep := tel.Report(telCost(tester.Stats()))
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

func TestOptimizeTraceIdenticalAcrossParallelism(t *testing.T) {
	serial, _ := traceOptimize(t, 91, 1)
	if len(serial) == 0 {
		t.Fatal("serial run produced an empty trace")
	}
	for _, workers := range []int{2, 8} {
		par, _ := traceOptimize(t, 91, workers)
		if !bytes.Equal(serial, par) {
			t.Errorf("parallelism=%d trace differs from serial (%d vs %d bytes)",
				workers, len(par), len(serial))
		}
	}
}

func TestTable1TraceIdenticalAcrossParallelism(t *testing.T) {
	run := func(workers int) []byte {
		var buf bytes.Buffer
		tel := telemetry.New("table1", telemetry.NewTracer(&buf))
		cfg := Table1Config{Flow: quickConfig(59), RandomTests: 30, MarchWindowWords: 40}
		cfg.Flow.Parallelism = workers
		cfg.Flow.Telemetry = tel
		if _, err := RunTable1(cfg, newTester(t, 59)); err != nil {
			t.Fatal(err)
		}
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("serial run produced an empty trace")
	}
	for _, workers := range []int{2, 8} {
		if par := run(workers); !bytes.Equal(serial, par) {
			t.Errorf("parallelism=%d Table 1 trace differs from serial (%d vs %d bytes)",
				workers, len(par), len(serial))
		}
	}
}

func TestRunReportInvariants(t *testing.T) {
	_, rep := traceOptimize(t, 91, 2)

	if rep.CacheHits == 0 {
		t.Error("fig. 5 run recorded no cache hits; the memo-cache should absorb GA duplicates")
	}
	if rate := rep.CacheHitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("cache hit rate = %v, want in (0, 1)", rate)
	}
	if rep.Total.Measurements == 0 {
		t.Fatal("report total has no measurements")
	}
	// The phase breakdown (learn / propose-seeds / optimize, plus any
	// unattributed remainder) must partition the tester's total exactly.
	if got := rep.PhaseMeasurements(); got != rep.Total.Measurements {
		t.Errorf("phase measurements sum to %d, tester total is %d", got, rep.Total.Measurements)
	}
	names := map[string]bool{}
	for _, p := range rep.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"learn", "propose-seeds", "optimize"} {
		if !names[want] {
			t.Errorf("report is missing phase %q (has %v)", want, names)
		}
	}
	if rep.MeasurementsSaved() == 0 {
		t.Error("SUTP + cache saved no measurements vs the full-range baseline")
	}
	if rep.Searches == 0 || rep.SearchMeasurements == 0 {
		t.Error("report recorded no searches")
	}
}

func TestCacheStatsSurfaced(t *testing.T) {
	cfg := quickConfig(91)
	cfg.Parallelism = 1
	char, err := NewCharacterizer(cfg, newTester(t, 91))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := char.CacheStats(); h != 0 || m != 0 {
		t.Errorf("cache stats before any run = %d/%d, want 0/0", h, m)
	}
	if _, err := char.Learn(); err != nil {
		t.Fatal(err)
	}
	opt, err := char.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := char.CacheStats()
	if hits != opt.CacheHits || misses != opt.CacheMisses {
		t.Errorf("CacheStats() = %d/%d, OptimizationResult says %d/%d",
			hits, misses, opt.CacheHits, opt.CacheMisses)
	}
	if hits == 0 {
		t.Error("no cache hits surfaced")
	}
}
