package core

import (
	"fmt"
	"sort"

	"repro/internal/genetic"
	"repro/internal/neural"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

// Candidate is one software-generated test with its NN-predicted severity
// (a WCR estimate) and the voting machine's confidence.
type Candidate struct {
	Test       testgen.Test
	Severity   float64
	Confidence float64
}

// ProposeSeeds is the fuzzy-neural network test generator of fig. 5 step 1:
// it draws CandidatePool random tests, ranks them purely in software by the
// ensemble's predicted severity (no ATE measurement), and returns the top
// SeedCount as the "sub-optimal tests selected by fuzzy-neural network test
// generator based on its previous learning experience". Ranking breaks
// severity ties toward higher confidence.
//
// Candidate generation is serial (the generator owns one random stream),
// but the surrogate scoring fans across the worker pool: each worker votes
// with its own ensemble scratch arena (the trained weights are read-only),
// writing severities into index-addressed slots, so the ranking is
// bit-identical for any Parallelism.
func (c *Characterizer) ProposeSeeds() ([]Candidate, error) {
	if c.learned == nil || c.learned.Ensemble == nil {
		return nil, fmt.Errorf("core: no trained ensemble; run Learn or LoadWeights first")
	}
	ph := c.tel().StartPhase("propose-seeds")
	before := c.ate.Stats()
	defer func() { ph.End(telDelta(before, c.ate.Stats())) }()

	limits := c.gen.Limits()
	ens := c.learned.Ensemble
	pool := make([]Candidate, c.cfg.CandidatePool)
	feats := make([][]float64, c.cfg.CandidatePool)
	for i := range pool {
		t := c.gen.Next()
		pool[i].Test = t
		feats[i] = testgen.ExtractFeatures(t, limits)
	}
	score := func(s *neural.EnsembleScratch, i int) error {
		pred, conf, err := ens.VoteInto(s, feats[i])
		if err != nil {
			return fmt.Errorf("core: scoring candidate %d: %w", i, err)
		}
		pool[i].Severity = c.coder.Severity(pred)
		pool[i].Confidence = conf
		return nil
	}
	var err error
	if f := c.Fleet(); f != nil {
		// Fleet path: vote scratches are memoized per persistent worker, so
		// repeated proposal rounds (multi-era flows, Table 1) reuse them.
		if c.voteScratch == nil {
			c.voteScratch = make([]*neural.EnsembleScratch, f.Size())
		}
		err = parallel.RunOn(f, len(pool), func(w int) (*neural.EnsembleScratch, error) {
			if c.voteScratch[w] == nil {
				c.voteScratch[w] = ens.NewScratch()
			}
			return c.voteScratch[w], nil
		}, score)
	} else {
		err = parallel.Run(len(pool), c.cfg.Parallelism,
			func(int) (*neural.EnsembleScratch, error) { return ens.NewScratch(), nil },
			score)
	}
	if err != nil {
		return nil, err
	}
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].Severity != pool[j].Severity {
			return pool[i].Severity > pool[j].Severity
		}
		return pool[i].Confidence > pool[j].Confidence
	})
	if len(pool) > c.cfg.SeedCount {
		pool = pool[:c.cfg.SeedCount]
	}
	if len(pool) > 0 {
		ph.Span().Event("seeds",
			telemetry.I("pool", c.cfg.CandidatePool),
			telemetry.I("selected", len(pool)),
			telemetry.F("top_severity", pool[0].Severity),
		)
		c.tel().Registry().Gauge("seed_top_severity").Set(pool[0].Severity)
	}
	return pool, nil
}

// SeedsForGA converts ranked candidates into GA seeds.
func SeedsForGA(cands []Candidate) []genetic.Seed {
	seeds := make([]genetic.Seed, len(cands))
	for i, cand := range cands {
		seeds[i] = genetic.Seed{Seq: cand.Test.Seq, Cond: cand.Test.Cond}
	}
	return seeds
}

// PredictSeverity scores one test in software (no measurement): the NN
// classification task of the operation phase.
func (c *Characterizer) PredictSeverity(t testgen.Test) (severity, confidence float64, err error) {
	if c.learned == nil || c.learned.Ensemble == nil {
		return 0, 0, fmt.Errorf("core: no trained ensemble; run Learn or LoadWeights first")
	}
	feat := testgen.ExtractFeatures(t, c.gen.Limits())
	pred, conf, err := c.learned.Ensemble.Vote(feat)
	if err != nil {
		return 0, 0, err
	}
	return c.coder.Severity(pred), conf, nil
}
