package core

import (
	"sort"
	"testing"

	"repro/internal/wcr"
)

func TestProposeSeedsRankedBySeverity(t *testing.T) {
	char, _ := learnedCharacterizer(t, 61)
	cands, err := char.ProposeSeeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != char.Config().SeedCount {
		t.Fatalf("got %d candidates", len(cands))
	}
	if !sort.SliceIsSorted(cands, func(i, j int) bool {
		return cands[i].Severity >= cands[j].Severity
	}) {
		t.Error("candidates not sorted by severity")
	}
	for _, c := range cands {
		if c.Confidence <= 0 || c.Confidence > 1 {
			t.Errorf("confidence %g out of range", c.Confidence)
		}
		if len(c.Test.Seq) == 0 {
			t.Error("candidate with empty sequence")
		}
	}
}

func TestSeedsOutrankRandomPopulation(t *testing.T) {
	// The NN-selected seeds must have higher *measured* severity on
	// average than a random draw — the point of fig. 5 step 1.
	char, _ := learnedCharacterizer(t, 63)
	cands, err := char.ProposeSeeds()
	if err != nil {
		t.Fatal(err)
	}
	spec, isMin := char.Config().Parameter.SpecValue()

	measure := func(tests []Candidate) float64 {
		sum := 0.0
		for _, c := range tests {
			p, err := char.ATE().Profile(c.Test)
			if err != nil {
				t.Fatal(err)
			}
			sum += wcr.For(p.TDQWindowNS(), spec, isMin)
		}
		return sum / float64(len(tests))
	}
	seedWCR := measure(cands)

	randTests := make([]Candidate, len(cands))
	for i := range randTests {
		randTests[i] = Candidate{Test: char.Generator().Next()}
	}
	randWCR := measure(randTests)

	if seedWCR <= randWCR {
		t.Errorf("NN seeds mean WCR %.3f not above random %.3f", seedWCR, randWCR)
	}
}

func TestOptimizeFindsWorseThanRandom(t *testing.T) {
	char, _ := learnedCharacterizer(t, 65)
	opt, err := char.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	best, ok := opt.Database.Worst()
	if !ok {
		t.Fatal("empty worst-case database")
	}
	if best.WCR < 0.75 {
		t.Errorf("GA best WCR %.3f; expected the weakness region (> 0.75)", best.WCR)
	}
	if best.WCR != opt.GA.Best.Fitness {
		t.Errorf("database best %.3f disagrees with GA best %.3f", best.WCR, opt.GA.Best.Fitness)
	}
	if opt.Measurements <= 0 {
		t.Error("no measurements accounted")
	}
	// Database entries must be sorted worst-first and well-formed.
	for i, e := range opt.Database.Entries {
		if i > 0 && e.WCR > opt.Database.Entries[i-1].WCR {
			t.Fatal("database not sorted")
		}
		if e.Class != wcr.Classify(e.WCR) {
			t.Error("entry class inconsistent")
		}
		if e.Value <= 0 {
			t.Error("entry value missing")
		}
	}
}

func TestOptimizeFromExplicitSeeds(t *testing.T) {
	char, _ := learnedCharacterizer(t, 67)
	// Random seeds (ablation: no NN guidance).
	res, err := char.OptimizeFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GA.Best == nil {
		t.Fatal("no best individual")
	}
}

func TestValueFromWCRInversion(t *testing.T) {
	// valueFromWCR must invert eqs. 5/6.
	if got := valueFromWCR(0.904, 20, true); got < 22.0 || got > 22.3 {
		t.Errorf("min-spec inversion: %g, want ≈22.12", got)
	}
	if got := valueFromWCR(0.5, 20, false); got != 10 {
		t.Errorf("max-spec inversion: %g, want 10", got)
	}
	if got := valueFromWCR(0, 20, true); got != 0 {
		t.Errorf("zero WCR inversion: %g", got)
	}
}
