package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/dut"
	"repro/internal/proptest"
	"repro/internal/wcr"
)

// The frozen legacy reference: screenDie in a serial per-die loop is the
// pre-streaming implementation. Every streamed configuration must
// reproduce its per-die outcomes bit for bit.
func TestScreenLotStreamMatchesLegacyPerDieLoop(t *testing.T) {
	tests := lotTests(t)
	dies := dut.NewDieLot(31, 10)
	geom := dut.DefaultGeometry()
	const seed = 31

	want := make([]DieResult, len(dies))
	wantCost := make([]ate.Stats, len(dies))
	for i, die := range dies {
		dr, cost, err := screenDie(ate.TDQ, tests, die, geom, seed+int64(die.ID))
		if err != nil {
			t.Fatal(err)
		}
		want[i], wantCost[i] = dr, cost
	}

	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{0, 1, 3, 64} {
			rep, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies), geom, seed, LotOptions{
				Workers: workers, BatchSize: batch, RetainDies: true,
			})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if len(rep.Dies) != len(want) || rep.DieCount != len(want) {
				t.Fatalf("workers=%d batch=%d: %d dies (count %d)", workers, batch, len(rep.Dies), rep.DieCount)
			}
			var totalMeas int64
			for i := range want {
				if rep.Dies[i] != want[i] {
					t.Errorf("workers=%d batch=%d die %d: %+v, legacy %+v", workers, batch, i, rep.Dies[i], want[i])
				}
				totalMeas += wantCost[i].Measurements
			}
			if rep.Measurements != totalMeas {
				t.Errorf("workers=%d batch=%d: measurements %d, legacy %d", workers, batch, rep.Measurements, totalMeas)
			}
		}
	}
}

// Full-report bit-identity across worker counts, batch sizes and cache
// cold/warm — the acceptance criterion of the streamed pipeline.
func TestScreenLotStreamReportInvariance(t *testing.T) {
	tests := lotTests(t)
	lot, err := dut.NewWaferLot(5, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	geom := dut.DefaultGeometry()
	const seed = 37

	baseline, err := ScreenLotStream(ate.TDQ, tests, lot, geom, seed, LotOptions{Workers: 1, RetainDies: true})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.DieCount != lot.Len() {
		t.Fatalf("DieCount = %d, want %d", baseline.DieCount, lot.Len())
	}

	dir := t.TempDir()
	configs := []struct {
		name    string
		workers int
		batch   int
		cached  bool
	}{
		{"w2", 2, 0, false},
		{"w8-smallbatch", 8, 2, false},
		{"w4-cold", 4, 0, true}, // populates the disk cache
		{"w1-warm", 1, 5, true}, // must serve from disk, bit-identical
		{"w8-warm", 8, 64, true},
	}
	for _, cfg := range configs {
		opts := LotOptions{Workers: cfg.workers, BatchSize: cfg.batch, RetainDies: true}
		if cfg.cached {
			store, err := cachestore.Open(dir, 42)
			if err != nil {
				t.Fatal(err)
			}
			opts.Cache = store
		}
		rep, err := ScreenLotStream(ate.TDQ, tests, lot, geom, seed, opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if !reflect.DeepEqual(rep, baseline) {
			t.Errorf("%s: report differs from baseline\n got: %+v\nwant: %+v", cfg.name, rep, baseline)
		}
	}

	// The final warm run must have served every die from disk.
	store, err := cachestore.Open(dir, 42)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ScreenLotStream(ate.TDQ, tests, lot, geom, seed, LotOptions{
		Workers: 2, RetainDies: true, Cache: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, baseline) {
		t.Error("warm report differs from baseline")
	}
	st := store.Stats()
	if st.Hits != int64(lot.Len()) || st.Misses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want %d / 0", st.Hits, st.Misses, lot.Len())
	}
}

// A partially warm cache serves the overlap and computes the rest; the
// report still matches an all-cold run.
func TestScreenLotStreamPartialWarm(t *testing.T) {
	tests := lotTests(t)[:2]
	dies := dut.NewDieLot(41, 8)
	geom := dut.DefaultGeometry()
	dir := t.TempDir()
	const seed = 41

	s1, err := cachestore.Open(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies[:5]), geom, seed, LotOptions{Cache: s1}); err != nil {
		t.Fatal(err)
	}

	s2, err := cachestore.Open(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies), geom, seed, LotOptions{RetainDies: true})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies), geom, seed, LotOptions{RetainDies: true, Cache: s2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, mixed) {
		t.Error("partially warm report differs from cold")
	}
	st := s2.Stats()
	if st.Hits != 5 || st.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 5/3", st.Hits, st.Misses)
	}
}

// Cache keys are content-addressed: a different seed, test set or die must
// never hit another configuration's entries.
func TestScreenLotStreamCacheKeyedByContent(t *testing.T) {
	tests := lotTests(t)[:2]
	dies := dut.NewDieLot(43, 4)
	geom := dut.DefaultGeometry()
	dir := t.TempDir()

	s1, _ := cachestore.Open(dir, 7)
	if _, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies), geom, 43, LotOptions{Cache: s1}); err != nil {
		t.Fatal(err)
	}

	// Different base seed → different measurement noise → no hits allowed.
	s2, _ := cachestore.Open(dir, 7)
	if _, err := ScreenLotStream(ate.TDQ, tests, dut.LotSlice(dies), geom, 44, LotOptions{Cache: s2}); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Hits != 0 {
		t.Errorf("cross-seed cache hits: %d", st.Hits)
	}

	// Different test subset → different outcomes → no hits allowed.
	s3, _ := cachestore.Open(dir, 7)
	if _, err := ScreenLotStream(ate.TDQ, tests[:1], dut.LotSlice(dies), geom, 43, LotOptions{Cache: s3}); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Hits != 0 {
		t.Errorf("cross-test-set cache hits: %d", st.Hits)
	}
}

// Streamed fab-scale mode: per-die results dropped, aggregates intact.
func TestScreenLotStreamUnretained(t *testing.T) {
	tests := lotTests(t)[:2]
	lot, err := dut.NewWaferLot(3, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	geom := dut.DefaultGeometry()

	full, err := ScreenLotStream(ate.TDQ, tests, lot, geom, 3, LotOptions{Workers: 2, RetainDies: true})
	if err != nil {
		t.Fatal(err)
	}
	lean, err := ScreenLotStream(ate.TDQ, tests, lot, geom, 3, LotOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lean.Dies != nil {
		t.Errorf("unretained run kept %d per-die results", len(lean.Dies))
	}
	if lean.DieCount != 30 {
		t.Errorf("DieCount = %d", lean.DieCount)
	}
	// Everything except Dies must match the retained run.
	full.Dies = nil
	if !reflect.DeepEqual(full, lean) {
		t.Errorf("aggregates differ:\n got: %+v\nwant: %+v", lean, full)
	}
	if lean.Drift.N != 30 {
		t.Errorf("drift over %d dies", lean.Drift.N)
	}
}

func TestScreenLotStreamValidation(t *testing.T) {
	if _, err := ScreenLotStream(ate.TDQ, nil, dut.LotSlice(dut.NewDieLot(1, 2)), dut.DefaultGeometry(), 1, LotOptions{}); err == nil {
		t.Error("empty test set accepted")
	}
	if _, err := ScreenLotStream(ate.TDQ, lotTests(t), dut.LotSlice(nil), dut.DefaultGeometry(), 1, LotOptions{}); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := ScreenLotStream(ate.TDQ, lotTests(t), nil, dut.DefaultGeometry(), 1, LotOptions{}); err == nil {
		t.Error("nil source accepted")
	}
}

// Die-record round-trip closure over adversarial values, plus rejection of
// truncations and version flips.
func TestDieRecordRoundTrip(t *testing.T) {
	proptest.Check(t, 60, func(pt *proptest.T) {
		dr := DieResult{
			DieID:           pt.Intn(1 << 20),
			Corner:          dut.Corner(pt.Intn(3)),
			WorstTrip:       pt.FiniteFloat(),
			WorstTest:       pt.String("abcXYZ0123-_@", 40),
			WCR:             pt.FiniteFloat(),
			Class:           wcr.Class(pt.Intn(3)),
			FunctionalFails: pt.Intn(100),
		}
		var cost ate.Stats
		cost.Measurements = int64(pt.Intn(1 << 30))
		cost.VectorsApplied = int64(pt.Intn(1 << 30))
		cost.TestTimeSec = pt.Float64Range(0, 1e6)
		cost.Profiles = int64(pt.Intn(1 << 20))
		for i := range cost.PerParam {
			cost.PerParam[i] = int64(pt.Intn(1 << 20))
		}
		cost.Functional = int64(pt.Intn(1 << 20))

		raw := encodeDieRecord(dr, cost)
		got, gotCost, ok := decodeDieRecord(raw)
		if !ok {
			pt.Fatalf("decode failed")
		}
		// NaN-tolerant comparison via bit patterns.
		if got.DieID != dr.DieID || got.Corner != dr.Corner || got.WorstTest != dr.WorstTest ||
			got.Class != dr.Class || got.FunctionalFails != dr.FunctionalFails ||
			math.Float64bits(got.WorstTrip) != math.Float64bits(dr.WorstTrip) ||
			math.Float64bits(got.WCR) != math.Float64bits(dr.WCR) {
			pt.Fatalf("result round-trip: %+v != %+v", got, dr)
		}
		if gotCost != cost {
			pt.Fatalf("cost round-trip: %+v != %+v", gotCost, cost)
		}

		// Any truncation is a clean miss, never garbage.
		if len(raw) > 0 {
			cut := pt.Intn(len(raw))
			if _, _, ok := decodeDieRecord(raw[:cut]); ok {
				pt.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
		// Trailing junk and version flips are misses too.
		if _, _, ok := decodeDieRecord(append(append([]byte(nil), raw...), 0)); ok {
			pt.Fatalf("trailing byte accepted")
		}
		flip := append([]byte(nil), raw...)
		flip[0] ^= 0xFF
		if _, _, ok := decodeDieRecord(flip); ok {
			pt.Fatalf("version flip accepted")
		}
	})
}
