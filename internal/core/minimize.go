package core

import (
	"fmt"

	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// Worst-case test minimization. The paper ends the flow with "final set of
// worst case tests can be re-simulated or analyzed in detail with ATE
// (e.g. wafer probing analysis) to localize the design weakness
// efficiently" (§2). GA-evolved sequences carry hundreds of vectors of
// evolutionary debris around the provoking core; Minimize shrinks a test
// to a short sequence that still provokes (approximately) the same worst
// case, which is what a failure-analysis engineer wants on the probe
// station.
//
// The algorithm is ddmin-style block removal: repeatedly try to delete
// contiguous blocks (halving the block size when stuck) and keep every
// deletion that does not reduce the measured WCR by more than Tolerance.

// MinimizeConfig tunes the minimizer.
type MinimizeConfig struct {
	// Tolerance is the admissible WCR loss relative to the original test
	// (default 0.02).
	Tolerance float64
	// MinVectors stops shrinking below this length (default 16; the
	// device's weakness needs sustained activity, so very short sequences
	// cannot provoke it).
	MinVectors int
	// MaxMeasurements bounds the ATE budget (default 400 trip-point
	// searches' worth — the minimizer uses one search per probe).
	MaxProbes int
}

// DefaultMinimizeConfig returns the tuned defaults.
func DefaultMinimizeConfig() MinimizeConfig {
	return MinimizeConfig{Tolerance: 0.02, MinVectors: 16, MaxProbes: 400}
}

// MinimizeResult reports the outcome.
type MinimizeResult struct {
	Original  testgen.Test
	Minimized testgen.Test
	// OriginalWCR and MinimizedWCR are the measured severities.
	OriginalWCR  float64
	MinimizedWCR float64
	// Probes is the number of trip-point measurements spent.
	Probes int
}

// ReductionFactor returns len(original)/len(minimized).
func (r MinimizeResult) ReductionFactor() float64 {
	if len(r.Minimized.Seq) == 0 {
		return 0
	}
	return float64(len(r.Original.Seq)) / float64(len(r.Minimized.Seq))
}

// Minimize shrinks the test on the characterizer's ATE. The measurement
// uses the flow's parameter and a fresh SUTP searcher anchored on the
// original test's trip point.
func (c *Characterizer) Minimize(t testgen.Test, cfg MinimizeConfig) (*MinimizeResult, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.02
	}
	if cfg.MinVectors <= 0 {
		cfg.MinVectors = 16
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 400
	}
	if len(t.Seq) == 0 {
		return nil, fmt.Errorf("core: cannot minimize an empty test")
	}

	spec, isMin := c.cfg.Parameter.SpecValue()
	sutp := &search.SUTP{Refine: true}
	opts := c.searchOptions()
	probes := 0
	nameCounter := 0

	measure := func(seq testgen.Sequence) (float64, error) {
		probes++
		nameCounter++
		probe := testgen.Test{
			Name: fmt.Sprintf("%s~min%04d", t.Name, nameCounter),
			Seq:  seq,
			Cond: t.Cond,
		}
		res, err := sutp.Search(c.ate.Measurer(c.cfg.Parameter, probe), opts)
		if err != nil {
			return 0, err
		}
		return wcr.For(res.TripPoint, spec, isMin), nil
	}

	origWCR, err := measure(t.Seq)
	if err != nil {
		return nil, err
	}
	floor := origWCR - cfg.Tolerance

	cur := t.Seq.Clone()
	block := len(cur) / 2
	for block >= 1 && probes < cfg.MaxProbes && len(cur) > cfg.MinVectors {
		removedAny := false
		for start := 0; start+block <= len(cur) && probes < cfg.MaxProbes; {
			if len(cur)-block < cfg.MinVectors {
				break
			}
			cand := make(testgen.Sequence, 0, len(cur)-block)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+block:]...)
			w, err := measure(cand)
			if err != nil {
				return nil, err
			}
			if w >= floor {
				cur = cand
				removedAny = true
				// Do not advance start: the next block slid into place.
			} else {
				start += block
			}
		}
		if !removedAny {
			block /= 2
		}
	}

	finalWCR, err := measure(cur)
	if err != nil {
		return nil, err
	}
	min := testgen.Test{Name: t.Name + "~min", Seq: cur, Cond: t.Cond}
	return &MinimizeResult{
		Original:     t,
		Minimized:    min,
		OriginalWCR:  origWCR,
		MinimizedWCR: finalWCR,
		Probes:       probes,
	}, nil
}
