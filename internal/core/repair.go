package core

import (
	"fmt"
	"strings"

	"repro/internal/ate"
	"repro/internal/testgen"
)

// Repair-and-retest: the loop that consumes the functional failures the
// worst-case database stores separately (§6). For every failing test the
// device's failure addresses are localized from the execution profile, the
// affected rows are remapped to spares, and the test is replayed until it
// passes or the spare budget runs out.

// RepairOutcome records one test's repair loop.
type RepairOutcome struct {
	TestName     string
	FailedBefore bool
	RowsRepaired int
	PassesAfter  bool
	// Exhausted reports that spares ran out before the test passed.
	Exhausted bool
}

// RepairReport aggregates a repair session.
type RepairReport struct {
	Outcomes     []RepairOutcome
	TotalRepairs int
	AllPass      bool
}

// Format renders the session.
func (r *RepairReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Repair session: %d tests, %d rows repaired, all pass: %v\n",
		len(r.Outcomes), r.TotalRepairs, r.AllPass)
	for _, o := range r.Outcomes {
		status := "clean"
		switch {
		case o.Exhausted:
			status = "spares exhausted"
		case o.FailedBefore && o.PassesAfter:
			status = fmt.Sprintf("repaired (%d rows)", o.RowsRepaired)
		case o.FailedBefore:
			status = "still failing"
		}
		fmt.Fprintf(&b, "  %-14s %s\n", o.TestName, status)
	}
	return b.String()
}

// maxRepairRounds bounds the per-test localize/repair/retest loop; each
// round repairs every currently failing row, so more rounds than rows per
// pattern would indicate a livelock.
const maxRepairRounds = 8

// RepairAndRetest runs the repair loop for every test on the tester's
// device. Repairs are permanent (they persist on the device); the tester's
// pattern cache is reloaded after each repair so retests re-execute.
func RepairAndRetest(tester *ate.ATE, tests []testgen.Test) (*RepairReport, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: no tests to repair against")
	}
	rep := &RepairReport{AllPass: true}
	dev := tester.Device()
	for _, t := range tests {
		out := RepairOutcome{TestName: t.Name}
		for round := 0; ; round++ {
			tester.Reload()
			p, err := tester.Profile(t)
			if err != nil {
				return nil, fmt.Errorf("core: repairing %s: %w", t.Name, err)
			}
			if !p.Func.Failed() {
				out.PassesAfter = true
				break
			}
			out.FailedBefore = true
			if round >= maxRepairRounds {
				return nil, fmt.Errorf("core: %s still failing after %d repair rounds", t.Name, round)
			}
			repairedThisRound := 0
			for _, addr := range p.Func.FailingAddrs {
				// RepairRow fails when the row is already repaired
				// (several failing columns share it) or the bank's spares
				// are exhausted; either way skip — an all-skip round is
				// detected below as exhaustion.
				if err := dev.RepairRow(addr); err != nil {
					continue
				}
				repairedThisRound++
				out.RowsRepaired++
				rep.TotalRepairs++
			}
			if repairedThisRound == 0 {
				out.Exhausted = true
				break
			}
		}
		if !out.PassesAfter {
			rep.AllPass = false
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	tester.Reload()
	return rep, nil
}
