package core

import (
	"fmt"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
)

// Production test program generation — the §1 endgame: "this set of
// information helps to define the final device specification at the end of
// the characterization phase, and develop a production test program in
// manufacturing test."
//
// A production program is a short list of screens, each a single pass/fail
// measurement of one pattern at a fixed limit (production testing "stops
// testing on first fail", §1). The value of the CI characterization flow
// is measurable here: a program screening only with March patterns ships
// *escapes* — dies whose worst-case window violates the spec even though
// every March window clears it — while a program that includes the
// CI-found worst-case test catches them.

// Screen is one production measurement: apply the pattern once, compare
// the parameter against the limit.
type Screen struct {
	Test testgen.Test
	// LimitValue is the pass threshold in the parameter's unit: for a
	// minimum-spec parameter the device must measure at or above it.
	LimitValue float64
}

// ProductionProgram is an ordered screen list for one parameter.
type ProductionProgram struct {
	Parameter ate.Parameter
	Screens   []Screen
}

// BuildProductionProgram assembles a program from the given patterns: each
// screen's limit is the specification tightened by the guardband fraction
// (for a minimum spec, limit = spec × (1 + guardband)).
func BuildProductionProgram(param ate.Parameter, tests []testgen.Test, guardband float64) (*ProductionProgram, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: production program needs at least one screen pattern")
	}
	if guardband < 0 || guardband >= 1 {
		return nil, fmt.Errorf("core: guardband %g outside [0, 1)", guardband)
	}
	spec, isMin := param.SpecValue()
	limit := spec * (1 + guardband)
	if !isMin {
		limit = spec * (1 - guardband)
	}
	p := &ProductionProgram{Parameter: param}
	for _, t := range tests {
		p.Screens = append(p.Screens, Screen{Test: t, LimitValue: limit})
	}
	return p, nil
}

// DieVerdict is one die's production outcome plus the characterization
// ground truth.
type DieVerdict struct {
	DieID  int
	Corner dut.Corner
	// Passed is the production program's verdict (stop on first fail).
	Passed bool
	// FailedScreen names the screen that rejected the die ("" if passed).
	FailedScreen string
	// TrulyDefective is the oracle: the die's window under the reference
	// worst-case test violates the specification.
	TrulyDefective bool
	// Measurements spent on this die (≤ number of screens).
	Measurements int64
}

// ProductionResult aggregates a production run over a lot.
type ProductionResult struct {
	Program *ProductionProgram
	Dies    []DieVerdict

	Yield float64 // fraction of dies shipped
	// Escapes: shipped dies that are truly defective — the cost of an
	// incomplete program.
	Escapes int
	// Overkill: rejected dies that are actually fine.
	Overkill     int
	Defective    int // ground-truth defective dies in the lot
	Measurements int64
}

// Format renders the production summary.
func (r *ProductionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Production run: %d dies, %d screens (%s)\n",
		len(r.Dies), len(r.Program.Screens), r.Program.Parameter)
	fmt.Fprintf(&b, "yield %.1f%%, defective %d, escapes %d, overkill %d, %d measurements\n",
		r.Yield*100, r.Defective, r.Escapes, r.Overkill, r.Measurements)
	return b.String()
}

// RunProduction screens every die of the lot with the program and judges
// the outcome against the ground-truth oracle test (the characterization-
// found worst case). Production measurements are single-shot (no search):
// apply the pattern, strobe at the limit, bin on first fail.
func RunProduction(program *ProductionProgram, oracle testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64) (*ProductionResult, error) {
	if program == nil || len(program.Screens) == 0 {
		return nil, fmt.Errorf("core: empty production program")
	}
	if len(dies) == 0 {
		return nil, fmt.Errorf("core: empty lot")
	}
	spec, isMin := program.Parameter.SpecValue()

	res := &ProductionResult{Program: program}
	shipped := 0
	for _, die := range dies {
		dev, err := dut.NewDevice(geom, die)
		if err != nil {
			return nil, err
		}
		tester := ate.New(dev, baseSeed+int64(die.ID))

		v := DieVerdict{DieID: die.ID, Corner: die.Corner, Passed: true}
		for _, s := range program.Screens {
			ok, err := measureAtLimit(tester, program.Parameter, s.Test, s.LimitValue)
			if err != nil {
				return nil, fmt.Errorf("core: die %d screen %s: %w", die.ID, s.Test.Name, err)
			}
			v.Measurements++
			if !ok {
				v.Passed = false
				v.FailedScreen = s.Test.Name
				break // production bins on first fail
			}
		}

		// Ground truth: the oracle worst-case pattern's true parameter
		// value on this die (noise-free, via the simulator's oracle path).
		p, err := dev.Profile(oracle)
		if err != nil {
			return nil, err
		}
		truth := program.Parameter.TrueValue(p)
		if isMin {
			v.TrulyDefective = truth < spec
		} else {
			v.TrulyDefective = truth > spec
		}

		if v.Passed {
			shipped++
			if v.TrulyDefective {
				res.Escapes++
			}
		} else if !v.TrulyDefective {
			res.Overkill++
		}
		if v.TrulyDefective {
			res.Defective++
		}
		res.Measurements += v.Measurements
		res.Dies = append(res.Dies, v)
	}
	res.Yield = float64(shipped) / float64(len(dies))
	return res, nil
}

// measureAtLimit performs one production pass/fail measurement of the
// parameter at the given limit value.
func measureAtLimit(tester *ate.ATE, param ate.Parameter, t testgen.Test, limit float64) (bool, error) {
	switch param {
	case ate.TDQ:
		return tester.MeasureTDQPass(t, limit)
	case ate.Fmax:
		return tester.MeasureFmaxPass(t, limit)
	case ate.VddMin:
		return tester.MeasureVddMinPass(t, limit)
	default:
		return false, fmt.Errorf("core: unsupported production parameter %v", param)
	}
}
