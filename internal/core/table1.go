package core

import (
	"fmt"
	"strings"

	"repro/internal/ate"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// Table1Row is one row of the paper's Table 1: the winning test of one
// technique, its WCR (eq. 6 minimization for T_DQ) and its measured value.
type Table1Row struct {
	TestName     string
	Technique    string
	WCR          float64
	Value        float64 // measured parameter (T_DQ in ns for the paper's table)
	Class        wcr.Class
	Measurements int64 // ATE measurements this technique consumed
}

// Table1 is the full comparison.
type Table1 struct {
	Parameter ate.Parameter
	VddV      float64
	Rows      []Table1Row

	// Stats is the whole comparison's tester cost, summed across the three
	// techniques (each row runs on freshly reset counters).
	Stats ate.Stats
	// CacheHits and CacheMisses are the NN+GA row's measurement memo-cache
	// effectiveness (zero when the flow ran with the cache disabled).
	CacheHits   int64
	CacheMisses int64
}

// Format renders the table in the paper's layout.
func (t *Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Comparison of %s with different approaches (Vdd %.1fV)\n", t.Parameter, t.VddV)
	fmt.Fprintf(&b, "%-14s %-18s %7s %10s %-9s %13s\n", "Test Name", "Technique", "WCR",
		fmt.Sprintf("%s (%s)", t.Parameter, t.Parameter.Unit()), "Class", "Measurements")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-18s %7.3f %10.1f %-9s %13d\n",
			r.TestName, r.Technique, r.WCR, r.Value, r.Class, r.Measurements)
	}
	if lookups := t.CacheHits + t.CacheMisses; lookups > 0 {
		fmt.Fprintf(&b, "NNGA measurement cache: %d hits / %d misses (hit rate %.1f%%)\n",
			t.CacheHits, t.CacheMisses, 100*float64(t.CacheHits)/float64(lookups))
	}
	return b.String()
}

// Table1Config extends the flow configuration with the baseline workloads.
type Table1Config struct {
	Flow Config
	// RandomTests is the size of the pure-random comparison set (the
	// paper's shmoo overlays 1000 tests).
	RandomTests int
	// MarchWindowWords is the address-window width of the March baseline.
	MarchWindowWords uint32
}

// DefaultTable1Config sizes the comparison like the paper (scaled learning
// set, 1000 random tests, Vdd fixed at 1.8 V).
func DefaultTable1Config(seed int64) Table1Config {
	flow := DefaultConfig(seed)
	nominal := testgen.NominalConditions()
	flow.FixedConditions = &nominal
	return Table1Config{
		Flow:             flow,
		RandomTests:      1000,
		MarchWindowWords: 100,
	}
}

// RunTable1 reproduces Table 1: the deterministic March baseline, the best
// of a pure random set, and the NN+GA flow, each reported with the worst
// WCR it found and the ATE measurements it spent.
func RunTable1(cfg Table1Config, tester *ate.ATE) (*Table1, error) {
	if cfg.RandomTests < 1 {
		return nil, fmt.Errorf("core: Table 1 needs at least one random test")
	}
	flowCfg := cfg.Flow
	if flowCfg.FixedConditions == nil {
		nominal := testgen.NominalConditions()
		flowCfg.FixedConditions = &nominal
	}
	cond := *flowCfg.FixedConditions
	param := flowCfg.Parameter
	spec, isMin := param.SpecValue()

	table := &Table1{Parameter: param, VddV: cond.VddV}
	tel := flowCfg.Telemetry
	fullBudget := param.SearchOptions().FullRangeBudget()

	// --- Row 1: deterministic March baseline, single-trip-point style ----
	tester.ResetStats()
	ph := tel.StartPhase("table1-march")
	suite, err := testgen.MarchSuite(testgen.MarchCMinus(), 0, cfg.MarchWindowWords, cond)
	if err != nil {
		return nil, err
	}
	ranking := wcr.NewRanking(spec, isMin)
	full := search.SuccessiveApproximation{}
	for _, t := range suite {
		res, err := full.Search(tester.Measurer(param, t), param.SearchOptions())
		if err != nil {
			return nil, fmt.Errorf("core: March baseline %s: %w", t.Name, err)
		}
		tel.RecordSearch(res.Measurements, fullBudget, res.Converged)
		ranking.Add(t.Name, res.TripPoint)
	}
	worst, _ := ranking.Worst()
	rowStats := tester.Stats()
	table.Stats.Add(rowStats)
	ph.End(telCost(rowStats))
	tel.RecordItem("table1-row", 1, 3)
	table.Rows = append(table.Rows, Table1Row{
		TestName:     "March Test",
		Technique:    "Deterministic",
		WCR:          worst.WCR,
		Value:        worst.Value,
		Class:        worst.Class,
		Measurements: rowStats.Measurements,
	})

	// --- Row 2: pure random multiple-trip-point set ----------------------
	tester.ResetStats()
	ph = tel.StartPhase("table1-random")
	gen := testgen.NewRandomGenerator(flowCfg.Seed+100, tester.Device().Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	runner := trippoint.NewRunner(tester, param)
	runnerBudget := runner.Options.FullRangeBudget()
	ranking = wcr.NewRanking(spec, isMin)
	for i := 0; i < cfg.RandomTests; i++ {
		t := gen.Next()
		m, err := runner.Measure(t)
		if err != nil {
			return nil, fmt.Errorf("core: random baseline: %w", err)
		}
		tel.RecordSearch(m.Measurements, runnerBudget, m.Converged)
		if m.Converged {
			ranking.Add(t.Name, m.TripPoint)
		}
	}
	worst, ok := ranking.Worst()
	if !ok {
		return nil, fmt.Errorf("core: no random test converged")
	}
	rowStats = tester.Stats()
	table.Stats.Add(rowStats)
	ph.End(telCost(rowStats))
	tel.RecordItem("table1-row", 2, 3)
	table.Rows = append(table.Rows, Table1Row{
		TestName:     "Random Test",
		Technique:    "Random",
		WCR:          worst.WCR,
		Value:        worst.Value,
		Class:        worst.Class,
		Measurements: rowStats.Measurements,
	})

	// --- Row 3: the paper's NN + GA flow ---------------------------------
	// No table1-nnga phase: the flow's own learn / propose-seeds / optimize
	// phases cover this row's cost, keeping the report's phase breakdown a
	// partition (no double counting).
	tester.ResetStats()
	char, err := NewCharacterizer(flowCfg, tester)
	if err != nil {
		return nil, err
	}
	defer char.Close()
	if _, err := char.Learn(); err != nil {
		return nil, err
	}
	opt, err := char.Optimize()
	if err != nil {
		return nil, err
	}
	best, ok := opt.Database.Worst()
	if !ok {
		return nil, fmt.Errorf("core: GA produced no worst-case entry")
	}
	rowStats = tester.Stats()
	table.Stats.Add(rowStats)
	table.CacheHits = opt.CacheHits
	table.CacheMisses = opt.CacheMisses
	tel.RecordItem("table1-row", 3, 3)
	table.Rows = append(table.Rows, Table1Row{
		TestName:     "NNGA Test",
		Technique:    "Neural & Genetic",
		WCR:          best.WCR,
		Value:        best.Value,
		Class:        best.Class,
		Measurements: rowStats.Measurements,
	})

	return table, nil
}
