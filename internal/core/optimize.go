package core

import (
	"fmt"

	"repro/internal/genetic"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// ateEvaluator measures GA fitness the way fig. 5 prescribes: "GA fitness =
// TPV measurement via ATE using equation (2), (3) and (4)". A stateful SUTP
// searcher keeps the reference trip point across individuals so every
// fitness evaluation costs only a handful of measurements; the trip point
// maps to fitness through the Worst Case Ratio (eqs. 5/6), so maximizing
// fitness hunts the worst case.
type ateEvaluator struct {
	c    *Characterizer
	sutp *search.SUTP
	opts search.Options

	spec      float64
	specIsMin bool

	evaluations int
}

func (e *ateEvaluator) Fitness(t testgen.Test) (float64, error) {
	res, err := e.sutp.Search(e.c.ate.Measurer(e.c.cfg.Parameter, t), e.opts)
	if err != nil {
		return 0, err
	}
	e.evaluations++
	// Non-converged searches still carry information: an all-fail range
	// means the trip point is beyond the pass-side end (catastrophically
	// bad, large WCR via the endpoint value); an all-pass range means huge
	// margin (small WCR).
	return wcr.For(res.TripPoint, e.spec, e.specIsMin), nil
}

// OptimizationResult is the outcome of the fig. 5 scheme.
type OptimizationResult struct {
	GA *genetic.Result
	// Database holds the worst-case tests banked across GA eras, ranked
	// worst first.
	Database *Database
	// Measurements is the total number of ATE measurements the GA spent.
	Measurements int64
}

// Optimize executes the optimization scheme of fig. 5: seed the GA with the
// fuzzy-neural generator's sub-optimal candidates, evolve sequences and
// conditions with real ATE fitness, restart stagnating populations, and
// store every era's best in the worst-case test database.
func (c *Characterizer) Optimize() (*OptimizationResult, error) {
	cands, err := c.ProposeSeeds()
	if err != nil {
		return nil, err
	}
	return c.OptimizeFrom(SeedsForGA(cands))
}

// OptimizeFrom runs the GA from explicit seeds (the ablation benchmarks
// pass random seeds here to quantify the value of NN seeding).
func (c *Characterizer) OptimizeFrom(seeds []genetic.Seed) (*OptimizationResult, error) {
	gaCfg := c.cfg.GA
	if gaCfg.PopSize == 0 {
		gaCfg = genetic.DefaultConfig()
	}
	gaCfg.FixedConditions = c.cfg.FixedConditions

	spec, isMin := c.cfg.Parameter.SpecValue()
	eval := &ateEvaluator{
		c:         c,
		sutp:      c.newSUTP(),
		opts:      c.searchOptions(),
		spec:      spec,
		specIsMin: isMin,
	}

	ops := genetic.NewOperators(c.cfg.Seed+1, c.gen)
	opt, err := genetic.NewOptimizer(gaCfg, ops, eval)
	if err != nil {
		return nil, err
	}
	before := c.ate.Stats().Measurements
	gaRes, err := opt.Run(seeds)
	if err != nil {
		return nil, fmt.Errorf("core: GA optimization: %w", err)
	}

	db := NewDatabase(c.cfg.Parameter)
	for _, ind := range gaRes.EraBests {
		t := ind.Test()
		db.Add(Entry{
			Test:  t,
			WCR:   ind.Fitness,
			Class: wcr.Classify(ind.Fitness),
			Value: valueFromWCR(ind.Fitness, spec, isMin),
		})
	}
	if gaRes.Best != nil {
		t := gaRes.Best.Test()
		db.Add(Entry{
			Test:  t,
			WCR:   gaRes.Best.Fitness,
			Class: wcr.Classify(gaRes.Best.Fitness),
			Value: valueFromWCR(gaRes.Best.Fitness, spec, isMin),
		})
	}
	db.Sort()

	return &OptimizationResult{
		GA:           gaRes,
		Database:     db,
		Measurements: c.ate.Stats().Measurements - before,
	}, nil
}

// valueFromWCR inverts eqs. 5/6 to recover the measured parameter value
// from the stored fitness.
func valueFromWCR(w, spec float64, specIsMin bool) float64 {
	if w == 0 {
		return 0
	}
	if specIsMin {
		return spec / w
	}
	return w * spec
}
