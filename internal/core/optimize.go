package core

import (
	"fmt"

	"repro/internal/genetic"
	"repro/internal/telemetry"
	"repro/internal/wcr"
)

// OptimizationResult is the outcome of the fig. 5 scheme.
type OptimizationResult struct {
	GA *genetic.Result
	// Database holds the worst-case tests banked across GA eras, ranked
	// worst first.
	Database *Database
	// Measurements is the total number of ATE measurements the GA spent.
	Measurements int64
	// CacheHits and CacheMisses count fitness lookups the measurement
	// memo-cache absorbed versus lookups that had to be measured.
	CacheHits   int64
	CacheMisses int64
}

// Optimize executes the optimization scheme of fig. 5: seed the GA with the
// fuzzy-neural generator's sub-optimal candidates, evolve sequences and
// conditions with real ATE fitness, restart stagnating populations, and
// store every era's best in the worst-case test database.
func (c *Characterizer) Optimize() (*OptimizationResult, error) {
	cands, err := c.ProposeSeeds()
	if err != nil {
		return nil, err
	}
	return c.OptimizeFrom(SeedsForGA(cands))
}

// OptimizeFrom runs the GA from explicit seeds (the ablation benchmarks
// pass random seeds here to quantify the value of NN seeding).
func (c *Characterizer) OptimizeFrom(seeds []genetic.Seed) (*OptimizationResult, error) {
	gaCfg := c.cfg.GA
	if gaCfg.PopSize == 0 {
		gaCfg = genetic.DefaultConfig()
	}
	gaCfg.FixedConditions = c.cfg.FixedConditions

	tel := c.tel()
	ph := tel.StartPhase("optimize")
	statsBefore := c.ate.Stats()
	defer func() { ph.End(telDelta(statsBefore, c.ate.Stats())) }()
	if tel != nil {
		// The GA's generation loop is serial, so emitting per-generation
		// trace events from its callback is deterministic.
		prev := gaCfg.OnGeneration
		gaCfg.OnGeneration = func(gen int, best float64) {
			ph.Span().Event("generation",
				telemetry.I("gen", gen),
				telemetry.F("best_wcr", best),
			)
			tel.RecordGeneration(gen, best)
			if prev != nil {
				prev(gen, best)
			}
		}
	}

	spec, isMin := c.cfg.Parameter.SpecValue()
	eval := newParallelEvaluator(c)
	c.lastEval = eval

	ops := genetic.NewOperators(c.cfg.Seed+1, c.gen)
	opt, err := genetic.NewOptimizer(gaCfg, ops, eval)
	if err != nil {
		return nil, err
	}
	before := c.ate.Stats().Measurements
	gaRes, err := opt.Run(seeds)
	if err != nil {
		return nil, fmt.Errorf("core: GA optimization: %w", err)
	}

	db := NewDatabase(c.cfg.Parameter)
	for _, ind := range gaRes.EraBests {
		t := ind.Test()
		db.Add(Entry{
			Test:  t,
			WCR:   ind.Fitness,
			Class: wcr.Classify(ind.Fitness),
			Value: valueFromWCR(ind.Fitness, spec, isMin),
		})
	}
	if gaRes.Best != nil {
		t := gaRes.Best.Test()
		db.Add(Entry{
			Test:  t,
			WCR:   gaRes.Best.Fitness,
			Class: wcr.Classify(gaRes.Best.Fitness),
			Value: valueFromWCR(gaRes.Best.Fitness, spec, isMin),
		})
	}
	db.Sort()

	return &OptimizationResult{
		GA:           gaRes,
		Database:     db,
		Measurements: c.ate.Stats().Measurements - before,
		CacheHits:    eval.cacheHits(),
		CacheMisses:  eval.cacheMisses(),
	}, nil
}

// valueFromWCR inverts eqs. 5/6 to recover the measured parameter value
// from the stored fitness.
func valueFromWCR(w, spec float64, specIsMin bool) float64 {
	if w == 0 {
		return 0
	}
	if specIsMin {
		return spec / w
	}
	return w * spec
}
