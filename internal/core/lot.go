package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// Lot screening: §1 requires characterization over "a statistically
// significant sample of devices". The CI flow finds the worst-case tests
// on a reference device; ScreenLot then replays those tests (plus any
// baselines) on every die of a sample lot, measuring per-die trip points
// and summarizing the process-corner dependence of the worst case.

// DieResult is one die's outcome under the screened test set.
type DieResult struct {
	DieID  int
	Corner dut.Corner

	WorstTrip float64
	WorstTest string
	WCR       float64
	Class     wcr.Class
	// FunctionalFails counts tests whose replay corrupted reads (weak
	// cells provoked below their threshold).
	FunctionalFails int
}

// LotReport aggregates a screened lot.
type LotReport struct {
	Parameter ate.Parameter
	Tests     int
	Dies      []DieResult

	// Worst-per-class statistics across the lot.
	WorstDie       DieResult
	MeanWorstTrip  float64
	SpreadLot      float64 // max−min of per-die worst trip points
	ClassCounts    map[wcr.Class]int
	PerCornerWorst map[dut.Corner]float64

	Measurements int64
	// Stats is the full tester cost summed over the per-die insertions.
	Stats ate.Stats
}

// screenDie measures every test on one die with a fresh tester insertion
// and returns the die result plus the measurement cost.
func screenDie(param ate.Parameter, tests []testgen.Test, die *dut.Die, geom dut.Geometry, seed int64) (DieResult, ate.Stats, error) {
	spec, isMin := param.SpecValue()
	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	dev, err := dut.NewDevice(geom, die)
	if err != nil {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: %w", die.ID, err)
	}
	tester := ate.New(dev, seed)
	runner := trippoint.NewRunner(tester, param)
	runner.Searcher = &search.SUTP{Refine: true}

	dr := DieResult{DieID: die.ID, Corner: die.Corner}
	worst := math.Inf(1)
	if !isMin {
		worst = math.Inf(-1)
	}
	for _, t := range tests {
		m, err := runner.Measure(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d test %s: %w", die.ID, t.Name, err)
		}
		if m.Converged && worseThan(m.TripPoint, worst) {
			worst = m.TripPoint
			dr.WorstTest = t.Name
		}
		ok, err := tester.FunctionalPass(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, err
		}
		if !ok {
			dr.FunctionalFails++
		}
	}
	if math.IsInf(worst, 0) {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: no test converged", die.ID)
	}
	dr.WorstTrip = worst
	dr.WCR = wcr.For(worst, spec, isMin)
	dr.Class = wcr.Classify(dr.WCR)
	return dr, tester.Stats(), nil
}

// ScreenLot measures every test on every die of the lot (one fresh tester
// insertion per die, seeded deterministically from baseSeed) and reports
// per-die worst cases. The geometry must match the one the tests were
// generated for.
func ScreenLot(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64) (*LotReport, error) {
	return ScreenLotParallel(param, tests, dies, geom, baseSeed, 1)
}

// ScreenLotParallel is ScreenLot across the given number of concurrent
// tester insertions — the multi-site testing of production floors — run on
// the deterministic worker pool (workers below 1 select one per CPU). Each
// die's measurements are independent (own device, own tester, seed derived
// from the die ID), so the report is identical to the serial one, in die
// order, regardless of the worker count.
func ScreenLotParallel(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64, workers int) (*LotReport, error) {
	return ScreenLotParallelTel(param, tests, dies, geom, baseSeed, workers, nil)
}

// ScreenLotParallelTel is ScreenLotParallel with run telemetry: the screen
// runs under a "lot-screen" phase whose cost sums the hermetic per-die
// tester insertions, and the merge loop (die order, so deterministic for
// any worker count) emits one "die" event per die.
func ScreenLotParallelTel(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64, workers int, tel *telemetry.Telemetry) (*LotReport, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: lot screen needs at least one test")
	}
	if len(dies) == 0 {
		return nil, fmt.Errorf("core: empty die lot")
	}
	ph := tel.StartPhase("lot-screen")
	type outcome struct {
		dr   DieResult
		cost ate.Stats
	}
	results := make([]outcome, len(dies))
	err := parallel.ForEach(len(dies), workers, func(i int) error {
		dr, cost, err := screenDie(param, tests, dies[i], geom, baseSeed+int64(dies[i].ID))
		if err != nil {
			return err
		}
		results[i] = outcome{dr: dr, cost: cost}
		return nil
	})
	if err != nil {
		return nil, err
	}

	_, isMin := param.SpecValue()
	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	rep := &LotReport{
		Parameter:      param,
		Tests:          len(tests),
		ClassCounts:    make(map[wcr.Class]int),
		PerCornerWorst: make(map[dut.Corner]float64),
	}
	var sumWorst float64
	minWorst, maxWorst := math.Inf(1), math.Inf(-1)
	first := true
	for i, res := range results {
		dr := res.dr
		tel.RecordItem("die", i+1, len(dies))
		rep.Dies = append(rep.Dies, dr)
		rep.ClassCounts[dr.Class]++
		rep.Measurements += res.cost.Measurements
		rep.Stats.Add(res.cost)
		ph.Span().Event("die",
			telemetry.I("die", dr.DieID),
			telemetry.S("corner", dr.Corner.String()),
			telemetry.F("worst_trip", dr.WorstTrip),
			telemetry.F("wcr", dr.WCR),
			telemetry.I("measurements", res.cost.Measurements),
		)

		sumWorst += dr.WorstTrip
		minWorst = math.Min(minWorst, dr.WorstTrip)
		maxWorst = math.Max(maxWorst, dr.WorstTrip)
		corner := dies[i].Corner
		if cur, ok := rep.PerCornerWorst[corner]; !ok || worseThan(dr.WorstTrip, cur) {
			rep.PerCornerWorst[corner] = dr.WorstTrip
		}
		if first || dr.WCR > rep.WorstDie.WCR {
			rep.WorstDie = dr
			first = false
		}
	}
	rep.MeanWorstTrip = sumWorst / float64(len(dies))
	rep.SpreadLot = maxWorst - minWorst
	ph.End(telCost(rep.Stats))
	return rep, nil
}

// Format renders a lot summary.
func (r *LotReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lot screen: %d dies × %d tests, parameter %s\n", len(r.Dies), r.Tests, r.Parameter)
	fmt.Fprintf(&b, "per-die worst trip: mean %.3f %s, lot spread %.3f %s\n",
		r.MeanWorstTrip, r.Parameter.Unit(), r.SpreadLot, r.Parameter.Unit())
	fmt.Fprintf(&b, "classes: pass %d, weakness %d, fail %d\n",
		r.ClassCounts[wcr.Pass], r.ClassCounts[wcr.Weakness], r.ClassCounts[wcr.Fail])
	for _, corner := range []dut.Corner{dut.CornerFast, dut.CornerTypical, dut.CornerSlow} {
		if v, ok := r.PerCornerWorst[corner]; ok {
			fmt.Fprintf(&b, "worst at %s corner: %.3f %s\n", corner, v, r.Parameter.Unit())
		}
	}
	fmt.Fprintf(&b, "worst die: #%d (%s) WCR %.3f (%s) via %s\n",
		r.WorstDie.DieID, r.WorstDie.Corner, r.WorstDie.WCR, r.WorstDie.Class, r.WorstDie.WorstTest)
	fmt.Fprintf(&b, "cost: %d measurements\n", r.Measurements)
	return b.String()
}
