package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// Lot screening: §1 requires characterization over "a statistically
// significant sample of devices". The CI flow finds the worst-case tests
// on a reference device; ScreenLot then replays those tests (plus any
// baselines) on every die of a sample lot, measuring per-die trip points
// and summarizing the process-corner dependence of the worst case.

// DieResult is one die's outcome under the screened test set.
type DieResult struct {
	DieID  int
	Corner dut.Corner

	WorstTrip float64
	WorstTest string
	WCR       float64
	Class     wcr.Class
	// FunctionalFails counts tests whose replay corrupted reads (weak
	// cells provoked below their threshold).
	FunctionalFails int
}

// LotReport aggregates a screened lot.
type LotReport struct {
	Parameter ate.Parameter
	Tests     int
	// DieCount is the number of dies screened. Dies carries the per-die
	// results only when the screen retained them (LotOptions.RetainDies;
	// the legacy ScreenLot entry points always do) — fab-scale streamed
	// lots keep Dies nil and DieCount still counts every die.
	DieCount int
	Dies     []DieResult

	// Worst-per-class statistics across the lot.
	WorstDie       DieResult
	MeanWorstTrip  float64
	SpreadLot      float64 // max−min of per-die worst trip points
	ClassCounts    map[wcr.Class]int
	PerCornerWorst map[dut.Corner]float64

	// Drift is the population-level trend of per-die worst trip points in
	// screening order — a significant slope across a lot means the
	// process (or the tester) shifted while the lot ran.
	Drift trippoint.DriftReport
	// Outliers are the dies most extreme against the lot population
	// (|z| ≥ LotOptions.OutlierZ), most extreme first.
	Outliers []trippoint.Outlier

	Measurements int64
	// Stats is the full tester cost summed over the per-die insertions.
	Stats ate.Stats
}

// screenDie measures every test on one die with a fresh tester insertion
// and returns the die result plus the measurement cost.
func screenDie(param ate.Parameter, tests []testgen.Test, die *dut.Die, geom dut.Geometry, seed int64) (DieResult, ate.Stats, error) {
	spec, isMin := param.SpecValue()
	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	dev, err := dut.NewDevice(geom, die)
	if err != nil {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: %w", die.ID, err)
	}
	tester := ate.New(dev, seed)
	runner := trippoint.NewRunner(tester, param)
	runner.Searcher = &search.SUTP{Refine: true}

	dr := DieResult{DieID: die.ID, Corner: die.Corner}
	worst := math.Inf(1)
	if !isMin {
		worst = math.Inf(-1)
	}
	for _, t := range tests {
		m, err := runner.Measure(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d test %s: %w", die.ID, t.Name, err)
		}
		if m.Converged && worseThan(m.TripPoint, worst) {
			worst = m.TripPoint
			dr.WorstTest = t.Name
		}
		ok, err := tester.FunctionalPass(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, err
		}
		if !ok {
			dr.FunctionalFails++
		}
	}
	if math.IsInf(worst, 0) {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: no test converged", die.ID)
	}
	dr.WorstTrip = worst
	dr.WCR = wcr.For(worst, spec, isMin)
	dr.Class = wcr.Classify(dr.WCR)
	return dr, tester.Stats(), nil
}

// ScreenLot measures every test on every die of the lot (one fresh tester
// insertion per die, seeded deterministically from baseSeed) and reports
// per-die worst cases. The geometry must match the one the tests were
// generated for.
func ScreenLot(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64) (*LotReport, error) {
	return ScreenLotParallel(param, tests, dies, geom, baseSeed, 1)
}

// ScreenLotParallel is ScreenLot across the given number of concurrent
// tester insertions — the multi-site testing of production floors — run on
// the deterministic worker pool (workers below 1 select one per CPU). Each
// die's measurements are independent (own device, own tester, seed derived
// from the die ID), so the report is identical to the serial one, in die
// order, regardless of the worker count.
func ScreenLotParallel(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64, workers int) (*LotReport, error) {
	return ScreenLotParallelTel(param, tests, dies, geom, baseSeed, workers, nil)
}

// ScreenLotParallelTel is ScreenLotParallel with run telemetry: the screen
// runs under a "lot-screen" phase whose cost sums the hermetic per-die
// tester insertions, and the merge loop (die order, so deterministic for
// any worker count) emits one "die" event per die. It is a thin wrapper
// over the streaming pipeline with the legacy defaults (per-die results
// retained, no disk cache).
func ScreenLotParallelTel(param ate.Parameter, tests []testgen.Test, dies []*dut.Die, geom dut.Geometry, baseSeed int64, workers int, tel *telemetry.Telemetry) (*LotReport, error) {
	return ScreenLotStream(param, tests, dut.LotSlice(dies), geom, baseSeed, LotOptions{
		Workers:    workers,
		RetainDies: true,
		Telemetry:  tel,
	})
}

// Format renders a lot summary.
func (r *LotReport) Format() string {
	var b strings.Builder
	dies := r.DieCount
	if dies == 0 {
		dies = len(r.Dies)
	}
	fmt.Fprintf(&b, "Lot screen: %d dies × %d tests, parameter %s\n", dies, r.Tests, r.Parameter)
	fmt.Fprintf(&b, "per-die worst trip: mean %.3f %s, lot spread %.3f %s\n",
		r.MeanWorstTrip, r.Parameter.Unit(), r.SpreadLot, r.Parameter.Unit())
	fmt.Fprintf(&b, "classes: pass %d, weakness %d, fail %d\n",
		r.ClassCounts[wcr.Pass], r.ClassCounts[wcr.Weakness], r.ClassCounts[wcr.Fail])
	for _, corner := range []dut.Corner{dut.CornerFast, dut.CornerTypical, dut.CornerSlow} {
		if v, ok := r.PerCornerWorst[corner]; ok {
			fmt.Fprintf(&b, "worst at %s corner: %.3f %s\n", corner, v, r.Parameter.Unit())
		}
	}
	fmt.Fprintf(&b, "worst die: #%d (%s) WCR %.3f (%s) via %s\n",
		r.WorstDie.DieID, r.WorstDie.Corner, r.WorstDie.WCR, r.WorstDie.Class, r.WorstDie.WorstTest)
	if r.Drift.Significant {
		fmt.Fprintf(&b, "population drift: %+.4f %s across the lot (residual %.4f) — SIGNIFICANT\n",
			r.Drift.TotalDrift, r.Parameter.Unit(), r.Drift.Residual)
	}
	if len(r.Outliers) > 0 {
		fmt.Fprintf(&b, "outliers (|z| extremes): ")
		for i, o := range r.Outliers {
			if i > 0 {
				fmt.Fprintf(&b, ", ")
			}
			fmt.Fprintf(&b, "#%d (%.3f %s, z %+.1f)", o.Index, o.Value, r.Parameter.Unit(), o.Z)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "cost: %d measurements\n", r.Measurements)
	return b.String()
}
