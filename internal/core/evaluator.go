package core

import (
	"fmt"

	"repro/internal/ate"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// parallelEvaluator measures GA fitness the way fig. 5 prescribes — "GA
// fitness = TPV measurement via ATE using equation (2), (3) and (4)" — but
// fans a whole generation across the deterministic worker pool. The first
// measured test runs a full-range search and establishes the reference trip
// point (eq. 2, done serially); every later test costs only a handful of
// SUTP steps from that reference, on a private forked tester insertion.
//
// Determinism: task t (a global counter across batches) is measured on an
// insertion reseeded with Seed + t, so its trip point depends only on the
// test and the counter — never on which worker ran it or in what order.
// Per-task cost counters are merged into the main tester in task order.
// The memo-cache is consulted before dispatch and filled after the batch,
// keyed by the test's structural fingerprint (sequence + conditions; the
// flow is already scoped to one die and one parameter), so elites, migrants
// and duplicate individuals never burn ATE time twice.
type parallelEvaluator struct {
	c         *Characterizer
	opts      search.Options
	spec      float64
	specIsMin bool
	workers   int
	cache     *parallel.MemoCache // nil disables memoization

	rtp     float64
	haveRTP bool
	taskSeq int64 // measured-task counter across batches; drives seeds

	evaluations int64 // SUTP searches actually performed
	budget      int   // full-range search cost, the per-search baseline

	// Fleet mode: the persistent pool and the per-worker insertions that
	// survive across generations (forked once, reseeded per task, with the
	// device's execution scratch armed — the per-batch fork and per-call
	// map costs the batch scheduler pays every generation disappear).
	fleet      *parallel.Fleet
	insertions []*ate.ATE

	// resolve scratch reused across batches (fingerprints, batched cache
	// lookups).
	fps   []uint64
	vals  []float64
	found []bool
}

func newParallelEvaluator(c *Characterizer) *parallelEvaluator {
	spec, isMin := c.cfg.Parameter.SpecValue()
	e := &parallelEvaluator{
		c:         c,
		opts:      c.searchOptions(),
		spec:      spec,
		specIsMin: isMin,
		workers:   c.cfg.Parallelism,
		fleet:     c.Fleet(),
	}
	if e.fleet != nil {
		e.insertions = make([]*ate.ATE, e.fleet.Size())
	}
	e.budget = e.opts.FullRangeBudget()
	if !c.cfg.DisableMeasurementCache {
		e.cache = parallel.NewMemoCache()
		// Seed disk-recovered values (scope-bound to this exact flow, see
		// MemoCacheScope): primed tests are served without measuring, and
		// because the values equal what a cold run would measure, the GA
		// trajectory — and thus the results — stay bit-identical.
		for k, v := range c.primed {
			e.cache.Put(k, v)
		}
	}
	return e
}

// insertionFor returns worker w's persistent forked insertion, forking it
// on first use. Reseed makes each task hermetic, so reusing the insertion
// across batches is bit-identical to the batch scheduler's fresh forks;
// the device-level execution scratch (value-identical, see
// dut.Memory.EnableExecScratch) is what makes the long-lived insertion
// cheaper than a transient one.
func (e *parallelEvaluator) insertionFor(w int) (*ate.ATE, error) {
	if e.insertions[w] == nil {
		wk, err := e.c.ate.Fork(e.c.cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: forking tester: %w", err)
		}
		wk.Device().EnableExecScratch()
		e.insertions[w] = wk
	}
	return e.insertions[w], nil
}

// measureTask runs one hermetic trip-point search on the forked insertion:
// reseed, fresh SUTP anchored to the shared reference (when established),
// search. Returns the search result and the task's cost counters.
func (e *parallelEvaluator) measureTask(wk *ate.ATE, tt testgen.Test, seed int64) (search.Result, ate.Stats, error) {
	wk.Reseed(seed)
	s := &search.SUTP{SF: e.c.cfg.SearchFactor, Refine: true}
	if e.haveRTP {
		s.SetReference(e.rtp)
	}
	res, err := s.Search(wk.Measurer(e.c.cfg.Parameter, tt), e.opts)
	return res, wk.Stats(), err
}

// Fitness implements genetic.Evaluator for callers outside the batch path.
func (e *parallelEvaluator) Fitness(t testgen.Test) (float64, error) {
	fits, err := e.FitnessBatch([]testgen.Test{t})
	if err != nil {
		return 0, err
	}
	return fits[0], nil
}

// FitnessBatch implements genetic.BatchEvaluator.
func (e *parallelEvaluator) FitnessBatch(tests []testgen.Test) ([]float64, error) {
	out := make([]float64, len(tests))

	// Resolve memoized tests and dedupe the rest by fingerprint, keeping
	// first-appearance order so seeds and stats stay index-deterministic.
	// With the cache disabled every test is its own group — the no-cache
	// baseline measures every individual.
	var (
		reps    []int    // representative test index per group
		fpOf    []uint64 // the representative's fingerprint
		members [][]int  // test indices sharing the representative's value
	)
	var hitsBefore, missBefore, droppedBefore int64
	if e.cache != nil {
		hitsBefore, missBefore, droppedBefore = e.cache.Hits(), e.cache.Misses(), e.cache.Dropped()
	}
	if cap(e.fps) < len(tests) {
		e.fps = make([]uint64, len(tests))
		e.vals = make([]float64, len(tests))
		e.found = make([]bool, len(tests))
	}
	fps := e.fps[:len(tests)]
	for i, tt := range tests {
		fps[i] = tt.Fingerprint()
	}
	vals, found := e.vals[:len(tests)], e.found[:len(tests)]
	if e.cache != nil {
		// One stripe-grouped batch lookup instead of a lock round-trip per
		// test; per-key hit/miss accounting is identical to sequential Gets.
		e.cache.GetBatch(fps, vals, found)
	}
	groupOf := map[uint64]int{}
	for i := range tests {
		if e.cache != nil {
			if found[i] {
				out[i] = vals[i]
				continue
			}
			if g, ok := groupOf[fps[i]]; ok {
				members[g] = append(members[g], i)
				continue
			}
			groupOf[fps[i]] = len(reps)
		}
		reps = append(reps, i)
		fpOf = append(fpOf, fps[i])
		members = append(members, []int{i})
	}
	// The resolve loop above is serial, so the cache-effectiveness deltas
	// are deterministic regardless of the worker count below.
	if e.cache != nil {
		e.c.tel().RecordCacheLookups(e.cache.Hits()-hitsBefore, e.cache.Misses()-missBefore, e.budget)
	}
	if len(reps) == 0 {
		return out, nil
	}

	results := make([]search.Result, len(reps))
	taskStats := make([]ate.Stats, len(reps))

	// merge folds task t's outcome into the flow in strict task order: cost
	// counters (float-sum order must not depend on the worker count),
	// telemetry, memoization and fan-out to duplicate individuals. Both
	// schedulers drive the identical sequence of merge calls — the batch
	// path after its barrier, the fleet path streamed from the in-order
	// delivery while later tasks are still measuring.
	merge := func(t int) {
		e.c.ate.AddStats(taskStats[t])
		e.c.tel().RecordSearch(results[t].Measurements, e.budget, results[t].Converged)
		// Non-converged searches still carry information: an all-fail
		// range means the trip point is beyond the pass-side end
		// (catastrophically bad, large WCR via the endpoint value); an
		// all-pass range means huge margin (small WCR).
		v := wcr.For(results[t].TripPoint, e.spec, e.specIsMin)
		if e.cache != nil {
			e.cache.Put(fpOf[t], v)
		}
		for _, m := range members[t] {
			out[m] = v
		}
	}

	// Establish the reference trip point serially: the full-range search
	// (eq. 2) happens once, before any fan-out, so every parallelism level
	// sees the identical reference.
	start := 0
	for ; start < len(reps) && !e.haveRTP; start++ {
		var wk *ate.ATE
		var err error
		if e.fleet != nil {
			wk, err = e.insertionFor(0)
		} else {
			wk, err = e.c.ate.Fork(e.c.cfg.Seed)
			if err != nil {
				err = fmt.Errorf("core: forking tester: %w", err)
			}
		}
		if err != nil {
			return nil, err
		}
		res, st, err := e.measureTask(wk, tests[reps[start]], e.c.cfg.Seed+e.taskSeq+int64(start))
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", tests[reps[start]].Name, err)
		}
		results[start] = res
		taskStats[start] = st
		if res.Converged {
			e.rtp = res.TripPoint
			e.haveRTP = true
		}
	}

	measure := func(wk *ate.ATE, i int) error {
		t := start + i
		res, st, err := e.measureTask(wk, tests[reps[t]], e.c.cfg.Seed+e.taskSeq+int64(t))
		if err != nil {
			return fmt.Errorf("core: evaluating %s: %w", tests[reps[t]].Name, err)
		}
		results[t] = res
		taskStats[t] = st
		return nil
	}

	if e.fleet != nil {
		// Fleet path: the serial prefix merges immediately (it is already
		// in task order), then the remaining unique tests stream over the
		// persistent insertions with the merge riding the in-order delivery
		// — no generation barrier between measurement and selection input.
		for t := 0; t < start; t++ {
			merge(t)
		}
		if n := len(reps) - start; n > 0 {
			err := parallel.Stream(e.fleet, n, e.insertionFor, measure, func(i int) error {
				merge(start + i)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Batch path: fan the remaining unique tests across transient
		// per-batch forks, barrier, then merge — the frozen legacy
		// scheduler the fleet's speedup is gated against.
		if n := len(reps) - start; n > 0 {
			err := parallel.Run(n, e.workers, func(int) (*ate.ATE, error) {
				return e.c.ate.Fork(e.c.cfg.Seed)
			}, measure)
			if err != nil {
				return nil, err
			}
		}
		for t := range reps {
			merge(t)
		}
	}
	e.taskSeq += int64(len(reps))
	e.evaluations += int64(len(reps))
	// The merge loop above is serial, so the capacity-drop delta is as
	// deterministic as the lookup deltas.
	if e.cache != nil {
		e.c.tel().RecordCacheDropped(e.cache.Dropped() - droppedBefore)
	}
	return out, nil
}

// cacheHits returns how many fitness lookups the memo-cache absorbed.
func (e *parallelEvaluator) cacheHits() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.Hits()
}

// cacheMisses returns how many fitness lookups had to be measured.
func (e *parallelEvaluator) cacheMisses() int64 {
	if e.cache == nil {
		return e.evaluations
	}
	return e.cache.Misses()
}
