package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/dut"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
	"repro/internal/wcr"
)

// Streamed lot screening: the fab-scale path behind ScreenLot. Three
// properties distinguish it from a per-die loop:
//
//   - Bounded memory. Dies stream through the worker pool in windows of
//     O(workers) size; nothing O(lot) is buffered unless the caller asks
//     for per-die results. Population statistics (mean, spread, corner
//     worst cases, drift, outliers) accumulate in O(1) per die.
//   - Shared work. Each worker owns one device and one tester insertion
//     for the whole lot (Retarget/Reseed per die instead of reallocating),
//     and a lot-wide dut.ProfileBank executes each test pattern once
//     instead of once per die — activity is die-independent for clean
//     dies, so tens of thousands of dies share a handful of executions.
//   - Durable measurements. With a cachestore attached, each die's screen
//     outcome (result + full tester cost) persists keyed by the content of
//     the die, the test set and the seed; a second identical run replays
//     from disk with bit-identical LotReport output.
//
// Determinism: dies are resolved against the cache serially in lot order,
// misses fan out on the deterministic pool with per-die seeds, and windows
// merge back in lot order — the report (and the telemetry event stream) is
// bit-identical at any worker count, any batch size, and cache cold or
// warm.

// LotOptions configures ScreenLotStream. The zero value screens with one
// worker per CPU, an automatic batch size, no disk cache, no retained
// per-die results and no telemetry.
type LotOptions struct {
	// Workers is the concurrent tester-insertion count (multi-site
	// testing); values below 1 select one per CPU.
	Workers int
	// Fleet, when non-nil, dispatches the miss fan-out onto this persistent
	// worker fleet instead of a per-window pool: the worker states already
	// persist across windows, so on a fleet they also persist across the
	// caller's other phases. Overrides Workers for sizing. The report is
	// bit-identical either way.
	Fleet *parallel.Fleet
	// BatchSize is the streaming window: how many dies are in flight
	// between cache resolve and merge. Values below 1 pick 4× the worker
	// count. Batch size never changes results, only peak memory.
	BatchSize int
	// RetainDies keeps every per-die result in LotReport.Dies — O(lot)
	// memory, the legacy ScreenLot behaviour. Leave false for fab-scale
	// lots; the streaming aggregates and the outlier set remain available.
	RetainDies bool
	// Cache, when non-nil, serves dies whose screen outcome is already on
	// disk and persists newly screened dies (one Flush at the end of the
	// lot).
	Cache *cachestore.Store
	// Telemetry receives the lot-screen phase, per-die events and progress
	// items; nil disables instrumentation.
	Telemetry *telemetry.Telemetry
	// TopOutliers is how many population outliers to track per tail
	// (values below 1 pick 8).
	TopOutliers int
	// OutlierZ is the |z|-score threshold for reporting a die as an
	// outlier (values ≤ 0 pick 3).
	OutlierZ float64
}

// lotWorker is one worker's reusable screening state: a device and a
// tester insertion that are retargeted/reseeded per die.
type lotWorker struct {
	dev    *dut.Device
	tester *ate.ATE
}

// screen measures one die, bit-identical to the legacy screenDie but on
// reused hardware state.
func (wk *lotWorker) screen(param ate.Parameter, tests []testgen.Test, die *dut.Die, seed int64) (DieResult, ate.Stats, error) {
	if err := wk.dev.Retarget(die); err != nil {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: %w", die.ID, err)
	}
	wk.tester.Reseed(seed)

	spec, isMin := param.SpecValue()
	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	runner := trippoint.NewRunner(wk.tester, param)
	runner.Searcher = &search.SUTP{Refine: true}

	dr := DieResult{DieID: die.ID, Corner: die.Corner}
	worst := math.Inf(1)
	if !isMin {
		worst = math.Inf(-1)
	}
	for _, t := range tests {
		m, err := runner.Measure(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d test %s: %w", die.ID, t.Name, err)
		}
		if m.Converged && worseThan(m.TripPoint, worst) {
			worst = m.TripPoint
			dr.WorstTest = t.Name
		}
		ok, err := wk.tester.FunctionalPass(t)
		if err != nil {
			return DieResult{}, ate.Stats{}, err
		}
		if !ok {
			dr.FunctionalFails++
		}
	}
	if math.IsInf(worst, 0) {
		return DieResult{}, ate.Stats{}, fmt.Errorf("core: die %d: no test converged", die.ID)
	}
	dr.WorstTrip = worst
	dr.WCR = wcr.For(worst, spec, isMin)
	dr.Class = wcr.Classify(dr.WCR)
	return dr, wk.tester.Stats(), nil
}

// ScreenLotStream screens every die of the source through the streaming
// pipeline and returns the aggregated report. See LotOptions for the
// knobs; ScreenLot/ScreenLotParallel are thin wrappers over this with the
// legacy defaults.
func ScreenLotStream(param ate.Parameter, tests []testgen.Test, src dut.DieSource, geom dut.Geometry, baseSeed int64, opts LotOptions) (*LotReport, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: lot screen needs at least one test")
	}
	if src == nil || src.Len() == 0 {
		return nil, fmt.Errorf("core: empty die lot")
	}
	n := src.Len()
	nw := parallel.Bound(opts.Workers, n)
	if opts.Fleet != nil {
		nw = opts.Fleet.Size()
	}
	batch := opts.BatchSize
	if batch < 1 {
		batch = 4 * nw
	}
	if batch > n {
		batch = n
	}
	topK := opts.TopOutliers
	if topK < 1 {
		topK = 8
	}
	zThresh := opts.OutlierZ
	if zThresh <= 0 {
		zThresh = 3
	}

	tel := opts.Telemetry
	ph := tel.StartPhase("lot-screen")

	bank, err := dut.NewProfileBank(geom, dut.DefaultPhysics())
	if err != nil {
		return nil, err
	}

	// Worker states persist across windows: construction cost (array
	// allocation) is paid once per worker, not once per window or die.
	states := make([]*lotWorker, nw)
	placeholder := dut.NewDie(-1, dut.CornerTypical)
	newWorker := func(w int) (*lotWorker, error) {
		if states[w] != nil {
			return states[w], nil
		}
		dev, err := dut.NewDevice(geom, placeholder)
		if err != nil {
			return nil, err
		}
		// Dense execution scratch (value-identical, see dut.Memory): the
		// insertion screens the whole lot, so the arrays amortize.
		dev.EnableExecScratch()
		tester := ate.New(dev, baseSeed)
		tester.Profiler = bank.Profile
		states[w] = &lotWorker{dev: dev, tester: tester}
		return states[w], nil
	}

	lotKey := lotCacheKey(param, geom, tests, baseSeed)

	_, isMin := param.SpecValue()
	worseThan := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	rep := &LotReport{
		Parameter:      param,
		Tests:          len(tests),
		ClassCounts:    make(map[wcr.Class]int),
		PerCornerWorst: make(map[dut.Corner]float64),
	}
	var (
		sumWorst           float64
		minWorst, maxWorst = math.Inf(1), math.Inf(-1)
		first              = true
		drift              trippoint.DriftAccumulator
		outliers           = trippoint.NewOutlierTracker(topK)
	)

	type slot struct {
		die       *dut.Die
		key       uint64
		dr        DieResult
		cost      ate.Stats
		fromCache bool
	}
	window := make([]slot, batch)
	var missIdx []int

	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		w := window[:end-start]
		missIdx = missIdx[:0]

		// Serial cache resolve in lot order: hit/miss counters and the
		// set of dies that fan out are deterministic.
		for j := range w {
			die := src.Die(start + j)
			w[j] = slot{die: die}
			if opts.Cache != nil {
				w[j].key = dieCacheKey(lotKey, die)
				if raw, ok := opts.Cache.Get(w[j].key); ok {
					if dr, cost, ok := decodeDieRecord(raw); ok && dr.DieID == die.ID {
						w[j].dr, w[j].cost, w[j].fromCache = dr, cost, true
						continue
					}
				}
			}
			missIdx = append(missIdx, j)
		}

		// Fan the misses over the pool (or the caller's persistent fleet);
		// per-die seeds keep every die's measurement stream independent of
		// worker count and batch shape.
		screenMiss := func(wk *lotWorker, k int) error {
			j := missIdx[k]
			dr, cost, err := wk.screen(param, tests, w[j].die, baseSeed+int64(w[j].die.ID))
			if err != nil {
				return err
			}
			w[j].dr, w[j].cost = dr, cost
			return nil
		}
		var err error
		if opts.Fleet != nil {
			err = parallel.RunOn(opts.Fleet, len(missIdx), newWorker, screenMiss)
		} else {
			err = parallel.Run(len(missIdx), nw, newWorker, screenMiss)
		}
		if err != nil {
			return nil, err
		}

		// Merge in lot order: aggregation, cache inserts (deterministic
		// segment bytes) and telemetry all see the same sequence at any
		// worker count.
		for j := range w {
			i := start + j
			dr, cost := w[j].dr, w[j].cost
			if opts.Cache != nil && !w[j].fromCache {
				opts.Cache.Put(w[j].key, encodeDieRecord(dr, cost))
			}
			tel.RecordItem("die", i+1, n)
			if opts.RetainDies {
				rep.Dies = append(rep.Dies, dr)
			}
			rep.DieCount++
			rep.ClassCounts[dr.Class]++
			rep.Measurements += cost.Measurements
			rep.Stats.Add(cost)
			ph.Span().Event("die",
				telemetry.I("die", dr.DieID),
				telemetry.S("corner", dr.Corner.String()),
				telemetry.F("worst_trip", dr.WorstTrip),
				telemetry.F("wcr", dr.WCR),
				telemetry.I("measurements", cost.Measurements),
			)

			sumWorst += dr.WorstTrip
			minWorst = math.Min(minWorst, dr.WorstTrip)
			maxWorst = math.Max(maxWorst, dr.WorstTrip)
			if cur, ok := rep.PerCornerWorst[dr.Corner]; !ok || worseThan(dr.WorstTrip, cur) {
				rep.PerCornerWorst[dr.Corner] = dr.WorstTrip
			}
			if first || dr.WCR > rep.WorstDie.WCR {
				rep.WorstDie = dr
				first = false
			}
			drift.Add(float64(i), dr.WorstTrip)
			outliers.Add(dr.DieID, dr.WorstTrip)
		}
	}

	rep.MeanWorstTrip = sumWorst / float64(n)
	rep.SpreadLot = maxWorst - minWorst
	rep.Drift = drift.Report()
	rep.Outliers = outliers.Report(zThresh)

	if opts.Cache != nil {
		if _, err := opts.Cache.Flush(); err != nil {
			return nil, fmt.Errorf("core: persisting lot cache: %w", err)
		}
		st := opts.Cache.Stats()
		tel.RecordDiskCache(telemetry.DiskCacheStats{
			LoadedEntries:  st.LoadedEntries,
			LoadedSegments: st.LoadedSegments,
			Hits:           st.Hits,
			Misses:         st.Misses,
			FlushedEntries: st.FlushedEntries,
			BytesOnDisk:    st.BytesOnDisk,
		})
	}
	ph.End(telCost(rep.Stats))
	return rep, nil
}

// lotCacheKey fingerprints everything a die's screen outcome depends on
// besides the die itself: parameter, geometry, the ordered test set
// (structural fingerprints — names don't matter) and the seed base.
func lotCacheKey(param ate.Parameter, geom dut.Geometry, tests []testgen.Test, baseSeed int64) uint64 {
	h := fnvMix(fnvOffset, uint64(param))
	h = fnvMix(h, uint64(geom.Banks))
	h = fnvMix(h, uint64(geom.Rows))
	h = fnvMix(h, uint64(geom.Cols))
	h = fnvMix(h, uint64(baseSeed))
	h = fnvMix(h, uint64(len(tests)))
	for _, t := range tests {
		h = fnvMix(h, t.Fingerprint())
	}
	return h
}

// dieCacheKey extends the lot key with the die's content fingerprint.
func dieCacheKey(lotKey uint64, die *dut.Die) uint64 {
	return fnvMix(lotKey, die.Fingerprint())
}

// dieRecordVersion tags the on-disk die-record encoding; bump on any
// layout change so stale segments read as misses, never as garbage.
const dieRecordVersion = 1

// LotCacheScope is the cachestore scope under which lot die records
// persist. Binaries pass it to cachestore.Open so segments written by
// other record families (or by a future incompatible die-record layout,
// which bumps this constant alongside dieRecordVersion) are skipped at
// load instead of misread.
const LotCacheScope uint64 = 0x4c4f545631 // "LOTV1"

// encodeDieRecord serializes one die's screen outcome — result plus the
// complete tester cost, so a warm run replays exact accounting.
func encodeDieRecord(dr DieResult, cost ate.Stats) []byte {
	buf := make([]byte, 0, 96+len(dr.WorstTest))
	buf = append(buf, dieRecordVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(dr.DieID)))
	buf = append(buf, byte(dr.Corner))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(dr.WorstTrip))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(dr.WCR))
	buf = append(buf, byte(dr.Class))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(dr.FunctionalFails)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dr.WorstTest)))
	buf = append(buf, dr.WorstTest...)

	buf = binary.LittleEndian.AppendUint64(buf, uint64(cost.Measurements))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cost.VectorsApplied))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cost.TestTimeSec))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cost.Profiles))
	buf = append(buf, byte(len(cost.PerParam)))
	for _, v := range cost.PerParam {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cost.Functional))
	return buf
}

// decodeDieRecord parses encodeDieRecord's output; ok is false on any
// framing or version mismatch (treated as a cache miss by the caller).
func decodeDieRecord(raw []byte) (dr DieResult, cost ate.Stats, ok bool) {
	r := recReader{buf: raw}
	if r.u8() != dieRecordVersion {
		return DieResult{}, ate.Stats{}, false
	}
	dr.DieID = int(int64(r.u64()))
	dr.Corner = dut.Corner(r.u8())
	dr.WorstTrip = math.Float64frombits(r.u64())
	dr.WCR = math.Float64frombits(r.u64())
	dr.Class = wcr.Class(r.u8())
	dr.FunctionalFails = int(int64(r.u64()))
	dr.WorstTest = r.str()

	cost.Measurements = int64(r.u64())
	cost.VectorsApplied = int64(r.u64())
	cost.TestTimeSec = math.Float64frombits(r.u64())
	cost.Profiles = int64(r.u64())
	if int(r.u8()) != len(cost.PerParam) {
		return DieResult{}, ate.Stats{}, false
	}
	for i := range cost.PerParam {
		cost.PerParam[i] = int64(r.u64())
	}
	cost.Functional = int64(r.u64())
	if r.failed || r.pos != len(raw) {
		return DieResult{}, ate.Stats{}, false
	}
	return dr, cost, true
}

// recReader is a bounds-checked little-endian cursor over a die record.
type recReader struct {
	buf    []byte
	pos    int
	failed bool
}

func (r *recReader) u8() byte {
	if r.failed || r.pos+1 > len(r.buf) {
		r.failed = true
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *recReader) u64() uint64 {
	if r.failed || r.pos+8 > len(r.buf) {
		r.failed = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *recReader) str() string {
	if r.failed || r.pos+4 > len(r.buf) {
		r.failed = true
		return ""
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	r.pos += 4
	if n < 0 || r.pos+n > len(r.buf) {
		r.failed = true
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}
