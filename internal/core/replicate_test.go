package core

import (
	"strings"
	"testing"
)

// TestTable1OrderingHoldsAcrossSeeds is the statistical form of the
// headline claim: over several independent replicas (different seeds AND
// different dies) the paper's WCR ordering must hold in every one, and the
// NN+GA row must land in the weakness band in the clear majority.
func TestTable1OrderingHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated full flows")
	}
	const n = 5
	rep, err := RunTable1Replicated(DefaultTable1Config(1000), 1000, n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrderingHeld != n {
		t.Errorf("ordering held in only %d/%d replicas", rep.OrderingHeld, n)
	}
	if rep.NNGAInWeakness < n-1 {
		t.Errorf("NNGA in weakness band in only %d/%d replicas", rep.NNGAInWeakness, n)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("%d row stats", len(rep.Rows))
	}
	march, random, nnga := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	// Mean WCRs sit in the paper's neighbourhoods.
	if march.MeanWCR < 0.55 || march.MeanWCR > 0.70 {
		t.Errorf("March mean WCR %.3f outside the paper's neighbourhood of 0.619", march.MeanWCR)
	}
	if random.MeanWCR < 0.62 || random.MeanWCR > 0.80 {
		t.Errorf("Random mean WCR %.3f outside the paper's neighbourhood of 0.701", random.MeanWCR)
	}
	if nnga.MeanWCR < 0.85 || nnga.MeanWCR > 1.02 {
		t.Errorf("NNGA mean WCR %.3f outside the paper's neighbourhood of 0.904", nnga.MeanWCR)
	}
	// Replica-to-replica scatter is modest: the result is a property of
	// the method, not of a lucky seed.
	if nnga.StdWCR > 0.08 {
		t.Errorf("NNGA WCR σ %.3f too large across replicas", nnga.StdWCR)
	}
}

func TestRunTable1ReplicatedValidation(t *testing.T) {
	if _, err := RunTable1Replicated(DefaultTable1Config(1), 1, 0); err == nil {
		t.Error("zero replicas accepted")
	}
}

func TestReplicationReportFormat(t *testing.T) {
	rep := &ReplicationReport{
		Replicas:       3,
		OrderingHeld:   3,
		NNGAInWeakness: 2,
		Rows: []RowStats{
			{TestName: "March Test", MeanWCR: 0.62, MinWCR: 0.61, MaxWCR: 0.63, MeanValue: 32.1},
		},
	}
	s := rep.Format()
	for _, want := range []string{"replicated 3×", "March Test", "3/3", "2/3"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
