package core

import (
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/dut"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

func lotTests(t *testing.T) []testgen.Test {
	t.Helper()
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(91, dut.DefaultGeometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond
	tests := gen.Batch(4)
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 50, 0, cond)
	if err != nil {
		t.Fatal(err)
	}
	return append(tests, march)
}

func TestScreenLotValidation(t *testing.T) {
	dies := dut.NewDieLot(1, 3)
	if _, err := ScreenLot(ate.TDQ, nil, dies, dut.DefaultGeometry(), 1); err == nil {
		t.Error("empty test set accepted")
	}
	if _, err := ScreenLot(ate.TDQ, lotTests(t), nil, dut.DefaultGeometry(), 1); err == nil {
		t.Error("empty lot accepted")
	}
}

func TestScreenLotBasics(t *testing.T) {
	dies := dut.NewDieLot(7, 12)
	rep, err := ScreenLot(ate.TDQ, lotTests(t), dies, dut.DefaultGeometry(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dies) != 12 {
		t.Fatalf("screened %d dies", len(rep.Dies))
	}
	total := 0
	for _, n := range rep.ClassCounts {
		total += n
	}
	if total != 12 {
		t.Errorf("class counts sum %d", total)
	}
	if rep.SpreadLot <= 0 {
		t.Error("no lot spread; process variation not visible")
	}
	if rep.Measurements <= 0 {
		t.Error("no measurement accounting")
	}
	for _, d := range rep.Dies {
		if d.WorstTest == "" {
			t.Errorf("die %d missing worst test", d.DieID)
		}
		if d.Class != wcr.Classify(d.WCR) {
			t.Errorf("die %d class inconsistent", d.DieID)
		}
	}
}

func TestScreenLotCornerOrdering(t *testing.T) {
	// Explicit corner dies: slow silicon must be the worst for T_DQ.
	dies := []*dut.Die{
		dut.NewDie(0, dut.CornerFast),
		dut.NewDie(1, dut.CornerTypical),
		dut.NewDie(2, dut.CornerSlow),
	}
	rep, err := ScreenLot(ate.TDQ, lotTests(t), dies, dut.DefaultGeometry(), 11)
	if err != nil {
		t.Fatal(err)
	}
	ff := rep.PerCornerWorst[dut.CornerFast]
	tt := rep.PerCornerWorst[dut.CornerTypical]
	ss := rep.PerCornerWorst[dut.CornerSlow]
	if !(ff > tt && tt > ss) {
		t.Errorf("corner worst windows not ordered FF > TT > SS: %.2f, %.2f, %.2f", ff, tt, ss)
	}
	if rep.WorstDie.Corner != dut.CornerSlow {
		t.Errorf("worst die corner %s, want SS", rep.WorstDie.Corner)
	}
}

func TestScreenLotDeterministic(t *testing.T) {
	dies := dut.NewDieLot(13, 5)
	a, err := ScreenLot(ate.TDQ, lotTests(t), dies, dut.DefaultGeometry(), 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScreenLot(ate.TDQ, lotTests(t), dies, dut.DefaultGeometry(), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dies {
		if a.Dies[i].WorstTrip != b.Dies[i].WorstTrip {
			t.Fatalf("lot screen not deterministic at die %d", i)
		}
	}
}

func TestScreenLotDetectsFunctionalFailures(t *testing.T) {
	// A die with an aggressive weak cell must register functional fails
	// under high-activity tests.
	weak := dut.NewDie(0, dut.CornerTypical, dut.WithWeakCell(1, 1.82))
	healthy := dut.NewDie(1, dut.CornerTypical)

	// High-activity test touching the weak address.
	words := dut.DefaultGeometry().Words()
	seq := make(testgen.Sequence, 0, 600)
	for i := 0; i < 150; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: 1})
	hot := testgen.Test{Name: "HOT", Seq: seq, Cond: testgen.NominalConditions()}

	rep, err := ScreenLot(ate.TDQ, []testgen.Test{hot}, []*dut.Die{weak, healthy}, dut.DefaultGeometry(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dies[0].FunctionalFails == 0 {
		t.Error("weak die shows no functional failures under the hot test")
	}
	if rep.Dies[1].FunctionalFails != 0 {
		t.Error("healthy die shows functional failures")
	}
}

func TestLotReportFormat(t *testing.T) {
	dies := dut.NewDieLot(19, 4)
	rep, err := ScreenLot(ate.TDQ, lotTests(t)[:2], dies, dut.DefaultGeometry(), 19)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Format()
	for _, want := range []string{"Lot screen", "worst die", "classes", "lot spread"} {
		if !strings.Contains(s, want) {
			t.Errorf("lot report missing %q", want)
		}
	}
}

func TestScreenLotParallelMatchesSerial(t *testing.T) {
	dies := dut.NewDieLot(23, 9)
	tests := lotTests(t)
	serial, err := ScreenLot(ate.TDQ, tests, dies, dut.DefaultGeometry(), 23)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ScreenLotParallel(ate.TDQ, tests, dies, dut.DefaultGeometry(), 23, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Dies) != len(parallel.Dies) {
		t.Fatalf("die counts differ: %d vs %d", len(serial.Dies), len(parallel.Dies))
	}
	for i := range serial.Dies {
		if serial.Dies[i] != parallel.Dies[i] {
			t.Fatalf("die %d differs: serial %+v, parallel %+v", i, serial.Dies[i], parallel.Dies[i])
		}
	}
	if serial.Measurements != parallel.Measurements {
		t.Errorf("cost differs: %d vs %d", serial.Measurements, parallel.Measurements)
	}
	if serial.WorstDie != parallel.WorstDie {
		t.Error("worst die differs")
	}
}

func TestScreenLotParallelWorkerClamping(t *testing.T) {
	dies := dut.NewDieLot(29, 3)
	// More workers than dies, and zero workers, must both work.
	if _, err := ScreenLotParallel(ate.TDQ, lotTests(t)[:2], dies, dut.DefaultGeometry(), 29, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := ScreenLotParallel(ate.TDQ, lotTests(t)[:2], dies, dut.DefaultGeometry(), 29, 0); err != nil {
		t.Fatal(err)
	}
}
