package core

import (
	"fmt"
	"strings"

	"repro/internal/ate"
)

// Multi-parameter characterization. §5: "we propose to pre-select a set of
// DC or AC critical parameters; and generate NNs individually for each
// parameter or each characterization analysis task." MultiCharacterize
// runs one full flow (learning + optimization) per parameter on the same
// tester insertion and merges the per-parameter worst cases into one
// report, "covering all considered fitness variables" (§6).

// ParameterOutcome is one parameter's flow result.
type ParameterOutcome struct {
	Parameter ate.Parameter
	Worst     Entry
	Database  *Database
	// Learning quality and cost.
	EnsembleMSE  float64
	Measurements int64
	// Diagnosis is the fuzzy rule-base explanation of the worst test.
	Diagnosis Explanation
}

// MultiReport aggregates all characterized parameters.
type MultiReport struct {
	Outcomes []ParameterOutcome
}

// WorstOverall returns the outcome with the largest WCR across parameters.
func (m *MultiReport) WorstOverall() (ParameterOutcome, bool) {
	if len(m.Outcomes) == 0 {
		return ParameterOutcome{}, false
	}
	best := m.Outcomes[0]
	for _, o := range m.Outcomes[1:] {
		if o.Worst.WCR > best.Worst.WCR {
			best = o
		}
	}
	return best, true
}

// Format renders the merged report.
func (m *MultiReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-parameter worst-case characterization (%d parameters)\n", len(m.Outcomes))
	fmt.Fprintf(&b, "%-8s %10s %8s %-9s %-11s %13s\n", "param", "worst", "WCR", "class", "test", "measurements")
	for _, o := range m.Outcomes {
		fmt.Fprintf(&b, "%-8s %7.3f %s %8.3f %-9s %-11s %13d\n",
			o.Parameter, o.Worst.Value, o.Parameter.Unit(), o.Worst.WCR, o.Worst.Class,
			o.Worst.Test.Name, o.Measurements)
	}
	if w, ok := m.WorstOverall(); ok {
		fmt.Fprintf(&b, "dominant weakness: %s (WCR %.3f, %s)\n", w.Parameter, w.Worst.WCR, w.Worst.Class)
		fmt.Fprintf(&b, "diagnosis: %s\n", w.Diagnosis)
	}
	return b.String()
}

// MultiCharacterize runs the full CI flow once per parameter. The base
// configuration's Parameter field is overridden per run; seeds derive from
// the base seed so parameters get independent randomness. Flows share the
// tester (and therefore its cost counters and thermal state), matching a
// single characterization insertion.
func MultiCharacterize(base Config, tester *ate.ATE, params []ate.Parameter) (*MultiReport, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("core: no parameters selected")
	}
	diag, err := NewDiagnosis()
	if err != nil {
		return nil, err
	}
	rep := &MultiReport{}
	for i, p := range params {
		cfg := base
		cfg.Parameter = p
		cfg.Seed = base.Seed + int64(i)*1009
		char, err := NewCharacterizer(cfg, tester)
		if err != nil {
			return nil, fmt.Errorf("core: parameter %s: %w", p, err)
		}
		before := tester.Stats().Measurements
		learned, err := char.Learn()
		if err != nil {
			char.Close()
			return nil, fmt.Errorf("core: learning %s: %w", p, err)
		}
		opt, err := char.Optimize()
		if err != nil {
			char.Close()
			return nil, fmt.Errorf("core: optimizing %s: %w", p, err)
		}
		worst, ok := opt.Database.Worst()
		if !ok {
			char.Close()
			return nil, fmt.Errorf("core: parameter %s produced no worst case", p)
		}
		expl, err := diag.ExplainTest(worst.Test, char.Generator().Limits())
		char.Close()
		if err != nil {
			return nil, err
		}
		rep.Outcomes = append(rep.Outcomes, ParameterOutcome{
			Parameter:    p,
			Worst:        worst,
			Database:     opt.Database,
			EnsembleMSE:  learned.EnsembleValErr,
			Measurements: tester.Stats().Measurements - before,
			Diagnosis:    expl,
		})
	}
	return rep, nil
}

// FunctionalScreen replays every database test once with functional
// checking and moves failing tests to the database's functional list,
// implementing §6's "functional failure patterns (if any) are stored
// separately". It returns the number of functional failures found.
func FunctionalScreen(tester *ate.ATE, db *Database) (int, error) {
	if db == nil {
		return 0, fmt.Errorf("core: nil database")
	}
	kept := db.Entries[:0]
	fails := 0
	for _, e := range db.Entries {
		ok, err := tester.FunctionalPass(e.Test)
		if err != nil {
			return fails, err
		}
		if ok {
			kept = append(kept, e)
			continue
		}
		fails++
		db.AddFunctionalFailure(e.Test)
	}
	db.Entries = kept
	db.Sort()
	return fails, nil
}
