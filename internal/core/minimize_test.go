package core

import (
	"testing"

	"repro/internal/testgen"
)

// paddedWorstTest builds a test whose provoking core (coordinated
// write pairs) is surrounded by benign filler the minimizer should strip.
func paddedWorstTest() testgen.Test {
	words := dutWords()
	seq := make(testgen.Sequence, 0, 1000)
	// 200 benign read vectors of filler up front.
	for i := 0; i < 200; i++ {
		seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 8)})
	}
	// The provoking core: 150 coordinated pairs.
	for i := 0; i < 150; i++ {
		base := uint32(0)
		if i%2 == 1 {
			base = words - 2
		}
		seq = append(seq,
			testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
			testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
		)
	}
	// 200 more benign vectors after.
	for i := 0; i < 200; i++ {
		seq = append(seq, testgen.Vector{Op: testgen.OpRead, Addr: uint32(i % 8)})
	}
	return testgen.Test{Name: "PADDED", Seq: seq, Cond: testgen.NominalConditions()}
}

func TestMinimizeStripsFiller(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(77), newTester(t, 77))
	if err != nil {
		t.Fatal(err)
	}
	orig := paddedWorstTest()
	res, err := char.Minimize(orig, DefaultMinimizeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Minimized.Seq) >= len(orig.Seq)/2 {
		t.Errorf("minimizer kept %d of %d vectors", len(res.Minimized.Seq), len(orig.Seq))
	}
	if res.MinimizedWCR < res.OriginalWCR-0.05 {
		t.Errorf("minimized WCR %.3f lost too much severity vs %.3f",
			res.MinimizedWCR, res.OriginalWCR)
	}
	if res.ReductionFactor() < 2 {
		t.Errorf("reduction factor %.1f", res.ReductionFactor())
	}
	if res.Probes <= 0 {
		t.Error("no probe accounting")
	}
	// The survivors must be dominated by the provoking writes.
	writes := res.Minimized.Seq.Writes()
	if float64(writes)/float64(len(res.Minimized.Seq)) < 0.6 {
		t.Errorf("minimized test only %d/%d writes; filler survived",
			writes, len(res.Minimized.Seq))
	}
}

func TestMinimizeRespectsProbeBudget(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(79), newTester(t, 79))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMinimizeConfig()
	cfg.MaxProbes = 10
	res, err := char.Minimize(paddedWorstTest(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// +1: the final verification measurement is always taken.
	if res.Probes > cfg.MaxProbes+1 {
		t.Errorf("probes %d exceeded budget %d", res.Probes, cfg.MaxProbes)
	}
}

func TestMinimizeEmptyTest(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(81), newTester(t, 81))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := char.Minimize(testgen.Test{Name: "e"}, DefaultMinimizeConfig()); err == nil {
		t.Error("empty test accepted")
	}
}

func TestMinimizeRespectsMinVectors(t *testing.T) {
	char, err := NewCharacterizer(quickConfig(83), newTester(t, 83))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMinimizeConfig()
	cfg.MinVectors = 100
	res, err := char.Minimize(paddedWorstTest(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Minimized.Seq) < 100 {
		t.Errorf("minimized below MinVectors: %d", len(res.Minimized.Seq))
	}
}

func TestReductionFactorEdgeCases(t *testing.T) {
	r := MinimizeResult{
		Original:  testgen.Test{Seq: make(testgen.Sequence, 100)},
		Minimized: testgen.Test{Seq: make(testgen.Sequence, 25)},
	}
	if r.ReductionFactor() != 4 {
		t.Errorf("reduction %g", r.ReductionFactor())
	}
	r.Minimized.Seq = nil
	if r.ReductionFactor() != 0 {
		t.Error("empty minimized sequence should report factor 0")
	}
}
