package core

import (
	"fmt"
	"strings"

	"repro/internal/ate"
	"repro/internal/wcr"
)

// Session orchestration: the one-call form of the complete paper flow plus
// the analysis steps a characterization engineer runs afterwards. RunSession
// wires Learn → Optimize → diagnosis → (optional) functional screen and
// minimization into a single report.

// SessionConfig extends the flow configuration with the post-processing
// switches.
type SessionConfig struct {
	Flow Config
	// Minimize reduces the worst test to its provoking core after the GA.
	Minimize bool
	// FunctionalScreen replays database tests and separates functional
	// failures (§6) before reporting.
	FunctionalScreen bool
	// WeightFilePath, when set, persists the trained ensemble.
	WeightFilePath string
	// DatabasePath, when set, persists the worst-case database.
	DatabasePath string
}

// SessionResult is everything one characterization session produced.
type SessionResult struct {
	Learning     *LearningResult
	Optimization *OptimizationResult
	Worst        Entry
	Diagnosis    Explanation
	// Minimized is non-nil when SessionConfig.Minimize was set.
	Minimized *MinimizeResult
	// FunctionalFails counts database tests moved to the functional list.
	FunctionalFails int
	Stats           ate.Stats
}

// Format renders the session summary.
func (r *SessionResult) Format() string {
	var b strings.Builder
	ls := r.Learning.DSV.Stats()
	fmt.Fprintf(&b, "Characterization session\n")
	fmt.Fprintf(&b, "learning: %d tests, trip points %.3f–%.3f (spread %.3f), ensemble MSE %.5f\n",
		ls.N, ls.Min, ls.Max, ls.Range, r.Learning.EnsembleValErr)
	fmt.Fprintf(&b, "optimization: %d generations, %d evaluations, %d restarts\n",
		r.Optimization.GA.Generations, r.Optimization.GA.Evaluations, r.Optimization.GA.Restarts)
	fmt.Fprintf(&b, "worst case: %s  WCR %.3f (%s), value %.3f\n",
		r.Worst.Test.Name, r.Worst.WCR, r.Worst.Class, r.Worst.Value)
	fmt.Fprintf(&b, "diagnosis: %s\n", r.Diagnosis)
	if r.Minimized != nil {
		fmt.Fprintf(&b, "minimized: %d → %d vectors (%.1f×)\n",
			len(r.Minimized.Original.Seq), len(r.Minimized.Minimized.Seq), r.Minimized.ReductionFactor())
	}
	if r.FunctionalFails > 0 {
		fmt.Fprintf(&b, "functional failures stored separately: %d\n", r.FunctionalFails)
	}
	fmt.Fprintf(&b, "cost: %d measurements, %.2f s simulated tester time\n",
		r.Stats.Measurements, r.Stats.TestTimeSec)
	return b.String()
}

// RunSession executes the complete session on the tester.
func RunSession(cfg SessionConfig, tester *ate.ATE) (*SessionResult, error) {
	char, err := NewCharacterizer(cfg.Flow, tester)
	if err != nil {
		return nil, err
	}
	defer char.Close()
	res := &SessionResult{}

	if res.Learning, err = char.Learn(); err != nil {
		return nil, err
	}
	if cfg.WeightFilePath != "" {
		if err := char.SaveWeights(cfg.WeightFilePath); err != nil {
			return nil, err
		}
	}

	if res.Optimization, err = char.Optimize(); err != nil {
		return nil, err
	}
	worst, ok := res.Optimization.Database.Worst()
	if !ok {
		return nil, fmt.Errorf("core: session produced no worst case")
	}
	res.Worst = worst

	diag, err := NewDiagnosis()
	if err != nil {
		return nil, err
	}
	if res.Diagnosis, err = diag.ExplainTest(worst.Test, char.Generator().Limits()); err != nil {
		return nil, err
	}

	if cfg.FunctionalScreen {
		ph := cfg.Flow.Telemetry.StartPhase("functional-screen")
		before := tester.Stats()
		fails, err := FunctionalScreen(tester, res.Optimization.Database)
		ph.End(telDelta(before, tester.Stats()))
		if err != nil {
			return nil, err
		}
		res.FunctionalFails = fails
		// The worst entry may have moved to the functional list; re-read.
		if w, ok := res.Optimization.Database.Worst(); ok {
			res.Worst = w
		}
	}

	if cfg.Minimize {
		ph := cfg.Flow.Telemetry.StartPhase("minimize")
		before := tester.Stats()
		min, err := char.Minimize(res.Worst.Test, DefaultMinimizeConfig())
		ph.End(telDelta(before, tester.Stats()))
		if err != nil {
			return nil, err
		}
		res.Minimized = min
	}

	if cfg.DatabasePath != "" {
		if err := res.Optimization.Database.SaveFile(cfg.DatabasePath); err != nil {
			return nil, err
		}
	}

	res.Stats = tester.Stats()
	return res, nil
}

// Classify is a small convenience for session consumers: the fig. 6 band
// of the session's worst case.
func (r *SessionResult) Classify() wcr.Class { return r.Worst.Class }
