package core

import (
	"fmt"

	"repro/internal/fuzzy"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// Diagnosis is the rule-based fuzzy analysis of §5's closing remark: "fuzzy
// logic can describe more than one analysis parameter; such as if A and B
// and C, then D is quite close to the limit of the target device-spec."
//
// Where the neural network is a black-box severity predictor, the
// diagnosis engine is its interpretable counterpart: a small Mamdani rule
// base over the activity features of a test that yields both a severity
// estimate and the linguistic statement of *which* activity combination
// makes the test dangerous. The flow uses it to annotate worst-case
// database entries for the failure-analysis engineer.
type Diagnosis struct {
	engine *fuzzy.Engine
	out    *fuzzy.Variable
}

// Feature variables used by the rule base, drawn from the NN encoding.
var diagnosisInputs = []struct {
	name string
	feat int
}{
	{"address-activity", testgen.FeatATDPeak},
	{"data-toggle", testgen.FeatTogglePeak},
	{"switching-noise", testgen.FeatSSNProxy},
	{"coupling", testgen.FeatCoupling},
}

// NewDiagnosis builds the rule base.
func NewDiagnosis() (*Diagnosis, error) {
	out, err := fuzzy.AutoPartition("severity", 0.5, 1.2, fuzzy.SeverityLabels())
	if err != nil {
		return nil, err
	}
	e, err := fuzzy.NewEngine(out)
	if err != nil {
		return nil, err
	}
	for _, in := range diagnosisInputs {
		// Partitions are calibrated to physically achievable feature
		// ranges, not the nominal [0, 1]: address activity of a pattern
		// that also couples tops out near 0.55 (adjacent addresses differ
		// in few bits), so "high" must saturate by ≈ 0.65.
		v := &fuzzy.Variable{
			Name: in.name, Min: 0, Max: 1,
			Terms: []fuzzy.Term{
				{Name: "low", MF: fuzzy.ShoulderLeft{A: 0.15, B: 0.35}, Center: 0.1},
				{Name: "medium", MF: fuzzy.Triangular{A: 0.2, B: 0.4, C: 0.6}, Center: 0.4},
				{Name: "high", MF: fuzzy.ShoulderRight{A: 0.4, B: 0.65}, Center: 0.8},
			},
		}
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if err := e.AddInput(v); err != nil {
			return nil, err
		}
	}

	is := func(v, t string) fuzzy.Clause { return fuzzy.Clause{Variable: v, Term: t} }
	sev := func(t string) fuzzy.Clause { return fuzzy.Clause{Variable: "severity", Term: t} }
	rules := []fuzzy.Rule{
		// The paper's example shape: if A and B and C (and D), then the
		// parameter is at / beyond the limit of the device spec.
		{If: []fuzzy.Clause{is("address-activity", "high"), is("data-toggle", "high"), is("switching-noise", "high"), is("coupling", "high")},
			Then: sev("beyond-limit")},
		{If: []fuzzy.Clause{is("address-activity", "high"), is("data-toggle", "high"), is("switching-noise", "high")},
			Then: sev("at-limit")},
		{If: []fuzzy.Clause{is("data-toggle", "high"), is("coupling", "high")},
			Then: sev("close-to-limit")},
		{If: []fuzzy.Clause{is("address-activity", "high"), is("switching-noise", "high")},
			Then: sev("close-to-limit")},
		{If: []fuzzy.Clause{is("address-activity", "medium"), is("data-toggle", "medium")},
			Then: sev("safe")},
		{If: []fuzzy.Clause{is("data-toggle", "high")},
			Then: sev("safe"), Weight: 0.6},
		{If: []fuzzy.Clause{is("address-activity", "high")},
			Then: sev("safe"), Weight: 0.6},
		{If: []fuzzy.Clause{is("address-activity", "low"), is("data-toggle", "low"), is("switching-noise", "low")},
			Then: sev("very-safe")},
	}
	for _, r := range rules {
		if err := e.AddRule(r); err != nil {
			return nil, err
		}
	}
	return &Diagnosis{engine: e, out: out}, nil
}

// Explanation is the diagnosis of one test.
type Explanation struct {
	// Severity is the crisp WCR estimate from the rule base.
	Severity float64
	// Class is the fig. 6 band of the estimate.
	Class wcr.Class
	// Verdict is the dominant linguistic term ("close-to-limit", …).
	Verdict string
	// Drivers lists the input variables graded "high" (≥ 0.5), the "A and
	// B and C" of the fired rules.
	Drivers []string
}

// String renders the explanation as the paper phrases it.
func (e Explanation) String() string {
	if len(e.Drivers) == 0 {
		return fmt.Sprintf("severity %.3f (%s): no aggressive activity terms", e.Severity, e.Verdict)
	}
	s := "if "
	for i, d := range e.Drivers {
		if i > 0 {
			s += " and "
		}
		s += d
	}
	return fmt.Sprintf("%s, then the parameter is %s of the target device-spec (severity %.3f)", s, e.Verdict, e.Severity)
}

// Explain diagnoses a test from its feature vector.
func (d *Diagnosis) Explain(features []float64) (Explanation, error) {
	if len(features) != testgen.NumFeatures {
		return Explanation{}, fmt.Errorf("core: diagnosis needs %d features, got %d", testgen.NumFeatures, len(features))
	}
	inputs := make(map[string]float64, len(diagnosisInputs))
	var drivers []string
	for _, in := range diagnosisInputs {
		v := features[in.feat]
		inputs[in.name] = v
		if v >= 0.5 {
			drivers = append(drivers, in.name)
		}
	}
	grades, err := d.engine.Infer(inputs)
	if err != nil {
		return Explanation{}, err
	}
	sev := d.out.CentroidDefuzzify(grades, 0)

	best, bi := -1.0, 0
	for i, g := range grades {
		if g > best {
			best, bi = g, i
		}
	}
	verdict := d.out.Terms[bi].Name
	if best <= 0 {
		verdict = "unclassified"
	}
	return Explanation{
		Severity: sev,
		Class:    wcr.Classify(sev),
		Verdict:  verdict,
		Drivers:  drivers,
	}, nil
}

// ExplainTest extracts features and diagnoses in one call.
func (d *Diagnosis) ExplainTest(t testgen.Test, limits testgen.ConditionLimits) (Explanation, error) {
	return d.Explain(testgen.ExtractFeatures(t, limits))
}
