package core

import (
	"strings"
	"testing"

	"repro/internal/wcr"
)

// quickTable1Config shrinks the comparison for unit testing while keeping
// every phase meaningful.
func quickTable1Config(seed int64) Table1Config {
	cfg := DefaultTable1Config(seed)
	cfg.Flow = quickConfig(seed)
	cfg.RandomTests = 250
	return cfg
}

// TestTable1ReproducesPaperShape is the headline integration test: the full
// flow must reproduce the qualitative result of the paper's Table 1 —
// WCR(March) < WCR(Random) < WCR(NNGA), with the NN+GA test landing in the
// weakness band (the paper measured 0.619 / 0.701 / 0.904).
func TestTable1ReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization flow")
	}
	// Full-scale configuration: the shape claim needs the real GA budget.
	tab, err := RunTable1(DefaultTable1Config(71), newTester(t, 71))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	march, random, nnga := tab.Rows[0], tab.Rows[1], tab.Rows[2]

	if march.Technique != "Deterministic" || random.Technique != "Random" || nnga.Technique != "Neural & Genetic" {
		t.Fatalf("row techniques wrong: %+v", tab.Rows)
	}
	if !(march.WCR < random.WCR && random.WCR < nnga.WCR) {
		t.Errorf("WCR ordering broken: March %.3f, Random %.3f, NNGA %.3f",
			march.WCR, random.WCR, nnga.WCR)
	}
	// T_DQ values must order inversely (smaller window = worse).
	if !(march.Value > random.Value && random.Value > nnga.Value) {
		t.Errorf("T_DQ ordering broken: %.1f, %.1f, %.1f",
			march.Value, random.Value, nnga.Value)
	}
	// Band checks, paper-calibrated: March and Random pass, NNGA reaches
	// the weakness band without violating the spec on the typical die.
	if march.Class != wcr.Pass {
		t.Errorf("March class %v, want pass", march.Class)
	}
	if random.Class != wcr.Pass {
		t.Errorf("Random class %v, want pass", random.Class)
	}
	if nnga.Class != wcr.Weakness {
		t.Errorf("NNGA class %v (WCR %.3f), want weakness", nnga.Class, nnga.WCR)
	}
	// The gap must be decisive, as in the paper (0.904 vs 0.701): the CI
	// flow finds drift that random testing missed.
	if nnga.WCR-random.WCR < 0.05 {
		t.Errorf("NNGA WCR %.3f not decisively above random %.3f", nnga.WCR, random.WCR)
	}
}

func TestTable1Format(t *testing.T) {
	tab := &Table1{
		Parameter: quickConfig(1).Parameter,
		VddV:      1.8,
		Rows: []Table1Row{
			{TestName: "March Test", Technique: "Deterministic", WCR: 0.619, Value: 32.3, Class: wcr.Pass, Measurements: 40},
			{TestName: "NNGA Test", Technique: "Neural & Genetic", WCR: 0.904, Value: 22.1, Class: wcr.Weakness, Measurements: 5000},
		},
	}
	s := tab.Format()
	for _, want := range []string{"Table 1", "Vdd 1.8V", "March Test", "0.619", "32.3", "weakness", "T_DQ (ns)"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestTable1ConfigValidation(t *testing.T) {
	cfg := quickTable1Config(1)
	cfg.RandomTests = 0
	if _, err := RunTable1(cfg, newTester(t, 1)); err == nil {
		t.Error("zero random tests accepted")
	}
}

func TestTable1DefaultsFixedConditions(t *testing.T) {
	// Even when the flow config forgets the fixed conditions, Table 1 pins
	// them to nominal (the table is specified at Vdd 1.8 V).
	cfg := quickTable1Config(73)
	cfg.Flow.FixedConditions = nil
	cfg.RandomTests = 20
	cfg.Flow.GA.MaxGenerations = 2
	tab, err := RunTable1(cfg, newTester(t, 73))
	if err != nil {
		t.Fatal(err)
	}
	if tab.VddV != 1.8 {
		t.Errorf("table Vdd %g, want 1.8", tab.VddV)
	}
}
