package core

import (
	"fmt"

	"repro/internal/neural"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/trippoint"
)

// LearningResult is everything fig. 4 produces: the trained voting
// ensemble, the measured DSV set it learned from, and the per-member
// training reports of the learnability/generalization checks.
type LearningResult struct {
	Ensemble *neural.Ensemble
	Reports  []neural.TrainReport
	DSV      *trippoint.DSV
	Dataset  neural.Dataset
	// EnsembleValErr is the voting machine's error on the full dataset —
	// the consistency check of fig. 4 step 4.
	EnsembleValErr float64
	// Tests are the measured learning tests, aligned with DSV.Values.
	Tests []testgen.Test
}

// Learn executes the learning scheme of fig. 4:
//
//  1. the random test generator presents tests to the ATE,
//  2. the multiple-trip-point runner measures one trip point per test
//     (first test full range per eq. 2, later tests via SUTP eqs. 3/4),
//  3. the trip point is fuzzy coded (or numerically coded),
//  4. an ensemble of networks trains on bootstrap subsets with iterative
//     learnability and generalization checks,
//  5. the trained ensemble is retained (persist it with SaveWeights).
func (c *Characterizer) Learn() (*LearningResult, error) {
	tel := c.tel()
	ph := tel.StartPhase("learn")
	before := c.ate.Stats()
	defer func() { ph.End(telDelta(before, c.ate.Stats())) }()

	runner := trippoint.NewRunner(c.ate, c.cfg.Parameter)
	runner.Searcher = c.newSUTP()
	runner.Options = c.searchOptions()
	budget := runner.Options.FullRangeBudget()

	limits := c.gen.Limits()
	res := &LearningResult{}
	for i := 0; i < c.cfg.LearnTests; i++ {
		t := c.gen.Next()
		m, err := runner.Measure(t)
		if err != nil {
			return nil, fmt.Errorf("core: learning measurement %d: %w", i, err)
		}
		tel.RecordSearch(m.Measurements, budget, m.Converged)
		tel.RecordItem("learn-test", i+1, c.cfg.LearnTests)
		ph.Span().Event("trip",
			telemetry.I("i", i),
			telemetry.F("trip", m.TripPoint),
			telemetry.I("measurements", m.Measurements),
			telemetry.B("converged", m.Converged),
		)
		if !m.Converged {
			// Outside the generous range — skip as unlearnable, matching
			// ATE practice of flagging range violations for re-setup.
			continue
		}
		res.Tests = append(res.Tests, t)
		res.Dataset = append(res.Dataset, neural.Sample{
			Input:  testgen.ExtractFeatures(t, limits),
			Target: c.coder.Encode(m.TripPoint),
		})
	}
	res.DSV = runner.DSV()
	if len(res.Dataset) < 10 {
		return nil, fmt.Errorf("core: only %d converged learning measurements; widen the search range", len(res.Dataset))
	}

	sizes := append([]int{testgen.NumFeatures}, c.cfg.HiddenLayers...)
	sizes = append(sizes, c.coder.Width())
	trainCfg := c.cfg.Train
	if trainCfg.Epochs == 0 {
		trainCfg = neural.DefaultTrainConfig(c.cfg.Seed)
	}
	var (
		ens     *neural.Ensemble
		reports []neural.TrainReport
		err     error
	)
	if f := c.Fleet(); f != nil {
		// Member training dispatches onto the flow's persistent fleet, so
		// the workers (and their memoized resources) that later measure GA
		// fitness are the same ones that trained the ensemble. Weights are
		// bit-identical to the batch-pool form.
		ens, reports, err = neural.NewEnsembleOn(f, c.cfg.Seed, c.cfg.EnsembleSize, sizes, res.Dataset, trainCfg)
	} else {
		ens, reports, err = neural.NewEnsembleParallel(c.cfg.Seed, c.cfg.EnsembleSize, sizes, res.Dataset, trainCfg, c.cfg.Parallelism)
	}
	if err != nil {
		return nil, fmt.Errorf("core: training ensemble: %w", err)
	}
	res.Ensemble = ens
	res.Reports = reports
	res.EnsembleValErr, err = ens.Evaluate(res.Dataset)
	if err != nil {
		return nil, err
	}

	// Member reports arrive in member order regardless of the training
	// parallelism, so emitting from them here is deterministic.
	epochErr := tel.Registry().Histogram("nn_epoch_error", telemetry.DefaultErrorBuckets()...)
	for i, rep := range reports {
		for _, e := range rep.ErrCurve {
			epochErr.Observe(e)
		}
		ph.Span().Event("nn_member",
			telemetry.I("member", i),
			telemetry.I("epochs", len(rep.ErrCurve)),
			telemetry.F("val_err", rep.ValErr),
			telemetry.B("generalized", rep.Generalized),
		)
	}
	tel.Registry().Gauge("nn_ensemble_val_error").Set(res.EnsembleValErr)
	tel.Registry().Counter("nn_members_trained_total").Add(int64(len(reports)))

	c.learned = res
	return res, nil
}

// Learned returns the learning result, or nil before Learn ran.
func (c *Characterizer) Learned() *LearningResult { return c.learned }

// SaveWeights persists the trained ensemble as the NN weight file of fig. 4
// step 5.
func (c *Characterizer) SaveWeights(path string) error {
	if c.learned == nil {
		return fmt.Errorf("core: no trained ensemble; run Learn first")
	}
	meta := map[string]string{
		"parameter": c.cfg.Parameter.String(),
		"coding":    c.cfg.Coding.String(),
	}
	return c.learned.Ensemble.SaveFile(path, meta)
}

// LoadWeights installs a previously trained ensemble, enabling the
// optimization phase without re-learning ("this file will be used in
// classification task of worst case test based on only software computation
// without measurement").
func (c *Characterizer) LoadWeights(path string) error {
	ens, meta, err := neural.LoadFile(path)
	if err != nil {
		return err
	}
	if p := meta["parameter"]; p != "" && p != c.cfg.Parameter.String() {
		return fmt.Errorf("core: weight file was trained for %s, flow characterizes %s", p, c.cfg.Parameter)
	}
	if ens.Inputs() != testgen.NumFeatures {
		return fmt.Errorf("core: weight file input width %d, feature encoding needs %d", ens.Inputs(), testgen.NumFeatures)
	}
	if ens.Outputs() != c.coder.Width() {
		return fmt.Errorf("core: weight file output width %d, coder needs %d", ens.Outputs(), c.coder.Width())
	}
	c.learned = &LearningResult{Ensemble: ens}
	return nil
}
