// Package core implements the paper's primary contribution: the
// computational-intelligence device characterization flow that couples an
// industrial ATE with a fuzzy-coded neural-network learning scheme (fig. 4)
// and a genetic-algorithm worst-case test optimizer (fig. 5).
//
// The flow in one paragraph: a random test generator drives the ATE, which
// measures one trip point per test using the multiple-trip-point concept
// and the Search-Until-Trip-Point algorithm; trip points are encoded with
// fuzzy severity sets; an ensemble of neural networks (a voting machine)
// learns the test→severity mapping and is persisted as a weight file; the
// trained ensemble then generates sub-optimal worst-case candidates purely
// in software, which seed a dual-chromosome genetic algorithm whose fitness
// is a real ATE trip-point measurement expressed as the Worst Case Ratio;
// the best tests of every GA era land in the worst-case test database for
// detailed analysis.
package core

import (
	"fmt"

	"repro/internal/ate"
	"repro/internal/fuzzy"
	"repro/internal/genetic"
	"repro/internal/neural"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/testgen"
)

// Config assembles everything one characterization run needs.
type Config struct {
	// Parameter is the AC/DC parameter under characterization; one flow
	// characterizes exactly one parameter (§5: generate NNs "individually
	// for each parameter").
	Parameter ate.Parameter

	// Seed drives every random draw of the flow.
	Seed int64

	// Coding selects fuzzy or plain numeric trip-point encoding.
	Coding fuzzy.Coding

	// LearnTests is the number of measured random tests the NN learns
	// from (the paper used 50k ATE patterns; scaled down by default to
	// keep the simulation quick — raise it for higher-fidelity runs).
	LearnTests int

	// EnsembleSize is the number of voting networks.
	EnsembleSize int

	// HiddenLayers are the MLP hidden layer widths.
	HiddenLayers []int

	// Train configures backpropagation; zero value takes defaults.
	Train neural.TrainConfig

	// CandidatePool is the number of software-only candidates the trained
	// generator ranks when proposing GA seeds.
	CandidatePool int

	// SeedCount is the number of sub-optimal tests handed to the GA.
	SeedCount int

	// GA configures the optimizer; zero value takes genetic.DefaultConfig.
	GA genetic.Config

	// SearchFactor is the SUTP step SF; zero defaults per parameter.
	SearchFactor float64

	// FixedConditions pins generated and evolved tests to one operating
	// condition set (Table 1: Vdd 1.8 V). Nil randomizes and evolves
	// conditions.
	FixedConditions *testgen.Conditions

	// Parallelism is the worker count for every parallel stage of the flow
	// (GA fitness batches, ensemble training, shmoo rows, lot screening,
	// Table-1 replicas). Values below 1 select one worker per CPU
	// (runtime.GOMAXPROCS); 1 runs serially. Results are bit-identical for
	// any value — see internal/parallel.
	Parallelism int

	// Scheduler selects the parallel execution substrate. SchedulerFleet
	// (the default) runs every fan-out on one persistent worker fleet whose
	// forked insertions survive across GA generations and pipeline phases,
	// with in-order streamed merges; SchedulerBatch is the legacy per-batch
	// fork/join pool, kept as the frozen performance comparator. Results,
	// traces and reports are bit-identical between the two (pinned by the
	// scheduler-equivalence tests); only wall-clock differs.
	Scheduler string

	// DisableMeasurementCache turns off the GA's measurement memo-cache so
	// every individual is re-measured even when its sequence and conditions
	// are structurally identical to one already measured. Used to baseline
	// the cache's savings.
	DisableMeasurementCache bool

	// Telemetry, when non-nil, receives structured trace spans, metrics and
	// phase rows from every pipeline stage the flow executes. All emission
	// happens at deterministic program points (serial sections and
	// task-order merge loops), so traces are bit-identical for any
	// Parallelism. Nil disables instrumentation at near-zero cost.
	Telemetry *telemetry.Telemetry
}

// Scheduler values for Config.Scheduler ("" selects SchedulerFleet).
const (
	SchedulerFleet = "fleet"
	SchedulerBatch = "batch"
)

// DefaultConfig returns a configuration sized to run the full flow in
// seconds on a laptop while preserving the paper's structure.
func DefaultConfig(seed int64) Config {
	return Config{
		Parameter:     ate.TDQ,
		Seed:          seed,
		Coding:        fuzzy.CodingFuzzy,
		LearnTests:    300,
		EnsembleSize:  3,
		HiddenLayers:  []int{20, 10},
		Train:         neural.DefaultTrainConfig(seed),
		CandidatePool: 1500,
		SeedCount:     24,
		GA:            genetic.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LearnTests < 10 {
		return fmt.Errorf("core: LearnTests %d too small to train on", c.LearnTests)
	}
	if c.EnsembleSize < 1 {
		return fmt.Errorf("core: EnsembleSize %d must be positive", c.EnsembleSize)
	}
	if c.CandidatePool < c.SeedCount {
		return fmt.Errorf("core: CandidatePool %d smaller than SeedCount %d", c.CandidatePool, c.SeedCount)
	}
	if c.SeedCount < 1 {
		return fmt.Errorf("core: SeedCount %d must be positive", c.SeedCount)
	}
	switch c.Scheduler {
	case "", SchedulerFleet, SchedulerBatch:
	default:
		return fmt.Errorf("core: unknown Scheduler %q (want %q or %q)", c.Scheduler, SchedulerFleet, SchedulerBatch)
	}
	return nil
}

// useFleet reports whether the flow runs on the persistent fleet.
func (c Config) useFleet() bool { return c.Scheduler != SchedulerBatch }

// Characterizer owns one flow instance: the tester, the generator, the
// coder and (after Learn) the trained ensemble.
type Characterizer struct {
	cfg   Config
	ate   *ate.ATE
	gen   *testgen.RandomGenerator
	coder *fuzzy.TripPointCoder

	learned  *LearningResult
	lastEval *parallelEvaluator
	// primed holds disk-recovered fitness values (PrimeMemoCache) that
	// seed the next Optimize run's memo-cache.
	primed map[uint64]float64

	// fleet is the flow's persistent worker pool (SchedulerFleet), created
	// lazily by Fleet() and released by Close; voteScratch holds the
	// per-fleet-worker ensemble voting arenas ProposeSeeds memoizes.
	fleet       *parallel.Fleet
	voteScratch []*neural.EnsembleScratch
}

// NewCharacterizer wires a flow against a tester insertion.
func NewCharacterizer(cfg Config, tester *ate.ATE) (*Characterizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tester == nil {
		return nil, fmt.Errorf("core: nil ATE")
	}
	spec, isMin := cfg.Parameter.SpecValue()
	coder, err := fuzzy.NewTripPointCoder(spec, isMin, cfg.Coding)
	if err != nil {
		return nil, err
	}
	gen := testgen.NewRandomGenerator(cfg.Seed, tester.Device().Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = cfg.FixedConditions
	return &Characterizer{cfg: cfg, ate: tester, gen: gen, coder: coder}, nil
}

// Fleet returns the flow's persistent worker fleet, creating it on first
// use (sized by Config.Parallelism), or nil under SchedulerBatch. All of
// the flow's phases share this one pool, so worker-memoized resources
// (forked insertions, vote scratches) persist across phases. Call Close
// when the flow is done.
func (c *Characterizer) Fleet() *parallel.Fleet {
	if !c.cfg.useFleet() {
		return nil
	}
	if c.fleet == nil {
		c.fleet = parallel.NewFleet(c.cfg.Parallelism)
	}
	return c.fleet
}

// Close releases the flow's persistent resources (the fleet's worker
// goroutines). Safe to call multiple times; a Characterizer that never ran
// a multi-worker phase closes trivially.
func (c *Characterizer) Close() {
	if c.fleet != nil {
		c.fleet.Close()
		c.fleet = nil
	}
}

// ATE returns the tester.
func (c *Characterizer) ATE() *ate.ATE { return c.ate }

// Coder returns the trip-point coder.
func (c *Characterizer) Coder() *fuzzy.TripPointCoder { return c.coder }

// Generator returns the flow's random test generator.
func (c *Characterizer) Generator() *testgen.RandomGenerator { return c.gen }

// Config returns the active configuration.
func (c *Characterizer) Config() Config { return c.cfg }

// searchOptions returns the parameter's generous range with the configured
// search factor applied.
func (c *Characterizer) searchOptions() search.Options {
	return c.cfg.Parameter.SearchOptions()
}

// newSUTP builds a fresh Search-Until-Trip-Point searcher for a run.
func (c *Characterizer) newSUTP() *search.SUTP {
	return &search.SUTP{SF: c.cfg.SearchFactor, Refine: true}
}

// tel returns the run's telemetry handle; nil (inert) when observability is
// off.
func (c *Characterizer) tel() *telemetry.Telemetry { return c.cfg.Telemetry }

// CacheStats returns the measurement memo-cache effectiveness of the most
// recent Optimize/OptimizeFrom run: fitness lookups answered from the cache
// versus lookups that had to burn ATE time. Zeros before any optimization
// ran; with the cache disabled every lookup is a miss.
func (c *Characterizer) CacheStats() (hits, misses int64) {
	if c.lastEval == nil {
		return 0, 0
	}
	return c.lastEval.cacheHits(), c.lastEval.cacheMisses()
}

// telCost converts the ATE's cost counters into a telemetry phase cost.
func telCost(s ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: s.Measurements,
		Vectors:      s.VectorsApplied,
		Profiles:     s.Profiles,
		SimTimeSec:   s.TestTimeSec,
	}
}

// telDelta is the tester cost consumed between two stat snapshots.
func telDelta(before, after ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: after.Measurements - before.Measurements,
		Vectors:      after.VectorsApplied - before.VectorsApplied,
		Profiles:     after.Profiles - before.Profiles,
		SimTimeSec:   after.TestTimeSec - before.TestTimeSec,
	}
}
