package jobs

// Journal codec and scheduler invariants, property-test style: randomized
// entry streams round-trip exactly, any byte-level truncation degrades to a
// strict replay prefix (never an error, never invented state), mid-file
// corruption is rejected outright, and reopening a journal after a kill
// resumes exactly the pending set.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randomEntries builds a coherent random journal history: jobs are
// submitted and then walked through legal transitions.
func randomEntries(rng *rand.Rand, n int) []journalEntry {
	var entries []journalEntry
	type st struct{ state State }
	jobs := map[string]*st{}
	var ids []string
	seq := int64(1)
	for len(entries) < n {
		// Bias toward submits early so transitions have targets.
		if len(ids) == 0 || rng.Intn(3) == 0 {
			id := jobID(seq)
			entries = append(entries, journalEntry{Op: "submit", Job: &Job{
				ID:  id,
				Seq: seq,
				Submission: Submission{
					Flow:     []string{"learn", "optimize", "shmoo", "lot", "table1"}[rng.Intn(5)],
					Seed:     rng.Int63n(1000),
					Priority: rng.Intn(5) - 2,
					Args:     map[string]string{"k": fmt.Sprint(rng.Intn(100))},
				},
				Workers: 1 + rng.Intn(4),
				State:   StateQueued,
			}})
			jobs[id] = &st{state: StateQueued}
			ids = append(ids, id)
			seq++
			continue
		}
		id := ids[rng.Intn(len(ids))]
		j := jobs[id]
		switch j.state {
		case StateQueued:
			if rng.Intn(2) == 0 {
				entries = append(entries, journalEntry{Op: "start", ID: id, At: rng.Int63()})
				j.state = StateRunning
			} else {
				entries = append(entries, journalEntry{Op: "cancel", ID: id, At: rng.Int63()})
				j.state = StateCanceled
			}
		case StateRunning:
			switch rng.Intn(3) {
			case 0:
				entries = append(entries, journalEntry{Op: "cancel", ID: id, At: rng.Int63()})
			case 1:
				entries = append(entries, journalEntry{
					Op: "finish", ID: id, State: StateDone,
					RunID: fmt.Sprintf("%032x", rng.Uint64()), Fingerprint: fmt.Sprintf("%016x", rng.Uint64()),
					Output: strings.Repeat("x", rng.Intn(64)), At: rng.Int63(),
				})
				j.state = StateDone
			default:
				entries = append(entries, journalEntry{
					Op: "finish", ID: id, State: StateFailed, Error: "boom", At: rng.Int63(),
				})
				j.state = StateFailed
			}
		default:
			// Terminal: nothing legal left for this job; submit instead.
			continue
		}
	}
	return entries
}

// encodeAll frames a whole entry stream.
func encodeAll(t *testing.T, entries []journalEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range entries {
		frame, err := encodeEntry(e)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

// entriesEqual compares via JSON (the codec's own equivalence).
func entriesEqual(a, b []journalEntry) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return bytes.Equal(ja, jb)
}

func TestJournalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		entries := randomEntries(rng, 1+rng.Intn(40))
		data := encodeAll(t, entries)
		got, goodLen, err := loadJournal(data)
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		if goodLen != len(data) {
			t.Fatalf("trial %d: goodLen %d, want %d", trial, goodLen, len(data))
		}
		if !entriesEqual(got, entries) {
			t.Fatalf("trial %d: round trip mismatch (%d vs %d entries)", trial, len(got), len(entries))
		}
	}
}

// TestJournalTruncationProperty: truncating the journal at ANY byte — a
// crash can stop a write wherever it likes — must yield a clean prefix of
// the entry stream, never an error and never a partial entry.
func TestJournalTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomEntries(rng, 25)
	data := encodeAll(t, entries)

	// Frame boundaries → how many entries a given prefix should decode to.
	wantAt := func(cut int) int {
		off, n := 0, 0
		for _, e := range entries {
			frame, _ := encodeEntry(e)
			if off+len(frame) > cut {
				break
			}
			off += len(frame)
			n++
		}
		return n
	}
	for cut := 0; cut <= len(data); cut++ {
		got, goodLen, err := loadJournal(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error: %v", cut, err)
		}
		if want := wantAt(cut); len(got) != want {
			t.Fatalf("cut %d: %d entries, want %d", cut, len(got), want)
		}
		if goodLen > cut {
			t.Fatalf("cut %d: goodLen %d past the cut", cut, goodLen)
		}
		if _, _, rerr := replay(got); rerr != nil {
			t.Fatalf("cut %d: prefix does not replay: %v", cut, rerr)
		}
	}
}

// TestJournalCorruptionRejected: a flipped byte before the final frame is
// not a torn tail — the load must fail loudly, not replay past it.
func TestJournalCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 10)
	data := encodeAll(t, entries)

	// Flip one payload byte of the first frame (not the length prefix, whose
	// corruption is reported as its own oversized-frame error).
	corrupt := append([]byte(nil), data...)
	corrupt[5] ^= 0xff
	if _, _, err := loadJournal(corrupt); err == nil {
		t.Fatal("mid-file payload corruption loaded without error")
	}

	// An oversized length prefix is corruption wherever it appears.
	corrupt = append([]byte(nil), data...)
	corrupt[0] = 0xff
	if _, _, err := loadJournal(corrupt); err == nil || !strings.Contains(err.Error(), "corrupt journal") {
		t.Fatalf("oversized frame: err %v, want corrupt-journal error", err)
	}

	// The same flip in the FINAL frame's payload is indistinguishable from a
	// torn tail write and must degrade to the intact prefix.
	lastStart := len(data) - len(mustEncode(t, entries[len(entries)-1]))
	corrupt = append([]byte(nil), data...)
	corrupt[lastStart+5] ^= 0xff
	got, goodLen, err := loadJournal(corrupt)
	if err != nil {
		t.Fatalf("final-frame corruption: %v", err)
	}
	if len(got) != len(entries)-1 || goodLen != lastStart {
		t.Fatalf("final-frame corruption: %d entries to offset %d, want %d to %d",
			len(got), goodLen, len(entries)-1, lastStart)
	}
}

func mustEncode(t *testing.T, e journalEntry) []byte {
	t.Helper()
	frame, err := encodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestQueueRestartResumesPendingSet: kill the process (no clean close, a
// torn tail appended) and reopen — exactly the pending set survives:
// queued stays queued, running returns to queued, running-with-cancel lands
// canceled, terminal states are untouched.
func TestQueueRestartResumesPendingSet(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(pri int) *Job {
		j, err := q.Submit(Submission{Flow: "shmoo", Seed: 1, Priority: pri})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	queued := mk(0)
	running := mk(1)
	runningCanceled := mk(2)
	finished := mk(0)
	canceled := mk(0)

	for _, id := range []string{running.ID, runningCanceled.ID, finished.ID} {
		if _, err := q.Start(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Finish(finished.ID, StateDone, "runid", "fp", "", "out"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Cancel(runningCanceled.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}

	// Simulate the kill: append a torn frame to the journal, no Close.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()

	want := map[string]State{
		queued.ID:          StateQueued,
		running.ID:         StateQueued, // resumed
		runningCanceled.ID: StateCanceled,
		finished.ID:        StateDone,
		canceled.ID:        StateCanceled,
	}
	got := map[string]State{}
	for _, j := range q2.List() {
		got[j.ID] = j.State
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("states after restart: %v, want %v", got, want)
	}
	fin, err := q2.Get(finished.ID)
	if err != nil || fin.RunID != "runid" || fin.Fingerprint != "fp" || fin.Output != "out" {
		t.Fatalf("finished job lost its result across restart: %+v, %v", fin, err)
	}

	// The resumed head is the highest-priority queued job.
	if head := q2.NextRunnable(); head == nil || head.ID != running.ID {
		t.Fatalf("NextRunnable after restart: %+v, want %s", head, running.ID)
	}

	// A new submission continues the ID sequence, not reusing old IDs.
	fresh, err := q2.Submit(Submission{Flow: "shmoo", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Seq <= canceled.Seq {
		t.Fatalf("sequence regressed after restart: %d <= %d", fresh.Seq, canceled.Seq)
	}
}

// TestQueueRejectsForeignFile: a non-journal file in the queue dir must not
// be silently clobbered or replayed.
func TestQueueRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign file: err %v, want bad-magic error", err)
	}
}

// TestQueuePriorityOrder pins the scheduler key: priority descending, then
// submission order.
func TestQueuePriorityOrder(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var ids []string
	for _, pri := range []int{0, 2, 1, 2, -1} {
		j, err := q.Submit(Submission{Flow: "shmoo", Priority: pri})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	wantOrder := []string{ids[1], ids[3], ids[2], ids[0], ids[4]}
	for _, want := range wantOrder {
		head := q.NextRunnable()
		if head == nil || head.ID != want {
			t.Fatalf("NextRunnable: %+v, want %s", head, want)
		}
		if _, err := q.Start(head.ID); err != nil {
			t.Fatal(err)
		}
	}
	if head := q.NextRunnable(); head != nil {
		t.Fatalf("queue should be drained, got %+v", head)
	}
}
