// Package jobs is the characterization-as-a-service layer: a REST/JSON job
// API over a persistent priority queue and a bounded multi-tenant executor.
//
// Every paper flow (learn, optimize, table1, shmoo, lot) becomes a job
// payload: POST /jobs submits a cli.FlowSpec plus scheduling hints (seed,
// parallelism, priority), the executor multiplexes concurrent jobs over
// per-job parallel.Fleet instances under one global worker budget, per-job
// progress streams over SSE, and completed runs finalize into the shared
// content-addressed runstore ledger. Because the executor runs the exact
// flow bodies the binaries run (internal/cli's Run* functions) with the
// same resolved flag sets, a submitted job produces the same run ID and
// bit-identical trace bytes as the equivalent CLI invocation — at any
// parallelism, even while other jobs run concurrently.
//
// The queue survives crashes: every state transition appends a CRC-framed
// entry to a journal in the style of internal/cachestore, and a restarted
// server resumes exactly the pending set (jobs caught mid-run return to the
// queue).
package jobs

import (
	"errors"
	"fmt"
	"regexp"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: submitted, waiting for budget.
	StateQueued State = "queued"
	// StateRunning: executing on its fleet.
	StateRunning State = "running"
	// StateDone: finished cleanly; RunID and Fingerprint are set.
	StateDone State = "done"
	// StateFailed: the flow returned an error (recorded in Error).
	StateFailed State = "failed"
	// StateCanceled: canceled before or during execution.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// valid reports whether s is a known state (journal decoding guard).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Submission is the POST /jobs payload: the flow spec plus scheduling
// hints. Flow, Seed, NoCache and Args mirror cli.FlowSpec.
type Submission struct {
	// Flow is the workload: learn, optimize, table1, shmoo or lot.
	Flow string `json:"flow"`
	// Seed is the run seed; 0 takes the CLI default (1).
	Seed int64 `json:"seed,omitempty"`
	// NoCache disables the measurement memo-cache.
	NoCache bool `json:"no_cache,omitempty"`
	// Args overrides the flow's workload flags by name.
	Args map[string]string `json:"args,omitempty"`
	// Parallel is the job's worker count (its claim against the server
	// budget); 0 means 1. Results are bit-identical at any value.
	Parallel int `json:"parallel,omitempty"`
	// Priority orders dispatch: higher runs first, ties break by
	// submission order. Default 0.
	Priority int `json:"priority,omitempty"`
}

// Job is one submitted workload and its full lifecycle record.
type Job struct {
	// ID is the queue-assigned identifier ("j000042").
	ID string `json:"id"`
	// Seq is the monotonic submission sequence number behind the ID.
	Seq int64 `json:"seq"`

	Submission

	// Workers is the resolved worker claim (Parallel, minimum 1).
	Workers int `json:"workers"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// CancelRequested marks a running job whose cancellation was requested
	// but not yet observed by the flow (cancellation is cooperative, taking
	// effect at the next phase boundary).
	CancelRequested bool `json:"cancel_requested,omitempty"`

	SubmittedUnixNano int64 `json:"submitted_unix_nano,omitempty"`
	StartedUnixNano   int64 `json:"started_unix_nano,omitempty"`
	FinishedUnixNano  int64 `json:"finished_unix_nano,omitempty"`

	// RunID is the content-addressed run-ledger record ID (done jobs).
	RunID string `json:"run_id,omitempty"`
	// Fingerprint is the deterministic trace digest (done jobs).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Error is the failure (or cancellation) message of a failed job.
	Error string `json:"error,omitempty"`
	// Output is the flow's captured human-readable output (terminal jobs).
	Output string `json:"output,omitempty"`
}

// clone returns an independent copy (Args map included).
func (j *Job) clone() *Job {
	cp := *j
	if j.Args != nil {
		cp.Args = make(map[string]string, len(j.Args))
		for k, v := range j.Args {
			cp.Args[k] = v
		}
	}
	return &cp
}

// ErrCanceled is the cooperative-cancellation sentinel a job's CheckCancel
// hook returns; the executor maps it to StateCanceled.
var ErrCanceled = errors.New("jobs: job canceled")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrTerminal reports an operation on a job that already finished.
var ErrTerminal = errors.New("jobs: job already finished")

// jobIDPattern pins the ID grammar URL routing accepts.
var jobIDPattern = regexp.MustCompile(`^j[0-9]{6,}$`)

// ValidID reports whether s is a well-formed job ID.
func ValidID(s string) bool { return jobIDPattern.MatchString(s) }

// jobID renders a sequence number as an ID.
func jobID(seq int64) string { return fmt.Sprintf("j%06d", seq) }
