package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// Options configures a job server.
type Options struct {
	// QueueDir holds the persistent job journal.
	QueueDir string
	// RunDir is the shared run-ledger directory every finished job
	// finalizes into.
	RunDir string
	// Workers is the global worker budget the executor multiplexes
	// concurrent jobs under; a job's Parallel is its claim against it.
	Workers int
	// Heartbeat is the SSE heartbeat interval (0 = obs.DefaultHeartbeat,
	// negative disables).
	Heartbeat time.Duration
	// Log receives operational lines; nil silences them.
	Log *log.Logger
	// StartPaused boots the executor with dispatch paused (tests submit a
	// full batch, then Resume for a deterministic dispatch order).
	StartPaused bool
}

// runningJob is the executor's in-flight state for one job.
type runningJob struct {
	cancel atomic.Bool
	tel    *telemetry.Telemetry // set by OnTelemetryStart, read under Server.mu
}

// Server is the multi-tenant executor: it drains the persistent queue in
// strict priority order, runs each job's flow body on its own fleet under
// the global worker budget, and records the terminal transition (with run
// ID and trace fingerprint) back into the queue journal. Dispatch is
// head-of-line: the highest-priority queued job runs next or — if the
// remaining budget cannot fit it — blocks everything behind it, so
// priority order is exact, never best-effort.
type Server struct {
	opts  Options
	q     *Queue
	store *runstore.Store
	reg   *telemetry.Registry

	mu       sync.Mutex
	running  map[string]*runningJob
	progress map[string]*obs.Progress
	busy     int
	maxBusy  int
	paused   bool
	closed   bool

	closing atomic.Bool

	wake   chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup // job goroutines
	loopWG sync.WaitGroup // dispatcher goroutine
}

// New opens the queue and ledger and starts the dispatcher. Jobs that
// survived a previous process (queued, or running at the crash) are already
// back in the queue and dispatch immediately unless StartPaused.
func New(opts Options) (*Server, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("jobs: worker budget must be positive, got %d", opts.Workers)
	}
	if opts.QueueDir == "" {
		return nil, fmt.Errorf("jobs: QueueDir is required")
	}
	if opts.RunDir == "" {
		return nil, fmt.Errorf("jobs: RunDir is required")
	}
	q, err := Open(opts.QueueDir)
	if err != nil {
		return nil, err
	}
	store, err := runstore.Open(opts.RunDir)
	if err != nil {
		q.Close()
		return nil, fmt.Errorf("jobs: opening run ledger: %w", err)
	}
	s := &Server{
		opts:     opts,
		q:        q,
		store:    store,
		reg:      telemetry.NewRegistry(),
		running:  make(map[string]*runningJob),
		progress: make(map[string]*obs.Progress),
		paused:   opts.StartPaused,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	s.reg.Gauge("jobs_worker_budget").Set(float64(opts.Workers))
	s.loopWG.Add(1)
	go s.dispatchLoop()
	s.kick()
	return s, nil
}

// Store exposes the shared run-ledger handle (the admin mux serves /runs
// from it).
func (s *Server) Store() *runstore.Store { return s.store }

// logf writes one operational line when logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// kick nudges the dispatcher (coalescing; never blocks).
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatchLoop is the single dispatcher goroutine: every wake-up it starts
// as many queued jobs as strict priority order and the worker budget allow.
func (s *Server) dispatchLoop() {
	defer s.loopWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
		s.dispatchReady()
	}
}

// dispatchReady starts queued jobs until the head no longer fits the
// remaining budget (or the queue drains). The head never yields to a
// smaller lower-priority job — exact priority ordering is part of the
// service contract and the load tests assert it.
func (s *Server) dispatchReady() {
	for {
		s.mu.Lock()
		if s.paused || s.closed {
			s.mu.Unlock()
			return
		}
		head := s.q.NextRunnable()
		if head == nil || head.Workers > s.opts.Workers-s.busy {
			s.mu.Unlock()
			return
		}
		started, err := s.q.Start(head.ID)
		if err != nil {
			// Lost a race with Cancel: the head left the queued state
			// between NextRunnable and Start. Try the next head.
			s.mu.Unlock()
			if errors.Is(err, ErrNotFound) || errors.Is(err, ErrTerminal) {
				continue
			}
			s.logf("jobs: dispatch %s: %v", head.ID, err)
			return
		}
		rj := &runningJob{}
		s.running[started.ID] = rj
		s.busy += started.Workers
		if s.busy > s.maxBusy {
			s.maxBusy = s.busy
		}
		s.wg.Add(1)
		s.mu.Unlock()
		s.logf("jobs: start %s (%s, %d workers, priority %d)", started.ID, started.Flow, started.Workers, started.Priority)
		go s.runJob(started, rj)
	}
}

// runJob executes one job's flow body and records the terminal transition.
func (s *Server) runJob(job *Job, rj *runningJob) {
	defer s.wg.Done()
	var out bytes.Buffer
	runID, fingerprint, err := s.execute(job, rj, &out)

	state := StateDone
	var errMsg string
	switch {
	case err == nil:
	case errors.Is(err, ErrCanceled):
		state = StateCanceled
		errMsg = err.Error()
	default:
		state = StateFailed
		errMsg = err.Error()
	}

	// A job interrupted by server shutdown (not by an explicit cancel) is
	// left journalled as running: the restarted server replays it back into
	// the queue and runs it again, which is safe — its partial run wrote
	// nothing durable.
	interrupted := state == StateCanceled && s.closing.Load() && !rj.cancel.Load()

	s.mu.Lock()
	delete(s.running, job.ID)
	s.busy -= job.Workers
	s.mu.Unlock()

	if !interrupted {
		if _, ferr := s.q.Finish(job.ID, state, runID, fingerprint, errMsg, out.String()); ferr != nil {
			s.logf("jobs: finish %s: %v", job.ID, ferr)
		}
		switch state {
		case StateDone:
			s.reg.Counter("jobs_done_total").Add(1)
			s.logf("jobs: done %s (run %s)", job.ID, runID)
		case StateCanceled:
			s.reg.Counter("jobs_canceled_total").Add(1)
			s.logf("jobs: canceled %s", job.ID)
		default:
			s.reg.Counter("jobs_failed_total").Add(1)
			s.logf("jobs: failed %s: %s", job.ID, errMsg)
		}
	}
	s.finishProgress(job.ID)
	s.kick()
}

// execute builds the job's FlowRun — the binary's exact flag set with the
// spec applied — and runs it embedded: private fleet sized to the job's
// worker claim, shared ledger handle, externally owned progress, and
// cooperative cancellation polled at phase boundaries. The run ID and
// trace fingerprint come back from the shared ledger finalization, so they
// are byte-for-byte the ones the equivalent CLI invocation would produce.
func (s *Server) execute(job *Job, rj *runningJob, out *bytes.Buffer) (runID, fingerprint string, err error) {
	fr, err := cli.NewFlowRun(cli.FlowSpec{
		Flow:    job.Flow,
		Seed:    job.Seed,
		NoCache: job.NoCache,
		Args:    job.Args,
	})
	if err != nil {
		return "", "", err
	}
	c := fr.Common
	c.Embedded = true
	c.Parallel = job.Workers
	c.RunDir = s.opts.RunDir
	c.AttachLedger(s.store)
	c.AttachProgress(s.progressFor(job.ID))
	c.CheckCancel = func() error {
		if rj.cancel.Load() || s.closing.Load() {
			return ErrCanceled
		}
		return nil
	}
	c.OnTelemetryStart = func(tel *telemetry.Telemetry) {
		s.mu.Lock()
		rj.tel = tel
		s.mu.Unlock()
	}
	if err := fr.Run(out); err != nil {
		c.Abort()
		return "", "", err
	}
	runID, fingerprint = c.LastRun()
	return runID, fingerprint, nil
}

// progressFor returns (creating on demand) the job's progress publisher.
// It exists from submission on, so SSE watchers can attach to queued jobs
// and resumed jobs alike.
func (s *Server) progressFor(id string) *obs.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.progress[id]
	if !ok {
		p = obs.NewProgress(id)
		s.progress[id] = p
	}
	return p
}

// finishProgress marks the job's progress done so SSE streams terminate.
func (s *Server) finishProgress(id string) {
	s.mu.Lock()
	p := s.progress[id]
	s.mu.Unlock()
	p.Done() // nil-safe
}

// Submit validates and enqueues one submission. Validation constructs the
// actual FlowRun, so a job that enqueues is a job that will execute: an
// unknown flow, a rejected arg or an unparsable value fails here with the
// same pinned one-line error the CLI would print.
func (s *Server) Submit(sub Submission) (*Job, error) {
	if sub.Seed == 0 {
		sub.Seed = 1 // the CLI's -seed default; the record shows the effective seed
	}
	if _, err := cli.NewFlowRun(cli.FlowSpec{Flow: sub.Flow, Seed: sub.Seed, NoCache: sub.NoCache, Args: sub.Args}); err != nil {
		return nil, err
	}
	if workers := normalizeWorkers(sub.Parallel); workers > s.opts.Workers {
		return nil, fmt.Errorf("jobs: job wants %d workers but the server budget is %d", workers, s.opts.Workers)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("jobs: server is shut down")
	}
	s.mu.Unlock()
	j, err := s.q.Submit(sub)
	if err != nil {
		return nil, err
	}
	s.progressFor(j.ID)
	s.reg.Counter("jobs_submitted_total").Add(1)
	s.logf("jobs: submitted %s (%s, priority %d)", j.ID, j.Flow, j.Priority)
	s.kick()
	return j, nil
}

// Cancel requests a job's cancellation: a queued job lands in canceled
// immediately, a running one at its next phase boundary. Terminal jobs
// return ErrTerminal.
func (s *Server) Cancel(id string) (*Job, error) {
	j, canceledNow, err := s.q.Cancel(id)
	if err != nil {
		return nil, err
	}
	if canceledNow {
		s.reg.Counter("jobs_canceled_total").Add(1)
		s.finishProgress(id)
		s.logf("jobs: canceled %s (was queued)", id)
		s.kick()
		return j, nil
	}
	s.mu.Lock()
	if rj, ok := s.running[id]; ok {
		rj.cancel.Store(true)
	}
	s.mu.Unlock()
	s.logf("jobs: cancel requested for running %s", id)
	return j, nil
}

// Get returns one job's current record.
func (s *Server) Get(id string) (*Job, error) { return s.q.Get(id) }

// List returns every job in submission order.
func (s *Server) List() []*Job { return s.q.List() }

// Progress returns the job's progress publisher (nil for unknown jobs).
func (s *Server) Progress(id string) *obs.Progress {
	if _, err := s.q.Get(id); err != nil {
		return nil
	}
	return s.progressFor(id)
}

// MetricsSnapshot merges the server's own counters with each running job's
// registry, namespaced as job_<id>_<metric>, for one admin-mux /metrics
// exposition across every tenant.
func (s *Server) MetricsSnapshot() telemetry.Snapshot {
	s.mu.Lock()
	s.reg.Gauge("jobs_running").Set(float64(len(s.running)))
	s.reg.Gauge("jobs_workers_busy").Set(float64(s.busy))
	snaps := []telemetry.Snapshot{s.reg.Snapshot()}
	for id, rj := range s.running {
		if rj.tel != nil {
			snaps = append(snaps, rj.tel.Registry().Snapshot().Prefixed("job_"+id+"_"))
		}
	}
	s.mu.Unlock()
	return telemetry.MergeSnapshots(snaps...)
}

// Pause suspends dispatch (running jobs keep running).
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume re-enables dispatch.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
	s.kick()
}

// MaxBusyObserved is a test hook: the high-water mark of concurrently
// claimed workers (must never exceed the budget).
func (s *Server) MaxBusyObserved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxBusy
}

// Close shuts the executor down: dispatch stops, running jobs are
// interrupted at their next phase boundary and stay journalled as running —
// the next Open replays them back into the queue, so a restart resumes
// exactly the pending set. Queued jobs are untouched.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.closing.Store(true)
	close(s.stop)
	s.loopWG.Wait()
	s.wg.Wait()
	return s.q.Close()
}
