package jobs_test

// End-to-end service harness: boots the real job server on 127.0.0.1:0
// (admin mux with the /jobs API mounted, exactly as charserved wires it),
// submits every flow over HTTP at -parallel 1, 2 and 8 while background
// jobs keep the executor busy, and asserts the service-identity contract:
// each job's ledger run ID and trace bytes are byte-identical to a direct
// in-process invocation of the same flow spec, and all parallelisms of one
// spec collide into a single content-addressed record.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// bootService starts a job server plus its admin HTTP listener.
func bootService(t *testing.T, queueDir, runDir string, workers int) (*jobs.Server, string) {
	t.Helper()
	srv, err := jobs.New(jobs.Options{
		QueueDir:  queueDir,
		RunDir:    runDir,
		Workers:   workers,
		Heartbeat: -1,
	})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	admin, err := obs.Start("127.0.0.1:0", obs.Options{
		Run:     "jobs-e2e",
		Metrics: srv.MetricsSnapshot,
		Ledger:  srv.Store(),
		Jobs:    srv.Handler(),
	})
	if err != nil {
		srv.Close()
		t.Fatalf("obs.Start: %v", err)
	}
	t.Cleanup(func() {
		admin.Close()
		srv.Close()
	})
	return srv, "http://" + admin.Addr()
}

// submitHTTP posts one submission and returns the created job record.
func submitHTTP(t *testing.T, base string, sub jobs.Submission) *jobs.Job {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatalf("marshal submission: %v", err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, raw)
	}
	var j jobs.Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatalf("decode job: %v (%s)", err, raw)
	}
	return &j
}

// waitTerminal polls GET /jobs/<id> until the job finishes.
func waitTerminal(t *testing.T, base, id string) *jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", id, resp.StatusCode, raw)
		}
		var j jobs.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("decode job: %v (%s)", err, raw)
		}
		if j.State.Terminal() {
			return &j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// directRun executes the same flow spec in-process (the CLI code path) into
// its own ledger and returns the run ID and fingerprint.
func directRun(t *testing.T, spec cli.FlowSpec, parallel int, runDir string) (runID, fingerprint string) {
	t.Helper()
	fr, err := cli.NewFlowRun(spec)
	if err != nil {
		t.Fatalf("NewFlowRun(%+v): %v", spec, err)
	}
	fr.Common.Embedded = true // several runs share this test process
	fr.Common.Parallel = parallel
	fr.Common.RunDir = runDir
	var out bytes.Buffer
	if err := fr.Run(&out); err != nil {
		t.Fatalf("direct %s run: %v", spec.Flow, err)
	}
	runID, fingerprint = fr.Common.LastRun()
	if runID == "" || fingerprint == "" {
		t.Fatalf("direct %s run: empty run ID/fingerprint", spec.Flow)
	}
	return runID, fingerprint
}

// e2eCase is one flow spec the harness pushes through both paths.
type e2eCase struct {
	flow string
	seed int64
	args map[string]string
}

var e2eCases = []e2eCase{
	{"learn", 7, map[string]string{"learn-tests": "12"}},
	{"optimize", 3, map[string]string{"learn-tests": "10"}},
	{"table1", 5, map[string]string{"learn-tests": "10", "random-tests": "30"}},
	{"shmoo", 9, map[string]string{"tests": "6"}},
	{"lot", 11, map[string]string{"dies": "4"}},
}

func TestServiceMatchesCLI(t *testing.T) {
	queueDir := t.TempDir()
	svcRuns := t.TempDir()
	cliRuns := t.TempDir()
	srv, base := bootService(t, queueDir, svcRuns, 32)

	// Background tenants: two jobs that keep the executor multiplexing
	// while every comparison job runs, so identity holds under concurrency.
	bg := []*jobs.Job{
		submitHTTP(t, base, jobs.Submission{Flow: "optimize", Seed: 101, Args: map[string]string{"learn-tests": "12"}, Parallel: 2}),
		submitHTTP(t, base, jobs.Submission{Flow: "table1", Seed: 102, Args: map[string]string{"learn-tests": "10", "random-tests": "40"}, Parallel: 2}),
	}

	type result struct {
		c           e2eCase
		runID       string
		fingerprint string
	}
	var results []result
	for _, c := range e2eCases {
		var firstID, firstFP string
		for _, par := range []int{1, 2, 8} {
			j := submitHTTP(t, base, jobs.Submission{Flow: c.flow, Seed: c.seed, Args: c.args, Parallel: par})
			done := waitTerminal(t, base, j.ID)
			if done.State != jobs.StateDone {
				t.Fatalf("%s parallel=%d: state %s, error %q", c.flow, par, done.State, done.Error)
			}
			if done.RunID == "" || done.Fingerprint == "" {
				t.Fatalf("%s parallel=%d: missing run ID or fingerprint: %+v", c.flow, par, done)
			}
			if firstID == "" {
				firstID, firstFP = done.RunID, done.Fingerprint
			} else if done.RunID != firstID || done.Fingerprint != firstFP {
				// Different -parallel must collide into one record.
				t.Fatalf("%s parallel=%d: run %s/%s, want %s/%s (parallelism leaked into identity)",
					c.flow, par, done.RunID, done.Fingerprint, firstID, firstFP)
			}
		}
		results = append(results, result{c: c, runID: firstID, fingerprint: firstFP})
	}

	// The same specs through the direct (CLI) code path, into a separate
	// ledger, must land on the same content-addressed IDs...
	cliStore, err := runstore.Open(cliRuns)
	if err != nil {
		t.Fatalf("open CLI ledger: %v", err)
	}
	for _, r := range results {
		spec := cli.FlowSpec{Flow: r.c.flow, Seed: r.c.seed, Args: r.c.args}
		directID, directFP := directRun(t, spec, 1, cliRuns)
		if directID != r.runID || directFP != r.fingerprint {
			t.Fatalf("%s: service run %s/%s, direct run %s/%s",
				r.c.flow, r.runID, r.fingerprint, directID, directFP)
		}
		// ...with byte-identical trace payloads in both ledgers.
		svcRec, err := srv.Store().Get(r.runID)
		if err != nil {
			t.Fatalf("%s: service ledger Get(%s): %v", r.c.flow, r.runID, err)
		}
		cliRec, err := cliStore.Get(directID)
		if err != nil {
			t.Fatalf("%s: CLI ledger Get(%s): %v", r.c.flow, directID, err)
		}
		if len(svcRec.Trace) == 0 {
			t.Fatalf("%s: service record has no trace", r.c.flow)
		}
		if !bytes.Equal(svcRec.Trace, cliRec.Trace) {
			t.Fatalf("%s: trace bytes differ between service and CLI (%d vs %d bytes)",
				r.c.flow, len(svcRec.Trace), len(cliRec.Trace))
		}
	}

	// The background tenants must have finished cleanly too.
	for _, j := range bg {
		done := waitTerminal(t, base, j.ID)
		if done.State != jobs.StateDone {
			t.Fatalf("background job %s: state %s, error %q", j.ID, done.State, done.Error)
		}
	}
}

func TestServiceHTTPSurface(t *testing.T) {
	queueDir := t.TempDir()
	_, base := bootService(t, queueDir, t.TempDir(), 4)

	j := submitHTTP(t, base, jobs.Submission{Flow: "shmoo", Seed: 2, Args: map[string]string{"tests": "4"}})
	done := waitTerminal(t, base, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state %s, error %q", done.State, done.Error)
	}

	// GET /jobs lists it.
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var list struct {
		Jobs []*jobs.Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("GET /jobs: %+v, want the one submitted job", list.Jobs)
	}

	// /jobs/<id>/output carries the flow's text output.
	resp, err = http.Get(base + "/jobs/" + j.ID + "/output")
	if err != nil {
		t.Fatalf("GET output: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), "Shmoo overlay") {
		t.Fatalf("output missing shmoo text: %q", out)
	}

	// /jobs/<id>/progress streams SSE and terminates on the done state.
	req, _ := http.NewRequest(http.MethodGet, base+"/jobs/"+j.ID+"/progress?sse=1", nil)
	sseResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET progress SSE: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sse, err := io.ReadAll(bufio.NewReader(sseResp.Body)) // ends at StateDone
	if err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	if !strings.Contains(string(sse), "event: progress") || !strings.Contains(string(sse), `"state":"done"`) {
		t.Fatalf("SSE stream missing progress frames: %q", sse)
	}

	// Unknown flows and rejected args fail with pinned one-line errors.
	for _, tc := range []struct {
		sub  jobs.Submission
		want string
	}{
		// The response body is JSON, so quotes inside the pinned error
		// lines arrive escaped; match around them.
		{jobs.Submission{Flow: "frob"}, `cli: unknown flow`},
		{jobs.Submission{Flow: "shmoo", Args: map[string]string{"dies": "3"}}, `does not accept arg`},
		{jobs.Submission{Flow: "learn", Parallel: 99}, "wants 99 workers but the server budget is 4"},
	} {
		body, _ := json.Marshal(tc.sub)
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST bad job: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submission %+v: status %d, want 400", tc.sub, resp.StatusCode)
		}
		if !strings.Contains(string(raw), tc.want) {
			t.Fatalf("bad submission %+v: error %s, want %q", tc.sub, raw, tc.want)
		}
	}

	// Unknown IDs 404; double-cancel of a finished job 409s.
	resp, err = http.Get(base + "/jobs/j999999")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, base+"/jobs/"+j.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE finished: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of finished job: status %d, want 409", resp.StatusCode)
	}
}

// TestServiceRestartResumes kills a server with queued work and verifies
// the next boot runs exactly the pending set to completion.
func TestServiceRestartResumes(t *testing.T) {
	queueDir := t.TempDir()
	runDir := t.TempDir()

	srv, err := jobs.New(jobs.Options{QueueDir: queueDir, RunDir: runDir, Workers: 2, StartPaused: true})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := srv.Submit(jobs.Submission{Flow: "shmoo", Seed: int64(20 + i), Args: map[string]string{"tests": "4"}})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, j.ID)
	}
	canceled, err := srv.Cancel(ids[1])
	if err != nil || canceled.State != jobs.StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", canceled, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reboot on the same journal: the two still-queued jobs run, the
	// canceled one stays canceled.
	srv2, err := jobs.New(jobs.Options{QueueDir: queueDir, RunDir: runDir, Workers: 2})
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range []string{ids[0], ids[2]} {
		for {
			j, err := srv2.Get(id)
			if err != nil {
				t.Fatalf("get %s: %v", id, err)
			}
			if j.State.Terminal() {
				if j.State != jobs.StateDone {
					t.Fatalf("resumed job %s: state %s, error %q", id, j.State, j.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("resumed job %s did not finish", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	j, err := srv2.Get(ids[1])
	if err != nil || j.State != jobs.StateCanceled {
		t.Fatalf("canceled job after reboot: %+v, %v", j, err)
	}
}
