package jobs

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// REST surface, mounted on the obs admin mux at /jobs:
//
//	POST   /jobs                — submit a Submission, 201 + the Job record
//	GET    /jobs                — list every job
//	GET    /jobs/<id>           — one job's record
//	DELETE /jobs/<id>           — cancel (immediate if queued, cooperative if running)
//	GET    /jobs/<id>/progress  — live progress: JSON snapshot, or SSE with ?sse=1
//	GET    /jobs/<id>/output    — the flow's captured text output
//
// Every error body is {"error": "one pinned line"}.

// Handler returns the /jobs HTTP handler (paths are absolute, so it mounts
// directly on the admin mux via obs.Options.Jobs).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleCollection)
	mux.HandleFunc("/jobs/", s.handleJob)
	return mux
}

// jobError is the error envelope every non-2xx response carries.
type jobError struct {
	Error string `json:"error"`
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpJSON(w, code, jobError{Error: msg})
}

// handleCollection serves POST /jobs (submit) and GET /jobs (list).
func (s *Server) handleCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var sub Submission
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sub); err != nil {
			httpError(w, http.StatusBadRequest, "bad job submission: "+err.Error())
			return
		}
		j, err := s.Submit(sub)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "server is shut down") {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err.Error())
			return
		}
		httpJSON(w, http.StatusCreated, j)
	case http.MethodGet:
		httpJSON(w, http.StatusOK, struct {
			Jobs []*Job `json:"jobs"`
		}{Jobs: s.List()})
	default:
		httpError(w, http.StatusMethodNotAllowed, "method not allowed (want GET or POST)")
	}
}

// handleJob serves /jobs/<id>, /jobs/<id>/progress and /jobs/<id>/output.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if !ValidID(id) {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j, err := s.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			httpJSON(w, http.StatusOK, j)
		case http.MethodDelete:
			canceled, err := s.Cancel(id)
			switch {
			case errors.Is(err, ErrTerminal):
				httpError(w, http.StatusConflict, "job already finished")
			case err != nil:
				httpError(w, http.StatusNotFound, "no such job")
			default:
				httpJSON(w, http.StatusOK, canceled)
			}
		default:
			httpError(w, http.StatusMethodNotAllowed, "method not allowed (want GET or DELETE)")
		}
	case "progress":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method not allowed (want GET)")
			return
		}
		s.serveProgress(w, r, id)
	case "output":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method not allowed (want GET)")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(j.Output)) //nolint:errcheck // client went away; nothing to do
	default:
		httpError(w, http.StatusNotFound, "no such job endpoint (want /progress or /output)")
	}
}

// jobProgress is one progress frame: the job record plus the live run
// snapshot, captured together so a frame is internally consistent.
type jobProgress struct {
	Job      *Job          `json:"job"`
	Progress *obs.Snapshot `json:"progress"`
}

// serveProgress streams (SSE) or snapshots (JSON) one job's live progress.
// The stream ends when the job reaches a terminal state: the executor marks
// the job's progress done on every terminal transition, including jobs
// canceled while still queued.
func (s *Server) serveProgress(w http.ResponseWriter, r *http.Request, id string) {
	p := s.Progress(id)
	if p == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	frame := func(snap *obs.Snapshot) any {
		j, err := s.Get(id)
		if err != nil {
			j = nil
		}
		return jobProgress{Job: j, Progress: snap}
	}
	if obs.WantsSSE(r) {
		obs.ServeProgressSSE(w, r, p, s.opts.Heartbeat, frame)
		return
	}
	httpJSON(w, http.StatusOK, frame(p.Current()))
}
