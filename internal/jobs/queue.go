package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Queue is the crash-safe persistent job queue. Every state transition
// appends one CRC-framed JSON entry to a journal (cachestore shard style:
// length-prefixed frames with a trailing checksum, fsync'd per append), so
// a killed server reopens the journal and resumes exactly the pending set:
// queued jobs stay queued, jobs caught mid-run return to the queue, and a
// cancellation that raced the crash wins. A torn final frame — the only
// damage a crash mid-append can cause — is tolerated and truncated away;
// corruption anywhere earlier means the file was tampered with or the disk
// is lying, and the queue refuses to load rather than guess.
type Queue struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	jobs    map[string]*Job
	nextSeq int64
}

const (
	// journalMagic identifies (and versions) the journal format.
	journalMagic = "RPROJOB1"
	// journalName is the journal's filename inside the queue dir.
	journalName = "jobs.journal"
	// maxEntryLen bounds one journal frame; anything larger is corruption,
	// not a job (the largest legitimate entry is a Job with a small Args
	// map and a captured-output tail).
	maxEntryLen = 1 << 20
)

// journalEntry is one journal frame: a job state transition.
type journalEntry struct {
	// Op: "submit", "start", "finish" or "cancel".
	Op string `json:"op"`
	// Job carries the full record on submit (and on compaction, where the
	// stored State is authoritative).
	Job *Job `json:"job,omitempty"`
	// ID targets an existing job for start/finish/cancel.
	ID string `json:"id,omitempty"`
	// State is the terminal state on finish.
	State       State  `json:"state,omitempty"`
	RunID       string `json:"run_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`
	Output      string `json:"output,omitempty"`
	// At is the transition's wall-clock unix-nano timestamp.
	At int64 `json:"at,omitempty"`
}

// encodeEntry renders one frame: [u32be len][JSON][u32be crc32(len+JSON)].
func encodeEntry(e journalEntry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode journal entry: %w", err)
	}
	if len(payload) > maxEntryLen {
		return nil, fmt.Errorf("jobs: journal entry too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	crc := crc32.ChecksumIEEE(frame[:4+len(payload)])
	binary.BigEndian.PutUint32(frame[4+len(payload):], crc)
	return frame, nil
}

// loadJournal decodes every intact frame of data (the bytes after the
// magic). It returns the decoded entries and the byte offset of the last
// intact frame, so callers can truncate a torn tail. Damage that cannot be
// a torn tail — a checksum mismatch or an impossible length before the
// final frame — is a hard error: replaying past silent corruption would
// resurrect or lose jobs.
func loadJournal(data []byte) (entries []journalEntry, goodLen int, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < 4 {
			// Torn tail: the length prefix itself is incomplete.
			return entries, off, nil
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n > maxEntryLen {
			return entries, off, fmt.Errorf("jobs: journal frame at offset %d claims %d bytes (max %d): corrupt journal", off, n, maxEntryLen)
		}
		if rest < 4+n+4 {
			// Torn tail: the payload or checksum was cut off mid-write.
			return entries, off, nil
		}
		frame := data[off : off+4+n]
		want := binary.BigEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(frame) != want {
			if off+4+n+4 == len(data) {
				// A bad final frame is a torn write of the checksum itself.
				return entries, off, nil
			}
			return entries, off, fmt.Errorf("jobs: journal checksum mismatch at offset %d: corrupt journal", off)
		}
		var e journalEntry
		if err := json.Unmarshal(frame[4:], &e); err != nil {
			return entries, off, fmt.Errorf("jobs: journal entry at offset %d: %w", off, err)
		}
		entries = append(entries, e)
		off += 4 + n + 4
	}
	return entries, off, nil
}

// replay folds journal entries into the job map. Unknown IDs and
// out-of-order transitions are hard errors — a journal the queue wrote
// itself never contains them.
func replay(entries []journalEntry) (map[string]*Job, int64, error) {
	jobs := make(map[string]*Job)
	var nextSeq int64 = 1
	for i, e := range entries {
		switch e.Op {
		case "submit":
			if e.Job == nil || e.Job.ID == "" {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: submit without job", i)
			}
			j := e.Job.clone()
			if j.State == "" {
				j.State = StateQueued
			}
			if !j.State.valid() {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: unknown state %q", i, j.State)
			}
			jobs[j.ID] = j
			if j.Seq >= nextSeq {
				nextSeq = j.Seq + 1
			}
		case "start":
			j, ok := jobs[e.ID]
			if !ok {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: start of unknown job %q", i, e.ID)
			}
			j.State = StateRunning
			j.StartedUnixNano = e.At
		case "finish":
			j, ok := jobs[e.ID]
			if !ok {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: finish of unknown job %q", i, e.ID)
			}
			if !e.State.Terminal() {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: finish with non-terminal state %q", i, e.State)
			}
			j.State = e.State
			j.RunID = e.RunID
			j.Fingerprint = e.Fingerprint
			j.Error = e.Error
			j.Output = e.Output
			j.FinishedUnixNano = e.At
			j.CancelRequested = false
		case "cancel":
			j, ok := jobs[e.ID]
			if !ok {
				return nil, 0, fmt.Errorf("jobs: journal entry %d: cancel of unknown job %q", i, e.ID)
			}
			switch {
			case j.State == StateQueued:
				j.State = StateCanceled
				j.FinishedUnixNano = e.At
			case j.State == StateRunning:
				j.CancelRequested = true
			}
		default:
			return nil, 0, fmt.Errorf("jobs: journal entry %d: unknown op %q", i, e.Op)
		}
	}
	return jobs, nextSeq, nil
}

// Open loads (or creates) the queue journal in dir, resumes the pending
// set, and compacts the journal down to one entry per live job. Jobs that
// were running when the previous process died go back to the queue — their
// partial run wrote nothing durable (the ledger finalizes atomically) — and
// a running job whose cancellation was journalled before the crash lands
// in canceled, not back in the queue.
func Open(dir string) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create queue dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	var jobs map[string]*Job
	var nextSeq int64 = 1
	if len(data) > 0 {
		if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
			return nil, fmt.Errorf("jobs: %s is not a job journal (bad magic)", path)
		}
		entries, _, err := loadJournal(data[len(journalMagic):])
		if err != nil {
			return nil, err
		}
		jobs, nextSeq, err = replay(entries)
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			if j.State != StateRunning {
				continue
			}
			if j.CancelRequested {
				j.State = StateCanceled
				j.CancelRequested = false
				j.Error = ErrCanceled.Error()
				j.FinishedUnixNano = time.Now().UnixNano()
			} else {
				j.State = StateQueued
				j.StartedUnixNano = 0
			}
		}
	} else {
		jobs = make(map[string]*Job)
	}

	// Compact: rewrite the surviving state as one submit entry per job,
	// atomically (temp + rename), then append from there. This bounds the
	// journal and folds the resume transitions into durable state.
	tmp, err := os.CreateTemp(dir, journalName+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("jobs: compact journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(journalMagic); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("jobs: compact journal: %w", err)
	}
	for _, j := range sortedBySeq(jobs) {
		frame, err := encodeEntry(journalEntry{Op: "submit", Job: j})
		if err != nil {
			tmp.Close()
			return nil, err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return nil, fmt.Errorf("jobs: compact journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, fmt.Errorf("jobs: compact journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &Queue{dir: dir, f: f, jobs: jobs, nextSeq: nextSeq}, nil
}

// sortedBySeq returns the jobs in submission order.
func sortedBySeq(jobs map[string]*Job) []*Job {
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// append journals one entry durably (fsync before the transition is
// acknowledged). Caller holds q.mu.
func (q *Queue) append(e journalEntry) error {
	frame, err := encodeEntry(e)
	if err != nil {
		return err
	}
	if _, err := q.f.Write(frame); err != nil {
		return fmt.Errorf("jobs: append journal: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	return nil
}

// Submit journals a new queued job and returns its record.
func (q *Queue) Submit(sub Submission) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := &Job{
		Seq:               q.nextSeq,
		ID:                jobID(q.nextSeq),
		Submission:        sub,
		Workers:           normalizeWorkers(sub.Parallel),
		State:             StateQueued,
		SubmittedUnixNano: time.Now().UnixNano(),
	}
	if err := q.append(journalEntry{Op: "submit", Job: j}); err != nil {
		return nil, err
	}
	q.nextSeq++
	q.jobs[j.ID] = j
	return j.clone(), nil
}

// normalizeWorkers resolves a submission's Parallel into a worker claim.
func normalizeWorkers(parallel int) int {
	if parallel < 1 {
		return 1
	}
	return parallel
}

// Start journals the queued→running transition.
func (q *Queue) Start(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.State != StateQueued {
		return nil, fmt.Errorf("jobs: start %s: job is %s, not queued", id, j.State)
	}
	at := time.Now().UnixNano()
	if err := q.append(journalEntry{Op: "start", ID: id, At: at}); err != nil {
		return nil, err
	}
	j.State = StateRunning
	j.StartedUnixNano = at
	return j.clone(), nil
}

// Finish journals a running job's terminal transition.
func (q *Queue) Finish(id string, state State, runID, fingerprint, errMsg, output string) (*Job, error) {
	if !state.Terminal() {
		return nil, fmt.Errorf("jobs: finish %s with non-terminal state %q", id, state)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.State.Terminal() {
		return nil, ErrTerminal
	}
	at := time.Now().UnixNano()
	if err := q.append(journalEntry{
		Op: "finish", ID: id, State: state,
		RunID: runID, Fingerprint: fingerprint, Error: errMsg, Output: output, At: at,
	}); err != nil {
		return nil, err
	}
	j.State = state
	j.RunID = runID
	j.Fingerprint = fingerprint
	j.Error = errMsg
	j.Output = output
	j.FinishedUnixNano = at
	j.CancelRequested = false
	return j.clone(), nil
}

// Cancel journals a cancellation. A queued job lands in canceled
// immediately (canceledNow true); a running job gets CancelRequested set
// and finishes through Finish once the flow observes the request at its
// next phase boundary.
func (q *Queue) Cancel(id string) (j *Job, canceledNow bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return nil, false, ErrNotFound
	}
	if job.State.Terminal() {
		return nil, false, ErrTerminal
	}
	at := time.Now().UnixNano()
	if err := q.append(journalEntry{Op: "cancel", ID: id, At: at}); err != nil {
		return nil, false, err
	}
	if job.State == StateQueued {
		job.State = StateCanceled
		job.Error = ErrCanceled.Error()
		job.FinishedUnixNano = at
		return job.clone(), true, nil
	}
	job.CancelRequested = true
	return job.clone(), false, nil
}

// Get returns a copy of one job.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// List returns copies of every job in submission order.
func (q *Queue) List() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := sortedBySeq(q.jobs)
	for i, j := range out {
		out[i] = j.clone()
	}
	return out
}

// NextRunnable returns the queued job that should dispatch next — highest
// priority first, submission order within a priority — or nil when the
// queue holds no queued jobs. The executor dispatches strictly from this
// head: a head too wide for the remaining worker budget blocks lower
// priorities behind it rather than being overtaken.
func (q *Queue) NextRunnable() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var best *Job
	for _, j := range q.jobs {
		if j.State != StateQueued {
			continue
		}
		if best == nil || j.Priority > best.Priority || (j.Priority == best.Priority && j.Seq < best.Seq) {
			best = j
		}
	}
	if best == nil {
		return nil
	}
	return best.clone()
}

// Close releases the journal handle. The queue is unusable afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	err := q.f.Close()
	q.f = nil
	return err
}
