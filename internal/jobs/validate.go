package jobs

import (
	"fmt"
	"net"
	"os"
)

// ValidateServer checks the charserved flag combinations that otherwise
// surface as late, opaque failures after the server has half-booted: an
// unbindable -listen address, a missing or unwritable -queue-dir or
// -run-dir, and a nonpositive -workers budget. Each failure is a single
// pinned line (cli.Validate style); the binary exits 2 on any of them
// before touching the queue.
func ValidateServer(listen, queueDir, runDir string, workers int) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be positive, got %d", workers)
	}
	if queueDir == "" {
		return fmt.Errorf("-queue-dir is required (the job journal needs somewhere to live)")
	}
	if err := probeDir(queueDir); err != nil {
		return fmt.Errorf("cannot write the job queue to -queue-dir %q: %w", queueDir, err)
	}
	if runDir == "" {
		return fmt.Errorf("-run-dir is required (finished jobs finalize into the run ledger)")
	}
	if err := probeDir(runDir); err != nil {
		return fmt.Errorf("cannot record runs to -run-dir %q: %w", runDir, err)
	}
	if listen != "" {
		// Bind-and-release: the only reliable probe for a usable address. The
		// real server re-binds moments later; losing the port in between is
		// possible but loses nothing — the boot path reports that too.
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("cannot bind -listen address %q: %w", listen, err)
		}
		ln.Close()
	}
	return nil
}

// probeDir verifies the directory exists (creating it) and is writable.
func probeDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}
