package jobs_test

// Concurrency/load tests (run under -race in ci.sh): hundreds of small
// jobs across mixed priorities with random cancellations, asserting the
// executor's three contracts — exact priority dispatch order, a worker
// budget that is never exceeded, and no goroutine leaks — plus journal
// state that matches the in-memory outcome after shutdown.

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitAllTerminal polls until every job in the server is terminal.
func waitAllTerminal(t *testing.T, srv *jobs.Server, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		pending := 0
		for _, j := range srv.List() {
			if !j.State.Terminal() {
				pending++
			}
		}
		if pending == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("jobs did not all finish in time")
}

// waitGoroutinesSettle asserts the goroutine count returns to (near) the
// baseline — the leak check from the obs SSE tests.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

var startLine = regexp.MustCompile(`(?m)^jobs: start (j\d+) `)

func TestLoadPrioritiesCancellationsBudget(t *testing.T) {
	const njobs = 220
	const budget = 4
	baseline := runtime.NumGoroutine()

	var logBuf syncBuffer
	srv, err := jobs.New(jobs.Options{
		QueueDir:    t.TempDir(),
		RunDir:      t.TempDir(),
		Workers:     budget,
		StartPaused: true, // submit + cancel the full batch, then one deterministic drain
		Heartbeat:   -1,
		Log:         log.New(&logBuf, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	type rec struct {
		id       string
		seq      int
		priority int
		canceled bool
	}
	var recs []*rec
	for i := 0; i < njobs; i++ {
		j, err := srv.Submit(jobs.Submission{
			Flow:     "shmoo",
			Seed:     int64(1 + i%7),
			Args:     map[string]string{"tests": "1"},
			Parallel: 1 + rng.Intn(2),
			Priority: rng.Intn(5),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		recs = append(recs, &rec{id: j.ID, seq: i, priority: j.Priority})
	}
	// Cancel a seeded-random ~20% while dispatch is paused, so every
	// cancellation deterministically hits a queued job.
	for _, r := range recs {
		if rng.Float64() < 0.2 {
			if _, err := srv.Cancel(r.id); err != nil {
				t.Fatalf("cancel %s: %v", r.id, err)
			}
			r.canceled = true
		}
	}

	srv.Resume()
	waitAllTerminal(t, srv, 120*time.Second)

	// Outcomes: canceled jobs canceled, everything else done with a run ID.
	byID := map[string]*jobs.Job{}
	for _, j := range srv.List() {
		byID[j.ID] = j
	}
	if len(byID) != njobs {
		t.Fatalf("job count %d, want %d", len(byID), njobs)
	}
	for _, r := range recs {
		j := byID[r.id]
		if r.canceled {
			if j.State != jobs.StateCanceled {
				t.Fatalf("%s: state %s, want canceled", r.id, j.State)
			}
			continue
		}
		if j.State != jobs.StateDone || j.RunID == "" || j.Fingerprint == "" {
			t.Fatalf("%s: state %s (run %q), want done with a run ID; error %q",
				r.id, j.State, j.RunID, j.Error)
		}
	}

	// The worker budget is a hard ceiling.
	if max := srv.MaxBusyObserved(); max > budget || max < 1 {
		t.Fatalf("busy high-water %d, budget %d", max, budget)
	}

	// Exact priority order: the dispatcher's start log must equal the
	// non-canceled set sorted by (priority desc, submission asc). Strict
	// head-of-line dispatch makes this exact, not statistical.
	var want []string
	var survivors []*rec
	for _, r := range recs {
		if !r.canceled {
			survivors = append(survivors, r)
		}
	}
	sort.SliceStable(survivors, func(a, b int) bool {
		if survivors[a].priority != survivors[b].priority {
			return survivors[a].priority > survivors[b].priority
		}
		return survivors[a].seq < survivors[b].seq
	})
	for _, r := range survivors {
		want = append(want, r.id)
	}
	var got []string
	for _, m := range startLine.FindAllStringSubmatch(logBuf.String(), -1) {
		got = append(got, m[1])
	}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch position %d: %s, want %s (priority order violated)", i, got[i], want[i])
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutinesSettle(t, baseline)
}

// TestLoadJournalMatchesOutcome re-opens the journal after a full load run
// and checks the persisted states equal the served ones.
func TestLoadJournalMatchesOutcome(t *testing.T) {
	queueDir := t.TempDir()
	srv, err := jobs.New(jobs.Options{
		QueueDir: queueDir, RunDir: t.TempDir(), Workers: 3, StartPaused: true, Heartbeat: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		j, err := srv.Submit(jobs.Submission{
			Flow: "shmoo", Seed: int64(i), Args: map[string]string{"tests": "1"}, Priority: rng.Intn(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(4) == 0 {
			if _, err := srv.Cancel(j.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Resume()
	waitAllTerminal(t, srv, 60*time.Second)
	final := map[string]*jobs.Job{}
	for _, j := range srv.List() {
		final[j.ID] = j
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := jobs.Open(queueDir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer q.Close()
	persisted := q.List()
	if len(persisted) != len(final) {
		t.Fatalf("journal has %d jobs, served %d", len(persisted), len(final))
	}
	for _, p := range persisted {
		f := final[p.ID]
		if f == nil {
			t.Fatalf("journal job %s never served", p.ID)
		}
		if p.State != f.State || p.RunID != f.RunID || p.Fingerprint != f.Fingerprint {
			t.Fatalf("journal %s: %s/%s/%s, served %s/%s/%s",
				p.ID, p.State, p.RunID, p.Fingerprint, f.State, f.RunID, f.Fingerprint)
		}
	}
}

// TestCancelRunningJob cancels a job after it started: it must land in
// canceled (caught at a phase boundary) or done (it beat the request) —
// never wedge — and the job behind it must still run.
func TestCancelRunningJob(t *testing.T) {
	srv, err := jobs.New(jobs.Options{
		QueueDir: t.TempDir(), RunDir: t.TempDir(), Workers: 1, Heartbeat: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	long, err := srv.Submit(jobs.Submission{Flow: "optimize", Seed: 5, Args: map[string]string{"learn-tests": "12"}})
	if err != nil {
		t.Fatal(err)
	}
	next, err := srv.Submit(jobs.Submission{Flow: "shmoo", Seed: 6, Args: map[string]string{"tests": "2"}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the long job to actually start, then cancel it mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := srv.Get(long.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == jobs.StateRunning || j.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Cancel(long.ID); err != nil && err != jobs.ErrTerminal {
		t.Fatalf("cancel running: %v", err)
	}
	waitAllTerminal(t, srv, 60*time.Second)

	j, err := srv.Get(long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != jobs.StateCanceled && j.State != jobs.StateDone {
		t.Fatalf("canceled running job: state %s, error %q", j.State, j.Error)
	}
	if j.State == jobs.StateCanceled && j.RunID != "" {
		t.Fatalf("canceled job has a ledger run ID %s", j.RunID)
	}
	n, err := srv.Get(next.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n.State != jobs.StateDone {
		t.Fatalf("job behind the canceled one: state %s, error %q", n.State, n.Error)
	}
}

// TestSSEStreamsReclaimed opens many SSE progress streams against a live
// job over HTTP and asserts every handler goroutine is reclaimed once the
// job finishes (the stream self-terminates on the done frame).
func TestSSEStreamsReclaimed(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, base := bootService(t, t.TempDir(), t.TempDir(), 2)

	j := submitHTTP(t, base, jobs.Submission{Flow: "optimize", Seed: 9, Args: map[string]string{"learn-tests": "14"}})

	const streams = 8
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/jobs/" + j.ID + "/progress?sse=1")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			frames := 0
			for sc.Scan() {
				if bytes.HasPrefix(sc.Bytes(), []byte("event: progress")) {
					frames++
				}
			}
			if frames == 0 {
				errs <- fmt.Errorf("stream saw no progress frames")
			}
		}()
	}
	wg.Wait() // streams end on their own when the job reaches done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	done := waitTerminal(t, base, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state %s, error %q", done.State, done.Error)
	}

	waitGoroutinesSettleAfterCleanup(t, baseline)
}

// waitGoroutinesSettleAfterCleanup can't run the t.Cleanup-registered
// shutdown early, so it only asserts the SSE handler goroutines (the bulk)
// are gone; the two server goroutines die in cleanup.
func waitGoroutinesSettleAfterCleanup(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Idle keep-alive client connections pin server-side conn
		// goroutines; drop them so only real leaks remain.
		http.DefaultClient.CloseIdleConnections()
		// dispatcher + http server goroutines are still legitimately alive.
		if runtime.NumGoroutine() <= baseline+6 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("SSE goroutines leaked: %d now vs %d baseline\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
