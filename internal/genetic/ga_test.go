package genetic

import (
	"math"
	"testing"

	"repro/internal/testgen"
)

// activityFitness is a synthetic evaluator rewarding data-bus toggling —
// smooth enough for the GA to climb, no device model needed.
func activityFitness(t testgen.Test) (float64, error) {
	limits := testgen.DefaultConditionLimits()
	f := testgen.ExtractFeatures(t, limits)
	return 0.2 + 0.5*f[testgen.FeatToggleMean] + 0.3*f[testgen.FeatATDMean], nil
}

func newOps(seed int64) *Operators {
	gen := testgen.NewRandomGenerator(seed, 4096, testgen.DefaultConditionLimits())
	return NewOperators(seed, gen)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 12
	cfg.Islands = 2
	cfg.MaxGenerations = 20
	cfg.StagnationLimit = 6
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PopSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("population of 1 accepted")
	}
	bad = DefaultConfig()
	bad.Islands = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero islands accepted")
	}
	bad = DefaultConfig()
	bad.Elite = bad.PopSize
	if err := bad.Validate(); err == nil {
		t.Error("all-elite population accepted")
	}
	bad = DefaultConfig()
	bad.MaxGenerations = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero generations accepted")
	}
}

func TestNewOptimizerValidation(t *testing.T) {
	if _, err := NewOptimizer(smallConfig(), nil, EvaluatorFunc(activityFitness)); err == nil {
		t.Error("nil operators accepted")
	}
	if _, err := NewOptimizer(smallConfig(), newOps(1), nil); err == nil {
		t.Error("nil evaluator accepted")
	}
	bad := smallConfig()
	bad.PopSize = 0
	if _, err := NewOptimizer(bad, newOps(1), EvaluatorFunc(activityFitness)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGAImprovesFitness(t *testing.T) {
	opt, err := NewOptimizer(smallConfig(), newOps(5), EvaluatorFunc(activityFitness))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best individual")
	}
	first, last := res.BestHistory[0], res.BestHistory[len(res.BestHistory)-1]
	if last < first {
		t.Errorf("best fitness regressed: %g → %g", first, last)
	}
	if last <= first+0.01 {
		t.Errorf("GA made no progress: %g → %g", first, last)
	}
	if res.Evaluations == 0 || res.Generations == 0 {
		t.Error("accounting missing")
	}
}

func TestGABestHistoryMonotone(t *testing.T) {
	opt, _ := NewOptimizer(smallConfig(), newOps(7), EvaluatorFunc(activityFitness))
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.BestHistory); i++ {
		if res.BestHistory[i] < res.BestHistory[i-1]-1e-12 {
			t.Fatalf("global best decreased at generation %d", i)
		}
	}
}

func TestGATargetStopsEarly(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetFitness = 0.4 // easily reached
	cfg.MaxGenerations = 50
	opt, _ := NewOptimizer(cfg, newOps(9), EvaluatorFunc(activityFitness))
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TargetHit {
		t.Error("target never hit")
	}
	if res.Generations == 50 {
		t.Error("ran to the cap despite hitting the target")
	}
}

func TestGASeedsEnterPopulation(t *testing.T) {
	// A seed engineered to be optimal must become the best individual
	// immediately (elitism keeps it).
	seq := make(testgen.Sequence, 200)
	for i := range seq {
		d := uint32(0)
		if i%2 == 1 {
			d = 0xFFFFFFFF
		}
		addr := uint32(0)
		if i%2 == 1 {
			addr = 4095
		}
		seq[i] = testgen.Vector{Op: testgen.OpWrite, Addr: addr, Data: d}
	}
	seed := Seed{Seq: seq, Cond: testgen.NominalConditions()}

	cfg := smallConfig()
	cfg.MaxGenerations = 2
	opt, _ := NewOptimizer(cfg, newOps(11), EvaluatorFunc(activityFitness))
	res, err := opt.Run([]Seed{seed})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := activityFitness(testgen.Test{Name: "seed", Seq: seq, Cond: seed.Cond})
	if res.Best.Fitness < want-1e-9 {
		t.Errorf("seeded optimum lost: best %g, seed fitness %g", res.Best.Fitness, want)
	}
}

func TestGAFixedConditions(t *testing.T) {
	nominal := testgen.NominalConditions()
	cfg := smallConfig()
	cfg.FixedConditions = &nominal
	evalCount := 0
	eval := EvaluatorFunc(func(tt testgen.Test) (float64, error) {
		evalCount++
		if tt.Cond != nominal {
			t.Fatalf("individual escaped fixed conditions: %+v", tt.Cond)
		}
		return activityFitness(tt)
	})
	opt, _ := NewOptimizer(cfg, newOps(13), eval)
	if _, err := opt.Run(nil); err != nil {
		t.Fatal(err)
	}
	if evalCount == 0 {
		t.Fatal("nothing evaluated")
	}
}

func TestGARestartsOnStagnation(t *testing.T) {
	// A constant fitness surface stagnates immediately: with a small
	// stagnation limit the optimizer must restart populations.
	cfg := smallConfig()
	cfg.StagnationLimit = 2
	cfg.MaxGenerations = 15
	eval := EvaluatorFunc(func(testgen.Test) (float64, error) { return 0.5, nil })
	opt, _ := NewOptimizer(cfg, newOps(15), eval)
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Error("no restarts on a flat surface")
	}
	if len(res.EraBests) == 0 {
		t.Error("era bests not banked")
	}
}

func TestGAEraBestsSorted(t *testing.T) {
	cfg := smallConfig()
	cfg.StagnationLimit = 2
	opt, _ := NewOptimizer(cfg, newOps(17), EvaluatorFunc(activityFitness))
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.EraBests); i++ {
		if res.EraBests[i].Fitness > res.EraBests[i-1].Fitness {
			t.Fatal("era bests not sorted worst-first")
		}
	}
}

func TestGAEvaluationErrorPropagates(t *testing.T) {
	eval := EvaluatorFunc(func(testgen.Test) (float64, error) {
		return 0, errTest
	})
	opt, _ := NewOptimizer(smallConfig(), newOps(19), eval)
	if _, err := opt.Run(nil); err == nil {
		t.Error("evaluator error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic evaluation failure" }

func TestIndividualTestNaming(t *testing.T) {
	ind := &Individual{ID: 42, Seq: testgen.Sequence{{Op: testgen.OpNop}}, Cond: testgen.NominalConditions()}
	if got := ind.Test().Name; got != "GA-000042" {
		t.Errorf("test name %q", got)
	}
	c := ind.Clone()
	c.Seq[0].Op = testgen.OpRead
	if ind.Seq[0].Op != testgen.OpNop {
		t.Error("Clone shares sequence storage")
	}
}

func TestGADeterminism(t *testing.T) {
	run := func() float64 {
		opt, _ := NewOptimizer(smallConfig(), newOps(21), EvaluatorFunc(activityFitness))
		res, err := opt.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Fitness
	}
	if a, b := run(), run(); math.Abs(a-b) > 1e-12 {
		t.Errorf("same-seed GA runs diverged: %g vs %g", a, b)
	}
}

func TestGAOnGenerationCallback(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxGenerations = 8
	var gens []int
	var bests []float64
	cfg.OnGeneration = func(gen int, best float64) {
		gens = append(gens, gen)
		bests = append(bests, best)
	}
	opt, err := NewOptimizer(cfg, newOps(23), EvaluatorFunc(activityFitness))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != res.Generations {
		t.Fatalf("callback fired %d times over %d generations", len(gens), res.Generations)
	}
	for i, g := range gens {
		if g != i {
			t.Errorf("generation index %d at position %d", g, i)
		}
	}
	for i, b := range bests {
		if b != res.BestHistory[i] {
			t.Errorf("callback best %g != history %g at gen %d", b, res.BestHistory[i], i)
		}
	}
}
