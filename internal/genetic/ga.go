package genetic

import (
	"fmt"
	"sort"

	"repro/internal/testgen"
)

// Config parameterizes the optimizer.
type Config struct {
	// PopSize is the number of individuals per island population.
	PopSize int
	// Islands is the number of co-evolving populations ("evolving multiple
	// populations of different individuals over a number of generations").
	Islands int
	// Elite is the number of top individuals copied unchanged per
	// generation and island.
	Elite int
	// TournamentK is the selection tournament size.
	TournamentK int
	// CrossoverRate is the probability offspring come from recombination
	// rather than cloning a parent.
	CrossoverRate float64
	// MaxGenerations caps the total generations across all eras.
	MaxGenerations int
	// StagnationLimit restarts an island with a brand-new population after
	// this many generations without island-best improvement (fig. 5 step 4:
	// "Then go to (1) and a brand new population will start GA again").
	StagnationLimit int
	// TargetFitness stops the run early once the global best reaches it
	// ("until ... the worst case is detected based on worst case ratio
	// theorem"). Zero disables the target.
	TargetFitness float64
	// MigrateEvery exchanges the island bests in a ring every this many
	// generations. Zero disables migration.
	MigrateEvery int
	// FixedConditions pins every individual to the given conditions
	// (Table 1 is measured at Vdd 1.8 V); nil lets conditions evolve.
	FixedConditions *testgen.Conditions

	// OnGeneration, when non-nil, observes every completed generation:
	// the zero-based generation index and the global best fitness so far.
	// It runs on the serial generation loop after evaluation, so callers
	// may emit trace events from it without racing the fitness workers.
	OnGeneration func(gen int, bestFitness float64)
}

// DefaultConfig returns tuned defaults sized for the experiments.
func DefaultConfig() Config {
	return Config{
		PopSize:         24,
		Islands:         3,
		Elite:           2,
		TournamentK:     3,
		CrossoverRate:   0.85,
		MaxGenerations:  60,
		StagnationLimit: 8,
		MigrateEvery:    5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PopSize < 2 {
		return fmt.Errorf("genetic: population size %d too small", c.PopSize)
	}
	if c.Islands < 1 {
		return fmt.Errorf("genetic: need at least one island, got %d", c.Islands)
	}
	if c.Elite < 0 || c.Elite >= c.PopSize {
		return fmt.Errorf("genetic: elite %d out of range for population %d", c.Elite, c.PopSize)
	}
	if c.MaxGenerations < 1 {
		return fmt.Errorf("genetic: max generations %d too small", c.MaxGenerations)
	}
	return nil
}

// Result summarizes one optimization run.
type Result struct {
	Best        *Individual
	BestHistory []float64 // global best fitness after each generation
	Generations int
	Evaluations int
	Restarts    int
	TargetHit   bool
	// EraBests are the best individuals of each era (between restarts) —
	// the candidates that go to the worst-case database.
	EraBests []*Individual
}

// Optimizer runs the dual-chromosome, multi-population GA.
type Optimizer struct {
	cfg  Config
	ops  *Operators
	eval Evaluator

	nextID  int
	islands [][]*Individual
	eraBest []*Individual // per-island best of the current era
	stall   []int
}

// NewOptimizer wires a configuration, operators and an evaluator.
func NewOptimizer(cfg Config, ops *Operators, eval Evaluator) (*Optimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ops == nil || eval == nil {
		return nil, fmt.Errorf("genetic: nil operators or evaluator")
	}
	return &Optimizer{cfg: cfg, ops: ops, eval: eval}, nil
}

func (o *Optimizer) newIndividual(seq testgen.Sequence, cond testgen.Conditions) *Individual {
	o.nextID++
	if o.cfg.FixedConditions != nil {
		cond = *o.cfg.FixedConditions
	}
	return &Individual{Seq: seq, Cond: cond, ID: o.nextID}
}

// initIslands seeds island 0 with the provided seeds (NN candidates) and
// fills everything else randomly.
func (o *Optimizer) initIslands(seeds []Seed) {
	o.islands = make([][]*Individual, o.cfg.Islands)
	o.eraBest = make([]*Individual, o.cfg.Islands)
	o.stall = make([]int, o.cfg.Islands)
	si := 0
	for i := range o.islands {
		pop := make([]*Individual, 0, o.cfg.PopSize)
		for len(pop) < o.cfg.PopSize {
			if si < len(seeds) {
				s := seeds[si]
				si++
				pop = append(pop, o.newIndividual(s.Seq.Clone(), s.Cond))
				continue
			}
			seq, cond := o.ops.RandomIndividual(o.cfg.FixedConditions)
			pop = append(pop, o.newIndividual(seq, cond))
		}
		o.islands[i] = pop
	}
}

// restartIsland replaces an island with a brand-new random population,
// banking its era best.
func (o *Optimizer) restartIsland(i int, res *Result) {
	if b := o.eraBest[i]; b != nil {
		res.EraBests = append(res.EraBests, b.Clone())
	}
	pop := make([]*Individual, 0, o.cfg.PopSize)
	for len(pop) < o.cfg.PopSize {
		seq, cond := o.ops.RandomIndividual(o.cfg.FixedConditions)
		pop = append(pop, o.newIndividual(seq, cond))
	}
	o.islands[i] = pop
	o.eraBest[i] = nil
	o.stall[i] = 0
	res.Restarts++
}

// evaluateGeneration measures every unevaluated individual across all
// islands at once, then ranks each island by fitness. Collecting the whole
// generation island-major before measuring is what lets a BatchEvaluator
// fan the work across parallel workers; a plain Evaluator is called
// serially in the same island-major order.
func (o *Optimizer) evaluateGeneration(res *Result) error {
	var pending []*Individual
	for _, pop := range o.islands {
		for _, ind := range pop {
			if !ind.Evaluated {
				pending = append(pending, ind)
			}
		}
	}
	switch be := o.eval.(type) {
	case BatchEvaluator:
		if len(pending) > 0 {
			tests := make([]testgen.Test, len(pending))
			for i, ind := range pending {
				tests[i] = ind.Test()
			}
			fits, err := be.FitnessBatch(tests)
			if err != nil {
				return fmt.Errorf("genetic: evaluating generation batch: %w", err)
			}
			if len(fits) != len(pending) {
				return fmt.Errorf("genetic: batch evaluator returned %d fitnesses for %d tests", len(fits), len(pending))
			}
			for i, ind := range pending {
				ind.Fitness = fits[i]
				ind.Evaluated = true
			}
			res.Evaluations += len(pending)
		}
	default:
		for _, ind := range pending {
			f, err := o.eval.Fitness(ind.Test())
			if err != nil {
				return fmt.Errorf("genetic: evaluating %s: %w", ind.Test().Name, err)
			}
			ind.Fitness = f
			ind.Evaluated = true
			res.Evaluations++
		}
	}
	for _, pop := range o.islands {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })
	}
	return nil
}

// Run executes the GA until the generation cap or the fitness target.
func (o *Optimizer) Run(seeds []Seed) (*Result, error) {
	res := &Result{}
	o.initIslands(seeds)

	var globalBest *Individual
	for gen := 0; gen < o.cfg.MaxGenerations; gen++ {
		res.Generations = gen + 1
		if err := o.evaluateGeneration(res); err != nil {
			return res, err
		}
		for i, pop := range o.islands {
			islandBest := pop[0]
			if o.eraBest[i] == nil || islandBest.Fitness > o.eraBest[i].Fitness {
				o.eraBest[i] = islandBest.Clone()
				o.stall[i] = 0
			} else {
				o.stall[i]++
			}
			if globalBest == nil || islandBest.Fitness > globalBest.Fitness {
				globalBest = islandBest.Clone()
			}
		}
		res.Best = globalBest
		res.BestHistory = append(res.BestHistory, globalBest.Fitness)
		if o.cfg.OnGeneration != nil {
			o.cfg.OnGeneration(gen, globalBest.Fitness)
		}

		if o.cfg.TargetFitness > 0 && globalBest.Fitness >= o.cfg.TargetFitness {
			res.TargetHit = true
			break
		}

		// Ring migration of island bests. Collect every migrant before
		// placing any, so island i+1's emigrant is chosen from its own
		// population, never from a freshly arrived migrant. A migrant only
		// displaces the destination's worst individual when it actually
		// improves on it, and arrives clone-and-invalidated: the clone
		// never aliases its source island, and the cleared evaluation
		// re-requests its fitness on the destination (a memoizing evaluator
		// answers from cache for free).
		if o.cfg.MigrateEvery > 0 && gen > 0 && gen%o.cfg.MigrateEvery == 0 && o.cfg.Islands > 1 {
			migrants := make([]*Individual, o.cfg.Islands)
			for i := range o.islands {
				migrants[(i+1)%o.cfg.Islands] = o.islands[i][0].Clone()
			}
			for i, m := range migrants {
				dst := o.islands[i]
				if m.Fitness > dst[len(dst)-1].Fitness {
					m.Evaluated = false
					dst[len(dst)-1] = m
				}
			}
		}

		// Breed the next generation per island.
		for i, pop := range o.islands {
			if o.stall[i] >= o.cfg.StagnationLimit && o.cfg.StagnationLimit > 0 {
				o.restartIsland(i, res)
				continue
			}
			next := make([]*Individual, 0, o.cfg.PopSize)
			for e := 0; e < o.cfg.Elite && e < len(pop); e++ {
				// Clone-and-invalidate: the clone keeps the elite from
				// aliasing the old generation (the batch evaluator hands
				// individuals to concurrent workers and must own each one
				// exclusively); invalidating re-requests its fitness next
				// generation, which a memoizing evaluator answers from
				// cache for free while a noise-resampling one re-draws it.
				elite := pop[e].Clone()
				elite.Evaluated = false
				next = append(next, elite)
			}
			for len(next) < o.cfg.PopSize {
				p1 := o.ops.Tournament(pop, o.cfg.TournamentK)
				var childSeq testgen.Sequence
				var childCond testgen.Conditions
				if o.ops.Chance(o.cfg.CrossoverRate) {
					p2 := o.ops.Tournament(pop, o.cfg.TournamentK)
					childSeq, _ = o.ops.CrossoverSeq(p1.Seq, p2.Seq)
					childCond = o.ops.CrossoverCond(p1.Cond, p2.Cond)
				} else {
					childSeq = p1.Seq.Clone()
					childCond = p1.Cond
				}
				childSeq = o.ops.MutateSeq(childSeq)
				if o.cfg.FixedConditions == nil {
					childCond = o.ops.MutateCond(childCond)
				}
				next = append(next, o.newIndividual(childSeq, childCond))
			}
			o.islands[i] = next
		}
	}

	// Bank the final era bests.
	for i := range o.eraBest {
		if b := o.eraBest[i]; b != nil {
			res.EraBests = append(res.EraBests, b.Clone())
		}
	}
	if res.Best == nil {
		return res, fmt.Errorf("genetic: no individual was evaluated")
	}
	sort.SliceStable(res.EraBests, func(a, b int) bool {
		return res.EraBests[a].Fitness > res.EraBests[b].Fitness
	})
	return res, nil
}
