package genetic

import (
	"testing"

	"repro/internal/testgen"
)

func TestCrossoverSeqLengthsAndValidity(t *testing.T) {
	ops := newOps(1)
	gen := testgen.NewRandomGenerator(2, 4096, testgen.DefaultConditionLimits())
	a, b := gen.Sequence(300), gen.Sequence(700)
	for i := 0; i < 50; i++ {
		c1, c2 := ops.CrossoverSeq(a, b)
		for _, c := range []testgen.Sequence{c1, c2} {
			if len(c) < testgen.MinSequenceLen || len(c) > testgen.MaxSequenceLen {
				t.Fatalf("offspring length %d outside bounds", len(c))
			}
			if err := c.Validate(4096); err != nil {
				t.Fatalf("offspring invalid: %v", err)
			}
		}
	}
}

func TestCrossoverSeqMixesParents(t *testing.T) {
	ops := newOps(3)
	a := make(testgen.Sequence, 200)
	b := make(testgen.Sequence, 200)
	for i := range a {
		a[i] = testgen.Vector{Op: testgen.OpRead, Addr: 1}
		b[i] = testgen.Vector{Op: testgen.OpRead, Addr: 2}
	}
	sawMix := false
	for i := 0; i < 20 && !sawMix; i++ {
		c1, _ := ops.CrossoverSeq(a, b)
		has1, has2 := false, false
		for _, v := range c1 {
			if v.Addr == 1 {
				has1 = true
			}
			if v.Addr == 2 {
				has2 = true
			}
		}
		sawMix = has1 && has2
	}
	if !sawMix {
		t.Error("crossover never mixed material from both parents")
	}
}

func TestCrossoverSeqEmptyParents(t *testing.T) {
	ops := newOps(5)
	var empty testgen.Sequence
	c1, c2 := ops.CrossoverSeq(empty, empty)
	if len(c1) != 0 || len(c2) != 0 {
		t.Error("empty parents produced offspring")
	}
}

func TestMutateSeqKeepsBoundsAndValidity(t *testing.T) {
	ops := newOps(7)
	gen := testgen.NewRandomGenerator(8, 4096, testgen.DefaultConditionLimits())
	s := gen.Sequence(150)
	for i := 0; i < 50; i++ {
		m := ops.MutateSeq(s)
		if len(m) < testgen.MinSequenceLen || len(m) > testgen.MaxSequenceLen {
			t.Fatalf("mutant length %d", len(m))
		}
		if err := m.Validate(4096); err != nil {
			t.Fatalf("mutant invalid: %v", err)
		}
	}
}

func TestMutateSeqChangesSomething(t *testing.T) {
	ops := newOps(9)
	ops.SeqMutationRate = 0.2
	gen := testgen.NewRandomGenerator(10, 4096, testgen.DefaultConditionLimits())
	s := gen.Sequence(300)
	m := ops.MutateSeq(s)
	diff := 0
	for i := range m {
		if i < len(s) && m[i] != s[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("mutation changed nothing at 20% rate")
	}
}

func TestCrossoverCondWithinLimits(t *testing.T) {
	ops := newOps(11)
	limits := testgen.DefaultConditionLimits()
	a := testgen.Conditions{VddV: limits.VddMin, TempC: limits.TempMin, ClockMHz: limits.ClockMin}
	b := testgen.Conditions{VddV: limits.VddMax, TempC: limits.TempMax, ClockMHz: limits.ClockMax}
	for i := 0; i < 100; i++ {
		c := ops.CrossoverCond(a, b)
		if !limits.Contains(c) {
			t.Fatalf("blend escaped limits: %+v", c)
		}
	}
}

func TestMutateCondWithinLimits(t *testing.T) {
	ops := newOps(13)
	limits := testgen.DefaultConditionLimits()
	c := testgen.NominalConditions()
	changed := false
	for i := 0; i < 100; i++ {
		m := ops.MutateCond(c)
		if !limits.Contains(m) {
			t.Fatalf("mutant escaped limits: %+v", m)
		}
		if m != c {
			changed = true
		}
	}
	if !changed {
		t.Error("condition mutation is a no-op")
	}
}

func TestRandomIndividual(t *testing.T) {
	ops := newOps(15)
	seq, cond := ops.RandomIndividual(nil)
	if len(seq) < testgen.MinSequenceLen || len(seq) > testgen.MaxSequenceLen {
		t.Errorf("random individual length %d", len(seq))
	}
	if !testgen.DefaultConditionLimits().Contains(cond) {
		t.Errorf("random conditions %+v outside limits", cond)
	}
	fixed := testgen.NominalConditions()
	_, cond = ops.RandomIndividual(&fixed)
	if cond != fixed {
		t.Error("fixed conditions ignored")
	}
}

func TestTournamentPicksFitter(t *testing.T) {
	ops := newOps(17)
	weak := &Individual{Fitness: 0.1, Evaluated: true}
	strong := &Individual{Fitness: 0.9, Evaluated: true}
	pop := []*Individual{weak, strong}
	strongWins := 0
	for i := 0; i < 200; i++ {
		if ops.Tournament(pop, 2) == strong {
			strongWins++
		}
	}
	// With k=2 over two individuals, the strong one wins whenever it is
	// drawn at least once: P = 3/4.
	if strongWins < 120 {
		t.Errorf("tournament selected the stronger individual only %d/200 times", strongWins)
	}
}
