package genetic

import (
	"errors"
	"testing"

	"repro/internal/testgen"
)

// countingBatchEvaluator implements BatchEvaluator over activityFitness,
// recording how work arrives.
type countingBatchEvaluator struct {
	batches     []int
	singleCalls int
}

func (e *countingBatchEvaluator) Fitness(t testgen.Test) (float64, error) {
	e.singleCalls++
	return activityFitness(t)
}

func (e *countingBatchEvaluator) FitnessBatch(tests []testgen.Test) ([]float64, error) {
	e.batches = append(e.batches, len(tests))
	out := make([]float64, len(tests))
	for i, tt := range tests {
		f, err := activityFitness(tt)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func TestBatchEvaluatorReceivesWholeGenerations(t *testing.T) {
	cfg := smallConfig()
	be := &countingBatchEvaluator{}
	opt, err := NewOptimizer(cfg, newOps(31), be)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if be.singleCalls != 0 {
		t.Errorf("optimizer fell back to %d single Fitness calls", be.singleCalls)
	}
	if len(be.batches) == 0 {
		t.Fatal("batch evaluator never called")
	}
	// Generation 0 must arrive as one batch spanning every island.
	if be.batches[0] != cfg.PopSize*cfg.Islands {
		t.Errorf("first batch = %d individuals, want %d", be.batches[0], cfg.PopSize*cfg.Islands)
	}
	total := 0
	for _, b := range be.batches {
		total += b
	}
	if total != res.Evaluations {
		t.Errorf("batched individuals %d != reported evaluations %d", total, res.Evaluations)
	}
}

func TestBatchMatchesSerialEvaluation(t *testing.T) {
	// The same pure fitness function through the batch path and the plain
	// path must yield the identical run (same seeds everywhere else).
	serial, err := NewOptimizer(smallConfig(), newOps(33), EvaluatorFunc(activityFitness))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := serial.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewOptimizer(smallConfig(), newOps(33), &countingBatchEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := batch.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Best.Fitness != bres.Best.Fitness {
		t.Errorf("best fitness diverged: serial %g, batch %g", sres.Best.Fitness, bres.Best.Fitness)
	}
	if sres.Evaluations != bres.Evaluations {
		t.Errorf("evaluations diverged: serial %d, batch %d", sres.Evaluations, bres.Evaluations)
	}
	if len(sres.BestHistory) != len(bres.BestHistory) {
		t.Fatalf("history length diverged: %d vs %d", len(sres.BestHistory), len(bres.BestHistory))
	}
	for i := range sres.BestHistory {
		if sres.BestHistory[i] != bres.BestHistory[i] {
			t.Fatalf("BestHistory[%d] diverged: serial %g, batch %g", i, sres.BestHistory[i], bres.BestHistory[i])
		}
	}
}

func TestBatchEvaluatorErrorPropagates(t *testing.T) {
	boom := errors.New("tester offline")
	fail := struct {
		Evaluator
		batchFn
	}{EvaluatorFunc(activityFitness), func([]testgen.Test) ([]float64, error) { return nil, boom }}
	opt, err := NewOptimizer(smallConfig(), newOps(35), fail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(nil); !errors.Is(err, boom) {
		t.Errorf("batch error lost: %v", err)
	}
}

// batchFn adapts a function to the FitnessBatch method for test composition.
type batchFn func(tests []testgen.Test) ([]float64, error)

func (f batchFn) FitnessBatch(tests []testgen.Test) ([]float64, error) { return f(tests) }

func TestBatchLengthMismatchRejected(t *testing.T) {
	short := struct {
		Evaluator
		batchFn
	}{EvaluatorFunc(activityFitness), func(tests []testgen.Test) ([]float64, error) {
		return make([]float64, len(tests)-1), nil
	}}
	opt, err := NewOptimizer(smallConfig(), newOps(37), short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(nil); err == nil {
		t.Error("short batch result accepted")
	}
}

func TestElitesAreNotAliasedAcrossGenerations(t *testing.T) {
	// Collect every individual pointer the evaluator ever sees; with elites
	// cloned per generation, no pointer identity can recur via aliasing and
	// mutating a received test must never change a later generation.
	cfg := smallConfig()
	cfg.MaxGenerations = 6
	seen := map[*testgen.Vector]bool{}
	eval := struct {
		Evaluator
		batchFn
	}{EvaluatorFunc(activityFitness), func(tests []testgen.Test) ([]float64, error) {
		out := make([]float64, len(tests))
		for i, tt := range tests {
			if len(tt.Seq) > 0 {
				p := &tt.Seq[0]
				if seen[p] {
					return nil, errors.New("same backing sequence evaluated twice")
				}
				seen[p] = true
			}
			f, err := activityFitness(tt)
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	}}
	opt, err := NewOptimizer(cfg, newOps(39), eval)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationOnlyImproves(t *testing.T) {
	// With a fitness that depends only on the sequence, run long enough to
	// cross several migration points; after each Run the global best must
	// never exceed any island era best by corruption — the cheap observable
	// check is simply that migration never breaks determinism or ranking,
	// i.e. repeated runs agree and history stays monotone.
	cfg := smallConfig()
	cfg.MigrateEvery = 2
	cfg.MaxGenerations = 12
	run := func() *Result {
		opt, err := NewOptimizer(cfg, newOps(41), EvaluatorFunc(activityFitness))
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.Fitness != b.Best.Fitness || a.Evaluations != b.Evaluations {
		t.Error("migration made runs non-deterministic")
	}
	for i := 1; i < len(a.BestHistory); i++ {
		if a.BestHistory[i] < a.BestHistory[i-1] {
			t.Errorf("best history regressed at %d: %g -> %g", i, a.BestHistory[i-1], a.BestHistory[i])
		}
	}
}
