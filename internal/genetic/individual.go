// Package genetic implements the paper's test-optimization GA (§5, fig. 5;
// §6): an evolutionary search over two chromosome types — vector test
// sequences and test conditions — run as multiple co-evolving island
// populations. Fitness is a real trip-point measurement delivered by an
// Evaluator (the ATE with the Search-Until-Trip-Point method), expressed as
// the Worst Case Ratio so "the worst case tests are given by the largest
// values of WCR". Stagnating populations restart from scratch, and the best
// tests of every era accumulate in the caller's worst-case database.
package genetic

import (
	"fmt"

	"repro/internal/testgen"
)

// Individual is one GA candidate: the pairing of a sequence chromosome with
// a conditions chromosome, plus its measured fitness.
type Individual struct {
	Seq  testgen.Sequence
	Cond testgen.Conditions

	Fitness   float64
	Evaluated bool

	// ID is a unique identifier assigned at creation, stable across
	// sorting, used to name the test on the ATE (pattern reload caching)
	// and in reports.
	ID int
}

// Test materializes the individual as a runnable characterization test.
func (ind *Individual) Test() testgen.Test {
	return testgen.Test{
		Name: fmt.Sprintf("GA-%06d", ind.ID),
		Seq:  ind.Seq,
		Cond: ind.Cond,
	}
}

// Clone deep-copies the individual (fitness and ID are reset by the
// caller when appropriate).
func (ind *Individual) Clone() *Individual {
	return &Individual{
		Seq:       ind.Seq.Clone(),
		Cond:      ind.Cond,
		Fitness:   ind.Fitness,
		Evaluated: ind.Evaluated,
		ID:        ind.ID,
	}
}

// Evaluator measures the fitness of a candidate test. The characterization
// flow wires this to an ATE trip-point measurement mapped through the WCR;
// unit tests wire synthetic surfaces.
type Evaluator interface {
	Fitness(t testgen.Test) (float64, error)
}

// BatchEvaluator is an Evaluator that can measure a whole generation's
// worth of tests at once. When the optimizer's evaluator implements it,
// every unevaluated individual of a generation — all islands — is handed
// over in a single FitnessBatch call, which is where the parallel
// measurement engine fans the tests across workers. The returned slice
// must hold one fitness per test, index-aligned, and must not depend on
// how the implementation schedules the measurements.
type BatchEvaluator interface {
	Evaluator
	FitnessBatch(tests []testgen.Test) ([]float64, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(t testgen.Test) (float64, error)

// Fitness implements Evaluator.
func (f EvaluatorFunc) Fitness(t testgen.Test) (float64, error) { return f(t) }

// Seed is an unevaluated candidate injected into the initial population —
// the sub-optimal worst-case tests the fuzzy-neural test generator selects
// from its weight file (fig. 5 step 1).
type Seed struct {
	Seq  testgen.Sequence
	Cond testgen.Conditions
}
