package genetic

import (
	"math/rand"

	"repro/internal/testgen"
)

// Operators bundles the variation operators for the two chromosome types.
// Sequence chromosomes recombine by cut-and-splice and mutate through the
// random generator (so mutated vectors stay inside the device's address
// space); condition chromosomes recombine by blend crossover and mutate
// with clamped gaussian noise.
type Operators struct {
	rng    *rand.Rand
	gen    *testgen.RandomGenerator
	limits testgen.ConditionLimits

	// SeqMutationRate is the per-vector redraw probability.
	SeqMutationRate float64
	// BlockMutationRate is the probability of a structural sequence
	// mutation (splice-in of a fresh block, or block duplication).
	BlockMutationRate float64
	// CondSigma scales the gaussian condition mutation relative to each
	// condition's admissible span.
	CondSigma float64
	// BlendAlpha is the BLX-α exploration margin for condition crossover.
	BlendAlpha float64
}

// NewOperators builds operators with the conventional defaults.
func NewOperators(seed int64, gen *testgen.RandomGenerator) *Operators {
	return &Operators{
		rng:               rand.New(rand.NewSource(seed)),
		gen:               gen,
		limits:            gen.Limits(),
		SeqMutationRate:   0.02,
		BlockMutationRate: 0.3,
		CondSigma:         0.08,
		BlendAlpha:        0.25,
	}
}

// CrossoverSeq recombines two sequence chromosomes with proportional
// one-point cut-and-splice: the cut sits at the same relative position in
// both parents so offspring lengths stay within the parents' range.
func (o *Operators) CrossoverSeq(a, b testgen.Sequence) (testgen.Sequence, testgen.Sequence) {
	if len(a) == 0 || len(b) == 0 {
		return a.Clone(), b.Clone()
	}
	frac := o.rng.Float64()
	ca := int(frac * float64(len(a)))
	cb := int(frac * float64(len(b)))
	child1 := make(testgen.Sequence, 0, ca+len(b)-cb)
	child1 = append(child1, a[:ca]...)
	child1 = append(child1, b[cb:]...)
	child2 := make(testgen.Sequence, 0, cb+len(a)-ca)
	child2 = append(child2, b[:cb]...)
	child2 = append(child2, a[ca:]...)
	return o.clampLen(child1), o.clampLen(child2)
}

// clampLen keeps sequences inside the paper's 100–1000 cycle regime.
func (o *Operators) clampLen(s testgen.Sequence) testgen.Sequence {
	if len(s) > testgen.MaxSequenceLen {
		return s[:testgen.MaxSequenceLen]
	}
	for len(s) < testgen.MinSequenceLen {
		s = append(s, o.gen.Sequence(testgen.MinSequenceLen-len(s))...)
	}
	return s
}

// MutateSeq applies per-vector redraws plus, with BlockMutationRate
// probability, one structural mutation: either a fresh random block splice
// or a tandem duplication of an existing block (duplication concentrates
// activity, which is how the GA discovers resonant bursts).
func (o *Operators) MutateSeq(s testgen.Sequence) testgen.Sequence {
	out := o.gen.PerturbSequence(s, o.SeqMutationRate)
	if o.rng.Float64() < o.BlockMutationRate && len(out) > 8 {
		blockLen := 4 + o.rng.Intn(28)
		if blockLen > len(out)/2 {
			blockLen = len(out) / 2
		}
		pos := o.rng.Intn(len(out) - blockLen)
		if o.rng.Float64() < 0.5 {
			// Splice a fresh random block over [pos, pos+blockLen).
			fresh := o.gen.Sequence(blockLen)
			copy(out[pos:pos+blockLen], fresh)
		} else {
			// Duplicate the block immediately after itself.
			dst := pos + blockLen
			n := copy(out[dst:], out[pos:pos+blockLen])
			_ = n
		}
	}
	return o.clampLen(out)
}

// CrossoverCond blends two condition chromosomes with BLX-α: each gene is
// drawn uniformly from the interval spanned by the parents, extended by
// alpha on both sides, then clamped to the limits.
func (o *Operators) CrossoverCond(a, b testgen.Conditions) testgen.Conditions {
	blend := func(x, y float64) float64 {
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		span := hi - lo
		lo -= o.BlendAlpha * span
		hi += o.BlendAlpha * span
		return lo + o.rng.Float64()*(hi-lo)
	}
	return o.limits.Clamp(testgen.Conditions{
		VddV:     blend(a.VddV, b.VddV),
		TempC:    blend(a.TempC, b.TempC),
		ClockMHz: blend(a.ClockMHz, b.ClockMHz),
	})
}

// MutateCond adds clamped gaussian noise scaled to each condition's span.
func (o *Operators) MutateCond(c testgen.Conditions) testgen.Conditions {
	l := o.limits
	return l.Clamp(testgen.Conditions{
		VddV:     c.VddV + o.rng.NormFloat64()*o.CondSigma*(l.VddMax-l.VddMin),
		TempC:    c.TempC + o.rng.NormFloat64()*o.CondSigma*(l.TempMax-l.TempMin),
		ClockMHz: c.ClockMHz + o.rng.NormFloat64()*o.CondSigma*(l.ClockMax-l.ClockMin),
	})
}

// RandomIndividual draws a fresh random candidate (population restarts,
// initial fill beyond the seeds).
func (o *Operators) RandomIndividual(fixedCond *testgen.Conditions) (testgen.Sequence, testgen.Conditions) {
	n := testgen.MinSequenceLen + o.rng.Intn(testgen.MaxSequenceLen-testgen.MinSequenceLen+1)
	seq := o.gen.Sequence(n)
	var cond testgen.Conditions
	if fixedCond != nil {
		cond = *fixedCond
	} else {
		cond = o.gen.Conditions()
	}
	return seq, cond
}

// Tournament picks the fittest of k uniformly drawn individuals.
func (o *Operators) Tournament(pop []*Individual, k int) *Individual {
	if k < 1 {
		k = 2
	}
	best := pop[o.rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[o.rng.Intn(len(pop))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

// Chance returns true with probability p.
func (o *Operators) Chance(p float64) bool { return o.rng.Float64() < p }
