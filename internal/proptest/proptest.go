// Package proptest is the repo's seeded, fully deterministic
// property-based testing harness. Invariant suites across the stack — the
// SUTP-vs-full-range differential oracle, parallel-vs-serial
// bit-equivalence, fuzzy partition properties, serialization round-trip
// closure — are written as ordinary `go test` functions that call Check
// with a property over randomly generated cases.
//
// Determinism and repro: the base seed of every property derives from the
// test name, so a plain `go test` run checks the same cases every time.
// Each case has its own printable 64-bit seed; a failure report ends with a
// one-line repro of the form
//
//	go test -run '^TestName$' -proptest.seed=1234567890
//
// which re-runs exactly the failing case (and its shrink) and nothing else.
//
// Shrinking: generators draw 64-bit words from a recorded tape, and every
// primitive draw maps the zero word to its minimal value. When a case
// fails, the harness minimizes the integers on the tape — deleting draws
// and binary-searching surviving values toward zero — and reports the
// minimal still-failing counterexample. Properties describe their generated
// case with T.Logf; the report replays the logs of the shrunk case.
package proptest

import (
	"flag"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

var (
	flagSeed = flag.Int64("proptest.seed", 0,
		"replay a single property case by its printed seed (0 = full run)")
	flagCases = flag.Int("proptest.cases", 0,
		"override the number of generated cases per property (0 = per-call default)")
)

// T is the per-case handle a property receives: draw methods (draw.go and
// gen.go) plus a testing.TB-flavoured failure and logging surface. A
// property signals falsification with Fatalf/Errorf/Fail; logs are buffered
// and replayed only for the final, shrunk counterexample.
type T struct {
	seed   uint64
	src    *source
	failed bool
	msgs   []string
	logs   []string
}

// failNow is the sentinel panic that unwinds a property after Fatalf.
type failNow struct{}

// discardCase is the sentinel panic that unwinds a property after Discard.
type discardCase struct{}

// Seed returns the current case's seed — the value the repro line prints.
func (t *T) Seed() uint64 { return t.seed }

// Logf buffers a case-description line; the failure report replays the
// shrunk case's log.
func (t *T) Logf(format string, args ...any) {
	t.logs = append(t.logs, fmt.Sprintf(format, args...))
}

// Errorf records a falsification and lets the property continue.
func (t *T) Errorf(format string, args ...any) {
	t.failed = true
	t.msgs = append(t.msgs, fmt.Sprintf(format, args...))
}

// Fatalf records a falsification and stops the case immediately.
func (t *T) Fatalf(format string, args ...any) {
	t.Errorf(format, args...)
	panic(failNow{})
}

// Fail records an unexplained falsification and continues.
func (t *T) Fail() { t.failed = true }

// Failed reports whether the case has been falsified so far.
func (t *T) Failed() bool { return t.failed }

// Discard abandons the current case without judging it — the precondition
// filter for generators that occasionally produce inapplicable inputs.
// Discarded cases count toward neither passes nor failures.
func (t *T) Discard() { panic(discardCase{}) }

// outcome is one property execution's result.
type outcome struct {
	failed    bool
	discarded bool
	msgs      []string
	logs      []string
	panicked  any // non-nil when the property panicked (counts as failure)
}

// runCase executes the property once against the given source, converting
// Fatalf unwinds, Discard unwinds and genuine panics into an outcome.
func runCase(seed uint64, src *source, prop func(*T)) (out outcome) {
	t := &T{seed: seed, src: src}
	defer func() {
		out.failed = t.failed
		out.msgs = t.msgs
		out.logs = t.logs
		switch r := recover(); r {
		case nil:
		default:
			switch r.(type) {
			case failNow:
			case discardCase:
				out.discarded = true
				out.failed = false
			default:
				out.failed = true
				out.panicked = r
				out.msgs = append(out.msgs, fmt.Sprintf("property panicked: %v", r))
			}
		}
	}()
	prop(t)
	return
}

// baseSeed derives the deterministic per-property base seed from the test
// name.
func baseSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// runRegex builds the anchored -run expression for a (possibly nested) test
// name.
func runRegex(name string) string {
	return "^" + strings.ReplaceAll(name, "/", "$/^") + "$"
}

// Check runs the property over `cases` generated cases (overridable with
// -proptest.cases). On falsification it shrinks the counterexample and
// fails the surrounding test with the shrunk case's log, the falsification
// messages and a one-line repro command. With -proptest.seed=N it replays
// exactly the case with seed N.
func Check(t *testing.T, cases int, prop func(*T)) {
	t.Helper()
	if *flagCases > 0 {
		cases = *flagCases
	}
	if cases < 1 {
		cases = 1
	}

	if *flagSeed != 0 {
		seed := uint64(*flagSeed)
		src := newRecordingSource(seed)
		out := runCase(seed, src, prop)
		if out.discarded {
			t.Logf("proptest: case seed=%d discarded by the property", seed)
			return
		}
		if out.failed {
			report(t, seed, src.tape, out, prop, 1)
		}
		return
	}

	base := baseSeed(t.Name())
	discards := 0
	for i := 0; i < cases; i++ {
		seed := mix(base, i)
		src := newRecordingSource(seed)
		out := runCase(seed, src, prop)
		if out.discarded {
			discards++
			if discards > 10*cases {
				t.Fatalf("proptest: %d of %d cases discarded — generator preconditions too strict", discards, discards+i)
			}
			cases++ // a discarded case is replaced, not counted
			continue
		}
		if out.failed {
			report(t, seed, src.tape, out, prop, i+1)
			return
		}
	}
}

// report shrinks the failing tape and fails the test with the minimal
// counterexample.
func report(t *testing.T, seed uint64, tape []uint64, first outcome, prop func(*T), caseNo int) {
	t.Helper()
	fails := func(candidate []uint64) bool {
		out := runCase(seed, newReplaySource(candidate), prop)
		return out.failed && !out.discarded
	}
	shrunk, attempts := shrink(tape, fails)

	// Replay the minimal tape once more to collect its logs and messages.
	final := runCase(seed, newReplaySource(shrunk), prop)
	if !final.failed {
		final = first // cannot happen (shrink keeps only failing tapes), but stay safe
	}

	t.Fatal(failureMessage(t.Name(), seed, caseNo, len(tape), len(shrunk), attempts, final))
}

// failureMessage renders the falsification report: the shrunk case's log
// and messages plus the single-line repro command.
func failureMessage(testName string, seed uint64, caseNo, drawsBefore, drawsAfter, attempts int, final outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "proptest: falsified (case %d, %d→%d draws after %d shrink runs)\n",
		caseNo, drawsBefore, drawsAfter, attempts)
	for _, l := range final.logs {
		fmt.Fprintf(&b, "  case: %s\n", l)
	}
	for _, m := range final.msgs {
		fmt.Fprintf(&b, "  fail: %s\n", m)
	}
	fmt.Fprintf(&b, "  repro: go test -run '%s' -proptest.seed=%d", runRegex(testName), int64(seed))
	return b.String()
}
