package proptest

// The draw source. Every random decision a property makes is one 64-bit
// draw, and the sequence of draws — the tape — fully determines the
// generated case. Recording mode produces fresh draws from a splitmix64
// stream and appends them to the tape; replay mode feeds a (possibly
// mutated) tape back to the very same generator code. That split is what
// makes shrinking possible without structure-aware shrinkers: minimizing
// the integers on the tape minimizes whatever the generators build from
// them, because every primitive draw maps 0 to its smallest/simplest value.
type source struct {
	state  uint64
	tape   []uint64
	pos    int
	replay bool
}

// newRecordingSource draws fresh values from the case seed.
func newRecordingSource(seed uint64) *source {
	return &source{state: seed}
}

// newReplaySource replays a recorded (or shrunk) tape. Draws past the end
// of the tape return zero: a shrink that truncates the tape collapses the
// remaining structure to the generators' minimal values.
func newReplaySource(tape []uint64) *source {
	return &source{tape: tape, replay: true}
}

// draw produces the next 64-bit value.
func (s *source) draw() uint64 {
	if s.replay {
		if s.pos < len(s.tape) {
			v := s.tape[s.pos]
			s.pos++
			return v
		}
		s.pos++
		return 0
	}
	v := splitmix64(&s.state)
	s.tape = append(s.tape, v)
	return v
}

// splitmix64 is the standard 64-bit mixer (Vigna): a tiny, fast,
// well-distributed PRNG whose whole state is one uint64, so a case seed is
// one printable integer.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix folds a case index into a base seed, decorrelating neighbouring
// cases. Never returns zero, which the -proptest.seed flag reserves for
// "no replay".
func mix(base uint64, i int) uint64 {
	s := base + uint64(i)*0x9e3779b97f4a7c15
	v := splitmix64(&s)
	if v == 0 {
		return 1
	}
	return v
}
