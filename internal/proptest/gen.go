package proptest

import (
	"fmt"
	"math"

	"repro/internal/dut"
	"repro/internal/fuzzy"
	"repro/internal/search"
	"repro/internal/testgen"
)

// Domain generators: random-but-valid instances of the characterization
// system's core value types. They live here (rather than in each suite) so
// every invariant file across internal/{search,core,fuzzy,neural,obs}
// generates from the same distributions. All of them draw through T, so
// they shrink like any other property input.

// GenSearchOptions draws a valid trip-point search configuration: a range
// spanning a few decades of width, a resolution that keeps the full-range
// budget in a realistic ATE band (≈6–24 probes), and either orientation.
func GenSearchOptions(t *T) search.Options {
	lo := t.Float64Range(-1000, 1000)
	width := math.Pow(10, t.Float64Range(-1, 3)) // 0.1 .. 1000
	// Resolution between ~2^-20 and ~2^-4 of the range keeps budgets sane.
	res := width / math.Pow(2, t.Float64Range(4, 20))
	orient := search.PassLow
	if t.Bool() {
		orient = search.PassHigh
	}
	return search.Options{Lo: lo, Hi: lo + width, Resolution: res, Orientation: orient}
}

// SUTPCase is one generated differential-oracle case: a search range, the
// device's true trip boundary strictly inside it, and a reference trip
// point RTP whose drift from the boundary stays inside the paper's
// "well-designed device" band (§4: trip points cluster around RTP).
type SUTPCase struct {
	Opt  search.Options
	Trip float64 // true pass/fail boundary
	RTP  float64 // reference trip point a previous search established
}

// GenSUTPCase draws a differential-oracle case. The boundary sits in the
// interior 10–90% of the range; the reference drifts at most maxDriftFrac
// of the range away from it (clamped into the range).
func GenSUTPCase(t *T, maxDriftFrac float64) SUTPCase {
	opt := GenSearchOptions(t)
	r := opt.Range()
	trip := opt.Lo + t.Float64Range(0.1, 0.9)*r
	drift := t.Float64Range(-maxDriftFrac, maxDriftFrac) * r
	rtp := trip + drift
	if rtp < opt.Lo {
		rtp = opt.Lo
	}
	if rtp > opt.Hi {
		rtp = opt.Hi
	}
	return SUTPCase{Opt: opt, Trip: trip, RTP: rtp}
}

// Measurer returns the deterministic noise-free pass/fail surface of the
// case: pass on the passing side of Trip for the case's orientation.
func (c SUTPCase) Measurer() search.Measurer {
	return search.MeasurerFunc(func(v float64) (bool, error) {
		if c.Opt.Orientation == search.PassHigh {
			return v >= c.Trip, nil
		}
		return v <= c.Trip, nil
	})
}

// GenConditions draws operating conditions inside the given limits.
func GenConditions(t *T, lim testgen.ConditionLimits) testgen.Conditions {
	return testgen.Conditions{
		VddV:     t.Float64Range(lim.VddMin, lim.VddMax),
		TempC:    t.Float64Range(lim.TempMin, lim.TempMax),
		ClockMHz: t.Float64Range(lim.ClockMin, lim.ClockMax),
	}
}

// GenSequence draws a vector sequence of n ∈ [minLen, maxLen] read/write/nop
// cycles over the address space.
func GenSequence(t *T, addrSpace uint32, minLen, maxLen int) testgen.Sequence {
	if minLen < 1 {
		minLen = 1
	}
	n := t.IntRange(minLen, maxLen)
	seq := make(testgen.Sequence, n)
	for i := range seq {
		var v testgen.Vector
		switch t.Intn(8) {
		case 0: // occasional idle cycle
			v.Op = testgen.OpNop
		case 1, 2, 3: // reads
			v.Op = testgen.OpRead
			v.Addr = t.Uint32() % addrSpace
		default: // writes dominate, like the random generator's patterns
			v.Op = testgen.OpWrite
			v.Addr = t.Uint32() % addrSpace
			v.Data = t.Uint32()
		}
		seq[i] = v
	}
	return seq
}

// GenTest draws a complete named test: a generated sequence plus generated
// conditions.
func GenTest(t *T, addrSpace uint32, lim testgen.ConditionLimits, minLen, maxLen int) testgen.Test {
	seq := GenSequence(t, addrSpace, minLen, maxLen)
	return testgen.Test{
		Name: fmt.Sprintf("prop-%016x", t.Uint64()),
		Seq:  seq,
		Cond: GenConditions(t, lim),
	}
}

// GenFuzzyVariable draws a uniformly partitioned linguistic variable: a
// random universe and 2–9 terms (the AutoPartition construction used by the
// trip-point coder).
func GenFuzzyVariable(t *T) *fuzzy.Variable {
	n := t.IntRange(2, 9)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%d", i)
	}
	min := t.Float64Range(-100, 100)
	width := math.Pow(10, t.Float64Range(-1, 3))
	v, err := fuzzy.AutoPartition(fmt.Sprintf("v%d", n), min, min+width, labels)
	if err != nil {
		// AutoPartition only fails on empty universes, which the draw above
		// cannot produce.
		panic(fmt.Sprintf("proptest: AutoPartition rejected generated universe: %v", err))
	}
	return v
}

// GenTopology draws an MLP topology: the fixed input/output widths with 0–3
// hidden layers of 1–16 units.
func GenTopology(t *T, inputs, outputs int) []int {
	hidden := t.Intn(4)
	sizes := make([]int, 0, hidden+2)
	sizes = append(sizes, inputs)
	for i := 0; i < hidden; i++ {
		sizes = append(sizes, t.IntRange(1, 16))
	}
	return append(sizes, outputs)
}

// GenDie draws a process-corner die, occasionally with an extra T_DQ offset
// or a weak cell, the way production lots vary.
func GenDie(t *T, id int, addrSpace uint32) *dut.Die {
	corner := Pick(t, []dut.Corner{dut.CornerFast, dut.CornerTypical, dut.CornerSlow})
	var opts []dut.DieOption
	if t.Intn(4) == 0 {
		opts = append(opts, dut.WithExtraTDQOffsetNS(t.Float64Range(0, 2)))
	}
	if t.Intn(4) == 0 {
		opts = append(opts, dut.WithWeakCell(t.Uint32()%addrSpace, t.Float64Range(1.4, 1.7)))
	}
	return dut.NewDie(id, corner, opts...)
}
