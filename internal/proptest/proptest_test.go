package proptest

import (
	"strings"
	"testing"

	"repro/internal/testgen"
)

func TestDrawsAreDeterministicForOneSeed(t *testing.T) {
	drawOnce := func() []uint64 {
		var got []uint64
		out := runCase(42, newRecordingSource(42), func(pt *T) {
			for i := 0; i < 16; i++ {
				got = append(got, pt.Uint64())
			}
		})
		if out.failed {
			t.Fatal("probe property failed")
		}
		return got
	}
	a, b := drawOnce(), drawOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical seeds: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCaseSeedsDiffer(t *testing.T) {
	base := baseSeed("TestCaseSeedsDiffer")
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		s := mix(base, i)
		if s == 0 {
			t.Fatal("mix produced the reserved zero seed")
		}
		if seen[s] {
			t.Fatalf("case %d repeats an earlier seed %d", i, s)
		}
		seen[s] = true
	}
}

func TestZeroTapeYieldsMinimalValues(t *testing.T) {
	out := runCase(1, newReplaySource(nil), func(pt *T) {
		if v := pt.Intn(100); v != 0 {
			pt.Errorf("Intn = %d", v)
		}
		if v := pt.IntRange(-7, 9); v != -7 {
			pt.Errorf("IntRange = %d", v)
		}
		if v := pt.Float64Range(2.5, 9); v != 2.5 {
			pt.Errorf("Float64Range = %g", v)
		}
		if pt.Bool() {
			pt.Errorf("Bool = true")
		}
		if v := pt.FiniteFloat(); v != 0 {
			pt.Errorf("FiniteFloat = %g", v)
		}
	})
	if out.failed {
		t.Fatalf("zero tape is not minimal: %v", out.msgs)
	}
}

// TestShrinkFindsBoundary pins the shrinker's contract: a property failing
// for any drawn value ≥ 1000 must shrink to exactly 1000 (the minimal
// failing integer), in one draw.
func TestShrinkFindsBoundary(t *testing.T) {
	prop := func(pt *T) {
		// A little decoy structure around the essential draw.
		n := pt.IntRange(1, 8)
		for i := 0; i < n; i++ {
			v := pt.Intn(1 << 20)
			if v >= 1000 {
				pt.Fatalf("v = %d", v)
			}
		}
	}
	// Find a failing seed first.
	var tape []uint64
	var seed uint64
	for i := 0; ; i++ {
		seed = mix(99, i)
		src := newRecordingSource(seed)
		if out := runCase(seed, src, prop); out.failed {
			tape = src.tape
			break
		}
		if i > 200 {
			t.Fatal("no failing case found")
		}
	}
	shrunk, runs := shrink(tape, func(c []uint64) bool {
		out := runCase(seed, newReplaySource(c), prop)
		return out.failed && !out.discarded
	})
	if runs > maxShrinkRuns {
		t.Fatalf("shrinker overspent its budget: %d runs", runs)
	}
	final := runCase(seed, newReplaySource(shrunk), prop)
	if !final.failed {
		t.Fatal("shrunk tape no longer fails")
	}
	want := "v = 1000"
	if len(final.msgs) == 0 || final.msgs[0] != want {
		t.Fatalf("shrunk counterexample %v, want %q", final.msgs, want)
	}
	// Minimal structure: n shrinks to 1, so two draws survive.
	if len(shrunk) > 2 {
		t.Errorf("shrunk tape has %d draws, want ≤ 2", len(shrunk))
	}
}

func TestPanicCountsAsFalsification(t *testing.T) {
	out := runCase(7, newRecordingSource(7), func(pt *T) {
		panic("boom")
	})
	if !out.failed || out.panicked == nil {
		t.Fatalf("panic not recorded as failure: %+v", out)
	}
	if len(out.msgs) == 0 || !strings.Contains(out.msgs[0], "boom") {
		t.Fatalf("panic message lost: %v", out.msgs)
	}
}

func TestDiscardIsNeitherPassNorFail(t *testing.T) {
	out := runCase(7, newRecordingSource(7), func(pt *T) {
		pt.Discard()
	})
	if out.failed || !out.discarded {
		t.Fatalf("discard misreported: %+v", out)
	}
}

func TestFailureMessageCarriesReproLine(t *testing.T) {
	msg := failureMessage("TestX/sub", 12345, 3, 10, 2, 40, outcome{
		logs: []string{"opt = [0, 1]"},
		msgs: []string{"trip point diverged"},
	})
	for _, want := range []string{
		"go test -run '^TestX$/^sub$' -proptest.seed=12345",
		"case: opt = [0, 1]",
		"fail: trip point diverged",
		"10→2 draws",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message missing %q:\n%s", want, msg)
		}
	}
}

func TestCheckPassesAndRepaysDiscards(t *testing.T) {
	ran := 0
	Check(t, 50, func(pt *T) {
		if pt.Intn(4) == 0 {
			pt.Discard()
		}
		ran++
	})
	if ran < 50 {
		t.Fatalf("only %d undiscarded cases ran, want ≥ 50", ran)
	}
}

func TestSeedFlagReplaysSingleCase(t *testing.T) {
	old := *flagSeed
	defer func() { *flagSeed = old }()
	*flagSeed = 4242
	var seeds []uint64
	Check(t, 100, func(pt *T) { seeds = append(seeds, pt.Seed()) })
	if len(seeds) != 1 || seeds[0] != 4242 {
		t.Fatalf("replay ran cases %v, want exactly [4242]", seeds)
	}
}

func TestGeneratedDomainsAreValid(t *testing.T) {
	Check(t, 300, func(pt *T) {
		opt := GenSearchOptions(pt)
		if err := opt.Validate(); err != nil {
			pt.Fatalf("GenSearchOptions invalid: %v", err)
		}
		if opt.FullRangeBudget() < 2 {
			pt.Errorf("degenerate full-range budget %d for %+v", opt.FullRangeBudget(), opt)
		}
		c := GenSUTPCase(pt, 0.2)
		if c.Trip <= c.Opt.Lo || c.Trip >= c.Opt.Hi {
			pt.Errorf("trip %g outside range [%g, %g]", c.Trip, c.Opt.Lo, c.Opt.Hi)
		}
		if c.RTP < c.Opt.Lo || c.RTP > c.Opt.Hi {
			pt.Errorf("rtp %g outside range", c.RTP)
		}
		v := GenFuzzyVariable(pt)
		if err := v.Validate(); err != nil {
			pt.Fatalf("GenFuzzyVariable invalid: %v", err)
		}
		sizes := GenTopology(pt, 9, 5)
		if sizes[0] != 9 || sizes[len(sizes)-1] != 5 || len(sizes) < 2 {
			pt.Errorf("GenTopology bad sizes %v", sizes)
		}
		tt := GenTest(pt, 4096, defaultLimitsForTest(), 1, 40)
		if err := tt.Seq.Validate(4096); err != nil {
			pt.Fatalf("GenTest sequence invalid: %v", err)
		}
		if !defaultLimitsForTest().Contains(tt.Cond) {
			pt.Errorf("conditions %+v outside limits", tt.Cond)
		}
	})
}

func defaultLimitsForTest() testgen.ConditionLimits {
	return testgen.DefaultConditionLimits()
}
