package proptest

// The integer shrinker. A counterexample is a tape of 64-bit draws; smaller
// tapes with smaller integers decode — through the zero-is-minimal draw
// convention — to structurally smaller generated cases. Shrinking therefore
// needs no knowledge of what the property generated: it deletes draw
// chunks, then minimizes each surviving draw toward zero, re-running the
// property on every candidate and keeping it only when it still fails.
//
// Everything is deterministic: candidate order is fixed, the property
// re-runs on replayed tapes, and the attempt budget bounds worst-case work.

// maxShrinkRuns bounds the total number of property executions one shrink
// may spend.
const maxShrinkRuns = 1200

// shrink minimizes a failing tape, returning the smallest still-failing
// tape found and the number of property runs spent.
func shrink(tape []uint64, fails func([]uint64) bool) ([]uint64, int) {
	cur := append([]uint64(nil), tape...)
	runs := 0
	try := func(candidate []uint64) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		if fails(candidate) {
			cur = append(cur[:0:0], candidate...)
			return true
		}
		return false
	}

	for improved := true; improved && runs < maxShrinkRuns; {
		improved = false

		// Pass 1: delete chunks, largest first. Removing draws collapses
		// whole generated sub-structures (later draws shift left and the
		// tail reads as zeros).
		for size := len(cur) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(cur); {
				candidate := make([]uint64, 0, len(cur)-size)
				candidate = append(candidate, cur[:start]...)
				candidate = append(candidate, cur[start+size:]...)
				if try(candidate) {
					improved = true
					// cur shrank; stay at the same start.
					continue
				}
				start += size
			}
		}

		// Pass 2: minimize each surviving draw toward zero — zero first,
		// then binary-search the smallest failing value.
		for i := 0; i < len(cur); i++ {
			v := cur[i]
			if v == 0 {
				continue
			}
			set := func(x uint64) []uint64 {
				candidate := append([]uint64(nil), cur...)
				candidate[i] = x
				return candidate
			}
			if try(set(0)) {
				improved = true
				continue
			}
			// Smallest failing value in (0, v]: invariant — hi fails, lo
			// does not.
			lo, hi := uint64(0), v
			for hi-lo > 1 && runs < maxShrinkRuns {
				mid := lo + (hi-lo)/2
				if try(set(mid)) {
					hi = mid
					improved = improved || mid != v
				} else {
					lo = mid
				}
			}
		}
	}
	return cur, runs
}
