package proptest

import (
	"fmt"
	"math"
)

// Primitive draws. Every draw consumes exactly one tape word per random
// decision and maps the zero word to the smallest / simplest value of its
// range, so integer-shrinking the tape shrinks the generated structure.

// Uint64 draws a raw 64-bit word.
func (t *T) Uint64() uint64 { return t.src.draw() }

// Intn draws an integer in [0, n). n must be positive.
func (t *T) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("proptest: Intn(%d): n must be positive", n))
	}
	return int(t.src.draw() % uint64(n))
}

// IntRange draws an integer in [lo, hi] inclusive.
func (t *T) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("proptest: IntRange(%d, %d): empty range", lo, hi))
	}
	return lo + t.Intn(hi-lo+1)
}

// Int64Range draws an int64 in [lo, hi] inclusive.
func (t *T) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		panic(fmt.Sprintf("proptest: Int64Range(%d, %d): empty range", lo, hi))
	}
	span := uint64(hi-lo) + 1
	if span == 0 { // full 64-bit range
		return int64(t.src.draw())
	}
	return lo + int64(t.src.draw()%span)
}

// Bool draws a coin flip; the zero word is false.
func (t *T) Bool() bool { return t.src.draw()&1 == 1 }

// Float01 draws a float in [0, 1) with 53 bits of precision; the zero word
// is exactly 0.
func (t *T) Float01() float64 {
	return float64(t.src.draw()>>11) / (1 << 53)
}

// Float64Range draws a float in [lo, hi); the zero word is exactly lo.
func (t *T) Float64Range(lo, hi float64) float64 {
	if !(lo < hi) {
		panic(fmt.Sprintf("proptest: Float64Range(%g, %g): empty range", lo, hi))
	}
	return lo + t.Float01()*(hi-lo)
}

// Uint32 draws a 32-bit word.
func (t *T) Uint32() uint32 { return uint32(t.src.draw()) }

// Byte draws one byte.
func (t *T) Byte() byte { return byte(t.src.draw()) }

// Bytes draws a slice of up to maxLen bytes (possibly empty).
func (t *T) Bytes(maxLen int) []byte {
	n := t.Intn(maxLen + 1)
	out := make([]byte, n)
	for i := range out {
		out[i] = t.Byte()
	}
	return out
}

// Pick draws one element of the given non-empty slice.
func Pick[E any](t *T, choices []E) E {
	return choices[t.Intn(len(choices))]
}

// FiniteFloat draws an arbitrary finite float64 spanning many orders of
// magnitude (sign, exponent and mantissa drawn separately) — the adversarial
// numeric input for serialization round-trip properties. The zero tape
// collapses it to 0.
func (t *T) FiniteFloat() float64 {
	w := t.src.draw()
	if w == 0 {
		return 0
	}
	f := math.Float64frombits(w)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// Re-bias the exponent into the finite range, keeping the mantissa.
		f = math.Float64frombits(w&^(uint64(0x7ff)<<52) | (uint64(w>>52)%0x7ff)<<52)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0
		}
	}
	return f
}

// String draws a string of up to maxLen runes from the given alphabet.
func (t *T) String(alphabet string, maxLen int) string {
	runes := []rune(alphabet)
	n := t.Intn(maxLen + 1)
	out := make([]rune, n)
	for i := range out {
		out[i] = runes[t.Intn(len(runes))]
	}
	return string(out)
}
