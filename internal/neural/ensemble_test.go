package neural

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func trainedEnsemble(t *testing.T, members int) (*Ensemble, Dataset) {
	t.Helper()
	data := syntheticRegression(31, 200)
	cfg := DefaultTrainConfig(31)
	cfg.Epochs = 60
	e, reports, err := NewEnsemble(31, members, []int{3, 8, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != members {
		t.Fatalf("reports = %d", len(reports))
	}
	return e, data
}

func TestEnsembleSizeValidation(t *testing.T) {
	if _, _, err := NewEnsemble(1, 0, []int{2, 1}, xorData(), DefaultTrainConfig(1)); err == nil {
		t.Error("zero-member ensemble accepted")
	}
}

func TestEnsembleVote(t *testing.T) {
	e, data := trainedEnsemble(t, 3)
	if e.Size() != 3 {
		t.Fatalf("size = %d", e.Size())
	}
	avg, conf, err := e.Vote(data[0].Input)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != 1 {
		t.Fatalf("vote width %d", len(avg))
	}
	if conf <= 0 || conf > 1 {
		t.Errorf("confidence %g outside (0, 1]", conf)
	}
	// The average must lie within the span of member predictions.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range e.Members() {
		p, err := m.Predict(data[0].Input)
		if err != nil {
			t.Fatal(err)
		}
		lo = math.Min(lo, p[0])
		hi = math.Max(hi, p[0])
	}
	if avg[0] < lo-1e-12 || avg[0] > hi+1e-12 {
		t.Errorf("vote %g outside member span [%g, %g]", avg[0], lo, hi)
	}
}

func TestEnsembleConfidenceReflectsAgreement(t *testing.T) {
	// A single-member ensemble is always unanimous.
	e, data := trainedEnsemble(t, 1)
	_, conf, err := e.Vote(data[0].Input)
	if err != nil {
		t.Fatal(err)
	}
	if conf != 1 {
		t.Errorf("single-member confidence %g, want 1", conf)
	}
}

func TestEnsembleEvaluate(t *testing.T) {
	e, data := trainedEnsemble(t, 3)
	errv, err := e.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if errv <= 0 || errv > 0.1 {
		t.Errorf("ensemble error %g implausible for the smooth task", errv)
	}
	zero, err := e.Evaluate(nil)
	if err != nil || zero != 0 {
		t.Error("empty evaluate")
	}
}

func TestFromNetworksShapeCheck(t *testing.T) {
	a, _ := New(1, 2, 3, 1)
	b, _ := New(2, 2, 3, 1)
	if _, err := FromNetworks([]*Network{a, b}); err != nil {
		t.Errorf("matching shapes rejected: %v", err)
	}
	c, _ := New(3, 3, 3, 1)
	if _, err := FromNetworks([]*Network{a, c}); err == nil {
		t.Error("mismatched input widths accepted")
	}
	if _, err := FromNetworks(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}

func TestWeightFileRoundTrip(t *testing.T) {
	e, data := trainedEnsemble(t, 2)
	var buf bytes.Buffer
	meta := map[string]string{"parameter": "T_DQ"}
	if err := e.Save(&buf, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta["parameter"] != "T_DQ" {
		t.Errorf("metadata lost: %v", gotMeta)
	}
	if loaded.Size() != 2 {
		t.Fatalf("loaded size %d", loaded.Size())
	}
	// Loaded ensemble must predict identically.
	for _, s := range data[:10] {
		a, err := e.Predict(s.Input)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(s.Input)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prediction changed after round trip: %g vs %g", a[i], b[i])
			}
		}
	}
}

func TestWeightFileSaveLoadFile(t *testing.T) {
	e, _ := trainedEnsemble(t, 2)
	path := filepath.Join(t.TempDir(), "weights.json")
	if err := e.SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 2 {
		t.Error("file round trip lost members")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Load(bytes.NewBufferString(`{"format":"other","version":1}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, _, err := Load(bytes.NewBufferString(`{"format":"ci-characterization-nn-weights","version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, _, err := Load(bytes.NewBufferString(`{"format":"ci-characterization-nn-weights","version":1,"members":[]}`)); err == nil {
		t.Error("empty members accepted")
	}
}

func TestLoadRejectsCorruptShapes(t *testing.T) {
	e, _ := trainedEnsemble(t, 1)
	var buf bytes.Buffer
	if err := e.Save(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop one weight value via crude byte surgery on a valid
	// file is brittle; instead build a structurally wrong file.
	bad := `{"format":"ci-characterization-nn-weights","version":1,"members":[{"sizes":[2,1],"layers":[{"in":2,"out":1,"activation":"sigmoid","weights":[0.1],"biases":[0]}]}]}`
	if _, _, err := Load(bytes.NewBufferString(bad)); err == nil {
		t.Error("weight-count mismatch accepted")
	}
	badAct := `{"format":"ci-characterization-nn-weights","version":1,"members":[{"sizes":[1,1],"layers":[{"in":1,"out":1,"activation":"relu","weights":[0.1],"biases":[0]}]}]}`
	if _, _, err := Load(bytes.NewBufferString(badAct)); err == nil {
		t.Error("unknown activation accepted")
	}
}

func TestEnsembleBetterOrEqualToWorstMember(t *testing.T) {
	// The voting machine's error must not exceed the worst member's error
	// by much — averaging should help, and must never catastrophically
	// hurt. (On smooth tasks it typically beats the mean member.)
	e, data := trainedEnsemble(t, 5)
	ensErr, err := e.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, m := range e.Members() {
		if ev := m.Evaluate(data); ev > worst {
			worst = ev
		}
	}
	if ensErr > worst+1e-9 {
		t.Errorf("ensemble error %g exceeds worst member %g", ensErr, worst)
	}
}
