package neural

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// Golden kernel-equivalence suite: the scratch-arena forward/backprop
// kernels and the batch entry points must produce bit-identical numbers to
// the pre-optimization reference formulation, which allocated fresh buffers
// on every call. The reference implementations below are verbatim copies of
// that original code path.

// refForward is the pre-optimization Network.forward: one fresh slice per
// layer per call, returning every layer activation.
func refForward(n *Network, input []float64) [][]float64 {
	acts := make([][]float64, len(n.layers)+1)
	acts[0] = input
	cur := input
	for li, l := range n.layers {
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				sum += row[i] * x
			}
			next[o] = l.act.apply(sum)
		}
		acts[li+1] = next
		cur = next
	}
	return acts
}

// refEvaluate is the pre-optimization Network.Evaluate over refForward.
func refEvaluate(n *Network, d Dataset) float64 {
	if len(d) == 0 {
		return 0
	}
	var s float64
	for _, smp := range d {
		acts := refForward(n, smp.Input)
		s += MSE(acts[len(acts)-1], smp.Target)
	}
	return s / float64(len(d))
}

// refTrain is the pre-optimization Network.Train: per-sample delta
// allocations, a full network Clone per improved epoch, interleaved
// backprop/weight-update inner loop. Config defaulting matches Train.
func refTrain(n *Network, train, val Dataset, cfg TrainConfig) (TrainReport, error) {
	if err := train.Validate(n.Inputs(), n.Outputs()); err != nil {
		return TrainReport{}, err
	}
	if len(val) > 0 {
		if err := val.Validate(n.Inputs(), n.Outputs()); err != nil {
			return TrainReport{}, err
		}
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		cfg.Momentum = 0.9
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 30
	}
	if cfg.LearnTarget <= 0 {
		cfg.LearnTarget = 1e-3
	}
	if cfg.GeneralizeTarget <= 0 {
		cfg.GeneralizeTarget = 5e-3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	vw := make([][]float64, len(n.layers))
	vb := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		vw[i] = make([]float64, len(l.w))
		vb[i] = make([]float64, len(l.b))
	}

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	var rep TrainReport
	best := n.Clone()
	rep.BestValErr = math.Inf(1)
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.BatchShuffle {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var trainErr float64
		for _, si := range order {
			s := train[si]
			acts := refForward(n, s.Input)
			out := acts[len(acts)-1]
			trainErr += MSE(out, s.Target)

			delta := make([]float64, len(out))
			lastLayer := n.layers[len(n.layers)-1]
			for o := range out {
				delta[o] = (out[o] - s.Target[o]) * lastLayer.act.derivFromOutput(out[o])
			}
			for li := len(n.layers) - 1; li >= 0; li-- {
				l := &n.layers[li]
				in := acts[li]
				var prevDelta []float64
				if li > 0 {
					prevDelta = make([]float64, l.in)
				}
				for o := 0; o < l.out; o++ {
					row := l.w[o*l.in : (o+1)*l.in]
					d := delta[o]
					for i := range row {
						if li > 0 {
							prevDelta[i] += row[i] * d
						}
						g := d * in[i]
						v := cfg.Momentum*vw[li][o*l.in+i] - cfg.LearningRate*g
						vw[li][o*l.in+i] = v
						row[i] += v
					}
					v := cfg.Momentum*vb[li][o] - cfg.LearningRate*d
					vb[li][o] = v
					l.b[o] += v
				}
				if li > 0 {
					below := acts[li]
					act := n.layers[li-1].act
					for i := range prevDelta {
						prevDelta[i] *= act.derivFromOutput(below[i])
					}
					delta = prevDelta
				}
			}
		}
		trainErr /= float64(len(train))
		rep.ErrCurve = append(rep.ErrCurve, trainErr)
		rep.TrainErr = trainErr
		rep.Epochs = epoch + 1

		valErr := trainErr
		if len(val) > 0 {
			valErr = refEvaluate(n, val)
		}
		rep.ValErrCurve = append(rep.ValErrCurve, valErr)
		rep.ValErr = valErr

		if valErr < rep.BestValErr {
			rep.BestValErr = valErr
			best = n.Clone()
			sinceBest = 0
		} else {
			sinceBest++
		}

		rep.Learned = trainErr <= cfg.LearnTarget
		rep.Generalized = valErr <= cfg.GeneralizeTarget
		if rep.Learned && rep.Generalized {
			break
		}
		if sinceBest >= cfg.Patience {
			rep.StoppedEarly = true
			break
		}
	}

	n.layers = best.layers
	if len(val) > 0 {
		rep.ValErr = refEvaluate(n, val)
	}
	rep.TrainErr = refEvaluate(n, train)
	rep.Learned = rep.TrainErr <= cfg.LearnTarget
	rep.Generalized = rep.ValErr <= cfg.GeneralizeTarget
	return rep, nil
}

// refVote is the pre-optimization Ensemble.Vote over per-call predictions.
func refVote(e *Ensemble, input []float64) ([]float64, float64, error) {
	preds := make([][]float64, len(e.members))
	for i, m := range e.members {
		acts := refForward(m, input)
		preds[i] = append([]float64(nil), acts[len(acts)-1]...)
	}
	avg := make([]float64, e.Outputs())
	for _, p := range preds {
		for j, v := range p {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(preds))
	}
	var spread float64
	for _, p := range preds {
		spread += math.Sqrt(MSE(p, avg))
	}
	spread /= float64(len(preds))
	return avg, 1 / (1 + spread*10), nil
}

var goldenTopologies = [][]int{
	{3, 1},
	{3, 8, 1},
	{5, 12, 7, 2},
	{8, 20, 10, 3},
}

func goldenInputs(seed int64, width, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, width)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestForwardScratchBitIdenticalToReference(t *testing.T) {
	for _, sizes := range goldenTopologies {
		n, err := New(11, sizes...)
		if err != nil {
			t.Fatal(err)
		}
		sc := n.NewScratch()
		for _, in := range goldenInputs(12, sizes[0], 25) {
			want := refForward(n, in)
			got := n.forwardInto(sc, in)
			for j, w := range want[len(want)-1] {
				if got[j] != w {
					t.Fatalf("topology %v: output[%d] = %x, reference %x", sizes, j, got[j], w)
				}
			}
			// Every intermediate activation feeds backprop — pin them too.
			for li := range want {
				for j, w := range want[li] {
					if sc.acts[li][j] != w {
						t.Fatalf("topology %v: acts[%d][%d] = %x, reference %x", sizes, li, j, sc.acts[li][j], w)
					}
				}
			}
		}
	}
}

func TestTrainBitIdenticalToReference(t *testing.T) {
	data := syntheticRegression(21, 140)
	train, val := data.Split(21, 0.8)
	for _, cfg := range []TrainConfig{
		DefaultTrainConfig(21),
		{LearningRate: 0.1, Momentum: 0.5, Epochs: 35, BatchShuffle: false, Seed: 9, Patience: 5},
		{Epochs: 60, BatchShuffle: true, Seed: 3, LearnTarget: 1e-4, GeneralizeTarget: 1e-3},
	} {
		cfg.Epochs = min(cfg.Epochs, 60)
		ref, err := New(33, 3, 10, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		opt := ref.Clone()

		refRep, err := refTrain(ref, train, val, cfg)
		if err != nil {
			t.Fatal(err)
		}
		optRep, err := opt.Train(train, val, cfg)
		if err != nil {
			t.Fatal(err)
		}

		refW, optW := ref.flatten(), opt.flatten()
		for i := range refW {
			if refW[i] != optW[i] {
				t.Fatalf("cfg %+v: weight %d = %x, reference %x", cfg, i, optW[i], refW[i])
			}
		}
		if refRep.Epochs != optRep.Epochs || refRep.TrainErr != optRep.TrainErr ||
			refRep.ValErr != optRep.ValErr || refRep.BestValErr != optRep.BestValErr ||
			refRep.Learned != optRep.Learned || refRep.Generalized != optRep.Generalized ||
			refRep.StoppedEarly != optRep.StoppedEarly {
			t.Fatalf("cfg %+v: report %+v, reference %+v", cfg, optRep, refRep)
		}
		if len(refRep.ErrCurve) != len(optRep.ErrCurve) {
			t.Fatalf("cfg %+v: curve length %d, reference %d", cfg, len(optRep.ErrCurve), len(refRep.ErrCurve))
		}
		for i := range refRep.ErrCurve {
			if refRep.ErrCurve[i] != optRep.ErrCurve[i] || refRep.ValErrCurve[i] != optRep.ValErrCurve[i] {
				t.Fatalf("cfg %+v: curves diverge at epoch %d", cfg, i)
			}
		}
	}
}

func TestTrainGAEvaluatesBitIdenticalToReference(t *testing.T) {
	// The GA weight trainer's fitness is EvaluateWith; pin it (and the
	// final restored network) against the reference evaluator.
	data := syntheticRegression(27, 80)
	train, val := data.Split(27, 0.8)
	n, err := New(44, 3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGATrainConfig(44)
	cfg.PopSize = 10
	cfg.Generations = 8
	rep, err := n.TrainGA(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.TrainErr, refEvaluate(n, train); got != want {
		t.Errorf("TrainGA TrainErr %x, reference evaluation %x", got, want)
	}
	if got, want := rep.ValErr, refEvaluate(n, val); got != want {
		t.Errorf("TrainGA ValErr %x, reference evaluation %x", got, want)
	}
}

func TestPredictBatchBitIdenticalToPredict(t *testing.T) {
	n, err := New(55, 5, 12, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := goldenInputs(56, 5, 40)
	batch, err := n.PredictBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		single, err := n.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("batch[%d][%d] = %x, Predict %x", i, j, batch[i][j], single[j])
			}
		}
	}
}

func TestVoteScratchAndBatchBitIdenticalToReference(t *testing.T) {
	data := syntheticRegression(61, 90)
	cfg := DefaultTrainConfig(61)
	cfg.Epochs = 15
	ens, _, err := NewEnsemble(61, 3, []int{3, 8, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := goldenInputs(62, 3, 30)

	s := ens.NewScratch()
	avgs, confs, err := ens.VoteBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		wantAvg, wantConf, err := refVote(ens, in)
		if err != nil {
			t.Fatal(err)
		}
		gotAvg, gotConf, err := ens.VoteInto(s, in)
		if err != nil {
			t.Fatal(err)
		}
		if gotConf != wantConf || confs[i] != wantConf {
			t.Fatalf("input %d: confidence VoteInto %x batch %x, reference %x", i, gotConf, confs[i], wantConf)
		}
		for j := range wantAvg {
			if gotAvg[j] != wantAvg[j] || avgs[i][j] != wantAvg[j] {
				t.Fatalf("input %d: avg[%d] VoteInto %x batch %x, reference %x", i, j, gotAvg[j], avgs[i][j], wantAvg[j])
			}
		}
		// Vote (pooled-scratch convenience API) must agree and must return
		// a caller-owned copy, not a scratch alias.
		pooled, pooledConf, err := ens.Vote(in)
		if err != nil {
			t.Fatal(err)
		}
		if pooledConf != wantConf {
			t.Fatalf("input %d: Vote confidence %x, reference %x", i, pooledConf, wantConf)
		}
		for j := range wantAvg {
			if pooled[j] != wantAvg[j] {
				t.Fatalf("input %d: Vote avg[%d] = %x, reference %x", i, j, pooled[j], wantAvg[j])
			}
		}
		pooled[0] = math.NaN() // must not corrupt any shared buffer
	}
}

func TestScratchReuseAcrossTopologies(t *testing.T) {
	// A scratch built for one topology degrades gracefully (one rebuild)
	// when handed to a differently shaped network instead of corrupting
	// results.
	a, err := New(71, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(72, 5, 12, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc := a.NewScratch()
	inA := goldenInputs(73, 3, 1)[0]
	inB := goldenInputs(74, 5, 1)[0]
	wantA := refForward(a, inA)
	wantB := refForward(b, inB)
	for round := 0; round < 3; round++ {
		gotA := a.forwardInto(sc, inA)
		for j := range gotA {
			if gotA[j] != wantA[len(wantA)-1][j] {
				t.Fatalf("round %d: network A output differs after scratch sharing", round)
			}
		}
		gotB := b.forwardInto(sc, inB)
		for j := range gotB {
			if gotB[j] != wantB[len(wantB)-1][j] {
				t.Fatalf("round %d: network B output differs after scratch sharing", round)
			}
		}
	}
}

func TestInfIsIEEEInfinityAndSerializationUnaffected(t *testing.T) {
	// inf() seeds the best-validation tracker; it must be the IEEE +Inf,
	// not a near-DBL_MAX magic constant that a stray arithmetic step could
	// silently exceed.
	if !math.IsInf(inf(), 1) {
		t.Fatalf("inf() = %g, want +Inf", inf())
	}
	if inf() == 1e308 {
		t.Fatal("inf() still returns the 1e308 magic constant")
	}
	// The sentinel never reaches the weight file: a trained ensemble must
	// round-trip bit-identically through serialization.
	data := syntheticRegression(81, 60)
	cfg := DefaultTrainConfig(81)
	cfg.Epochs = 10
	ens, reports, err := NewEnsemble(81, 2, []int{3, 6, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if math.IsInf(rep.BestValErr, 1) {
			t.Errorf("member %d BestValErr is +Inf after training; would not survive JSON", i)
		}
	}
	var orig, reloaded bytes.Buffer
	if err := ens.Save(&orig, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&reloaded, nil); err != nil {
		t.Fatal(err)
	}
	if orig.String() != reloaded.String() {
		t.Error("weight file does not round-trip bit-identically")
	}
}
