package neural

import (
	"bytes"
	"testing"

	"repro/internal/parallel"
)

func TestEnsembleParallelBitIdenticalToSerial(t *testing.T) {
	data := syntheticRegression(47, 160)
	cfg := DefaultTrainConfig(47)
	cfg.Epochs = 40

	serialize := func(e *Ensemble) string {
		var b bytes.Buffer
		if err := e.Save(&b, nil); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	serial, serialReports, err := NewEnsembleParallel(47, 4, []int{3, 8, 1}, data, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(serial)

	for _, workers := range []int{2, 8} {
		e, reports, err := NewEnsembleParallel(47, 4, []int{3, 8, 1}, data, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(e); got != want {
			t.Errorf("workers=%d trained weights differ from serial", workers)
		}
		if len(reports) != len(serialReports) {
			t.Fatalf("workers=%d reports = %d, want %d", workers, len(reports), len(serialReports))
		}
		for i := range reports {
			if reports[i].TrainErr != serialReports[i].TrainErr ||
				reports[i].ValErr != serialReports[i].ValErr ||
				reports[i].Epochs != serialReports[i].Epochs {
				t.Errorf("workers=%d member %d training report differs: %+v vs %+v",
					workers, i, reports[i], serialReports[i])
			}
		}
	}
}

func TestEnsembleParallelMatchesLegacyNewEnsemble(t *testing.T) {
	// NewEnsemble is the serial special case — the parallel constructor with
	// any worker count must reproduce it exactly.
	data := syntheticRegression(53, 120)
	cfg := DefaultTrainConfig(53)
	cfg.Epochs = 30

	legacy, _, err := NewEnsemble(53, 3, []int{3, 6, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := NewEnsembleParallel(53, 3, []int{3, 6, 1}, data, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := legacy.Save(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := par.Save(&b, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("parallel ensemble weights differ from NewEnsemble")
	}
}

func TestEnsembleOnMatchesParallel(t *testing.T) {
	// Fleet-hosted training is a pure scheduling change: weights and member
	// reports are bit-identical to the batch-pool constructor at every fleet
	// size, including a fleet reused across two trainings.
	data := syntheticRegression(61, 140)
	cfg := DefaultTrainConfig(61)
	cfg.Epochs = 30

	serialize := func(e *Ensemble) string {
		var b bytes.Buffer
		if err := e.Save(&b, nil); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref, refReports, err := NewEnsembleParallel(61, 4, []int{3, 6, 1}, data, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(ref)

	for _, workers := range []int{1, 2, 8} {
		f := parallel.NewFleet(workers)
		for round := 0; round < 2; round++ { // same fleet, two trainings
			e, reports, err := NewEnsembleOn(f, 61, 4, []int{3, 6, 1}, data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := serialize(e); got != want {
				t.Errorf("fleet=%d round %d: trained weights differ from batch pool", workers, round)
			}
			if len(reports) != len(refReports) {
				t.Fatalf("fleet=%d reports = %d, want %d", workers, len(reports), len(refReports))
			}
			for i := range reports {
				if reports[i].TrainErr != refReports[i].TrainErr ||
					reports[i].ValErr != refReports[i].ValErr ||
					reports[i].Epochs != refReports[i].Epochs {
					t.Errorf("fleet=%d member %d report differs: %+v vs %+v",
						workers, i, reports[i], refReports[i])
				}
			}
		}
		f.Close()
	}
}
