package neural

import (
	"bytes"
	"testing"
)

func TestEnsembleParallelBitIdenticalToSerial(t *testing.T) {
	data := syntheticRegression(47, 160)
	cfg := DefaultTrainConfig(47)
	cfg.Epochs = 40

	serialize := func(e *Ensemble) string {
		var b bytes.Buffer
		if err := e.Save(&b, nil); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	serial, serialReports, err := NewEnsembleParallel(47, 4, []int{3, 8, 1}, data, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(serial)

	for _, workers := range []int{2, 8} {
		e, reports, err := NewEnsembleParallel(47, 4, []int{3, 8, 1}, data, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := serialize(e); got != want {
			t.Errorf("workers=%d trained weights differ from serial", workers)
		}
		if len(reports) != len(serialReports) {
			t.Fatalf("workers=%d reports = %d, want %d", workers, len(reports), len(serialReports))
		}
		for i := range reports {
			if reports[i].TrainErr != serialReports[i].TrainErr ||
				reports[i].ValErr != serialReports[i].ValErr ||
				reports[i].Epochs != serialReports[i].Epochs {
				t.Errorf("workers=%d member %d training report differs: %+v vs %+v",
					workers, i, reports[i], serialReports[i])
			}
		}
	}
}

func TestEnsembleParallelMatchesLegacyNewEnsemble(t *testing.T) {
	// NewEnsemble is the serial special case — the parallel constructor with
	// any worker count must reproduce it exactly.
	data := syntheticRegression(53, 120)
	cfg := DefaultTrainConfig(53)
	cfg.Epochs = 30

	legacy, _, err := NewEnsemble(53, 3, []int{3, 6, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := NewEnsembleParallel(53, 3, []int{3, 6, 1}, data, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := legacy.Save(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := par.Save(&b, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("parallel ensemble weights differ from NewEnsemble")
	}
}
