// Package neural implements the feedforward networks of the paper's
// learning scheme (fig. 4): multilayer perceptrons trained with
// backpropagation, an iterative learnability/generalization check in the
// training loop, the multi-network voting machine the paper uses to judge
// classification confidence, and the weight-file serialization that carries
// the learned characterization knowledge into the optimization phase.
//
// The compute kernels are allocation-free in steady state: forward and
// backward passes run over flat row-major weight buffers into a reusable
// Scratch arena sized once per topology, and the batch entry points
// (PredictBatch, EvaluateWith, VoteBatch) amortize one arena across a whole
// dataset. Buffer reuse never changes arithmetic order, so results are
// bit-identical to the naive per-call-allocation formulation.
package neural

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Activation selects a layer nonlinearity.
type Activation uint8

const (
	// ActTanh is the hyperbolic tangent, the conventional hidden-layer
	// activation of 1990s MLP practice (Masters [14]).
	ActTanh Activation = iota
	// ActSigmoid is the logistic function, used on output layers whose
	// targets are membership grades in [0, 1].
	ActSigmoid
	// ActLinear is the identity.
	ActLinear
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	case ActLinear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", uint8(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActTanh:
		return math.Tanh(x)
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the activation output
// y = σ(x), which backprop has at hand.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActTanh:
		return 1 - y*y
	case ActSigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	in, out int
	act     Activation
	// w is row-major [out][in]; b is [out].
	w []float64
	b []float64
}

// Network is a feedforward multilayer perceptron. Construct with New; the
// zero value is not usable. Not safe for concurrent training; Predict and
// the *Into/*Batch entry points with caller-owned Scratch arenas are safe
// for concurrent use only if no training runs concurrently.
type Network struct {
	sizes  []int
	layers []layer

	// scratch pools arenas for the convenience entry points (Predict,
	// Evaluate) that do not take a caller-owned Scratch, keeping them
	// allocation-free in steady state while staying concurrency-safe.
	scratch sync.Pool
}

// New builds an MLP with the given layer sizes (inputs first, outputs
// last), tanh hidden layers and a sigmoid output layer, initialized with
// Xavier/Glorot uniform weights drawn from the seeded source.
func New(seed int64, sizes ...int) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("neural: need at least input and output sizes, got %v", sizes)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("neural: layer %d has non-positive size %d", i, s)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{sizes: append([]int(nil), sizes...)}
	for i := 1; i < len(sizes); i++ {
		act := ActTanh
		if i == len(sizes)-1 {
			act = ActSigmoid
		}
		l := layer{
			in:  sizes[i-1],
			out: sizes[i],
			act: act,
			w:   make([]float64, sizes[i]*sizes[i-1]),
			b:   make([]float64, sizes[i]),
		}
		// Xavier uniform: U(−√(6/(in+out)), +√(6/(in+out))).
		limit := math.Sqrt(6 / float64(l.in+l.out))
		for j := range l.w {
			l.w[j] = (rng.Float64()*2 - 1) * limit
		}
		n.layers = append(n.layers, l)
	}
	return n, nil
}

// Inputs returns the input-layer width.
func (n *Network) Inputs() int { return n.sizes[0] }

// Outputs returns the output-layer width.
func (n *Network) Outputs() int { return n.sizes[len(n.sizes)-1] }

// Sizes returns a copy of the layer sizes.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// Scratch is the reusable per-goroutine workspace of one network topology:
// a flat activation arena for the forward pass and two ping-pong delta
// buffers for backprop, sized once. A Scratch may be reused across any
// number of calls — every buffer is fully overwritten — but must never be
// shared between concurrently running goroutines; give each worker its own
// (see internal/parallel's per-worker resource contract).
type Scratch struct {
	// acts[0] aliases the current input; acts[1:] are carved from buf.
	acts [][]float64
	buf  []float64
	// delta/prev are the backprop ping-pong buffers, sized to the widest
	// layer of the topology.
	delta []float64
	prev  []float64
}

// NewScratch allocates a workspace arena sized for this network's topology.
func (n *Network) NewScratch() *Scratch {
	total, widest := 0, 0
	for _, w := range n.sizes {
		if w > widest {
			widest = w
		}
	}
	for _, l := range n.layers {
		total += l.out
	}
	s := &Scratch{
		acts:  make([][]float64, len(n.layers)+1),
		buf:   make([]float64, total),
		delta: make([]float64, widest),
		prev:  make([]float64, widest),
	}
	off := 0
	for i, l := range n.layers {
		s.acts[i+1] = s.buf[off : off+l.out : off+l.out]
		off += l.out
	}
	return s
}

// fits reports whether the scratch was sized for this network's topology.
func (s *Scratch) fits(n *Network) bool {
	if s == nil || len(s.acts) != len(n.layers)+1 {
		return false
	}
	for i, l := range n.layers {
		if len(s.acts[i+1]) != l.out {
			return false
		}
	}
	widest := 0
	for _, w := range n.sizes {
		if w > widest {
			widest = w
		}
	}
	return len(s.delta) >= widest && len(s.prev) >= widest
}

// ensure rebuilds a mismatched scratch in place, so an arena built for one
// topology degrades gracefully (one realloc) instead of corrupting results
// when handed to a differently shaped network.
func (n *Network) ensure(s *Scratch) *Scratch {
	if !s.fits(n) {
		*s = *n.NewScratch()
	}
	return s
}

// getScratch takes a pooled arena (or builds the first one).
func (n *Network) getScratch() *Scratch {
	if s, ok := n.scratch.Get().(*Scratch); ok {
		return s
	}
	return n.NewScratch()
}

func (n *Network) putScratch(s *Scratch) { n.scratch.Put(s) }

// forwardInto runs the forward pass with every layer activation stored in
// the scratch arena (acts[0] is the input itself, for backprop), returning
// the output activation. The returned slice is owned by the scratch and
// valid until its next use. Allocation-free.
func (n *Network) forwardInto(s *Scratch, input []float64) []float64 {
	n.ensure(s)
	s.acts[0] = input
	cur := input
	for li := range n.layers {
		l := &n.layers[li]
		next := s.acts[li+1]
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				sum += row[i] * x
			}
			next[o] = l.act.apply(sum)
		}
		cur = next
	}
	return cur
}

// PredictInto runs the network on one input vector, writing the prediction
// into dst (length Outputs()) using the caller-owned scratch arena.
// Allocation-free; safe for concurrent use with one Scratch per goroutine.
func (n *Network) PredictInto(s *Scratch, input, dst []float64) error {
	if len(input) != n.Inputs() {
		return fmt.Errorf("neural: input width %d, network expects %d", len(input), n.Inputs())
	}
	if len(dst) != n.Outputs() {
		return fmt.Errorf("neural: output buffer width %d, network produces %d", len(dst), n.Outputs())
	}
	copy(dst, n.forwardInto(s, input))
	return nil
}

// Predict runs the network on one input vector.
func (n *Network) Predict(input []float64) ([]float64, error) {
	out := make([]float64, n.Outputs())
	s := n.getScratch()
	err := n.PredictInto(s, input, out)
	n.putScratch(s)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatch runs the network over a whole dataset of input vectors,
// reusing one scratch arena across all of them. The returned rows share a
// single flat backing array — the only allocations of the call.
func (n *Network) PredictBatch(inputs [][]float64) ([][]float64, error) {
	width := n.Outputs()
	flat := make([]float64, len(inputs)*width)
	out := make([][]float64, len(inputs))
	s := n.getScratch()
	defer n.putScratch(s)
	for i, in := range inputs {
		row := flat[i*width : (i+1)*width : (i+1)*width]
		if err := n.PredictInto(s, in, row); err != nil {
			return nil, fmt.Errorf("neural: batch input %d: %w", i, err)
		}
		out[i] = row
	}
	return out, nil
}

// MSE returns the mean squared error between two equal-length vectors.
func MSE(got, want []float64) float64 {
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		d := got[i] - want[i]
		s += d * d
	}
	return s / float64(len(got))
}

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...)}
	c.layers = make([]layer, len(n.layers))
	for i, l := range n.layers {
		c.layers[i] = layer{
			in: l.in, out: l.out, act: l.act,
			w: append([]float64(nil), l.w...),
			b: append([]float64(nil), l.b...),
		}
	}
	return c
}
