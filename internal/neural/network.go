// Package neural implements the feedforward networks of the paper's
// learning scheme (fig. 4): multilayer perceptrons trained with
// backpropagation, an iterative learnability/generalization check in the
// training loop, the multi-network voting machine the paper uses to judge
// classification confidence, and the weight-file serialization that carries
// the learned characterization knowledge into the optimization phase.
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer nonlinearity.
type Activation uint8

const (
	// ActTanh is the hyperbolic tangent, the conventional hidden-layer
	// activation of 1990s MLP practice (Masters [14]).
	ActTanh Activation = iota
	// ActSigmoid is the logistic function, used on output layers whose
	// targets are membership grades in [0, 1].
	ActSigmoid
	// ActLinear is the identity.
	ActLinear
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	case ActLinear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", uint8(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActTanh:
		return math.Tanh(x)
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the activation output
// y = σ(x), which backprop has at hand.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActTanh:
		return 1 - y*y
	case ActSigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	in, out int
	act     Activation
	// w is row-major [out][in]; b is [out].
	w []float64
	b []float64
}

// Network is a feedforward multilayer perceptron. Construct with New; the
// zero value is not usable. Not safe for concurrent training; Predict is
// safe for concurrent use only if no training runs concurrently.
type Network struct {
	sizes  []int
	layers []layer
}

// New builds an MLP with the given layer sizes (inputs first, outputs
// last), tanh hidden layers and a sigmoid output layer, initialized with
// Xavier/Glorot uniform weights drawn from the seeded source.
func New(seed int64, sizes ...int) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("neural: need at least input and output sizes, got %v", sizes)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("neural: layer %d has non-positive size %d", i, s)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{sizes: append([]int(nil), sizes...)}
	for i := 1; i < len(sizes); i++ {
		act := ActTanh
		if i == len(sizes)-1 {
			act = ActSigmoid
		}
		l := layer{
			in:  sizes[i-1],
			out: sizes[i],
			act: act,
			w:   make([]float64, sizes[i]*sizes[i-1]),
			b:   make([]float64, sizes[i]),
		}
		// Xavier uniform: U(−√(6/(in+out)), +√(6/(in+out))).
		limit := math.Sqrt(6 / float64(l.in+l.out))
		for j := range l.w {
			l.w[j] = (rng.Float64()*2 - 1) * limit
		}
		n.layers = append(n.layers, l)
	}
	return n, nil
}

// Inputs returns the input-layer width.
func (n *Network) Inputs() int { return n.sizes[0] }

// Outputs returns the output-layer width.
func (n *Network) Outputs() int { return n.sizes[len(n.sizes)-1] }

// Sizes returns a copy of the layer sizes.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// forward runs the network and returns the activation of every layer
// (index 0 is the input itself), for backprop.
func (n *Network) forward(input []float64) [][]float64 {
	acts := make([][]float64, len(n.layers)+1)
	acts[0] = input
	cur := input
	for li, l := range n.layers {
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				sum += row[i] * x
			}
			next[o] = l.act.apply(sum)
		}
		acts[li+1] = next
		cur = next
	}
	return acts
}

// Predict runs the network on one input vector.
func (n *Network) Predict(input []float64) ([]float64, error) {
	if len(input) != n.Inputs() {
		return nil, fmt.Errorf("neural: input width %d, network expects %d", len(input), n.Inputs())
	}
	acts := n.forward(input)
	out := acts[len(acts)-1]
	return append([]float64(nil), out...), nil
}

// MSE returns the mean squared error between two equal-length vectors.
func MSE(got, want []float64) float64 {
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		d := got[i] - want[i]
		s += d * d
	}
	return s / float64(len(got))
}

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...)}
	c.layers = make([]layer, len(n.layers))
	for i, l := range n.layers {
		c.layers[i] = layer{
			in: l.in, out: l.out, act: l.act,
			w: append([]float64(nil), l.w...),
			b: append([]float64(nil), l.b...),
		}
	}
	return c
}
