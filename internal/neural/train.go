package neural

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sample is one supervised example: a test's feature vector and its
// fuzzy-coded trip point.
type Sample struct {
	Input  []float64
	Target []float64
}

// Dataset is an ordered collection of samples.
type Dataset []Sample

// Validate checks every sample against the expected widths.
func (d Dataset) Validate(inputs, outputs int) error {
	if len(d) == 0 {
		return errors.New("neural: empty dataset")
	}
	for i, s := range d {
		if len(s.Input) != inputs {
			return fmt.Errorf("neural: sample %d input width %d, want %d", i, len(s.Input), inputs)
		}
		if len(s.Target) != outputs {
			return fmt.Errorf("neural: sample %d target width %d, want %d", i, len(s.Target), outputs)
		}
	}
	return nil
}

// Split partitions the dataset into training and validation subsets; frac
// is the training fraction. The split is deterministic in the seed.
func (d Dataset) Split(seed int64, frac float64) (train, val Dataset) {
	if frac <= 0 || frac >= 1 {
		frac = 0.8
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(d))
	cut := int(float64(len(d)) * frac)
	if cut == 0 {
		cut = 1
	}
	if cut == len(d) && len(d) > 1 {
		cut = len(d) - 1
	}
	train = make(Dataset, 0, cut)
	val = make(Dataset, 0, len(d)-cut)
	for i, j := range idx {
		if i < cut {
			train = append(train, d[j])
		} else {
			val = append(val, d[j])
		}
	}
	return train, val
}

// Bootstrap draws a resampled dataset of the same size with replacement —
// the subset construction for the voting machine ("multiple NNs are trained
// on different subsets of the training input tests", §5).
func (d Dataset) Bootstrap(seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := make(Dataset, len(d))
	for i := range out {
		out[i] = d[rng.Intn(len(d))]
	}
	return out
}

// TrainConfig configures backpropagation training.
type TrainConfig struct {
	LearningRate float64 // step size (default 0.05)
	Momentum     float64 // classic momentum (default 0.9)
	Epochs       int     // hard epoch cap (default 200)
	BatchShuffle bool    // reshuffle sample order each epoch (default true via Default)
	Seed         int64   // shuffle seed

	// Learnability / generalization checks (fig. 4 step 4): training stops
	// early when the training error falls below LearnTarget AND the
	// validation error is below GeneralizeTarget; training aborts as
	// non-generalizing when validation error has not improved for
	// Patience epochs.
	LearnTarget      float64 // default 1e-3
	GeneralizeTarget float64 // default 5e-3
	Patience         int     // default 30
}

// DefaultTrainConfig returns the tuned defaults.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{
		LearningRate:     0.05,
		Momentum:         0.9,
		Epochs:           200,
		BatchShuffle:     true,
		Seed:             seed,
		LearnTarget:      1e-3,
		GeneralizeTarget: 5e-3,
		Patience:         30,
	}
}

// TrainReport summarizes one training run.
type TrainReport struct {
	Epochs       int
	TrainErr     float64 // final mean MSE over the training set
	ValErr       float64 // final mean MSE over the validation set
	BestValErr   float64
	Learned      bool // training error reached LearnTarget
	Generalized  bool // validation error reached GeneralizeTarget
	StoppedEarly bool // patience exhausted
	ErrCurve     []float64
	ValErrCurve  []float64
}

// Train runs momentum backpropagation (online/stochastic updates) on the
// training set, evaluating the validation set each epoch and keeping the
// best-validation weights (early stopping). The network is modified in
// place and ends at the best-validation snapshot.
func (n *Network) Train(train, val Dataset, cfg TrainConfig) (TrainReport, error) {
	if err := train.Validate(n.Inputs(), n.Outputs()); err != nil {
		return TrainReport{}, err
	}
	if len(val) > 0 {
		if err := val.Validate(n.Inputs(), n.Outputs()); err != nil {
			return TrainReport{}, err
		}
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		cfg.Momentum = 0.9
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 30
	}
	if cfg.LearnTarget <= 0 {
		cfg.LearnTarget = 1e-3
	}
	if cfg.GeneralizeTarget <= 0 {
		cfg.GeneralizeTarget = 5e-3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Steady-state-allocation-free training state, sized once per call:
	// the forward/backprop scratch arena, momentum buffers mirroring the
	// flat weight layout, and a flat snapshot of the best-validation
	// weights (replacing a full network Clone per improved epoch).
	sc := n.NewScratch()
	vw := make([][]float64, len(n.layers))
	vb := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		vw[i] = make([]float64, len(l.w))
		vb[i] = make([]float64, len(l.b))
	}
	bestW := make([]float64, n.ChromosomeLen())
	n.flattenInto(bestW)

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	var rep TrainReport
	rep.ErrCurve = make([]float64, 0, cfg.Epochs)
	rep.ValErrCurve = make([]float64, 0, cfg.Epochs)
	rep.BestValErr = inf()
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.BatchShuffle {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var trainErr float64
		for _, si := range order {
			s := train[si]
			out := n.forwardInto(sc, s.Input)
			trainErr += MSE(out, s.Target)

			// Backward pass: delta per layer, ping-ponging between the two
			// scratch delta buffers. Per (layer, output) the pass is two
			// contiguous axpy-style sweeps over the flat weight row — the
			// delta back-accumulation reads the pre-update row exactly as
			// the interleaved reference formulation does, so results stay
			// bit-identical.
			delta := sc.delta[:len(out)]
			lastLayer := &n.layers[len(n.layers)-1]
			for o := range out {
				delta[o] = (out[o] - s.Target[o]) * lastLayer.act.derivFromOutput(out[o])
			}
			for li := len(n.layers) - 1; li >= 0; li-- {
				l := &n.layers[li]
				in := sc.acts[li]
				var prevDelta []float64
				if li > 0 {
					prevDelta = sc.prev[:l.in]
					for i := range prevDelta {
						prevDelta[i] = 0
					}
				}
				vwl, vbl := vw[li], vb[li]
				for o := 0; o < l.out; o++ {
					row := l.w[o*l.in : (o+1)*l.in]
					vrow := vwl[o*l.in : (o+1)*l.in]
					d := delta[o]
					if li > 0 {
						for i, w := range row {
							prevDelta[i] += w * d
						}
					}
					for i := range row {
						v := cfg.Momentum*vrow[i] - cfg.LearningRate*(d*in[i])
						vrow[i] = v
						row[i] += v
					}
					v := cfg.Momentum*vbl[o] - cfg.LearningRate*d
					vbl[o] = v
					l.b[o] += v
				}
				if li > 0 {
					below := sc.acts[li]
					act := n.layers[li-1].act
					for i := range prevDelta {
						prevDelta[i] *= act.derivFromOutput(below[i])
					}
					sc.delta, sc.prev = sc.prev, sc.delta
					delta = prevDelta
				}
			}
		}
		trainErr /= float64(len(train))
		rep.ErrCurve = append(rep.ErrCurve, trainErr)
		rep.TrainErr = trainErr
		rep.Epochs = epoch + 1

		valErr := trainErr
		if len(val) > 0 {
			valErr = n.EvaluateWith(sc, val)
		}
		rep.ValErrCurve = append(rep.ValErrCurve, valErr)
		rep.ValErr = valErr

		if valErr < rep.BestValErr {
			rep.BestValErr = valErr
			n.flattenInto(bestW)
			sinceBest = 0
		} else {
			sinceBest++
		}

		rep.Learned = trainErr <= cfg.LearnTarget
		rep.Generalized = valErr <= cfg.GeneralizeTarget
		if rep.Learned && rep.Generalized {
			break
		}
		if sinceBest >= cfg.Patience {
			rep.StoppedEarly = true
			break
		}
	}

	// Restore the best-validation snapshot.
	n.unflatten(bestW)
	if len(val) > 0 {
		rep.ValErr = n.EvaluateWith(sc, val)
	}
	rep.TrainErr = n.EvaluateWith(sc, train)
	rep.Learned = rep.TrainErr <= cfg.LearnTarget
	rep.Generalized = rep.ValErr <= cfg.GeneralizeTarget
	return rep, nil
}

// Evaluate returns the mean MSE of the network over the dataset.
func (n *Network) Evaluate(d Dataset) float64 {
	sc := n.getScratch()
	mse := n.EvaluateWith(sc, d)
	n.putScratch(sc)
	return mse
}

// EvaluateWith is Evaluate with a caller-owned scratch arena: one forward
// pass per sample, zero allocations. Safe for concurrent use with one
// Scratch per goroutine.
func (n *Network) EvaluateWith(sc *Scratch, d Dataset) float64 {
	if len(d) == 0 {
		return 0
	}
	n.ensure(sc)
	var s float64
	for _, smp := range d {
		s += MSE(n.forwardInto(sc, smp.Input), smp.Target)
	}
	return s / float64(len(d))
}

func inf() float64 { return math.Inf(1) }
