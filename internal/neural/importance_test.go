package neural

import (
	"math/rand"
	"testing"
)

// importanceDataset: target depends strongly on feature 0, weakly on
// feature 1, not at all on feature 2.
func importanceDataset(seed int64, n int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := make(Dataset, n)
	for i := range d {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0.7*x[0] + 0.1*x[1] + 0.1
		d[i] = Sample{Input: x, Target: []float64{y}}
	}
	return d
}

func importanceEnsemble(t *testing.T) (*Ensemble, Dataset) {
	t.Helper()
	data := importanceDataset(5, 300)
	cfg := DefaultTrainConfig(5)
	cfg.Epochs = 120
	ens, _, err := NewEnsemble(5, 2, []int{3, 10, 1}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ens, data
}

func TestPermutationImportanceRanksSignal(t *testing.T) {
	ens, data := importanceEnsemble(t)
	imps, err := PermutationImportance(ens, data, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 3 {
		t.Fatalf("%d importances", len(imps))
	}
	if imps[0].Feature != 0 {
		t.Errorf("most important feature is %d, want 0 (the 0.7-weight input)", imps[0].Feature)
	}
	if imps[0].DeltaMSE <= 0 {
		t.Errorf("dominant feature importance %g not positive", imps[0].DeltaMSE)
	}
	// The noise feature must rank last and carry ≈ no importance.
	last := imps[len(imps)-1]
	if last.Feature != 2 {
		t.Errorf("least important feature is %d, want the noise input 2", last.Feature)
	}
	if last.DeltaMSE > imps[0].DeltaMSE/5 {
		t.Errorf("noise feature importance %g not well below dominant %g", last.DeltaMSE, imps[0].DeltaMSE)
	}
}

func TestPermutationImportanceDoesNotMutateData(t *testing.T) {
	ens, data := importanceEnsemble(t)
	before := make([]float64, len(data))
	for i := range data {
		before[i] = data[i].Input[0]
	}
	if _, err := PermutationImportance(ens, data, 7, 2); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i].Input[0] != before[i] {
			t.Fatal("importance computation mutated the dataset")
		}
	}
}

func TestPermutationImportanceValidation(t *testing.T) {
	ens, data := importanceEnsemble(t)
	if _, err := PermutationImportance(nil, data, 1, 1); err == nil {
		t.Error("nil ensemble accepted")
	}
	if _, err := PermutationImportance(ens, nil, 1, 1); err == nil {
		t.Error("empty data accepted")
	}
	bad := Dataset{{Input: []float64{1}, Target: []float64{1}}}
	if _, err := PermutationImportance(ens, bad, 1, 1); err == nil {
		t.Error("mismatched data accepted")
	}
}

func TestPermutationImportanceDeterministic(t *testing.T) {
	ens, data := importanceEnsemble(t)
	a, err := PermutationImportance(ens, data, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PermutationImportance(ens, data, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importance not deterministic in seed")
		}
	}
}
