package neural

import (
	"math"
	"testing"
)

func TestTrainGALearnsXOR(t *testing.T) {
	n, err := New(5, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGATrainConfig(5)
	cfg.Generations = 400
	cfg.TargetErr = 0.01
	rep, err := n.TrainGA(xorData(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainErr > 0.05 {
		t.Fatalf("GA training error %.4f after %d generations", rep.TrainErr, rep.Epochs)
	}
	for _, s := range xorData() {
		out, err := n.Predict(s.Input)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-s.Target[0]) > 0.35 {
			t.Errorf("XOR(%v) = %g, want %g", s.Input, out[0], s.Target[0])
		}
	}
}

func TestTrainGAImprovesOverInit(t *testing.T) {
	data := syntheticRegression(9, 100)
	train, val := data.Split(9, 0.8)
	n, _ := New(9, 3, 8, 1)
	before := n.Evaluate(val)
	cfg := DefaultGATrainConfig(9)
	cfg.Generations = 60
	rep, err := n.TrainGA(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValErr >= before {
		t.Errorf("GA training did not improve validation error: %g → %g", before, rep.ValErr)
	}
}

func TestTrainGATargetStopsEarly(t *testing.T) {
	n, _ := New(11, 2, 6, 1)
	cfg := DefaultGATrainConfig(11)
	cfg.Generations = 2000
	cfg.TargetErr = 0.2 // easy
	rep, err := n.TrainGA(xorData(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs == 2000 {
		t.Error("ran to cap despite easy target")
	}
}

func TestTrainGAValidatesData(t *testing.T) {
	n, _ := New(1, 2, 2, 1)
	bad := Dataset{{Input: []float64{1}, Target: []float64{1}}}
	if _, err := n.TrainGA(bad, nil, DefaultGATrainConfig(1)); err == nil {
		t.Error("mismatched dataset accepted")
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	n, _ := New(13, 3, 5, 2)
	genes := n.flatten()
	if len(genes) != n.ChromosomeLen() {
		t.Fatalf("chromosome length %d vs %d", len(genes), n.ChromosomeLen())
	}
	want := (3*5 + 5) + (5*2 + 2)
	if len(genes) != want {
		t.Fatalf("chromosome length %d, want %d", len(genes), want)
	}
	in := []float64{0.1, 0.2, 0.3}
	before, _ := n.Predict(in)
	c := n.Clone()
	c.unflatten(genes)
	after, _ := c.Predict(in)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("flatten/unflatten changed predictions")
		}
	}
}

func TestTrainGADeterministic(t *testing.T) {
	run := func() float64 {
		n, _ := New(17, 2, 4, 1)
		cfg := DefaultGATrainConfig(17)
		cfg.Generations = 30
		rep, err := n.TrainGA(xorData(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TrainErr
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed GA training diverged: %g vs %g", a, b)
	}
}
