package neural

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WeightFile is the serialized form of a trained ensemble — the "NN weight
// file" of fig. 4 step 5 that carries the learned characterization into the
// optimization phase "based on only software computation without
// measurement."
type WeightFile struct {
	Format   string            `json:"format"`
	Version  int               `json:"version"`
	Comment  string            `json:"comment,omitempty"`
	Members  []networkJSON     `json:"members"`
	Metadata map[string]string `json:"metadata,omitempty"`
}

type networkJSON struct {
	Sizes  []int       `json:"sizes"`
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	In         int       `json:"in"`
	Out        int       `json:"out"`
	Activation string    `json:"activation"`
	Weights    []float64 `json:"weights"`
	Biases     []float64 `json:"biases"`
}

const (
	weightFileFormat  = "ci-characterization-nn-weights"
	weightFileVersion = 1
)

func activationFromString(s string) (Activation, error) {
	switch s {
	case "tanh":
		return ActTanh, nil
	case "sigmoid":
		return ActSigmoid, nil
	case "linear":
		return ActLinear, nil
	default:
		return 0, fmt.Errorf("neural: unknown activation %q", s)
	}
}

// Save writes the ensemble to w as a weight file.
func (e *Ensemble) Save(w io.Writer, metadata map[string]string) error {
	wf := WeightFile{
		Format:   weightFileFormat,
		Version:  weightFileVersion,
		Metadata: metadata,
	}
	for _, m := range e.members {
		nj := networkJSON{Sizes: m.Sizes()}
		for _, l := range m.layers {
			nj.Layers = append(nj.Layers, layerJSON{
				In: l.in, Out: l.out,
				Activation: l.act.String(),
				Weights:    l.w,
				Biases:     l.b,
			})
		}
		wf.Members = append(wf.Members, nj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wf)
}

// SaveFile writes the ensemble to the named file.
func (e *Ensemble) SaveFile(path string, metadata map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Save(f, metadata); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a weight file and reconstructs the ensemble and its metadata.
func Load(r io.Reader) (*Ensemble, map[string]string, error) {
	var wf WeightFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wf); err != nil {
		return nil, nil, fmt.Errorf("neural: decoding weight file: %w", err)
	}
	if wf.Format != weightFileFormat {
		return nil, nil, fmt.Errorf("neural: not a weight file (format %q)", wf.Format)
	}
	if wf.Version != weightFileVersion {
		return nil, nil, fmt.Errorf("neural: unsupported weight file version %d", wf.Version)
	}
	if len(wf.Members) == 0 {
		return nil, nil, fmt.Errorf("neural: weight file has no member networks")
	}
	members := make([]*Network, 0, len(wf.Members))
	for mi, nj := range wf.Members {
		if len(nj.Sizes) < 2 {
			return nil, nil, fmt.Errorf("neural: member %d has invalid sizes %v", mi, nj.Sizes)
		}
		if len(nj.Layers) != len(nj.Sizes)-1 {
			return nil, nil, fmt.Errorf("neural: member %d has %d layers for %d sizes", mi, len(nj.Layers), len(nj.Sizes))
		}
		n := &Network{sizes: append([]int(nil), nj.Sizes...)}
		for li, lj := range nj.Layers {
			if lj.In != nj.Sizes[li] || lj.Out != nj.Sizes[li+1] {
				return nil, nil, fmt.Errorf("neural: member %d layer %d shape mismatch", mi, li)
			}
			if len(lj.Weights) != lj.In*lj.Out || len(lj.Biases) != lj.Out {
				return nil, nil, fmt.Errorf("neural: member %d layer %d weight count mismatch", mi, li)
			}
			act, err := activationFromString(lj.Activation)
			if err != nil {
				return nil, nil, err
			}
			n.layers = append(n.layers, layer{
				in: lj.In, out: lj.Out, act: act,
				w: append([]float64(nil), lj.Weights...),
				b: append([]float64(nil), lj.Biases...),
			})
		}
		members = append(members, n)
	}
	e, err := FromNetworks(members)
	if err != nil {
		return nil, nil, err
	}
	return e, wf.Metadata, nil
}

// LoadFile reads a weight file from the named path.
func LoadFile(path string) (*Ensemble, map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}
