package neural

import (
	"math/rand"
	"sort"
)

// Genetic training of network weights, after the paper's reference [13]
// (van Rooij, Jain & Johnson, "Neural Network Training Using Genetic
// Algorithms"): the weight vector is the chromosome, fitness is the
// negative training error, and a small real-valued GA with elitism, blend
// crossover and gaussian mutation evolves the population. Backpropagation
// is the flow's default trainer; genetic training is the derivative-free
// alternative the paper's toolbox includes, and the ablation benchmarks
// compare the two.

// GATrainConfig configures genetic weight training.
type GATrainConfig struct {
	PopSize     int     // population size (default 40)
	Generations int     // generation cap (default 150)
	Elite       int     // unchanged survivors per generation (default 2)
	TournamentK int     // selection tournament size (default 3)
	MutSigma    float64 // gaussian mutation sigma (default 0.1)
	MutRate     float64 // per-gene mutation probability (default 0.1)
	BlendAlpha  float64 // BLX-α crossover margin (default 0.3)
	Seed        int64
	// TargetErr stops evolution early once the best training MSE falls
	// below it (0 disables).
	TargetErr float64
}

// DefaultGATrainConfig returns tuned defaults.
func DefaultGATrainConfig(seed int64) GATrainConfig {
	return GATrainConfig{
		PopSize:     40,
		Generations: 150,
		Elite:       2,
		TournamentK: 3,
		MutSigma:    0.1,
		MutRate:     0.1,
		BlendAlpha:  0.3,
		Seed:        seed,
	}
}

// flatten serializes all weights and biases into one chromosome.
func (n *Network) flatten() []float64 {
	out := make([]float64, 0, n.ChromosomeLen())
	for _, l := range n.layers {
		out = append(out, l.w...)
		out = append(out, l.b...)
	}
	return out
}

// flattenInto writes the chromosome into dst (length ChromosomeLen)
// without allocating — the snapshot primitive of the training loops.
func (n *Network) flattenInto(dst []float64) {
	i := 0
	for _, l := range n.layers {
		i += copy(dst[i:], l.w)
		i += copy(dst[i:], l.b)
	}
}

// unflatten installs a chromosome into the network.
func (n *Network) unflatten(genes []float64) {
	i := 0
	for li := range n.layers {
		l := &n.layers[li]
		copy(l.w, genes[i:i+len(l.w)])
		i += len(l.w)
		copy(l.b, genes[i:i+len(l.b)])
		i += len(l.b)
	}
}

// TrainGA evolves the network's weights on the training set and leaves the
// network at the chromosome with the best validation error (training error
// when val is empty). The report mirrors Train's.
func (n *Network) TrainGA(train, val Dataset, cfg GATrainConfig) (TrainReport, error) {
	if err := train.Validate(n.Inputs(), n.Outputs()); err != nil {
		return TrainReport{}, err
	}
	if len(val) > 0 {
		if err := val.Validate(n.Inputs(), n.Outputs()); err != nil {
			return TrainReport{}, err
		}
	}
	if cfg.PopSize < 4 {
		cfg.PopSize = 40
	}
	if cfg.Generations < 1 {
		cfg.Generations = 150
	}
	if cfg.Elite < 0 || cfg.Elite >= cfg.PopSize {
		cfg.Elite = 2
	}
	if cfg.TournamentK < 1 {
		cfg.TournamentK = 3
	}
	if cfg.MutSigma <= 0 {
		cfg.MutSigma = 0.1
	}
	if cfg.MutRate <= 0 {
		cfg.MutRate = 0.1
	}
	if cfg.BlendAlpha < 0 {
		cfg.BlendAlpha = 0.3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	genes := n.ChromosomeLen()

	type indiv struct {
		genes []float64
		err   float64
	}
	// One scratch arena serves every fitness evaluation of the run: the GA
	// calls the forward kernel PopSize×Generations times, so the per-call
	// allocation of the naive path dominates without it.
	sc := n.NewScratch()
	evalGenes := func(g []float64) float64 {
		n.unflatten(g)
		return n.EvaluateWith(sc, train)
	}

	// Initial population: the current weights plus randomized variants.
	pop := make([]indiv, cfg.PopSize)
	base := n.flatten()
	pop[0] = indiv{genes: append([]float64(nil), base...)}
	for i := 1; i < cfg.PopSize; i++ {
		g := make([]float64, genes)
		for j := range g {
			g[j] = base[j] + rng.NormFloat64()*0.5
		}
		pop[i] = indiv{genes: g}
	}
	for i := range pop {
		pop[i].err = evalGenes(pop[i].genes)
	}

	var rep TrainReport
	bestVal := inf()
	bestGenes := append([]float64(nil), pop[0].genes...)

	for gen := 0; gen < cfg.Generations; gen++ {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].err < pop[b].err })
		rep.Epochs = gen + 1
		rep.TrainErr = pop[0].err
		rep.ErrCurve = append(rep.ErrCurve, pop[0].err)

		// Validation of the generation best.
		valErr := pop[0].err
		if len(val) > 0 {
			n.unflatten(pop[0].genes)
			valErr = n.EvaluateWith(sc, val)
		}
		rep.ValErrCurve = append(rep.ValErrCurve, valErr)
		rep.ValErr = valErr
		if valErr < bestVal {
			bestVal = valErr
			copy(bestGenes, pop[0].genes)
		}

		if cfg.TargetErr > 0 && pop[0].err <= cfg.TargetErr {
			break
		}

		tournament := func() indiv {
			best := pop[rng.Intn(len(pop))]
			for i := 1; i < cfg.TournamentK; i++ {
				c := pop[rng.Intn(len(pop))]
				if c.err < best.err {
					best = c
				}
			}
			return best
		}

		next := make([]indiv, 0, cfg.PopSize)
		for e := 0; e < cfg.Elite; e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.PopSize {
			p1, p2 := tournament(), tournament()
			child := make([]float64, genes)
			for j := range child {
				lo, hi := p1.genes[j], p2.genes[j]
				if lo > hi {
					lo, hi = hi, lo
				}
				span := hi - lo
				lo -= cfg.BlendAlpha * span
				hi += cfg.BlendAlpha * span
				child[j] = lo + rng.Float64()*(hi-lo)
				if rng.Float64() < cfg.MutRate {
					child[j] += rng.NormFloat64() * cfg.MutSigma
				}
			}
			next = append(next, indiv{genes: child, err: evalGenes(child)})
		}
		pop = next
	}

	n.unflatten(bestGenes)
	rep.TrainErr = n.EvaluateWith(sc, train)
	if len(val) > 0 {
		rep.ValErr = n.EvaluateWith(sc, val)
	} else {
		rep.ValErr = rep.TrainErr
	}
	rep.BestValErr = bestVal
	return rep, nil
}

// ChromosomeLen reports the GA chromosome length of the network (weights +
// biases), for sizing expectations in tests and docs.
func (n *Network) ChromosomeLen() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}
