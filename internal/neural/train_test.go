package neural

import (
	"math"
	"math/rand"
	"testing"
)

// xorData is the classic non-linearly-separable check.
func xorData() Dataset {
	return Dataset{
		{Input: []float64{0, 0}, Target: []float64{0}},
		{Input: []float64{0, 1}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{1}},
		{Input: []float64{1, 1}, Target: []float64{0}},
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	n, err := New(3, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(3)
	cfg.Epochs = 3000
	cfg.Patience = 3000
	cfg.LearningRate = 0.3
	rep, err := n.Train(xorData(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range xorData() {
		out, err := n.Predict(s.Input)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-s.Target[0]) > 0.3 {
			t.Errorf("XOR(%v) = %g, want %g (train err %g)", s.Input, out[0], s.Target[0], rep.TrainErr)
		}
	}
}

// syntheticRegression builds a smooth single-output regression task.
func syntheticRegression(seed int64, n int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := make(Dataset, n)
	for i := range d {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0.3*x[0] + 0.5*x[1]*x[2] + 0.1
		d[i] = Sample{Input: x, Target: []float64{y}}
	}
	return d
}

func TestTrainReducesError(t *testing.T) {
	data := syntheticRegression(5, 200)
	train, val := data.Split(5, 0.8)
	n, _ := New(5, 3, 10, 1)
	before := n.Evaluate(val)
	cfg := DefaultTrainConfig(5)
	cfg.Epochs = 100
	rep, err := n.Train(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValErr >= before {
		t.Errorf("validation error did not improve: %g → %g", before, rep.ValErr)
	}
	if rep.Epochs == 0 || len(rep.ErrCurve) != rep.Epochs {
		t.Errorf("report curves inconsistent: %d epochs, %d curve points", rep.Epochs, len(rep.ErrCurve))
	}
}

func TestTrainEarlyStopOnTargets(t *testing.T) {
	data := syntheticRegression(7, 300)
	train, val := data.Split(7, 0.8)
	n, _ := New(7, 3, 12, 1)
	cfg := DefaultTrainConfig(7)
	cfg.Epochs = 2000
	cfg.LearnTarget = 1e-3
	cfg.GeneralizeTarget = 1e-3
	rep, err := n.Train(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Learned && rep.Generalized && rep.Epochs == 2000 {
		t.Error("targets met but training did not stop early")
	}
}

func TestTrainPatienceStops(t *testing.T) {
	// Pure noise targets cannot generalize: patience must abort training.
	rng := rand.New(rand.NewSource(11))
	data := make(Dataset, 60)
	for i := range data {
		data[i] = Sample{
			Input:  []float64{rng.Float64(), rng.Float64()},
			Target: []float64{rng.Float64()},
		}
	}
	train, val := data.Split(11, 0.7)
	n, _ := New(11, 2, 4, 1)
	cfg := DefaultTrainConfig(11)
	cfg.Epochs = 5000
	cfg.Patience = 10
	cfg.LearnTarget = 1e-12
	cfg.GeneralizeTarget = 1e-12
	rep, err := n.Train(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.StoppedEarly && rep.Epochs == 5000 {
		t.Error("noise dataset ran to the epoch cap despite patience")
	}
}

func TestTrainRestoresBestValidationSnapshot(t *testing.T) {
	data := syntheticRegression(13, 150)
	train, val := data.Split(13, 0.8)
	n, _ := New(13, 3, 8, 1)
	cfg := DefaultTrainConfig(13)
	cfg.Epochs = 150
	rep, err := n.Train(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := n.Evaluate(val)
	if math.Abs(got-rep.BestValErr) > 1e-9 {
		t.Errorf("final network val err %g, best snapshot was %g", got, rep.BestValErr)
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := (Dataset{}).Validate(2, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := Dataset{{Input: []float64{1}, Target: []float64{1}}}
	if err := bad.Validate(2, 1); err == nil {
		t.Error("wrong input width accepted")
	}
	bad = Dataset{{Input: []float64{1, 2}, Target: []float64{}}}
	if err := bad.Validate(2, 1); err == nil {
		t.Error("wrong target width accepted")
	}
}

func TestTrainValidatesDatasets(t *testing.T) {
	n, _ := New(1, 2, 2, 1)
	bad := Dataset{{Input: []float64{1}, Target: []float64{1}}}
	if _, err := n.Train(bad, nil, DefaultTrainConfig(1)); err == nil {
		t.Error("mismatched training set accepted")
	}
	good := Dataset{{Input: []float64{1, 0}, Target: []float64{1}}}
	if _, err := n.Train(good, bad, DefaultTrainConfig(1)); err == nil {
		t.Error("mismatched validation set accepted")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	data := syntheticRegression(17, 100)
	train, val := data.Split(17, 0.8)
	if len(train) != 80 || len(val) != 20 {
		t.Errorf("split sizes %d/%d", len(train), len(val))
	}
	// Deterministic in the seed.
	train2, _ := data.Split(17, 0.8)
	for i := range train {
		if &train[i].Input[0] != &train2[i].Input[0] {
			t.Fatal("split not deterministic")
		}
	}
	// Degenerate fractions fall back to 0.8.
	tr, vl := data.Split(17, 1.5)
	if len(tr) != 80 || len(vl) != 20 {
		t.Error("degenerate fraction not defaulted")
	}
}

func TestSplitNeverEmptySides(t *testing.T) {
	d := syntheticRegression(19, 2)
	train, val := d.Split(19, 0.99)
	if len(train) == 0 || len(val) == 0 {
		t.Errorf("tiny dataset split %d/%d leaves a side empty", len(train), len(val))
	}
}

func TestBootstrapProperties(t *testing.T) {
	data := syntheticRegression(23, 50)
	b := data.Bootstrap(23)
	if len(b) != len(data) {
		t.Fatalf("bootstrap size %d", len(b))
	}
	b2 := data.Bootstrap(23)
	for i := range b {
		if &b[i].Input[0] != &b2[i].Input[0] {
			t.Fatal("bootstrap not deterministic in seed")
		}
	}
	b3 := data.Bootstrap(24)
	identical := true
	for i := range b {
		if &b[i].Input[0] != &b3[i].Input[0] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("different bootstrap seeds produced the same resample")
	}
}
