package neural

import (
	"fmt"
	"math/rand"
	"sort"
)

// Permutation feature importance: how much the ensemble's error grows when
// one input feature is shuffled across the dataset. It answers the
// question the flow's fuzzy diagnosis answers by construction — *which*
// activity terms drive the severity — but for the learned black box, so
// the two can be cross-checked.

// FeatureImportance is one input's contribution.
type FeatureImportance struct {
	Feature int
	// DeltaMSE is the mean-squared-error increase caused by shuffling the
	// feature (≤ 0 means the feature carries no usable signal).
	DeltaMSE float64
}

// PermutationImportance computes the importance of every input feature of
// the ensemble over the dataset, shuffling each feature column `rounds`
// times (default 3) and averaging. Results are sorted most important
// first. The dataset is not modified.
func PermutationImportance(e *Ensemble, data Dataset, seed int64, rounds int) ([]FeatureImportance, error) {
	if e == nil || len(data) == 0 {
		return nil, fmt.Errorf("neural: importance needs an ensemble and data")
	}
	if err := data.Validate(e.Inputs(), e.Outputs()); err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 3
	}
	// One scratch arena serves the base evaluation and every perturbation
	// sweep: features × rounds full-dataset voting passes reuse the same
	// flat buffers instead of allocating per prediction.
	sc := e.NewScratch()
	base, err := e.EvaluateWith(sc, data)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	// Working copy with cloned input slices so shuffling is local.
	work := make(Dataset, len(data))
	for i, s := range data {
		work[i] = Sample{
			Input:  append([]float64(nil), s.Input...),
			Target: s.Target,
		}
	}

	out := make([]FeatureImportance, e.Inputs())
	perm := make([]int, len(work))
	orig := make([]float64, len(work))
	for f := 0; f < e.Inputs(); f++ {
		var delta float64
		for r := 0; r < rounds; r++ {
			copy(perm, rng.Perm(len(work)))
			// Shuffle column f.
			for i := range work {
				orig[i] = work[i].Input[f]
			}
			for i := range work {
				work[i].Input[f] = orig[perm[i]]
			}
			mse, err := e.EvaluateWith(sc, work)
			if err != nil {
				return nil, err
			}
			delta += mse - base
			// Restore.
			for i := range work {
				work[i].Input[f] = orig[i]
			}
		}
		out[f] = FeatureImportance{Feature: f, DeltaMSE: delta / float64(rounds)}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].DeltaMSE > out[b].DeltaMSE })
	return out, nil
}
