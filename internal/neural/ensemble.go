package neural

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Ensemble is the paper's NN voting machine (§5, learning step 1):
// "multiple NNs are trained on different subsets of the training input
// tests, then vote in parallel on unknown input tests." Prediction is the
// member average; the confidence in a classification "is determined by
// averaging the mean error for each network" — realized here as the member
// disagreement (consistency check).
type Ensemble struct {
	members []*Network
}

// NewEnsemble trains n member networks on independent bootstrap resamples
// of the dataset. Layer sizes apply to every member; seeds derive from the
// base seed so runs are reproducible.
func NewEnsemble(seed int64, n int, sizes []int, data Dataset, cfg TrainConfig) (*Ensemble, []TrainReport, error) {
	return NewEnsembleParallel(seed, n, sizes, data, cfg, 1)
}

// NewEnsembleParallel is NewEnsemble with member training fanned across the
// given number of workers (below 1 selects one per CPU). Every member's
// initialization, bootstrap resample, split and training derive solely from
// its own member seed and read the shared dataset read-only, so the trained
// weights are bit-identical to the serial ones for any worker count.
func NewEnsembleParallel(seed int64, n int, sizes []int, data Dataset, cfg TrainConfig, workers int) (*Ensemble, []TrainReport, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("neural: ensemble size %d must be positive", n)
	}
	members := make([]*Network, n)
	reports := make([]TrainReport, n)
	err := parallel.ForEach(n, workers, func(i int) error {
		memberSeed := seed + int64(i)*7919
		net, err := New(memberSeed, sizes...)
		if err != nil {
			return err
		}
		sub := data.Bootstrap(memberSeed)
		train, val := sub.Split(memberSeed, 0.85)
		memberCfg := cfg
		memberCfg.Seed = memberSeed
		rep, err := net.Train(train, val, memberCfg)
		if err != nil {
			return fmt.Errorf("neural: training ensemble member %d: %w", i, err)
		}
		members[i] = net
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &Ensemble{members: members}, reports, nil
}

// FromNetworks wraps already-trained networks into an ensemble (weight-file
// loading path).
func FromNetworks(members []*Network) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, errors.New("neural: ensemble needs at least one member")
	}
	in, out := members[0].Inputs(), members[0].Outputs()
	for i, m := range members[1:] {
		if m.Inputs() != in || m.Outputs() != out {
			return nil, fmt.Errorf("neural: member %d shape (%d→%d) differs from member 0 (%d→%d)",
				i+1, m.Inputs(), m.Outputs(), in, out)
		}
	}
	return &Ensemble{members: members}, nil
}

// Size returns the number of member networks.
func (e *Ensemble) Size() int { return len(e.members) }

// Members returns the member networks (shared, not copied).
func (e *Ensemble) Members() []*Network { return e.members }

// Inputs returns the ensemble input width.
func (e *Ensemble) Inputs() int { return e.members[0].Inputs() }

// Outputs returns the ensemble output width.
func (e *Ensemble) Outputs() int { return e.members[0].Outputs() }

// Vote runs every member on the input and returns the averaged prediction
// together with the confidence: 1/(1+meanDisagreement), where the
// disagreement is the mean RMS spread of member outputs around the average.
// Unanimous members give confidence → 1.
func (e *Ensemble) Vote(input []float64) (avg []float64, confidence float64, err error) {
	preds := make([][]float64, len(e.members))
	for i, m := range e.members {
		p, err := m.Predict(input)
		if err != nil {
			return nil, 0, err
		}
		preds[i] = p
	}
	avg = make([]float64, e.Outputs())
	for _, p := range preds {
		for j, v := range p {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(preds))
	}
	var spread float64
	for _, p := range preds {
		spread += math.Sqrt(MSE(p, avg))
	}
	spread /= float64(len(preds))
	return avg, 1 / (1 + spread*10), nil
}

// Predict returns only the averaged prediction.
func (e *Ensemble) Predict(input []float64) ([]float64, error) {
	avg, _, err := e.Vote(input)
	return avg, err
}

// Evaluate returns the mean MSE of the averaged prediction over a dataset
// (the ensemble generalization check).
func (e *Ensemble) Evaluate(d Dataset) (float64, error) {
	if len(d) == 0 {
		return 0, nil
	}
	var s float64
	for _, smp := range d {
		p, err := e.Predict(smp.Input)
		if err != nil {
			return 0, err
		}
		s += MSE(p, smp.Target)
	}
	return s / float64(len(d)), nil
}
