package neural

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
)

// Ensemble is the paper's NN voting machine (§5, learning step 1):
// "multiple NNs are trained on different subsets of the training input
// tests, then vote in parallel on unknown input tests." Prediction is the
// member average; the confidence in a classification "is determined by
// averaging the mean error for each network" — realized here as the member
// disagreement (consistency check).
type Ensemble struct {
	members []*Network

	// scratch pools EnsembleScratch arenas for the convenience entry
	// points (Vote, Predict, Evaluate) that do not take a caller-owned
	// arena.
	scratch sync.Pool
}

// NewEnsemble trains n member networks on independent bootstrap resamples
// of the dataset. Layer sizes apply to every member; seeds derive from the
// base seed so runs are reproducible.
func NewEnsemble(seed int64, n int, sizes []int, data Dataset, cfg TrainConfig) (*Ensemble, []TrainReport, error) {
	return NewEnsembleParallel(seed, n, sizes, data, cfg, 1)
}

// NewEnsembleParallel is NewEnsemble with member training fanned across the
// given number of workers (below 1 selects one per CPU). Every member's
// initialization, bootstrap resample, split and training derive solely from
// its own member seed and read the shared dataset read-only, so the trained
// weights are bit-identical to the serial ones for any worker count.
func NewEnsembleParallel(seed int64, n int, sizes []int, data Dataset, cfg TrainConfig, workers int) (*Ensemble, []TrainReport, error) {
	return newEnsembleWith(seed, n, sizes, data, cfg, func(count int, body func(i int) error) error {
		return parallel.ForEach(count, workers, body)
	})
}

// NewEnsembleOn is NewEnsembleParallel on a persistent fleet: member
// training dispatches to the fleet's long-lived workers, so a flow that
// also fans measurement work shares one pool across phases instead of
// forking a fresh one per ensemble. Weights are bit-identical to the serial
// and batch-pool forms (each member derives solely from its member seed).
func NewEnsembleOn(f *parallel.Fleet, seed int64, n int, sizes []int, data Dataset, cfg TrainConfig) (*Ensemble, []TrainReport, error) {
	return newEnsembleWith(seed, n, sizes, data, cfg, func(count int, body func(i int) error) error {
		return parallel.ForEachOn(f, count, body)
	})
}

// newEnsembleWith trains the members through the given fan-out primitive.
func newEnsembleWith(seed int64, n int, sizes []int, data Dataset, cfg TrainConfig, forEach func(n int, body func(i int) error) error) (*Ensemble, []TrainReport, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("neural: ensemble size %d must be positive", n)
	}
	members := make([]*Network, n)
	reports := make([]TrainReport, n)
	err := forEach(n, func(i int) error {
		memberSeed := seed + int64(i)*7919
		net, err := New(memberSeed, sizes...)
		if err != nil {
			return err
		}
		sub := data.Bootstrap(memberSeed)
		train, val := sub.Split(memberSeed, 0.85)
		memberCfg := cfg
		memberCfg.Seed = memberSeed
		rep, err := net.Train(train, val, memberCfg)
		if err != nil {
			return fmt.Errorf("neural: training ensemble member %d: %w", i, err)
		}
		members[i] = net
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &Ensemble{members: members}, reports, nil
}

// FromNetworks wraps already-trained networks into an ensemble (weight-file
// loading path).
func FromNetworks(members []*Network) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, errors.New("neural: ensemble needs at least one member")
	}
	in, out := members[0].Inputs(), members[0].Outputs()
	for i, m := range members[1:] {
		if m.Inputs() != in || m.Outputs() != out {
			return nil, fmt.Errorf("neural: member %d shape (%d→%d) differs from member 0 (%d→%d)",
				i+1, m.Inputs(), m.Outputs(), in, out)
		}
	}
	return &Ensemble{members: members}, nil
}

// Size returns the number of member networks.
func (e *Ensemble) Size() int { return len(e.members) }

// Members returns the member networks (shared, not copied).
func (e *Ensemble) Members() []*Network { return e.members }

// Inputs returns the ensemble input width.
func (e *Ensemble) Inputs() int { return e.members[0].Inputs() }

// Outputs returns the ensemble output width.
func (e *Ensemble) Outputs() int { return e.members[0].Outputs() }

// EnsembleScratch is the reusable per-goroutine workspace of one voting
// machine: a per-member network arena, a flat member-prediction matrix and
// the averaging buffer. Like Scratch, it may be reused across any number of
// calls but must never be shared between concurrently running goroutines —
// hand each internal/parallel worker its own via NewScratch.
type EnsembleScratch struct {
	nets []*Scratch
	outs []float64 // row-major [members][Outputs()] member predictions
	avg  []float64

	// res is the append-only result arena behind Vote/Predict: each call
	// takes a capacity-clipped sub-slice for its returned prediction, so the
	// per-call copy allocation amortizes to one chunk allocation per
	// voteArenaChunk floats. Exhausted chunks are abandoned, never recycled,
	// so escaped results stay valid forever.
	res []float64
}

// voteArenaChunk is the result-arena refill size in float64s (a few hundred
// small predictions per allocation).
const voteArenaChunk = 512

// takeResult copies p into the arena and returns the stable copy.
func (s *EnsembleScratch) takeResult(p []float64) []float64 {
	if cap(s.res)-len(s.res) < len(p) {
		n := voteArenaChunk
		if n < len(p) {
			n = len(p)
		}
		s.res = make([]float64, 0, n)
	}
	off := len(s.res)
	s.res = append(s.res, p...)
	return s.res[off:len(s.res):len(s.res)]
}

// NewScratch allocates a voting workspace sized for this ensemble.
func (e *Ensemble) NewScratch() *EnsembleScratch {
	s := &EnsembleScratch{
		nets: make([]*Scratch, len(e.members)),
		outs: make([]float64, len(e.members)*e.Outputs()),
		avg:  make([]float64, e.Outputs()),
	}
	for i, m := range e.members {
		s.nets[i] = m.NewScratch()
	}
	return s
}

func (e *Ensemble) getScratch() *EnsembleScratch {
	if s, ok := e.scratch.Get().(*EnsembleScratch); ok {
		return s
	}
	return e.NewScratch()
}

func (e *Ensemble) putScratch(s *EnsembleScratch) { e.scratch.Put(s) }

// VoteInto is Vote with a caller-owned scratch arena: zero allocations in
// steady state. The returned prediction aliases the scratch and is valid
// until its next use; copy it out to retain it.
func (e *Ensemble) VoteInto(s *EnsembleScratch, input []float64) (avg []float64, confidence float64, err error) {
	width := e.Outputs()
	if len(s.nets) != len(e.members) || len(s.outs) != len(e.members)*width {
		*s = *e.NewScratch()
	}
	for i, m := range e.members {
		dst := s.outs[i*width : (i+1)*width : (i+1)*width]
		if err := m.PredictInto(s.nets[i], input, dst); err != nil {
			return nil, 0, err
		}
	}
	avg = s.avg
	for j := range avg {
		avg[j] = 0
	}
	for i := range e.members {
		for j, v := range s.outs[i*width : (i+1)*width] {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(e.members))
	}
	var spread float64
	for i := range e.members {
		spread += math.Sqrt(MSE(s.outs[i*width:(i+1)*width], avg))
	}
	spread /= float64(len(e.members))
	return avg, 1 / (1 + spread*10), nil
}

// Vote runs every member on the input and returns the averaged prediction
// together with the confidence: 1/(1+meanDisagreement), where the
// disagreement is the mean RMS spread of member outputs around the average.
// Unanimous members give confidence → 1.
func (e *Ensemble) Vote(input []float64) (avg []float64, confidence float64, err error) {
	s := e.getScratch()
	p, conf, err := e.VoteInto(s, input)
	if err != nil {
		e.putScratch(s)
		return nil, 0, err
	}
	// Arena-copy instead of a fresh allocation per call: the pooled
	// scratch's result chunks amortize the escape to ~1 allocation per
	// voteArenaChunk floats (the ensemble-predict kernel gate pins this).
	avg = s.takeResult(p)
	e.putScratch(s)
	return avg, conf, nil
}

// Predict returns only the averaged prediction.
func (e *Ensemble) Predict(input []float64) ([]float64, error) {
	avg, _, err := e.Vote(input)
	return avg, err
}

// VoteBatch scores a whole dataset of input vectors with one scratch arena:
// the averaged predictions (rows of a single flat backing array) and the
// per-input voting confidences. The two result slices are the only
// allocations of the call.
func (e *Ensemble) VoteBatch(inputs [][]float64) (avgs [][]float64, confidences []float64, err error) {
	width := e.Outputs()
	flat := make([]float64, len(inputs)*width)
	avgs = make([][]float64, len(inputs))
	confidences = make([]float64, len(inputs))
	s := e.getScratch()
	defer e.putScratch(s)
	for i, in := range inputs {
		p, conf, err := e.VoteInto(s, in)
		if err != nil {
			return nil, nil, fmt.Errorf("neural: batch input %d: %w", i, err)
		}
		row := flat[i*width : (i+1)*width : (i+1)*width]
		copy(row, p)
		avgs[i] = row
		confidences[i] = conf
	}
	return avgs, confidences, nil
}

// PredictBatch returns only the averaged predictions for a whole dataset.
func (e *Ensemble) PredictBatch(inputs [][]float64) ([][]float64, error) {
	avgs, _, err := e.VoteBatch(inputs)
	return avgs, err
}

// Evaluate returns the mean MSE of the averaged prediction over a dataset
// (the ensemble generalization check).
func (e *Ensemble) Evaluate(d Dataset) (float64, error) {
	s := e.getScratch()
	mse, err := e.EvaluateWith(s, d)
	e.putScratch(s)
	return mse, err
}

// EvaluateWith is Evaluate with a caller-owned scratch arena — zero
// allocations across the whole dataset sweep.
func (e *Ensemble) EvaluateWith(s *EnsembleScratch, d Dataset) (float64, error) {
	if len(d) == 0 {
		return 0, nil
	}
	var sum float64
	for _, smp := range d {
		p, _, err := e.VoteInto(s, smp.Input)
		if err != nil {
			return 0, err
		}
		sum += MSE(p, smp.Target)
	}
	return sum / float64(len(d)), nil
}
