package neural_test

import (
	"bytes"
	"testing"

	"repro/internal/neural"
)

// FuzzWeightFileParse hammers the weight-file loader with arbitrary bytes.
// The contract: Load never panics; when it accepts a stream, the resulting
// ensemble must be fully usable — consistent shape accessors, a working
// forward pass, and a Save→Load round trip that reproduces the accepted
// ensemble's predictions.
func FuzzWeightFileParse(f *testing.F) {
	// A genuine weight file as the structured seed.
	if n, err := neural.New(1, 3, 4, 2); err == nil {
		if e, err := neural.FromNetworks([]*neural.Network{n}); err == nil {
			var buf bytes.Buffer
			if err := e.Save(&buf, map[string]string{"k": "v"}); err == nil {
				f.Add(buf.Bytes())
			}
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"ci-characterization-nn-weights","version":1,"members":[]}`))
	f.Add([]byte(`{"format":"ci-characterization-nn-weights","version":1,"members":[{"sizes":[1,1],"layers":[{"in":1,"out":1,"activation":"tanh","weights":[0],"biases":[0]}]}]}`))
	f.Add([]byte(`{"format":"ci-characterization-nn-weights","version":1,"members":[{"sizes":[2,1],"layers":[{"in":9,"out":9,"activation":"tanh","weights":[],"biases":[]}]}]}`))
	f.Add([]byte(`{"format":"wrong","version":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, meta, err := neural.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if e.Size() < 1 || e.Inputs() < 1 || e.Outputs() < 1 {
			t.Fatalf("accepted ensemble with degenerate shape: size=%d in=%d out=%d",
				e.Size(), e.Inputs(), e.Outputs())
		}
		in := make([]float64, e.Inputs())
		want, err := e.Predict(in)
		if err != nil {
			t.Fatalf("accepted ensemble cannot predict: %v", err)
		}
		var buf bytes.Buffer
		if err := e.Save(&buf, meta); err != nil {
			t.Fatalf("accepted ensemble cannot re-save: %v", err)
		}
		back, _, err := neural.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-saved ensemble rejected: %v", err)
		}
		got, err := back.Predict(in)
		if err != nil {
			t.Fatalf("re-loaded ensemble cannot predict: %v", err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("prediction drifted across re-save: %v vs %v", want, got)
			}
		}
	})
}
