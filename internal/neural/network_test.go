package neural

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 4); err == nil {
		t.Error("single-layer network accepted")
	}
	if _, err := New(1, 4, 0, 2); err == nil {
		t.Error("zero-width layer accepted")
	}
	n, err := New(1, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Inputs() != 4 || n.Outputs() != 2 {
		t.Errorf("widths: %d → %d", n.Inputs(), n.Outputs())
	}
}

func TestPredictWidthCheck(t *testing.T) {
	n, _ := New(1, 3, 2)
	if _, err := n.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong input width accepted")
	}
}

func TestPredictDeterministicAndSeeded(t *testing.T) {
	a, _ := New(42, 4, 6, 2)
	b, _ := New(42, 4, 6, 2)
	c, _ := New(43, 4, 6, 2)
	in := []float64{0.1, 0.5, 0.9, 0.3}
	pa, _ := a.Predict(in)
	pb, _ := b.Predict(in)
	pc, _ := c.Predict(in)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different predictions")
		}
	}
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
}

func TestSigmoidOutputRange(t *testing.T) {
	n, _ := New(7, 5, 8, 3)
	f := func(a, b, c, d, e float64) bool {
		in := []float64{clip(a), clip(b), clip(c), clip(d), clip(e)}
		out, err := n.Predict(in)
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clip(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1)
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("identical MSE = %g", got)
	}
	if got := MSE([]float64{0, 0}, []float64{1, 1}); got != 1 {
		t.Errorf("unit MSE = %g", got)
	}
	if got := MSE(nil, nil); got != 0 {
		t.Errorf("empty MSE = %g", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	n, _ := New(1, 3, 4, 2)
	c := n.Clone()
	in := []float64{0.2, 0.4, 0.6}
	before, _ := n.Predict(in)
	// Mutate the clone's weights directly.
	c.layers[0].w[0] += 10
	after, _ := n.Predict(in)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("mutating a clone changed the original")
		}
	}
	if got := c.Sizes(); got[0] != 3 || got[1] != 4 || got[2] != 2 {
		t.Errorf("clone sizes %v", got)
	}
}

func TestActivationStringsAndDerivs(t *testing.T) {
	if ActTanh.String() != "tanh" || ActSigmoid.String() != "sigmoid" || ActLinear.String() != "linear" {
		t.Error("activation names")
	}
	// Derivative identities expressed on outputs.
	y := ActSigmoid.apply(0.3)
	if math.Abs(ActSigmoid.derivFromOutput(y)-y*(1-y)) > 1e-12 {
		t.Error("sigmoid derivative")
	}
	ty := ActTanh.apply(0.3)
	if math.Abs(ActTanh.derivFromOutput(ty)-(1-ty*ty)) > 1e-12 {
		t.Error("tanh derivative")
	}
	if ActLinear.derivFromOutput(5) != 1 {
		t.Error("linear derivative")
	}
}

func TestXavierInitBounded(t *testing.T) {
	n, _ := New(9, 10, 20, 5)
	for li, l := range n.layers {
		limit := math.Sqrt(6/float64(l.in+l.out)) + 1e-12
		for _, w := range l.w {
			if math.Abs(w) > limit {
				t.Fatalf("layer %d weight %g beyond Xavier limit %g", li, w, limit)
			}
		}
		for _, b := range l.b {
			if b != 0 {
				t.Fatalf("layer %d bias %g, want 0 init", li, b)
			}
		}
	}
}
