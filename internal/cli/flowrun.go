package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/charspec"
	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/neural"
	"repro/internal/parallel"
	"repro/internal/pdn"
	"repro/internal/shmoo"
	"repro/internal/telemetry"
	"repro/internal/testgen"
	"repro/internal/wcr"
)

// The flow bodies, extracted verbatim from cmd/characterize, cmd/shmoo and
// cmd/lotchar so the job service executes the exact code path the binaries
// do. Each runner owns the full telemetry lifecycle (StartTelemetry …
// FinishTelemetry) and writes its human-readable output to out; the only
// additions over the original main bodies are the checkCancel polls at
// phase boundaries, which are no-ops outside the job service.

// CharacterizeFlags holds cmd/characterize's workload flags.
type CharacterizeFlags struct {
	Param         string
	Table1        bool
	LearnOnly     bool
	LearnTests    int
	RandTests     int
	Corner        string
	WeightsOut    string
	DBOut         string
	PatternOut    string
	CycleTraceOut string
	Minimize      bool
	EvolveCond    bool
}

// RegisterCharacterizeFlags installs cmd/characterize's workload flags.
func RegisterCharacterizeFlags(fs *flag.FlagSet) *CharacterizeFlags {
	f := &CharacterizeFlags{}
	fs.StringVar(&f.Param, "param", "tdq", "parameter to characterize: tdq, fmax, vddmin")
	fs.BoolVar(&f.Table1, "table1", false, "reproduce the paper's Table 1 comparison")
	fs.BoolVar(&f.LearnOnly, "learn-only", false, "stop after the learning scheme (train and report the NN ensemble; skip the GA optimization)")
	fs.IntVar(&f.LearnTests, "learn-tests", 300, "number of measured tests in the learning phase")
	fs.IntVar(&f.RandTests, "random-tests", 1000, "random tests in the Table 1 baseline")
	fs.StringVar(&f.Corner, "corner", "tt", "process corner of the device: tt, ff, ss")
	fs.StringVar(&f.WeightsOut, "weights", "", "write the trained NN weight file here")
	fs.StringVar(&f.DBOut, "db", "", "write the worst-case test database here")
	fs.StringVar(&f.PatternOut, "patterns", "", "write the worst-case tests as a text vector file here")
	fs.StringVar(&f.CycleTraceOut, "cycle-trace", "", "write the worst test's per-cycle trace as CSV here (with PDN droop analysis)")
	fs.BoolVar(&f.Minimize, "minimize", false, "minimize the worst-case test for failure analysis")
	fs.BoolVar(&f.EvolveCond, "evolve-conditions", false, "let the GA evolve test conditions (default: fixed at nominal)")
	return f
}

// RunCharacterize runs the characterization flow end to end: the fig. 4
// learning scheme, then (unless -learn-only) the fig. 5 optimization
// scheme, or the Table 1 comparison with -table1.
func RunCharacterize(c *Common, f *CharacterizeFlags, out io.Writer) (err error) {
	stopProfiles, err := c.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	param, err := parseParam(f.Param)
	if err != nil {
		return err
	}
	die, err := parseCorner(f.Corner)
	if err != nil {
		return err
	}

	dev, err := dut.NewDevice(dut.DefaultGeometry(), die)
	if err != nil {
		return err
	}
	tester := ate.New(dev, c.Seed)

	runName := "characterize"
	if f.Table1 {
		runName = "table1"
	}
	tel, err := c.StartTelemetry(runName)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(c.Seed)
	cfg.Parameter = param
	cfg.LearnTests = f.LearnTests
	cfg.Parallelism = c.Parallel
	cfg.Scheduler = c.Scheduler
	cfg.DisableMeasurementCache = c.NoCache
	cfg.Telemetry = tel
	if !f.EvolveCond {
		nominal := testgen.NominalConditions()
		cfg.FixedConditions = &nominal
	}

	if f.Table1 {
		if err := c.checkCancel(); err != nil {
			return err
		}
		t1cfg := core.Table1Config{Flow: cfg, RandomTests: f.RandTests, MarchWindowWords: 100}
		tab, err := core.RunTable1(t1cfg, tester)
		if err != nil {
			return err
		}
		fmt.Fprint(out, tab.Format())
		PrintCacheSummary(out, tab.CacheHits, tab.CacheMisses)
		return c.FinishTelemetry(out, tel, tab.Stats)
	}

	char, err := core.NewCharacterizer(cfg, tester)
	if err != nil {
		return err
	}
	defer char.Close()

	// With -cache-dir, recover the previous identical run's memoized
	// fitness values: the store scope binds parameter, geometry, die and
	// seed, so only entries this exact flow produced ever load.
	memoStore, err := c.OpenCacheStore(char.MemoCacheScope())
	if err != nil {
		return err
	}
	if memoStore != nil {
		if n := char.PrimeMemoCache(memoStore); n > 0 {
			fmt.Fprintf(out, "disk cache: primed %d memoized measurements from %s\n", n, c.CacheDir)
		}
	}

	if err := c.checkCancel(); err != nil {
		return err
	}
	fmt.Fprintf(out, "Learning scheme (fig. 4): %d random tests on %s die, parameter %s\n",
		cfg.LearnTests, die.Corner, param)
	learned, err := char.Learn()
	if err != nil {
		return err
	}
	stats := learned.DSV.Stats()
	fmt.Fprintf(out, "  trip points: min %.3f %s (%s), max %.3f %s, spread %.3f %s\n",
		stats.Min, param.Unit(), stats.MinTest, stats.Max, param.Unit(), stats.Range, param.Unit())
	fmt.Fprintf(out, "  SUTP cost: first search %d measurements, follow-up mean %.1f\n",
		stats.FirstSearchCost, stats.FollowupSearchCost)
	_, isMin := param.SpecValue()
	if iv, err := learned.DSV.WorstCaseInterval(isMin, 0.05, 1000, c.Seed); err == nil {
		fmt.Fprintf(out, "  worst trip bootstrap 95%% interval: [%.3f, %.3f] %s (observed %.3f)\n",
			iv.Lo, iv.Hi, param.Unit(), iv.Observed)
	}
	fmt.Fprintf(out, "  ensemble of %d networks, MSE %.5f\n", learned.Ensemble.Size(), learned.EnsembleValErr)
	for i, rep := range learned.Reports {
		fmt.Fprintf(out, "  member %d: %d epochs, train %.5f, val %.5f, learned=%v generalized=%v\n",
			i, rep.Epochs, rep.TrainErr, rep.ValErr, rep.Learned, rep.Generalized)
	}

	imps, err := neural.PermutationImportance(learned.Ensemble, learned.Dataset, c.Seed, 3)
	if err != nil {
		return err
	}
	featNames := testgen.FeatureNames()
	fmt.Fprintf(out, "  NN feature importance (top 4):")
	for i, im := range imps {
		if i >= 4 {
			break
		}
		fmt.Fprintf(out, " %s=%.5f", featNames[im.Feature], im.DeltaMSE)
	}
	fmt.Fprintln(out)

	if f.WeightsOut != "" {
		if err := char.SaveWeights(f.WeightsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "  weight file written to %s\n", f.WeightsOut)
	}

	if f.LearnOnly {
		hits, misses := char.CacheStats()
		PrintCacheSummary(out, hits, misses)
		s := tester.Stats()
		fmt.Fprintf(out, "Tester totals: %d measurements, %d vectors, %.2f s simulated test time\n",
			s.Measurements, s.VectorsApplied, s.TestTimeSec)
		return c.FinishTelemetry(out, tel, s)
	}

	if err := c.checkCancel(); err != nil {
		return err
	}
	fmt.Fprintln(out, "Optimization scheme (fig. 5): NN-seeded dual-chromosome GA")
	opt, err := char.Optimize()
	if err != nil {
		return err
	}
	best, ok := opt.Database.Worst()
	if !ok {
		return fmt.Errorf("optimization produced no worst-case test")
	}
	fmt.Fprintf(out, "  GA: %d generations, %d evaluations, %d restarts, %d ATE measurements\n",
		opt.GA.Generations, opt.GA.Evaluations, opt.GA.Restarts, opt.Measurements)
	hits, misses := char.CacheStats()
	PrintCacheSummary(out, hits, misses)
	if memoStore != nil {
		n, err := char.PersistMemoCache(memoStore)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  disk cache: %d memoized measurements persisted (%d bytes on disk)\n",
			n, memoStore.BytesOnDisk())
		RecordDiskCache(tel, memoStore)
	}
	fmt.Fprintf(out, "  worst case: %s  WCR %.3f (%s)  %s = %.3f %s\n",
		best.Test.Name, best.WCR, best.Class, param, best.Value, param.Unit())
	if best.Class == wcr.Weakness || best.Class == wcr.Fail {
		fmt.Fprintln(out, "  → design weakness candidate: schedule wafer-probe / circuit-level analysis")
	}
	fmt.Fprintf(out, "  database: %d entries\n", opt.Database.Len())
	for i, e := range opt.Database.Entries {
		if i >= 5 {
			fmt.Fprintf(out, "  … %d more\n", opt.Database.Len()-5)
			break
		}
		fmt.Fprintf(out, "   %2d. %-10s WCR %.3f (%s) %.3f %s\n", i+1, e.Test.Name, e.WCR, e.Class, e.Value, param.Unit())
	}

	// Fuzzy rule-base diagnosis of the worst test (§5's linguistic output).
	diag, err := core.NewDiagnosis()
	if err != nil {
		return err
	}
	expl, err := diag.ExplainTest(best.Test, char.Generator().Limits())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  diagnosis: %s\n", expl)

	if f.Minimize {
		if err := c.checkCancel(); err != nil {
			return err
		}
		res, err := char.Minimize(best.Test, core.DefaultMinimizeConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  minimized: %d → %d vectors (%.1f×), WCR %.3f → %.3f, %d probes\n",
			len(res.Original.Seq), len(res.Minimized.Seq), res.ReductionFactor(),
			res.OriginalWCR, res.MinimizedWCR, res.Probes)
	}

	if f.DBOut != "" {
		if err := opt.Database.SaveFile(f.DBOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "  database written to %s\n", f.DBOut)
	}
	if f.CycleTraceOut != "" {
		records, _, err := dev.Trace(best.Test)
		if err != nil {
			return err
		}
		fh, err := os.Create(f.CycleTraceOut)
		if err != nil {
			return err
		}
		if err := dut.WriteTraceCSV(fh, records); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  trace: %d cycles written to %s\n", len(records), f.CycleTraceOut)
		if start, end, mean, ok := dut.HotWindow(records, 32); ok {
			fmt.Fprintf(out, "  hot window: cycles %d–%d (mean SSN %.2f)\n", start, end, mean)
		}
		network := pdn.Default()
		droop, err := network.Simulate(records, best.Test.Cond.VddV, best.Test.Cond.ClockMHz)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  PDN: peak droop %.3f V at %.1f ns (cycle %d), mean %.4f V; network f0 %.1f MHz, ζ %.2f\n",
			droop.PeakDroopV, droop.PeakAtNS, droop.PeakCycle, droop.MeanDroopV,
			network.ResonantHz()/1e6, network.DampingRatio())
	}

	if f.PatternOut != "" {
		fh, err := os.Create(f.PatternOut)
		if err != nil {
			return err
		}
		tests := make([]testgen.Test, 0, opt.Database.Len())
		for _, e := range opt.Database.Entries {
			tests = append(tests, e.Test)
		}
		if err := testgen.WriteTests(fh, tests); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  %d pattern(s) written to %s\n", len(tests), f.PatternOut)
	}

	s := tester.Stats()
	fmt.Fprintf(out, "Tester totals: %d measurements, %d vectors, %.2f s simulated test time\n",
		s.Measurements, s.VectorsApplied, s.TestTimeSec)
	return c.FinishTelemetry(out, tel, s)
}

// ShmooFlags holds cmd/shmoo's workload flags.
type ShmooFlags struct {
	Tests  int
	DBPath string
	VddMin float64
	VddMax float64
	XMin   float64
	XMax   float64
}

// RegisterShmooFlags installs cmd/shmoo's workload flags.
func RegisterShmooFlags(fs *flag.FlagSet) *ShmooFlags {
	f := &ShmooFlags{}
	fs.IntVar(&f.Tests, "tests", 1000, "number of random tests to overlay")
	fs.StringVar(&f.DBPath, "db", "", "also overlay the tests of this worst-case database")
	fs.Float64Var(&f.VddMin, "vdd-min", 1.4, "Y axis lower bound (V)")
	fs.Float64Var(&f.VddMax, "vdd-max", 2.2, "Y axis upper bound (V)")
	fs.Float64Var(&f.XMin, "tdq-min", 18, "X axis lower bound (ns)")
	fs.Float64Var(&f.XMax, "tdq-max", 36, "X axis upper bound (ns)")
	return f
}

// RunShmoo regenerates the fig. 8 overlay shmoo plot.
func RunShmoo(c *Common, f *ShmooFlags, out io.Writer) (err error) {
	stopProfiles, err := c.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	dev, err := dut.NewDevice(dut.DefaultGeometry(), dut.NewDie(0, dut.CornerTypical))
	if err != nil {
		return err
	}
	tester := ate.New(dev, c.Seed)
	tel, err := c.StartTelemetry("shmoo")
	if err != nil {
		return err
	}
	cond := testgen.NominalConditions()
	gen := testgen.NewRandomGenerator(c.Seed+1, dev.Geometry().Words(), testgen.DefaultConditionLimits())
	gen.FixedConditions = &cond

	x := shmoo.DefaultTDQAxis()
	x.Min, x.Max = f.XMin, f.XMax
	y := shmoo.DefaultVddAxis()
	y.Min, y.Max = f.VddMin, f.VddMax

	plot, err := shmoo.NewPlot(x, y)
	if err != nil {
		return err
	}
	batch := gen.Batch(f.Tests)
	if f.DBPath != "" {
		db, err := core.LoadDatabaseFile(f.DBPath)
		if err != nil {
			return err
		}
		for _, e := range db.Entries {
			batch = append(batch, e.Test)
		}
		fmt.Fprintf(out, "overlaying %d database tests on top of %d random tests\n", db.Len(), f.Tests)
	}
	if err := c.checkCancel(); err != nil {
		return err
	}
	ph := tel.StartPhase("shmoo-overlay")
	sweep := ph.Span()
	plot.OnTest = func(index int, cost ate.Stats) {
		sweep.Event("test", telemetry.I("i", index),
			telemetry.I("measurements", cost.Measurements),
			telemetry.I("vectors", cost.VectorsApplied))
		tel.RecordItem("shmoo-test", index+1, len(batch))
	}
	if c.Scheduler == "batch" {
		if err := plot.AddTestsParallel(tester, batch, c.Seed, c.Parallel); err != nil {
			return err
		}
	} else {
		fl := parallel.NewFleet(parallel.Bound(c.Parallel, len(batch)))
		defer fl.Close()
		if err := plot.AddTestsOn(fl, tester, batch, c.Seed); err != nil {
			return err
		}
	}
	plot.OnTest = nil
	ph.End(Cost(tester.Stats()))

	fmt.Fprint(out, plot.Render())
	fmt.Fprintf(out, "worst-case trip point variation: %.2f ns\n", plot.WorstCaseVariation())
	allPass, anyPass, ok := plot.BoundarySpread(plot.Y.Steps / 2)
	if ok {
		fmt.Fprintf(out, "at mid supply: all tests pass up to %.2f ns, some up to %.2f ns\n", allPass, anyPass)
	}
	s := tester.Stats()
	fmt.Fprintf(out, "tester: %d measurements, %.1f s simulated test time\n", s.Measurements, s.TestTimeSec)
	return c.FinishTelemetry(out, tel, s)
}

// LotFlags holds cmd/lotchar's workload flags.
type LotFlags struct {
	DBPath    string
	Dies      int
	Wafers    int
	Guardband float64
}

// RegisterLotFlags installs cmd/lotchar's workload flags.
func RegisterLotFlags(fs *flag.FlagSet) *LotFlags {
	f := &LotFlags{}
	fs.StringVar(&f.DBPath, "db", "", "worst-case database from 'characterize -db' (optional)")
	fs.IntVar(&f.Dies, "dies", 20, "number of dies in the sample lot (with -wafers: dies per wafer)")
	fs.IntVar(&f.Wafers, "wafers", 0, "screen a wafer lot with spatially structured process variation (0 = flat i.i.d. lot)")
	fs.Float64Var(&f.Guardband, "guardband", 0.05, "spec extraction guardband fraction")
	return f
}

// printLotCost prints the one-line lot cost summary: throughput, total
// ATE measurements, and disk-cache effectiveness when a store is attached.
func printLotCost(out io.Writer, rep *core.LotReport, store *cachestore.Store, wallSec float64) {
	dps := 0.0
	if wallSec > 0 {
		dps = float64(rep.DieCount) / wallSec
	}
	line := fmt.Sprintf("lot cost: %d dies in %.2fs (%.1f dies/sec), %d ATE measurements",
		rep.DieCount, wallSec, dps, rep.Measurements)
	if store != nil {
		st := store.Stats()
		line += fmt.Sprintf(", disk cache hit rate %.1f%% (%d/%d, %d bytes on disk)",
			100*telemetry.HitRate(st.Hits, st.Misses), st.Hits, st.Hits+st.Misses, st.BytesOnDisk)
	}
	fmt.Fprintln(out, line)
}

// RunLot screens a lot of dies with the worst-case tests and extracts the
// final device specification on the worst die.
func RunLot(c *Common, f *LotFlags, out io.Writer) (err error) {
	if f.Dies < 1 {
		return fmt.Errorf("-dies must be at least 1, got %d", f.Dies)
	}
	if f.Wafers < 0 {
		return fmt.Errorf("-wafers must not be negative, got %d", f.Wafers)
	}

	stopProfiles, err := c.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	tel, err := c.StartTelemetry("lotchar")
	if err != nil {
		return err
	}

	geom := dut.DefaultGeometry()
	cond := testgen.NominalConditions()

	// Assemble the screened test set: the database tests (or a built-in
	// coordinated worst-case pattern) plus a March C- baseline.
	var tests []testgen.Test
	if f.DBPath != "" {
		db, err := core.LoadDatabaseFile(f.DBPath)
		if err != nil {
			return err
		}
		for i, e := range db.Entries {
			if i >= 5 {
				break // the five worst are plenty for a lot screen
			}
			tests = append(tests, e.Test)
		}
		fmt.Fprintf(out, "loaded %d worst-case tests from %s\n", len(tests), f.DBPath)
	} else {
		words := geom.Words()
		seq := make(testgen.Sequence, 0, 800)
		for i := 0; i < 200; i++ {
			base := uint32(0)
			if i%2 == 1 {
				base = words - 2
			}
			seq = append(seq,
				testgen.Vector{Op: testgen.OpWrite, Addr: base, Data: 0},
				testgen.Vector{Op: testgen.OpWrite, Addr: base + 1, Data: 0xFFFFFFFF},
			)
		}
		tests = append(tests, testgen.Test{Name: "WORST-BUILTIN", Seq: seq, Cond: cond})
		fmt.Fprintln(out, "no database given; using the built-in coordinated worst-case pattern")
	}
	march, err := testgen.MarchTest(testgen.MarchCMinus(), 0, 100, 0x55555555, cond)
	if err != nil {
		return err
	}
	tests = append(tests, march)

	// --- Lot screen ---------------------------------------------------
	// Flat lots keep the legacy i.i.d. sample; -wafers switches to the
	// spatial wafer model. Either way the dies stream through the bounded
	// pipeline — per-die results are not retained, so lot size no longer
	// bounds memory.
	var src dut.DieSource
	if f.Wafers > 0 {
		wl, err := dut.NewWaferLot(c.Seed, f.Wafers, f.Dies)
		if err != nil {
			return err
		}
		src = wl
	} else {
		src = dut.LotSlice(dut.NewDieLot(c.Seed, f.Dies))
	}
	store, err := c.OpenCacheStore(core.LotCacheScope)
	if err != nil {
		return err
	}
	lotOpts := core.LotOptions{
		Workers:   c.Parallel,
		Cache:     store,
		Telemetry: tel,
	}
	if c.Scheduler != "batch" {
		fl := parallel.NewFleet(parallel.Bound(c.Parallel, src.Len()))
		defer fl.Close()
		lotOpts.Fleet = fl
	}
	if err := c.checkCancel(); err != nil {
		return err
	}
	screenStart := time.Now()
	rep, err := core.ScreenLotStream(ate.TDQ, tests, src, geom, c.Seed, lotOpts)
	if err != nil {
		return err
	}
	screenWall := time.Since(screenStart).Seconds()
	fmt.Fprintln(out)
	fmt.Fprint(out, rep.Format())
	printLotCost(out, rep, store, screenWall)

	// --- Spec extraction on the worst die -----------------------------
	var worstDie *dut.Die
	for i := 0; i < src.Len(); i++ {
		if d := src.Die(i); d.ID == rep.WorstDie.DieID {
			worstDie = d
			break
		}
	}
	dev, err := dut.NewDevice(geom, worstDie)
	if err != nil {
		return err
	}
	tester := ate.New(dev, c.Seed+999)
	cfg := charspec.DefaultConfig()
	cfg.Guardband = f.Guardband
	if err := c.checkCancel(); err != nil {
		return err
	}
	ph := tel.StartPhase("spec-extract")
	spec, err := charspec.Extract(tester, ate.TDQ, tests, cfg)
	ph.End(Cost(tester.Stats()))
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "environmental sweep on the worst die (#%d, %s):\n", worstDie.ID, worstDie.Corner)
	fmt.Fprint(out, spec.Format())

	total := rep.Stats
	total.Add(tester.Stats())
	return c.FinishTelemetry(out, tel, total)
}
