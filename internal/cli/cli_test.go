package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/telemetry"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 1 || c.Parallel != 0 || c.NoCache || c.TelemetryEnabled() {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	err := fs.Parse([]string{
		"-seed", "7", "-parallel", "2", "-no-cache",
		"-trace", "t.jsonl", "-metrics", "m.json", "-report",
		"-cpuprofile", "cpu.pb.gz", "-memprofile", "mem.pb.gz",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 || c.Parallel != 2 || !c.NoCache {
		t.Errorf("base flags wrong: %+v", c)
	}
	if c.TracePath != "t.jsonl" || c.MetricsPath != "m.json" || !c.Report {
		t.Errorf("telemetry flags wrong: %+v", c)
	}
	if !c.TelemetryEnabled() {
		t.Error("telemetry not enabled")
	}
	if c.CPUProfilePath != "cpu.pb.gz" || c.MemProfilePath != "mem.pb.gz" {
		t.Errorf("profile flags wrong: %+v", c)
	}
}

func TestStartProfilesDisabledIsNoOp(t *testing.T) {
	c := &Common{}
	stop, err := c.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	c := &Common{
		CPUProfilePath: filepath.Join(dir, "cpu.pb.gz"),
		MemProfilePath: filepath.Join(dir, "mem.pb.gz"),
	}
	stop, err := c.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0.0
	for i := 0; i < 1_000_000; i++ {
		sink += float64(i % 7)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{c.CPUProfilePath, c.MemProfilePath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	c := &Common{CPUProfilePath: filepath.Join(t.TempDir(), "missing-dir", "cpu.pb.gz")}
	if _, err := c.StartProfiles(); err == nil {
		t.Error("expected error for unwritable cpu profile path")
	}
}

func TestStartTelemetryDisabled(t *testing.T) {
	c := &Common{}
	tel, err := c.StartTelemetry("unit")
	if err != nil {
		t.Fatal(err)
	}
	if tel != nil {
		t.Error("telemetry handle created with no outputs requested")
	}
	var buf bytes.Buffer
	if err := c.FinishTelemetry(&buf, tel, ate.Stats{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled telemetry produced output: %q", buf.String())
	}
}

func TestStartFinishTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	c := &Common{
		TracePath:   filepath.Join(dir, "trace.jsonl"),
		MetricsPath: filepath.Join(dir, "metrics.json"),
		Report:      true,
	}
	tel, err := c.StartTelemetry("unit-run")
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil {
		t.Fatal("no telemetry handle")
	}
	tel.StartPhase("work").End(Cost(ate.Stats{Measurements: 3, VectorsApplied: 30, TestTimeSec: 0.5}))
	tel.RecordSearch(4, 10, true)

	var buf bytes.Buffer
	if err := c.FinishTelemetry(&buf, tel, ate.Stats{Measurements: 3, VectorsApplied: 30, TestTimeSec: 0.5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run report: unit-run", "work", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	trace, err := os.ReadFile(c.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short: %q", string(trace))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line %d invalid: %v", i, err)
		}
	}

	metrics, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(metrics, &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, string(metrics))
	}
	counters, ok := snap["counters"].(map[string]any)
	if !ok || counters["search_total"] != float64(1) {
		t.Errorf("metrics snapshot wrong: %v", snap)
	}
}

func TestRegisterListenFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if c.Listen != "127.0.0.1:0" {
		t.Errorf("Listen = %q", c.Listen)
	}
	if !c.TelemetryEnabled() {
		t.Error("-listen alone should enable telemetry")
	}
}

func TestStartTelemetryWithListenServesLive(t *testing.T) {
	dir := t.TempDir()
	c := &Common{
		Listen:    "127.0.0.1:0",
		TracePath: filepath.Join(dir, "trace.jsonl"),
	}
	tel, err := c.StartTelemetry("live-run")
	if err != nil {
		t.Fatal(err)
	}
	if c.server == nil || c.progress == nil {
		t.Fatal("no live server started")
	}
	base := "http://" + c.server.Addr()

	tel.StartPhase("work").End(Cost(ate.Stats{Measurements: 2}))
	tel.RecordSearch(2, 10, true)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `repro_search_total{run="live-run"} 1`) {
		t.Errorf("/metrics = %d\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/readyz during run = %d", resp.StatusCode)
	}

	var buf bytes.Buffer
	if err := c.FinishTelemetry(&buf, tel, ate.Stats{Measurements: 2}); err != nil {
		t.Fatal(err)
	}
	if c.server != nil {
		t.Error("server handle not cleared after finish")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still serving after FinishTelemetry")
	}
}

// TestTraceBytesIdenticalWithListen pins the -listen determinism contract
// at the CLI layer: the live server and its progress observer must not
// change a single trace byte.
func TestTraceBytesIdenticalWithListen(t *testing.T) {
	dir := t.TempDir()
	record := func(listen string, path string) []byte {
		t.Helper()
		c := &Common{Listen: listen, TracePath: filepath.Join(dir, path)}
		tel, err := c.StartTelemetry("pin-run")
		if err != nil {
			t.Fatal(err)
		}
		ph := tel.StartPhase("learn")
		for i := 0; i < 5; i++ {
			tel.RecordSearch(3+i, 20, true)
			tel.RecordItem("learn-test", i+1, 5)
			ph.Span().Event("trip", telemetry.I("i", i), telemetry.F("trip", 1.0+float64(i)/10))
		}
		ph.End(Cost(ate.Stats{Measurements: 25, TestTimeSec: 1.5}))
		tel.RecordGeneration(1, 1.05)
		if err := c.FinishTelemetry(io.Discard, tel, ate.Stats{Measurements: 25}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(c.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	plain := record("", "plain.jsonl")
	listened := record("127.0.0.1:0", "listened.jsonl")
	if !bytes.Equal(plain, listened) {
		t.Error("-listen changed the trace bytes")
	}
}

func TestStartTelemetryBadListenAddr(t *testing.T) {
	c := &Common{Listen: "127.0.0.1:notaport"}
	if _, err := c.StartTelemetry("x"); err == nil {
		t.Error("expected error for unparseable listen address")
	}
}

func TestFinishTelemetryMetricsSinkError(t *testing.T) {
	c := &Common{MetricsPath: filepath.Join(t.TempDir(), "missing-dir", "m.json")}
	tel, err := c.StartTelemetry("sink-err")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FinishTelemetry(io.Discard, tel, ate.Stats{}); err == nil {
		t.Error("expected error for unwritable metrics path")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("pipe gone") }

func TestFinishTelemetryReportSinkError(t *testing.T) {
	c := &Common{Report: true}
	tel, err := c.StartTelemetry("sink-err")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FinishTelemetry(failWriter{}, tel, ate.Stats{}); err == nil {
		t.Error("expected error when the report writer fails")
	}
}

func TestDeltaAndCost(t *testing.T) {
	before := ate.Stats{Measurements: 10, VectorsApplied: 100, Profiles: 1, TestTimeSec: 1}
	after := ate.Stats{Measurements: 15, VectorsApplied: 160, Profiles: 3, TestTimeSec: 2.5}
	d := Delta(before, after)
	if d.Measurements != 5 || d.Vectors != 60 || d.Profiles != 2 || d.SimTimeSec != 1.5 {
		t.Errorf("delta = %+v", d)
	}
	c := Cost(after)
	if c.Measurements != 15 || c.Vectors != 160 || c.Profiles != 3 || c.SimTimeSec != 2.5 {
		t.Errorf("cost = %+v", c)
	}
}

func TestPrintCacheSummary(t *testing.T) {
	var buf bytes.Buffer
	PrintCacheSummary(&buf, 6, 4)
	if got := buf.String(); !strings.Contains(got, "6 hits / 4 misses") || !strings.Contains(got, "60.0%") {
		t.Errorf("summary = %q", got)
	}
	buf.Reset()
	PrintCacheSummary(&buf, 0, 0)
	if !strings.Contains(buf.String(), "no lookups") {
		t.Errorf("disabled summary = %q", buf.String())
	}
}

func TestOpenCacheStore(t *testing.T) {
	c := &Common{}
	s, err := c.OpenCacheStore(1)
	if err != nil || s != nil {
		t.Fatalf("unset -cache-dir: store=%v err=%v, want nil/nil", s, err)
	}
	c.CacheDir = t.TempDir() + "/cache"
	s, err = c.OpenCacheStore(7)
	if err != nil || s == nil {
		t.Fatalf("OpenCacheStore: store=%v err=%v", s, err)
	}
	s.Put(1, []byte("x"))
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopening under the same scope recovers the entry; a different
	// scope skips the segment.
	same, err := c.OpenCacheStore(7)
	if err != nil || same.Len() != 1 {
		t.Fatalf("reopen: len=%d err=%v", same.Len(), err)
	}
	other, err := c.OpenCacheStore(8)
	if err != nil || other.Len() != 0 {
		t.Fatalf("foreign scope: len=%d err=%v", other.Len(), err)
	}
}
