package cli

// Flow-spec construction and execution: NewFlowRun must build the owning
// binary's exact flag set, reject off-allowlist args with pinned one-line
// errors, and run every flow body to a finalized ledger record — the
// contract the charserved job service (internal/jobs) is built on.

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlowNamesAndArgs(t *testing.T) {
	names := FlowNames()
	want := []string{"learn", "lot", "optimize", "shmoo", "table1"}
	if len(names) != len(want) {
		t.Fatalf("FlowNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FlowNames() = %v, want %v", names, want)
		}
	}
	args := FlowArgs("shmoo")
	if len(args) != 5 || args[0] != "tdq-max" {
		t.Fatalf("FlowArgs(shmoo) = %v", args)
	}
	if FlowArgs("nope") != nil {
		t.Fatal("FlowArgs of unknown flow should be nil")
	}
}

func TestNewFlowRunValidation(t *testing.T) {
	cases := []struct {
		spec FlowSpec
		want string
	}{
		{FlowSpec{Flow: "frobnicate"}, `unknown flow "frobnicate"`},
		{FlowSpec{Flow: "shmoo", Args: map[string]string{"dies": "3"}}, `flow "shmoo" does not accept arg "dies"`},
		{FlowSpec{Flow: "learn", Args: map[string]string{"learn-tests": "many"}}, `arg learn-tests="many"`},
		{FlowSpec{Flow: "learn", Args: map[string]string{"weights": "w.json"}}, `does not accept arg "weights"`},
	}
	for _, tc := range cases {
		_, err := NewFlowRun(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("NewFlowRun(%+v): err %v, want substring %q", tc.spec, err, tc.want)
		}
	}
}

// TestFlowRunsFinalize runs every flow end to end at small sizes into a
// run ledger and checks each finalizes with a run ID and fingerprint, and
// that the same spec re-run (even at another parallelism) collides into
// the same record.
func TestFlowRunsFinalize(t *testing.T) {
	specs := []FlowSpec{
		{Flow: "learn", Seed: 7, Args: map[string]string{"learn-tests": "12"}},
		{Flow: "optimize", Seed: 3, Args: map[string]string{"learn-tests": "10"}},
		{Flow: "table1", Seed: 5, Args: map[string]string{"learn-tests": "10", "random-tests": "30"}},
		{Flow: "shmoo", Seed: 9, Args: map[string]string{"tests": "6", "vdd-min": "1.40"}},
		{Flow: "lot", Seed: 11, Args: map[string]string{"dies": "4", "wafers": "2", "guardband": "0.05"}},
	}
	runDir := t.TempDir()
	seen := map[string]string{}
	for _, spec := range specs {
		var firstID, firstFP string
		for _, par := range []int{1, 3} {
			fr, err := NewFlowRun(spec)
			if err != nil {
				t.Fatalf("NewFlowRun(%s): %v", spec.Flow, err)
			}
			if got := fr.Spec().Flow; got != spec.Flow {
				t.Fatalf("Spec().Flow = %q, want %q", got, spec.Flow)
			}
			fr.Common.Embedded = true
			fr.Common.Parallel = par
			fr.Common.RunDir = runDir
			var out bytes.Buffer
			if err := fr.Run(&out); err != nil {
				t.Fatalf("%s run (parallel %d): %v", spec.Flow, par, err)
			}
			id, fp := fr.Common.LastRun()
			if id == "" || fp == "" {
				t.Fatalf("%s: no ledger record (id %q, fp %q)", spec.Flow, id, fp)
			}
			if firstID == "" {
				firstID, firstFP = id, fp
			} else if id != firstID || fp != firstFP {
				t.Fatalf("%s: parallel %d minted %s/%s, want %s/%s", spec.Flow, par, id, fp, firstID, firstFP)
			}
		}
		seen[spec.Flow] = firstID
	}
	// Different flows must not collide.
	ids := map[string]bool{}
	for flow, id := range seen {
		if ids[id] {
			t.Fatalf("flow %s collided with another flow on run ID %s", flow, id)
		}
		ids[id] = true
	}
}

// TestLearnOnlyStopsBeforeOptimize pins the learn preset: the learn flow
// must not run the GA (its output reports the ensemble and stops).
func TestLearnOnlyStopsBeforeOptimize(t *testing.T) {
	fr, err := NewFlowRun(FlowSpec{Flow: "learn", Seed: 2, Args: map[string]string{"learn-tests": "10"}})
	if err != nil {
		t.Fatal(err)
	}
	fr.Common.Embedded = true
	var out bytes.Buffer
	if err := fr.Run(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "worst case") && strings.Contains(text, "generation") {
		t.Fatalf("learn flow appears to have run the optimization scheme:\n%s", text)
	}
	if !strings.Contains(text, "Tester totals") {
		t.Fatalf("learn flow did not print tester totals:\n%s", text)
	}
}

// TestFlowCancellation pins the cooperative-cancel contract: a CheckCancel
// that trips immediately aborts the flow with that error before any phase
// runs.
func TestFlowCancellation(t *testing.T) {
	for _, flow := range []string{"optimize", "shmoo", "lot"} {
		spec := FlowSpec{Flow: flow, Seed: 1}
		fr, err := NewFlowRun(spec)
		if err != nil {
			t.Fatal(err)
		}
		fr.Common.Embedded = true
		sentinel := errTest("stop right there")
		fr.Common.CheckCancel = func() error { return sentinel }
		var out bytes.Buffer
		if err := fr.Run(&out); err != sentinel { //nolint:errorlint // identity is the contract
			t.Fatalf("%s with tripped CheckCancel: err %v, want the sentinel", flow, err)
		}
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
