package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// Run-ledger finalization: on a clean FinishTelemetry with -run-dir set, the
// run's deterministic artifacts (manifest, report, metrics, trace) become a
// content-addressed runstore record, and everything scheduling- or
// wall-clock-dependent lands in the record's attempt sidecar. The manifest
// hashes only identity-bearing flags, so re-running the same workload at a
// different -parallel (or with different output paths) appends an attempt to
// the same record instead of minting a new one.

// nonIdentityFlags are the shared flags that change how the run executes or
// where its outputs go — never what is computed — and are therefore excluded
// from the manifest's identity flag set. Everything else the binary defines
// (workload flags like -param, -corner, -learn-tests, and shared semantic
// flags like -seed and -no-cache) is identity.
var nonIdentityFlags = map[string]bool{
	"parallel":      true,
	"scheduler":     true,
	"trace":         true,
	"metrics":       true,
	"report":        true,
	"listen":        true,
	"crash-dir":     true,
	"stall-timeout": true,
	"inject-fault":  true,
	"cpuprofile":    true,
	"memprofile":    true,
	"run-dir":       true,
	"cache-dir":     true, // the warmth tier, not the path, is identity
}

// identityFlags returns the resolved values of every identity-bearing flag.
// Nil when the Common was built without Register (tests).
func (c *Common) identityFlags() map[string]string {
	return c.flagMap(func(name string) bool { return !nonIdentityFlags[name] })
}

// allFlags returns every resolved flag value, for the attempt sidecar.
func (c *Common) allFlags() map[string]string {
	return c.flagMap(func(string) bool { return true })
}

func (c *Common) flagMap(keep func(name string) bool) map[string]string {
	if c.fs == nil {
		return nil
	}
	out := make(map[string]string)
	c.fs.VisitAll(func(f *flag.Flag) {
		if keep(f.Name) {
			out[f.Name] = f.Value.String()
		}
	})
	return out
}

// schedulerName resolves the -scheduler flag to the scheduler actually used
// ("" means the fleet default).
func (c *Common) schedulerName() string {
	if c.Scheduler == "" {
		return "fleet"
	}
	return c.Scheduler
}

// cacheWarmth classifies the persistent-cache reuse tier the run saw.
func (c *Common) cacheWarmth(rep *telemetry.Report) string {
	switch {
	case c.CacheDir == "":
		return "none"
	case rep.DiskCache.LoadedEntries > 0:
		return "warm"
	default:
		return "cold"
	}
}

// runInfoLabels builds the /metrics repro_run_info label closure. Called per
// scrape so the run_fingerprint label tracks the live trace digest.
func (c *Common) runInfoLabels(tel *telemetry.Telemetry) func() map[string]string {
	return func() map[string]string {
		return map[string]string{
			"flow":            c.runName,
			"seed":            strconv.FormatInt(c.Seed, 10),
			"scheduler":       c.schedulerName(),
			"run_fingerprint": tel.Fingerprint(),
		}
	}
}

// finalizeRun builds and stores the run's ledger record plus its attempt
// sidecar line. No-op without -run-dir. The ledger-owned temp trace (when
// the user gave no -trace of their own) is deleted on the way out.
func (c *Common) finalizeRun(rep *telemetry.Report) error {
	if c.ledger == nil {
		return nil
	}
	if c.autoTrace {
		defer os.Remove(c.tracePath)
	}
	trace, err := os.ReadFile(c.tracePath)
	if err != nil {
		return fmt.Errorf("reading trace for ledger: %w", err)
	}

	man := runstore.Manifest{
		Version:     runstore.FormatVersion,
		Flow:        c.runName,
		Seed:        c.Seed,
		Flags:       c.identityFlags(),
		CacheWarmth: c.cacheWarmth(rep),
		TraceDigest: rep.Fingerprint,
	}
	reportBytes, err := deterministicReport(rep)
	if err != nil {
		return err
	}
	var metricsBuf bytes.Buffer
	stripped := rep.Metrics.StripNonDeterministic()
	if err := stripped.WriteJSON(&metricsBuf); err != nil {
		return err
	}
	rec := &runstore.Record{
		Manifest: man,
		Report:   reportBytes,
		Metrics:  metricsBuf.Bytes(),
		Trace:    trace,
	}
	id, created, err := c.ledger.Put(rec)
	if err != nil {
		return err
	}
	c.lastRunID = id
	if err := c.ledger.AppendAttempt(id, c.buildAttempt(rep)); err != nil {
		return err
	}
	status := "existing"
	if created {
		status = "new"
	}
	fmt.Fprintf(os.Stderr, "run ledger: recorded %s (%s) in %s\n", id, status, c.ledger.Dir())
	return nil
}

// deterministicReport renders the report artifact with every
// non-deterministic field zeroed: wall-clock seconds per phase and in total,
// pool occupancy, and the nd_-prefixed registry metrics. Two identical runs
// at different -parallel therefore store byte-identical report sections.
func deterministicReport(rep *telemetry.Report) ([]byte, error) {
	det := *rep
	det.NonDeterministic = telemetry.NonDet{}
	det.Phases = make([]telemetry.Phase, len(rep.Phases))
	copy(det.Phases, rep.Phases)
	for i := range det.Phases {
		det.Phases[i].WallSeconds = 0
	}
	det.Metrics = rep.Metrics.StripNonDeterministic()
	var buf bytes.Buffer
	if err := det.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildAttempt collects the ND side of this execution for the sidecar.
func (c *Common) buildAttempt(rep *telemetry.Report) runstore.Attempt {
	a := runstore.Attempt{
		TimeUnixNano: time.Now().UnixNano(),
		WallSeconds:  rep.NonDeterministic.WallSeconds,
		Parallelism:  c.Parallel,
		Scheduler:    c.schedulerName(),
		Flags:        c.allFlags(),
		PoolRuns:     rep.NonDeterministic.Pool.Runs,
		PoolTasks:    rep.NonDeterministic.Pool.Tasks,
		MaxWorkers:   rep.NonDeterministic.Pool.MaxWorkers,
	}
	if util, ok := rep.Metrics.Gauges["nd_fleet_utilization"]; ok {
		a.FleetUtilization = util
	}
	if c.progress != nil && a.WallSeconds > 0 {
		if item, ok := c.progress.Current().Items["die"]; ok && item.Done > 0 {
			a.DiesPerSecond = float64(item.Done) / a.WallSeconds
		}
	}
	if c.flight != nil {
		if raw, err := json.Marshal(map[string]any{"non_deterministic": c.flight.Snapshot(32)}); err == nil {
			a.Flight = raw
		}
	}
	return a
}
