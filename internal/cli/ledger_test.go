package cli

import (
	"bytes"
	"flag"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ate"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// TestValidateRejectsUnwritableRunDir pins the -run-dir preflight error the
// same way the -crash-dir one is pinned: one clear line before any work.
func TestValidateRejectsUnwritableRunDir(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.MkdirAll(blocked, 0o500); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(blocked, 0o755) })
	c := &Common{RunDir: filepath.Join(blocked, "sub")}
	err := c.Validate()
	if err == nil {
		t.Skip("running as root: directory permissions not enforced")
	}
	want := `cannot record runs to -run-dir "` + filepath.Join(blocked, "sub") + `"`
	if !strings.Contains(err.Error(), want) {
		t.Errorf("Validate error = %q, want prefix %q", err, want)
	}
}

// ledgerWorkload drives one deterministic pseudo-run through a Common built
// from real flags, returning the minted record id announced on the ledger.
func ledgerWorkload(t *testing.T, runDir string, parallel int, extraFlags ...string) {
	t.Helper()
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	c := Register(fs)
	args := append([]string{
		"-run-dir", runDir,
		"-parallel", strconv.Itoa(parallel),
	}, extraFlags...)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tel, err := c.StartTelemetry("ledger-run")
	if err != nil {
		t.Fatal(err)
	}
	ph := tel.StartPhase("learn")
	for i := 0; i < 5; i++ {
		tel.RecordSearch(3+i, 20, true)
		tel.RecordItem("learn-test", i+1, 5)
		ph.Span().Event("trip", telemetry.I("i", i), telemetry.F("trip", 1.0+float64(i)/10))
	}
	ph.End(Cost(ate.Stats{Measurements: 25, TestTimeSec: 1.5}))
	tel.RecordGeneration(1, 1.05)
	if err := c.FinishTelemetry(io.Discard, tel, ate.Stats{Measurements: 25, TestTimeSec: 1.5}); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerIdenticalRunsCollideAcrossParallelism is the tentpole identity
// contract at the CLI layer: the same workload recorded at -parallel 1, 2
// and 8 mints exactly one record with three attempts in its sidecar.
func TestLedgerIdenticalRunsCollideAcrossParallelism(t *testing.T) {
	runDir := t.TempDir()
	for _, parallel := range []int{1, 2, 8} {
		ledgerWorkload(t, runDir, parallel)
	}
	st, err := runstore.Open(runDir)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("%d records after 3 identical runs, want 1 (ids: %v)", len(sums), sums)
	}
	sum := sums[0]
	if len(sum.Attempts) != 3 {
		t.Errorf("%d attempts recorded, want 3", len(sum.Attempts))
	}
	gotParallel := map[int]bool{}
	for _, a := range sum.Attempts {
		gotParallel[a.Parallelism] = true
		if a.Scheduler != "fleet" {
			t.Errorf("attempt scheduler = %q, want fleet default", a.Scheduler)
		}
		if a.Flags["parallel"] == "" {
			t.Error("attempt sidecar lost the full flag map")
		}
	}
	for _, p := range []int{1, 2, 8} {
		if !gotParallel[p] {
			t.Errorf("no attempt recorded for -parallel %d", p)
		}
	}
	if sum.Manifest.Flow != "ledger-run" || sum.Manifest.CacheWarmth != "none" {
		t.Errorf("manifest = %+v", sum.Manifest)
	}
	// Scheduling knobs must not leak into the identity flag set.
	for _, name := range []string{"parallel", "scheduler", "trace", "run-dir"} {
		if _, ok := sum.Manifest.Flags[name]; ok {
			t.Errorf("non-identity flag %q leaked into the manifest", name)
		}
	}
	if sum.Manifest.Flags["seed"] != "1" {
		t.Errorf("identity flags lost -seed: %v", sum.Manifest.Flags)
	}
	// No stray ledger temp trace should survive finalize.
	matches, _ := filepath.Glob(filepath.Join(os.TempDir(), "repro-run-*.jsonl"))
	for _, m := range matches {
		raw, err := os.ReadFile(m)
		if err == nil && strings.Contains(string(raw), `"ledger-run"`) {
			t.Errorf("auto-trace temp file %s not cleaned up", m)
		}
	}
}

// TestLedgerDifferentWorkloadMintsNewRecord: an identity flag change (-seed)
// yields a second record in the same ledger.
func TestLedgerDifferentWorkloadMintsNewRecord(t *testing.T) {
	runDir := t.TempDir()
	ledgerWorkload(t, runDir, 1)
	ledgerWorkload(t, runDir, 1, "-seed", "2")
	st, err := runstore.Open(runDir)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("%d records, want 2", len(sums))
	}
}

// TestLedgerRecordMatchesTraceFile: with an explicit -trace the stored trace
// bytes equal the file on disk, and the manifest digest is the FNV-1a of
// those bytes — the report fingerprint round-trips through the ledger.
func TestLedgerRecordMatchesTraceFile(t *testing.T) {
	runDir := t.TempDir()
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	ledgerWorkload(t, runDir, 2, "-trace", tracePath)
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := runstore.Open(runDir)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("%d records, want 1", len(sums))
	}
	rec, err := st.Get(sums[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Trace, raw) {
		t.Error("stored trace differs from the -trace file")
	}
	h := fnv.New64a()
	h.Write(raw)
	want := "fnv1a:" + strconv.FormatUint(h.Sum64(), 16)
	got := strings.Replace(rec.Manifest.TraceDigest, "fnv1a:", "", 1)
	gotN, err := strconv.ParseUint(got, 16, 64)
	if err != nil {
		t.Fatalf("digest %q unparseable: %v", rec.Manifest.TraceDigest, err)
	}
	if gotN != h.Sum64() {
		t.Errorf("manifest digest %s != trace FNV-1a %s", rec.Manifest.TraceDigest, want)
	}
	// The deterministic report artifact must carry no wall-clock residue.
	if strings.Contains(string(rec.Report), `"wall_seconds":`) &&
		!strings.Contains(string(rec.Report), `"wall_seconds": 0`) {
		t.Errorf("ledger report kept non-zero wall seconds:\n%s", rec.Report)
	}
	if bytes.Contains(rec.Metrics, []byte(`"nd_`)) {
		t.Errorf("ledger metrics kept nd_ series:\n%s", rec.Metrics)
	}
}
