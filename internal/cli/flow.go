package cli

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ate"
	"repro/internal/dut"
)

// Flow specs: the one shared description of a characterization workload.
//
// Every paper flow — the fig. 4 learning scheme, the fig. 5 optimization
// scheme, the Table 1 comparison, the fig. 8 shmoo overlay and the lot
// screen — is constructed here, from the same flag set the corresponding
// binary registers. The binaries call the Run* functions directly with
// their parsed flags; the job service (internal/jobs) goes through
// NewFlowRun, which rebuilds the binary's exact flag set and applies a
// FlowSpec's overrides onto it. Both paths therefore resolve identical
// identity flag maps and execute identical code, which is what makes a
// submitted job produce the same content-addressed run ID and bit-identical
// trace bytes as the equivalent CLI invocation.

// FlowSpec names one workload: a flow, its seed, and the workload flag
// overrides to apply on top of the binary's defaults. It is the job
// service's POST /jobs payload core.
type FlowSpec struct {
	// Flow selects the workload: learn, optimize, table1, shmoo or lot.
	Flow string `json:"flow"`
	// Seed is the run seed (the shared -seed flag; 1 is the CLI default).
	Seed int64 `json:"seed"`
	// NoCache disables the measurement memo-cache (-no-cache).
	NoCache bool `json:"no_cache,omitempty"`
	// Args overrides workload flags by flag name ("learn-tests": "20").
	// Only the flow's declared workload flags are accepted — scheduling and
	// output-path flags are owned by the runner, never by the spec.
	Args map[string]string `json:"args,omitempty"`
}

// FlowRun is an instantiated FlowSpec: the Common carrying the resolved
// flag set (the run's ledger identity) plus the flow body to execute.
type FlowRun struct {
	// Common holds the shared flag values; callers may adjust the
	// non-identity scheduling fields (Parallel, Scheduler, RunDir, …)
	// before Run without changing the run's identity.
	Common *Common

	spec FlowSpec
	run  func(c *Common, out io.Writer) error
}

// Spec returns the spec this run was built from.
func (fr *FlowRun) Spec() FlowSpec { return fr.spec }

// Run executes the flow body, writing its human-readable output to out.
func (fr *FlowRun) Run(out io.Writer) error { return fr.run(fr.Common, out) }

// flowDef describes how one flow name maps onto a binary's flag set.
type flowDef struct {
	binary string            // flag-set name (the owning binary)
	preset map[string]string // flag values the flow name itself implies
	args   map[string]bool   // workload flags a FlowSpec may override
	build  func(fs *flag.FlagSet) func(c *Common, out io.Writer) error
}

func argSet(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func buildCharacterize(fs *flag.FlagSet) func(c *Common, out io.Writer) error {
	f := RegisterCharacterizeFlags(fs)
	return func(c *Common, out io.Writer) error { return RunCharacterize(c, f, out) }
}

var flowDefs = map[string]flowDef{
	"learn": {
		binary: "characterize",
		preset: map[string]string{"learn-only": "true"},
		args:   argSet("param", "corner", "learn-tests"),
		build:  buildCharacterize,
	},
	"optimize": {
		binary: "characterize",
		args:   argSet("param", "corner", "learn-tests", "evolve-conditions", "minimize"),
		build:  buildCharacterize,
	},
	"table1": {
		binary: "characterize",
		preset: map[string]string{"table1": "true"},
		args:   argSet("param", "corner", "learn-tests", "random-tests"),
		build:  buildCharacterize,
	},
	"shmoo": {
		binary: "shmoo",
		args:   argSet("tests", "vdd-min", "vdd-max", "tdq-min", "tdq-max"),
		build: func(fs *flag.FlagSet) func(c *Common, out io.Writer) error {
			f := RegisterShmooFlags(fs)
			return func(c *Common, out io.Writer) error { return RunShmoo(c, f, out) }
		},
	},
	"lot": {
		binary: "lotchar",
		args:   argSet("dies", "wafers", "guardband"),
		build: func(fs *flag.FlagSet) func(c *Common, out io.Writer) error {
			f := RegisterLotFlags(fs)
			return func(c *Common, out io.Writer) error { return RunLot(c, f, out) }
		},
	},
}

// FlowNames lists the known flow names, sorted.
func FlowNames() []string {
	names := make([]string, 0, len(flowDefs))
	for n := range flowDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FlowArgs lists the workload flags a flow accepts in its spec, sorted.
// Unknown flows return nil.
func FlowArgs(flow string) []string {
	def, ok := flowDefs[flow]
	if !ok {
		return nil
	}
	args := make([]string, 0, len(def.args))
	for a := range def.args {
		args = append(args, a)
	}
	sort.Strings(args)
	return args
}

// NewFlowRun instantiates a FlowSpec: it rebuilds the owning binary's full
// flag set (shared flags plus the binary's workload flags, all at their CLI
// defaults), applies the flow preset and then the spec's Args, and returns
// the runnable flow. Every error is a single pinned line, suitable for a
// 400 response.
func NewFlowRun(spec FlowSpec) (*FlowRun, error) {
	def, ok := flowDefs[spec.Flow]
	if !ok {
		return nil, fmt.Errorf("cli: unknown flow %q (want %s)", spec.Flow, strings.Join(FlowNames(), ", "))
	}
	fs := flag.NewFlagSet(def.binary, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs)
	run := def.build(fs)
	if err := fs.Parse(nil); err != nil {
		return nil, fmt.Errorf("cli: resolving %s flag defaults: %v", def.binary, err)
	}
	for name, val := range def.preset {
		if err := fs.Set(name, val); err != nil {
			return nil, fmt.Errorf("cli: applying flow %q preset %s=%s: %v", spec.Flow, name, val, err)
		}
	}
	// Sorted application keeps rejection order deterministic.
	names := make([]string, 0, len(spec.Args))
	for name := range spec.Args {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !def.args[name] {
			return nil, fmt.Errorf("cli: flow %q does not accept arg %q (want %s)",
				spec.Flow, name, strings.Join(FlowArgs(spec.Flow), ", "))
		}
		if err := fs.Set(name, spec.Args[name]); err != nil {
			return nil, fmt.Errorf("cli: flow %q arg %s=%q: %v", spec.Flow, name, spec.Args[name], err)
		}
	}
	if err := fs.Set("seed", strconv.FormatInt(spec.Seed, 10)); err != nil {
		return nil, fmt.Errorf("cli: flow %q seed %d: %v", spec.Flow, spec.Seed, err)
	}
	if spec.NoCache {
		if err := fs.Set("no-cache", "true"); err != nil {
			return nil, fmt.Errorf("cli: flow %q no-cache: %v", spec.Flow, err)
		}
	}
	return &FlowRun{Common: c, spec: spec, run: run}, nil
}

// parseParam resolves the -param flag value.
func parseParam(s string) (ate.Parameter, error) {
	switch s {
	case "tdq":
		return ate.TDQ, nil
	case "fmax":
		return ate.Fmax, nil
	case "vddmin":
		return ate.VddMin, nil
	default:
		return 0, fmt.Errorf("unknown parameter %q (want tdq, fmax or vddmin)", s)
	}
}

// parseCorner resolves the -corner flag value.
func parseCorner(s string) (*dut.Die, error) {
	switch s {
	case "tt":
		return dut.NewDie(0, dut.CornerTypical), nil
	case "ff":
		return dut.NewDie(0, dut.CornerFast), nil
	case "ss":
		return dut.NewDie(0, dut.CornerSlow), nil
	default:
		return nil, fmt.Errorf("unknown corner %q (want tt, ff or ss)", s)
	}
}
