// Package cli is the shared command-line substrate of the cmd/ binaries:
// one flag-registration helper so every tool spells the common knobs the
// same way (-seed, -parallel, -no-cache, -cache-dir, -trace, -metrics,
// -report, -listen, -cpuprofile, -memprofile), plus the telemetry bootstrap that
// turns those flags into a live run-telemetry handle, a worker-pool
// observer, an optional live observability HTTP server and an end-of-run
// report, and the pprof bootstrap for profiling the compute kernels.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Common holds the flag values shared by every binary.
type Common struct {
	Seed     int64
	Parallel int
	NoCache  bool
	CacheDir string

	TracePath   string
	MetricsPath string
	Report      bool
	Listen      string

	CPUProfilePath string
	MemProfilePath string

	server   *obs.Server
	progress *obs.Progress
}

// Register installs the shared flags on the flag set (flag.CommandLine when
// nil) and returns the struct their values land in. Call before
// flag.Parse.
func Register(fs *flag.FlagSet) *Common {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", 1, "random seed for the whole run")
	fs.IntVar(&c.Parallel, "parallel", 0, "worker count for every parallel stage (0 = one per CPU, 1 = serial; results are identical either way)")
	fs.BoolVar(&c.NoCache, "no-cache", false, "disable the measurement memo-cache (re-measure structurally identical tests)")
	fs.StringVar(&c.CacheDir, "cache-dir", "", "persist measurement results in this directory (content-addressed; a second identical run serves them from disk)")
	fs.StringVar(&c.TracePath, "trace", "", "write a structured JSONL event trace here (bit-identical for any -parallel)")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write the end-of-run metrics snapshot as JSON here")
	fs.BoolVar(&c.Report, "report", false, "print the run report (phase breakdown, cache hit rate, measurements saved) on exit")
	fs.StringVar(&c.Listen, "listen", "", "serve live observability HTTP (Prometheus /metrics, /progress SSE, /debug/pprof) on this addr:port while the run lasts (:0 picks a free port)")
	fs.StringVar(&c.CPUProfilePath, "cpuprofile", "", "write a pprof CPU profile of the run here")
	fs.StringVar(&c.MemProfilePath, "memprofile", "", "write a pprof heap profile (after a final GC) here on exit")
	return c
}

// OpenCacheStore opens the disk measurement store -cache-dir requests,
// under the given format scope (each record family — lot die records,
// memoized trip points — owns a scope constant, so incompatible segment
// files coexist in one directory and are skipped, not misread). Returns
// (nil, nil) when the flag is unset; callers treat a nil store as "no
// persistence".
func (c *Common) OpenCacheStore(scope uint64) (*cachestore.Store, error) {
	if c.CacheDir == "" {
		return nil, nil
	}
	s, err := cachestore.Open(c.CacheDir, scope)
	if err != nil {
		return nil, fmt.Errorf("cli: opening cache dir: %w", err)
	}
	return s, nil
}

// RecordDiskCache feeds a store's counters into the run telemetry (report
// disk-cache line, Prometheus gauges, live /progress). Nil store or nil
// telemetry is a no-op, so callers can pass both through unconditionally.
func RecordDiskCache(tel *telemetry.Telemetry, store *cachestore.Store) {
	if store == nil {
		return
	}
	st := store.Stats()
	tel.RecordDiskCache(telemetry.DiskCacheStats{
		LoadedEntries:  st.LoadedEntries,
		LoadedSegments: st.LoadedSegments,
		Hits:           st.Hits,
		Misses:         st.Misses,
		FlushedEntries: st.FlushedEntries,
		BytesOnDisk:    st.BytesOnDisk,
	})
}

// StartProfiles starts the profiling the -cpuprofile/-memprofile flags
// request and returns a stop function that must run at the end of the run
// (defer it right after a successful call): it stops the CPU profile and
// writes the heap snapshot. With neither flag set it returns a no-op stop.
func (c *Common) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUProfilePath != "" {
		cpuFile, err = os.Create(c.CPUProfilePath)
		if err != nil {
			return nil, fmt.Errorf("cli: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cli: closing cpu profile: %w", err)
			}
		}
		if c.MemProfilePath != "" {
			f, err := os.Create(c.MemProfilePath)
			if err != nil {
				return fmt.Errorf("cli: creating mem profile: %w", err)
			}
			// Materialize final live-heap state so the snapshot reflects
			// steady-state retention, not transient garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("cli: writing mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("cli: closing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// TelemetryEnabled reports whether any telemetry output was requested.
func (c *Common) TelemetryEnabled() bool {
	return c.TracePath != "" || c.MetricsPath != "" || c.Report || c.Listen != ""
}

// StartTelemetry opens the run telemetry the flags describe and installs
// the worker-pool observer. With -listen set it also starts the live
// observability HTTP server and announces its address on stderr; the live
// feed taps the same deterministic hook points as the trace, so trace
// bytes are identical with and without it. Returns nil (a fully inert
// handle) when no telemetry output was requested.
func (c *Common) StartTelemetry(runName string) (*telemetry.Telemetry, error) {
	if !c.TelemetryEnabled() {
		return nil, nil
	}
	var tracer *telemetry.Tracer
	if c.TracePath != "" {
		var err error
		tracer, err = telemetry.NewFileTracer(c.TracePath)
		if err != nil {
			return nil, fmt.Errorf("cli: opening trace: %w", err)
		}
	}
	tel := telemetry.New(runName, tracer)
	poolObserver := parallel.Observer(tel.ObservePool)
	if c.Listen != "" {
		progress := obs.NewProgress(runName)
		tel.SetRunObserver(progress)
		poolObserver = func(workers int, tasksPerWorker []int) {
			tel.ObservePool(workers, tasksPerWorker)
			total := 0
			for _, n := range tasksPerWorker {
				total += n
			}
			progress.PoolRun(workers, total)
		}
		srv, err := obs.Start(c.Listen, obs.Options{
			Run:      runName,
			Metrics:  tel.Registry().Snapshot,
			Progress: progress,
		})
		if err != nil {
			tel.Close()
			return nil, fmt.Errorf("cli: starting observability server: %w", err)
		}
		c.server = srv
		c.progress = progress
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/ (metrics, progress, pprof)\n", srv.Addr())
	}
	parallel.SetObserver(poolObserver)
	return tel, nil
}

// FinishTelemetry closes out the run: writes the -metrics snapshot, prints
// the -report run report to w, uninstalls the pool observer, shuts the
// -listen server down and closes the trace. Sink I/O failures (a full
// disk, a closed pipe) surface as errors so the binaries exit nonzero
// instead of silently shipping a truncated trace or report. total is the
// whole run's tester cost. Nil tel is a no-op.
func (c *Common) FinishTelemetry(w io.Writer, tel *telemetry.Telemetry, total ate.Stats) error {
	if tel == nil {
		return nil
	}
	parallel.SetObserver(nil)
	c.progress.Done()
	rep := tel.Report(Cost(total))
	if c.MetricsPath != "" {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return fmt.Errorf("cli: writing metrics: %w", err)
		}
		if err := rep.Metrics.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("cli: writing metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cli: closing metrics: %w", err)
		}
	}
	if c.Report {
		if _, err := fmt.Fprint(w, rep.Render()); err != nil {
			return fmt.Errorf("cli: printing report: %w", err)
		}
	}
	if c.server != nil {
		// Let in-flight /progress streams drain the done state first.
		if err := c.server.Close(); err != nil {
			return fmt.Errorf("cli: closing observability server: %w", err)
		}
		c.server = nil
		c.progress = nil
	}
	if err := tel.Close(); err != nil {
		return fmt.Errorf("cli: closing trace: %w", err)
	}
	return nil
}

// Cost converts tester counters into a telemetry cost.
func Cost(s ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: s.Measurements,
		Vectors:      s.VectorsApplied,
		Profiles:     s.Profiles,
		SimTimeSec:   s.TestTimeSec,
	}
}

// Delta is the tester cost consumed between two stat snapshots.
func Delta(before, after ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: after.Measurements - before.Measurements,
		Vectors:      after.VectorsApplied - before.VectorsApplied,
		Profiles:     after.Profiles - before.Profiles,
		SimTimeSec:   after.TestTimeSec - before.TestTimeSec,
	}
}

// PrintCacheSummary prints the one-line measurement memo-cache summary the
// binaries share. Disabled caches (zero lookups) report as such.
func PrintCacheSummary(w io.Writer, hits, misses int64) {
	lookups := hits + misses
	if lookups == 0 {
		fmt.Fprintln(w, "measurement cache: no lookups (cache disabled or unused)")
		return
	}
	fmt.Fprintf(w, "measurement cache: %d hits / %d misses (hit rate %.1f%%)\n",
		hits, misses, 100*float64(hits)/float64(lookups))
}
