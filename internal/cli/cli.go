// Package cli is the shared command-line substrate of the cmd/ binaries:
// one flag-registration helper so every tool spells the common knobs the
// same way (-seed, -parallel, -no-cache, -cache-dir, -trace, -metrics,
// -report, -listen, -cpuprofile, -memprofile), plus the telemetry bootstrap that
// turns those flags into a live run-telemetry handle, a worker-pool
// observer, an optional live observability HTTP server and an end-of-run
// report, and the pprof bootstrap for profiling the compute kernels.
package cli

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/ate"
	"repro/internal/cachestore"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
)

// Common holds the flag values shared by every binary.
type Common struct {
	Seed      int64
	Parallel  int
	Scheduler string
	NoCache   bool
	CacheDir  string

	TracePath   string
	MetricsPath string
	Report      bool
	Listen      string

	// CrashDir enables post-mortem crash bundles: on a task panic, fatal
	// error or stall, the run's flight-recorder tail, metrics, flags,
	// goroutine stacks and partial report land in a bundle directory here.
	CrashDir string
	// StallTimeout arms the stall watchdog (requires CrashDir): a bundle is
	// dumped — without exiting — when no progress event arrives for this
	// long. Zero disables the watchdog.
	StallTimeout time.Duration
	// InjectFault is a testing hook ("task-panic" or "error") that fails the
	// run on purpose right after telemetry starts, exercising the crash
	// bundle path end to end. Hidden from -help-worthy docs on purpose; ci.sh
	// and the cli tests are its only intended users.
	InjectFault string

	// RunDir enables the persistent run ledger: on a clean finish the run is
	// finalized into a content-addressed record (manifest + report + metrics
	// + trace) under this directory, with wall-clock/scheduling data
	// quarantined in a per-attempt sidecar. Identical runs — same seed and
	// workload flags at any -parallel — collide into one record.
	RunDir string

	CPUProfilePath string
	MemProfilePath string

	// Embedded marks a Common owned by an in-process host (the job service)
	// rather than a binary: StartTelemetry then leaves the process-wide
	// parallel pool/fleet observers alone (they are global, last-wins state
	// — concurrent jobs would cross-pollute each other's ND stats) and never
	// starts an observability server of its own. Trace bytes are unaffected
	// either way: the global observers only feed nd_ metrics.
	Embedded bool

	// CheckCancel, when non-nil, is polled by the flow runners at phase
	// boundaries; a non-nil return aborts the flow with that error. The job
	// service uses it for cooperative cancellation of running jobs.
	CheckCancel func() error

	// OnTelemetryStart, when non-nil, receives the run's telemetry handle as
	// StartTelemetry completes — an embedding host's hook for folding the
	// run's registry into its own metrics exposition.
	OnTelemetryStart func(tel *telemetry.Telemetry)

	server          *obs.Server
	progress        *obs.Progress
	extProgress     *obs.Progress
	runName         string
	tel             *telemetry.Telemetry
	flight          *flight.Recorder
	sampStop        func()
	wd              *watchdog
	fs              *flag.FlagSet
	ledger          *runstore.Store
	tracePath       string // the trace file actually written (TracePath or the ledger temp)
	autoTrace       bool   // tracePath is a ledger-owned temp file, deleted after finalize
	lastRunID       string
	lastFingerprint string
}

// AttachProgress hands the run an externally owned progress publisher: the
// next StartTelemetry wires it as the run observer instead of creating one,
// so an embedding host (the job service) can watch and serve the run's live
// state. Call before StartTelemetry.
func (c *Common) AttachProgress(p *obs.Progress) { c.extProgress = p }

// AttachLedger supplies an already-open run-ledger store; StartTelemetry
// then finalizes into it instead of opening its own handle on RunDir. The
// job service shares one store handle across every job this way. RunDir
// must still be set — it gates finalization and the ledger temp trace.
func (c *Common) AttachLedger(st *runstore.Store) { c.ledger = st }

// LastRun returns the ledger run ID and trace fingerprint of the last
// FinishTelemetry, empty before the first finalized run (or when -run-dir
// was not set, in which case only the fingerprint is populated).
func (c *Common) LastRun() (runID, fingerprint string) {
	return c.lastRunID, c.lastFingerprint
}

// checkCancel polls the host's cancellation hook (no-op when unset).
func (c *Common) checkCancel() error {
	if c.CheckCancel == nil {
		return nil
	}
	return c.CheckCancel()
}

// Register installs the shared flags on the flag set (flag.CommandLine when
// nil) and returns the struct their values land in. Call before
// flag.Parse.
func Register(fs *flag.FlagSet) *Common {
	if fs == nil {
		fs = flag.CommandLine
	}
	// The flag set is retained: the run-ledger manifest hashes the resolved
	// flag values (minus the scheduling/output set) as the run's identity.
	c := &Common{fs: fs}
	fs.Int64Var(&c.Seed, "seed", 1, "random seed for the whole run")
	fs.IntVar(&c.Parallel, "parallel", 0, "worker count for every parallel stage (0 = one per CPU, 1 = serial; results are identical either way)")
	fs.StringVar(&c.Scheduler, "scheduler", "", "parallel scheduler: fleet (persistent pipelined worker pool, the default) or batch (legacy per-batch fork/join; bit-identical results, only wall-clock differs)")
	fs.BoolVar(&c.NoCache, "no-cache", false, "disable the measurement memo-cache (re-measure structurally identical tests)")
	fs.StringVar(&c.CacheDir, "cache-dir", "", "persist measurement results in this directory (content-addressed; a second identical run serves them from disk)")
	fs.StringVar(&c.TracePath, "trace", "", "write a structured JSONL event trace here (bit-identical for any -parallel)")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write the end-of-run metrics snapshot as JSON here")
	fs.BoolVar(&c.Report, "report", false, "print the run report (phase breakdown, cache hit rate, measurements saved) on exit")
	fs.StringVar(&c.Listen, "listen", "", "serve live observability HTTP (Prometheus /metrics, /progress SSE, /debug/flight, /debug/pprof) on this addr:port while the run lasts (:0 picks a free port)")
	fs.StringVar(&c.CrashDir, "crash-dir", "", "write post-mortem crash bundles (flight-recorder tail, metrics, flags, goroutine stacks, partial report) into this directory on panic, fatal error or stall")
	fs.StringVar(&c.RunDir, "run-dir", "", "finalize the run into a content-addressed run ledger in this directory (manifest, report, metrics, trace; identical runs collide into one record — inspect with `tracestat ledger`)")
	fs.DurationVar(&c.StallTimeout, "stall-timeout", 0, "with -crash-dir: dump a stall bundle (without exiting) when no progress event arrives for this long (0 disables the watchdog)")
	fs.StringVar(&c.InjectFault, "inject-fault", "", "testing hook: fail the run on purpose after startup (task-panic, error)")
	fs.StringVar(&c.CPUProfilePath, "cpuprofile", "", "write a pprof CPU profile of the run here")
	fs.StringVar(&c.MemProfilePath, "memprofile", "", "write a pprof heap profile (after a final GC) here on exit")
	return c
}

// Validate checks the flag combinations that otherwise surface as late,
// opaque failures mid-run: an unbindable -listen address, an unwritable
// -crash-dir, a -stall-timeout without the -crash-dir its bundles need, and
// an unknown -inject-fault mode. Each failure is a single clear line; the
// binaries call this through Main before doing any work.
func (c *Common) Validate() error {
	if c.Listen != "" {
		// Bind-and-release: the only reliable way to learn the address is
		// usable. The real server re-binds microseconds later in
		// StartTelemetry; a race against another process taking the port in
		// between is possible but loses nothing — Start reports it too.
		ln, err := net.Listen("tcp", c.Listen)
		if err != nil {
			return fmt.Errorf("cannot bind -listen address %q: %w", c.Listen, err)
		}
		ln.Close()
	}
	if c.CrashDir != "" {
		if err := os.MkdirAll(c.CrashDir, 0o755); err != nil {
			return fmt.Errorf("cannot write crash bundles to -crash-dir %q: %w", c.CrashDir, err)
		}
		probe, err := os.CreateTemp(c.CrashDir, ".probe-*")
		if err != nil {
			return fmt.Errorf("cannot write crash bundles to -crash-dir %q: %w", c.CrashDir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if c.RunDir != "" {
		if err := os.MkdirAll(c.RunDir, 0o755); err != nil {
			return fmt.Errorf("cannot record runs to -run-dir %q: %w", c.RunDir, err)
		}
		probe, err := os.CreateTemp(c.RunDir, ".probe-*")
		if err != nil {
			return fmt.Errorf("cannot record runs to -run-dir %q: %w", c.RunDir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if c.StallTimeout > 0 && c.CrashDir == "" {
		return fmt.Errorf("-stall-timeout requires -crash-dir (stall bundles need somewhere to go)")
	}
	switch c.InjectFault {
	case "", "task-panic", "error":
	default:
		return fmt.Errorf("unknown -inject-fault mode %q (want task-panic or error)", c.InjectFault)
	}
	switch c.Scheduler {
	case "", "fleet", "batch":
	default:
		return fmt.Errorf("unknown -scheduler %q (want fleet or batch)", c.Scheduler)
	}
	return nil
}

// Main is the run harness every binary wraps its work in: it validates the
// flags (exiting 2 with a one-line error on a bad combination), runs body,
// and routes failures through the crash-bundle path — a panic (including
// the worker pool's deterministic TaskPanic) writes a "panic" bundle and
// re-panics so the process still dies loudly with the original stack; an
// error return writes a "fatal-error" bundle and exits 1 via log.Fatal.
func (c *Common) Main(body func() error) {
	if err := c.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%s%v\n", log.Prefix(), err)
		os.Exit(2)
	}
	defer func() {
		if r := recover(); r != nil {
			c.CaptureCrash("panic", r)
			panic(r)
		}
	}()
	if err := body(); err != nil {
		c.CaptureCrash("fatal-error", err)
		log.Fatal(err)
	}
}

// OpenCacheStore opens the disk measurement store -cache-dir requests,
// under the given format scope (each record family — lot die records,
// memoized trip points — owns a scope constant, so incompatible segment
// files coexist in one directory and are skipped, not misread). Returns
// (nil, nil) when the flag is unset; callers treat a nil store as "no
// persistence".
func (c *Common) OpenCacheStore(scope uint64) (*cachestore.Store, error) {
	if c.CacheDir == "" {
		return nil, nil
	}
	s, err := cachestore.Open(c.CacheDir, scope)
	if err != nil {
		return nil, fmt.Errorf("cli: opening cache dir: %w", err)
	}
	return s, nil
}

// RecordDiskCache feeds a store's counters into the run telemetry (report
// disk-cache line, Prometheus gauges, live /progress). Nil store or nil
// telemetry is a no-op, so callers can pass both through unconditionally.
func RecordDiskCache(tel *telemetry.Telemetry, store *cachestore.Store) {
	if store == nil {
		return
	}
	st := store.Stats()
	tel.RecordDiskCache(telemetry.DiskCacheStats{
		LoadedEntries:  st.LoadedEntries,
		LoadedSegments: st.LoadedSegments,
		Hits:           st.Hits,
		Misses:         st.Misses,
		FlushedEntries: st.FlushedEntries,
		BytesOnDisk:    st.BytesOnDisk,
	})
}

// StartProfiles starts the profiling the -cpuprofile/-memprofile flags
// request and returns a stop function that must run at the end of the run
// (defer it right after a successful call): it stops the CPU profile and
// writes the heap snapshot. With neither flag set it returns a no-op stop.
func (c *Common) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUProfilePath != "" {
		cpuFile, err = os.Create(c.CPUProfilePath)
		if err != nil {
			return nil, fmt.Errorf("cli: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cli: closing cpu profile: %w", err)
			}
		}
		if c.MemProfilePath != "" {
			f, err := os.Create(c.MemProfilePath)
			if err != nil {
				return fmt.Errorf("cli: creating mem profile: %w", err)
			}
			// Materialize final live-heap state so the snapshot reflects
			// steady-state retention, not transient garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("cli: writing mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("cli: closing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// TelemetryEnabled reports whether any telemetry output was requested.
// -crash-dir counts: crash bundles want the live registry and flight
// recorder even when no trace or report was asked for. -run-dir counts for
// the same reason: the ledger record is built from the run's telemetry.
func (c *Common) TelemetryEnabled() bool {
	return c.TracePath != "" || c.MetricsPath != "" || c.Report || c.Listen != "" ||
		c.CrashDir != "" || c.RunDir != ""
}

// StartTelemetry opens the run telemetry the flags describe and installs
// the worker-pool observer. With -listen set it also starts the live
// observability HTTP server and announces its address on stderr; with
// -listen or -crash-dir it attaches the flight recorder (bounded event ring
// + runtime/metrics sampler) and, when -stall-timeout is set, the stall
// watchdog. All live consumers tap the same deterministic hook points as
// the trace, so trace bytes are identical with and without them. Returns
// nil (a fully inert handle) when no telemetry output was requested.
func (c *Common) StartTelemetry(runName string) (*telemetry.Telemetry, error) {
	if !c.TelemetryEnabled() {
		return nil, nil
	}
	// The run ledger stores the full trace; when -run-dir is set without
	// -trace, record into a temp file that finalize reads back and deletes.
	c.tracePath = c.TracePath
	c.autoTrace = false
	if c.tracePath == "" && c.RunDir != "" {
		tmp, err := os.CreateTemp("", "repro-run-*.jsonl")
		if err != nil {
			return nil, fmt.Errorf("cli: creating ledger trace: %w", err)
		}
		tmp.Close()
		c.tracePath = tmp.Name()
		c.autoTrace = true
	}
	var tracer *telemetry.Tracer
	if c.tracePath != "" {
		var err error
		tracer, err = telemetry.NewFileTracer(c.tracePath)
		if err != nil {
			return nil, fmt.Errorf("cli: opening trace: %w", err)
		}
	}
	if c.RunDir != "" && c.ledger == nil {
		st, err := runstore.Open(c.RunDir)
		if err != nil {
			tracer.Close()
			return nil, fmt.Errorf("cli: opening run ledger: %w", err)
		}
		c.ledger = st
	}
	tel := telemetry.New(runName, tracer)
	c.runName = runName
	c.tel = tel

	poolObserver := parallel.Observer(tel.ObservePool)
	progress := c.extProgress
	var recorder *flight.Recorder
	if progress == nil && c.Listen != "" {
		progress = obs.NewProgress(runName)
	}
	c.progress = progress
	if c.Listen != "" || c.CrashDir != "" {
		recorder = flight.New(flight.DefaultCapacity)
		recorder.ExportTo(tel.Registry())
		c.flight = recorder
	}
	tel.SetRunObserver(telemetry.MultiObserver(progress, recorder))
	if progress != nil || recorder != nil {
		poolObserver = func(workers int, tasksPerWorker []int) {
			tel.ObservePool(workers, tasksPerWorker)
			total := 0
			for _, n := range tasksPerWorker {
				total += n
			}
			progress.PoolRun(workers, total)
			recorder.PoolRun(workers, total)
		}
	}
	// Fleet stream stats mirror the pool observer's quarantine: nd_ gauges
	// in the registry (excluded from determinism diffs), the /progress
	// non_deterministic section and the flight ring. Both observers are
	// process-wide (last-wins) globals, so an Embedded run — one of several
	// concurrent jobs in a host process — must not install them.
	if !c.Embedded {
		reg := tel.Registry()
		parallel.SetFleetObserver(func(st parallel.StreamStats) {
			reg.Counter("nd_fleet_streams_total").Add(1)
			reg.Gauge("nd_fleet_queue_depth").Set(float64(st.MaxRunAhead))
			reg.Gauge("nd_fleet_utilization").Set(st.Utilization())
			reg.Gauge("nd_fleet_overlap_ratio").Set(st.OverlapRatio())
			progress.FleetStream(st.Workers, st.Tasks, st.MaxRunAhead, st.Utilization(), st.OverlapRatio())
			if recorder != nil {
				recorder.FleetStream(st.Workers, st.Tasks, st.MaxRunAhead, st.Utilization(), st.OverlapRatio())
			}
		})
	}
	if recorder != nil {
		c.sampStop = recorder.StartSampler(flight.DefaultSampleInterval)
	}
	if c.Listen != "" && !c.Embedded {
		srv, err := obs.Start(c.Listen, obs.Options{
			Run:      runName,
			Metrics:  tel.Registry().Snapshot,
			Progress: progress,
			Flight:   recorder,
			Ledger:   c.ledger,
			RunInfo:  c.runInfoLabels(tel),
		})
		if err != nil {
			c.stopFlight()
			tel.Close()
			return nil, fmt.Errorf("cli: starting observability server: %w", err)
		}
		c.server = srv
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/ (metrics, progress, flight, pprof)\n", srv.Addr())
	}
	if !c.Embedded {
		parallel.SetObserver(poolObserver)
	}
	if c.CrashDir != "" && c.StallTimeout > 0 {
		c.wd = c.startWatchdog(c.StallTimeout)
	}

	if c.OnTelemetryStart != nil {
		c.OnTelemetryStart(tel)
	}

	// Fault injection runs last so the bundle it produces captures the live
	// telemetry state, exactly like a real mid-run failure would.
	if err := c.injectFault(); err != nil {
		return tel, err
	}
	return tel, nil
}

// injectFault triggers the -inject-fault testing hook: "task-panic" drives
// the real worker-pool panic path (a task panics, the pool drains and
// re-panics the deterministic TaskPanic envelope), "error" returns a plain
// fatal error. Main's guard turns either into a crash bundle.
func (c *Common) injectFault() error {
	switch c.InjectFault {
	case "task-panic":
		//nolint:errcheck // unreachable: the pool re-panics the TaskPanic
		parallel.Run(4, 2,
			func(w int) (struct{}, error) { return struct{}{}, nil },
			func(wk struct{}, i int) error {
				if i == 2 {
					panic(fmt.Sprintf("injected fault (task %d)", i))
				}
				return nil
			})
		return nil
	case "error":
		return fmt.Errorf("cli: injected fatal error (-inject-fault=error)")
	}
	return nil
}

// stopFlight tears down the sampler and watchdog (idempotent, nil-safe).
func (c *Common) stopFlight() {
	c.wd.Stop()
	c.wd = nil
	if c.sampStop != nil {
		c.sampStop()
		c.sampStop = nil
	}
}

// FinishTelemetry closes out the run: closes the trace (so the run-end
// line is flushed and the fingerprint covers the whole file), writes the
// -metrics snapshot, prints the -report run report to w, finalizes the
// -run-dir ledger record, uninstalls the pool observer and shuts the
// -listen server down. Sink I/O failures (a full disk, a closed pipe)
// surface as errors so the binaries exit nonzero instead of silently
// shipping a truncated trace or report. total is the whole run's tester
// cost. Nil tel is a no-op.
func (c *Common) FinishTelemetry(w io.Writer, tel *telemetry.Telemetry, total ate.Stats) error {
	if tel == nil {
		return nil
	}
	// Watchdog first: a completed run must never race a stall bundle.
	c.stopFlight()
	if !c.Embedded {
		parallel.SetObserver(nil)
		parallel.SetFleetObserver(nil)
	}
	closeErr := tel.Close()
	rep := tel.Report(Cost(total))
	c.lastFingerprint = rep.Fingerprint
	c.progress.SetFingerprint(rep.Fingerprint)
	c.progress.Done()
	if c.MetricsPath != "" {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return fmt.Errorf("cli: writing metrics: %w", err)
		}
		if err := rep.Metrics.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("cli: writing metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cli: closing metrics: %w", err)
		}
	}
	if c.Report {
		if _, err := fmt.Fprint(w, rep.Render()); err != nil {
			return fmt.Errorf("cli: printing report: %w", err)
		}
	}
	// The record is built only when the trace closed cleanly — a truncated
	// trace must not become ledger history.
	var ledgerErr error
	if closeErr == nil {
		ledgerErr = c.finalizeRun(rep)
	}
	if c.server != nil {
		// Let in-flight /progress streams drain the done state first.
		if err := c.server.Close(); err != nil {
			return fmt.Errorf("cli: closing observability server: %w", err)
		}
		c.server = nil
		c.progress = nil
	}
	c.tel = nil
	c.flight = nil
	if closeErr != nil {
		return fmt.Errorf("cli: closing trace: %w", closeErr)
	}
	if ledgerErr != nil {
		return fmt.Errorf("cli: recording run: %w", ledgerErr)
	}
	return nil
}

// Abort tears a started run's telemetry down without finalizing anything:
// samplers and watchdog stop, the trace file closes (and a ledger-owned temp
// trace is deleted), the progress publisher is marked done so subscribers
// unblock, and the observability server (if any) shuts down. No metrics,
// report or ledger record is written — the run did not finish. For hosts
// (the job service) whose flow body returned an error before reaching
// FinishTelemetry; idempotent.
func (c *Common) Abort() {
	c.stopFlight()
	if !c.Embedded {
		parallel.SetObserver(nil)
		parallel.SetFleetObserver(nil)
	}
	if c.tel != nil {
		c.tel.Close() //nolint:errcheck // aborting; the trace is discarded anyway
		c.tel = nil
	}
	if c.autoTrace && c.tracePath != "" {
		os.Remove(c.tracePath)
		c.autoTrace = false
	}
	c.progress.Done()
	if c.server != nil {
		c.server.Close() //nolint:errcheck // best-effort teardown
		c.server = nil
	}
	c.flight = nil
}

// Cost converts tester counters into a telemetry cost.
func Cost(s ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: s.Measurements,
		Vectors:      s.VectorsApplied,
		Profiles:     s.Profiles,
		SimTimeSec:   s.TestTimeSec,
	}
}

// Delta is the tester cost consumed between two stat snapshots.
func Delta(before, after ate.Stats) telemetry.Cost {
	return telemetry.Cost{
		Measurements: after.Measurements - before.Measurements,
		Vectors:      after.VectorsApplied - before.VectorsApplied,
		Profiles:     after.Profiles - before.Profiles,
		SimTimeSec:   after.TestTimeSec - before.TestTimeSec,
	}
}

// PrintCacheSummary prints the one-line measurement memo-cache summary the
// binaries share. Disabled caches (zero lookups) report as such.
func PrintCacheSummary(w io.Writer, hits, misses int64) {
	lookups := hits + misses
	if lookups == 0 {
		fmt.Fprintln(w, "measurement cache: no lookups (cache disabled or unused)")
		return
	}
	fmt.Fprintf(w, "measurement cache: %d hits / %d misses (hit rate %.1f%%)\n",
		hits, misses, 100*float64(hits)/float64(lookups))
}
