package cli

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Crash bundles: when a run dies (task panic, fatal error) or stalls, the
// CLI freezes everything a post-mortem needs into one directory under
// -crash-dir — the flight-recorder tail, the latest runtime sample, the
// resolved flags, all goroutine stacks, the metrics snapshot and the
// partial run report. Bundles are written into a temp dir and renamed into
// place, so a bundle either exists completely or not at all (a crash while
// writing the crash bundle cannot leave a half-readable one).

// crashMeta is the bundle's meta.json: what happened and when.
type crashMeta struct {
	Reason string `json:"reason"` // "panic", "fatal-error" or "stall"
	Cause  string `json:"cause"`
	// PanicTask is the worker-pool task index when the cause was a
	// parallel.TaskPanic (the deterministic lowest-index loser), else -1.
	PanicTask    int      `json:"panic_task"`
	Run          string   `json:"run"`
	Args         []string `json:"args"`
	TimeUnixNano int64    `json:"time_unix_nano"`
	GoVersion    string   `json:"go_version"`
}

// CaptureCrash writes one crash bundle describing cause (an error, a panic
// value, or a plain string) and returns the bundle directory. A no-op
// returning "" when -crash-dir is unset. Failures to write the bundle are
// reported on stderr but never mask the original failure.
func (c *Common) CaptureCrash(reason string, cause any) string {
	if c == nil || c.CrashDir == "" {
		return ""
	}
	dir, err := c.writeCrashBundle(reason, cause)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cli: writing crash bundle: %v\n", err)
		return ""
	}
	fmt.Fprintf(os.Stderr, "cli: crash bundle written to %s\n", dir)
	return dir
}

func (c *Common) writeCrashBundle(reason string, cause any) (string, error) {
	if err := os.MkdirAll(c.CrashDir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.MkdirTemp(c.CrashDir, ".bundle-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	meta := crashMeta{
		Reason:       reason,
		Cause:        fmt.Sprint(cause),
		PanicTask:    -1,
		Run:          c.runName,
		Args:         os.Args,
		TimeUnixNano: time.Now().UnixNano(),
		GoVersion:    runtime.Version(),
	}
	// Surface the deterministic task index — and the panicking task's own
	// stack, captured at recover time before the pool's re-panic discarded
	// the original frame — when the pool's panic envelope (or an error
	// wrapping it) is the cause.
	var taskStack []byte
	if tp, ok := cause.(parallel.TaskPanic); ok {
		meta.PanicTask = tp.Task
		taskStack = tp.Stack
	} else if err, ok := cause.(error); ok {
		var tp parallel.TaskPanic
		if errors.As(err, &tp) {
			meta.PanicTask = tp.Task
			taskStack = tp.Stack
		}
	}
	if err := writeJSONFile(filepath.Join(tmp, "meta.json"), meta); err != nil {
		return "", err
	}

	// flags.json: the fully resolved flag state (defaults + overrides), so a
	// bundle reproduces the exact invocation without shell history.
	flagVals := map[string]string{}
	flag.CommandLine.VisitAll(func(f *flag.Flag) { flagVals[f.Name] = f.Value.String() })
	if err := writeJSONFile(filepath.Join(tmp, "flags.json"), flagVals); err != nil {
		return "", err
	}

	// stacks.txt: every goroutine, the classic post-mortem artifact. The
	// panicking task's stack leads when the pool captured one — by the time
	// the bundle is written that goroutine is long gone from the live dump.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	if len(taskStack) > 0 {
		buf = append(append([]byte("panicking task stack (captured at recover):\n\n"), taskStack...),
			append([]byte("\nall goroutines at bundle time:\n\n"), buf...)...)
	}
	if err := os.WriteFile(filepath.Join(tmp, "stacks.txt"), buf, 0o644); err != nil {
		return "", err
	}

	// flight.json: the recorder tail + latest runtime sample, quarantined
	// under non_deterministic exactly like the live /debug/flight endpoint.
	if err := writeJSONFile(filepath.Join(tmp, "flight.json"), map[string]any{
		"non_deterministic": c.flight.Snapshot(0),
	}); err != nil {
		return "", err
	}

	// metrics.json + report.txt: the partial run state at the moment of
	// death (total cost is unknown mid-run, so the report's TOTAL row is the
	// phase sum only).
	if c.tel != nil {
		rep := c.tel.Report(telemetry.Cost{})
		f, err := os.Create(filepath.Join(tmp, "metrics.json"))
		if err != nil {
			return "", err
		}
		if err := rep.Metrics.WriteJSON(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(tmp, "report.txt"), []byte(rep.Render()), 0o644); err != nil {
			return "", err
		}
	}

	final := filepath.Join(c.CrashDir, fmt.Sprintf("%s-%d", reason, meta.TimeUnixNano))
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	return final, nil
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// watchdog dumps a stall bundle when no progress event reaches the flight
// recorder for the configured interval. It never exits the process: a stall
// may be a long serial phase, and killing a 10-hour lot run on a false
// positive costs more than an extra bundle. One bundle per quiet episode —
// the watchdog re-arms only after progress resumes.
type watchdog struct {
	stop chan struct{}
	done chan struct{}
}

// startWatchdog begins stall monitoring. rec must be non-nil (the caller
// wires the recorder whenever -crash-dir is set).
func (c *Common) startWatchdog(interval time.Duration) *watchdog {
	w := &watchdog{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		// Poll a few times per interval: cheap, and keeps worst-case
		// detection latency near interval, not 2×interval.
		tick := interval / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		start := time.Now().UnixNano()
		dumped := false
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
				last := c.flight.LastEventUnixNano()
				if last == 0 {
					// Nothing has happened yet; measure from watchdog start
					// so a run that never reports still trips.
					last = start
				}
				quiet := time.Duration(time.Now().UnixNano() - last)
				if quiet >= interval {
					if !dumped {
						dumped = true
						c.CaptureCrash("stall", fmt.Sprintf(
							"no progress event for %s (stall timeout %s)",
							quiet.Round(time.Millisecond), interval))
					}
				} else {
					dumped = false // progress resumed; re-arm
				}
			}
		}
	}()
	return w
}

// Stop terminates the watchdog, idempotently.
func (w *watchdog) Stop() {
	if w == nil {
		return
	}
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}
