package cli

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
)

func TestValidateMessages(t *testing.T) {
	// Pin the one-line error messages: ops scripts grep for them.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	blockedDir := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blockedDir, []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		c       Common
		wantErr string
	}{
		{"clean", Common{}, ""},
		{"listen ok", Common{Listen: "127.0.0.1:0"}, ""},
		{"listen unbindable", Common{Listen: ln.Addr().String()},
			`cannot bind -listen address "` + ln.Addr().String() + `"`},
		{"listen unparseable", Common{Listen: "127.0.0.1:notaport"},
			`cannot bind -listen address "127.0.0.1:notaport"`},
		{"crash dir ok", Common{CrashDir: filepath.Join(t.TempDir(), "bundles")}, ""},
		{"crash dir unwritable", Common{CrashDir: filepath.Join(blockedDir, "sub")},
			`cannot write crash bundles to -crash-dir "` + filepath.Join(blockedDir, "sub") + `"`},
		{"stall without crash dir", Common{StallTimeout: time.Second},
			"-stall-timeout requires -crash-dir"},
		{"bad inject mode", Common{InjectFault: "explode"},
			`unknown -inject-fault mode "explode" (want task-panic or error)`},
		{"inject task-panic ok", Common{InjectFault: "task-panic"}, ""},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want containing %q", tc.name, err, tc.wantErr)
		}
		if err != nil && strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: error is not one line: %q", tc.name, err)
		}
	}
}

// startCrashTelemetry stands up a Common with -crash-dir wired the way
// StartTelemetry does it, without the full binary scaffolding.
func startCrashTelemetry(t *testing.T) *Common {
	t.Helper()
	c := &Common{CrashDir: t.TempDir()}
	tel, err := c.StartTelemetry("crash-test")
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil {
		t.Fatal("crash-dir alone did not enable telemetry")
	}
	t.Cleanup(func() { c.stopFlight() })
	return c
}

func TestCaptureCrashWritesCompleteBundle(t *testing.T) {
	c := startCrashTelemetry(t)
	// Put some run state into the recorder + registry first.
	ph := c.tel.StartPhase("learn")
	c.tel.RecordSearch(5, 40, true)
	ph.End(telemetry.Cost{Measurements: 5, SimTimeSec: 0.1})

	dir := c.CaptureCrash("panic", parallel.TaskPanic{Task: 3, Value: "boom"})
	if dir == "" {
		t.Fatal("CaptureCrash returned empty dir")
	}
	if !strings.HasPrefix(filepath.Base(dir), "panic-") {
		t.Errorf("bundle dir = %q, want panic-<ts>", dir)
	}

	// Complete bundle: all six artifacts.
	for _, name := range []string{"meta.json", "flags.json", "stacks.txt", "flight.json", "metrics.json", "report.txt"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("bundle %s is empty", name)
		}
	}

	var meta struct {
		Reason    string   `json:"reason"`
		Cause     string   `json:"cause"`
		PanicTask int      `json:"panic_task"`
		Run       string   `json:"run"`
		Args      []string `json:"args"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "panic" || !strings.Contains(meta.Cause, "task 3 panicked: boom") {
		t.Errorf("meta = %+v", meta)
	}
	if meta.PanicTask != 3 {
		t.Errorf("panic_task = %d, want 3 (the deterministic lowest-index loser)", meta.PanicTask)
	}
	if meta.Run != "crash-test" || len(meta.Args) == 0 {
		t.Errorf("meta run/args = %+v", meta)
	}

	stacks, err := os.ReadFile(filepath.Join(dir, "stacks.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stacks), "goroutine") {
		t.Error("stacks.txt has no goroutine dump")
	}

	fl, err := os.ReadFile(filepath.Join(dir, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	var flight struct {
		ND struct {
			TotalEvents uint64           `json:"total_events"`
			Events      []map[string]any `json:"events"`
		} `json:"non_deterministic"`
	}
	if err := json.Unmarshal(fl, &flight); err != nil {
		t.Fatal(err)
	}
	if flight.ND.TotalEvents == 0 || len(flight.ND.Events) == 0 {
		t.Errorf("flight.json carries no events: %s", fl)
	}

	rep, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "phase:learn") && !strings.Contains(string(rep), "learn") {
		t.Errorf("report.txt does not mention the learn phase:\n%s", rep)
	}

	// No temp droppings left next to the bundle.
	entries, err := os.ReadDir(c.CrashDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".bundle-") {
			t.Errorf("leftover temp bundle dir %s", e.Name())
		}
	}
}

func TestCaptureCrashDisabledAndErrorCause(t *testing.T) {
	// Without -crash-dir the capture is a silent no-op.
	c := &Common{}
	if dir := c.CaptureCrash("panic", "x"); dir != "" {
		t.Errorf("CaptureCrash without crash dir = %q", dir)
	}
	var nilC *Common
	if dir := nilC.CaptureCrash("panic", "x"); dir != "" {
		t.Error("nil Common CaptureCrash wrote a bundle")
	}

	// A plain error cause records panic_task -1 and reason fatal-error.
	c2 := startCrashTelemetry(t)
	dir := c2.CaptureCrash("fatal-error", os.ErrPermission)
	if dir == "" {
		t.Fatal("no bundle for error cause")
	}
	var meta struct {
		Reason    string `json:"reason"`
		PanicTask int    `json:"panic_task"`
	}
	raw, _ := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "fatal-error" || meta.PanicTask != -1 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestInjectFaultTaskPanicIsRealTaskPanic(t *testing.T) {
	c := startCrashTelemetry(t)
	c.InjectFault = "task-panic"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("inject-fault=task-panic did not panic")
		}
		tp, ok := r.(parallel.TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want parallel.TaskPanic", r)
		}
		if tp.Task != 2 {
			t.Errorf("TaskPanic task = %d, want 2", tp.Task)
		}
		// The Main guard would now write the bundle; do it by hand here.
		dir := c.CaptureCrash("panic", r)
		if dir == "" {
			t.Fatal("no bundle from injected task panic")
		}
		raw, _ := os.ReadFile(filepath.Join(dir, "meta.json"))
		if !strings.Contains(string(raw), `"panic_task": 2`) {
			t.Errorf("meta.json missing panic_task 2:\n%s", raw)
		}
		// The original task's stack (dead by bundle time) leads stacks.txt.
		stacks, _ := os.ReadFile(filepath.Join(dir, "stacks.txt"))
		if !strings.Contains(string(stacks), "panicking task stack") ||
			!strings.Contains(string(stacks), "injectFault") {
			t.Errorf("stacks.txt missing the captured task stack:\n%.2000s", stacks)
		}
	}()
	c.injectFault() //nolint:errcheck // panics
}

func TestStallWatchdogDumpsWithoutExiting(t *testing.T) {
	c := &Common{CrashDir: t.TempDir(), StallTimeout: 80 * time.Millisecond}
	tel, err := c.StartTelemetry("stall-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.stopFlight()
	_ = tel

	// Feed one progress event, then go quiet: the watchdog must dump exactly
	// one stall bundle for the quiet episode.
	c.flight.PhaseStarted("learn")
	waitForBundles(t, c.CrashDir, "stall-", 1, 5*time.Second)

	// Still quiet: no second bundle for the same episode.
	time.Sleep(250 * time.Millisecond)
	if n := countBundles(t, c.CrashDir, "stall-"); n != 1 {
		t.Fatalf("stall bundles after continued quiet = %d, want 1", n)
	}

	// Progress resumes, then stalls again: the watchdog re-arms.
	c.flight.Item("die", 1, 10)
	waitForBundles(t, c.CrashDir, "stall-", 2, 5*time.Second)

	// The watchdog never exits the process (we are still here) and Stop is
	// idempotent.
	c.stopFlight()
	c.stopFlight()
}

func waitForBundles(t *testing.T, dir, prefix string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if countBundles(t, dir, prefix) >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d %q bundles (have %d)", want, prefix, countBundles(t, dir, prefix))
}

func countBundles(t *testing.T, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

func TestStartTelemetryCrashDirAttachesFlight(t *testing.T) {
	c := startCrashTelemetry(t)
	if c.flight == nil {
		t.Fatal("no flight recorder with -crash-dir")
	}
	// The sampler is running and exporting nd_ gauges.
	snap := c.tel.Registry().Snapshot()
	if _, ok := snap.Gauges[telemetry.NonDeterministicPrefix+"flight_heap_bytes"]; !ok {
		t.Error("sampler gauges missing from registry")
	}
	// Observer events reach the recorder.
	c.tel.RecordItem("die", 1, 2)
	if c.flight.TotalEvents() == 0 {
		t.Error("telemetry events not reaching the recorder")
	}
	var _ *flight.Recorder = c.flight
}
