// Property-based invariants for the hand-rolled JSON emission in the
// tracer hot path: appendJSONFloat and appendJSONString must agree with
// encoding/json on every finite float and every string, so the trace
// stream stays parseable by any standard JSON consumer while remaining
// allocation-free to produce.
package telemetry

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/proptest"
)

func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	proptest.Check(t, 500, func(pt *proptest.T) {
		f := pt.FiniteFloat()
		pt.Logf("f=%v bits=%#x", f, math.Float64bits(f))

		got := string(appendJSONFloat(nil, f))
		want, err := json.Marshal(f)
		if err != nil {
			pt.Fatalf("encoding/json rejected finite float %v: %v", f, err)
		}
		if got != string(want) {
			pt.Errorf("appendJSONFloat(%v) = %q, encoding/json = %q", f, got, want)
		}
		var back float64
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			pt.Fatalf("emitted float %q does not parse: %v", got, err)
		}
		if back != f && !(math.IsNaN(back) && math.IsNaN(f)) {
			pt.Errorf("float round trip lost precision: %v → %q → %v", f, got, back)
		}
	})
}

func TestAppendJSONFloatNonFiniteIsValidJSON(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		got := appendJSONFloat(nil, f)
		var s string
		if err := json.Unmarshal(got, &s); err != nil {
			t.Errorf("appendJSONFloat(%v) = %q is not a JSON string: %v", f, got, err)
		}
	}
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	proptest.Check(t, 500, func(pt *proptest.T) {
		var s string
		if pt.Bool() {
			// Raw bytes: exercises invalid UTF-8 and control characters.
			s = string(pt.Bytes(32))
		} else {
			s = pt.String("ab\"\\\n\t\x00é€🂡<>&", 32)
		}
		pt.Logf("s=%q", s)

		got := string(appendJSONString(nil, s))
		want, err := json.Marshal(s)
		if err != nil {
			pt.Fatalf("encoding/json rejected string %q: %v", s, err)
		}
		if got != string(want) {
			pt.Errorf("appendJSONString(%q) = %q, encoding/json = %q", s, got, want)
		}
	})
}

// TestTracerStreamIsCanonicalJSONL: a tracer emitting generated span
// structures with every field type must produce lines that are each valid
// JSON objects with strictly increasing seq — the envelope contract
// ParseTrace relies on.
func TestTracerStreamIsCanonicalJSONL(t *testing.T) {
	proptest.Check(t, 100, func(pt *proptest.T) {
		var buf deterministicBuffer
		tr := NewTracer(&buf)
		root := tr.StartSpan("run", S("mode", pt.String("abc", 8)))
		n := pt.IntRange(1, 20)
		open := []*Span{root}
		for i := 0; i < n; i++ {
			s := open[pt.Intn(len(open))]
			switch pt.Intn(3) {
			case 0:
				open = append(open, s.Child("child", I("i", i)))
			case 1:
				s.Event("tick", F("v", pt.FiniteFloat()), B("ok", pt.Bool()))
			default:
				s.End(I("n", pt.Intn(1000)))
			}
		}
		root.End()
		if err := tr.Close(); err != nil {
			pt.Fatalf("tracer error: %v", err)
		}
		pt.Logf("events=%d bytes=%d", n, len(buf.b))

		lastSeq := int64(0)
		for ln, line := range splitLines(buf.b) {
			var m map[string]any
			if err := json.Unmarshal(line, &m); err != nil {
				pt.Fatalf("line %d is not valid JSON: %v (%q)", ln+1, err, line)
			}
			seq, ok := m["seq"].(float64)
			if !ok || int64(seq) <= lastSeq {
				pt.Errorf("line %d: seq %v not strictly increasing after %d", ln+1, m["seq"], lastSeq)
			}
			lastSeq = int64(seq)
		}
	})
}

// deterministicBuffer is a minimal bytes.Buffer stand-in (avoids importing
// bytes alongside the package's own buffered writer).
type deterministicBuffer struct{ b []byte }

func (d *deterministicBuffer) Write(p []byte) (int, error) {
	d.b = append(d.b, p...)
	return len(p), nil
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}
