package telemetry

import "sync/atomic"

// Live run observation. A RunObserver receives the same logical progress
// events the tracer and registry record — phase boundaries, trip-point
// searches, cache lookups, GA generations, per-item loop progress — as they
// happen, so a live endpoint (internal/obs) can publish in-flight run state
// without polling.
//
// The determinism contract carries over unchanged: every callback fires
// from a deterministic program point (serial sections and task-order merge
// loops) with logical-counter payloads only, and an observer must not feed
// anything back into the tracer or registry. Under that contract attaching
// or detaching an observer cannot change a single trace byte — pinned by
// internal/obs's determinism tests.
type RunObserver interface {
	// PhaseStarted fires when a pipeline phase opens.
	PhaseStarted(name string)
	// PhaseEnded fires when a phase closes with its deterministic ATE cost.
	PhaseEnded(name string, cost Cost)
	// SearchRecorded fires once per performed trip-point search.
	SearchRecorded(measurements, fullRangeBudget int, converged bool)
	// CacheLookups fires with memo-cache effectiveness deltas.
	CacheLookups(hits, misses int64, fullRangeBudget int)
	// DiskCache fires when a persistent measurement store reports its
	// counters, with the run-accumulated totals across all stores.
	DiskCache(d DiskCacheStats)
	// Generation fires once per completed GA generation.
	Generation(gen int, bestWCR float64)
	// Item fires on fine-grained loop progress: done of total units of the
	// named kind ("learn-test", "table1-row", "die", "shmoo-test", …). A
	// zero total means the loop bound is unknown.
	Item(kind string, done, total int)
}

// observerBox wraps the interface so it can live in an atomic.Pointer.
type observerBox struct{ o RunObserver }

// MultiObserver fans every RunObserver callback out to each observer in
// order. Nil entries are dropped; zero remaining observers collapse to nil
// (no observer installed) and a single one is returned unwrapped, so the
// fan-out layer costs nothing unless it is actually needed.
func MultiObserver(obs ...RunObserver) RunObserver {
	kept := make([]RunObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiObserver(kept)
}

type multiObserver []RunObserver

func (m multiObserver) PhaseStarted(name string) {
	for _, o := range m {
		o.PhaseStarted(name)
	}
}

func (m multiObserver) PhaseEnded(name string, cost Cost) {
	for _, o := range m {
		o.PhaseEnded(name, cost)
	}
}

func (m multiObserver) SearchRecorded(measurements, fullRangeBudget int, converged bool) {
	for _, o := range m {
		o.SearchRecorded(measurements, fullRangeBudget, converged)
	}
}

func (m multiObserver) CacheLookups(hits, misses int64, fullRangeBudget int) {
	for _, o := range m {
		o.CacheLookups(hits, misses, fullRangeBudget)
	}
}

func (m multiObserver) DiskCache(d DiskCacheStats) {
	for _, o := range m {
		o.DiskCache(d)
	}
}

func (m multiObserver) Generation(gen int, bestWCR float64) {
	for _, o := range m {
		o.Generation(gen, bestWCR)
	}
}

func (m multiObserver) Item(kind string, done, total int) {
	for _, o := range m {
		o.Item(kind, done, total)
	}
}

// SetRunObserver installs (or, with nil, removes) the live run observer.
// Reads on the emission paths are a single atomic load, so an absent
// observer costs nothing measurable. Nil-safe.
func (t *Telemetry) SetRunObserver(o RunObserver) {
	if t == nil {
		return
	}
	if o == nil {
		t.observer.Store(nil)
		return
	}
	t.observer.Store(&observerBox{o: o})
}

// runObserver returns the installed observer, or nil.
func (t *Telemetry) runObserver() RunObserver {
	if t == nil {
		return nil
	}
	box := t.observer.Load()
	if box == nil {
		return nil
	}
	return box.o
}

// observerPtr is the field type embedded in Telemetry (kept here next to
// the interface it stores).
type observerPtr = atomic.Pointer[observerBox]

// RecordGeneration accounts one completed GA generation: the live best-WCR
// gauge, the generation counter, and the observer callback. The GA's
// generation loop is serial, so calling this from its OnGeneration callback
// is a deterministic program point. Nil-safe.
func (t *Telemetry) RecordGeneration(gen int, bestWCR float64) {
	if t == nil {
		return
	}
	t.reg.Gauge("ga_best_wcr").Set(bestWCR)
	t.reg.Counter("ga_generations_total").Inc()
	if o := t.runObserver(); o != nil {
		o.Generation(gen, bestWCR)
	}
}

// RecordItem reports fine-grained loop progress to the live observer: done
// of total units of the named kind. It deliberately touches neither the
// registry nor the tracer — item progress exists purely for the live
// /progress feed, so enabling it cannot change metrics snapshots or trace
// bytes. Call only from deterministic program points. Nil-safe.
func (t *Telemetry) RecordItem(kind string, done, total int) {
	if t == nil {
		return
	}
	if o := t.runObserver(); o != nil {
		o.Item(kind, done, total)
	}
}

// CacheStats returns the memo-cache lookup totals recorded so far.
// Nil-safe (zeros).
func (t *Telemetry) CacheStats() (hits, misses int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cacheHits, t.cacheMiss
}

// HitRate returns hits/(hits+misses), or 0 when there were no lookups at
// all — never NaN, so zero-lookup runs render as a defined 0% rate.
func HitRate(hits, misses int64) float64 {
	total := hits + misses
	if total <= 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
