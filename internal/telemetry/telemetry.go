// Package telemetry is the zero-third-party-dependency observability layer
// of the characterization system: a metrics registry (metrics.go), a
// structured JSONL event tracer (trace.go) and a run-report builder
// (report.go), bundled behind one nil-safe handle that the pipelines
// thread through their hot paths.
package telemetry

import (
	"sync"
	"time"
)

// Telemetry bundles one run's tracer, metrics registry and report builder.
// A nil *Telemetry is fully inert: every method is nil-receiver-safe and
// free of side effects, so instrumented code carries the handle without
// enabled-checks and pays near-zero cost when observability is off.
type Telemetry struct {
	tracer *Tracer
	reg    *Registry

	// observer is the optional live run observer (see observer.go); loaded
	// atomically on every emission path.
	observer observerPtr

	mu           sync.Mutex
	run          *Span
	runName      string
	phases       []Phase
	pool         PoolStats
	cacheHits    int64
	cacheMiss    int64
	cacheDropped int64
	disk         DiskCacheStats
	started      time.Time
}

// New builds an enabled telemetry handle for one run. The tracer may be
// nil (metrics and report only).
func New(runName string, tracer *Tracer) *Telemetry {
	t := &Telemetry{
		tracer:  tracer,
		reg:     NewRegistry(),
		runName: runName,
		started: time.Now(),
	}
	t.run = tracer.StartSpan("run", S("run", runName))
	return t
}

// Tracer returns the event tracer (nil when tracing is off). Nil-safe.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Registry returns the metrics registry. Nil-safe (returns a nil registry
// whose metrics are inert).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Fingerprint returns the tracer's running trace-byte digest (see
// Tracer.Fingerprint); "" when tracing is off. Nil-safe.
func (t *Telemetry) Fingerprint() string {
	if t == nil {
		return ""
	}
	return t.tracer.Fingerprint()
}

// Run returns the root span. Nil-safe.
func (t *Telemetry) Run() *Span {
	if t == nil {
		return nil
	}
	return t.run
}

// PhaseHandle tracks one in-flight pipeline phase.
type PhaseHandle struct {
	t     *Telemetry
	span  *Span
	name  string
	start time.Time
}

// StartPhase opens a pipeline phase: a child span of the run plus a report
// row. Nil-safe.
func (t *Telemetry) StartPhase(name string) *PhaseHandle {
	if t == nil {
		return nil
	}
	if o := t.runObserver(); o != nil {
		o.PhaseStarted(name)
	}
	return &PhaseHandle{t: t, span: t.run.Child("phase", S("phase", name)), name: name, start: time.Now()}
}

// Span returns the phase's trace span for child events. Nil-safe.
func (p *PhaseHandle) Span() *Span {
	if p == nil {
		return nil
	}
	return p.span
}

// End closes the phase with its deterministic ATE cost. The span payload
// carries only the logical counters; wall time goes to the report row.
func (p *PhaseHandle) End(cost Cost) {
	if p == nil {
		return
	}
	p.span.End(
		S("phase", p.name),
		I("measurements", cost.Measurements),
		I("vectors", cost.Vectors),
		I("profiles", cost.Profiles),
		F("sim_time_sec", cost.SimTimeSec),
	)
	reg := p.t.Registry()
	reg.Counter("ate_measurements_total").Add(cost.Measurements)
	reg.Counter("ate_vectors_total").Add(cost.Vectors)
	reg.Counter("ate_profiles_total").Add(cost.Profiles)
	reg.Counter("phase_" + p.name + "_measurements").Add(cost.Measurements)
	p.t.mu.Lock()
	p.t.phases = append(p.t.phases, Phase{
		Name:        p.name,
		Cost:        cost,
		WallSeconds: time.Since(p.start).Seconds(),
	})
	p.t.mu.Unlock()
	if o := p.t.runObserver(); o != nil {
		o.PhaseEnded(p.name, cost)
	}
}

// RecordSearch accounts one performed trip-point search: its actual
// measurement cost, the estimated cost of a full-range search over the
// same options (the no-SUTP baseline), and whether it converged. Call only
// from deterministic program points.
func (t *Telemetry) RecordSearch(measurements, fullRangeBudget int, converged bool) {
	if t == nil {
		return
	}
	reg := t.reg
	reg.Counter("search_total").Inc()
	reg.Counter("search_measurements_total").Add(int64(measurements))
	reg.Counter("search_baseline_measurements_total").Add(int64(fullRangeBudget))
	if !converged {
		reg.Counter("search_nonconverged_total").Inc()
	}
	reg.Histogram("search_measurements_per_search").Observe(float64(measurements))
	if o := t.runObserver(); o != nil {
		o.SearchRecorded(measurements, fullRangeBudget, converged)
	}
}

// RecordCacheLookups accounts memo-cache effectiveness deltas. A hit avoids
// an entire search, so the baseline grows by the full-range budget per hit.
func (t *Telemetry) RecordCacheLookups(hits, misses int64, fullRangeBudget int) {
	if t == nil {
		return
	}
	t.reg.Counter("cache_hits_total").Add(hits)
	t.reg.Counter("cache_misses_total").Add(misses)
	t.reg.Counter("search_baseline_measurements_total").Add(hits * int64(fullRangeBudget))
	t.mu.Lock()
	t.cacheHits += hits
	t.cacheMiss += misses
	t.mu.Unlock()
	if o := t.runObserver(); o != nil {
		o.CacheLookups(hits, misses, fullRangeBudget)
	}
}

// RecordCacheDropped accounts memo-cache inserts rejected at capacity
// (the delta of parallel.MemoCache.Dropped across a serial resolve
// section). Zero deltas are a no-op. Nil-safe.
func (t *Telemetry) RecordCacheDropped(dropped int64) {
	if t == nil || dropped <= 0 {
		return
	}
	t.reg.Counter("cache_dropped_total").Add(dropped)
	t.mu.Lock()
	t.cacheDropped += dropped
	t.mu.Unlock()
}

// RecordDiskCache merges one persistent measurement store's counters
// (typically cachestore.Stats at the end of a lot screen) into the run
// totals, mirrors them as registry gauges for the Prometheus bridge, and
// feeds the live observer the accumulated totals. Call once per store from
// a deterministic program point. Nil-safe.
func (t *Telemetry) RecordDiskCache(d DiskCacheStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.disk.add(d)
	total := t.disk
	t.mu.Unlock()
	reg := t.reg
	reg.Gauge("disk_cache_loaded_entries").Set(float64(total.LoadedEntries))
	reg.Gauge("disk_cache_loaded_segments").Set(float64(total.LoadedSegments))
	reg.Gauge("disk_cache_hits").Set(float64(total.Hits))
	reg.Gauge("disk_cache_misses").Set(float64(total.Misses))
	reg.Gauge("disk_cache_flushed_entries").Set(float64(total.FlushedEntries))
	reg.Gauge("disk_cache_bytes_on_disk").Set(float64(total.BytesOnDisk))
	if o := t.runObserver(); o != nil {
		o.DiskCache(total)
	}
}

// ObservePool aggregates one worker-pool run's per-worker task counts —
// scheduling-dependent, so this feeds only the report's non-deterministic
// section plus "nd_"-prefixed counters.
func (t *Telemetry) ObservePool(workers int, tasksPerWorker []int) {
	if t == nil {
		return
	}
	t.reg.Counter(NonDeterministicPrefix + "pool_runs_total").Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pool.Runs++
	if workers > t.pool.MaxWorkers {
		t.pool.MaxWorkers = workers
	}
	for w, n := range tasksPerWorker {
		t.pool.Tasks += int64(n)
		for len(t.pool.WorkerTasks) <= w {
			t.pool.WorkerTasks = append(t.pool.WorkerTasks, 0)
		}
		t.pool.WorkerTasks[w] += int64(n)
	}
}

// Report finalizes and returns the run report: registry snapshot, phase
// breakdown reconciled against the run totals, cache effectiveness and the
// no-SUTP/no-cache savings estimate. total is the whole-run ATE cost.
// Nil-safe (returns nil).
func (t *Telemetry) Report(total Cost) *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	phases := append([]Phase(nil), t.phases...)
	pool := t.pool
	pool.WorkerTasks = append([]int64(nil), t.pool.WorkerTasks...)
	hits, misses, dropped := t.cacheHits, t.cacheMiss, t.cacheDropped
	disk := t.disk
	wall := time.Since(t.started).Seconds()
	name := t.runName
	t.mu.Unlock()

	r := &Report{
		Run:                  name,
		Fingerprint:          t.tracer.Fingerprint(),
		Phases:               phases,
		Total:                total,
		CacheHits:            hits,
		CacheMisses:          misses,
		CacheDropped:         dropped,
		DiskCache:            disk,
		Searches:             t.reg.Counter("search_total").Value(),
		SearchMeasurements:   t.reg.Counter("search_measurements_total").Value(),
		BaselineMeasurements: t.reg.Counter("search_baseline_measurements_total").Value(),
		Metrics:              t.reg.Snapshot(),
		NonDeterministic:     NonDet{WallSeconds: wall, Pool: pool},
	}
	r.finish()
	return r
}

// Close ends the root span and closes the tracer sink. Nil-safe.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	run := t.run
	t.run = nil
	t.mu.Unlock()
	if run != nil {
		run.End()
	}
	return t.tracer.Close()
}
