package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Run report: the end-of-run summary a characterization service would page
// through — per-phase cost breakdown, cache effectiveness, measurements
// saved versus a no-SUTP/no-cache baseline, and the wall/simulated-time
// split. Everything except the NonDeterministic section is derived from
// logical counters and is identical across `-parallel` worker counts.

// Cost is the deterministic ATE cost of a phase (a telemetry-local mirror
// of ate.Stats, kept dependency-free).
type Cost struct {
	Measurements int64   `json:"measurements"`
	Vectors      int64   `json:"vectors"`
	Profiles     int64   `json:"profiles"`
	SimTimeSec   float64 `json:"sim_time_sec"`
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.Measurements += other.Measurements
	c.Vectors += other.Vectors
	c.Profiles += other.Profiles
	c.SimTimeSec += other.SimTimeSec
}

// DiskCacheStats mirrors the persistent measurement store's counters
// (internal/cachestore) without the dependency: entries recovered at open,
// lookup effectiveness, entries flushed and the bytes the store keeps on
// disk. All values are logical counters — deterministic for a given
// workload and cache state.
type DiskCacheStats struct {
	LoadedEntries  int64 `json:"loaded_entries"`
	LoadedSegments int64 `json:"loaded_segments"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	FlushedEntries int64 `json:"flushed_entries"`
	BytesOnDisk    int64 `json:"bytes_on_disk"`
}

// add accumulates other into d.
func (d *DiskCacheStats) add(other DiskCacheStats) {
	d.LoadedEntries += other.LoadedEntries
	d.LoadedSegments += other.LoadedSegments
	d.Hits += other.Hits
	d.Misses += other.Misses
	d.FlushedEntries += other.FlushedEntries
	d.BytesOnDisk += other.BytesOnDisk
}

// active reports whether the store saw any traffic at all.
func (d DiskCacheStats) active() bool {
	return d != DiskCacheStats{}
}

// Phase is one pipeline stage of the run (learn, propose-seeds, optimize,
// table1 rows, lot screen, …).
type Phase struct {
	Name string `json:"name"`
	Cost
	// WallSeconds is scheduling- and machine-dependent; it never appears
	// in traces and is excluded from determinism comparisons.
	WallSeconds float64 `json:"wall_seconds_nondeterministic"`
}

// PoolStats aggregates worker-pool execution. Per-worker task counts
// depend on goroutine scheduling — non-deterministic by nature.
type PoolStats struct {
	Runs        int64   `json:"runs"`
	Tasks       int64   `json:"tasks"`
	MaxWorkers  int     `json:"max_workers"`
	WorkerTasks []int64 `json:"worker_tasks,omitempty"`
}

// NonDet collects every field whose value may differ between identical
// runs: wall-clock timing and scheduling-dependent pool utilization.
type NonDet struct {
	WallSeconds float64   `json:"wall_seconds"`
	Pool        PoolStats `json:"pool"`
}

// Report is the rendered end-of-run summary.
type Report struct {
	Run string `json:"run"`
	// Fingerprint is the FNV-1a 64 digest of the trace bytes emitted so far
	// ("fnv1a:%016x"); when the report is built after the trace closed it
	// covers the whole trace file, so two runs of the same workload carry
	// the same fingerprint at any -parallel. Empty when tracing is off.
	Fingerprint string  `json:"trace_fingerprint,omitempty"`
	Phases      []Phase `json:"phases"`
	// Total is the whole-run ATE cost; the phase breakdown plus the
	// "unattributed" phase sums to it exactly.
	Total Cost `json:"total"`

	// Cache effectiveness of the measurement memo-cache. CacheDropped
	// counts inserts the bounded cache rejected at capacity
	// (parallel.MemoCache.Dropped) — a non-zero value flags a limit set
	// too tight for the workload.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheDropped int64 `json:"cache_dropped"`

	// DiskCache aggregates the persistent measurement stores the run
	// used (zero when no -cache-dir was given).
	DiskCache DiskCacheStats `json:"disk_cache"`

	// Searches counts trip-point searches actually performed;
	// SearchMeasurements is what they cost. BaselineMeasurements estimates
	// the cost had every search — including the ones the memo-cache
	// absorbed — run a full-range uncached search (the no-SUTP/no-cache
	// tester a naive flow would be).
	Searches             int64 `json:"searches"`
	SearchMeasurements   int64 `json:"search_measurements"`
	BaselineMeasurements int64 `json:"baseline_measurements"`

	// Metrics is the registry snapshot at report time.
	Metrics Snapshot `json:"metrics"`

	NonDeterministic NonDet `json:"non_deterministic"`
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (r *Report) CacheHitRate() float64 {
	return HitRate(r.CacheHits, r.CacheMisses)
}

// MeasurementsSaved returns the estimated measurements the SUTP reference
// anchoring and the memo-cache together avoided versus the baseline.
func (r *Report) MeasurementsSaved() int64 {
	saved := r.BaselineMeasurements - r.SearchMeasurements
	if saved < 0 {
		return 0
	}
	return saved
}

// PhaseMeasurements sums the phase breakdown (including "unattributed").
func (r *Report) PhaseMeasurements() int64 {
	var n int64
	for _, p := range r.Phases {
		n += p.Measurements
	}
	return n
}

// finish reconciles the breakdown against the run totals: any cost not
// covered by an explicit phase lands in a trailing "unattributed" phase, so
// the breakdown always sums to Total exactly.
func (r *Report) finish() {
	var covered Cost
	for _, p := range r.Phases {
		covered.Add(p.Cost)
	}
	rest := Cost{
		Measurements: r.Total.Measurements - covered.Measurements,
		Vectors:      r.Total.Vectors - covered.Vectors,
		Profiles:     r.Total.Profiles - covered.Profiles,
		SimTimeSec:   r.Total.SimTimeSec - covered.SimTimeSec,
	}
	if rest.Measurements != 0 || rest.Vectors != 0 || rest.Profiles != 0 {
		r.Phases = append(r.Phases, Phase{Name: "unattributed", Cost: rest})
	}
}

// Render formats the human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== run report: %s ===\n", r.Run)
	fmt.Fprintf(&b, "%-16s %13s %13s %9s %12s %10s\n",
		"phase", "measurements", "vectors", "profiles", "sim time (s)", "wall (s)")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-16s %13d %13d %9d %12.3f %10.3f\n",
			p.Name, p.Measurements, p.Vectors, p.Profiles, p.SimTimeSec, p.WallSeconds)
	}
	fmt.Fprintf(&b, "%-16s %13d %13d %9d %12.3f %10.3f\n",
		"TOTAL", r.Total.Measurements, r.Total.Vectors, r.Total.Profiles,
		r.Total.SimTimeSec, r.NonDeterministic.WallSeconds)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "measurement cache: %d hits / %d misses (hit rate %.1f%%)",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate())
		if r.CacheDropped > 0 {
			fmt.Fprintf(&b, ", %d dropped at capacity", r.CacheDropped)
		}
		fmt.Fprintf(&b, "\n")
	}
	if d := r.DiskCache; d.active() {
		fmt.Fprintf(&b, "disk cache: %d entries loaded (%d segments), %d hits / %d misses (hit rate %.1f%%), %d flushed, %d bytes on disk\n",
			d.LoadedEntries, d.LoadedSegments, d.Hits, d.Misses,
			100*HitRate(d.Hits, d.Misses), d.FlushedEntries, d.BytesOnDisk)
	}
	if r.BaselineMeasurements > 0 {
		fmt.Fprintf(&b, "searches: %d performed, %d measurements; no-SUTP/no-cache baseline %d → saved %d (%.1f%%)\n",
			r.Searches, r.SearchMeasurements, r.BaselineMeasurements, r.MeasurementsSaved(),
			100*float64(r.MeasurementsSaved())/float64(r.BaselineMeasurements))
	}
	if p := r.NonDeterministic.Pool; p.Runs > 0 {
		fmt.Fprintf(&b, "worker pool: %d runs, %d tasks, up to %d workers; per-worker tasks %v (non-deterministic)\n",
			p.Runs, p.Tasks, p.MaxWorkers, p.WorkerTasks)
	}
	if r.Fingerprint != "" {
		fmt.Fprintf(&b, "trace fingerprint: %s\n", r.Fingerprint)
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	type alias Report // avoid recursing into a custom marshaller later
	a := alias(*r)
	a.Metrics = Snapshot{} // re-encoded below with +Inf handling
	raw, err := json.MarshalIndent(struct {
		alias
		Metrics jsonSnapshot `json:"metrics"`
	}{alias: a, Metrics: encodable(r.Metrics)}, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding report: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}
