package telemetry

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"
)

// TestTracerFingerprintMatchesEmittedBytes: the streaming digest equals a
// straight FNV-1a 64 over the bytes the tracer wrote.
func TestTracerFingerprintMatchesEmittedBytes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.emit("run-start", 0, 0, "fp-test", []Field{S("run", "fp-test")})
	tr.emit("event", 0, 0, "trip", []Field{I("i", 1), F("x", 2.5)})
	tr.emit("run-end", 0, 0, "fp-test", nil)
	if err := tr.Close(); err != nil { // flush the buffered sink
		t.Fatal(err)
	}

	h := fnv.New64a()
	h.Write(buf.Bytes())
	want := fmt.Sprintf("fnv1a:%016x", h.Sum64())
	if got := tr.Fingerprint(); got != want {
		t.Errorf("Fingerprint = %s, want %s (over %d bytes)", got, want, buf.Len())
	}
}

// TestTracerFingerprintDeterministic: two tracers fed the same events agree;
// a differing event diverges them.
func TestTracerFingerprintDeterministic(t *testing.T) {
	emit := func(x int) string {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.emit("run-start", 0, 0, "fp", nil)
		tr.emit("event", 0, 0, "x", []Field{I("x", x)})
		return tr.Fingerprint()
	}
	if emit(1) != emit(1) {
		t.Error("identical event streams produced different fingerprints")
	}
	if emit(1) == emit(2) {
		t.Error("different event streams produced the same fingerprint")
	}
}

// TestNilTracerFingerprintEmpty: the nil no-op tracer (tracing off) has no
// fingerprint, and the report omits it.
func TestNilTracerFingerprintEmpty(t *testing.T) {
	var tr *Tracer
	if got := tr.Fingerprint(); got != "" {
		t.Errorf("nil tracer Fingerprint = %q, want empty", got)
	}
	tel := New("no-trace", nil)
	rep := tel.Report(Cost{})
	if rep.Fingerprint != "" {
		t.Errorf("report Fingerprint with tracing off = %q", rep.Fingerprint)
	}
}

// TestReportCarriesFingerprint: the telemetry report picks the digest up
// and renders it.
func TestReportCarriesFingerprint(t *testing.T) {
	var buf bytes.Buffer
	tel := New("fp-run", NewTracer(&buf))
	tel.StartPhase("work").End(Cost{Measurements: 1})
	rep := tel.Report(Cost{Measurements: 1})
	if rep.Fingerprint == "" || len(rep.Fingerprint) != len("fnv1a:")+16 {
		t.Errorf("report Fingerprint = %q", rep.Fingerprint)
	}
	if !bytes.Contains([]byte(rep.Render()), []byte("trace fingerprint: "+rep.Fingerprint)) {
		t.Error("Render omitted the trace fingerprint line")
	}
}
