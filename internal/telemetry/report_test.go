package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestReportPhaseBreakdownSumsToTotal(t *testing.T) {
	tel := New("unit", nil)
	p1 := tel.StartPhase("learn")
	p1.End(Cost{Measurements: 100, Vectors: 1000, Profiles: 10, SimTimeSec: 1})
	p2 := tel.StartPhase("optimize")
	p2.End(Cost{Measurements: 50, Vectors: 500, Profiles: 5, SimTimeSec: 0.5})

	// Totals exceed the phases: the report must reconcile via "unattributed".
	total := Cost{Measurements: 170, Vectors: 1600, Profiles: 16, SimTimeSec: 1.6}
	r := tel.Report(total)
	if got := r.PhaseMeasurements(); got != total.Measurements {
		t.Errorf("phase breakdown sums to %d, want %d", got, total.Measurements)
	}
	last := r.Phases[len(r.Phases)-1]
	if last.Name != "unattributed" || last.Measurements != 20 {
		t.Errorf("unattributed phase = %+v", last)
	}
	if tel.Close() != nil {
		t.Error("close failed")
	}
}

func TestReportNoUnattributedWhenExact(t *testing.T) {
	tel := New("unit", nil)
	tel.StartPhase("only").End(Cost{Measurements: 5})
	r := tel.Report(Cost{Measurements: 5})
	if len(r.Phases) != 1 {
		t.Errorf("got %d phases, want 1 (no unattributed row): %+v", len(r.Phases), r.Phases)
	}
}

func TestReportCacheAndSavings(t *testing.T) {
	tel := New("unit", nil)
	for i := 0; i < 4; i++ {
		tel.RecordSearch(5, 12, true)
	}
	tel.RecordCacheLookups(6, 4, 12)
	r := tel.Report(Cost{Measurements: 20})
	if r.CacheHits != 6 || r.CacheMisses != 4 {
		t.Errorf("cache %d/%d", r.CacheHits, r.CacheMisses)
	}
	if got := r.CacheHitRate(); got != 0.6 {
		t.Errorf("hit rate %g, want 0.6", got)
	}
	if r.Searches != 4 || r.SearchMeasurements != 20 {
		t.Errorf("searches %d cost %d", r.Searches, r.SearchMeasurements)
	}
	// Baseline: 4 performed + 6 cache-absorbed searches × 12 full-range.
	if r.BaselineMeasurements != 10*12 {
		t.Errorf("baseline = %d, want 120", r.BaselineMeasurements)
	}
	if r.MeasurementsSaved() != 100 {
		t.Errorf("saved = %d, want 100", r.MeasurementsSaved())
	}
}

func TestReportRenderAndJSON(t *testing.T) {
	tel := New("fig5", nil)
	tel.StartPhase("learn").End(Cost{Measurements: 10})
	tel.RecordSearch(10, 11, true)
	tel.RecordCacheLookups(3, 7, 11)
	tel.ObservePool(2, []int{3, 4})
	r := tel.Report(Cost{Measurements: 10})

	text := r.Render()
	for _, want := range []string{"run report: fig5", "learn", "TOTAL", "hit rate 30.0%", "worker pool: 1 runs, 7 tasks"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON invalid: %v\n%s", err, buf.String())
	}
	if decoded["run"] != "fig5" {
		t.Errorf("run = %v", decoded["run"])
	}
	nd, ok := decoded["non_deterministic"].(map[string]any)
	if !ok {
		t.Fatalf("missing non_deterministic section: %v", decoded)
	}
	if _, ok := nd["wall_seconds"]; !ok {
		t.Error("wall clock not confined to the non_deterministic section")
	}
	if _, ok := decoded["metrics"].(map[string]any); !ok {
		t.Error("metrics snapshot missing from report JSON")
	}
}

func TestNilTelemetryIsInert(t *testing.T) {
	var tel *Telemetry
	tel.StartPhase("x").End(Cost{Measurements: 1})
	tel.RecordSearch(1, 2, true)
	tel.RecordCacheLookups(1, 1, 2)
	tel.ObservePool(4, []int{1, 1, 1, 1})
	tel.Registry().Counter("c").Inc()
	tel.Run().Event("e")
	if tel.Report(Cost{}) != nil {
		t.Error("nil telemetry should report nil")
	}
	if tel.Close() != nil {
		t.Error("nil telemetry Close should be nil")
	}
}
