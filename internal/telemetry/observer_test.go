package telemetry

import (
	"bytes"
	"reflect"
	"testing"
)

// recordingObserver logs every callback in order.
type recordingObserver struct {
	log []string
}

func (r *recordingObserver) PhaseStarted(name string) { r.log = append(r.log, "start:"+name) }
func (r *recordingObserver) PhaseEnded(name string, cost Cost) {
	r.log = append(r.log, "end:"+name)
}
func (r *recordingObserver) SearchRecorded(m, budget int, conv bool) {
	r.log = append(r.log, "search")
}
func (r *recordingObserver) CacheLookups(hits, misses int64, budget int) {
	r.log = append(r.log, "cache")
}
func (r *recordingObserver) Generation(gen int, best float64) { r.log = append(r.log, "gen") }
func (r *recordingObserver) Item(kind string, done, total int) {
	r.log = append(r.log, "item:"+kind)
}

func TestRunObserverReceivesCallbacks(t *testing.T) {
	tel := New("obs", nil)
	obs := &recordingObserver{}
	tel.SetRunObserver(obs)

	ph := tel.StartPhase("learn")
	tel.RecordSearch(4, 64, true)
	tel.RecordCacheLookups(2, 1, 64)
	tel.RecordItem("learn-test", 1, 10)
	ph.End(Cost{Measurements: 4})
	tel.RecordGeneration(3, 1.25)

	want := []string{"start:learn", "search", "cache", "item:learn-test", "end:learn", "gen"}
	if !reflect.DeepEqual(obs.log, want) {
		t.Errorf("observer log = %v, want %v", obs.log, want)
	}
	if v := tel.Registry().Gauge("ga_best_wcr").Value(); v != 1.25 {
		t.Errorf("RecordGeneration gauge = %v, want 1.25", v)
	}
	if n := tel.Registry().Counter("ga_generations_total").Value(); n != 1 {
		t.Errorf("ga_generations_total = %d, want 1", n)
	}
	if h, m := tel.CacheStats(); h != 2 || m != 1 {
		t.Errorf("CacheStats = %d/%d, want 2/1", h, m)
	}

	// Detaching stops delivery; nil telemetry stays inert.
	tel.SetRunObserver(nil)
	tel.RecordItem("x", 1, 1)
	if len(obs.log) != len(want) {
		t.Error("observer received events after detach")
	}
	var nilTel *Telemetry
	nilTel.SetRunObserver(obs)
	nilTel.RecordGeneration(1, 1)
	nilTel.RecordItem("x", 1, 1)
	if h, m := nilTel.CacheStats(); h != 0 || m != 0 {
		t.Error("nil telemetry CacheStats not zero")
	}
}

// Attaching an observer must not change trace bytes: the observer path
// never writes to the tracer.
func TestObserverDoesNotPerturbTrace(t *testing.T) {
	run := func(attach bool) []byte {
		var buf bytes.Buffer
		tel := New("run", NewTracer(&buf))
		if attach {
			tel.SetRunObserver(&recordingObserver{})
		}
		ph := tel.StartPhase("p")
		tel.RecordSearch(3, 32, true)
		tel.RecordItem("unit", 1, 2)
		ph.End(Cost{Measurements: 3})
		tel.RecordGeneration(1, 2.0)
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, observed := run(false), run(true)
	if !bytes.Equal(plain, observed) {
		t.Errorf("trace differs with observer attached:\nplain:    %s\nobserved: %s", plain, observed)
	}
}
