package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// recordingObserver logs every callback in order.
type recordingObserver struct {
	log []string
}

func (r *recordingObserver) PhaseStarted(name string) { r.log = append(r.log, "start:"+name) }
func (r *recordingObserver) PhaseEnded(name string, cost Cost) {
	r.log = append(r.log, "end:"+name)
}
func (r *recordingObserver) SearchRecorded(m, budget int, conv bool) {
	r.log = append(r.log, "search")
}
func (r *recordingObserver) CacheLookups(hits, misses int64, budget int) {
	r.log = append(r.log, "cache")
}
func (r *recordingObserver) DiskCache(d DiskCacheStats) {
	r.log = append(r.log, "disk")
}
func (r *recordingObserver) Generation(gen int, best float64) { r.log = append(r.log, "gen") }
func (r *recordingObserver) Item(kind string, done, total int) {
	r.log = append(r.log, "item:"+kind)
}

func TestRunObserverReceivesCallbacks(t *testing.T) {
	tel := New("obs", nil)
	obs := &recordingObserver{}
	tel.SetRunObserver(obs)

	ph := tel.StartPhase("learn")
	tel.RecordSearch(4, 64, true)
	tel.RecordCacheLookups(2, 1, 64)
	tel.RecordItem("learn-test", 1, 10)
	ph.End(Cost{Measurements: 4})
	tel.RecordGeneration(3, 1.25)

	want := []string{"start:learn", "search", "cache", "item:learn-test", "end:learn", "gen"}
	if !reflect.DeepEqual(obs.log, want) {
		t.Errorf("observer log = %v, want %v", obs.log, want)
	}
	if v := tel.Registry().Gauge("ga_best_wcr").Value(); v != 1.25 {
		t.Errorf("RecordGeneration gauge = %v, want 1.25", v)
	}
	if n := tel.Registry().Counter("ga_generations_total").Value(); n != 1 {
		t.Errorf("ga_generations_total = %d, want 1", n)
	}
	if h, m := tel.CacheStats(); h != 2 || m != 1 {
		t.Errorf("CacheStats = %d/%d, want 2/1", h, m)
	}

	// Detaching stops delivery; nil telemetry stays inert.
	tel.SetRunObserver(nil)
	tel.RecordItem("x", 1, 1)
	if len(obs.log) != len(want) {
		t.Error("observer received events after detach")
	}
	var nilTel *Telemetry
	nilTel.SetRunObserver(obs)
	nilTel.RecordGeneration(1, 1)
	nilTel.RecordItem("x", 1, 1)
	if h, m := nilTel.CacheStats(); h != 0 || m != 0 {
		t.Error("nil telemetry CacheStats not zero")
	}
}

func TestDiskCacheAndDroppedSurface(t *testing.T) {
	tel := New("disk", nil)
	obs := &recordingObserver{}
	tel.SetRunObserver(obs)

	tel.RecordCacheDropped(0) // no-op
	tel.RecordCacheDropped(3)
	tel.RecordDiskCache(DiskCacheStats{LoadedEntries: 10, LoadedSegments: 2, Hits: 7, Misses: 3, FlushedEntries: 3, BytesOnDisk: 480})
	tel.RecordDiskCache(DiskCacheStats{Hits: 5, FlushedEntries: 1, BytesOnDisk: 16})

	if got := tel.Registry().Counter("cache_dropped_total").Value(); got != 3 {
		t.Errorf("cache_dropped_total = %d, want 3", got)
	}
	if got := tel.Registry().Gauge("disk_cache_hits").Value(); got != 12 {
		t.Errorf("disk_cache_hits gauge = %v, want 12", got)
	}
	if got := tel.Registry().Gauge("disk_cache_bytes_on_disk").Value(); got != 496 {
		t.Errorf("disk_cache_bytes_on_disk gauge = %v, want 496", got)
	}
	if !reflect.DeepEqual(obs.log, []string{"disk", "disk"}) {
		t.Errorf("observer log = %v", obs.log)
	}

	r := tel.Report(Cost{})
	if r.CacheDropped != 3 {
		t.Errorf("report CacheDropped = %d", r.CacheDropped)
	}
	want := DiskCacheStats{LoadedEntries: 10, LoadedSegments: 2, Hits: 12, Misses: 3, FlushedEntries: 4, BytesOnDisk: 496}
	if r.DiskCache != want {
		t.Errorf("report DiskCache = %+v, want %+v", r.DiskCache, want)
	}
	text := r.Render()
	if !strings.Contains(text, "disk cache: 10 entries loaded (2 segments), 12 hits / 3 misses (hit rate 80.0%), 4 flushed, 496 bytes on disk") {
		t.Errorf("render missing disk cache line:\n%s", text)
	}

	// Nil telemetry stays inert.
	var nilTel *Telemetry
	nilTel.RecordCacheDropped(5)
	nilTel.RecordDiskCache(DiskCacheStats{Hits: 1})
}

// Attaching an observer must not change trace bytes: the observer path
// never writes to the tracer.
func TestObserverDoesNotPerturbTrace(t *testing.T) {
	run := func(attach bool) []byte {
		var buf bytes.Buffer
		tel := New("run", NewTracer(&buf))
		if attach {
			tel.SetRunObserver(&recordingObserver{})
		}
		ph := tel.StartPhase("p")
		tel.RecordSearch(3, 32, true)
		tel.RecordItem("unit", 1, 2)
		ph.End(Cost{Measurements: 3})
		tel.RecordGeneration(1, 2.0)
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, observed := run(false), run(true)
	if !bytes.Equal(plain, observed) {
		t.Errorf("trace differs with observer attached:\nplain:    %s\nobserved: %s", plain, observed)
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	a, b := &recordingObserver{}, &recordingObserver{}

	// Nil entries drop; zero observers collapse to nil; one returns itself.
	if MultiObserver() != nil {
		t.Error("MultiObserver() should be nil")
	}
	if MultiObserver(nil, nil) != nil {
		t.Error("MultiObserver(nil, nil) should be nil")
	}
	if got := MultiObserver(nil, a); got != RunObserver(a) {
		t.Errorf("MultiObserver(nil, a) = %v, want a unwrapped", got)
	}

	m := MultiObserver(a, nil, b)
	m.PhaseStarted("learn")
	m.SearchRecorded(4, 64, true)
	m.CacheLookups(2, 1, 64)
	m.DiskCache(DiskCacheStats{Hits: 1})
	m.Generation(3, 1.25)
	m.Item("die", 1, 10)
	m.PhaseEnded("learn", Cost{Measurements: 4})

	want := []string{"start:learn", "search", "cache", "disk", "gen", "item:die", "end:learn"}
	if !reflect.DeepEqual(a.log, want) {
		t.Errorf("first observer log = %v, want %v", a.log, want)
	}
	if !reflect.DeepEqual(b.log, want) {
		t.Errorf("second observer log = %v, want %v", b.log, want)
	}
}
