package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.StartSpan("run", S("run", "unit"))
	phase := root.Child("phase", S("phase", "learn"))
	phase.Event("measurement", I("i", 0), F("trip", 23.45), B("converged", true))
	phase.End(I("measurements", 7))
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	var prevSeq float64
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		seq := m["seq"].(float64)
		if seq <= prevSeq {
			t.Errorf("line %d seq %g not increasing past %g", i, seq, prevSeq)
		}
		prevSeq = seq
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["ev"] != "event" || ev["name"] != "measurement" || ev["trip"] != 23.45 || ev["converged"] != true {
		t.Errorf("event payload wrong: %v", ev)
	}
	var start map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &start); err != nil {
		t.Fatal(err)
	}
	if start["parent"] != float64(1) {
		t.Errorf("child span parent = %v, want 1", start["parent"])
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.Event("y", I("a", 1))
	sp.Child("z").End()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) should return the nil no-op tracer")
	}
}

func TestTracerByteIdenticalReplays(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		root := tr.StartSpan("run")
		for g := 0; g < 3; g++ {
			root.Event("generation", I("gen", int64(g)), F("best", 1.0/float64(g+1)))
		}
		root.End()
		tr.Close()
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Error("identical emission sequences produced different bytes")
	}
}

func TestTracerFieldEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.StartSpan("s",
		S("quoted", `a"b\c`),
		F("tiny", 1e-9),
		F("neg", -2.5),
		I("int", -7),
		Field{Key: "plain_int", Value: 3},
		Field{Key: "bad", Value: []int{1}},
	)
	tr.Close()
	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, line)
	}
	if m["quoted"] != `a"b\c` {
		t.Errorf("string escaping broken: %v", m["quoted"])
	}
	if m["tiny"] != 1e-9 || m["neg"] != -2.5 || m["int"] != float64(-7) || m["plain_int"] != float64(3) {
		t.Errorf("numeric encoding broken: %v", m)
	}
	if m["bad"] != "INVALID_FIELD_TYPE" {
		t.Errorf("unknown type not flagged: %v", m["bad"])
	}
}

func TestFileTracer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := NewFileTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.StartSpan("run").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("file has %d lines, want 2", n)
	}
}
