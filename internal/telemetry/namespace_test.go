package telemetry

import "testing"

func TestSnapshotPrefixed(t *testing.T) {
	r := NewRegistry()
	r.Counter("ate_measurements_total").Add(7)
	r.Gauge("ga_best_wcr").Set(1.25)
	r.Histogram("search_measurements").Observe(3)

	snap := r.Snapshot()
	pre := snap.Prefixed("job_j000001_")

	if got := pre.Counters["job_j000001_ate_measurements_total"]; got != 7 {
		t.Fatalf("prefixed counter = %d, want 7", got)
	}
	if got := pre.Gauges["job_j000001_ga_best_wcr"]; got != 1.25 {
		t.Fatalf("prefixed gauge = %v, want 1.25", got)
	}
	if h, ok := pre.Histograms["job_j000001_search_measurements"]; !ok || h.Count != 1 {
		t.Fatalf("prefixed histogram missing or wrong count: %+v", h)
	}
	if _, ok := pre.Counters["ate_measurements_total"]; ok {
		t.Fatal("unprefixed name leaked into prefixed snapshot")
	}
	// The original snapshot is untouched.
	if got := snap.Counters["ate_measurements_total"]; got != 7 {
		t.Fatalf("source snapshot mutated: %d", got)
	}
	// Empty prefix is the identity.
	if got := snap.Prefixed("").Counters["ate_measurements_total"]; got != 7 {
		t.Fatalf("identity prefix lost counter: %d", got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	server := NewRegistry()
	server.Counter("jobs_submitted_total").Add(3)
	server.Gauge("worker_budget").Set(8)

	jobA := NewRegistry()
	jobA.Counter("ate_measurements_total").Add(100)
	jobB := NewRegistry()
	jobB.Counter("ate_measurements_total").Add(50)

	merged := MergeSnapshots(
		server.Snapshot(),
		jobA.Snapshot().Prefixed("job_a_"),
		jobB.Snapshot().Prefixed("job_b_"),
	)
	if got := merged.Counters["jobs_submitted_total"]; got != 3 {
		t.Fatalf("server counter = %d, want 3", got)
	}
	if got := merged.Counters["job_a_ate_measurements_total"]; got != 100 {
		t.Fatalf("job A counter = %d, want 100", got)
	}
	if got := merged.Counters["job_b_ate_measurements_total"]; got != 50 {
		t.Fatalf("job B counter = %d, want 50", got)
	}
	if got := merged.Gauges["worker_budget"]; got != 8 {
		t.Fatalf("gauge = %v, want 8", got)
	}

	// Later snapshots win collisions.
	later := NewRegistry()
	later.Counter("jobs_submitted_total").Add(9)
	won := MergeSnapshots(server.Snapshot(), later.Snapshot())
	if got := won.Counters["jobs_submitted_total"]; got != 9 {
		t.Fatalf("collision winner = %d, want 9", got)
	}

	// Merging nothing yields an empty snapshot.
	empty := MergeSnapshots()
	if empty.Counters != nil || empty.Gauges != nil || empty.Histograms != nil {
		t.Fatalf("empty merge not empty: %+v", empty)
	}
}
