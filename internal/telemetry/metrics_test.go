package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("Counter did not return the same instance")
	}
	g := r.Gauge("y")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g", g.Value())
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil registry counter = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("meas", 1, 2, 4, 8)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 7, 8, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+7+8+9+100; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	s := r.Snapshot().Histograms["meas"]
	// Cumulative counts: ≤1: 0.5,1 → 2; ≤2: +1.5,2 → 4; ≤4: +3 → 5;
	// ≤8: +7,8 → 7; +Inf: +9,100 → 9.
	wantCum := []int64{2, 4, 5, 7, 9}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le %g) cum count = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
		t.Error("last bucket bound is not +Inf")
	}
	if s.Buckets[len(s.Buckets)-1].Count != s.Count {
		t.Error("overflow bucket cumulative count != total count")
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("default")
	h.Observe(3)
	s := r.Snapshot().Histograms["default"]
	if len(s.Buckets) != len(DefaultMeasurementBuckets())+1 {
		t.Errorf("default bucket count = %d", len(s.Buckets))
	}
}

func TestSnapshotEncodingDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in scrambled order; JSON map-key sorting must normalize.
		r.Counter("zeta").Add(1)
		r.Counter("alpha").Add(2)
		r.Gauge("mid").Set(0.25)
		h := r.Histogram("hist", 1, 10)
		h.Observe(0.5)
		h.Observe(5)
		h.Observe(50)
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{`"alpha": 2`, `"zeta": 1`, `"mid": 0.25`, `"+Inf"`, `"count": 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot JSON missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, `"alpha"`) > strings.Index(out, `"zeta"`) {
		t.Error("counter keys not sorted in snapshot JSON")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", 1, 2).Observe(float64(j % 3))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 800 {
		t.Errorf("concurrent counter = %d, want 800", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 800 {
		t.Errorf("concurrent histogram count = %d, want 800", r.Histogram("h").Count())
	}
}

func TestEmptyHistogramSnapshotDefined(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", 1, 2, 4) // created, never observed
	hs := r.Snapshot().Histograms["empty"]
	if hs.Count != 0 || hs.Sum != 0 {
		t.Fatalf("empty histogram snapshot count/sum = %d/%v, want 0/0", hs.Count, hs.Sum)
	}
	if got := len(hs.Buckets); got != 4 { // 3 finite + the +Inf overflow
		t.Fatalf("empty histogram snapshot has %d buckets, want 4", got)
	}
	if m := hs.Mean(); m != 0 || math.IsNaN(m) {
		t.Errorf("empty histogram Mean() = %v, want 0", m)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.9, 1, 2} {
		if v := hs.Quantile(q); v != 0 || math.IsNaN(v) {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
	var zero HistogramSnapshot
	if zero.Mean() != 0 || zero.Quantile(0.5) != 0 {
		t.Error("zero-value HistogramSnapshot must report 0 mean and quantiles")
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", 10, 20, 40)
	for i := 0; i < 10; i++ {
		h.Observe(5) // all land in the ≤10 bucket
	}
	hs := r.Snapshot().Histograms["q"]
	// Rank 5 of 10 sits halfway through the [0, 10] bucket.
	if got := hs.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := hs.Quantile(1); math.Abs(got-10) > 1e-12 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}

	h.Observe(1e9) // overflow bucket: quantiles clamp to highest finite bound
	hs = r.Snapshot().Histograms["q"]
	if got := hs.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) with overflow observation = %v, want clamp to 40", got)
	}
	if v := hs.Mean(); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("Mean() = %v, want finite", v)
	}
}

func TestHitRateZeroLookups(t *testing.T) {
	if got := HitRate(0, 0); got != 0 || math.IsNaN(got) {
		t.Errorf("HitRate(0,0) = %v, want 0", got)
	}
	if got := HitRate(3, 1); got != 0.75 {
		t.Errorf("HitRate(3,1) = %v, want 0.75", got)
	}
	rep := &Report{}
	if got := rep.CacheHitRate(); got != 0 || math.IsNaN(got) {
		t.Errorf("zero-lookup report CacheHitRate() = %v, want 0", got)
	}
}

// TestRegistrySnapshotWhileRecording pins that Snapshot is safe and
// self-consistent while writers are live: every observed counter value is a
// valid prefix of the final total, and no snapshot tears (caught by -race).
func TestRegistrySnapshotWhileRecording(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// One snapshotter per writer, hammering Snapshot concurrently.
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if v, ok := snap.Counters["events"]; ok {
					if v < 0 || v > writers*perWriter {
						t.Errorf("snapshot counter out of range: %d", v)
						return
					}
				}
				if g, ok := snap.Gauges["level"]; ok && (g < 0 || g >= perWriter) {
					t.Errorf("snapshot gauge out of range: %v", g)
					return
				}
				if h, ok := snap.Histograms["lat"]; ok {
					// Cumulative bucket counts must be monotone.
					prev := int64(0)
					for _, b := range h.Buckets {
						if b.Count < prev {
							t.Errorf("histogram buckets not cumulative: %+v", h.Buckets)
							return
						}
						prev = b.Count
					}
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for j := 0; j < perWriter; j++ {
				r.Counter("events").Inc()
				r.Gauge("level").Set(float64(j))
				r.Histogram("lat", 1, 5, 10).Observe(float64(j % 12))
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	final := r.Snapshot()
	if final.Counters["events"] != writers*perWriter {
		t.Errorf("final counter = %d, want %d", final.Counters["events"], writers*perWriter)
	}
	if final.Histograms["lat"].Count != writers*perWriter {
		t.Errorf("final histogram count = %d, want %d", final.Histograms["lat"].Count, writers*perWriter)
	}
}
